#!/usr/bin/env bash
# Run govulncheck (installed at a pinned version by CI) and fail on any
# reported vulnerability ID not covered by the checked-in allowlist.  The
# module has no third-party dependencies, so findings can only come from the
# standard library / toolchain; allowlist an ID (with a comment saying why —
# typically "not reachable from our call graph per triage") only while a
# toolchain update is pending.
set -uo pipefail

allow="ci/govulncheck_allowlist.txt"

out="$(govulncheck ./... 2>&1)"
status=$?
if [ "$status" -eq 0 ]; then
  echo "govulncheck: clean"
  exit 0
fi

ids="$(printf '%s\n' "$out" | grep -oE 'GO-[0-9]{4}-[0-9]+' | sort -u)"
if [ -z "$ids" ]; then
  # Non-zero exit without vulnerability IDs means the tool itself failed.
  printf '%s\n' "$out"
  exit "$status"
fi

bad=0
for id in $ids; do
  if ! grep -q "$id" "$allow"; then
    echo "govulncheck: $id is not allowlisted in $allow"
    bad=1
  fi
done
if [ "$bad" -ne 0 ]; then
  printf '%s\n' "$out"
  exit 1
fi
echo "govulncheck: all reported IDs allowlisted"
