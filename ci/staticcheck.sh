#!/usr/bin/env bash
# Run staticcheck (installed at a pinned version by CI) and fail on any
# finding not covered by the checked-in allowlist.  Allowlist entries are
# extended regexes matched against staticcheck's "file:line:col: message
# (CODE)" output lines; keep each entry next to a comment saying why the
# finding is accepted rather than fixed.
set -uo pipefail

allow="ci/staticcheck_allowlist.txt"

findings="$(staticcheck ./... 2>&1)"
status=$?
if [ "$status" -eq 0 ]; then
  echo "staticcheck: clean"
  exit 0
fi

# Strip comment and blank lines from the allowlist before using it as a
# pattern file (grep treats '#' lines as patterns otherwise).
patterns="$(mktemp)"
trap 'rm -f "$patterns"' EXIT
grep -vE '^\s*(#|$)' "$allow" > "$patterns" || true

if [ -s "$patterns" ]; then
  remaining="$(printf '%s\n' "$findings" | grep -vE -f "$patterns")"
else
  remaining="$findings"
fi
remaining="$(printf '%s\n' "$remaining" | sed '/^[[:space:]]*$/d')"

if [ -n "$remaining" ]; then
  echo "staticcheck findings not in $allow:"
  printf '%s\n' "$remaining"
  exit 1
fi
echo "staticcheck: all findings allowlisted"
