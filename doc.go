// Package repro is the root of the OASIS reproduction (Meek, Patel &
// Kasetty, VLDB 2003).  The public API lives in the oasis subpackage; the
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation.  See README.md and DESIGN.md for the layout.
package repro
