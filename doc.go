// Package repro is the root of the OASIS reproduction (Meek, Patel &
// Kasetty, VLDB 2003).  The public API lives in the oasis subpackage; the
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation.  See README.md and DESIGN.md for the layout.
//
// Beyond the paper, the repository scales the algorithm out and tightens
// its hot loop:
//
//   - oasis.NewShardedIndex partitions the database into independently
//     indexed shards (internal/seq.PartitionDatabase balances them by
//     residue count), searches them in parallel on a bounded worker pool,
//     and merges the per-shard hit streams online in globally decreasing
//     score order (internal/shard).  The paper's online property — and
//     therefore streaming top-k and early termination — survives sharding.
//   - The dynamic-programming column sweep in internal/core tracks the
//     live (non-pruned) band of each column and computes only those cells,
//     which typically cuts Stats.CellsComputed to a fraction of the
//     exhaustive sweep on selective searches.
//
// cmd/oasis-bench runs the paper's experiments plus the sharded and
// live-band measurements and writes a machine-readable BENCH_oasis.json so
// the performance trajectory is tracked across changes.
package repro
