// Package repro is the root of the OASIS reproduction (Meek, Patel &
// Kasetty, VLDB 2003).  The public API lives in the oasis subpackage; the
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation.  See README.md and DESIGN.md for the layout.
//
// Beyond the paper, the repository scales the algorithm out and tightens
// its hot loop:
//
//   - oasis.NewShardedIndex partitions the database into independently
//     indexed shards (internal/seq.PartitionDatabase balances them by
//     residue count), searches them in parallel on a bounded worker pool,
//     and merges the per-shard hit streams online in globally decreasing
//     score order (internal/shard).  The paper's online property — and
//     therefore streaming top-k and early termination — survives sharding.
//   - The dynamic-programming column sweep in internal/core tracks the
//     live (non-pruned) band of each column and computes only those cells,
//     which typically cuts Stats.CellsComputed to a fraction of the
//     exhaustive sweep on selective searches.
//   - oasis.NewEngine builds a warm batch query engine (internal/engine):
//     the sharded index is constructed once, searcher scratch is pooled
//     per worker (core.Scratch via bufferpool.FreeList), and SubmitBatch
//     multiplexes many concurrent queries over the shared index while each
//     query's hit stream stays decreasing-score and cancellable — build
//     once, serve many.  cmd/oasis-serve is the HTTP/NDJSON front end over
//     one such engine (see examples/server for the lifecycle), and
//     oasis-bench's -exp batch records the amortisation win (warm engine
//     vs full per-query setup) in BENCH_oasis.json.
//
// The search kernels are pinned by a fuzz/golden/race test layer: native Go
// fuzz targets assert live-band/full-sweep hit identity and the sharded
// merge's order contract on arbitrary inputs, golden files freeze the
// Figure-4 workload's hits and work counters, and a -race stress test
// hammers one warm engine with concurrent batches and mid-stream
// cancellation.
//
// cmd/oasis-bench runs the paper's experiments plus the sharded, live-band
// and batch measurements and writes a machine-readable BENCH_oasis.json so
// the performance trajectory is tracked across changes.
package repro
