// Package repro is the root of the OASIS reproduction (Meek, Patel &
// Kasetty, VLDB 2003).  The public API lives in the oasis subpackage; the
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation.  See README.md and DESIGN.md for the layout.
//
// Beyond the paper, the repository scales the algorithm out and tightens
// its hot loop:
//
//   - oasis.NewShardedIndex searches the database with one worker per
//     partition on a bounded pool and merges the per-shard hit streams
//     online in globally decreasing score order (internal/shard), so the
//     paper's online property — and therefore streaming top-k and early
//     termination — survives sharding.  Two partition modes exist: the
//     default splits the database into independently indexed shards
//     (internal/seq.PartitionDatabase, balanced by residue count), while
//     ShardOptions.PartitionByPrefix builds ONE shared suffix tree and
//     assigns disjoint top-level subtrees to shards by suffix prefix
//     (internal/seq.PartitionByPrefix + core.ExpandFrontier).  Prefix
//     partitioning computes the near-root DP columns exactly once per
//     query, so total ColumnsExpanded stays ~flat as shards grow instead of
//     multiplying (~1.9x at 8 sequence-partitioned shards on the Figure-4
//     workload).
//   - The dynamic-programming column sweep in internal/core tracks the
//     live (non-pruned) band of each column and computes only those cells,
//     which typically cuts Stats.CellsComputed to a fraction of the
//     exhaustive sweep on selective searches.  Per-node column storage is
//     band-sized too: a search node carries only its live [lo, hi] interval
//     (allocated from size-classed free lists) instead of a full
//     len(query)+1 vector, and the provably dead row 0 is never computed
//     below the root.  Stats.MaxBandWidth records the widest band a search
//     ever stored.
//   - oasis.NewEngine builds a warm batch query engine (internal/engine):
//     the sharded index is constructed once, searcher scratch is pooled
//     per worker (core.Scratch via bufferpool.FreeList), and SubmitBatch
//     multiplexes many concurrent queries over the shared index while each
//     query's hit stream stays decreasing-score and cancellable — build
//     once, serve many.  cmd/oasis-serve is the HTTP/NDJSON front end over
//     one such engine (see examples/server for the lifecycle): /metrics
//     exposes the scratch free-list stats, per-shard worker-pool queue
//     depths, per-shard buffer-pool hit rates and per-endpoint latency
//     histograms for capacity planning, and batches over -max-batch are
//     rejected with HTTP 413 so one huge batch cannot monopolise the
//     worker pool.
//   - The entire sharded serving stack also runs DISK-BACKED, so one warm
//     engine serves databases bigger than RAM: oasis-build -shards writes
//     one diskst index file per shard (or, with -prefix-sharding, one
//     shared file plus a suffix-prefix -> shard assignment) and a
//     manifest.json (internal/diskst.BuildSharded); oasis.OpenEngine /
//     ShardOptions.IndexDir and the -index-dir flag of
//     oasis-serve/oasis-search/oasis-bench reopen the directory with one
//     buffer pool PER SHARD (shard.NewEngineFromSet over diskst indexes),
//     so a query's shard fan-out fans out page I/O with no cross-shard
//     cache thrash, and hit streams are identical to the in-memory
//     engines (randomized equivalence tests pin this in both partition
//     modes).  oasis-bench -exp disk measures cold-open latency,
//     queries/sec and buffer-pool hit rates against in-memory shards at
//     matched shard counts (disk/shards=N in BENCH_oasis.json).
//
// The search kernels are pinned by a fuzz/golden/race test layer: native Go
// fuzz targets assert live-band/full-sweep hit identity and the sharded
// merge's order contract (in both partition modes) on arbitrary inputs,
// golden files freeze the Figure-4 workload's hits and work counters, and a
// -race stress test hammers one warm engine with concurrent batches and
// mid-stream cancellation.
//
// cmd/oasis-bench runs the paper's experiments plus the sharded, live-band
// and batch measurements and writes a machine-readable BENCH_oasis.json so
// the performance trajectory is tracked across changes (see
// internal/experiments.BenchRecord for the record-name families, including
// sharded/prefix/shards=N); its -prefix-budget flag — used as a CI gate —
// fails the run when prefix-sharded ColumnsExpanded exceeds the given ratio
// of the 1-shard baseline.
package repro
