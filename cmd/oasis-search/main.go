// Command oasis-search runs local-alignment searches against an OASIS disk
// index (or, for the baselines, against a FASTA database).
//
// Examples:
//
//	# OASIS search of a peptide against a prebuilt index, top 10 results
//	oasis-search -index swissprot.oasis -query DKDGDGCITTKEL -evalue 20000 -top 10
//
//	# Exact Smith-Waterman baseline over a FASTA database
//	oasis-search -db swissprot.fasta -algo sw -query DKDGDGCITTKEL -minscore 45
//
//	# Heuristic BLAST-style baseline
//	oasis-search -db swissprot.fasta -algo blast -queryfile peptides.fasta
//
//	# Sharded parallel OASIS over an in-memory index built from FASTA
//	oasis-search -db swissprot.fasta -shards 8 -workers 4 -query DKDGDGCITTKEL
//
//	# Sharded parallel OASIS over a prebuilt sharded DISK index
//	# (oasis-build -shards 4 -out swissprot.idx), one buffer pool per shard
//	oasis-search -index-dir swissprot.idx -query DKDGDGCITTKEL -top 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/seq"
	"repro/oasis"
)

type config struct {
	indexPath string
	indexDir  string
	dbPath    string
	algo      string
	query     string
	queryFile string
	alphabet  string
	matrix    string
	gap       int
	eValue    float64
	minScore  int
	top       int
	poolMB    int64
	shards    int
	workers   int
	prefix    bool
	verbose   bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.indexPath, "index", "", "OASIS index file (for -algo oasis)")
	flag.StringVar(&cfg.indexDir, "index-dir", "", "sharded OASIS index directory (oasis-build -shards); searched with one buffer pool per shard")
	flag.StringVar(&cfg.dbPath, "db", "", "FASTA database (required for -algo sw/blast)")
	flag.StringVar(&cfg.algo, "algo", "oasis", "search algorithm: oasis, sw or blast")
	flag.StringVar(&cfg.query, "query", "", "query residues on the command line")
	flag.StringVar(&cfg.queryFile, "queryfile", "", "FASTA file of queries")
	flag.StringVar(&cfg.alphabet, "alphabet", "protein", "alphabet: protein or dna")
	flag.StringVar(&cfg.matrix, "matrix", "PAM30", "substitution matrix (PAM30, BLOSUM62, PAM250, UNIT, BLASTN)")
	flag.IntVar(&cfg.gap, "gap", -10, "linear gap penalty (negative)")
	flag.Float64Var(&cfg.eValue, "evalue", 20000, "E-value threshold (paper Equation 2)")
	flag.IntVar(&cfg.minScore, "minscore", 0, "explicit minimum score (overrides -evalue)")
	flag.IntVar(&cfg.top, "top", 0, "report only the top-k sequences (0 = all)")
	flag.Int64Var(&cfg.poolMB, "pool", 256, "buffer pool size in MB (for -algo oasis; with -index-dir the size is per shard)")
	flag.IntVar(&cfg.shards, "shards", 0, "search a sharded in-memory index with this many partitions (requires -db; 0 = use -index)")
	flag.IntVar(&cfg.workers, "workers", 0, "concurrent shard searches for -shards (0 = one per shard)")
	flag.BoolVar(&cfg.prefix, "prefix-sharding", false, "partition -shards by suffix-tree prefix over one shared index instead of by sequence")
	flag.BoolVar(&cfg.verbose, "v", false, "print full alignments")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "oasis-search:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	alpha := oasis.Protein
	if cfg.alphabet == "dna" {
		alpha = oasis.DNA
	} else if cfg.alphabet != "protein" {
		return fmt.Errorf("unknown alphabet %q", cfg.alphabet)
	}
	matrix := oasis.MatrixByName(cfg.matrix)
	if matrix == nil {
		return fmt.Errorf("unknown matrix %q", cfg.matrix)
	}
	scheme, err := oasis.NewScheme(matrix, cfg.gap)
	if err != nil {
		return err
	}
	// The -index-dir path defers query loading: the manifest, not the
	// -alphabet flag, determines the encoding alphabet there.
	if cfg.indexDir != "" {
		if cfg.algo != "oasis" {
			return fmt.Errorf("-index-dir requires -algo oasis")
		}
		if cfg.dbPath != "" || cfg.indexPath != "" {
			return fmt.Errorf("-index-dir and -db/-index are mutually exclusive")
		}
		if cfg.shards > 0 || cfg.prefix {
			return fmt.Errorf("-shards/-prefix-sharding come from the -index-dir manifest; do not set them")
		}
		return runDiskSharded(cfg, scheme)
	}
	queries, err := loadQueries(cfg, alpha)
	if err != nil {
		return err
	}
	if len(queries) == 0 {
		return fmt.Errorf("no queries: use -query or -queryfile")
	}
	switch cfg.algo {
	case "oasis":
		if cfg.shards > 0 {
			return runSharded(cfg, alpha, scheme, queries)
		}
		return runOASIS(cfg, scheme, queries)
	case "sw":
		return runSW(cfg, alpha, scheme, queries)
	case "blast":
		return runBLAST(cfg, alpha, scheme, queries)
	default:
		return fmt.Errorf("unknown algorithm %q", cfg.algo)
	}
}

func loadQueries(cfg config, alpha *oasis.Alphabet) ([]oasis.Sequence, error) {
	var out []oasis.Sequence
	if cfg.query != "" {
		s, err := seq.NewSequence(alpha, "cmdline", "", cfg.query)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if cfg.queryFile != "" {
		db, err := oasis.LoadFASTA(cfg.queryFile, alpha)
		if err != nil {
			return nil, err
		}
		out = append(out, db.Sequences()...)
	}
	return out, nil
}

func runOASIS(cfg config, scheme oasis.Scheme, queries []oasis.Sequence) error {
	if cfg.indexPath == "" {
		return fmt.Errorf("-index is required for -algo oasis")
	}
	idx, err := oasis.OpenDiskIndex(cfg.indexPath, cfg.poolMB<<20)
	if err != nil {
		return err
	}
	defer idx.Close()
	dbLen := idx.Catalog().TotalResidues()
	for _, q := range queries {
		minScore := cfg.minScore
		var ka *oasis.KarlinAltschul
		if minScore <= 0 {
			stats, err := oasis.EValueStatistics(scheme.Matrix)
			if err != nil {
				return err
			}
			ka = &stats
			minScore = stats.MinScore(cfg.eValue, q.Len(), dbLen)
		}
		var st oasis.SearchStats
		opts := oasis.SearchOptions{Scheme: scheme, MinScore: minScore, MaxResults: cfg.top, KA: ka, Stats: &st}
		fmt.Printf("# query %s (%d residues), minScore %d\n", q.ID, q.Len(), minScore)
		start := time.Now()
		n := 0
		err := oasis.Search(idx, q.Residues, opts, func(h oasis.Hit) bool {
			n++
			fmt.Printf("%4d  %-24s score=%-6d E=%-12.3g qEnd=%-4d tEnd=%-6d t=%s\n",
				h.Rank, h.SeqID, h.Score, h.EValue, h.QueryEnd, h.TargetEnd, time.Since(start).Round(time.Microsecond))
			if cfg.verbose {
				if a, err := oasis.RecoverAlignment(idx, q.Residues, scheme, h); err == nil {
					res, _ := idx.Catalog().Residues(h.SeqIndex)
					fmt.Print(a.Format(idx.Catalog().Alphabet(), q.Residues, res))
				}
			}
			return true
		})
		if err != nil {
			return err
		}
		fmt.Printf("# %d sequences in %s; %d columns expanded, %d cells, %d nodes expanded\n\n",
			n, time.Since(start).Round(time.Microsecond), st.ColumnsExpanded, st.CellsComputed, st.NodesExpanded)
	}
	return nil
}

// runDiskSharded opens a prebuilt sharded disk index (oasis-build -shards)
// and searches every query through the order-preserving parallel merge, each
// shard reading through its own buffer pool.  Queries are encoded with the
// MANIFEST's alphabet (the -alphabet flag is ignored here: encoding with the
// wrong alphabet would silently search for different residues).
func runDiskSharded(cfg config, scheme oasis.Scheme) error {
	open := time.Now()
	idx, err := oasis.NewShardedIndex(nil, oasis.ShardOptions{
		IndexDir:  cfg.indexDir,
		PoolBytes: cfg.poolMB << 20,
		Workers:   cfg.workers,
	})
	if err != nil {
		return err
	}
	defer idx.Close()
	alpha := idx.Catalog().Alphabet()
	if scheme.Matrix.Alphabet() != alpha {
		return fmt.Errorf("matrix %q is over the %s alphabet, but the index at %s holds %s sequences",
			cfg.matrix, scheme.Matrix.Alphabet().Name(), cfg.indexDir, alpha.Name())
	}
	queries, err := loadQueries(cfg, alpha)
	if err != nil {
		return err
	}
	if len(queries) == 0 {
		return fmt.Errorf("no queries: use -query or -queryfile")
	}
	fmt.Printf("# sharded disk index: %s, %d shards, %d workers, %s alphabet, opened in %s\n",
		cfg.indexDir, idx.NumShards(), idx.Workers(), alpha.Name(), time.Since(open).Round(time.Millisecond))
	return searchShardedIndex(cfg, scheme, queries, idx)
}

// runSharded builds a sharded in-memory engine from the FASTA database and
// searches every query through the order-preserving parallel merge.
func runSharded(cfg config, alpha *oasis.Alphabet, scheme oasis.Scheme, queries []oasis.Sequence) error {
	if cfg.dbPath == "" {
		return fmt.Errorf("-db is required for -shards (the sharded engine indexes in memory)")
	}
	db, err := oasis.LoadFASTA(cfg.dbPath, alpha)
	if err != nil {
		return err
	}
	build := time.Now()
	idx, err := oasis.NewShardedIndex(db, oasis.ShardOptions{
		Shards:            cfg.shards,
		Workers:           cfg.workers,
		PartitionByPrefix: cfg.prefix,
	})
	if err != nil {
		return err
	}
	partition := "by-sequence"
	if cfg.prefix {
		partition = "by-prefix"
	}
	fmt.Printf("# sharded index: %d shards (%s), %d workers, built in %s\n",
		idx.NumShards(), partition, idx.Workers(), time.Since(build).Round(time.Millisecond))
	return searchShardedIndex(cfg, scheme, queries, idx)
}

// searchShardedIndex runs every query against a sharded engine — disk or
// memory backed — printing hits online and the work-counter footer; the
// engine's catalog supplies residues for -v alignment recovery and the
// database size for E-value thresholds.
func searchShardedIndex(cfg config, scheme oasis.Scheme, queries []oasis.Sequence, idx *oasis.ShardedIndex) error {
	cat := idx.Catalog()
	for _, q := range queries {
		minScore := cfg.minScore
		var ka *oasis.KarlinAltschul
		if minScore <= 0 {
			stats, err := oasis.EValueStatistics(scheme.Matrix)
			if err != nil {
				return err
			}
			ka = &stats
			minScore = stats.MinScore(cfg.eValue, q.Len(), idx.TotalResidues())
		}
		var st oasis.SearchStats
		opts := oasis.SearchOptions{Scheme: scheme, MinScore: minScore, MaxResults: cfg.top, KA: ka, Stats: &st}
		fmt.Printf("# query %s (%d residues), minScore %d\n", q.ID, q.Len(), minScore)
		start := time.Now()
		n := 0
		err := idx.Search(q.Residues, opts, func(h oasis.Hit) bool {
			n++
			fmt.Printf("%4d  %-24s score=%-6d E=%-12.3g qEnd=%-4d tEnd=%-6d t=%s\n",
				h.Rank, h.SeqID, h.Score, h.EValue, h.QueryEnd, h.TargetEnd, time.Since(start).Round(time.Microsecond))
			if cfg.verbose {
				a, aErr := idx.RecoverAlignment(q.Residues, scheme, h)
				res, rErr := cat.Residues(h.SeqIndex)
				if aErr == nil && rErr == nil {
					fmt.Print(a.Format(cat.Alphabet(), q.Residues, res))
				}
			}
			return true
		})
		if err != nil {
			return err
		}
		fmt.Printf("# %d sequences in %s; %d columns expanded, %d cells, %d nodes expanded\n\n",
			n, time.Since(start).Round(time.Microsecond), st.ColumnsExpanded, st.CellsComputed, st.NodesExpanded)
	}
	return nil
}

func runSW(cfg config, alpha *oasis.Alphabet, scheme oasis.Scheme, queries []oasis.Sequence) error {
	if cfg.dbPath == "" {
		return fmt.Errorf("-db is required for -algo sw")
	}
	db, err := oasis.LoadFASTA(cfg.dbPath, alpha)
	if err != nil {
		return err
	}
	for _, q := range queries {
		minScore := cfg.minScore
		if minScore <= 0 {
			minScore, err = oasis.MinScoreForEValue(scheme.Matrix, cfg.eValue, q.Len(), db.TotalResidues())
			if err != nil {
				return err
			}
		}
		start := time.Now()
		hits, err := oasis.SmithWaterman(db, q.Residues, scheme, minScore)
		if err != nil {
			return err
		}
		if cfg.top > 0 && len(hits) > cfg.top {
			hits = hits[:cfg.top]
		}
		fmt.Printf("# query %s: %d sequences (S-W, %s)\n", q.ID, len(hits), time.Since(start).Round(time.Millisecond))
		for i, h := range hits {
			fmt.Printf("%4d  %-24s score=%d\n", i+1, h.SeqID, h.Score)
		}
		fmt.Println()
	}
	return nil
}

func runBLAST(cfg config, alpha *oasis.Alphabet, scheme oasis.Scheme, queries []oasis.Sequence) error {
	if cfg.dbPath == "" {
		return fmt.Errorf("-db is required for -algo blast")
	}
	db, err := oasis.LoadFASTA(cfg.dbPath, alpha)
	if err != nil {
		return err
	}
	searcher, err := oasis.NewBLAST(db, scheme, oasis.BLASTOptions{TwoHit: true, EValue: cfg.eValue, MaxHits: cfg.top})
	if err != nil {
		return err
	}
	for _, q := range queries {
		start := time.Now()
		hits, err := searcher.Search(q.Residues, nil)
		if err != nil {
			return err
		}
		fmt.Printf("# query %s: %d sequences (BLAST-style heuristic, %s)\n", q.ID, len(hits), time.Since(start).Round(time.Millisecond))
		for i, h := range hits {
			fmt.Printf("%4d  %-24s score=%-6d E=%.3g\n", i+1, h.SeqID, h.Score, h.EValue)
		}
		fmt.Println()
	}
	return nil
}
