package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/remote"
	"repro/internal/shard"
	"repro/oasis"
)

// corpusStrings is a deterministic corpus for slicing tests: order matters
// because slice order defines the global sequence numbering.
var corpusStrings = [][2]string{
	{"CALM_HUMAN", "ADQLTEEQIAEFKEAFSLFDKDGDGTITTKELGTVMRSLGQNPTEAELQDMINEVDADGNGTIDFPEFLTMMARKM"},
	{"TNNC1_HUMAN", "MDDIYKAAVEQLTEEQKNEFKAAFDIFVLGAEDGCISTKELGKVMRMLGQNPTPEELQEMIDEVDEDGSGTVDFDEFLVMMVRCM"},
	{"MYG_HUMAN", "GLSDGEWQLVLNVWGKVEADIPGHGQEVLIRLFKGHPETLEKFDKFKHLKSEDEMKASEDLKKHGATVLTALGGILKKKGHHEAEI"},
	{"UNRELATED", "PPPPGGGGSSSSPPPPGGGGSSSSPPPPGGGGSSSS"},
}

func corpusDB(t *testing.T, from, to int) *oasis.Database {
	t.Helper()
	var seqs []oasis.Sequence
	for _, s := range corpusStrings[from:to] {
		seqs = append(seqs, oasis.Sequence{ID: s[0], Residues: oasis.Protein.MustEncode(s[1])})
	}
	db, err := oasis.NewDatabase(oasis.Protein, seqs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// coordinatorServer starts two single-replica slice servers over halves of
// the corpus and returns the standard HTTP front end running in coordinator
// mode, plus the slice servers so tests can kill them.
func coordinatorServer(t *testing.T, strict bool) (*server, *oasis.Coordinator, []*httptest.Server) {
	t.Helper()
	var slices [][]string
	var sliceSrvs []*httptest.Server
	cut := len(corpusStrings) / 2
	for _, span := range [][2]int{{0, cut}, {cut, len(corpusStrings)}} {
		eng, err := shard.NewEngine(corpusDB(t, span[0], span[1]), shard.Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = eng.Close() })
		srv := httptest.NewServer(remote.NewServer(eng))
		t.Cleanup(srv.Close)
		sliceSrvs = append(sliceSrvs, srv)
		slices = append(slices, []string{srv.URL})
	}
	co, err := oasis.OpenCoordinator(t.Context(), slices, oasis.CoordinatorOptions{DisableHedge: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = co.Close() })
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(co.Engine(), serverConfig{
		scheme:        scheme,
		defaultEValue: 20000,
		maxBatch:      8,
		strict:        strict,
		coordinator:   co,
	}), co, sliceSrvs
}

// TestCoordinatorSearchMatchesLocal: a /search through the coordinator front
// end must stream the same events a single-process server over the
// concatenated corpus streams.
func TestCoordinatorSearchMatchesLocal(t *testing.T) {
	srv, _, _ := coordinatorServer(t, false)

	local, err := oasis.NewEngine(corpusDB(t, 0, len(corpusStrings)), oasis.EngineOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = local.Close() })
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		t.Fatal(err)
	}
	localSrv := newServer(local, serverConfig{scheme: scheme, defaultEValue: 20000, maxBatch: 8})

	const body = `{"query":"DKDGDGTITTKE"}`
	run := func(s *server) []hitEvent {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		return decodeNDJSON(t, rec.Body.String())
	}
	got, want := run(srv), run(localSrv)
	if len(got) != len(want) || len(got) < 2 {
		t.Fatalf("coordinator streamed %d events, local %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		// elapsed_ms and stats are wall-clock and per-deployment; everything
		// the client keys on must match exactly.
		g.ElapsedMs, w.ElapsedMs = 0, 0
		g.Stats, w.Stats = nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("event %d: coordinator %+v, local %+v", i, g, w)
		}
	}
	if last := got[len(got)-1]; last.Type != "done" || last.Degraded {
		t.Fatalf("final coordinator event = %+v", last)
	}
}

// TestCoordinatorReadyAndMetrics: /healthz/ready carries per-slice replica
// health, /metrics gains the remote section, and the Prometheus rendering
// exposes the fan-out counters and per-replica gauges.
func TestCoordinatorReadyAndMetrics(t *testing.T) {
	srv, _, _ := coordinatorServer(t, false)

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz/ready", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("ready status %d: %s", rec.Code, rec.Body.String())
	}
	var ready struct {
		Status string            `json:"status"`
		Slices []json.RawMessage `json:"slices"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ready" || len(ready.Slices) != 2 {
		t.Fatalf("ready body = %s", rec.Body.String())
	}

	// Serve one query so the fan-out counters move.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("search status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var metrics struct {
		Remote *struct {
			Metrics oasis.RemoteMetrics `json:"metrics"`
		} `json:"remote"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Remote == nil || metrics.Remote.Metrics.Streams == 0 {
		t.Fatalf("remote metrics missing from /metrics: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	text := rec.Body.String()
	for _, series := range []string{"remote_attempts_total", "remote_failovers_total", "remote_hedge_wins_total", "remote_replica_up{slice=\"0\""} {
		if !strings.Contains(text, series) {
			t.Fatalf("prometheus output missing %s:\n%s", series, text)
		}
	}
}

// TestCoordinatorDeadSliceDegrades: when every replica of a slice is gone the
// stream completes degraded from the surviving slices, and readiness drops to
// 503 once the replica is marked down.
func TestCoordinatorDeadSliceDegrades(t *testing.T) {
	srv, _, sliceSrvs := coordinatorServer(t, false)
	sliceSrvs[1].Close()

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("search status %d: %s", rec.Code, rec.Body.String())
	}
	events := decodeNDJSON(t, rec.Body.String())
	last := events[len(events)-1]
	if last.Type != "done" || !last.Degraded {
		t.Fatalf("final event after slice death = %+v, want degraded done", last)
	}

	// The default attempt budget (3 tries against the lone replica) crosses
	// the down threshold, so readiness reports the slice as dead.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz/ready", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("ready status %d after slice death: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "no live replica") {
		t.Fatalf("ready body = %s", rec.Body.String())
	}

	// Liveness must NOT flap: the process itself is fine.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz/live", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("live status %d", rec.Code)
	}

	// With the replica now marked down, degradation is known BEFORE the
	// stream starts: follow-up responses carry 206 like a standing
	// quarantine, and the stream still completes degraded from slice 0.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("follow-up status %d, want 206", rec.Code)
	}
	events = decodeNDJSON(t, rec.Body.String())
	if last := events[len(events)-1]; last.Type != "done" || !last.Degraded {
		t.Fatalf("follow-up final event = %+v, want degraded done", last)
	}
}

// TestCoordinatorStrictDeadSliceFails: -strict turns the degraded completion
// into a per-query error event.
func TestCoordinatorStrictDeadSliceFails(t *testing.T) {
	srv, _, sliceSrvs := coordinatorServer(t, true)
	sliceSrvs[0].Close()

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	events := decodeNDJSON(t, rec.Body.String())
	last := events[len(events)-1]
	if last.Type != "error" || last.Error == "" {
		t.Fatalf("final strict event after slice death = %+v, want error", last)
	}
}

// TestReadinessDrainSequence: setNotReady flips only readiness (traffic still
// served), startDrain sheds; liveness stays 200 throughout.
func TestReadinessDrainSequence(t *testing.T) {
	srv := testServer(t)

	get := func(path string) int {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	post := func() int {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
		return rec.Code
	}

	if c := get("/healthz/ready"); c != http.StatusOK {
		t.Fatalf("ready before shutdown: %d", c)
	}
	srv.setNotReady()
	if c := get("/healthz/ready"); c != http.StatusServiceUnavailable {
		t.Fatalf("ready after setNotReady: %d", c)
	}
	if c := post(); c != http.StatusOK {
		t.Fatalf("search during drain grace must still serve, got %d", c)
	}
	srv.startDrain()
	if c := post(); c != http.StatusServiceUnavailable {
		t.Fatalf("search after startDrain: %d", c)
	}
	if c := get("/healthz/live"); c != http.StatusOK {
		t.Fatalf("liveness flapped during shutdown: %d", c)
	}
}

func TestParseSlices(t *testing.T) {
	got, err := parseSlices("h1:9001|h1:9002, h2:9003")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"h1:9001", "h1:9002"}, {"h2:9003"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseSlices = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "a,,b", "|"} {
		if _, err := parseSlices(bad); err == nil {
			t.Fatalf("parseSlices(%q) accepted", bad)
		}
	}
}

// TestCoordinatorRejectsWrites: /insert must refuse on a coordinator — the
// corpus is owned by the slice servers.
func TestCoordinatorRejectsWrites(t *testing.T) {
	srv, _, _ := coordinatorServer(t, false)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/insert",
		strings.NewReader(`{"id":"NEW1","sequence":"DKDGDGTITTKE"}`)))
	if rec.Code == http.StatusOK {
		t.Fatalf("insert on a coordinator succeeded: %s", rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "immutable") {
		t.Fatalf("insert error = %s", rec.Body.String())
	}
}
