package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/oasis"
)

// faultTestServer builds an in-memory server with the given extra config on
// top of the standard test corpus.
func faultTestServer(t *testing.T, tune func(*serverConfig)) *server {
	t.Helper()
	raw := map[string]string{
		"CALM_HUMAN":  "ADQLTEEQIAEFKEAFSLFDKDGDGTITTKELGTVMRSLGQNPTEAELQDMINEVDADGNGTIDFPEFLTMMARKM",
		"TNNC1_HUMAN": "MDDIYKAAVEQLTEEQKNEFKAAFDIFVLGAEDGCISTKELGKVMRMLGQNPTPEELQEMIDEVDEDGSGTVDFDEFLVMMVRCM",
		"MYG_HUMAN":   "GLSDGEWQLVLNVWGKVEADIPGHGQEVLIRLFKGHPETLEKFDKFKHLKSEDEMKASEDLKKHGATVLTALGGILKKKGHHEAEI",
		"UNRELATED":   "PPPPGGGGSSSSPPPPGGGGSSSSPPPPGGGGSSSS",
	}
	var seqs []oasis.Sequence
	for id, residues := range raw {
		seqs = append(seqs, oasis.Sequence{ID: id, Residues: oasis.Protein.MustEncode(residues)})
	}
	db, err := oasis.NewDatabase(oasis.Protein, seqs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := oasis.NewEngine(db, oasis.EngineOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serverConfig{scheme: scheme, defaultEValue: 20000, maxBatch: 8}
	if tune != nil {
		tune(&cfg)
	}
	return newServer(eng, cfg)
}

// TestQueryTimeoutErrorEvent pins -query-timeout: a stream that outlives the
// per-query budget ends with an "error" event naming the timeout, not a
// silent truncation.
func TestQueryTimeoutErrorEvent(t *testing.T) {
	srv := faultTestServer(t, func(cfg *serverConfig) {
		cfg.queryTimeout = time.Nanosecond
	})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	events := decodeNDJSON(t, rec.Body.String())
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	last := events[len(events)-1]
	if last.Type != "error" {
		t.Fatalf("final event %+v, want a timeout error", last)
	}
	if !strings.Contains(last.Error, "query timeout") || !strings.Contains(last.Error, "1ns") {
		t.Fatalf("error %q does not name the query timeout", last.Error)
	}
}

// TestAdmissionWaitSheds503 pins -admission-wait: a request that cannot be
// admitted within the wait budget is shed with 503 and a Retry-After header,
// instead of queueing without bound.
func TestAdmissionWaitSheds503(t *testing.T) {
	srv := faultTestServer(t, func(cfg *serverConfig) {
		cfg.admissionSlots = 1
		cfg.admissionQueue = 4
		cfg.admissionWait = 30 * time.Millisecond
	})
	// Occupy the only slot so the next request has to queue.
	release, err := srv.adm.acquire(context.Background(), "hog", 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if !strings.Contains(rec.Body.String(), "saturated") {
		t.Fatalf("error body %q does not say the server is saturated", rec.Body.String())
	}
	// Freeing the slot restores service.
	release()
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release search: status %d", rec.Code)
	}
}

// TestDrainSheds503 pins graceful shutdown: after startDrain, new queries are
// shed immediately with 503 while /healthz reports draining.
func TestDrainSheds503(t *testing.T) {
	srv := faultTestServer(t, nil)
	srv.startDrain()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q", ra)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["serving"] != "draining" {
		t.Fatalf("healthz serving = %v, want draining", health["serving"])
	}
}

// TestServeFaultpoint500 pins the handler-level injection site used by the CI
// fault stage.
func TestServeFaultpoint500(t *testing.T) {
	defer faultpoint.Reset()
	srv := faultTestServer(t, nil)
	faultpoint.Enable(faultpoint.SiteServeSearch, faultpoint.Spec{Mode: faultpoint.ModeError, Match: "search"})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if faultpoint.Fired(faultpoint.SiteServeSearch) == 0 {
		t.Fatal("serve faultpoint never fired")
	}
}

// TestPrometheusExposition pins the text exposition surface: content type,
// the four fault-tolerance metrics, traffic counters and latency histograms —
// selected by ?format=prometheus or an Accept header; JSON stays the default.
func TestPrometheusExposition(t *testing.T) {
	srv := faultTestServer(t, nil)
	srv.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q, want the 0.0.4 text exposition", ct)
	}
	body := rec.Body.String()
	for _, metric := range []string{
		"degraded_queries_total",
		"shard_quarantined",
		"checksum_failures_total",
		"retries_total",
		"queries_served_total 1",
		"hits_reported_total",
		"request_duration_seconds_bucket{endpoint=\"search\",le=\"+Inf\"} 1",
		"# TYPE shard_quarantined gauge",
		"# TYPE degraded_queries_total counter",
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("exposition missing %q:\n%s", metric, body)
		}
	}

	// The Prometheus scraper's Accept header selects the same format.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain; version=0.0.4")
	srv.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Accept negotiation failed: content type %q", ct)
	}

	// Without negotiation /metrics stays JSON for the existing dashboards.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q, want JSON", ct)
	}
}

// degradedDiskServer builds a sharded disk index, destroys one shard file and
// opens it AllowDegraded — a server running with a standing quarantine.
func degradedDiskServer(t *testing.T, strict bool) *server {
	t.Helper()
	raw := map[string]string{
		"CALM_HUMAN":  "ADQLTEEQIAEFKEAFSLFDKDGDGTITTKELGTVMRSLGQNPTEAELQDMINEVDADGNGTIDFPEFLTMMARKM",
		"TNNC1_HUMAN": "MDDIYKAAVEQLTEEQKNEFKAAFDIFVLGAEDGCISTKELGKVMRMLGQNPTPEELQEMIDEVDEDGSGTVDFDEFLVMMVRCM",
		"MYG_HUMAN":   "GLSDGEWQLVLNVWGKVEADIPGHGQEVLIRLFKGHPETLEKFDKFKHLKSEDEMKASEDLKKHGATVLTALGGILKKKGHHEAEI",
		"UNRELATED":   "PPPPGGGGSSSSPPPPGGGGSSSSPPPPGGGGSSSS",
	}
	var seqs []oasis.Sequence
	for id, residues := range raw {
		seqs = append(seqs, oasis.Sequence{ID: id, Residues: oasis.Protein.MustEncode(residues)})
	}
	db, err := oasis.NewDatabase(oasis.Protein, seqs)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if _, _, err := oasis.BuildShardedDiskIndex(dir, db, oasis.ShardedIndexBuildOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, "shard-1.oasis"), 16); err != nil {
		t.Fatal(err)
	}
	eng, err := oasis.OpenEngine(dir, oasis.EngineOptions{AllowDegraded: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(eng, serverConfig{scheme: scheme, defaultEValue: 20000, maxBatch: 8, strict: strict})
}

// TestDegradedServing206 pins partial-failure serving end to end: with one of
// two shard files destroyed at open, searches answer 206 from the survivors,
// every done event is marked degraded with per-shard detail, and /healthz
// reports the quarantine.
func TestDegradedServing206(t *testing.T) {
	srv := degradedDiskServer(t, false)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", rec.Code, rec.Body.String())
	}
	events := decodeNDJSON(t, rec.Body.String())
	last := events[len(events)-1]
	if last.Type != "done" || !last.Degraded {
		t.Fatalf("final event %+v, want done with degraded=true", last)
	}
	if last.Stats == nil || len(last.Stats.ShardErrors) != 1 || last.Stats.ShardErrors[0].Shard != 1 {
		t.Fatalf("per-shard error detail missing: %+v", last.Stats)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.Type != "hit" {
			t.Fatalf("unexpected event %+v", ev)
		}
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["serving"] != "degraded" || health["shards_quarantined"].(float64) != 1 {
		t.Fatalf("healthz = %v, want degraded with 1 quarantine", health)
	}
}

// TestStrictModeRefusesDegraded pins -strict: the same standing quarantine
// fails the query with an error event instead of a partial stream.
func TestStrictModeRefusesDegraded(t *testing.T) {
	srv := degradedDiskServer(t, true)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	if rec.Code == http.StatusPartialContent {
		t.Fatal("strict server answered 206")
	}
	events := decodeNDJSON(t, rec.Body.String())
	last := events[len(events)-1]
	if last.Type != "error" || last.Error == "" {
		t.Fatalf("final event %+v, want a per-query error", last)
	}
	for _, ev := range events {
		if ev.Type == "hit" {
			t.Fatalf("strict server streamed a hit from a degraded index: %+v", ev)
		}
	}
}
