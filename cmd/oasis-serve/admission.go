package main

import (
	"context"
	"errors"
	"sort"
	"sync"
)

// admission is the per-client fair admission controller in front of the
// warm engine: a deficit-weighted round-robin scheduler over client keys
// (X-Client-ID header, falling back to the remote address) that bounds how
// many requests run concurrently and decides WHO runs next when slots are
// scarce.
//
// The previous design was a plain FIFO over the engine's worker pool, so a
// single greedy client streaming maximal /batch requests could queue
// thousands of queries ahead of every interactive /search user.  Under DRR
// each waiting client owns its own FIFO; freed slots visit the client ring
// round-robin, paying each visited client a fixed quantum of credit, and a
// request is admitted when its client's accumulated credit covers the
// request's cost (1 per query, so a 256-query batch costs 256 while an
// interactive search costs 1).  A batch-heavy client therefore waits many
// rounds per admission while single-query clients are admitted almost every
// round — weighted fairness without starving anyone.
//
// Each client's waiting queue is bounded; requests beyond it are rejected
// immediately (HTTP 429) so a misbehaving client sheds its own load instead
// of growing server memory.
type admission struct {
	slots     int // concurrent admissions
	quantum   int // DRR credit per ring visit
	maxQueued int // per-client waiting-queue bound

	mu       sync.Mutex
	active   int
	byKey    map[string]*admClient
	ring     []*admClient // clients with waiters, round-robin order
	admitted int64
	rejected int64
}

type admClient struct {
	key      string
	waiters  []*admWaiter
	deficit  int
	active   int
	admitted int64
	rejected int64
	inRing   bool
}

type admWaiter struct {
	cost      int
	granted   chan struct{}
	cancelled bool
}

// errAdmissionQueueFull is returned when a client's waiting queue is at its
// bound; handlers map it to HTTP 429.
var errAdmissionQueueFull = errors.New("admission queue full for this client")

// defaultAdmissionQuantum is the DRR credit added per ring visit.  One
// quantum admits eight single-query requests per round; a full -max-batch
// batch needs maxBatch/8 rounds of credit.
const defaultAdmissionQuantum = 8

func newAdmission(slots, maxQueued int) *admission {
	if slots < 1 {
		slots = 1
	}
	if maxQueued < 1 {
		maxQueued = 1
	}
	return &admission{
		slots:     slots,
		quantum:   defaultAdmissionQuantum,
		maxQueued: maxQueued,
		byKey:     map[string]*admClient{},
	}
}

// acquire admits one request of the given cost for the client key, blocking
// until a slot is granted or ctx is done.  On success it returns a release
// function that MUST be called exactly once when the request finishes (it is
// safe to call via defer; extra calls are ignored).
func (a *admission) acquire(ctx context.Context, key string, cost int) (release func(), err error) {
	if cost < 1 {
		cost = 1
	}
	a.mu.Lock()
	c := a.byKey[key]
	if c == nil {
		c = &admClient{key: key}
		a.byKey[key] = c
	}
	// Fast path: free slot and nobody queued anywhere — no queue-jumping
	// is possible, so admit immediately.
	if a.active < a.slots && len(a.ring) == 0 {
		a.admitLocked(c)
		a.mu.Unlock()
		return a.releaseFunc(c), nil
	}
	if len(c.waiters) >= a.maxQueued {
		c.rejected++
		a.rejected++
		a.dropIfIdleLocked(c)
		a.mu.Unlock()
		return nil, errAdmissionQueueFull
	}
	w := &admWaiter{cost: cost, granted: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	if !c.inRing {
		c.inRing = true
		a.ring = append(a.ring, c)
	}
	a.mu.Unlock()

	select {
	case <-w.granted:
		return a.releaseFunc(c), nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.granted:
			// The grant raced the cancellation; accept it — the handler
			// will notice ctx and finish (and release) immediately.
			a.mu.Unlock()
			return a.releaseFunc(c), nil
		default:
			// Remove the waiter immediately so it stops counting toward
			// the client's maxQueued bound: a client whose queued requests
			// all timed out must not keep drawing 429s on fresh ones.
			w.cancelled = true
			for i, qw := range c.waiters {
				if qw == w {
					c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
					break
				}
			}
			a.dropIfIdleLocked(c)
		}
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// admitLocked books one admission for c (a.mu held).
func (a *admission) admitLocked(c *admClient) {
	a.active++
	c.active++
	c.admitted++
	a.admitted++
}

// releaseFunc builds the once-only release closure for an admitted request.
func (a *admission) releaseFunc(c *admClient) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.active--
			c.active--
			a.dispatchLocked()
			a.dropIfIdleLocked(c)
			a.mu.Unlock()
		})
	}
}

// dispatchLocked grants freed slots to waiting clients in DRR order (a.mu
// held).  Each ring visit pays the client one quantum of credit and admits
// from its FIFO while the credit covers the head's cost; clients left with
// waiters rotate to the back of the ring, so cheap (interactive) requests
// are admitted every round while expensive batches accumulate credit over
// several rounds.
func (a *admission) dispatchLocked() {
	for a.active < a.slots && len(a.ring) > 0 {
		c := a.ring[0]
		a.ring = a.ring[1:]
		c.pruneCancelled()
		if len(c.waiters) == 0 {
			c.inRing = false
			c.deficit = 0
			a.dropIfIdleLocked(c)
			continue
		}
		c.deficit += a.quantum
		for a.active < a.slots {
			c.pruneCancelled()
			if len(c.waiters) == 0 || c.deficit < c.waiters[0].cost {
				break
			}
			w := c.waiters[0]
			c.waiters = c.waiters[1:]
			c.deficit -= w.cost
			a.admitLocked(c)
			close(w.granted)
		}
		if len(c.waiters) == 0 {
			c.inRing = false
			c.deficit = 0 // classic DRR: credit does not survive an empty queue
			a.dropIfIdleLocked(c)
		} else {
			a.ring = append(a.ring, c)
		}
	}
}

// pruneCancelled drops abandoned waiters from the head of the queue.
func (c *admClient) pruneCancelled() {
	for len(c.waiters) > 0 && c.waiters[0].cancelled {
		c.waiters = c.waiters[1:]
	}
}

// dropIfIdleLocked forgets a client with no active requests and no waiters,
// bounding the tracking map under many distinct client keys (a.mu held).
// Clients still in the dispatch ring are kept; the next dispatch visit
// removes the ring entry and retries the drop.
func (a *admission) dropIfIdleLocked(c *admClient) {
	if c.active == 0 && len(c.waiters) == 0 && !c.inRing {
		delete(a.byKey, c.key)
	}
}

// admissionClientSnapshot is one client's row in the /metrics admission
// section.
type admissionClientSnapshot struct {
	Client   string `json:"client"`
	Queued   int    `json:"queued"`
	Active   int    `json:"active"`
	Admitted int64  `json:"admitted"`
	Rejected int64  `json:"rejected"`
}

// admissionSnapshot is the /metrics view of the admission controller.
type admissionSnapshot struct {
	Slots    int   `json:"slots"`
	Active   int   `json:"active"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	// Clients lists every currently tracked client (active or queued),
	// sorted by key for stable output.
	Clients []admissionClientSnapshot `json:"clients"`
}

func (a *admission) snapshot() admissionSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := admissionSnapshot{Slots: a.slots, Active: a.active, Admitted: a.admitted, Rejected: a.rejected}
	for _, c := range a.byKey {
		queued := 0
		for _, w := range c.waiters {
			if !w.cancelled {
				queued++
			}
		}
		s.Clients = append(s.Clients, admissionClientSnapshot{
			Client: c.key, Queued: queued, Active: c.active, Admitted: c.admitted, Rejected: c.rejected,
		})
	}
	sort.Slice(s.Clients, func(i, j int) bool { return s.Clients[i].Client < s.Clients[j].Client })
	return s
}
