package main

import (
	"testing"
	"time"
)

// TestHistogramSubMicrosecondPrecision pins the truncation fix: observe used
// to convert through whole microseconds, so sub-microsecond requests were
// recorded as exactly 0 ms and the mean/max of fast endpoints read as zero.
func TestHistogramSubMicrosecondPrecision(t *testing.T) {
	h := &latencyHistogram{}
	h.observe(300 * time.Nanosecond)
	s := h.snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if s.SumMs <= 0 || s.MaxMs <= 0 || s.MeanMs <= 0 {
		t.Fatalf("sub-microsecond observation truncated to zero: %+v", s)
	}
	if want := 300.0 / 1e6; s.SumMs != want {
		t.Fatalf("SumMs = %g, want %g", s.SumMs, want)
	}
}

// TestHistogramBucketBoundaries pins the bucket comparison at the bounds: a
// duration exactly on a bound belongs to that bound's bucket (cumulative
// "less or equal" semantics), while one a nanosecond over must fall into the
// next bucket — before the fix, microsecond truncation dragged it back onto
// the bound.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := &latencyHistogram{}
	bound := 250 * time.Microsecond // latencyBounds[0] = 0.25 ms
	h.observe(bound)
	h.observe(bound + time.Nanosecond)
	s := h.snapshot()
	if s.Buckets[0].LeMs != 0.25 {
		t.Fatalf("first bucket bound = %v", s.Buckets[0].LeMs)
	}
	if s.Buckets[0].Count != 1 {
		t.Fatalf("le=0.25ms bucket counts %d, want exactly the on-bound observation", s.Buckets[0].Count)
	}
	if s.Buckets[1].Count != 2 {
		t.Fatalf("le=1ms cumulative count = %d, want 2", s.Buckets[1].Count)
	}
	// The unbounded bucket always equals the total count.
	h.observe(10 * time.Second)
	s = h.snapshot()
	last := s.Buckets[len(s.Buckets)-1]
	if last.LeMs != -1 || last.Count != 3 {
		t.Fatalf("+Inf bucket = %+v, want count 3", last)
	}
	if s.MaxMs != 10000 {
		t.Fatalf("MaxMs = %v, want 10000", s.MaxMs)
	}
}
