package main

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// wantsPrometheus reports whether a /metrics request asked for the Prometheus
// text exposition format instead of the JSON snapshot: either explicitly via
// ?format=prometheus, or through an Accept header preferring text/plain (the
// Prometheus scraper sends "text/plain; version=0.0.4").
func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "version=0.0.4")
}

// writePrometheus renders the /metrics snapshot in the Prometheus text
// exposition format (version 0.0.4).  The fault-tolerance counters —
// degraded_queries_total, shard_quarantined, checksum_failures_total,
// retries_total — are the alerting surface for partial-failure serving; the
// rest mirrors the JSON snapshot (traffic, admission, per-endpoint latency).
func (s *server) writePrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.eng.Stats()
	em := s.eng.Metrics()

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("queries_served_total", "Queries served since process start.", st.QueriesServed)
	counter("hits_reported_total", "Hits streamed to clients since process start.", st.HitsReported)
	counter("degraded_queries_total",
		"Queries that completed with partial results from surviving shards.",
		em.Faults.DegradedQueries)
	gauge("shard_quarantined",
		"Shards quarantined: failed at open plus dropped mid-query over the process lifetime.",
		em.Faults.ShardsQuarantined)
	counter("checksum_failures_total",
		"Disk index blocks that failed CRC32C verification (after one re-read).",
		em.Faults.ChecksumFailures)
	counter("retries_total",
		"Transient disk read errors retried with backoff.",
		em.Faults.ReadRetries)

	mm := em.Mutable
	gauge("index_generation",
		"Current index generation; bumps on every insert, delete and compaction.",
		int64(mm.Generation))
	counter("inserts_total", "Sequences inserted since process start.", mm.Inserts)
	counter("deletes_total", "Sequences tombstoned since process start.", mm.Deletes)
	counter("compactions_total", "Mutable-layer compactions completed.", mm.Compactions)
	gauge("memtable_sequences", "Inserted sequences not yet compacted.", int64(mm.MemtableSequences))
	gauge("delta_layers", "Searchable delta layers over the base index.", int64(mm.DeltaLayers))
	gauge("tombstones", "Deleted sequences still physically present.", int64(mm.Tombstones))
	gauge("live_sequences", "Searchable sequences after tombstone filtering.", int64(mm.LiveSequences))

	if em.Cache != nil {
		counter("cache_hits_total", "Result-cache hits.", em.Cache.Hits)
		counter("cache_misses_total", "Result-cache misses.", em.Cache.Misses)
		counter("cache_replacements_total",
			"Result-cache entries overwritten by a same-key Put.", em.Cache.Replacements)
		counter("cache_oversized_total",
			"Result streams refused caching for exceeding the per-entry budget.", em.Cache.Oversized)
		counter("cache_injected_faults_total",
			"Cache lookups failed by an active faultpoint drill.", em.Cache.InjectedFaults)
	}
	if s.adm != nil {
		adm := s.adm.snapshot()
		gauge("admission_active", "Requests currently holding an admission slot.", int64(adm.Active))
		counter("admission_admitted_total", "Requests admitted.", adm.Admitted)
		counter("admission_rejected_total", "Requests rejected with 429 (client queue full).", adm.Rejected)
	}

	if co := s.cfg.coordinator; co != nil {
		// Coordinator fan-out robustness counters: the alerting surface for a
		// distributed deployment.  remote_slice_failures_total firing means a
		// whole slice exhausted every replica (queries degraded or failed);
		// remote_failovers_total and remote_hedge_wins_total rising without it
		// means the replica sets are absorbing faults as designed.
		rm := co.RemoteMetrics()
		counter("remote_streams_total", "Slice streams served by the coordinator fan-out.", rm.Streams)
		counter("remote_attempts_total", "Stream attempts issued (first tries + retries).", rm.Attempts)
		counter("remote_retries_total", "Re-attempts after a failed stream attempt.", rm.Retries)
		counter("remote_failovers_total", "Re-attempts that switched to another replica.", rm.Failovers)
		counter("remote_hedges_total", "Hedge requests launched against tail-slow replicas.", rm.Hedges)
		counter("remote_hedge_wins_total", "Hedge requests whose response won the race.", rm.HedgeWins)
		counter("remote_slice_failures_total", "Slice streams that exhausted every attempt.", rm.SliceFailures)
		fmt.Fprintf(w, "# HELP remote_replica_up Replica health: 1 up, 0.5 degraded, 0 down.\n")
		fmt.Fprintf(w, "# TYPE remote_replica_up gauge\n")
		for _, sh := range co.Health() {
			for _, r := range sh.Replicas {
				v := "0"
				switch r.State {
				case "up":
					v = "1"
				case "degraded":
					v = "0.5"
				}
				fmt.Fprintf(w, "remote_replica_up{slice=\"%d\",replica=%q} %s\n", sh.Slice, r.Addr, v)
			}
		}
	}

	labels := make([]string, 0, len(s.lat))
	for label := range s.lat {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	fmt.Fprintf(w, "# HELP request_duration_seconds End-to-end request latency per endpoint.\n")
	fmt.Fprintf(w, "# TYPE request_duration_seconds histogram\n")
	for _, label := range labels {
		snap := s.lat[label].snapshot()
		for _, b := range snap.Buckets {
			le := "+Inf"
			if b.LeMs >= 0 {
				le = fmt.Sprintf("%g", b.LeMs/1e3)
			}
			fmt.Fprintf(w, "request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", label, le, b.Count)
		}
		fmt.Fprintf(w, "request_duration_seconds_sum{endpoint=%q} %g\n", label, snap.SumMs/1e3)
		fmt.Fprintf(w, "request_duration_seconds_count{endpoint=%q} %d\n", label, snap.Count)
	}
}
