package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/oasis"
)

// diskTestServer builds a sharded disk index for the test database and
// serves it through a disk-backed engine (the -index-dir path of main).
func diskTestServer(t *testing.T) *server {
	t.Helper()
	raw := map[string]string{
		"CALM_HUMAN":  "ADQLTEEQIAEFKEAFSLFDKDGDGTITTKELGTVMRSLGQNPTEAELQDMINEVDADGNGTIDFPEFLTMMARKM",
		"TNNC1_HUMAN": "MDDIYKAAVEQLTEEQKNEFKAAFDIFVLGAEDGCISTKELGKVMRMLGQNPTPEELQEMIDEVDEDGSGTVDFDEFLVMMVRCM",
		"MYG_HUMAN":   "GLSDGEWQLVLNVWGKVEADIPGHGQEVLIRLFKGHPETLEKFDKFKHLKSEDEMKASEDLKKHGATVLTALGGILKKKGHHEAEI",
		"UNRELATED":   "PPPPGGGGSSSSPPPPGGGGSSSSPPPPGGGGSSSS",
	}
	var seqs []oasis.Sequence
	for id, residues := range raw {
		seqs = append(seqs, oasis.Sequence{ID: id, Residues: oasis.Protein.MustEncode(residues)})
	}
	db, err := oasis.NewDatabase(oasis.Protein, seqs)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if _, _, err := oasis.BuildShardedDiskIndex(dir, db, oasis.ShardedIndexBuildOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	eng, err := oasis.OpenEngine(dir, oasis.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(eng, serverConfig{scheme: scheme, defaultEValue: 20000, maxBatch: 8})
}

// TestDiskBackedSearchStreams serves a query from the disk index and checks
// the stream matches the in-memory server's contract: decreasing scores, a
// final done event, and hits for the homologous sequences.
func TestDiskBackedSearchStreams(t *testing.T) {
	srv := diskTestServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`))
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	events := decodeNDJSON(t, rec.Body.String())
	if len(events) < 2 {
		t.Fatalf("got %d events, want hits plus done", len(events))
	}
	last := events[len(events)-1]
	if last.Type != "done" {
		t.Fatalf("final event is %q, want done", last.Type)
	}
	prev := int(^uint(0) >> 1)
	seen := map[string]bool{}
	for _, ev := range events[:len(events)-1] {
		if ev.Type != "hit" {
			t.Fatalf("unexpected event %+v", ev)
		}
		if ev.Score > prev {
			t.Fatalf("score %d after %d", ev.Score, prev)
		}
		prev = ev.Score
		seen[ev.SeqID] = true
	}
	if !seen["CALM_HUMAN"] {
		t.Fatalf("calmodulin not reported: %v", seen)
	}
	// A disk-backed server's /healthz must describe the manifest's database.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["sequences"].(float64) != 4 || health["shards"].(float64) != 2 {
		t.Fatalf("healthz = %v", health)
	}
}

// metricsDoc mirrors the /metrics JSON shape the doc comment promises.
type metricsDoc struct {
	Engine struct {
		Pools []struct {
			Shard    int     `json:"shard"`
			Requests int64   `json:"requests"`
			HitRatio float64 `json:"hit_ratio"`
		} `json:"pools"`
	} `json:"engine"`
	Latency map[string]latencySnapshot `json:"latency"`
}

// TestMetricsLatencyHistograms asserts the per-endpoint latency histograms:
// after one /search and one /healthz request, /metrics must report one
// observation for each, with monotone cumulative buckets summing to the
// count, and the disk-backed engine must expose per-shard pool stats.
func TestMetricsLatencyHistograms(t *testing.T) {
	srv := diskTestServer(t)
	srv.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	srv.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var doc metricsDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for endpoint, want := range map[string]int64{"search": 1, "healthz": 1, "metrics": 0} {
		h, ok := doc.Latency[endpoint]
		if !ok {
			t.Fatalf("no latency histogram for %q: %v", endpoint, doc.Latency)
		}
		if h.Count != want {
			t.Fatalf("%s histogram counts %d requests, want %d", endpoint, h.Count, want)
		}
		if len(h.Buckets) == 0 {
			t.Fatalf("%s histogram has no buckets", endpoint)
		}
		var prev int64 = -1
		for _, b := range h.Buckets {
			if b.Count < prev {
				t.Fatalf("%s histogram buckets not cumulative: %v", endpoint, h.Buckets)
			}
			prev = b.Count
		}
		final := h.Buckets[len(h.Buckets)-1]
		if final.LeMs != -1 || final.Count != h.Count {
			t.Fatalf("%s +Inf bucket is %+v, want count %d", endpoint, final, h.Count)
		}
		if want > 0 && (h.SumMs < 0 || h.MeanMs < 0 || h.MaxMs < h.MeanMs) {
			t.Fatalf("%s histogram summary inconsistent: %+v", endpoint, h)
		}
	}
	if len(doc.Engine.Pools) != 2 {
		t.Fatalf("disk-backed metrics expose %d pools, want 2", len(doc.Engine.Pools))
	}
	var requests int64
	for _, p := range doc.Engine.Pools {
		requests += p.Requests
	}
	if requests == 0 {
		t.Fatal("pools saw no requests after a search")
	}
}
