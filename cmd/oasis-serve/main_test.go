package main

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine: HTTP handlers,
// admission queues, and background mutators must all stop with their server.
func TestMain(m *testing.M) { leakcheck.Main(m) }
