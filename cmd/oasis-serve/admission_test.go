package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/oasis"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// queuedFor reads one client's queued count from the snapshot.
func queuedFor(a *admission, client string) int {
	for _, c := range a.snapshot().Clients {
		if c.Client == client {
			return c.Queued
		}
	}
	return 0
}

// enqueue starts an acquire in a goroutine and returns a channel that
// yields its release function once granted.
func enqueue(t *testing.T, a *admission, client string, cost int, order *[]string, mu *sync.Mutex) <-chan func() {
	t.Helper()
	ch := make(chan func(), 1)
	go func() {
		release, err := a.acquire(context.Background(), client, cost)
		if err != nil {
			t.Errorf("client %s: %v", client, err)
			close(ch)
			return
		}
		mu.Lock()
		*order = append(*order, client)
		mu.Unlock()
		ch <- release
	}()
	return ch
}

// TestAdmissionRoundRobinFairness pins the headline property: a client that
// has queued a burst of requests does not get them admitted back to back —
// a second client arriving later is interleaved round-robin, where the old
// FIFO would have served the whole burst first.
func TestAdmissionRoundRobinFairness(t *testing.T) {
	a := newAdmission(1, 16)
	relFirst, err := a.acquire(context.Background(), "greedy", 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	var chans []<-chan func()
	for i := 0; i < 4; i++ {
		chans = append(chans, enqueue(t, a, "greedy", 1, &order, &mu))
		waitFor(t, "greedy waiter queued", func() bool { return queuedFor(a, "greedy") == i+1 })
	}
	chans = append(chans, enqueue(t, a, "polite", 1, &order, &mu))
	waitFor(t, "polite waiter queued", func() bool { return queuedFor(a, "polite") == 1 })

	relFirst()
	for range chans {
		// Admissions happen one at a time (slots=1); release each as it
		// lands so the next dispatch runs.
		waitFor(t, "next admission", func() bool {
			for _, ch := range chans {
				select {
				case rel, ok := <-ch:
					if ok {
						rel()
					}
					return true
				default:
				}
			}
			return false
		})
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 {
		t.Fatalf("admitted %d waiters, want 5 (%v)", len(order), order)
	}
	// Round-robin must slot "polite" in after at most one more "greedy"
	// admission; FIFO would have put it last.
	for i, c := range order {
		if c == "polite" {
			if i > 1 {
				t.Fatalf("polite client admitted at position %d behind the greedy burst: %v", i, order)
			}
			return
		}
	}
	t.Fatalf("polite client never admitted: %v", order)
}

// TestAdmissionCostWeighting pins the deficit weighting: an expensive batch
// (cost many queries) must accumulate credit over several rounds while
// cheap interactive requests are admitted every round, so every search
// queued at saturation goes first.
func TestAdmissionCostWeighting(t *testing.T) {
	a := newAdmission(1, 16)
	relFirst, err := a.acquire(context.Background(), "batcher", 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	batchCh := enqueue(t, a, "batcher", 33, &order, &mu) // > 4 quanta of credit
	waitFor(t, "batch queued", func() bool { return queuedFor(a, "batcher") == 1 })
	var searchChans []<-chan func()
	for i := 0; i < 3; i++ {
		searchChans = append(searchChans, enqueue(t, a, "interactive", 1, &order, &mu))
		waitFor(t, "search queued", func() bool { return queuedFor(a, "interactive") == i+1 })
	}

	relFirst()
	for _, ch := range searchChans {
		rel := <-ch
		rel()
	}
	rel := <-batchCh
	rel()
	mu.Lock()
	defer mu.Unlock()
	want := []string{"interactive", "interactive", "interactive", "batcher"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("admission order %v, want %v", order, want)
		}
	}
	// Everyone done: the tracking map must not leak idle clients.
	if clients := a.snapshot().Clients; len(clients) != 0 {
		t.Fatalf("idle admission controller still tracks %v", clients)
	}
}

// TestAdmissionQueueFull checks the per-client bound: the client with a full
// waiting queue is rejected, other clients are unaffected.
func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 2)
	rel, err := a.acquire(context.Background(), "flood", 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	ch1 := enqueue(t, a, "flood", 1, &order, &mu)
	waitFor(t, "first waiter", func() bool { return queuedFor(a, "flood") == 1 })
	ch2 := enqueue(t, a, "flood", 1, &order, &mu)
	waitFor(t, "second waiter", func() bool { return queuedFor(a, "flood") == 2 })
	if _, err := a.acquire(context.Background(), "flood", 1); !errors.Is(err, errAdmissionQueueFull) {
		t.Fatalf("third waiter got %v, want errAdmissionQueueFull", err)
	}
	// A different client still queues fine.
	chOther := enqueue(t, a, "other", 1, &order, &mu)
	waitFor(t, "other client queued", func() bool { return queuedFor(a, "other") == 1 })
	s := a.snapshot()
	if s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
	rel()
	// Drain grants in whatever order round-robin produces them (the other
	// client is admitted between the flood client's two waiters).
	pending := []<-chan func(){ch1, ch2, chOther}
	for len(pending) > 0 {
		granted := false
		for i, ch := range pending {
			select {
			case r := <-ch:
				r()
				pending = append(pending[:i], pending[i+1:]...)
				granted = true
			default:
			}
			if granted {
				break
			}
		}
		if !granted {
			time.Sleep(time.Millisecond)
		}
	}
}

// TestAdmissionCancelledWaiter checks a waiter abandoned by its client frees
// its queue spot and is never granted a slot.
func TestAdmissionCancelledWaiter(t *testing.T) {
	a := newAdmission(1, 4)
	rel, err := a.acquire(context.Background(), "c", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, "c", 1)
		errCh <- err
	}()
	waitFor(t, "waiter queued", func() bool { return queuedFor(a, "c") == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	rel()
	waitFor(t, "controller to drain", func() bool {
		s := a.snapshot()
		return s.Active == 0 && len(s.Clients) == 0
	})
	if got := a.snapshot().Admitted; got != 1 {
		t.Fatalf("admitted = %d, want only the original request", got)
	}
}

// TestAdmissionCancelledWaitersFreeQueueSpots pins the stale-waiter fix: a
// client whose queued requests all timed out client-side must not keep
// drawing 429s on fresh requests — cancellation must free the maxQueued
// spot immediately, not at the next dispatch.
func TestAdmissionCancelledWaitersFreeQueueSpots(t *testing.T) {
	a := newAdmission(1, 2)
	rel, err := a.acquire(context.Background(), "c", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the client's queue, then cancel both waiters.
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := a.acquire(ctx, "c", 1)
			errs <- err
		}()
		waitFor(t, "waiter queued", func() bool { return queuedFor(a, "c") == i+1 })
	}
	cancel()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter got %v", err)
		}
	}
	// The queue is empty again: a fresh request must queue, not 429.
	var mu sync.Mutex
	var order []string
	fresh := enqueue(t, a, "c", 1, &order, &mu)
	waitFor(t, "fresh waiter queued after cancellations", func() bool { return queuedFor(a, "c") == 1 })
	rel()
	r := <-fresh
	r()
	if s := a.snapshot(); s.Rejected != 0 {
		t.Fatalf("fresh request after cancellations was rejected: %+v", s)
	}
}

// TestServerAdmissionAndCacheMetrics wires it together over HTTP: a cached
// engine behind admission control must expose cache hit-rate, admission
// counters, and replay identical streams for identical queries.
func TestServerAdmissionAndCacheMetrics(t *testing.T) {
	raw := map[string]string{
		"CALM_HUMAN": "ADQLTEEQIAEFKEAFSLFDKDGDGTITTKELGTVMRSLGQNPTEAELQDMINEVDADGNGTIDFPEFLTMMARKM",
		"MYG_HUMAN":  "GLSDGEWQLVLNVWGKVEADIPGHGQEVLIRLFKGHPETLEKFDKFKHLKSEDEMKASEDLKKHGATVLTALGGILKKKGHHEAEI",
	}
	var seqs []oasis.Sequence
	for id, residues := range raw {
		seqs = append(seqs, oasis.Sequence{ID: id, Residues: oasis.Protein.MustEncode(residues)})
	}
	db, err := oasis.NewDatabase(oasis.Protein, seqs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := oasis.NewEngine(db, oasis.EngineOptions{Shards: 2, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(eng, serverConfig{
		scheme: scheme, defaultEValue: 20000, maxBatch: 8,
		admissionSlots: 2, admissionQueue: 4,
	})

	// The hit lines of a replay must be byte-identical to the original
	// stream; the done event legitimately differs (elapsed time, and the
	// replay's near-zero work counters — which are the point of the cache).
	hitLines := func(body string) string {
		var hits []string
		for _, line := range strings.Split(body, "\n") {
			if strings.Contains(line, `"type":"hit"`) {
				hits = append(hits, line)
			}
		}
		return strings.Join(hits, "\n")
	}
	var bodies []string
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`))
		req.Header.Set("X-Client-ID", "tester")
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("search %d: status %d", i, rec.Code)
		}
		bodies = append(bodies, rec.Body.String())
	}
	if hitLines(bodies[0]) == "" || hitLines(bodies[0]) != hitLines(bodies[1]) {
		t.Fatalf("cached replay hit stream differs:\n%s\nvs\n%s", bodies[0], bodies[1])
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var m struct {
		Engine struct {
			Cache *struct {
				Hits   int64 `json:"hits"`
				Misses int64 `json:"misses"`
			} `json:"cache"`
		} `json:"engine"`
		CacheHitRate *float64           `json:"cache_hit_rate"`
		Admission    *admissionSnapshot `json:"admission"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("bad metrics JSON %s: %v", rec.Body.String(), err)
	}
	if m.Engine.Cache == nil || m.Engine.Cache.Hits == 0 {
		t.Fatalf("metrics show no cache hit after an identical repeat: %s", rec.Body.String())
	}
	if m.CacheHitRate == nil || *m.CacheHitRate <= 0 {
		t.Fatalf("cache_hit_rate missing or zero: %s", rec.Body.String())
	}
	if m.Admission == nil || m.Admission.Slots != 2 || m.Admission.Admitted != 2 {
		t.Fatalf("admission metrics = %+v, want slots=2 admitted=2", m.Admission)
	}
}
