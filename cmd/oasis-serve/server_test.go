package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/oasis"
)

func testServer(t *testing.T) *server {
	t.Helper()
	raw := map[string]string{
		"CALM_HUMAN":  "ADQLTEEQIAEFKEAFSLFDKDGDGTITTKELGTVMRSLGQNPTEAELQDMINEVDADGNGTIDFPEFLTMMARKM",
		"TNNC1_HUMAN": "MDDIYKAAVEQLTEEQKNEFKAAFDIFVLGAEDGCISTKELGKVMRMLGQNPTPEELQEMIDEVDEDGSGTVDFDEFLVMMVRCM",
		"MYG_HUMAN":   "GLSDGEWQLVLNVWGKVEADIPGHGQEVLIRLFKGHPETLEKFDKFKHLKSEDEMKASEDLKKHGATVLTALGGILKKKGHHEAEI",
		"UNRELATED":   "PPPPGGGGSSSSPPPPGGGGSSSSPPPPGGGGSSSS",
	}
	var seqs []oasis.Sequence
	for id, residues := range raw {
		seqs = append(seqs, oasis.Sequence{ID: id, Residues: oasis.Protein.MustEncode(residues)})
	}
	db, err := oasis.NewDatabase(oasis.Protein, seqs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := oasis.NewEngine(db, oasis.EngineOptions{Shards: 2, PartitionByPrefix: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(eng, serverConfig{scheme: scheme, defaultEValue: 20000, maxBatch: 8})
}

func decodeNDJSON(t *testing.T, body string) []hitEvent {
	t.Helper()
	var events []hitEvent
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ev hitEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	return events
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["shards"].(float64) != 2 {
		t.Fatalf("healthz = %v", body)
	}
}

func TestSearchStreamsDecreasingScores(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`))
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	events := decodeNDJSON(t, rec.Body.String())
	if len(events) < 2 {
		t.Fatalf("expected hits + done, got %d events", len(events))
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.Stats == nil {
		t.Fatalf("final event = %+v, want done with stats", last)
	}
	prev := int(^uint(0) >> 1)
	hits := 0
	for _, ev := range events[:len(events)-1] {
		if ev.Type != "hit" {
			t.Fatalf("unexpected event %+v", ev)
		}
		if ev.Score > prev {
			t.Fatalf("scores not decreasing: %d after %d", ev.Score, prev)
		}
		prev = ev.Score
		hits++
	}
	if last.Hits != hits {
		t.Fatalf("done counted %d hits, stream had %d", last.Hits, hits)
	}
}

func TestSearchTopK(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE","top":1}`))
	srv.ServeHTTP(rec, req)
	events := decodeNDJSON(t, rec.Body.String())
	hits := 0
	for _, ev := range events {
		if ev.Type == "hit" {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("top=1 streamed %d hits", hits)
	}
}

func TestBatchDemultiplexes(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	body := `{"queries":[{"id":"ef","query":"DKDGDGTITTKE"},{"id":"myo","query":"FDKFKHLK"}]}`
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/batch", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	events := decodeNDJSON(t, rec.Body.String())
	lastScore := map[string]int{}
	done := map[string]bool{}
	for _, ev := range events {
		switch ev.Type {
		case "hit":
			if prev, ok := lastScore[ev.QueryID]; ok && ev.Score > prev {
				t.Fatalf("query %q: score order violated", ev.QueryID)
			}
			lastScore[ev.QueryID] = ev.Score
		case "done":
			done[ev.QueryID] = true
		default:
			t.Fatalf("unexpected event %+v", ev)
		}
	}
	if !done["ef"] || !done["myo"] || len(done) != 2 {
		t.Fatalf("done events = %v", done)
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		path, body string
	}{
		{"/search", `{"query":""}`},
		{"/search", `not json`},
		{"/batch", `{"queries":[]}`},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", c.path, strings.NewReader(c.body)))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s %q: status %d, want 400", c.path, c.body, rec.Code)
		}
	}
}

// TestBatchOverLimitIs413 pins the admission-control contract: a batch over
// the -max-batch limit is rejected with 413 before any query is admitted to
// the worker pool.
func TestBatchOverLimitIs413(t *testing.T) {
	srv := testServer(t) // maxBatch: 8
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i < 9; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"query":"ACD"}`)
	}
	sb.WriteString(`]}`)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/batch", strings.NewReader(sb.String())))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rec.Code, rec.Body.String())
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "batch limit 8") {
		t.Fatalf("error body %q does not name the limit", body["error"])
	}
	st := srv.eng.Stats()
	if st.QueriesServed != 0 {
		t.Fatalf("over-limit batch was admitted: %d queries served", st.QueriesServed)
	}
}

// TestMetricsEndpoint checks /metrics exposes the scratch free-list stats
// and one queue-depth entry per shard.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("warm-up search failed: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Engine struct {
			Scratch struct {
				Gets   int64 `json:"Gets"`
				Reuses int64 `json:"Reuses"`
				Idle   int   `json:"Idle"`
			} `json:"scratch"`
			Shards []struct {
				Shard  int   `json:"shard"`
				Queued int64 `json:"queued"`
				Active int64 `json:"active"`
			} `json:"shards"`
		} `json:"engine"`
		QueriesServed int64 `json:"queries_served"`
		MaxBatch      int   `json:"max_batch"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad metrics JSON %s: %v", rec.Body.String(), err)
	}
	if len(body.Engine.Shards) != 2 {
		t.Fatalf("metrics list %d shards, want 2", len(body.Engine.Shards))
	}
	for i, sh := range body.Engine.Shards {
		if sh.Shard != i || sh.Queued != 0 || sh.Active != 0 {
			t.Fatalf("idle engine shard %d metrics = %+v", i, sh)
		}
	}
	if body.Engine.Scratch.Gets <= 0 {
		t.Fatalf("scratch stats missing after a served query: %+v", body.Engine.Scratch)
	}
	if body.QueriesServed != 1 || body.MaxBatch != 8 {
		t.Fatalf("metrics = served %d, max_batch %d; want 1, 8", body.QueriesServed, body.MaxBatch)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search", strings.NewReader(`{"query":"DKDGDGTITTKE"}`)))
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var st oasis.EngineStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.QueriesServed != 1 {
		t.Fatalf("stats = %+v, want 1 query served", st)
	}
}
