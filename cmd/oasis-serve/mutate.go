package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
)

// insertRequest is the JSON body of POST /insert.
type insertRequest struct {
	// ID is the new sequence's identifier; it must be unique among live
	// sequences (re-using a deleted ID is allowed).
	ID string `json:"id"`
	// Sequence is the residue string (protein or DNA letters, matching the
	// server's database alphabet).
	Sequence string `json:"sequence"`
}

// deleteRequest is the JSON body of POST /delete.
type deleteRequest struct {
	// ID names the live sequence to tombstone.
	ID string `json:"id"`
}

// mutateResponse answers every mutation endpoint: the index generation the
// write produced (searches from then on see the change; result-cache entries
// of older generations become unreachable) and the mutable-layer occupancy,
// so ingest pipelines can decide when to POST /compact.
type mutateResponse struct {
	Status string `json:"status"`
	ID     string `json:"id,omitempty"`
	// Generation is the index generation after the operation.
	Generation uint64 `json:"generation"`
	// MemtableSequences counts inserts not yet folded to disk; Tombstones
	// counts deletes not yet compacted away.
	MemtableSequences int `json:"memtable_sequences"`
	Tombstones        int `json:"tombstones"`
	// Compacted marks a /compact response that actually folded state (false
	// when there was nothing to do).
	Compacted bool `json:"compacted,omitempty"`
}

// mutationAllowed rejects writes while the server drains: a write admitted
// during shutdown could bump the generation after in-flight streams pinned
// theirs, which is safe but pointless — the process is about to exit and
// disk-backed inserts would be lost without a final compaction anyway.
func (s *server) mutationAllowed(w http.ResponseWriter) bool {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
		return false
	}
	return true
}

// handleInsert grows the served corpus by one sequence; the sequence is
// searchable as soon as the response is written.  With -compact-after N, a
// background compaction is triggered once the memtable holds N sequences.
func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if !s.mutationAllowed(w) {
		return
	}
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if req.ID == "" || req.Sequence == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("insert needs both id and sequence"))
		return
	}
	residues, err := s.eng.Alphabet().Encode(req.Sequence)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	gen, err := s.eng.Insert(req.ID, residues)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	mm := s.eng.Metrics().Mutable
	writeJSON(w, http.StatusOK, mutateResponse{
		Status: "ok", ID: req.ID, Generation: gen,
		MemtableSequences: mm.MemtableSequences, Tombstones: mm.Tombstones,
	})
	s.maybeCompact(mm.MemtableSequences)
}

// handleDelete tombstones one live sequence; subsequent searches filter it
// out (and terminate their all-sequences early stop at the shrunken live
// count).  The tombstone is persisted at the next compaction.
func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.mutationAllowed(w) {
		return
	}
	var req deleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if req.ID == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("delete needs an id"))
		return
	}
	gen, err := s.eng.Delete(req.ID)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	mm := s.eng.Metrics().Mutable
	writeJSON(w, http.StatusOK, mutateResponse{
		Status: "ok", ID: req.ID, Generation: gen,
		MemtableSequences: mm.MemtableSequences, Tombstones: mm.Tombstones,
	})
}

// handleCompact folds the mutable layer down a level synchronously (see
// Engine.Compact); ingest pipelines call it after a bulk load, and
// -compact-after triggers the same operation automatically in the
// background.
func (s *server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if !s.mutationAllowed(w) {
		return
	}
	before := s.eng.Generation()
	gen, err := s.eng.Compact()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	mm := s.eng.Metrics().Mutable
	writeJSON(w, http.StatusOK, mutateResponse{
		Status: "ok", Generation: gen, Compacted: gen != before,
		MemtableSequences: mm.MemtableSequences, Tombstones: mm.Tombstones,
	})
}

// maybeCompact starts one background compaction when the memtable has grown
// past the -compact-after threshold.  compacting is a single-flight latch so
// a burst of inserts triggers one compaction, not one per insert.
func (s *server) maybeCompact(memtableSeqs int) {
	if s.cfg.compactAfter <= 0 || memtableSeqs < s.cfg.compactAfter {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		gen, err := s.eng.Compact()
		if err != nil {
			log.Printf("background compaction failed (still serving from memory): %v", err)
			return
		}
		log.Printf("background compaction done: generation %d", gen)
	}()
}
