package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/remote"
	"repro/internal/seq"
	"repro/internal/shard"
)

// runShardServer serves one corpus slice over the shard wire protocol
// (package repro/internal/remote) for a coordinator to fan out to.  The
// serving surface is deliberately bare: a slice engine behind POST
// /oasis/shard/stream and GET /oasis/shard/info, plus health and metrics.
// No result cache and no admission control run here — a shard server sees
// per-slice fragments of queries, so caching and fairness belong to the
// coordinator, which sees whole queries and whole clients.
func runShardServer(f serveFlags) error {
	if f.coordinator || f.slices != "" {
		return fmt.Errorf("-shard-server and -coordinator are mutually exclusive: a coordinator connects TO shard servers")
	}
	if f.allowDegr {
		// A degraded slice would stream partial results that the coordinator
		// merges as if they were the whole slice — silently wrong globally.
		// Refusing to start keeps the failure visible: the coordinator fails
		// over to a healthy replica (or degrades the whole slice explicitly).
		return fmt.Errorf("-allow-degraded is not supported with -shard-server: a partial slice would be merged as if complete; let this replica fail so the coordinator fails over")
	}

	build := time.Now()
	var (
		eng  *shard.Engine
		mode string
		err  error
	)
	switch {
	case f.indexDir != "":
		if f.dbPath != "" {
			return fmt.Errorf("-db and -index-dir are mutually exclusive")
		}
		if f.shards != 0 || f.prefixShards {
			return fmt.Errorf("-shards/-prefix-sharding come from the -index-dir manifest; do not set them")
		}
		log.Printf("opening slice index %s ...", f.indexDir)
		eng, err = shard.OpenDiskEngine(f.indexDir, shard.DiskOptions{
			Workers:           f.shardWorkers,
			PoolBytesPerShard: f.poolMB << 20,
		})
		mode = fmt.Sprintf("disk-backed (<=%d MB pool per shard)", f.poolMB)
	case f.dbPath != "":
		alpha := seq.Protein
		if f.alphabet == "dna" {
			alpha = seq.DNA
		} else if f.alphabet != "protein" {
			return fmt.Errorf("unknown alphabet %q", f.alphabet)
		}
		log.Printf("loading %s ...", f.dbPath)
		var db *seq.Database
		db, err = seq.ReadFASTAFile(f.dbPath, alpha)
		if err != nil {
			return err
		}
		pmode := shard.PartitionBySequence
		if f.prefixShards {
			pmode = shard.PartitionByPrefix
		}
		eng, err = shard.NewEngine(db, shard.Options{
			Shards:    f.shards,
			Workers:   f.shardWorkers,
			Partition: pmode,
		})
		mode = "in-memory"
	default:
		return fmt.Errorf("either -db or -index-dir is required")
	}
	if err != nil {
		return err
	}

	rs := remote.NewServer(eng)
	info := rs.Info()
	log.Printf("shard server ready: %d sequences (%d residues), %d shards %s (%s partition), ready in %s",
		info.Sequences, info.Residues, info.Shards, mode, info.Partition, time.Since(build).Round(time.Millisecond))

	var notReady atomic.Bool
	mux := http.NewServeMux()
	rs.Register(mux)
	mux.HandleFunc("GET /healthz/live", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /healthz/ready", func(w http.ResponseWriter, _ *http.Request) {
		if notReady.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "not_ready", "reason": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "slice": info})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		status := "ok"
		if notReady.Load() {
			status = "draining"
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    "ok",
			"serving":   status,
			"shards":    info.Shards,
			"sequences": info.Sequences,
			"residues":  info.Residues,
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		st := rs.Stats()
		if wantsPrometheus(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			fmt.Fprintf(w, "# HELP shard_streams_total Slice streams served.\n# TYPE shard_streams_total counter\nshard_streams_total %d\n", st.Streams)
			fmt.Fprintf(w, "# HELP shard_streams_cancelled_total Streams cancelled by the coordinator (hedge losses, early top-k, client disconnects).\n# TYPE shard_streams_cancelled_total counter\nshard_streams_cancelled_total %d\n", st.Cancelled)
			fmt.Fprintf(w, "# HELP shard_streams_active Streams running right now.\n# TYPE shard_streams_active gauge\nshard_streams_active %d\n", st.Active)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"server": st, "slice": info})
	})

	srv := &http.Server{
		Addr:              f.addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       f.idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving slice on %s", f.addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	notReady.Store(true)
	if f.drainGrace > 0 {
		log.Printf("not ready; draining for %s before closing listeners ...", f.drainGrace)
		time.Sleep(f.drainGrace)
	}
	log.Printf("shutting down (waiting up to %s for in-flight streams) ...", f.shutdownWait)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), f.shutdownWait)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := eng.Close(); err != nil {
		return err
	}
	st := rs.Stats()
	log.Printf("bye: served %d slice streams (%d cancelled)", st.Streams, st.Cancelled)
	return nil
}
