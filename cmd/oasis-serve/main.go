// Command oasis-serve is the long-running OASIS search server: it loads a
// FASTA database, builds a warm sharded engine ONCE, and then serves many
// queries over HTTP, amortising index construction and searcher scratch
// across the whole query stream (the batch-engine counterpart of the paper's
// online search property: build once, serve many, stream top-k).
//
// Endpoints:
//
//	GET  /healthz  liveness + database shape
//	GET  /stats    lifetime engine counters (queries, hits, work)
//	GET  /metrics  resource snapshot: scratch free-list reuse, per-shard
//	               worker-pool queue depths, batch limit
//	POST /search   one query; NDJSON stream of hits in decreasing score order
//	POST /batch    many queries multiplexed over one connection; events carry
//	               query_id, each query's hits are decreasing-score.
//	               Batches over -max-batch are rejected with HTTP 413 so one
//	               huge batch cannot monopolise the worker pool.
//
// Example:
//
//	oasis-serve -db swissprot.fasta -shards 8 -addr :8080
//	curl -sN localhost:8080/search -d '{"query":"DKDGDGCITTKEL","top":5}'
//
// The server shuts down gracefully on SIGINT/SIGTERM: listeners close first,
// in-flight streams finish (bounded by -shutdown-timeout), then the engine
// drains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/oasis"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dbPath       = flag.String("db", "", "FASTA database to index and serve (required)")
		alphabet     = flag.String("alphabet", "protein", "alphabet: protein or dna")
		matrix       = flag.String("matrix", "PAM30", "substitution matrix")
		gap          = flag.Int("gap", -10, "linear gap penalty (negative)")
		eValue       = flag.Float64("evalue", 20000, "default E-value threshold for queries that do not set one")
		shards       = flag.Int("shards", 0, "work partitions (0 = one)")
		prefixShards = flag.Bool("prefix-sharding", false, "partition by suffix-tree prefix over one shared index instead of by sequence (near-root work done once per query)")
		shardWorkers = flag.Int("shard-workers", 0, "concurrent shard searches per query (0 = one per shard)")
		batchWorkers = flag.Int("batch-workers", 0, "concurrent queries per batch (0 = GOMAXPROCS)")
		maxBatch     = flag.Int("max-batch", 256, "maximum queries per /batch request")
		shutdownWait = flag.Duration("shutdown-timeout", 30*time.Second, "graceful shutdown deadline")
	)
	flag.Parse()
	if err := run(*addr, *dbPath, *alphabet, *matrix, *gap, *eValue,
		*shards, *prefixShards, *shardWorkers, *batchWorkers, *maxBatch, *shutdownWait); err != nil {
		fmt.Fprintln(os.Stderr, "oasis-serve:", err)
		os.Exit(1)
	}
}

func run(addr, dbPath, alphabet, matrixName string, gap int, eValue float64,
	shards int, prefixShards bool, shardWorkers, batchWorkers, maxBatch int, shutdownWait time.Duration) error {
	if dbPath == "" {
		return fmt.Errorf("-db is required")
	}
	alpha := oasis.Protein
	if alphabet == "dna" {
		alpha = oasis.DNA
	} else if alphabet != "protein" {
		return fmt.Errorf("unknown alphabet %q", alphabet)
	}
	matrix := oasis.MatrixByName(matrixName)
	if matrix == nil {
		return fmt.Errorf("unknown matrix %q", matrixName)
	}
	scheme, err := oasis.NewScheme(matrix, gap)
	if err != nil {
		return err
	}

	log.Printf("loading %s ...", dbPath)
	db, err := oasis.LoadFASTA(dbPath, alpha)
	if err != nil {
		return err
	}
	build := time.Now()
	eng, err := oasis.NewEngine(db, oasis.EngineOptions{
		Shards:            shards,
		PartitionByPrefix: prefixShards,
		ShardWorkers:      shardWorkers,
		BatchWorkers:      batchWorkers,
	})
	if err != nil {
		return err
	}
	partition := "by-sequence"
	if prefixShards {
		partition = "by-prefix (shared index)"
	}
	log.Printf("warm engine ready: %d sequences (%d residues), %d shards %s, built in %s",
		db.NumSequences(), db.TotalResidues(), eng.NumShards(), partition, time.Since(build).Round(time.Millisecond))

	srv := &http.Server{
		Addr: addr,
		Handler: newServer(eng, serverConfig{
			scheme:        scheme,
			defaultEValue: eValue,
			maxBatch:      maxBatch,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down (waiting up to %s for in-flight streams) ...", shutdownWait)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownWait)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := eng.Close(); err != nil {
		return err
	}
	st := eng.Stats()
	log.Printf("bye: served %d queries, %d hits", st.QueriesServed, st.HitsReported)
	return nil
}
