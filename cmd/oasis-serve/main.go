// Command oasis-serve is the long-running OASIS search server: it builds (or
// opens) a warm sharded engine ONCE, and then serves many queries over HTTP,
// amortising index construction and searcher scratch across the whole query
// stream (the batch-engine counterpart of the paper's online search
// property: build once, serve many, stream top-k).
//
// The engine comes from one of two sources:
//
//	-db swissprot.fasta      load FASTA and index it in memory at startup
//	-index-dir swissprot.idx open a prebuilt sharded DISK index directory
//	                         (oasis-build -shards N [-prefix-sharding]); each
//	                         shard is searched through its own buffer pool
//	                         (-pool MB per shard), so the server can serve
//	                         databases bigger than RAM and shard parallelism
//	                         also parallelises page I/O
//
// # Endpoints
//
// POST /search runs one query.  Request body (JSON):
//
//	{"query":"DKDGDGCITTKEL",  // residue string, required
//	 "id":"q1",                // optional stream label
//	 "evalue":20000,           // optional E-value threshold (default -evalue)
//	 "min_score":45,           // optional explicit threshold (overrides evalue)
//	 "top":5}                  // optional top-k truncation
//
// The response is an NDJSON stream (Content-Type application/x-ndjson),
// flushed per line so hits arrive online in decreasing score order:
//
//	{"type":"hit","query_id":"q1","rank":1,"seq_id":"SYN|P00063","score":37,"evalue":0.43}
//	...
//	{"type":"done","query_id":"q1","hits":5,"elapsed_ms":4.2,"stats":{...work counters...}}
//
// A query that fails mid-stream ends with {"type":"error", "error":"..."}
// instead of "done".  Invalid requests get HTTP 400 with {"error":"..."}.
//
// POST /batch accepts {"queries":[<search request>, ...]} and multiplexes
// every query's hit stream onto one NDJSON response; events carry query_id
// so clients demultiplex, each query's hits are decreasing-score, and every
// query ends with its own "done"/"error" event.  Batches over -max-batch are
// rejected with HTTP 413 so one huge batch cannot monopolise the worker
// pool.
//
// # Growing the served corpus: /insert, /delete, /compact
//
// The engine is incrementally indexable: writes land in an in-memory delta
// layer (built online, in the spirit of the paper's online-construction
// property) and become searchable immediately, without rebuilding or
// reopening the base index.
//
// POST /insert adds one sequence.  Request and response (JSON):
//
//	{"id":"SYN|NEW1","sequence":"DKDGDGCITTKEL"}
//	-> {"status":"ok","id":"SYN|NEW1","generation":7,
//	    "memtable_sequences":3,"tombstones":0}
//
// The id must be unique among live sequences and the sequence must be over
// the served database's alphabet; violations get HTTP 400 with
// {"error":"..."}.  The returned generation is the index generation the
// write produced — every search from then on sees the new sequence, and
// result-cache entries are keyed by generation, so stale cached streams
// simply stop being reachable (no global cache flush).
//
// POST /delete tombstones one live sequence by id ({"id":"SYN|NEW1"}); the
// response has the same shape as /insert.  Deleted sequences are filtered
// from result streams at merge time and reclaimed at the next compaction.
//
// POST /compact (empty body) folds the mutable layer down a level and
// responds {"status":"ok","generation":8,"compacted":true,...}
// ("compacted":false when there was nothing to fold).  For -index-dir
// engines this persists the memtable as a delta shard file and atomically
// swaps a new manifest generation — until then, inserts live only in memory
// (there is no write-ahead log), so ingest pipelines should compact after a
// bulk load.  -compact-after N triggers the same fold automatically in the
// background once the memtable holds N sequences.  Mutations during
// graceful shutdown are shed with HTTP 503.
//
// # Result cache and fair admission
//
// The engine keeps a cross-query result cache (-cache MB, default 32, 0
// disables): completed hit streams are stored keyed by (query residues,
// search options), and an identical query arriving again — the common case
// for dashboards, retries and shared motif lookups — replays the stored
// stream without touching the index.  Concurrent identical queries run the
// DP sweep once (single-flight).  Cache keys carry the index generation, so
// a write (see /insert above) retargets the cache rather than serving stale
// streams; an LRU evicts by recency when the budget fills.
//
// Search and batch requests pass a per-client fair admission controller
// before reaching the engine: at most -admission-slots requests run at once
// (default 2x GOMAXPROCS), and when the server is saturated, waiting
// requests queue PER CLIENT (X-Client-ID header, else remote address) and
// are admitted by deficit round-robin with cost = query count — so a client
// streaming maximal batches cannot starve interactive /search users.  A
// client with -admission-queue requests already waiting gets HTTP 429.
// X-Client-ID is trusted as sent; in front of untrusted callers, strip or
// overwrite it at the ingress proxy so the remote-address fallback applies.
//
// GET /metrics returns a JSON resource snapshot for capacity planning:
//
//	{"engine":{"scratch":{...free-list reuse...},
//	           "shards":[{"shard":0,"queued":0,"active":1},...],
//	           "pools":[{"shard":0,"requests":512,"hits":498,"hit_ratio":0.97},...],
//	           "cache":{"entries":12,"bytes":18432,"max_bytes":33554432,
//	                    "hits":96,"misses":32,"hit_rate":0.75,
//	                    "insertions":32,"evictions":0,"flight_waits":3}},
//	 "latency":{"search":{"count":42,"mean_ms":3.1,"max_ms":17.8,
//	            "buckets":[{"le_ms":0.25,"count":0},...,{"le_ms":-1,"count":42}]},
//	            "batch":{...},"healthz":{...},"stats":{...},"metrics":{...}},
//	 "cache_hit_rate":0.75,
//	 "admission":{"slots":8,"active":2,"admitted":130,"rejected":4,
//	              "clients":[{"client":"10.0.0.7","queued":3,"active":1,
//	                          "admitted":57,"rejected":4},...]},
//	 "queries_served":128,"hits_reported":3072,"max_batch":256}
//
// "pools" is present only for -index-dir engines (shard -1 is the shared
// prefix-mode frontier view).  "cache"/"cache_hit_rate" are present when the
// result cache is enabled, "admission" when admission control is (always,
// unless built with slots 0 in tests); "clients" lists currently active or
// queued clients only.  "latency" holds one histogram per endpoint, measured
// from request decode through the last streamed event; bucket counts are
// cumulative with upper bounds in milliseconds and le_ms -1 marking the
// unbounded bucket.
//
// With Accept: text/plain (the Prometheus scraper sends "text/plain;
// version=0.0.4") or ?format=prometheus, /metrics renders the Prometheus text
// exposition instead, including the fault-tolerance counters
// degraded_queries_total, shard_quarantined, checksum_failures_total and
// retries_total, the incremental-indexing series (index_generation,
// inserts_total, deletes_total, compactions_total, memtable_sequences,
// delta_layers, tombstones, live_sequences) and per-endpoint
// request_duration_seconds histograms.
//
// GET /healthz returns liveness plus the database shape; GET /stats returns
// the engine's lifetime counters (queries, hits, merged work counters).
//
// # Deadlines, overload shedding and partial failure
//
// -query-timeout bounds each query's wall clock: a stream that outlives it is
// cancelled and ends with an "error" event.  -admission-wait bounds how long
// a request may sit in its admission queue; past it the server sheds the
// request with HTTP 503 and a Retry-After header instead of letting queues
// grow without bound.
//
// When a shard fails mid-query (I/O error, checksum corruption), the shard is
// QUARANTINED rather than fatal: the stream completes from the surviving
// shards and its "done" event carries "degraded":true with per-shard errors
// under stats.shard_errors (mid-stream degradation is also flagged in the
// X-Oasis-Partial trailer).  -strict fails such queries outright instead.
// -allow-degraded extends the same policy to startup: an -index-dir whose
// shard file(s) cannot be opened serves the surviving shards, every response
// uses HTTP 206 and /healthz reports "degraded".
//
// # Scaling out: -shard-server and -coordinator
//
// One process serves one corpus.  To scale past that, split the corpus into
// sequence-disjoint SLICES (oasis-build one index directory per slice), serve
// each slice from its own processes, and put a coordinator in front:
//
//	oasis-serve -shard-server -index-dir slice0.idx -addr :9001
//	oasis-serve -shard-server -index-dir slice0.idx -addr :9002   # replica
//	oasis-serve -shard-server -index-dir slice1.idx -addr :9003
//	oasis-serve -coordinator -slices 'h1:9001|h1:9002,h2:9003' -addr :8080
//
// -slices lists one entry per slice, comma-separated, with "|" separating a
// slice's replicas; slice order defines the global sequence numbering.
//
// A shard server is a bare slice engine behind the wire protocol (package
// repro/internal/remote): POST /oasis/shard/stream runs one query against the
// slice and streams NDJSON (hit, bound) events — the slice's locally merged
// decreasing-score stream plus a decreasing upper bound on everything it can
// still report — and GET /oasis/shard/info describes the slice (sequence and
// residue counts, alphabet).  No result cache and no admission control run
// here: both belong to the coordinator, which sees whole queries.
//
// The coordinator opens every slice at startup, lays out the global sequence
// index space, and serves the standard /search, /batch, /metrics endpoints.
// Each query fans out to one replica per slice and the event streams merge
// through the same strict-release rule a single-process engine uses, so the
// merged stream is byte-identical to serving the concatenated corpus locally.
// Per-attempt robustness is client-side: jittered capped-backoff retries,
// failover to the next replica (resuming the slice's deterministic stream
// without duplicating or dropping hits), hedged requests against tail-slow
// replicas (-hedge-after; first byte wins, the loser is cancelled), and
// degraded completion through the standard quarantine path when every replica
// of a slice is down (-strict opts out; the response is then an error).
// -dial-timeout and -header-timeout bound each ATTEMPT, independently of the
// whole-query -query-timeout.  /metrics gains the fan-out counters (attempts,
// retries, failovers, hedges, hedge wins, slice failures) and per-replica
// health; the Prometheus rendering adds remote_*_total series and a
// remote_replica_up gauge.  /insert, /delete and /compact refuse on a
// coordinator: writes belong to the processes that own the slices.
//
// # Liveness and readiness
//
// GET /healthz/live answers 200 whenever the process can serve HTTP at all.
// GET /healthz/ready answers 200 only when the server should receive traffic:
// 503 while draining for shutdown, and in coordinator mode the body carries
// per-slice replica health ("up"/"degraded"/"down") with 503 when any slice
// has no live replica.  GET /healthz (legacy) stays as the one-shot summary.
// On SIGTERM the server flips not-ready first and waits -drain-grace so load
// balancers stop routing, then sheds new work and finishes in-flight streams
// within -shutdown-timeout.
//
// Example:
//
//	oasis-serve -db swissprot.fasta -shards 8 -addr :8080
//	oasis-serve -index-dir swissprot.idx -pool 64 -cache 128 -addr :8080
//	curl -sN localhost:8080/search -d '{"query":"DKDGDGCITTKEL","top":5}'
//
// The server shuts down gracefully on SIGINT/SIGTERM: listeners close first,
// in-flight streams finish (bounded by -shutdown-timeout), then the engine
// drains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/oasis"
)

// serveFlags bundles the command-line configuration.
type serveFlags struct {
	addr         string
	dbPath       string
	indexDir     string
	poolMB       int64
	alphabet     string
	matrix       string
	gap          int
	eValue       float64
	shards       int
	prefixShards bool
	shardWorkers int
	batchWorkers int
	maxBatch     int
	cacheMB      int64
	admSlots     int
	admQueue     int
	admWait      time.Duration
	queryTimeout time.Duration
	strict       bool
	allowDegr    bool
	shutdownWait time.Duration
	compactAfter int

	// Distributed-serving topology (see the package doc's "Scaling out").
	shardServer   bool
	coordinator   bool
	slices        string
	dialTimeout   time.Duration
	headerTimeout time.Duration
	sliceAttempts int
	hedgeAfter    time.Duration
	noHedge       bool
	drainGrace    time.Duration
	idleTimeout   time.Duration
}

func main() {
	var f serveFlags
	flag.StringVar(&f.addr, "addr", ":8080", "listen address")
	flag.StringVar(&f.dbPath, "db", "", "FASTA database to index in memory and serve")
	flag.StringVar(&f.indexDir, "index-dir", "", "prebuilt sharded disk index directory (oasis-build -shards) to serve instead of -db")
	flag.Int64Var(&f.poolMB, "pool", 64, "per-shard buffer pool size in MB (with -index-dir)")
	flag.StringVar(&f.alphabet, "alphabet", "protein", "alphabet: protein or dna (with -db; -index-dir reads it from the manifest)")
	flag.StringVar(&f.matrix, "matrix", "PAM30", "substitution matrix")
	flag.IntVar(&f.gap, "gap", -10, "linear gap penalty (negative)")
	flag.Float64Var(&f.eValue, "evalue", 20000, "default E-value threshold for queries that do not set one")
	flag.IntVar(&f.shards, "shards", 0, "work partitions (0 = one; with -db only, -index-dir reads it from the manifest)")
	flag.BoolVar(&f.prefixShards, "prefix-sharding", false, "partition by suffix-tree prefix over one shared index instead of by sequence (near-root work done once per query; with -db only)")
	flag.IntVar(&f.shardWorkers, "shard-workers", 0, "concurrent shard searches per query (0 = one per shard)")
	flag.IntVar(&f.batchWorkers, "batch-workers", 0, "concurrent queries per batch (0 = GOMAXPROCS)")
	flag.IntVar(&f.maxBatch, "max-batch", 256, "maximum queries per /batch request")
	flag.Int64Var(&f.cacheMB, "cache", 32, "cross-query result cache size in MB (identical queries replay without touching the index; 0 disables)")
	flag.IntVar(&f.admSlots, "admission-slots", 0, "concurrent search/batch requests across all clients (0 = 2x GOMAXPROCS); excess requests wait in per-client fair queues")
	flag.IntVar(&f.admQueue, "admission-queue", 64, "waiting requests allowed per client before HTTP 429")
	flag.DurationVar(&f.admWait, "admission-wait", 10*time.Second, "longest a request may wait for admission before HTTP 503 + Retry-After (0 = wait forever)")
	flag.DurationVar(&f.queryTimeout, "query-timeout", 0, "per-query wall-clock budget; exceeded queries end with an error event (0 = no limit)")
	flag.BoolVar(&f.strict, "strict", false, "fail queries outright when a shard fails instead of serving degraded results from the survivors")
	flag.BoolVar(&f.allowDegr, "allow-degraded", false, "start serving even when shard files fail to open (with -index-dir): failed shards are quarantined and every query reports degraded")
	flag.DurationVar(&f.shutdownWait, "shutdown-timeout", 30*time.Second, "graceful shutdown deadline")
	flag.IntVar(&f.compactAfter, "compact-after", 0, "compact the mutable layer in the background once this many inserted sequences accumulate (0 = only explicit POST /compact)")
	flag.BoolVar(&f.shardServer, "shard-server", false, "serve one corpus slice over the shard wire protocol for a coordinator (bare slice engine: no result cache, no admission control)")
	flag.BoolVar(&f.coordinator, "coordinator", false, "serve by fanning queries out to the remote shard servers in -slices instead of a local index")
	flag.StringVar(&f.slices, "slices", "", "coordinator slice topology: one entry per slice, comma-separated, with '|' separating a slice's replica addresses (e.g. 'h1:9001|h1:9002,h2:9003')")
	flag.DurationVar(&f.dialTimeout, "dial-timeout", 2*time.Second, "per-ATTEMPT connection deadline for coordinator fan-out (a slow dial fails over, not the query)")
	flag.DurationVar(&f.headerTimeout, "header-timeout", 10*time.Second, "per-ATTEMPT time-to-response-headers deadline for coordinator fan-out")
	flag.IntVar(&f.sliceAttempts, "slice-attempts", 0, "stream attempts per slice per query, counting the first try (0 = max(3, 2x replicas))")
	flag.DurationVar(&f.hedgeAfter, "hedge-after", 0, "hedge a slice request onto a second replica when the first has produced no event within this long (0 = adaptive p95 of observed first-event latencies)")
	flag.BoolVar(&f.noHedge, "no-hedge", false, "disable hedged requests in coordinator fan-out")
	flag.DurationVar(&f.drainGrace, "drain-grace", 0, "after SIGTERM, stay live but not ready this long before shedding new work, so load balancers stop routing first")
	flag.DurationVar(&f.idleTimeout, "idle-timeout", 2*time.Minute, "close keep-alive connections idle this long")
	flag.Parse()
	if f.admSlots <= 0 {
		f.admSlots = 2 * runtime.GOMAXPROCS(0)
	}
	var err error
	if f.shardServer {
		err = runShardServer(f)
	} else {
		err = run(f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oasis-serve:", err)
		os.Exit(1)
	}
}

// parseSlices parses the -slices topology: "," separates slices, "|"
// separates a slice's replicas.  Slice order defines the global sequence
// numbering, so the same -slices value must be used across coordinator
// restarts for stable sequence indexes.
func parseSlices(spec string) ([][]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("-coordinator requires -slices")
	}
	var slices [][]string
	for i, entry := range strings.Split(spec, ",") {
		var replicas []string
		for _, addr := range strings.Split(entry, "|") {
			if addr = strings.TrimSpace(addr); addr != "" {
				replicas = append(replicas, addr)
			}
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("-slices entry %d is empty", i)
		}
		slices = append(slices, replicas)
	}
	return slices, nil
}

// buildEngine assembles the warm engine from either source: an in-memory
// index built from FASTA, or a prebuilt sharded disk index directory.
func buildEngine(f serveFlags) (*oasis.Engine, string, error) {
	if f.indexDir != "" {
		if f.dbPath != "" {
			return nil, "", fmt.Errorf("-db and -index-dir are mutually exclusive")
		}
		if f.shards != 0 || f.prefixShards {
			return nil, "", fmt.Errorf("-shards/-prefix-sharding come from the -index-dir manifest; do not set them")
		}
		log.Printf("opening sharded disk index %s ...", f.indexDir)
		eng, err := oasis.OpenEngine(f.indexDir, oasis.EngineOptions{
			PoolBytes:     f.poolMB << 20,
			ShardWorkers:  f.shardWorkers,
			BatchWorkers:  f.batchWorkers,
			CacheBytes:    f.cacheMB << 20,
			AllowDegraded: f.allowDegr,
		})
		if err != nil {
			return nil, "", err
		}
		for _, q := range eng.Standing() {
			log.Printf("WARNING: shard %d quarantined at open: %s (serving degraded)", q.Shard, q.Err)
		}
		return eng, fmt.Sprintf("disk-backed (%s partition, <=%d MB pool per shard)", eng.Partition(), f.poolMB), nil
	}
	if f.dbPath == "" {
		return nil, "", fmt.Errorf("either -db or -index-dir is required")
	}
	alpha := oasis.Protein
	if f.alphabet == "dna" {
		alpha = oasis.DNA
	} else if f.alphabet != "protein" {
		return nil, "", fmt.Errorf("unknown alphabet %q", f.alphabet)
	}
	log.Printf("loading %s ...", f.dbPath)
	db, err := oasis.LoadFASTA(f.dbPath, alpha)
	if err != nil {
		return nil, "", err
	}
	eng, err := oasis.NewEngine(db, oasis.EngineOptions{
		Shards:            f.shards,
		PartitionByPrefix: f.prefixShards,
		ShardWorkers:      f.shardWorkers,
		BatchWorkers:      f.batchWorkers,
		CacheBytes:        f.cacheMB << 20,
	})
	if err != nil {
		return nil, "", err
	}
	partition := "by-sequence"
	if f.prefixShards {
		partition = "by-prefix (shared index)"
	}
	return eng, "in-memory " + partition, nil
}

// buildCoordinator opens the remote slice topology and wraps it in a warm
// engine, so the standard HTTP front end (admission, result cache, NDJSON
// streaming) runs unchanged in front of the fan-out.
func buildCoordinator(f serveFlags) (*oasis.Engine, string, *oasis.Coordinator, error) {
	if f.dbPath != "" || f.indexDir != "" {
		return nil, "", nil, fmt.Errorf("-coordinator serves remote slices; it takes no -db or -index-dir")
	}
	if f.shards != 0 || f.prefixShards {
		return nil, "", nil, fmt.Errorf("-shards/-prefix-sharding are properties of the slice indexes, not the coordinator")
	}
	if f.allowDegr {
		return nil, "", nil, fmt.Errorf("-allow-degraded applies to -index-dir engines; a coordinator degrades per query when a whole slice is down (use -strict to refuse instead)")
	}
	if f.compactAfter != 0 {
		return nil, "", nil, fmt.Errorf("-compact-after needs a local mutable index; a coordinator cannot write (compact on the shard servers)")
	}
	slices, err := parseSlices(f.slices)
	if err != nil {
		return nil, "", nil, err
	}
	log.Printf("connecting to %d slices ...", len(slices))
	co, err := oasis.OpenCoordinator(context.Background(), slices, oasis.CoordinatorOptions{
		Workers:       f.shardWorkers,
		BatchWorkers:  f.batchWorkers,
		CacheBytes:    f.cacheMB << 20,
		DialTimeout:   f.dialTimeout,
		HeaderTimeout: f.headerTimeout,
		MaxAttempts:   f.sliceAttempts,
		HedgeAfter:    f.hedgeAfter,
		DisableHedge:  f.noHedge,
	})
	if err != nil {
		return nil, "", nil, err
	}
	replicas := 0
	for _, s := range slices {
		replicas += len(s)
	}
	mode := fmt.Sprintf("coordinator over %d slices (%d replicas)", len(slices), replicas)
	return co.Engine(), mode, co, nil
}

func run(f serveFlags) error {
	matrix := oasis.MatrixByName(f.matrix)
	if matrix == nil {
		return fmt.Errorf("unknown matrix %q", f.matrix)
	}
	scheme, err := oasis.NewScheme(matrix, f.gap)
	if err != nil {
		return err
	}

	build := time.Now()
	var (
		eng  *oasis.Engine
		mode string
		co   *oasis.Coordinator
	)
	if f.coordinator {
		eng, mode, co, err = buildCoordinator(f)
	} else {
		eng, mode, err = buildEngine(f)
	}
	if err != nil {
		return err
	}
	// Fail fast on a matrix/index alphabet mismatch: the server would start
	// "healthy" and then reject every query at search time.
	if scheme.Matrix.Alphabet() != eng.Alphabet() {
		return fmt.Errorf("matrix %q is over the %s alphabet, but the served database holds %s sequences",
			f.matrix, scheme.Matrix.Alphabet().Name(), eng.Alphabet().Name())
	}
	log.Printf("warm engine ready: %d sequences (%d residues), %d shards %s, ready in %s",
		eng.NumSequences(), eng.TotalResidues(), eng.NumShards(), mode, time.Since(build).Round(time.Millisecond))

	handler := newServer(eng, serverConfig{
		scheme:         scheme,
		defaultEValue:  f.eValue,
		maxBatch:       f.maxBatch,
		admissionSlots: f.admSlots,
		admissionQueue: f.admQueue,
		admissionWait:  f.admWait,
		queryTimeout:   f.queryTimeout,
		strict:         f.strict,
		compactAfter:   f.compactAfter,
		coordinator:    co,
	})
	srv := &http.Server{
		Addr:              f.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       f.idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", f.addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Readiness first: /healthz/ready flips to 503 while the server keeps
	// accepting work for -drain-grace, so load balancers route new traffic
	// elsewhere before anything is shed.
	handler.setNotReady()
	if f.drainGrace > 0 {
		log.Printf("not ready; draining for %s before shedding new work ...", f.drainGrace)
		time.Sleep(f.drainGrace)
	}
	log.Printf("shutting down (waiting up to %s for in-flight streams) ...", f.shutdownWait)
	// Drain next: new search/batch requests are shed with 503 immediately,
	// so the grace period below is spent finishing admitted streams.
	handler.startDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), f.shutdownWait)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if co != nil {
		err = co.Close()
	} else {
		err = eng.Close()
	}
	if err != nil {
		return err
	}
	st := eng.Stats()
	log.Printf("bye: served %d queries, %d hits", st.QueriesServed, st.HitsReported)
	return nil
}
