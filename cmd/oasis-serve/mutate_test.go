package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, srv *server, path, body string) (*httptest.ResponseRecorder, mutateResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", path, strings.NewReader(body)))
	var resp mutateResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad %s response %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec, resp
}

// searchHits runs a /search with a strong threshold (so the permissive
// default E-value does not surface weak background matches) and returns the
// seq_ids of its hit events.
func searchHits(t *testing.T, srv *server, query string) []string {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/search",
		strings.NewReader(`{"query":"`+query+`","min_score":60}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("search status %d: %s", rec.Code, rec.Body.String())
	}
	var ids []string
	for _, ev := range decodeNDJSON(t, rec.Body.String()) {
		if ev.Type == "hit" {
			ids = append(ids, ev.SeqID)
		}
	}
	return ids
}

func TestInsertSearchDeleteRoundTrip(t *testing.T) {
	srv := testServer(t)
	const motif = "WWWWHHHHWWWWHHHH"

	if hits := searchHits(t, srv, motif); len(hits) != 0 {
		t.Fatalf("unexpected pre-insert hits %v", hits)
	}
	gen0 := srv.eng.Generation()

	rec, resp := postJSON(t, srv, "/insert",
		`{"id":"NEW1","sequence":"AAAA`+motif+`AAAA"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Generation <= gen0 || resp.MemtableSequences != 1 {
		t.Fatalf("insert response %+v (gen0 %d)", resp, gen0)
	}

	// The insert must be visible to the very next search: the delta layer is
	// searchable immediately and the old generation's cache entries are
	// unreachable.
	hits := searchHits(t, srv, motif)
	if len(hits) == 0 || hits[0] != "NEW1" {
		t.Fatalf("post-insert hits %v, want NEW1 first", hits)
	}

	rec, resp = postJSON(t, srv, "/delete", `{"id":"NEW1"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Tombstones != 1 {
		t.Fatalf("delete response %+v, want 1 tombstone", resp)
	}
	for _, id := range searchHits(t, srv, motif) {
		if id == "NEW1" {
			t.Fatal("deleted sequence still reported")
		}
	}
}

func TestInsertRejectsBadRequests(t *testing.T) {
	srv := testServer(t)
	for name, body := range map[string]string{
		"empty id":       `{"sequence":"ACDEF"}`,
		"empty sequence": `{"id":"X"}`,
		"bad residues":   `{"id":"X","sequence":"ACD#F"}`,
		"bad json":       `{`,
		"duplicate id":   `{"id":"CALM_HUMAN","sequence":"ACDEF"}`,
	} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", "/insert", strings.NewReader(body)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}
	rec, _ := postJSON(t, srv, "/delete", `{"id":"NO_SUCH"}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("delete unknown id: status %d, want 400", rec.Code)
	}
}

func TestCompactEndpointFoldsMemtable(t *testing.T) {
	srv := testServer(t)
	if _, resp := postJSON(t, srv, "/compact", ""); resp.Compacted {
		t.Fatalf("pristine compact reported work: %+v", resp)
	}
	rec, _ := postJSON(t, srv, "/insert", `{"id":"NEW1","sequence":"WWWWHHHHWWWWHHHH"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", rec.Code, rec.Body.String())
	}
	rec, resp := postJSON(t, srv, "/compact", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("compact status %d: %s", rec.Code, rec.Body.String())
	}
	if !resp.Compacted || resp.MemtableSequences != 0 {
		t.Fatalf("compact response %+v, want compacted with empty memtable", resp)
	}
	if hits := searchHits(t, srv, "WWWWHHHHWWWWHHHH"); len(hits) == 0 || hits[0] != "NEW1" {
		t.Fatalf("post-compact hits %v, want NEW1 first", hits)
	}
}

func TestMutationsShedWhileDraining(t *testing.T) {
	srv := testServer(t)
	srv.startDrain()
	for _, path := range []string{"/insert", "/delete", "/compact"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", path, strings.NewReader(`{"id":"X","sequence":"ACDEF"}`)))
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s while draining: status %d, want 503", path, rec.Code)
		}
	}
}

func TestPrometheusExposesMutableSeries(t *testing.T) {
	srv := testServer(t)
	if rec, _ := postJSON(t, srv, "/insert", `{"id":"NEW1","sequence":"WWWWHHHHWWWW"}`); rec.Code != http.StatusOK {
		t.Fatalf("insert status %d", rec.Code)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"index_generation 1",
		"inserts_total 1",
		"deletes_total 0",
		"memtable_sequences 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}
