package main

import (
	"sync"
	"time"
)

// latencyBounds are the histogram bucket upper bounds in milliseconds
// (exponential, factor 4), chosen to straddle everything from a cached
// metadata request to a long batch stream.  The last bucket is unbounded.
var latencyBounds = [...]float64{0.25, 1, 4, 16, 64, 256, 1024, 4096}

// latencyHistogram accumulates request latencies for one endpoint.  All
// methods are safe for concurrent use.
type latencyHistogram struct {
	mu      sync.Mutex
	count   int64
	sumMs   float64
	maxMs   float64
	buckets [len(latencyBounds) + 1]int64
}

// observe records one request duration.  The conversion keeps nanosecond
// precision: truncating to whole microseconds first (as an earlier version
// did) biased sub-microsecond observations to exactly 0 and pushed
// durations just over a bucket bound back onto the bound, so boundary
// buckets over-counted.
func (h *latencyHistogram) observe(d time.Duration) {
	ms := float64(d.Nanoseconds()) / 1e6
	i := 0
	for i < len(latencyBounds) && ms > latencyBounds[i] {
		i++
	}
	h.mu.Lock()
	h.count++
	h.sumMs += ms
	if ms > h.maxMs {
		h.maxMs = ms
	}
	h.buckets[i]++
	h.mu.Unlock()
}

// latencyBucket is one histogram bucket in the /metrics JSON: the count of
// requests that took at most LeMs milliseconds (cumulative, so a bucket
// includes everything faster than its bound; the +Inf bucket equals Count).
type latencyBucket struct {
	LeMs  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// latencySnapshot is the JSON form of one endpoint's histogram.
type latencySnapshot struct {
	Count   int64           `json:"count"`
	SumMs   float64         `json:"sum_ms"`
	MeanMs  float64         `json:"mean_ms"`
	MaxMs   float64         `json:"max_ms"`
	Buckets []latencyBucket `json:"buckets"`
}

// snapshot renders the histogram with cumulative bucket counts.
func (h *latencyHistogram) snapshot() latencySnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := latencySnapshot{Count: h.count, SumMs: h.sumMs, MaxMs: h.maxMs}
	if h.count > 0 {
		s.MeanMs = h.sumMs / float64(h.count)
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		le := float64(-1) // +Inf bucket
		if i < len(latencyBounds) {
			le = latencyBounds[i]
		}
		s.Buckets = append(s.Buckets, latencyBucket{LeMs: le, Count: cum})
	}
	return s
}
