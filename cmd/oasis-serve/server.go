package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/faultpoint"
	"repro/oasis"
)

// serverConfig carries the per-deployment search defaults.
type serverConfig struct {
	scheme        oasis.Scheme
	defaultEValue float64
	// maxBatch bounds the number of queries accepted per /batch request.
	maxBatch int
	// maxQueryLen bounds accepted query lengths (residues).
	maxQueryLen int
	// admissionSlots bounds how many search/batch requests run concurrently
	// across ALL clients; excess requests wait in per-client fair queues
	// (deficit round-robin over client keys).  0 disables admission control
	// (tests; -admission-slots defaults it on in main).
	admissionSlots int
	// admissionQueue bounds each client's waiting queue; requests beyond it
	// get HTTP 429.
	admissionQueue int
	// admissionWait bounds how long a request may sit in its admission queue
	// before the server sheds it with HTTP 503 + Retry-After (0 = wait
	// forever, bounded only by the client's patience).
	admissionWait time.Duration
	// queryTimeout is the per-query wall-clock budget: a search or batch
	// whose stream outlives it is cancelled and its queries end with an
	// "error" event (0 = no limit).
	queryTimeout time.Duration
	// strict fails a query outright when any shard fails, instead of
	// completing a Degraded stream from the surviving shards.
	strict bool
	// compactAfter triggers a background compaction once the memtable holds
	// this many inserted sequences (0 = only explicit POST /compact).
	compactAfter int
	// coordinator is set when the engine fans out to remote shard servers
	// (-coordinator); it supplies per-replica health for /healthz/ready and
	// the fan-out robustness counters for /metrics.
	coordinator *oasis.Coordinator
}

// searchRequest is the JSON body of POST /search and one element of the
// /batch query list.
type searchRequest struct {
	// ID labels the query in batch responses (optional for /search).
	ID string `json:"id,omitempty"`
	// Query is the residue string (protein or DNA letters, matching the
	// server's database alphabet).
	Query string `json:"query"`
	// EValue overrides the server's default selectivity when > 0.
	EValue float64 `json:"evalue,omitempty"`
	// MinScore overrides the E-value-derived threshold when > 0.
	MinScore int `json:"min_score,omitempty"`
	// Top truncates the stream to the k strongest sequences when > 0.
	Top int `json:"top,omitempty"`
}

type batchRequest struct {
	Queries []searchRequest `json:"queries"`
}

// hitEvent is one NDJSON line of a result stream.  Type is "hit" for a
// result, "done" when a query's stream ends (with its work counters), or
// "error" for a terminal per-query failure.
type hitEvent struct {
	Type    string  `json:"type"`
	QueryID string  `json:"query_id,omitempty"`
	Rank    int     `json:"rank,omitempty"`
	SeqID   string  `json:"seq_id,omitempty"`
	Score   int     `json:"score,omitempty"`
	EValue  float64 `json:"evalue,omitempty"`
	// Hits and ElapsedMs summarise the query on "done" events.  Degraded
	// marks a stream that completed from surviving shards after one or more
	// shards were quarantined; the per-shard errors are in Stats.ShardErrors.
	Hits      int                `json:"hits,omitempty"`
	ElapsedMs float64            `json:"elapsed_ms,omitempty"`
	Degraded  bool               `json:"degraded,omitempty"`
	Stats     *oasis.SearchStats `json:"stats,omitempty"`
	Error     string             `json:"error,omitempty"`
}

// server is the HTTP front end over one warm engine.
type server struct {
	eng *oasis.Engine
	cfg serverConfig
	mux *http.ServeMux
	// lat holds one latency histogram per endpoint, keyed by the /metrics
	// label; populated once in newServer, so reads are lock-free.
	lat map[string]*latencyHistogram
	// adm is the per-client fair admission controller in front of the
	// search/batch endpoints (nil when cfg.admissionSlots is 0).
	adm *admission
	// notReady is flipped first during graceful shutdown: /healthz/ready
	// answers 503 while the server keeps serving for -drain-grace, so load
	// balancers stop routing before any request is shed.
	notReady atomic.Bool
	// draining is flipped by startDrain during graceful shutdown: new
	// search/batch requests are shed with 503 while in-flight streams finish.
	draining atomic.Bool
	// compacting is the single-flight latch for -compact-after background
	// compactions (see maybeCompact).
	compacting atomic.Bool
}

// newServer builds the HTTP handler: build the engine once, serve many
// queries, stream results as NDJSON so clients see hits (strongest first)
// the moment OASIS finds them.
func newServer(eng *oasis.Engine, cfg serverConfig) *server {
	if cfg.maxBatch <= 0 {
		cfg.maxBatch = 256
	}
	if cfg.maxQueryLen <= 0 {
		cfg.maxQueryLen = 10_000
	}
	if cfg.admissionQueue <= 0 {
		cfg.admissionQueue = 64
	}
	s := &server{eng: eng, cfg: cfg, mux: http.NewServeMux(), lat: map[string]*latencyHistogram{}}
	if cfg.admissionSlots > 0 {
		s.adm = newAdmission(cfg.admissionSlots, cfg.admissionQueue)
	}
	s.handle("GET /healthz", "healthz", s.handleHealth)
	s.handle("GET /healthz/live", "healthz_live", s.handleHealthLive)
	s.handle("GET /healthz/ready", "healthz_ready", s.handleHealthReady)
	s.handle("GET /stats", "stats", s.handleStats)
	s.handle("GET /metrics", "metrics", s.handleMetrics)
	s.handle("POST /search", "search", s.handleSearch)
	s.handle("POST /batch", "batch", s.handleBatch)
	s.handle("POST /insert", "insert", s.handleInsert)
	s.handle("POST /delete", "delete", s.handleDelete)
	s.handle("POST /compact", "compact", s.handleCompact)
	return s
}

// handle registers an endpoint wrapped with its latency histogram.  The
// timer spans the whole handler — request decode through the last streamed
// event — so the search/batch histograms measure what a slowest-consumer
// client experiences end to end, not just time-to-first-hit.
func (s *server) handle(pattern, label string, h http.HandlerFunc) {
	hist := &latencyHistogram{}
	s.lat[label] = hist
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.observe(time.Since(start))
	})
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// setNotReady flips /healthz/ready to 503 without shedding anything: the
// first stage of graceful shutdown, giving load balancers -drain-grace to
// route new traffic elsewhere while this server still answers everything.
func (s *server) setNotReady() { s.notReady.Store(true) }

// startDrain puts the server in shutdown drain mode: subsequent search/batch
// requests get 503 + Retry-After immediately, while streams already admitted
// run to completion under http.Server.Shutdown's grace period.
func (s *server) startDrain() {
	s.notReady.Store(true)
	s.draining.Store(true)
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if len(s.eng.Standing()) > 0 {
		status = "degraded"
	}
	if s.notReady.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":             "ok",
		"serving":            status,
		"shards":             s.eng.NumShards(),
		"shards_quarantined": len(s.eng.Standing()),
		"sequences":          s.eng.NumSequences(),
		"residues":           s.eng.TotalResidues(),
	})
}

// handleHealthLive is pure liveness: 200 whenever the process can serve HTTP
// at all, even while draining.  Orchestrators restart on liveness failures,
// so this must not flap during graceful shutdown — that is readiness's job.
func (s *server) handleHealthLive(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleHealthReady reports whether this server should receive traffic: 503
// while draining for shutdown, and in coordinator mode 503 when any slice
// has no live replica (queries would degrade or, with -strict, fail).  The
// body carries per-slice replica health either way, so operators can see a
// brown-out forming before it takes readiness down.
func (s *server) handleHealthReady(w http.ResponseWriter, _ *http.Request) {
	ready := !s.notReady.Load()
	body := map[string]any{}
	if s.notReady.Load() {
		body["reason"] = "draining"
	}
	if co := s.cfg.coordinator; co != nil {
		body["slices"] = co.Health()
		if dead := s.deadSlices(); dead > 0 {
			ready = false
			body["reason"] = fmt.Sprintf("%d slice(s) have no live replica", dead)
		}
	} else if len(s.eng.Standing()) > 0 {
		// Quarantined local shards leave the server READY — it still serves
		// (degraded) results — but worth surfacing to whoever is probing.
		body["degraded_shards"] = len(s.eng.Standing())
	}
	status := http.StatusOK
	body["status"] = "ready"
	if !ready {
		status = http.StatusServiceUnavailable
		body["status"] = "not_ready"
	}
	writeJSON(w, status, body)
}

// deadSlices counts coordinator slices whose every replica is marked down —
// queries are known-degraded (or, with -strict, doomed) before they start.
// Unlike a standing quarantine this recovers: replica health resets on the
// first successful attempt after the slice comes back.
func (s *server) deadSlices() int {
	co := s.cfg.coordinator
	if co == nil {
		return 0
	}
	dead := 0
	for _, sh := range co.Health() {
		live := false
		for _, r := range sh.Replicas {
			if r.State != "down" {
				live = true
				break
			}
		}
		if !live {
			dead++
		}
	}
	return dead
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

// handleMetrics exposes the engine's resource snapshot for capacity
// planning: searcher-scratch free-list reuse, per-shard worker-pool queue
// depths, per-shard buffer-pool hit rates (disk-backed engines), and one
// latency histogram per endpoint, alongside the lifetime traffic counters.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		s.writePrometheus(w)
		return
	}
	st := s.eng.Stats()
	latency := make(map[string]latencySnapshot, len(s.lat))
	for label, hist := range s.lat {
		latency[label] = hist.snapshot()
	}
	em := s.eng.Metrics()
	body := map[string]any{
		"engine":         em,
		"latency":        latency,
		"queries_served": st.QueriesServed,
		"hits_reported":  st.HitsReported,
		"max_batch":      s.cfg.maxBatch,
	}
	if em.Cache != nil {
		// Headline number for dashboards; the full counters live under
		// engine.cache.
		body["cache_hit_rate"] = em.Cache.HitRate
	}
	if s.adm != nil {
		body["admission"] = s.adm.snapshot()
	}
	if co := s.cfg.coordinator; co != nil {
		body["remote"] = map[string]any{
			"metrics": co.RemoteMetrics(),
			"health":  co.Health(),
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// clientKey identifies the requester for fair admission: an explicit
// X-Client-ID header when present, otherwise the remote host (all
// connections from one address share a queue).
//
// X-Client-ID is a COOPERATIVE key: a caller that mints a fresh ID per
// request gets a fresh DRR queue each time and defeats the weighting.
// Deployments facing untrusted clients should strip or overwrite the header
// at the ingress proxy (e.g. set it to the authenticated principal) so the
// fallback — the remote address, which a client cannot cheaply multiply —
// is what actually partitions strangers.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admit reserves a fair-admission slot for a request of the given cost (one
// per query), blocking in the requester's per-client queue when the server
// is saturated.  The returned release function must be deferred; ok=false
// means the response has already been written.
func (s *server) admit(w http.ResponseWriter, r *http.Request, cost int) (release func(), ok bool) {
	if s.draining.Load() {
		// Shutdown drain: shed new work immediately so in-flight streams can
		// finish within the grace period.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return nil, false
	}
	if s.adm == nil {
		return func() {}, true
	}
	ctx := r.Context()
	if s.cfg.admissionWait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, s.cfg.admissionWait, errAdmissionSaturated)
		defer cancel()
	}
	release, err := s.adm.acquire(ctx, clientKey(r), cost)
	switch {
	case err == nil:
		return release, true
	case errors.Is(err, errAdmissionQueueFull):
		// 429: this client already has a full queue of waiting requests;
		// admitting more would let it crowd out everyone else.
		httpError(w, http.StatusTooManyRequests, err)
		return nil, false
	case context.Cause(ctx) == errAdmissionSaturated:
		// 503: the request sat in its admission queue for the full wait
		// budget — the server is saturated; shed load and tell the client
		// when to come back instead of letting queues grow without bound.
		w.Header().Set("Retry-After", retryAfter(s.cfg.admissionWait))
		httpError(w, http.StatusServiceUnavailable,
			fmt.Errorf("saturated: not admitted within %s", s.cfg.admissionWait))
		return nil, false
	default:
		// The client went away while queued; nothing useful to write.
		return nil, false
	}
}

// errAdmissionSaturated is the cancellation cause distinguishing an
// admission-wait deadline (shed with 503) from the client going away.
var errAdmissionSaturated = errors.New("admission wait deadline exceeded")

// retryAfter renders a Retry-After header value (whole seconds, minimum 1)
// from the admission wait budget: a client that backs off for about one more
// wait window lands after the current queue has had a full cycle to drain.
func retryAfter(wait time.Duration) string {
	secs := int(wait / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// buildQuery validates one request and assembles the batch query for it.
func (s *server) buildQuery(req searchRequest, index int) (oasis.BatchQuery, error) {
	if req.Query == "" {
		return oasis.BatchQuery{}, fmt.Errorf("query %d: empty query", index)
	}
	residues, err := s.eng.Alphabet().Encode(req.Query)
	if err != nil {
		return oasis.BatchQuery{}, fmt.Errorf("query %d: %w", index, err)
	}
	if len(residues) == 0 || len(residues) > s.cfg.maxQueryLen {
		return oasis.BatchQuery{}, fmt.Errorf("query %d: length %d outside 1..%d", index, len(residues), s.cfg.maxQueryLen)
	}
	var optFns []oasis.SearchOption
	switch {
	case req.MinScore > 0:
		optFns = append(optFns, oasis.WithMinScore(req.MinScore))
	case req.EValue > 0:
		optFns = append(optFns, oasis.WithEValue(req.EValue))
	default:
		optFns = append(optFns, oasis.WithEValue(s.cfg.defaultEValue))
	}
	if req.Top > 0 {
		optFns = append(optFns, oasis.WithMaxResults(req.Top))
	}
	if s.cfg.strict {
		optFns = append(optFns, oasis.WithStrictShards())
	}
	opts, err := oasis.NewSearchOptionsSized(s.cfg.scheme, s.eng.TotalResidues(), residues, optFns...)
	if err != nil {
		return oasis.BatchQuery{}, fmt.Errorf("query %d: %w", index, err)
	}
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("q%d", index)
	}
	return oasis.BatchQuery{ID: id, Residues: residues, Options: opts}, nil
}

// handleSearch streams one query's hits as NDJSON in decreasing score order.
// The request context cancels the search when the client disconnects.
func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if err := faultpoint.Hit(faultpoint.SiteServeSearch, "search"); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	q, err := s.buildQuery(req, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	release, ok := s.admit(w, r, 1)
	if !ok {
		return
	}
	defer release()
	s.streamBatch(w, r, []oasis.BatchQuery{q})
}

// handleBatch streams many queries' hits over one connection; events carry
// query_id so the client can demultiplex.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if err := faultpoint.Hit(faultpoint.SiteServeSearch, "batch"); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("no queries"))
		return
	}
	if len(req.Queries) > s.cfg.maxBatch {
		// 413: the batch is too large for this deployment (-max-batch); a
		// single huge batch must not monopolise the worker pool.
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%d queries exceeds the batch limit %d", len(req.Queries), s.cfg.maxBatch))
		return
	}
	batch := make([]oasis.BatchQuery, len(req.Queries))
	for i, qr := range req.Queries {
		q, err := s.buildQuery(qr, i)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		batch[i] = q
	}
	// A batch's admission cost is its query count, so under contention a
	// maximal batch waits ~len(batch) fair-queue rounds while interactive
	// single-query clients are admitted every round.
	release, ok := s.admit(w, r, len(batch))
	if !ok {
		return
	}
	defer release()
	s.streamBatch(w, r, batch)
}

// streamBatch submits the batch to the warm engine and writes each event as
// one NDJSON line, flushing per line so hits reach the client online.
func (s *server) streamBatch(w http.ResponseWriter, r *http.Request, batch []oasis.BatchQuery) {
	ctx := r.Context()
	if s.cfg.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, s.cfg.queryTimeout, errQueryTimeout)
		defer cancel()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	// 206-style partial marker, known before the stream starts: shards
	// quarantined at open time — or, on a coordinator, slices whose whole
	// replica set is marked down — degrade every response.
	if (len(s.eng.Standing()) > 0 || s.deadSlices() > 0) && !s.cfg.strict {
		w.WriteHeader(http.StatusPartialContent)
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	counts := make([]int, len(batch))
	degraded := false
	for res := range s.eng.SubmitBatch(ctx, batch) {
		ev := hitEvent{QueryID: res.QueryID}
		if res.Done {
			ev.Type = "done"
			ev.Hits = counts[res.Index]
			ev.ElapsedMs = float64(res.Elapsed.Nanoseconds()) / 1e6
			ev.Degraded = res.Stats.Degraded
			if res.Stats.Degraded {
				degraded = true
			}
			st := res.Stats
			ev.Stats = &st
			if res.Err != nil {
				ev.Type = "error"
				ev.Error = res.Err.Error()
				if errors.Is(res.Err, context.DeadlineExceeded) && context.Cause(ctx) == errQueryTimeout {
					ev.Error = fmt.Sprintf("query timeout %s exceeded", s.cfg.queryTimeout)
				}
			}
		} else {
			counts[res.Index]++
			ev.Type = "hit"
			ev.Rank = res.Hit.Rank
			ev.SeqID = res.Hit.SeqID
			ev.Score = res.Hit.Score
			ev.EValue = res.Hit.EValue
		}
		if err := enc.Encode(ev); err != nil {
			// Client gone: the request context is cancelled with it and the
			// engine unwinds; just drain the channel.
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	// 206-style partial marker for mid-stream degradation, delivered as an
	// HTTP trailer since the status line is long gone by the time a shard
	// fails (per-query detail is on the "done" events themselves).
	w.Header().Set(http.TrailerPrefix+"X-Oasis-Partial", strconv.FormatBool(degraded))
}

// errQueryTimeout is the cancellation cause distinguishing the server-side
// per-query deadline from a client disconnect.
var errQueryTimeout = errors.New("per-query timeout exceeded")

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
