// Command oasis-bench regenerates every table and figure of the paper's
// evaluation on the synthetic workload (see DESIGN.md Section 6 for the
// experiment index).
//
//	oasis-bench -exp all -residues 2000000 -queries 100
//	oasis-bench -exp fig7,fig8 -residues 4000000
//	oasis-bench -exp fig9 -query DKDGDGCITTKEL
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/seq"
)

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiments: space,fig3,fig4,fig5,fig6,fig7,fig8,fig9 or all")
		residues = flag.Int64("residues", 400_000, "approximate synthetic database size in residues")
		queries  = flag.Int("queries", 60, "number of motif queries")
		eValue   = flag.Float64("evalue", 20000, "selectivity (E-value)")
		matrix   = flag.String("matrix", "PAM30", "substitution matrix")
		gap      = flag.Int("gap", -10, "linear gap penalty")
		block    = flag.Int("block", 2048, "index block size")
		poolMB   = flag.Int64("pool", 64, "buffer pool size in MB for the non-sweep experiments")
		seed     = flag.Int64("seed", 1309, "workload seed")
		queryStr = flag.String("query", "", "explicit query for fig9 (defaults to a ~13-residue workload query)")
		dir      = flag.String("dir", "", "directory for index files (default: temp dir, removed afterwards)")
	)
	flag.Parse()

	cfg := experiments.Config{
		TotalResidues:   *residues,
		NumQueries:      *queries,
		EValue:          *eValue,
		MatrixName:      *matrix,
		GapPenalty:      *gap,
		BlockSize:       *block,
		BufferPoolBytes: *poolMB << 20,
		Seed:            *seed,
		Dir:             *dir,
	}
	if err := run(cfg, *exps, *queryStr); err != nil {
		fmt.Fprintln(os.Stderr, "oasis-bench:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, exps, queryStr string) error {
	selected := map[string]bool{}
	for _, e := range strings.Split(exps, ",") {
		selected[strings.TrimSpace(strings.ToLower(e))] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }

	fmt.Println("setting up workload and building the disk index ...")
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return err
	}
	defer lab.Close()
	fmt.Println(lab.Summary())
	fmt.Println()

	out := os.Stdout
	if want("space") {
		experiments.RenderSpace(out, experiments.TableSpace(lab))
	}
	if want("fig3") {
		rows, err := experiments.Figure3(lab)
		if err != nil {
			return err
		}
		experiments.RenderFigure3(out, rows)
	}
	if want("fig4") {
		rows, err := experiments.Figure4(lab)
		if err != nil {
			return err
		}
		experiments.RenderFigure4(out, rows)
	}
	if want("fig5") {
		rows, err := experiments.Figure5(lab)
		if err != nil {
			return err
		}
		experiments.RenderFigure5(out, rows)
	}
	if want("fig6") {
		rows, err := experiments.Figure6(lab)
		if err != nil {
			return err
		}
		experiments.RenderFigure6(out, rows, cfg.EValue)
	}
	if want("fig7") {
		rows, err := experiments.Figure7(lab, nil)
		if err != nil {
			return err
		}
		experiments.RenderFigure7(out, rows)
	}
	if want("fig8") {
		rows, err := experiments.Figure8(lab, nil)
		if err != nil {
			return err
		}
		experiments.RenderFigure8(out, rows)
	}
	if want("fig9") {
		var q []byte
		if queryStr != "" {
			q = seq.Protein.MustEncode(queryStr)
		}
		rows, err := experiments.Figure9(lab, q)
		if err != nil {
			return err
		}
		experiments.RenderFigure9(out, rows)
	}
	return nil
}
