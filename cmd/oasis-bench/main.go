// Command oasis-bench regenerates every table and figure of the paper's
// evaluation on the synthetic workload (see DESIGN.md Section 6 for the
// experiment index), plus the repo's own performance experiments: the
// sharded parallel engine and the live-band DP kernel ablation.
//
// Each run also emits a machine-readable benchmark report (default
// BENCH_oasis.json) with per-measurement ns/op and the paper's work
// counters, so the performance trajectory is tracked across changes.
//
//	oasis-bench -exp all -residues 2000000 -queries 100
//	oasis-bench -exp fig7,fig8 -residues 4000000
//	oasis-bench -exp fig9 -query DKDGDGCITTKEL
//	oasis-bench -exp sharded,liveband -shards 1,2,4,8 -workers 4
//	oasis-bench -exp batch -shards 4   # warm engine vs per-query setup
//	oasis-bench -exp disk -shards 1,4  # per-shard disk indexes + buffer pools
//	                                   # vs in-memory shards (cold-open, hit rates)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/seq"
)

func main() {
	var (
		exps         = flag.String("exp", "all", "comma-separated experiments: space,fig3,fig4,fig5,fig6,fig7,fig8,fig9,sharded,liveband,batch,disk,cache,incremental,distributed or all")
		residues     = flag.Int64("residues", 400_000, "approximate synthetic database size in residues")
		queries      = flag.Int("queries", 60, "number of motif queries")
		eValue       = flag.Float64("evalue", 20000, "selectivity (E-value)")
		matrix       = flag.String("matrix", "PAM30", "substitution matrix")
		gap          = flag.Int("gap", -10, "linear gap penalty")
		block        = flag.Int("block", 2048, "index block size")
		poolMB       = flag.Int64("pool", 64, "buffer pool size in MB for the non-sweep experiments")
		seed         = flag.Int64("seed", 1309, "workload seed")
		queryStr     = flag.String("query", "", "explicit query for fig9 (defaults to a ~13-residue workload query)")
		dir          = flag.String("dir", "", "directory for index files (default: temp dir, removed afterwards)")
		shards       = flag.String("shards", "1,2,4,8", "comma-separated shard counts for -exp sharded")
		workers      = flag.Int("workers", 0, "worker-pool bound for the sharded engine (0 = one per shard)")
		jsonPath     = flag.String("json", "BENCH_oasis.json", "machine-readable benchmark report path (empty = skip)")
		prefixBudget = flag.Float64("prefix-budget", 0,
			"fail -exp sharded when prefix-partitioned ColumnsExpanded exceeds this ratio of the 1-shard baseline (0 = no check; CI uses 1.05)")
		cacheHitFloor = flag.Float64("cache-hit-floor", 0,
			"fail -exp cache when the repeated-query streams' cache hit rate falls below this (0 = no check; CI uses 0.3)")
		noSteal = flag.Bool("no-steal", false,
			"disable work stealing between prefix shards in -exp sharded (scheduling ablation)")
		bandGate = flag.Float64("band-gate", 0,
			"fail -exp liveband when the band kernel's ns/op exceeds this ratio of the recorded baseline (0 = no check; CI uses 1.10)")
		bandBaseline = flag.String("band-baseline", "BENCH_oasis.json",
			"baseline benchmark report the -band-gate check compares against")
		escapeGate = flag.Bool("escape-gate", false,
			"recompile internal/core with -gcflags='-m -d=ssa/check_bce/debug=1' and fail if a //oasis:hotpath function gained a heap escape or bounds check not in -escape-allowlist")
		escapeWrite = flag.Bool("escape-write", false,
			"with -escape-gate: rewrite the allowlist to the current diagnostics instead of failing")
		escapeAllowlist = flag.String("escape-allowlist", "internal/analysis/testdata/escape_allowlist.txt",
			"escape-gate baseline file (relative to the module root)")
	)
	flag.Parse()

	if *escapeGate {
		if err := runEscapeGate(*escapeAllowlist, *escapeWrite); err != nil {
			fmt.Fprintln(os.Stderr, "oasis-bench:", err)
			os.Exit(1)
		}
		if *exps == "none" {
			return
		}
	}

	cfg := experiments.Config{
		TotalResidues:   *residues,
		NumQueries:      *queries,
		EValue:          *eValue,
		MatrixName:      *matrix,
		GapPenalty:      *gap,
		BlockSize:       *block,
		BufferPoolBytes: *poolMB << 20,
		Seed:            *seed,
		Dir:             *dir,
	}
	shardCounts, err := parseShardCounts(*shards)
	if err == nil {
		err = run(cfg, *exps, *queryStr, shardCounts, *workers, *jsonPath, gates{
			prefixBudget:  *prefixBudget,
			cacheHitFloor: *cacheHitFloor,
			noSteal:       *noSteal,
			bandGate:      *bandGate,
			bandBaseline:  *bandBaseline,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oasis-bench:", err)
		os.Exit(1)
	}
}

// runEscapeGate runs the compiler-output escape gate over internal/core: the
// hotpathalloc analyzer checks what the source says, this checks what the
// compiler actually decided.  With write=true the baseline is regenerated
// instead of enforced.
func runEscapeGate(allowlist string, write bool) error {
	const (
		importPath = "repro/internal/core"
		pkgDir     = "internal/core"
	)
	if write {
		diags, err := analysis.CollectEscapeDiags(".", importPath, pkgDir)
		if err != nil {
			return err
		}
		if err := os.WriteFile(allowlist, []byte(analysis.FormatAllowlist(diags)), 0o644); err != nil {
			return err
		}
		fmt.Printf("escape-gate: wrote %d baseline entries to %s\n", len(diags), allowlist)
		return nil
	}
	res, err := analysis.RunEscapeGate(".", importPath, pkgDir, allowlist)
	if err != nil {
		return err
	}
	for _, d := range res.New {
		fmt.Fprintf(os.Stderr, "escape-gate: NEW: %s (not in %s)\n", d, allowlist)
	}
	for _, d := range res.Stale {
		fmt.Fprintf(os.Stderr, "escape-gate: STALE: %s (in %s but no longer produced; regenerate with -escape-write)\n", d, allowlist)
	}
	if !res.OK() {
		return fmt.Errorf("escape gate failed: %d new, %d stale (baseline %s)", len(res.New), len(res.Stale), allowlist)
	}
	fmt.Printf("escape-gate: OK (%d baseline diagnostics in //oasis:hotpath functions)\n", len(res.Current))
	return nil
}

func parseShardCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid shard count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shard counts in %q", s)
	}
	return out, nil
}

// gates bundles the experiment toggles and CI regression checks a bench run
// may enforce on top of measuring.
type gates struct {
	prefixBudget  float64
	cacheHitFloor float64
	noSteal       bool
	bandGate      float64
	bandBaseline  string
}

func run(cfg experiments.Config, exps, queryStr string, shardCounts []int, workers int, jsonPath string, g gates) error {
	selected := map[string]bool{}
	for _, e := range strings.Split(exps, ",") {
		selected[strings.TrimSpace(strings.ToLower(e))] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }
	if g.bandGate > 0 && !want("liveband") {
		return fmt.Errorf("-band-gate requires the liveband experiment (add liveband to -exp)")
	}

	fmt.Println("setting up workload and building the disk index ...")
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return err
	}
	defer lab.Close()
	fmt.Println(lab.Summary())
	fmt.Println()

	report := experiments.BenchReport{
		Residues:   lab.DB.TotalResidues(),
		NumQueries: len(lab.Queries),
		EValue:     lab.Config.EValue,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	out := os.Stdout
	if want("space") {
		experiments.RenderSpace(out, experiments.TableSpace(lab))
	}
	if want("fig3") {
		rows, err := experiments.Figure3(lab)
		if err != nil {
			return err
		}
		experiments.RenderFigure3(out, rows)
		var total float64
		for _, r := range rows {
			total += float64(r.OASISTime) * float64(r.NumQueries)
		}
		report.Records = append(report.Records, experiments.BenchRecord{
			Name: "fig3/oasis-mem", NsPerOp: total / float64(len(lab.Queries)),
		})
	}
	if want("fig4") {
		rows, err := experiments.Figure4(lab)
		if err != nil {
			return err
		}
		experiments.RenderFigure4(out, rows)
	}
	if want("fig5") {
		rows, err := experiments.Figure5(lab)
		if err != nil {
			return err
		}
		experiments.RenderFigure5(out, rows)
	}
	if want("fig6") {
		rows, err := experiments.Figure6(lab)
		if err != nil {
			return err
		}
		experiments.RenderFigure6(out, rows, cfg.EValue)
	}
	if want("fig7") {
		rows, err := experiments.Figure7(lab, nil)
		if err != nil {
			return err
		}
		experiments.RenderFigure7(out, rows)
	}
	if want("fig8") {
		rows, err := experiments.Figure8(lab, nil)
		if err != nil {
			return err
		}
		experiments.RenderFigure8(out, rows)
	}
	if want("fig9") {
		var q []byte
		if queryStr != "" {
			q = seq.Protein.MustEncode(queryStr)
		}
		rows, err := experiments.Figure9(lab, q)
		if err != nil {
			return err
		}
		experiments.RenderFigure9(out, rows)
	}
	if want("sharded") {
		rows, err := experiments.Sharded(lab, shardCounts, workers, g.noSteal)
		if err != nil {
			return err
		}
		experiments.RenderSharded(out, rows)
		for _, r := range rows {
			name := fmt.Sprintf("sharded/shards=%d", r.Shards)
			if r.Mode == "prefix" {
				name = fmt.Sprintf("sharded/prefix/shards=%d", r.Shards)
			}
			report.Records = append(report.Records, experiments.BenchRecord{
				Name:            name,
				NsPerOp:         float64(r.QueryTime),
				ColumnsExpanded: r.ColumnsExpanded,
				CellsComputed:   r.CellsComputed,
				Extra: map[string]float64{
					"speedup": r.Speedup,
					"workers": float64(r.Workers),
					"hits":    float64(r.Hits),
					"steals":  float64(r.Steals),
				},
			})
		}
		if g.prefixBudget > 0 {
			if err := experiments.CheckPrefixColumns(rows, g.prefixBudget); err != nil {
				return err
			}
			fmt.Printf("prefix-sharded ColumnsExpanded within %.2fx of the 1-shard baseline\n", g.prefixBudget)
		}
	}
	if want("liveband") {
		row, err := experiments.LiveBand(lab)
		if err != nil {
			return err
		}
		experiments.RenderLiveBand(out, row)
		refOverBand := 0.0
		if row.BandTime > 0 {
			refOverBand = float64(row.RefTime) / float64(row.BandTime)
		}
		report.Records = append(report.Records,
			experiments.BenchRecord{
				Name:            "liveband/band",
				NsPerOp:         float64(row.BandTime),
				ColumnsExpanded: row.Columns,
				CellsComputed:   row.BandCells,
				Extra: map[string]float64{
					"cell_fraction": row.CellFraction,
					"hits":          float64(row.Hits),
					"ref_over_band": refOverBand,
				},
			},
			experiments.BenchRecord{
				Name:            "liveband/ref-kernel",
				NsPerOp:         float64(row.RefTime),
				ColumnsExpanded: row.Columns,
				CellsComputed:   row.BandCells,
			},
			experiments.BenchRecord{
				Name:            "liveband/full-sweep",
				NsPerOp:         float64(row.FullTime),
				ColumnsExpanded: row.Columns,
				CellsComputed:   row.FullCells,
			})
		if g.bandGate > 0 {
			if err := experiments.CheckBandGate(row, g.bandBaseline, g.bandGate); err != nil {
				return err
			}
			fmt.Printf("live-band kernel within %.2fx of the %s baseline\n", g.bandGate, g.bandBaseline)
		}
	}
	if want("batch") {
		// The batch experiment measures what the warm engine amortises, at
		// the first configured shard count (use -shards to vary).
		rows, err := experiments.Batch(lab, shardCounts[0], workers, 0)
		if err != nil {
			return err
		}
		experiments.RenderBatch(out, rows)
		for _, r := range rows {
			report.Records = append(report.Records, experiments.BenchRecord{
				Name:    "batch/" + r.Mode,
				NsPerOp: float64(r.QueryTime),
				Extra: map[string]float64{
					"queries_per_sec": r.QueriesPerSec,
					"speedup":         r.Speedup,
					"hits":            float64(r.Hits),
					"build_ns":        float64(r.BuildTime),
					"queries":         float64(r.Queries),
				},
			})
		}
	}
	if want("cache") {
		// The cross-query result cache on repeated-query streams: hit rate
		// and throughput versus the duplicate fraction, at the first
		// configured shard count.
		rows, err := experiments.Cache(lab, shardCounts[0], workers, 0, 0, []int{0, 50, 80, 95})
		if err != nil {
			return err
		}
		experiments.RenderCache(out, rows)
		for _, r := range rows {
			name := fmt.Sprintf("cache/dup=%d", r.DupPercent)
			if r.Mode == "cache-off" {
				name = fmt.Sprintf("cache/off/dup=%d", r.DupPercent)
			}
			report.Records = append(report.Records, experiments.BenchRecord{
				Name:    name,
				NsPerOp: float64(r.QueryTime),
				Extra: map[string]float64{
					"queries_per_sec": r.QueriesPerSec,
					"speedup":         r.Speedup,
					"hit_rate":        r.HitRate,
					"cache_hits":      float64(r.CacheHits),
					"queries":         float64(r.Queries),
					"unique":          float64(r.Unique),
					"hits":            float64(r.Hits),
				},
			})
		}
		if g.cacheHitFloor > 0 {
			if err := experiments.CheckCacheHits(rows, g.cacheHitFloor); err != nil {
				return err
			}
			fmt.Printf("repeated-query cache hit rate at or above %.2f\n", g.cacheHitFloor)
		}
	}
	if want("disk") {
		// Disk-backed sharded serving vs in-memory shards at matched shard
		// counts, per-shard buffer pools sized by -pool.
		rows, err := experiments.Disk(lab, shardCounts, workers, cfg.BufferPoolBytes)
		if err != nil {
			return err
		}
		experiments.RenderDisk(out, rows)
		for _, r := range rows {
			name := fmt.Sprintf("disk/shards=%d", r.Shards)
			if r.Mode == "memory" {
				name = fmt.Sprintf("disk/memory/shards=%d", r.Shards)
			}
			rec := experiments.BenchRecord{
				Name:    name,
				NsPerOp: float64(r.QueryTime),
				Extra: map[string]float64{
					"queries_per_sec": r.QueriesPerSec,
					"cold_open_ns":    float64(r.ColdOpen),
					"setup_ns":        float64(r.Setup),
					"hits":            float64(r.Hits),
					"workers":         float64(r.Workers),
				},
			}
			if r.Mode == "disk" {
				rec.Extra["pool_hit_ratio"] = r.HitRatio
				rec.Extra["warm_open_ns"] = float64(r.WarmOpen)
			}
			report.Records = append(report.Records, rec)
		}
	}
	if want("incremental") {
		// The mutable layer: sustained insert rate and write-to-searchable
		// staleness while the Figure-4 query mix is served concurrently, at
		// the first configured shard count.
		row, err := experiments.Incremental(lab, shardCounts[0], workers, 0)
		if err != nil {
			return err
		}
		experiments.RenderIncremental(out, row)
		report.Records = append(report.Records, experiments.BenchRecord{
			Name:    "incremental/insert",
			NsPerOp: float64(row.InsertTime),
			Extra: map[string]float64{
				"inserts_per_sec":   row.InsertsPerSec,
				"staleness_mean_ns": float64(row.StalenessMean),
				"staleness_max_ns":  float64(row.StalenessMax),
				"staleness_samples": float64(row.Samples),
				"queries_per_sec":   row.QueriesPerSec,
				"queries_served":    float64(row.QueriesServed),
				"inserted":          float64(row.InsertedSequences),
				"compact_ns":        float64(row.CompactTime),
				"generation":        float64(row.Generation),
			},
		})
	}
	if want("distributed") {
		// The coordinator fan-out over real loopback shard servers, with a
		// replica killed mid-run: throughput plus the failover/hedge counters
		// that show the replica sets absorbing the fault.
		res, err := experiments.Distributed(lab, 2, 2)
		if err != nil {
			return err
		}
		experiments.RenderDistributed(out, res)
		report.Records = append(report.Records, experiments.BenchRecord{
			Name:    "distributed/fanout",
			NsPerOp: float64(res.Elapsed) / float64(res.NumQueries),
			Extra: map[string]float64{
				"queries_per_sec":  res.QueriesPerSec,
				"slices":           float64(res.Slices),
				"replicas":         float64(res.Replicas),
				"failovers":        float64(res.Remote.Failovers),
				"retries":          float64(res.Remote.Retries),
				"attempts":         float64(res.Remote.Attempts),
				"hedges":           float64(res.Remote.Hedges),
				"hedge_win_rate":   res.HedgeWinRate,
				"degraded_queries": float64(res.DegradedQueries),
				"hits":             float64(res.TotalHits),
			},
		})
	}
	if jsonPath != "" && len(report.Records) > 0 {
		if err := experiments.WriteBenchJSON(jsonPath, report); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d records)\n", jsonPath, len(report.Records))
	}
	return nil
}
