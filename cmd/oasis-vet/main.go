// Command oasis-vet is the project's multichecker: it runs the standard `go
// vet` suite and then the five project-specific invariant analyzers from
// internal/analysis (hotpathalloc, ctxflow, cachekey, faultsite, atomicstate)
// over the requested packages, exiting non-zero on any finding.  CI runs it
// over ./... as a required step.
//
// Usage:
//
//	go run ./cmd/oasis-vet [flags] [packages]   (default ./...)
//
// Flags:
//
//	-run list   comma-separated analyzer names to run (default all)
//	-no-std     skip the `go vet` standard-analyzer pass
//	-list       print the suite's analyzers and exit
//
// See the internal/analysis package documentation for what each analyzer
// enforces and how to annotate justified exceptions.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		noStd   = flag.Bool("no-std", false, "skip the `go vet` standard-analyzer pass")
		list    = flag.Bool("list", false, "list the suite's analyzers and exit")
	)
	flag.Parse()

	suite := analysis.Analyzers()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runList != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*runList, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "oasis-vet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		suite = filtered
	}
	// Feed the faultsite analyzer the CI reference text: workflow files and
	// ci/ scripts count as failpoint exercise (OASIS_FAILPOINTS smoke runs).
	for _, a := range suite {
		if a.Name == "faultsite" {
			*a = *analysis.NewFaultSite(ciReferenceText("."))
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*noStd {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, fset, err := analysis.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oasis-vet:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunSuite(suite, pkgs, fset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oasis-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}

// ciReferenceText gathers the contents of CI workflow and script files under
// the module root for faultsite's test-or-CI reference check.
func ciReferenceText(root string) map[string]string {
	refs := map[string]string{}
	for _, glob := range []string{
		filepath.Join(root, ".github", "workflows", "*"),
		filepath.Join(root, "ci", "*"),
	} {
		matches, _ := filepath.Glob(glob)
		for _, m := range matches {
			if b, err := os.ReadFile(m); err == nil {
				refs[m] = string(b)
			}
		}
	}
	return refs
}
