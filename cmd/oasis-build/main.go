// Command oasis-build constructs the on-disk OASIS suffix-tree index for a
// sequence database.
//
// The database can come from a FASTA file or be generated synthetically
// (the SWISS-PROT / Drosophila stand-in workloads described in DESIGN.md):
//
//	oasis-build -in swissprot.fasta -alphabet protein -out swissprot.oasis
//	oasis-build -synthetic 2000000 -alphabet protein -out synthetic.oasis
//	oasis-build -synthetic 5000000 -alphabet dna -partitioned -out dna.oasis
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/seq"
	"repro/internal/workload"
	"repro/oasis"
)

func main() {
	var (
		inPath      = flag.String("in", "", "input FASTA file (mutually exclusive with -synthetic)")
		synthetic   = flag.Int64("synthetic", 0, "generate a synthetic database with ~this many residues")
		outPath     = flag.String("out", "database.oasis", "output index path")
		alphabet    = flag.String("alphabet", "protein", "sequence alphabet: protein or dna")
		blockSize   = flag.Int("block", 2048, "index block size in bytes")
		partitioned = flag.Bool("partitioned", false, "use the partitioned (Hunt-style) construction")
		prefixLen   = flag.Int("prefix", 1, "partition prefix length (with -partitioned)")
		seed        = flag.Int64("seed", 1309, "seed for synthetic generation")
		fastaOut    = flag.String("fasta-out", "", "also write the (synthetic) database as FASTA to this path")
	)
	flag.Parse()

	alpha, err := alphabetByName(*alphabet)
	if err != nil {
		fatal(err)
	}
	db, err := loadDatabase(*inPath, *synthetic, alpha, *seed)
	if err != nil {
		fatal(err)
	}
	st := db.ComputeStats()
	fmt.Printf("database: %d sequences, %d residues (lengths %d-%d, mean %.1f)\n",
		st.NumSequences, st.TotalResidues, st.MinLength, st.MaxLength, st.MeanLength)

	if *fastaOut != "" {
		if err := seq.WriteFASTAFile(*fastaOut, db, 60); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote database FASTA to %s\n", *fastaOut)
	}

	buildStats, err := oasis.BuildDiskIndex(*outPath, db, oasis.IndexBuildOptions{
		BlockSize:   *blockSize,
		Partitioned: *partitioned,
		PrefixLen:   *prefixLen,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("index: %s\n", *outPath)
	fmt.Printf("  internal nodes: %d\n", buildStats.NumInternal)
	fmt.Printf("  leaves:         %d\n", buildStats.NumLeaves)
	fmt.Printf("  file size:      %d bytes (%.2f bytes per symbol)\n", buildStats.FileBytes, buildStats.BytesPerSymbol)
}

func alphabetByName(name string) (*oasis.Alphabet, error) {
	switch name {
	case "protein":
		return oasis.Protein, nil
	case "dna":
		return oasis.DNA, nil
	default:
		return nil, fmt.Errorf("unknown alphabet %q (want protein or dna)", name)
	}
}

func loadDatabase(inPath string, synthetic int64, alpha *oasis.Alphabet, seed int64) (*oasis.Database, error) {
	switch {
	case inPath != "" && synthetic > 0:
		return nil, fmt.Errorf("-in and -synthetic are mutually exclusive")
	case inPath != "":
		return oasis.LoadFASTA(inPath, alpha)
	case synthetic > 0:
		if alpha == oasis.DNA {
			cfg := workload.DefaultDNAConfig(synthetic)
			cfg.Seed = seed
			return workload.DNADatabase(cfg)
		}
		cfg := workload.DefaultProteinConfig(synthetic)
		cfg.Seed = seed
		db, _, err := workload.ProteinDatabase(cfg)
		return db, err
	default:
		return nil, fmt.Errorf("either -in or -synthetic is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oasis-build:", err)
	os.Exit(1)
}
