// Command oasis-build constructs the on-disk OASIS suffix-tree index for a
// sequence database.
//
// The database can come from a FASTA file or be generated synthetically
// (the SWISS-PROT / Drosophila stand-in workloads described in DESIGN.md):
//
//	oasis-build -in swissprot.fasta -alphabet protein -out swissprot.oasis
//	oasis-build -synthetic 2000000 -alphabet protein -out synthetic.oasis
//	oasis-build -synthetic 5000000 -alphabet dna -partitioned -out dna.oasis
//
// With -shards N the output is a SHARDED index: -out names a directory that
// receives one shard-K.oasis file per shard plus a manifest.json recording
// the partition, and oasis-serve/oasis-search/oasis-bench open it with
// -index-dir — each shard is then searched through its own buffer pool, so
// shard parallelism also parallelises I/O:
//
//	oasis-build -in swissprot.fasta -shards 4 -out swissprot.idx
//	oasis-build -synthetic 2000000 -shards 4 -prefix-sharding -out synthetic.idx
//
// -prefix-sharding writes one SHARED index file plus a suffix-prefix ->
// shard assignment (Hunt-style subtree partitions) instead of one
// independently indexed file per sequence subset.
//
// -verify deep-scrubs an existing index instead of building one: every
// checksummed block is re-read and compared against the stored CRC32C table,
// and the index is structurally opened.  The exit status is non-zero when
// corruption is found:
//
//	oasis-build -verify swissprot.oasis
//	oasis-build -verify swissprot.idx      # sharded directory
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/seq"
	"repro/internal/workload"
	"repro/oasis"
)

func main() {
	var (
		inPath      = flag.String("in", "", "input FASTA file (mutually exclusive with -synthetic)")
		synthetic   = flag.Int64("synthetic", 0, "generate a synthetic database with ~this many residues")
		outPath     = flag.String("out", "database.oasis", "output index path")
		alphabet    = flag.String("alphabet", "protein", "sequence alphabet: protein or dna")
		blockSize   = flag.Int("block", 2048, "index block size in bytes")
		partitioned = flag.Bool("partitioned", false, "use the partitioned (Hunt-style) construction")
		prefixLen   = flag.Int("prefix", 1, "partition prefix length (with -partitioned)")
		shards      = flag.Int("shards", 0, "write a sharded index: -out becomes a directory with one shard file per shard plus manifest.json (0 = single-file index)")
		prefixShard = flag.Bool("prefix-sharding", false, "with -shards: one shared index file with a suffix-prefix -> shard assignment instead of per-sequence-subset files")
		seed        = flag.Int64("seed", 1309, "seed for synthetic generation")
		fastaOut    = flag.String("fasta-out", "", "also write the (synthetic) database as FASTA to this path")
		verify      = flag.String("verify", "", "deep-scrub an existing index file or sharded index directory instead of building (exit 1 on corruption)")
	)
	flag.Parse()

	if *verify != "" {
		runVerify(*verify)
		return
	}

	alpha, err := alphabetByName(*alphabet)
	if err != nil {
		fatal(err)
	}
	db, err := loadDatabase(*inPath, *synthetic, alpha, *seed)
	if err != nil {
		fatal(err)
	}
	st := db.ComputeStats()
	fmt.Printf("database: %d sequences, %d residues (lengths %d-%d, mean %.1f)\n",
		st.NumSequences, st.TotalResidues, st.MinLength, st.MaxLength, st.MeanLength)

	if *fastaOut != "" {
		if err := seq.WriteFASTAFile(*fastaOut, db, 60); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote database FASTA to %s\n", *fastaOut)
	}

	if *shards > 0 {
		if *partitioned {
			fatal(fmt.Errorf("-partitioned applies to single-file builds; sharded builds partition via -prefix-sharding"))
		}
		manifest, stats, err := oasis.BuildShardedDiskIndex(*outPath, db, oasis.ShardedIndexBuildOptions{
			BlockSize:         *blockSize,
			Shards:            *shards,
			PartitionByPrefix: *prefixShard,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sharded index: %s (%d shards, %s partition)\n", *outPath, manifest.Shards, manifest.Partition)
		var total int64
		for i, st := range stats {
			fmt.Printf("  %-16s %d internal nodes, %d leaves, %d bytes\n",
				manifest.ShardFiles[i], st.NumInternal, st.NumLeaves, st.FileBytes)
			total += st.FileBytes
		}
		fmt.Printf("  total:           %d bytes; serve with -index-dir %s\n", total, *outPath)
		return
	}
	if *prefixShard {
		fatal(fmt.Errorf("-prefix-sharding requires -shards"))
	}
	buildStats, err := oasis.BuildDiskIndex(*outPath, db, oasis.IndexBuildOptions{
		BlockSize:   *blockSize,
		Partitioned: *partitioned,
		PrefixLen:   *prefixLen,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("index: %s\n", *outPath)
	fmt.Printf("  internal nodes: %d\n", buildStats.NumInternal)
	fmt.Printf("  leaves:         %d\n", buildStats.NumLeaves)
	fmt.Printf("  file size:      %d bytes (%.2f bytes per symbol)\n", buildStats.FileBytes, buildStats.BytesPerSymbol)
}

// runVerify deep-scrubs an index file or sharded index directory and exits
// non-zero when corruption is found.
func runVerify(path string) {
	fi, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	var rep *oasis.VerifyReport
	if fi.IsDir() {
		rep, err = oasis.VerifyIndexDir(path)
	} else {
		rep, err = oasis.VerifyDiskIndex(path)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("verify: %s: %d file(s), %d checksummed block(s)\n", path, rep.Files, rep.Blocks)
	if rep.ChecksumsUnavailable {
		fmt.Println("  note: checksums unavailable for at least one file (format v1); structural checks only")
	}
	if rep.OK() {
		fmt.Println("  OK")
		return
	}
	for _, p := range rep.Problems {
		fmt.Printf("  CORRUPT %s block %d offset %d: %s\n", p.File, p.Block, p.Offset, p.Detail)
	}
	os.Exit(1)
}

func alphabetByName(name string) (*oasis.Alphabet, error) {
	switch name {
	case "protein":
		return oasis.Protein, nil
	case "dna":
		return oasis.DNA, nil
	default:
		return nil, fmt.Errorf("unknown alphabet %q (want protein or dna)", name)
	}
}

func loadDatabase(inPath string, synthetic int64, alpha *oasis.Alphabet, seed int64) (*oasis.Database, error) {
	switch {
	case inPath != "" && synthetic > 0:
		return nil, fmt.Errorf("-in and -synthetic are mutually exclusive")
	case inPath != "":
		return oasis.LoadFASTA(inPath, alpha)
	case synthetic > 0:
		if alpha == oasis.DNA {
			cfg := workload.DefaultDNAConfig(synthetic)
			cfg.Seed = seed
			return workload.DNADatabase(cfg)
		}
		cfg := workload.DefaultProteinConfig(synthetic)
		cfg.Seed = seed
		db, _, err := workload.ProteinDatabase(cfg)
		return db, err
	default:
		return nil, fmt.Errorf("either -in or -synthetic is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oasis-build:", err)
	os.Exit(1)
}
