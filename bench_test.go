// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 4), plus ablation benchmarks for the design choices called out in
// DESIGN.md.  Each benchmark prints the reproduced series through
// testing.B.ReportMetric / b.Log so that `go test -bench` output doubles as
// the experiment record; cmd/oasis-bench runs the same experiments at larger
// scale with full tables.
package repro

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/align"
	"repro/internal/blast"
	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/shard"
	"repro/internal/suffixtree"
	"repro/internal/workload"
	"repro/oasis"
)

// benchLab is built once and shared by every benchmark (building the
// synthetic database and its indexes is expensive relative to a single
// query).
var (
	labOnce sync.Once
	lab     *experiments.Lab
	labMem  *core.MemoryIndex
	labDir  string
	labErr  error
)

func benchLab(b *testing.B) (*experiments.Lab, *core.MemoryIndex) {
	b.Helper()
	labOnce.Do(func() {
		labDir, labErr = os.MkdirTemp("", "oasis-bench-")
		if labErr != nil {
			return
		}
		cfg := experiments.DefaultConfig()
		cfg.TotalResidues = 400_000
		cfg.NumQueries = 24
		cfg.Dir = labDir
		lab, labErr = experiments.NewLab(cfg)
		if labErr != nil {
			return
		}
		labMem, labErr = core.BuildMemoryIndex(lab.DB)
	})
	if labErr != nil {
		b.Fatal(labErr)
	}
	return lab, labMem
}

// --- Section 4.2 table: space utilisation ---------------------------------

func BenchmarkTableSpaceUtilization(b *testing.B) {
	l, _ := benchLab(b)
	var row experiments.SpaceRow
	for i := 0; i < b.N; i++ {
		row = experiments.TableSpace(l)
	}
	b.ReportMetric(row.BytesPerSymbol, "bytes/symbol")
	b.ReportMetric(float64(row.IndexBytes), "index-bytes")
}

// --- Figure 3: query time vs query length (OASIS / BLAST / S-W) -----------

func benchQueries(l *experiments.Lab, maxLen int) []workload.Query {
	var out []workload.Query
	for _, q := range l.Queries {
		if maxLen == 0 || len(q.Residues) <= maxLen {
			out = append(out, q)
		}
	}
	return out
}

// scoredQuery is a workload query with its minScore resolved ahead of time,
// so timed loops measure the search, not per-iteration threshold
// recomputation (Karlin-Altschul solving is not free).
type scoredQuery struct {
	residues []byte
	minScore int
}

// benchScoredQueries precomputes each query's minScore at the given E-value.
func benchScoredQueries(l *experiments.Lab, eValue float64) []scoredQuery {
	qs := benchQueries(l, 0)
	out := make([]scoredQuery, len(qs))
	for i, q := range qs {
		out[i] = scoredQuery{
			residues: q.Residues,
			minScore: l.KA.MinScore(eValue, len(q.Residues), l.DB.TotalResidues()),
		}
	}
	return out
}

func BenchmarkFigure3OASIS(b *testing.B) {
	l, mem := benchLab(b)
	qs := benchScoredQueries(l, l.Config.EValue)
	var st core.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := core.SearchAll(mem, q.residues, core.Options{Scheme: l.Scheme, MinScore: q.minScore, Stats: &st}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.ColumnsExpanded)/float64(b.N), "columns/query")
}

func BenchmarkFigure3OASISDisk(b *testing.B) {
	l, _ := benchLab(b)
	pool := bufferpool.New(l.Config.BufferPoolBytes, l.Config.BlockSize)
	idx, err := diskst.Open(l.IndexPath, pool)
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	qs := benchScoredQueries(l, l.Config.EValue)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := core.SearchAll(idx, q.residues, core.Options{Scheme: l.Scheme, MinScore: q.minScore}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3SmithWaterman(b *testing.B) {
	l, _ := benchLab(b)
	qs := benchScoredQueries(l, l.Config.EValue)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := align.SearchDatabase(l.DB, q.residues, l.Scheme, align.Options{MinScore: q.minScore}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3BLAST(b *testing.B) {
	l, _ := benchLab(b)
	searcher, err := blast.NewSearcher(l.DB, l.Scheme, blast.Options{TwoHit: true, EValue: l.Config.EValue})
	if err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(l, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := searcher.Search(q.Residues, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: filtering efficiency (columns expanded) --------------------

func BenchmarkFigure4Filtering(b *testing.B) {
	l, mem := benchLab(b)
	qs := benchScoredQueries(l, l.Config.EValue)
	var oasisCols, swCols float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		var ost core.Stats
		if _, err := core.SearchAll(mem, q.residues, core.Options{Scheme: l.Scheme, MinScore: q.minScore, Stats: &ost}); err != nil {
			b.Fatal(err)
		}
		oasisCols += float64(ost.ColumnsExpanded)
		swCols += float64(l.DB.TotalResidues())
	}
	b.StopTimer()
	if swCols > 0 {
		b.ReportMetric(oasisCols/swCols, "column-fraction")
	}
}

// --- Figure 5: additional matches relative to BLAST -----------------------

func BenchmarkFigure5Accuracy(b *testing.B) {
	l, mem := benchLab(b)
	searcher, err := blast.NewSearcher(l.DB, l.Scheme, blast.Options{TwoHit: true, EValue: l.Config.EValue})
	if err != nil {
		b.Fatal(err)
	}
	qs := benchScoredQueries(l, l.Config.EValue)
	var oasisHits, blastHits float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		oh, err := core.SearchAll(mem, q.residues, core.Options{Scheme: l.Scheme, MinScore: q.minScore})
		if err != nil {
			b.Fatal(err)
		}
		bh, err := searcher.Search(q.residues, nil)
		if err != nil {
			b.Fatal(err)
		}
		oasisHits += float64(len(oh))
		blastHits += float64(len(bh))
	}
	b.StopTimer()
	if blastHits > 0 {
		b.ReportMetric(100*(oasisHits-blastHits)/blastHits, "additional-matches-%")
	}
}

// --- Figure 6: effect of selectivity (E=1 vs E=20000) ---------------------

func BenchmarkFigure6SelectivityE1(b *testing.B) { benchSelectivity(b, 1) }

func BenchmarkFigure6SelectivityE20000(b *testing.B) { benchSelectivity(b, 20000) }

func benchSelectivity(b *testing.B, eValue float64) {
	l, mem := benchLab(b)
	qs := benchScoredQueries(l, eValue)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := core.SearchAll(mem, q.residues, core.Options{Scheme: l.Scheme, MinScore: q.minScore}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 7 and 8: buffer pool size sweep -------------------------------

func BenchmarkFigure7BufferPool(b *testing.B) {
	l, _ := benchLab(b)
	info, err := os.Stat(l.IndexPath)
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range []float64{0.05, 0.25, 1.0} {
		frac := frac
		b.Run(fmt.Sprintf("pool=%.0f%%", frac*100), func(b *testing.B) {
			poolBytes := int64(float64(info.Size()) * frac)
			pool := bufferpool.New(poolBytes, l.Config.BlockSize)
			idx, err := diskst.Open(l.IndexPath, pool)
			if err != nil {
				b.Fatal(err)
			}
			defer idx.Close()
			qs := benchScoredQueries(l, l.Config.EValue)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := core.SearchAll(idx, q.residues, core.Options{Scheme: l.Scheme, MinScore: q.minScore}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Figure 8: per-component hit ratios at this pool size.
			b.ReportMetric(pool.Stats(idx.SymbolsFile()).HitRatio(), "hit-symbols")
			b.ReportMetric(pool.Stats(idx.InternalFile()).HitRatio(), "hit-internal")
			b.ReportMetric(pool.Stats(idx.LeavesFile()).HitRatio(), "hit-leaves")
		})
	}
}

// --- Figure 9: online behaviour --------------------------------------------

func BenchmarkFigure9OnlineFirstResult(b *testing.B) {
	l, mem := benchLab(b)
	// Pick the workload query closest to the paper's 13-residue example.
	q := l.Queries[0].Residues
	for _, c := range l.Queries {
		if abs(len(c.Residues)-13) < abs(len(q)-13) {
			q = c.Residues
		}
	}
	minScore := l.KA.MinScore(l.Config.EValue, len(q), l.DB.TotalResidues())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Online mode: stop after the first (strongest) result.
		err := core.Search(mem, q, core.Options{Scheme: l.Scheme, MinScore: minScore}, func(core.Hit) bool { return false })
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9OnlineAllResults(b *testing.B) {
	l, mem := benchLab(b)
	q := l.Queries[0].Residues
	for _, c := range l.Queries {
		if abs(len(c.Residues)-13) < abs(len(q)-13) {
			q = c.Residues
		}
	}
	minScore := l.KA.MinScore(l.Config.EValue, len(q), l.DB.TotalResidues())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SearchAll(mem, q, core.Options{Scheme: l.Scheme, MinScore: minScore}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md Section 7) ---------------------------------------

// BenchmarkAblationIndexConstruction compares the three suffix-tree
// construction algorithms.
func BenchmarkAblationIndexConstruction(b *testing.B) {
	l, _ := benchLab(b)
	for name, build := range map[string]func() error{
		"ukkonen":     func() error { _, err := suffixtree.BuildUkkonen(l.DB); return err },
		"sorted":      func() error { _, err := suffixtree.BuildSorted(l.DB); return err },
		"partitioned": func() error { _, err := suffixtree.BuildPartitioned(l.DB, 1); return err },
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := build(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBlockSize measures the effect of the index block size on
// query time (paper Section 3.4 uses 2 KB blocks).
func BenchmarkAblationBlockSize(b *testing.B) {
	l, _ := benchLab(b)
	for _, bs := range []int{512, 2048, 8192} {
		bs := bs
		b.Run(fmt.Sprintf("block=%d", bs), func(b *testing.B) {
			path := filepath.Join(labDir, fmt.Sprintf("abl-%d.oasis", bs))
			if _, err := os.Stat(path); err != nil {
				if _, err := diskst.Build(path, l.DB, diskst.BuildOptions{WriteOptions: diskst.WriteOptions{BlockSize: bs}}); err != nil {
					b.Fatal(err)
				}
			}
			pool := bufferpool.New(l.Config.BufferPoolBytes, bs)
			idx, err := diskst.Open(path, pool)
			if err != nil {
				b.Fatal(err)
			}
			defer idx.Close()
			qs := benchScoredQueries(l, l.Config.EValue)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := core.SearchAll(idx, q.residues, core.Options{Scheme: l.Scheme, MinScore: q.minScore}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMemoryVsDisk compares the in-memory and disk-resident
// index implementations on the same queries.
func BenchmarkAblationMemoryVsDisk(b *testing.B) {
	l, mem := benchLab(b)
	pool := bufferpool.New(l.Config.BufferPoolBytes, l.Config.BlockSize)
	disk, err := diskst.Open(l.IndexPath, pool)
	if err != nil {
		b.Fatal(err)
	}
	defer disk.Close()
	for name, idx := range map[string]core.Index{"memory": mem, "disk": disk} {
		idx := idx
		b.Run(name, func(b *testing.B) {
			qs := benchScoredQueries(l, l.Config.EValue)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := core.SearchAll(idx, q.residues, core.Options{Scheme: l.Scheme, MinScore: q.minScore}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBLASTTwoHit compares the one-hit and two-hit seeding
// heuristics of the BLAST baseline.
func BenchmarkAblationBLASTTwoHit(b *testing.B) {
	l, _ := benchLab(b)
	for name, twoHit := range map[string]bool{"one-hit": false, "two-hit": true} {
		twoHit := twoHit
		b.Run(name, func(b *testing.B) {
			searcher, err := blast.NewSearcher(l.DB, l.Scheme, blast.Options{TwoHit: twoHit, EValue: l.Config.EValue})
			if err != nil {
				b.Fatal(err)
			}
			qs := benchQueries(l, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := searcher.Search(q.Residues, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Sharded parallel search -----------------------------------------------

// BenchmarkShardedSearch measures workload throughput through the sharded
// engine (one searcher per partition, order-preserving merge) at increasing
// shard counts, in both partition modes.  The sequence/shards=1 case is the
// single-index baseline for the speedup comparison; real scaling requires
// >1 CPU.  The columns/query metric is the point of the comparison:
// sequence-partitioned shards duplicate near-root expansion (columns grow
// with the shard count) while prefix-partitioned shards share one frontier
// (columns stay flat at the 1-shard count).
func BenchmarkShardedSearch(b *testing.B) {
	l, _ := benchLab(b)
	for _, pm := range []struct {
		name string
		mode shard.PartitionMode
	}{{"sequence", shard.PartitionBySequence}, {"prefix", shard.PartitionByPrefix}} {
		for _, nShards := range []int{1, 2, 4, 8} {
			pm, nShards := pm, nShards
			b.Run(fmt.Sprintf("%s/shards=%d", pm.name, nShards), func(b *testing.B) {
				eng, err := shard.NewEngine(l.DB, shard.Options{Shards: nShards, Partition: pm.mode})
				if err != nil {
					b.Fatal(err)
				}
				qs := benchScoredQueries(l, l.Config.EValue)
				var st core.Stats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q := qs[i%len(qs)]
					if _, err := eng.SearchAll(q.residues, core.Options{Scheme: l.Scheme, MinScore: q.minScore, Stats: &st}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(st.ColumnsExpanded)/float64(b.N), "columns/query")
				b.ReportMetric(float64(st.CellsComputed)/float64(b.N), "cells/query")
			})
		}
	}
}

// BenchmarkLiveBandKernel quantifies the live-band DP kernel: the band
// sub-benchmark runs the standard search, full-sweep disables the band and
// touches every cell of every expanded column (the pre-band behaviour).
func BenchmarkLiveBandKernel(b *testing.B) {
	l, mem := benchLab(b)
	for _, mode := range []struct {
		name string
		full bool
	}{{"band", false}, {"full-sweep", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			qs := benchScoredQueries(l, l.Config.EValue)
			var st core.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := core.SearchAll(mem, q.residues, core.Options{
					Scheme: l.Scheme, MinScore: q.minScore, Stats: &st, DisableLiveBand: mode.full,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.CellsComputed)/float64(b.N), "cells/query")
			b.ReportMetric(float64(st.ColumnsExpanded)/float64(b.N), "columns/query")
		})
	}
}

// BenchmarkPublicAPISearch exercises the public oasis facade end to end
// (what a downstream user pays per query).  Option assembly is hoisted out
// of the timed loop: rebuilding SearchOptions per iteration re-solves the
// Karlin-Altschul threshold and pollutes ns/op.
func BenchmarkPublicAPISearch(b *testing.B) {
	l, _ := benchLab(b)
	idx, err := oasis.OpenDiskIndex(l.IndexPath, l.Config.BufferPoolBytes)
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	scheme := l.Scheme
	qs := benchQueries(l, 0)
	opts := make([]oasis.SearchOptions, len(qs))
	for i, q := range qs {
		o, err := oasis.NewSearchOptions(scheme, l.DB, q.Residues, oasis.WithEValue(l.Config.EValue))
		if err != nil {
			b.Fatal(err)
		}
		opts[i] = o
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := oasis.SearchAll(idx, q.Residues, opts[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Batch query engine -----------------------------------------------------

// BenchmarkBatchEngine measures the tentpole directly: cold-setup pays full
// engine construction (index build, shard pool, scratch) per query — the
// pre-engine serving pattern — while the warm sub-benchmarks reuse one
// long-lived engine across all iterations, and warm-batch additionally
// multiplexes the whole workload through SubmitBatch per iteration.
func BenchmarkBatchEngine(b *testing.B) {
	l, _ := benchLab(b)
	qs := benchScoredQueries(l, l.Config.EValue)
	ctx := context.Background()
	drain := func(core.Hit) bool { return true }
	query := func(i int) engine.Query {
		q := qs[i%len(qs)]
		return engine.Query{
			Residues: q.residues,
			Options:  core.Options{Scheme: l.Scheme, MinScore: q.minScore},
		}
	}

	b.Run("cold-setup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(l.DB, engine.Options{Shards: 2})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Search(ctx, query(i), drain); err != nil {
				b.Fatal(err)
			}
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng, err := engine.New(l.DB, engine.Options{Shards: 2})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Search(ctx, query(i), drain); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-batch", func(b *testing.B) {
		eng, err := engine.New(l.DB, engine.Options{Shards: 2})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		batch := make([]engine.Query, len(qs))
		for i := range qs {
			batch[i] = query(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := range eng.SubmitBatch(ctx, batch) {
				if r.Done && r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		b.StopTimer()
		// One op is the whole workload; report per-query throughput too.
		perOp := b.Elapsed().Seconds() / float64(b.N)
		if perOp > 0 {
			b.ReportMetric(float64(len(batch))/perOp, "queries/sec")
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
