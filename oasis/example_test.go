package oasis_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/oasis"
)

// exampleDatabase builds a tiny protein database: two EF-hand proteins that
// match the example query and two that do not.
func exampleDatabase() *oasis.Database {
	raw := []struct{ id, residues string }{
		{"CALM_HUMAN", "ADQLTEEQIAEFKEAFSLFDKDGDGTITTKELGTVMRSLGQNPTEAELQDMINEVDADGNGTIDFPEFLTMMARKM"},
		{"TNNC1_HUMAN", "MDDIYKAAVEQLTEEQKNEFKAAFDIFVLGAEDGCISTKELGKVMRMLGQNPTPEELQEMIDEVDEDGSGTVDFDEFLVMMVRCM"},
		{"MYG_HUMAN", "GLSDGEWQLVLNVWGKVEADIPGHGQEVLIRLFKGHPETLEKFDKFKHLKSEDEMKASEDLKKHGATVLTALGGILKKKGHHEAEI"},
		{"UNRELATED", "PPPPGGGGSSSSPPPPGGGGSSSSPPPPGGGGSSSS"},
	}
	var seqs []oasis.Sequence
	for _, s := range raw {
		seqs = append(seqs, oasis.Sequence{ID: s.id, Residues: oasis.Protein.MustEncode(s.residues)})
	}
	db, err := oasis.NewDatabase(oasis.Protein, seqs)
	if err != nil {
		log.Fatal(err)
	}
	return db
}

// ExampleSearch builds an in-memory index and streams hits in decreasing
// score order — the paper's online property: the strongest hit arrives
// first, and returning false from the callback stops the search early.
func ExampleSearch() {
	db := exampleDatabase()
	idx, err := oasis.NewMemoryIndex(db)
	if err != nil {
		log.Fatal(err)
	}
	query := oasis.Protein.MustEncode("DKDGDGTITTKE")
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		log.Fatal(err)
	}
	opts, err := oasis.NewSearchOptions(scheme, db, query, oasis.WithMinScore(20))
	if err != nil {
		log.Fatal(err)
	}
	err = oasis.Search(idx, query, opts, func(h oasis.Hit) bool {
		fmt.Printf("#%d %s score=%d\n", h.Rank, h.SeqID, h.Score)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// #1 CALM_HUMAN score=64
	// #2 TNNC1_HUMAN score=34
}

// ExampleNewShardedIndex searches the database with one worker per shard;
// per-shard hit streams are merged online, so the decreasing-score order
// (and therefore streaming top-k) survives sharding.
func ExampleNewShardedIndex() {
	db := exampleDatabase()
	sharded, err := oasis.NewShardedIndex(db, oasis.ShardOptions{Shards: 2, PartitionByPrefix: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sharded.Close()
	query := oasis.Protein.MustEncode("DKDGDGTITTKE")
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		log.Fatal(err)
	}
	opts, err := oasis.NewSearchOptions(scheme, db, query, oasis.WithMinScore(20))
	if err != nil {
		log.Fatal(err)
	}
	hits, err := sharded.SearchAll(query, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("%s score=%d\n", h.SeqID, h.Score)
	}
	// Output:
	// CALM_HUMAN score=64
	// TNNC1_HUMAN score=34
}

// ExampleEngine_SubmitBatch serves a batch over one warm engine: the index
// is built once and every query reuses it, with per-query decreasing-score
// hit streams multiplexed onto one channel.
func ExampleEngine_SubmitBatch() {
	db := exampleDatabase()
	eng, err := oasis.NewEngine(db, oasis.EngineOptions{Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		log.Fatal(err)
	}
	query := oasis.Protein.MustEncode("DKDGDGTITTKE")
	opts, err := oasis.NewSearchOptions(scheme, db, query, oasis.WithMinScore(20))
	if err != nil {
		log.Fatal(err)
	}
	batch := []oasis.BatchQuery{{ID: "ef-hand", Residues: query, Options: opts}}
	for r := range eng.SubmitBatch(context.Background(), batch) {
		if r.Done {
			fmt.Printf("%s done err=%v\n", r.QueryID, r.Err)
			continue
		}
		fmt.Printf("%s %s score=%d\n", r.QueryID, r.Hit.SeqID, r.Hit.Score)
	}
	// Output:
	// ef-hand CALM_HUMAN score=64
	// ef-hand TNNC1_HUMAN score=34
	// ef-hand done err=<nil>
}

// ExampleOpenEngine is the disk-backed serving flow: BuildShardedDiskIndex
// writes one index file per shard plus a manifest, and OpenEngine serves the
// directory without the database ever being resident — each shard reads
// through its own buffer pool, so the engine can serve datasets bigger than
// RAM (cmd/oasis-build and oasis-serve -index-dir wrap exactly this).
func ExampleOpenEngine() {
	db := exampleDatabase()
	dir, err := os.MkdirTemp("", "oasis-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	indexDir := filepath.Join(dir, "proteins.idx")
	manifest, _, err := oasis.BuildShardedDiskIndex(indexDir, db, oasis.ShardedIndexBuildOptions{Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d shards (%s partition)\n", manifest.Shards, manifest.Partition)

	eng, err := oasis.OpenEngine(indexDir, oasis.EngineOptions{PoolBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		log.Fatal(err)
	}
	query := oasis.Protein.MustEncode("DKDGDGTITTKE")
	opts, err := oasis.NewSearchOptionsSized(scheme, eng.TotalResidues(), query, oasis.WithMinScore(20))
	if err != nil {
		log.Fatal(err)
	}
	err = eng.Search(context.Background(), query, opts, func(h oasis.Hit) bool {
		fmt.Printf("%s score=%d\n", h.SeqID, h.Score)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// built 2 shards (sequence partition)
	// CALM_HUMAN score=64
	// TNNC1_HUMAN score=34
}
