package oasis_test

import (
	"testing"

	"repro/internal/workload"
	"repro/oasis"
)

// TestShardedIndexPublicAPI drives the sharded engine through the public
// facade on a workload-generated database and checks it against the
// single-index search.
func TestShardedIndexPublicAPI(t *testing.T) {
	cfg := workload.DefaultProteinConfig(30_000)
	cfg.Seed = 77
	db, motifs, err := workload.ProteinDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := workload.MotifQueries(db, motifs, workload.DefaultQueryConfig(6))
	if err != nil {
		t.Fatal(err)
	}

	scheme, err := oasis.NewScheme(oasis.MatrixByName("PAM30"), -10)
	if err != nil {
		t.Fatal(err)
	}
	single, err := oasis.NewMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := oasis.NewShardedIndex(db, oasis.ShardOptions{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.NumShards() != 4 {
		t.Fatalf("got %d shards, want 4", sharded.NumShards())
	}

	for _, q := range queries {
		opts, err := oasis.NewSearchOptions(scheme, db, q.Residues, oasis.WithEValue(20000))
		if err != nil {
			t.Fatal(err)
		}
		want, err := oasis.SearchAll(single, q.Residues, opts)
		if err != nil {
			t.Fatal(err)
		}
		var st oasis.SearchStats
		opts.Stats = &st
		got, err := sharded.SearchAll(q.Residues, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %s: sharded reported %d hits, single %d", q.ID, len(got), len(want))
		}
		seen := map[int]int{}
		for _, h := range want {
			seen[h.SeqIndex] = h.Score
		}
		for i, h := range got {
			if s, ok := seen[h.SeqIndex]; !ok || s != h.Score {
				t.Fatalf("query %s: hit %d (%s score %d) not in single-index results", q.ID, i, h.SeqID, h.Score)
			}
			if h.Score != want[i].Score {
				t.Fatalf("query %s: score at position %d is %d, single-index has %d", q.ID, i, h.Score, want[i].Score)
			}
		}
		if len(got) > 0 && st.NodesExpanded == 0 {
			t.Fatalf("query %s: per-shard stats were not merged", q.ID)
		}
	}
}

// TestPrefixShardedIndexPublicAPI drives prefix-partitioned subtree sharding
// through the public facade: identical hit sets and scores as the
// single-index search, with total ColumnsExpanded matching the single-index
// count exactly (the shared frontier removes per-shard near-root work).
func TestPrefixShardedIndexPublicAPI(t *testing.T) {
	cfg := workload.DefaultProteinConfig(30_000)
	cfg.Seed = 78
	db, motifs, err := workload.ProteinDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := workload.MotifQueries(db, motifs, workload.DefaultQueryConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := oasis.NewScheme(oasis.MatrixByName("PAM30"), -10)
	if err != nil {
		t.Fatal(err)
	}
	single, err := oasis.NewMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := oasis.NewShardedIndex(db, oasis.ShardOptions{
		Shards: 4, Workers: 2, PartitionByPrefix: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.NumShards() != 4 {
		t.Fatalf("got %d shards, want 4", sharded.NumShards())
	}
	for _, q := range queries {
		opts, err := oasis.NewSearchOptions(scheme, db, q.Residues, oasis.WithEValue(20000))
		if err != nil {
			t.Fatal(err)
		}
		var base oasis.SearchStats
		baseOpts := opts
		baseOpts.Stats = &base
		want, err := oasis.SearchAll(single, q.Residues, baseOpts)
		if err != nil {
			t.Fatal(err)
		}
		var st oasis.SearchStats
		opts.Stats = &st
		got, err := sharded.SearchAll(q.Residues, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %s: prefix-sharded reported %d hits, single %d", q.ID, len(got), len(want))
		}
		seen := map[int]int{}
		for _, h := range want {
			seen[h.SeqIndex] = h.Score
		}
		for i, h := range got {
			if s, ok := seen[h.SeqIndex]; !ok || s != h.Score {
				t.Fatalf("query %s: hit %d (%s score %d) not in single-index results", q.ID, i, h.SeqID, h.Score)
			}
			if h.Score != want[i].Score {
				t.Fatalf("query %s: score at position %d is %d, single-index has %d", q.ID, i, h.Score, want[i].Score)
			}
		}
		if len(want) < db.NumSequences() && st.ColumnsExpanded != base.ColumnsExpanded {
			t.Fatalf("query %s: prefix-sharded expanded %d columns, single-index %d",
				q.ID, st.ColumnsExpanded, base.ColumnsExpanded)
		}
	}
}
