package oasis

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/engine"
	"repro/internal/shard"
)

// EngineOptions configures a warm batch query engine.
type EngineOptions struct {
	// IndexDir, when set, serves a prebuilt sharded disk index directory
	// (written by BuildShardedDiskIndex / oasis-build -shards) instead of
	// building in-memory indexes: each shard searches its own disk index
	// through its own buffer pool, so one warm engine serves databases
	// bigger than RAM.  Shard count and partition mode come from the
	// manifest (leave Shards and PartitionByPrefix zero/false) and
	// NewEngine must be called with a nil database.
	IndexDir string
	// PoolBytes is the per-shard buffer-pool capacity in bytes for IndexDir
	// engines (default 64 MB).
	PoolBytes int64
	// Shards is the number of work partitions (default 1; capped at the
	// number of sequences unless PartitionByPrefix is set).
	Shards int
	// PartitionByPrefix selects prefix-partitioned subtree sharding (one
	// shared suffix tree, disjoint subtrees per shard) instead of
	// partitioning the database by sequence; see ShardOptions.
	PartitionByPrefix bool
	// ShardWorkers bounds how many shard searches run concurrently within
	// one query (default: one per shard).
	ShardWorkers int
	// BatchWorkers bounds how many queries of one batch are in flight at a
	// time (default GOMAXPROCS).
	BatchWorkers int
	// ResultBuffer is the capacity of batch result channels (default 64).
	ResultBuffer int
	// CacheBytes bounds the cross-query result cache: with a positive
	// budget the engine stores every completed decreasing-score hit stream
	// and replays it without touching the index when an identical query
	// (same residues, scheme, MinScore, E-value statistics) arrives again;
	// concurrent identical queries run the DP sweep once (single-flight).
	// Indexes are immutable after construction, so entries never go stale;
	// a size-bounded LRU evicts by recency.  Zero disables the cache; see
	// Metrics().Cache for hit rates.
	CacheBytes int64
	// AllowDegraded admits an IndexDir whose shard file(s) fail to open
	// instead of refusing to start: the failed shards are quarantined and
	// every query reports Degraded with the per-shard errors
	// (sequence-partitioned directories only).
	AllowDegraded bool
	// WarmupPages controls open-time buffer-pool warm-up per disk shard
	// (0 = a small default working set of near-root pages; negative
	// disables warm-up).
	WarmupPages int
}

// Engine is a warm, long-running OASIS query engine: the sharded suffix-tree
// index is built once and every subsequent query reuses it together with
// pooled searcher scratch, amortising engine setup across the query stream.
// All methods are safe for concurrent use — many goroutines may submit
// queries and batches against one Engine.
//
// Per query, the paper's online property is preserved: hits stream out in
// decreasing score order, so clients can stop early (context cancellation or
// returning false from the report callback).
//
//	db, _ := oasis.LoadFASTA("swissprot.fasta", oasis.Protein)
//	eng, _ := oasis.NewEngine(db, oasis.EngineOptions{Shards: 8})
//	defer eng.Close()
//	for r := range eng.SubmitBatch(ctx, batch) {
//	    if !r.Done {
//	        fmt.Println(r.QueryID, r.Hit.SeqID, r.Hit.Score)
//	    }
//	}
//
// cmd/oasis-serve wraps an Engine in an HTTP front end; examples/server
// shows the full build-once-serve-many lifecycle.
type Engine struct {
	eng *engine.Engine
	db  *Database
}

// NewEngine builds the warm engine over db: the database is partitioned into
// opts.Shards shards, each indexed once.  With opts.IndexDir (and a nil db)
// it instead opens the directory's prebuilt per-shard disk indexes.
func NewEngine(db *Database, opts EngineOptions) (*Engine, error) {
	eng, err := engine.New(db, engine.Options{
		IndexDir:          opts.IndexDir,
		PoolBytes:         opts.PoolBytes,
		Shards:            opts.Shards,
		PartitionByPrefix: opts.PartitionByPrefix,
		ShardWorkers:      opts.ShardWorkers,
		BatchWorkers:      opts.BatchWorkers,
		ResultBuffer:      opts.ResultBuffer,
		CacheBytes:        opts.CacheBytes,
		AllowDegraded:     opts.AllowDegraded,
		WarmupPages:       opts.WarmupPages,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng, db: db}, nil
}

// OpenEngine opens a warm engine over the prebuilt sharded disk index in
// dir; shorthand for NewEngine(nil, EngineOptions{IndexDir: dir, ...}).
func OpenEngine(dir string, opts EngineOptions) (*Engine, error) {
	opts.IndexDir = dir
	return NewEngine(nil, opts)
}

// DB returns the database the engine serves, or nil for disk-backed engines
// (use Catalog, Alphabet, NumSequences and TotalResidues in both modes).
func (e *Engine) DB() *Database { return e.db }

// Catalog returns the global sequence catalog the engine serves.
func (e *Engine) Catalog() Catalog { return e.eng.Catalog() }

// Alphabet returns the residue alphabet of the served database.
func (e *Engine) Alphabet() *Alphabet { return e.eng.Alphabet() }

// NumSequences returns the number of sequences the engine serves.
func (e *Engine) NumSequences() int { return e.eng.NumSequences() }

// TotalResidues returns the total residue count the engine serves.
func (e *Engine) TotalResidues() int64 { return e.eng.TotalResidues() }

// NumShards returns the number of partitions actually built.
func (e *Engine) NumShards() int { return e.eng.NumShards() }

// Partition returns the engine's work-partitioning mode as the manifest
// spells it: "sequence" (independent per-shard indexes) or "prefix" (one
// shared index, disjoint subtrees per shard).
func (e *Engine) Partition() string {
	if e.eng.Partition() == shard.PartitionByPrefix {
		return diskst.PartitionPrefix
	}
	return diskst.PartitionSequence
}

// BatchWorkers returns the batch concurrency bound.
func (e *Engine) BatchWorkers() int { return e.eng.BatchWorkers() }

// Close marks the engine closed and waits for in-flight queries to drain.
func (e *Engine) Close() error { return e.eng.Close() }

// EngineStats is a snapshot of an engine's lifetime counters.
type EngineStats struct {
	// Search is the merged work counters across every query served.
	Search SearchStats
	// QueriesServed and HitsReported count the engine's lifetime traffic.
	QueriesServed int64
	HitsReported  int64
}

// Stats returns the engine's lifetime counters.
func (e *Engine) Stats() EngineStats {
	st, queries, hits := e.eng.Stats()
	return EngineStats{Search: st, QueriesServed: queries, HitsReported: hits}
}

// EngineMetrics is a point-in-time snapshot of an engine's resource usage:
// pooled-scratch reuse (FreeListStats), per-shard worker-pool queue depths,
// per-shard buffer-pool hit rates (disk-backed engines) and the cross-query
// result-cache counters (engines built with CacheBytes).  Unlike EngineStats
// (lifetime totals), metrics describe the current load and are meant for
// capacity planning (cmd/oasis-serve exposes them at /metrics).
type EngineMetrics = engine.Metrics

// Metrics returns the engine's current resource-usage snapshot.
func (e *Engine) Metrics() EngineMetrics { return e.eng.Metrics() }

// Standing returns the shards quarantined when the engine opened (nil for a
// healthy engine).  Every query over an engine with standing quarantines
// reports Degraded with these errors.
func (e *Engine) Standing() []ShardError { return e.eng.Standing() }

// MutableStats snapshots the engine's incremental-indexing state: current
// generation, memtable occupancy, delta layers, tombstones and live totals
// (see EngineMetrics.Mutable).
type MutableStats = engine.MutableStats

// Generation returns the engine's current index generation: every successful
// Insert, Delete and state-changing Compact bumps it.  Result-cache entries
// are keyed by generation, so a bump atomically retargets the cache — streams
// computed against older index states simply stop being reachable and age out
// of the LRU, with no global flush.
func (e *Engine) Generation() uint64 { return e.eng.Generation() }

// Insert adds one sequence to the served corpus; it is searchable before
// Insert returns.  The sequence lands in an in-memory delta index (online
// suffix-tree construction) that searches merge with the base shards in the
// same decreasing-score stream.  IDs must be unique among live sequences; the
// residues are copied.  Disk-backed engines hold inserts in memory until
// Compact persists them (LSM without a WAL: a crash before Compact loses
// uncompacted writes, never the on-disk index).  Returns the new generation.
func (e *Engine) Insert(id string, residues []byte) (uint64, error) {
	return e.eng.Insert(id, residues)
}

// Delete removes the live sequence with the given ID from search results by
// writing a tombstone; the sequence stays physically present (and addressable
// through Catalog) until a compaction folds it away.  Returns the new
// generation.
func (e *Engine) Delete(id string) (uint64, error) { return e.eng.Delete(id) }

// Compact folds the mutable state down a level: disk-backed engines write the
// frozen in-memory delta as an ordinary single-file delta index next to the
// base shards and atomically swap in a manifest with a bumped generation
// (crash-safe: the old manifest and every file it references stay intact
// until the rename lands); in-memory engines rebuild the base index over the
// live corpus.  Returns the resulting generation (unchanged when there was
// nothing to do).
func (e *Engine) Compact() (uint64, error) { return e.eng.Compact() }

// BatchQuery is one query of a batch.
type BatchQuery struct {
	// ID identifies the query in the multiplexed result stream.
	ID string
	// Residues is the encoded query (use Alphabet.Encode / MustEncode).
	Residues []byte
	// Options configures the search (build with NewSearchOptions).
	Options SearchOptions
}

// BatchResult is one event of a batch result stream: a hit for one query, or
// that query's final Done event.  Hits of one query arrive in decreasing
// score order; events of different queries interleave.  After cancellation,
// Done events are best-effort (the channel still closes).
type BatchResult struct {
	// QueryID and Index identify the query (Index is its position in the
	// submitted batch).
	QueryID string
	Index   int
	// Hit is valid when Done is false.
	Hit Hit
	// Done marks the query's last event; Stats then holds its work
	// counters, Elapsed its wall-clock duration, and Err its terminal error
	// (nil on normal completion).
	Done    bool
	Stats   SearchStats
	Elapsed time.Duration
	Err     error
}

// SubmitBatch runs every query over the warm index, at most BatchWorkers
// concurrently, multiplexing the hit streams onto the returned channel.  The
// channel closes when every query has produced its Done event.  Cancelling
// ctx stops all in-flight searches; consumers should drain the channel.
func (e *Engine) SubmitBatch(ctx context.Context, queries []BatchQuery) <-chan BatchResult {
	if ctx == nil {
		ctx = context.Background() //oasis:allow-ctx nil-ctx tolerance for public API callers; any non-nil ctx is threaded through unchanged
	}
	in := make([]engine.Query, len(queries))
	for i, q := range queries {
		in[i] = engine.Query{ID: q.ID, Residues: q.Residues, Options: coreOptions(q.Options)}
	}
	out := make(chan BatchResult, e.eng.ResultBuffer())
	go func() {
		defer close(out)
		for r := range e.eng.SubmitBatch(ctx, in) {
			br := BatchResult{
				QueryID: r.QueryID,
				Index:   r.Index,
				Hit:     r.Hit,
				Done:    r.Done,
				Stats:   r.Stats,
				Elapsed: r.Elapsed,
				Err:     r.Err,
			}
			select {
			case out <- br:
			case <-ctx.Done():
				// The consumer may have stopped draining; forward
				// best-effort and keep draining the engine stream so this
				// goroutine cannot leak.
				select {
				case out <- br:
				default:
				}
			}
		}
	}()
	return out
}

// Search runs one query on the warm engine, streaming hits to report in
// decreasing score order; return false from report (or cancel ctx) to stop
// early.
func (e *Engine) Search(ctx context.Context, query []byte, opts SearchOptions, report func(Hit) bool) error {
	_, err := e.eng.Search(ctx, engine.Query{Residues: query, Options: coreOptions(opts)}, report)
	return err
}

// SearchAll runs Search and collects every hit.
func (e *Engine) SearchAll(ctx context.Context, query []byte, opts SearchOptions) ([]Hit, error) {
	var hits []Hit
	err := e.Search(ctx, query, opts, func(h Hit) bool {
		hits = append(hits, h)
		return true
	})
	return hits, err
}

// RecoverAlignment reconstructs the full alignment for a hit reported by
// this engine (disk-backed engines read the residues back through the owning
// shard's buffer pool).
func (e *Engine) RecoverAlignment(query []byte, scheme Scheme, h Hit) (Alignment, error) {
	return recoverAlignmentCatalog(e.eng.Catalog(), query, scheme, h)
}

// coreOptions translates the public search options into internal ones.
func coreOptions(opts SearchOptions) core.Options {
	return core.Options{
		Scheme:          opts.Scheme,
		MinScore:        opts.MinScore,
		MaxResults:      opts.MaxResults,
		KA:              opts.KA,
		Stats:           opts.Stats,
		DisableLiveBand: opts.DisableLiveBand,
		StrictShards:    opts.StrictShards,
	}
}
