package oasis

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/remote"
	"repro/internal/seq"
	"repro/internal/shard"
)

// TestOpenCoordinator: the public coordinator engine over two in-process
// slice servers must reproduce a local engine's stream over the concatenated
// corpus — same sequences, scores, ranks and E-values — and must refuse
// writes.  Alignment endpoints are excluded: they are a property of the
// internal index layout among co-optimal alignments, and the slices' layouts
// differ from the baseline's.
func TestOpenCoordinator(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := Protein
	letters := a.Letters()
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	strs := make([]string, 24)
	for i := range strs {
		s := randStr(20 + rng.Intn(50))
		if i%2 == 0 {
			s += "DKDGDGCITTKEL"
		}
		strs[i] = s
	}
	db, err := seq.DatabaseFromStrings(a, strs...)
	if err != nil {
		t.Fatal(err)
	}

	// Two sequence-disjoint slices, each its own shard engine behind the wire
	// protocol.
	var slices [][]string
	var servers []*httptest.Server
	cut := len(strs) / 2
	for _, span := range [][2]int{{0, cut}, {cut, len(strs)}} {
		seqs := make([]seq.Sequence, 0, span[1]-span[0])
		for i := span[0]; i < span[1]; i++ {
			seqs = append(seqs, db.Sequence(i))
		}
		sliceDB, err := seq.NewDatabase(a, seqs)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := shard.NewEngine(sliceDB, shard.Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		srv := httptest.NewServer(remote.NewServer(eng))
		defer srv.Close()
		servers = append(servers, srv)
		slices = append(slices, []string{srv.URL})
	}

	co, err := OpenCoordinator(context.Background(), slices, CoordinatorOptions{
		CacheBytes:   1 << 20,
		DisableHedge: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	local, err := NewEngine(db, EngineOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	if got, want := co.Engine().NumSequences(), db.NumSequences(); got != want {
		t.Fatalf("coordinator serves %d sequences, corpus has %d", got, want)
	}
	if got, want := co.Engine().TotalResidues(), db.TotalResidues(); got != want {
		t.Fatalf("coordinator serves %d residues, corpus has %d", got, want)
	}
	if infos := co.Infos(); len(infos) != 2 || infos[0].Sequences != cut {
		t.Fatalf("unexpected slice infos: %+v", infos)
	}

	query := a.MustEncode("DKDGDGCITTKEL")
	opts, err := NewSearchOptionsSized(MustScheme(t), db.TotalResidues(), query, WithEValue(20000))
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.SearchAll(context.Background(), query, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.Engine().SearchAll(context.Background(), query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("coordinator reported %d hits, local engine %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.SeqIndex != w.SeqIndex || g.SeqID != w.SeqID || g.Score != w.Score ||
			g.Rank != w.Rank || g.EValue != w.EValue {
			t.Fatalf("hit %d: got %+v, want %+v", i, g, w)
		}
	}

	// Health covers both slices, all replicas up after a served query.
	health := co.Health()
	if len(health) != 2 {
		t.Fatalf("expected 2 slice health entries, got %d", len(health))
	}
	for _, sh := range health {
		for _, r := range sh.Replicas {
			if r.State != "up" {
				t.Fatalf("replica %s is %q after a clean query", r.Addr, r.State)
			}
		}
	}
	if m := co.RemoteMetrics(); m.Streams == 0 || m.Attempts == 0 {
		t.Fatalf("fan-out metrics not counted: %+v", m)
	}

	// The coordinator cannot mutate a corpus owned by the slice servers.
	if _, err := co.Engine().Insert("NEW", query); err == nil || !strings.Contains(err.Error(), "immutable") {
		t.Fatalf("Insert on a coordinator engine returned %v", err)
	}
}

// MustScheme builds the PAM30/-10 scheme used across the public tests.
func MustScheme(t *testing.T) Scheme {
	t.Helper()
	s, err := NewScheme(MatrixByName("PAM30"), -10)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
