package oasis_test

import (
	"context"
	"testing"

	"repro/oasis"
)

func engineTestDB(t *testing.T) *oasis.Database {
	t.Helper()
	raw := map[string]string{
		"CALM_HUMAN":  "ADQLTEEQIAEFKEAFSLFDKDGDGTITTKELGTVMRSLGQNPTEAELQDMINEVDADGNGTIDFPEFLTMMARKM",
		"TNNC1_HUMAN": "MDDIYKAAVEQLTEEQKNEFKAAFDIFVLGAEDGCISTKELGKVMRMLGQNPTPEELQEMIDEVDEDGSGTVDFDEFLVMMVRCM",
		"MYG_HUMAN":   "GLSDGEWQLVLNVWGKVEADIPGHGQEVLIRLFKGHPETLEKFDKFKHLKSEDEMKASEDLKKHGATVLTALGGILKKKGHHEAEI",
		"PARV_HUMAN":  "SMTDLLNAEDIKKAVGAFSATDSFDHKKFFQMVGLKKKSADDVKKVFHMLDKDKSGFIEEDELGFILKGFSPDARDLSAKETKMLM",
		"UNRELATED":   "PPPPGGGGSSSSPPPPGGGGSSSSPPPPGGGGSSSS",
	}
	var seqs []oasis.Sequence
	for id, residues := range raw {
		seqs = append(seqs, oasis.Sequence{ID: id, Residues: oasis.Protein.MustEncode(residues)})
	}
	db, err := oasis.NewDatabase(oasis.Protein, seqs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestEngineMatchesSingleIndex pins the warm engine to the one-shot Search
// API: same hits, same order, across repeated submissions (scratch reuse must
// not leak state between queries).
func TestEngineMatchesSingleIndex(t *testing.T) {
	db := engineTestDB(t)
	idx, err := oasis.NewMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := oasis.NewEngine(db, oasis.EngineOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]byte{
		oasis.Protein.MustEncode("DKDGDGTITTKE"),
		oasis.Protein.MustEncode("KETKMLM"),
		oasis.Protein.MustEncode("GQNPT"),
	}
	for round := 0; round < 3; round++ { // repeat: warm paths must stay correct
		for _, q := range queries {
			opts, err := oasis.NewSearchOptions(scheme, db, q, oasis.WithEValue(20000))
			if err != nil {
				t.Fatal(err)
			}
			want, err := oasis.SearchAll(idx, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.SearchAll(context.Background(), q, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("round %d: engine returned %d hits, single index %d", round, len(got), len(want))
			}
			// Equal-score hits may interleave differently across shards; the
			// score sequence and the hit set must match exactly.
			wantSet := map[int]int{}
			for i := range got {
				if got[i].Score != want[i].Score {
					t.Fatalf("round %d hit %d: score %d, want %d", round, i, got[i].Score, want[i].Score)
				}
				wantSet[want[i].SeqIndex] = want[i].Score
			}
			for _, h := range got {
				if wantSet[h.SeqIndex] != h.Score {
					t.Fatalf("round %d: unexpected hit %+v", round, h)
				}
			}
		}
	}
	st := eng.Stats()
	if st.QueriesServed != int64(3*len(queries)) {
		t.Fatalf("engine served %d queries, want %d", st.QueriesServed, 3*len(queries))
	}
}

// TestEngineSubmitBatch exercises the public batch API end to end, including
// per-query decreasing-score order and Done bookkeeping.
func TestEngineSubmitBatch(t *testing.T) {
	db := engineTestDB(t)
	eng, err := oasis.NewEngine(db, oasis.EngineOptions{Shards: 2, BatchWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		t.Fatal(err)
	}
	var batch []oasis.BatchQuery
	for _, s := range []string{"DKDGDGTITTKE", "KETKMLM", "GQNPT", "FDKFKHLK"} {
		q := oasis.Protein.MustEncode(s)
		opts, err := oasis.NewSearchOptions(scheme, db, q, oasis.WithEValue(20000))
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, oasis.BatchQuery{ID: s, Residues: q, Options: opts})
	}
	last := map[int]int{}
	done := map[int]bool{}
	for r := range eng.SubmitBatch(context.Background(), batch) {
		if r.Done {
			if r.Err != nil {
				t.Fatalf("query %q failed: %v", r.QueryID, r.Err)
			}
			done[r.Index] = true
			continue
		}
		if prev, ok := last[r.Index]; ok && r.Hit.Score > prev {
			t.Fatalf("query %q: score order violated (%d after %d)", r.QueryID, r.Hit.Score, prev)
		}
		last[r.Index] = r.Hit.Score
		if batch[r.Index].ID != r.QueryID {
			t.Fatalf("result carries ID %q for index %d, want %q", r.QueryID, r.Index, batch[r.Index].ID)
		}
	}
	if len(done) != len(batch) {
		t.Fatalf("%d Done events, want %d", len(done), len(batch))
	}
	// Mid-stream cancellation: the channel must close promptly.
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	for range eng.SubmitBatch(ctx, batch) {
		n++
		if n == 2 {
			cancel()
		}
	}
	cancel()
}

// TestEngineCacheBytes exercises the public cache plumbing: an engine built
// with CacheBytes must replay identical queries byte-identically without
// touching the index and expose the hit counters through Metrics.
func TestEngineCacheBytes(t *testing.T) {
	db := engineTestDB(t)
	eng, err := oasis.NewEngine(db, oasis.EngineOptions{Shards: 2, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	scheme, err := oasis.NewScheme(oasis.MatrixByName("BLOSUM62"), -8)
	if err != nil {
		t.Fatal(err)
	}
	q := oasis.Protein.MustEncode("DKDGDGTITTKE")
	opts, err := oasis.NewSearchOptions(scheme, db, q, oasis.WithEValue(20000))
	if err != nil {
		t.Fatal(err)
	}
	var streams [2][]oasis.Hit
	for i := range streams {
		streams[i], err = eng.SearchAll(context.Background(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(streams[0]) == 0 {
		t.Fatal("query reported no hits")
	}
	if len(streams[0]) != len(streams[1]) {
		t.Fatalf("replay changed the hit count: %d vs %d", len(streams[0]), len(streams[1]))
	}
	for i := range streams[0] {
		if streams[0][i] != streams[1][i] {
			t.Fatalf("hit %d differs between live run and replay:\n%+v\n%+v", i, streams[0][i], streams[1][i])
		}
	}
	m := eng.Metrics()
	if m.Cache == nil {
		t.Fatal("CacheBytes engine exposes no cache metrics")
	}
	if m.Cache.Hits == 0 || m.Cache.Insertions == 0 || m.Cache.HitRate <= 0 {
		t.Fatalf("cache metrics after a replayed query: %+v", *m.Cache)
	}
	// Replays do no index work: the engine-wide counters must not grow.
	st1 := eng.Stats()
	if _, err := eng.SearchAll(context.Background(), q, opts); err != nil {
		t.Fatal(err)
	}
	st2 := eng.Stats()
	if st2.Search.CellsComputed != st1.Search.CellsComputed {
		t.Fatalf("replay touched the index: %d cells before, %d after",
			st1.Search.CellsComputed, st2.Search.CellsComputed)
	}
	if st2.QueriesServed != st1.QueriesServed+1 {
		t.Fatalf("replay not counted as a served query: %d -> %d", st1.QueriesServed, st2.QueriesServed)
	}
}
