package oasis

import (
	"path/filepath"
	"testing"

	"repro/internal/align"
	"repro/internal/workload"
)

// testWorkload builds a small planted-motif protein database plus queries.
func testWorkload(t *testing.T, residues int64, nQueries int) (*Database, []workload.Query) {
	t.Helper()
	cfg := workload.DefaultProteinConfig(residues)
	db, motifs, err := workload.ProteinDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := workload.MotifQueries(db, motifs, workload.DefaultQueryConfig(nQueries))
	if err != nil {
		t.Fatal(err)
	}
	return db, queries
}

func TestEndToEndMemoryIndexMatchesSW(t *testing.T) {
	db, queries := testWorkload(t, 20_000, 12)
	idx, err := NewMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := NewScheme(MatrixByName("PAM30"), -10)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		opts, err := NewSearchOptions(scheme, db, q.Residues, WithEValue(20000))
		if err != nil {
			t.Fatal(err)
		}
		hits, err := SearchAll(idx, q.Residues, opts)
		if err != nil {
			t.Fatalf("query %s: %v", q.ID, err)
		}
		swHits, err := SmithWaterman(db, q.Residues, scheme, opts.MinScore)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != len(swHits) {
			t.Fatalf("query %s: OASIS %d hits, S-W %d hits (minScore %d)", q.ID, len(hits), len(swHits), opts.MinScore)
		}
		want := map[int]int{}
		for _, h := range swHits {
			want[h.SeqIndex] = h.Score
		}
		for _, h := range hits {
			if want[h.SeqIndex] != h.Score {
				t.Fatalf("query %s sequence %d: OASIS %d, S-W %d", q.ID, h.SeqIndex, h.Score, want[h.SeqIndex])
			}
		}
	}
}

func TestEndToEndDiskIndexMatchesSW(t *testing.T) {
	db, queries := testWorkload(t, 15_000, 6)
	dir := t.TempDir()
	path := filepath.Join(dir, "proteins.oasis")
	st, err := BuildDiskIndex(path, db, IndexBuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesPerSymbol <= 0 {
		t.Fatalf("bad build stats: %+v", st)
	}
	idx, err := OpenDiskIndex(path, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	scheme, err := NewScheme(MatrixByName("BLOSUM62"), -8)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		opts, err := NewSearchOptions(scheme, db, q.Residues, WithEValue(1000))
		if err != nil {
			t.Fatal(err)
		}
		hits, err := SearchAll(idx, q.Residues, opts)
		if err != nil {
			t.Fatalf("query %s: %v", q.ID, err)
		}
		swHits, err := SmithWaterman(db, q.Residues, scheme, opts.MinScore)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != len(swHits) {
			t.Fatalf("query %s: disk OASIS %d hits, S-W %d hits", q.ID, len(hits), len(swHits))
		}
		want := map[int]int{}
		for _, h := range swHits {
			want[h.SeqIndex] = h.Score
		}
		for _, h := range hits {
			if want[h.SeqIndex] != h.Score {
				t.Fatalf("query %s sequence %d: disk OASIS %d, S-W %d", q.ID, h.SeqIndex, h.Score, want[h.SeqIndex])
			}
		}
	}
}

func TestDiskAndMemoryIndexesAgree(t *testing.T) {
	db, queries := testWorkload(t, 10_000, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.oasis")
	if _, err := BuildDiskIndex(path, db, IndexBuildOptions{Partitioned: true, PrefixLen: 1}); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDiskIndex(path, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	mem, err := NewMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	scheme, _ := NewScheme(MatrixByName("PAM30"), -12)
	for _, q := range queries {
		opts, _ := NewSearchOptions(scheme, db, q.Residues, WithMinScore(30))
		a, err := SearchAll(mem, q.Residues, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SearchAll(disk, q.Residues, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %s: memory %d hits, disk %d hits", q.ID, len(a), len(b))
		}
		for i := range a {
			if a[i].SeqIndex != b[i].SeqIndex || a[i].Score != b[i].Score {
				t.Fatalf("query %s hit %d differs: %+v vs %+v", q.ID, i, a[i], b[i])
			}
		}
	}
}

func TestOnlineTopKStopsEarly(t *testing.T) {
	db, queries := testWorkload(t, 20_000, 3)
	idx, err := NewMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	scheme, _ := NewScheme(MatrixByName("BLOSUM62"), -8)
	q := queries[0].Residues
	var full SearchStats
	optsFull, _ := NewSearchOptions(scheme, db, q, WithMinScore(20), WithStats(&full))
	all, err := SearchAll(idx, q, optsFull)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Skip("workload produced too few hits for a top-k comparison")
	}
	var topk SearchStats
	optsTop, _ := NewSearchOptions(scheme, db, q, WithMinScore(20), WithMaxResults(2), WithStats(&topk))
	top, err := SearchAll(idx, q, optsTop)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("top-k returned %d hits", len(top))
	}
	for i := range top {
		if top[i].SeqIndex != all[i].SeqIndex || top[i].Score != all[i].Score {
			t.Fatalf("top-k hit %d differs from full search", i)
		}
	}
	if topk.ColumnsExpanded > full.ColumnsExpanded {
		t.Fatalf("top-k expanded more columns (%d) than the full search (%d)", topk.ColumnsExpanded, full.ColumnsExpanded)
	}
}

func TestBLASTBaselineSubsetOfOASIS(t *testing.T) {
	db, queries := testWorkload(t, 20_000, 8)
	idx, err := NewMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	scheme, _ := NewScheme(MatrixByName("BLOSUM62"), -8)
	bl, err := NewBLAST(db, scheme, BLASTOptions{TwoHit: true, EValue: 20000})
	if err != nil {
		t.Fatal(err)
	}
	totalOASIS, totalBLAST := 0, 0
	for _, q := range queries {
		if len(q.Residues) < 5 {
			continue
		}
		opts, err := NewSearchOptions(scheme, db, q.Residues, WithEValue(20000))
		if err != nil {
			t.Fatal(err)
		}
		oasisHits, err := SearchAll(idx, q.Residues, opts)
		if err != nil {
			t.Fatal(err)
		}
		blastHits, err := bl.Search(q.Residues, nil)
		if err != nil {
			t.Fatal(err)
		}
		totalOASIS += len(oasisHits)
		totalBLAST += len(blastHits)
		// Every sequence the heuristic reports must also be found by the
		// accurate search, and never with a lower score.
		oasisScore := map[int]int{}
		for _, h := range oasisHits {
			oasisScore[h.SeqIndex] = h.Score
		}
		for _, h := range blastHits {
			s, ok := oasisScore[h.SeqIndex]
			if ok && h.Score > s {
				t.Fatalf("query %s: BLAST score %d exceeds OASIS optimal %d", q.ID, h.Score, s)
			}
		}
	}
	if totalOASIS < totalBLAST {
		t.Fatalf("accurate search found fewer total hits (%d) than the heuristic (%d)", totalOASIS, totalBLAST)
	}
}

func TestRecoverAlignmentPublicAPI(t *testing.T) {
	db, queries := testWorkload(t, 10_000, 4)
	idx, err := NewMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	scheme, _ := NewScheme(MatrixByName("BLOSUM62"), -8)
	for _, q := range queries {
		opts, _ := NewSearchOptions(scheme, db, q.Residues, WithMinScore(25))
		hits, err := SearchAll(idx, q.Residues, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hits[:min(len(hits), 3)] {
			a, err := RecoverAlignment(idx, q.Residues, scheme, h)
			if err != nil {
				t.Fatal(err)
			}
			if a.Score != h.Score {
				t.Fatalf("recovered score %d != hit score %d", a.Score, h.Score)
			}
			if err := a.Validate(len(q.Residues), db.Sequence(h.SeqIndex).Len()); err != nil {
				t.Fatal(err)
			}
			if got := align.RescoreOps(a, q.Residues, db.Sequence(h.SeqIndex).Residues, scheme.Matrix, scheme.Gap); got != a.Score {
				t.Fatalf("ops rescore %d != %d", got, a.Score)
			}
		}
	}
}

func TestSearchOptionsValidationAndEValue(t *testing.T) {
	db, _ := testWorkload(t, 5_000, 1)
	scheme, _ := NewScheme(MatrixByName("PAM30"), -10)
	q := make([]byte, 16)
	opts, err := NewSearchOptions(scheme, db, q, WithEValue(20000))
	if err != nil {
		t.Fatal(err)
	}
	if opts.MinScore < 1 || opts.KA == nil {
		t.Fatalf("E-value conversion failed: %+v", opts)
	}
	strict, err := NewSearchOptions(scheme, db, q, WithEValue(1))
	if err != nil {
		t.Fatal(err)
	}
	if strict.MinScore <= opts.MinScore {
		t.Fatalf("E=1 should demand a higher score than E=20000 (%d vs %d)", strict.MinScore, opts.MinScore)
	}
	if _, err := NewSearchOptions(Scheme{}, db, q); err == nil {
		t.Fatal("invalid scheme should be rejected")
	}
	if _, err := MinScoreForEValue(MatrixByName("BLOSUM62"), 10, 0, 1000); err == nil {
		t.Fatal("zero query length should be rejected")
	}
	ms, err := MinScoreForEValue(MatrixByName("BLOSUM62"), 10, 20, 1_000_000)
	if err != nil || ms < 1 {
		t.Fatalf("MinScoreForEValue = %d, %v", ms, err)
	}
	if MatrixByName("nosuch") != nil {
		t.Fatal("unknown matrix must return nil")
	}
	if _, err := EValueStatistics(MatrixByName("PAM30")); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
