// Package oasis is the public API of the OASIS reproduction: an online and
// accurate local-alignment search over biological sequence databases, driven
// by a (disk-resident or in-memory) generalized suffix tree, as described in
// Meek, Patel & Kasetty, "OASIS: An Online and Accurate Technique for
// Local-alignment Searches on Biological Sequences", VLDB 2003.
//
// Typical use:
//
//	db, _ := oasis.LoadFASTA("swissprot.fasta", oasis.Protein)
//	idx, _ := oasis.NewMemoryIndex(db)                 // or BuildDiskIndex/OpenDiskIndex
//	scheme := oasis.Scheme{Matrix: oasis.MatrixByName("PAM30"), Gap: -10}
//	opts, _ := oasis.NewSearchOptions(scheme, db, query, oasis.WithEValue(20000))
//	err := oasis.Search(idx, query, opts, func(h oasis.Hit) bool {
//	    fmt.Println(h.SeqID, h.Score)  // hits arrive in decreasing score order
//	    return true                    // return false to stop early (online top-k)
//	})
//
// For multi-core scale-out, NewShardedIndex partitions the database into
// independently indexed shards searched in parallel, with per-shard hit
// streams merged online so the decreasing-score property (and therefore
// early termination and top-k) is preserved:
//
//	sharded, _ := oasis.NewShardedIndex(db, oasis.ShardOptions{Shards: 8, Workers: 4})
//	hits, _ := sharded.SearchAll(query, opts) // same hits, same order guarantee
//
// For long-running servers, NewEngine wraps the sharded index in a warm
// batch engine (build once, serve many; see Engine.SubmitBatch), and for
// databases bigger than RAM the whole stack runs disk-backed:
// BuildShardedDiskIndex writes one index file per shard plus a manifest,
// and OpenEngine / ShardOptions.IndexDir serve that directory with one
// buffer pool per shard, so shard parallelism also parallelises page I/O
// and hit streams are identical to the in-memory engines:
//
//	oasis.BuildShardedDiskIndex("swissprot.idx", db, oasis.ShardedIndexBuildOptions{Shards: 8})
//	eng, _ := oasis.OpenEngine("swissprot.idx", oasis.EngineOptions{PoolBytes: 64 << 20})
//	defer eng.Close()
//
// See the Example functions for runnable versions of each flow.
//
// The package also exposes the two baselines of the paper's evaluation —
// exact Smith-Waterman search and a BLAST-style heuristic search — so that
// results and costs can be compared on the same data.
package oasis

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/blast"
	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/score"
	"repro/internal/seq"
)

// Re-exported sequence types.
type (
	// Alphabet maps residue characters to compact symbol codes.
	Alphabet = seq.Alphabet
	// Sequence is an identified, encoded biological sequence.
	Sequence = seq.Sequence
	// Database is an immutable collection of sequences over one alphabet.
	Database = seq.Database
)

// Built-in alphabets.
var (
	// Protein is the amino-acid alphabet.
	Protein = seq.Protein
	// DNA is the nucleotide alphabet.
	DNA = seq.DNA
)

// Re-exported scoring types.
type (
	// Matrix is a substitution matrix.
	Matrix = score.Matrix
	// Scheme bundles a matrix with a linear gap penalty.
	Scheme = score.Scheme
	// KarlinAltschul holds E-value statistics (paper Equations 2-3).
	KarlinAltschul = score.KarlinAltschul
)

// Re-exported search types.
type (
	// Hit is one reported database sequence with its optimal score.
	Hit = core.Hit
	// SearchStats counts the work done by an OASIS search.  Degraded and
	// ShardErrors record partial-failure completion: the query finished from
	// surviving shards after one or more shards were quarantined.
	SearchStats = core.Stats
	// ShardError describes one quarantined shard of a degraded search.
	ShardError = core.ShardError
	// Index is the suffix-tree view OASIS searches over.
	Index = core.Index
	// Catalog is the sequence-metadata view of an index or engine
	// (identifiers, lengths, residues for alignment recovery).
	Catalog = core.Catalog
	// MemoryIndex is the in-memory index implementation.
	MemoryIndex = core.MemoryIndex
	// Alignment is a full traceback of one local alignment.
	Alignment = align.Alignment
)

// MatrixByName returns a built-in substitution matrix ("BLOSUM62", "PAM30",
// "PAM70", "PAM250", "UNIT", "BLASTN"), or nil for unknown names.
func MatrixByName(name string) *Matrix { return score.ByName(name) }

// NewScheme validates and returns a scoring scheme (gap must be negative).
func NewScheme(m *Matrix, gap int) (Scheme, error) { return score.NewScheme(m, gap) }

// LoadFASTA reads a FASTA file into a database using the given alphabet.
func LoadFASTA(path string, a *Alphabet) (*Database, error) { return seq.ReadFASTAFile(path, a) }

// NewDatabase builds a database from already-encoded sequences.
func NewDatabase(a *Alphabet, seqs []Sequence) (*Database, error) { return seq.NewDatabase(a, seqs) }

// NewMemoryIndex builds an in-memory suffix-tree index (Ukkonen
// construction) over the database.
func NewMemoryIndex(db *Database) (*MemoryIndex, error) { return core.BuildMemoryIndex(db) }

// IndexBuildOptions configures disk-index construction.
type IndexBuildOptions struct {
	// BlockSize is the disk block size in bytes (default 2048, the paper's
	// value).
	BlockSize int
	// Partitioned selects the Hunt-style partitioned construction (one
	// pass per prefix partition) instead of in-memory Ukkonen.
	Partitioned bool
	// PrefixLen is the partition prefix length (1 or 2) when Partitioned.
	PrefixLen int
}

// IndexStats reports the size of a disk index (the paper's space-utilisation
// table).
type IndexStats = diskst.BuildStats

// BuildDiskIndex constructs the suffix tree for db and writes the paper's
// disk representation to path.
func BuildDiskIndex(path string, db *Database, opts IndexBuildOptions) (*IndexStats, error) {
	return diskst.Build(path, db, diskst.BuildOptions{
		WriteOptions: diskst.WriteOptions{BlockSize: opts.BlockSize},
		Partitioned:  opts.Partitioned,
		PrefixLen:    opts.PrefixLen,
	})
}

// ShardedIndexBuildOptions configures sharded disk-index construction.
type ShardedIndexBuildOptions struct {
	// BlockSize is the disk block size in bytes (default 2048).
	BlockSize int
	// Shards is the number of work partitions (>= 1).
	Shards int
	// PartitionByPrefix writes ONE shared index file plus a suffix-prefix ->
	// shard assignment (Hunt-style subtree partitions) instead of one
	// independently indexed file per disjoint sequence subset.
	PartitionByPrefix bool
}

// IndexManifest describes a sharded disk index directory: partition mode,
// shard count, file names and the per-shard assignment metadata.
type IndexManifest = diskst.Manifest

// BuildShardedDiskIndex partitions db and writes one index file per shard
// (prefix mode: one shared file) plus a manifest.json into dir, ready for
// EngineOptions.IndexDir / ShardOptions.IndexDir serving without rebuilding.
func BuildShardedDiskIndex(dir string, db *Database, opts ShardedIndexBuildOptions) (*IndexManifest, []IndexStats, error) {
	return diskst.BuildSharded(dir, db, diskst.ShardedBuildOptions{
		WriteOptions:      diskst.WriteOptions{BlockSize: opts.BlockSize},
		Shards:            opts.Shards,
		PartitionByPrefix: opts.PartitionByPrefix,
	})
}

// ReadIndexManifest reads and validates the manifest of a sharded disk index
// directory.
func ReadIndexManifest(dir string) (*IndexManifest, error) { return diskst.ReadManifest(dir) }

// VerifyReport summarises a deep scrub of an index file or directory: every
// checksummed block is re-read and compared against the stored CRC32C table,
// then the index is structurally opened.  Problems is empty when the scrub
// passed; ChecksumsUnavailable flags pre-checksum (format v1) files that
// could only be structurally checked.
type VerifyReport = diskst.VerifyReport

// VerifyDiskIndex deep-scrubs a single index file (oasis-build -verify).
func VerifyDiskIndex(path string) (*VerifyReport, error) { return diskst.VerifyIndex(path) }

// VerifyIndexDir deep-scrubs every shard file of a sharded index directory.
func VerifyIndexDir(dir string) (*VerifyReport, error) { return diskst.VerifyIndexDir(dir) }

// DiskIndex is a disk-resident index read through a buffer pool.
type DiskIndex struct {
	*diskst.Index
	pool *bufferpool.Pool
}

// OpenDiskIndex opens an index file with a buffer pool of the given capacity
// in bytes (the paper's default block size is used for the pool's pages).
func OpenDiskIndex(path string, bufferPoolBytes int64) (*DiskIndex, error) {
	if bufferPoolBytes <= 0 {
		bufferPoolBytes = 256 << 20 // the paper's default 256 MB pool
	}
	pool := bufferpool.New(bufferPoolBytes, 0)
	idx, err := diskst.Open(path, pool)
	if err != nil {
		return nil, err
	}
	return &DiskIndex{Index: idx, pool: pool}, nil
}

// OpenDiskIndexWithPool opens an index through an existing buffer pool
// (several indexes may share one pool).
func OpenDiskIndexWithPool(path string, pool *bufferpool.Pool) (*DiskIndex, error) {
	idx, err := diskst.Open(path, pool)
	if err != nil {
		return nil, err
	}
	return &DiskIndex{Index: idx, pool: pool}, nil
}

// BufferPool returns the pool the index reads through (for statistics).
func (d *DiskIndex) BufferPool() *bufferpool.Pool { return d.pool }

// SearchOptions configures an OASIS search.
type SearchOptions struct {
	// Scheme is the substitution matrix and gap penalty.
	Scheme Scheme
	// MinScore is the minimum alignment score to report (>= 1).
	MinScore int
	// MaxResults stops after this many sequences (0 = all); combined with
	// the online score ordering this yields exact top-k search.
	MaxResults int
	// KA attaches E-values to hits when non-nil.
	KA *KarlinAltschul
	// Stats accumulates work counters when non-nil.
	Stats *SearchStats
	// DisableLiveBand turns off the banded DP kernel and sweeps every
	// column cell (for measuring the band's CellsComputed reduction;
	// results are identical either way).
	DisableLiveBand bool
	// StrictShards fails a sharded search outright when any shard fails,
	// instead of quarantining the shard and completing a Degraded stream
	// from the survivors (the default).
	StrictShards bool
}

// SearchOption mutates SearchOptions in NewSearchOptions.
type SearchOption func(*SearchOptions, searchContext) error

type searchContext struct {
	dbLen    int64
	queryLen int
}

// WithMinScore sets an explicit score threshold.
func WithMinScore(minScore int) SearchOption {
	return func(o *SearchOptions, _ searchContext) error {
		o.MinScore = minScore
		return nil
	}
}

// WithEValue converts an E-value threshold into the equivalent MinScore
// using Karlin-Altschul statistics (paper Equation 3) and attaches E-values
// to reported hits.
func WithEValue(eValue float64) SearchOption {
	return func(o *SearchOptions, ctx searchContext) error {
		ka, err := score.Params(o.Scheme.Matrix, nil)
		if err != nil {
			return err
		}
		o.KA = &ka
		o.MinScore = ka.MinScore(eValue, ctx.queryLen, ctx.dbLen)
		return nil
	}
}

// WithMaxResults limits the number of reported sequences (top-k).
func WithMaxResults(k int) SearchOption {
	return func(o *SearchOptions, _ searchContext) error {
		o.MaxResults = k
		return nil
	}
}

// WithStats attaches a stats collector.
func WithStats(st *SearchStats) SearchOption {
	return func(o *SearchOptions, _ searchContext) error {
		o.Stats = st
		return nil
	}
}

// WithStrictShards makes a sharded search fail outright when any shard
// fails, instead of completing a Degraded stream from the survivors.
func WithStrictShards() SearchOption {
	return func(o *SearchOptions, _ searchContext) error {
		o.StrictShards = true
		return nil
	}
}

// NewSearchOptions assembles search options for a query against a database
// (the database size is needed to convert E-values into score thresholds).
func NewSearchOptions(scheme Scheme, db *Database, query []byte, opts ...SearchOption) (SearchOptions, error) {
	var dbLen int64
	if db != nil {
		dbLen = db.TotalResidues()
	}
	return NewSearchOptionsSized(scheme, dbLen, query, opts...)
}

// NewSearchOptionsSized is NewSearchOptions for callers that know the
// database's total residue count but do not hold a Database — disk-backed
// engines serve indexes whose sequences never enter memory (use
// Engine.TotalResidues or Catalog.TotalResidues for the size).
func NewSearchOptionsSized(scheme Scheme, dbResidues int64, query []byte, opts ...SearchOption) (SearchOptions, error) {
	if err := scheme.Validate(); err != nil {
		return SearchOptions{}, err
	}
	o := SearchOptions{Scheme: scheme, MinScore: 1}
	ctx := searchContext{queryLen: len(query), dbLen: dbResidues}
	for _, opt := range opts {
		if err := opt(&o, ctx); err != nil {
			return SearchOptions{}, err
		}
	}
	return o, nil
}

// Search runs the OASIS algorithm and streams hits to report in decreasing
// score order; return false from report to stop early.
func Search(idx Index, query []byte, opts SearchOptions, report func(Hit) bool) error {
	return core.Search(idx, query, coreOptions(opts), report)
}

// SearchAll runs Search and collects every hit.
func SearchAll(idx Index, query []byte, opts SearchOptions) ([]Hit, error) {
	var hits []Hit
	err := Search(idx, query, opts, func(h Hit) bool {
		hits = append(hits, h)
		return true
	})
	return hits, err
}

// RecoverAlignment reconstructs the full alignment (coordinates, operations,
// identity) for a hit reported by Search.
func RecoverAlignment(idx Index, query []byte, scheme Scheme, h Hit) (Alignment, error) {
	return core.RecoverAlignment(idx, query, scheme, h)
}

// recoverAlignmentCatalog is the catalog-based recovery shared by the
// sharded and batch engines (their hit sequence indexes are global).
func recoverAlignmentCatalog(cat Catalog, query []byte, scheme Scheme, h Hit) (Alignment, error) {
	return core.RecoverAlignmentCatalog(cat, query, scheme, h)
}

// SmithWaterman runs the exact quadratic-time baseline over every sequence
// of the database and returns the best hit per sequence with score at least
// minScore, in decreasing score order.
func SmithWaterman(db *Database, query []byte, scheme Scheme, minScore int) ([]align.Hit, error) {
	return align.SearchDatabase(db, query, scheme, align.Options{MinScore: minScore})
}

// BLASTOptions configures the heuristic baseline searcher.
type BLASTOptions = blast.Options

// BLASTHit is a hit reported by the heuristic baseline.
type BLASTHit = blast.Hit

// BLAST is the word-seeded heuristic searcher (baseline).
type BLAST = blast.Searcher

// NewBLAST builds the heuristic searcher's word index over the database.
func NewBLAST(db *Database, scheme Scheme, opts BLASTOptions) (*BLAST, error) {
	return blast.NewSearcher(db, scheme, opts)
}

// EValueStatistics computes Karlin-Altschul parameters for a matrix under
// the standard background frequencies.
func EValueStatistics(m *Matrix) (KarlinAltschul, error) { return score.Params(m, nil) }

// MinScoreForEValue converts an E-value threshold into the minimum raw
// alignment score for a query of length queryLen against a database of
// dbResidues total residues (paper Equation 3).
func MinScoreForEValue(m *Matrix, eValue float64, queryLen int, dbResidues int64) (int, error) {
	ka, err := score.Params(m, nil)
	if err != nil {
		return 0, err
	}
	if queryLen <= 0 || dbResidues <= 0 {
		return 0, fmt.Errorf("oasis: query length and database size must be positive")
	}
	return ka.MinScore(eValue, queryLen, dbResidues), nil
}
