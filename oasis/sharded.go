package oasis

import (
	"fmt"

	"repro/internal/shard"
)

// ShardOptions configures a sharded search engine.
type ShardOptions struct {
	// IndexDir, when set, opens a prebuilt sharded disk index directory
	// (written by BuildShardedDiskIndex / oasis-build -shards) instead of
	// building in-memory indexes: each shard searches its own disk index
	// through its own buffer pool.  The shard count and partition mode come
	// from the directory's manifest, so Shards and PartitionByPrefix must
	// be left zero/false, and NewShardedIndex must be called with a nil
	// database.  Call Close when done.
	IndexDir string
	// PoolBytes is the per-shard buffer-pool capacity in bytes for IndexDir
	// engines (default 64 MB).
	PoolBytes int64
	// Shards is the number of work partitions (default 1).  Without
	// PartitionByPrefix the database is split into this many independently
	// indexed shards balanced by residue count (capped at the number of
	// sequences).
	Shards int
	// Workers bounds how many shard searches run concurrently for one
	// query (default: one worker per shard).
	Workers int
	// PartitionByPrefix selects prefix-partitioned subtree sharding: ONE
	// shared suffix tree is built and shards search disjoint top-level
	// subtrees assigned by suffix prefix, so near-root DP columns are
	// computed once per query instead of once per shard and total work
	// stays flat as the shard count grows.  Hit sets and scores are
	// identical in both modes; alignment endpoints of equal-score ties may
	// differ.
	PartitionByPrefix bool
	// NoSteal disables work stealing between prefix shards.  Stealing keeps
	// the merged (sequence, score, rank) stream identical but lets the
	// surviving alignment endpoints of equal-score ties vary run to run;
	// disable it when byte-stable endpoint reproducibility matters more
	// than tail latency.  Ignored in sequence mode (which never steals).
	NoSteal bool
}

// ShardedIndex is a sharded parallel OASIS engine: one suffix-tree index
// and searcher per database partition, with per-shard hit streams merged
// online into a single globally decreasing-score stream.  It reports
// exactly the hits a single-index search reports; hits with equal scores
// may interleave differently between runs.
//
// Quickstart:
//
//	db, _ := oasis.LoadFASTA("swissprot.fasta", oasis.Protein)
//	idx, _ := oasis.NewShardedIndex(db, oasis.ShardOptions{Shards: 8})
//	opts, _ := oasis.NewSearchOptions(scheme, db, query, oasis.WithEValue(20000))
//	err := idx.Search(query, opts, func(h oasis.Hit) bool {
//	    fmt.Println(h.SeqID, h.Score) // still decreasing-score, still online
//	    return true
//	})
type ShardedIndex struct {
	engine *shard.Engine
	db     *Database // nil for disk-backed engines
}

// NewShardedIndex partitions the work for db into opts.Shards shards: one
// in-memory suffix-tree index per shard by default, or one shared index with
// per-shard subtree assignments when opts.PartitionByPrefix is set.  With
// opts.IndexDir (and a nil db) it instead opens the directory's prebuilt
// per-shard disk indexes, one buffer pool per shard, including any compacted
// delta layers and tombstones the manifest records — the index serves the
// same live corpus as the Engine that wrote it.
func NewShardedIndex(db *Database, opts ShardOptions) (*ShardedIndex, error) {
	if opts.IndexDir != "" {
		if db != nil {
			return nil, fmt.Errorf("oasis: IndexDir and a database are mutually exclusive")
		}
		if opts.Shards != 0 || opts.PartitionByPrefix {
			return nil, fmt.Errorf("oasis: Shards/PartitionByPrefix come from the IndexDir manifest; do not set them")
		}
		engine, err := shard.OpenDiskEngine(opts.IndexDir, shard.DiskOptions{
			Workers:           opts.Workers,
			PoolBytesPerShard: opts.PoolBytes,
			NoSteal:           opts.NoSteal,
		})
		if err != nil {
			return nil, err
		}
		return &ShardedIndex{engine: engine}, nil
	}
	mode := shard.PartitionBySequence
	if opts.PartitionByPrefix {
		mode = shard.PartitionByPrefix
	}
	engine, err := shard.NewEngine(db, shard.Options{
		Shards:    opts.Shards,
		Workers:   opts.Workers,
		Partition: mode,
		NoSteal:   opts.NoSteal,
	})
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{engine: engine, db: db}, nil
}

// NumShards returns the number of partitions actually built.
func (x *ShardedIndex) NumShards() int { return x.engine.NumShards() }

// Workers returns the per-query concurrency bound.
func (x *ShardedIndex) Workers() int { return x.engine.Workers() }

// Catalog returns the global sequence catalog the index serves (valid for
// both in-memory and disk-backed engines).
func (x *ShardedIndex) Catalog() Catalog { return x.engine.Catalog() }

// TotalResidues returns the total residue count the index serves (the
// database size NewSearchOptionsSized needs for E-value thresholds).
func (x *ShardedIndex) TotalResidues() int64 { return x.engine.Catalog().TotalResidues() }

// Close releases resources the engine owns (disk index files for IndexDir
// engines; a no-op for in-memory ones).
func (x *ShardedIndex) Close() error { return x.engine.Close() }

// Search runs the query on every shard and streams the merged hits to
// report in decreasing score order, exactly like the single-index Search.
// Per-shard work counters are merged into opts.Stats; return false from
// report to stop early.
func (x *ShardedIndex) Search(query []byte, opts SearchOptions, report func(Hit) bool) error {
	return x.engine.Search(query, coreOptions(opts), report)
}

// RecoverAlignment reconstructs the full alignment for a hit reported by
// this engine (hit sequence indexes are global, so recovery runs against
// the engine's global catalog — for disk-backed engines the residues are
// read back through the owning shard's buffer pool).
func (x *ShardedIndex) RecoverAlignment(query []byte, scheme Scheme, h Hit) (Alignment, error) {
	return recoverAlignmentCatalog(x.engine.Catalog(), query, scheme, h)
}

// SearchAll runs Search and collects every hit.
func (x *ShardedIndex) SearchAll(query []byte, opts SearchOptions) ([]Hit, error) {
	return x.engine.SearchAll(query, coreOptions(opts))
}
