package oasis

import (
	"repro/internal/core"
	"repro/internal/shard"
)

// ShardOptions configures a sharded in-memory search engine.
type ShardOptions struct {
	// Shards is the number of work partitions (default 1).  Without
	// PartitionByPrefix the database is split into this many independently
	// indexed shards balanced by residue count (capped at the number of
	// sequences).
	Shards int
	// Workers bounds how many shard searches run concurrently for one
	// query (default: one worker per shard).
	Workers int
	// PartitionByPrefix selects prefix-partitioned subtree sharding: ONE
	// shared suffix tree is built and shards search disjoint top-level
	// subtrees assigned by suffix prefix, so near-root DP columns are
	// computed once per query instead of once per shard and total work
	// stays flat as the shard count grows.  Hit sets and scores are
	// identical in both modes; alignment endpoints of equal-score ties may
	// differ.
	PartitionByPrefix bool
}

// ShardedIndex is a sharded parallel OASIS engine: one suffix-tree index
// and searcher per database partition, with per-shard hit streams merged
// online into a single globally decreasing-score stream.  It reports
// exactly the hits a single-index search reports; hits with equal scores
// may interleave differently between runs.
//
// Quickstart:
//
//	db, _ := oasis.LoadFASTA("swissprot.fasta", oasis.Protein)
//	idx, _ := oasis.NewShardedIndex(db, oasis.ShardOptions{Shards: 8})
//	opts, _ := oasis.NewSearchOptions(scheme, db, query, oasis.WithEValue(20000))
//	err := idx.Search(query, opts, func(h oasis.Hit) bool {
//	    fmt.Println(h.SeqID, h.Score) // still decreasing-score, still online
//	    return true
//	})
type ShardedIndex struct {
	engine *shard.Engine
	db     *Database
}

// NewShardedIndex partitions the work for db into opts.Shards shards: one
// in-memory suffix-tree index per shard by default, or one shared index with
// per-shard subtree assignments when opts.PartitionByPrefix is set.
func NewShardedIndex(db *Database, opts ShardOptions) (*ShardedIndex, error) {
	mode := shard.PartitionBySequence
	if opts.PartitionByPrefix {
		mode = shard.PartitionByPrefix
	}
	engine, err := shard.NewEngine(db, shard.Options{
		Shards:    opts.Shards,
		Workers:   opts.Workers,
		Partition: mode,
	})
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{engine: engine, db: db}, nil
}

// NumShards returns the number of partitions actually built.
func (x *ShardedIndex) NumShards() int { return x.engine.NumShards() }

// Workers returns the per-query concurrency bound.
func (x *ShardedIndex) Workers() int { return x.engine.Workers() }

// Search runs the query on every shard and streams the merged hits to
// report in decreasing score order, exactly like the single-index Search.
// Per-shard work counters are merged into opts.Stats; return false from
// report to stop early.
func (x *ShardedIndex) Search(query []byte, opts SearchOptions, report func(Hit) bool) error {
	return x.engine.Search(query, coreOptions(opts), report)
}

// RecoverAlignment reconstructs the full alignment for a hit reported by
// this engine (hit sequence indexes are global, so recovery runs against
// the source database).
func (x *ShardedIndex) RecoverAlignment(query []byte, scheme Scheme, h Hit) (Alignment, error) {
	return core.RecoverAlignmentCatalog(core.NewDatabaseCatalog(x.db), query, scheme, h)
}

// SearchAll runs Search and collects every hit.
func (x *ShardedIndex) SearchAll(query []byte, opts SearchOptions) ([]Hit, error) {
	return x.engine.SearchAll(query, coreOptions(opts))
}
