package oasis

import (
	"context"
	"time"

	"repro/internal/engine"
	"repro/internal/remote"
)

// Distributed serving: a Coordinator is a warm Engine whose shards are remote
// shard servers.  Each serving process exports one sequence-disjoint slice of
// the corpus over internal/remote's wire protocol (oasis-serve -shard-server);
// the coordinator fans every query out to one replica per slice and merges the
// (hit, bound) event streams through the same strict-release rule a
// single-process engine uses, so the merged stream is identical to searching
// the concatenated corpus locally.  Robustness is client-side: retry with
// jittered capped backoff, failover across a slice's replicas with
// resume-by-count replay, hedged requests against tail-slow replicas, and —
// when every replica of a slice is down — degraded completion from the
// surviving slices through the standard quarantine path (strict mode opts
// out).

type (
	// SliceInfo describes one remote slice as reported by its servers.
	SliceInfo = remote.Info
	// ReplicaHealth is one replica's health snapshot: "up", "degraded"
	// (recent failures) or "down" (consecutive failures past the threshold;
	// de-prioritized, re-tried only when the whole slice is down).
	ReplicaHealth = remote.ReplicaHealth
	// SliceHealth groups the replica health snapshots of one slice.
	SliceHealth = remote.SliceHealth
	// RemoteMetrics aggregates the coordinator's fan-out robustness counters
	// (attempts, retries, failovers, hedges, hedge wins, slice failures).
	RemoteMetrics = remote.MetricsSnapshot
)

// CoordinatorOptions configures a coordinator engine.
type CoordinatorOptions struct {
	// Workers bounds concurrent slice streams per query (0 = one per slice).
	Workers int
	// BatchWorkers, ResultBuffer and CacheBytes configure the warm engine in
	// front of the fan-out exactly as in EngineOptions.  A coordinator-side
	// result cache short-circuits repeated queries before any network I/O.
	BatchWorkers int
	ResultBuffer int
	CacheBytes   int64
	// DialTimeout and HeaderTimeout bound each ATTEMPT's connection
	// establishment and time-to-response-headers (defaults 2s / 10s).  They
	// are deliberately distinct from any per-query deadline applied around
	// the whole fan-out: a slow dial fails one attempt (triggering failover),
	// not the query.
	DialTimeout   time.Duration
	HeaderTimeout time.Duration
	// MaxAttempts bounds stream attempts per slice per query, counting the
	// first try (0 = max(3, 2 x replicas)).
	MaxAttempts int
	// HedgeAfter is the fixed hedge trigger: when a replica has not produced
	// its first event within it, a second request races on another replica
	// and the first byte wins (0 = adaptive, tracking a p95 of observed
	// first-event latencies).
	HedgeAfter time.Duration
	// DisableHedge turns hedging off entirely.
	DisableHedge bool
}

// Coordinator owns a warm Engine over remote shard-server slices plus the
// health and robustness telemetry of the fan-out.  Build one with
// OpenCoordinator; cmd/oasis-serve -coordinator wraps it in the standard HTTP
// front end (admission control, result cache, NDJSON streaming).
type Coordinator struct {
	eng *Engine
	co  *remote.Coordinator
}

// OpenCoordinator connects to every slice's replica set, lays out the global
// sequence index space from the slices' reported sizes, and assembles the
// warm engine.  slices[s] lists slice s's replica addresses ("host:port" or
// full URLs); slice order defines the global sequence numbering.  ctx bounds
// only the startup info fetches.
//
// The returned engine is immutable from this process (Insert/Delete/Compact
// return an error): writes belong to the serving processes that own the
// slices.
func OpenCoordinator(ctx context.Context, slices [][]string, opts CoordinatorOptions) (*Coordinator, error) {
	co, err := remote.Open(ctx, remote.Config{
		Slices:        slices,
		Workers:       opts.Workers,
		DialTimeout:   opts.DialTimeout,
		HeaderTimeout: opts.HeaderTimeout,
		MaxAttempts:   opts.MaxAttempts,
		HedgeAfter:    opts.HedgeAfter,
		DisableHedge:  opts.DisableHedge,
	})
	if err != nil {
		return nil, err
	}
	ieng, err := engine.NewFromShardEngine(co.Engine(), engine.Options{
		BatchWorkers: opts.BatchWorkers,
		ResultBuffer: opts.ResultBuffer,
		CacheBytes:   opts.CacheBytes,
	})
	if err != nil {
		co.Close()
		return nil, err
	}
	return &Coordinator{eng: &Engine{eng: ieng}, co: co}, nil
}

// Engine returns the warm engine over the fan-out; its result streams are
// identical to a single-process engine over the concatenated slices.
func (c *Coordinator) Engine() *Engine { return c.eng }

// Infos returns the per-slice descriptions fetched at startup.
func (c *Coordinator) Infos() []SliceInfo { return c.co.Infos() }

// Health snapshots every slice's replica health for readiness reporting.
func (c *Coordinator) Health() []SliceHealth { return c.co.Health() }

// RemoteMetrics snapshots the fan-out robustness counters aggregated across
// all slices.
func (c *Coordinator) RemoteMetrics() RemoteMetrics { return c.co.Metrics() }

// Close drains in-flight queries, closes the provider engine and releases the
// transport's idle connections.
func (c *Coordinator) Close() error {
	err := c.eng.Close()
	if cerr := c.co.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
