package oasis_test

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/workload"
	"repro/oasis"
)

// buildDiskShardedIndex generates a workload database, writes it as a
// sharded disk index, and returns the database plus the index directory.
func buildDiskShardedIndex(t *testing.T, seed int64, prefix bool, shards int) (*oasis.Database, string) {
	t.Helper()
	cfg := workload.DefaultProteinConfig(30_000)
	cfg.Seed = seed
	db, _, err := workload.ProteinDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	manifest, _, err := oasis.BuildShardedDiskIndex(dir, db, oasis.ShardedIndexBuildOptions{
		Shards:            shards,
		PartitionByPrefix: prefix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if manifest.Shards != shards {
		t.Fatalf("built %d shards, want %d", manifest.Shards, shards)
	}
	return db, dir
}

// TestDiskShardedIndexPublicAPI mirrors TestPrefixShardedIndexPublicAPI for
// the disk-backed engine: a sharded index built by BuildShardedDiskIndex and
// reopened via ShardOptions.IndexDir must report exactly the hits of the
// in-memory single-index search — same sequences, same scores, same score at
// every rank — in both partition modes.
func TestDiskShardedIndexPublicAPI(t *testing.T) {
	for _, prefix := range []bool{false, true} {
		name := "sequence"
		if prefix {
			name = "prefix"
		}
		t.Run(name, func(t *testing.T) {
			db, dir := buildDiskShardedIndex(t, 91, prefix, 4)
			queries, err := workload.MotifQueries(db, nil, workload.DefaultQueryConfig(5))
			if err != nil {
				t.Fatal(err)
			}
			scheme, err := oasis.NewScheme(oasis.MatrixByName("PAM30"), -10)
			if err != nil {
				t.Fatal(err)
			}
			single, err := oasis.NewMemoryIndex(db)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := oasis.NewShardedIndex(nil, oasis.ShardOptions{
				IndexDir: dir,
				// Small pools keep real page traffic (and eviction) in play.
				PoolBytes: 64 * 2048,
				Workers:   2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sharded.Close()
			if sharded.NumShards() != 4 {
				t.Fatalf("got %d shards, want 4", sharded.NumShards())
			}
			if sharded.TotalResidues() != db.TotalResidues() {
				t.Fatalf("disk engine serves %d residues, db has %d", sharded.TotalResidues(), db.TotalResidues())
			}
			for _, q := range queries {
				opts, err := oasis.NewSearchOptionsSized(scheme, sharded.TotalResidues(), q.Residues, oasis.WithEValue(20000))
				if err != nil {
					t.Fatal(err)
				}
				want, err := oasis.SearchAll(single, q.Residues, opts)
				if err != nil {
					t.Fatal(err)
				}
				var st oasis.SearchStats
				opts.Stats = &st
				got, err := sharded.SearchAll(q.Residues, opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("query %s: disk-sharded reported %d hits, single %d", q.ID, len(got), len(want))
				}
				seen := map[int]int{}
				for _, h := range want {
					seen[h.SeqIndex] = h.Score
				}
				for i, h := range got {
					if s, ok := seen[h.SeqIndex]; !ok || s != h.Score {
						t.Fatalf("query %s: hit %d (%s score %d) not in single-index results", q.ID, i, h.SeqID, h.Score)
					}
					if h.Score != want[i].Score {
						t.Fatalf("query %s: score at position %d is %d, single-index has %d", q.ID, i, h.Score, want[i].Score)
					}
				}
				// Alignment recovery must work without the source database:
				// residues come back through the shard buffer pools.
				if len(got) > 0 {
					if _, err := sharded.RecoverAlignment(q.Residues, scheme, got[0]); err != nil {
						t.Fatalf("query %s: recover alignment: %v", q.ID, err)
					}
				}
			}
		})
	}
}

// TestDiskEngineServesBatches drives the warm batch engine over a disk index
// directory through the public facade (OpenEngine + SubmitBatch) and checks
// the multiplexed results against per-query in-memory searches.
func TestDiskEngineServesBatches(t *testing.T) {
	db, dir := buildDiskShardedIndex(t, 92, true, 3)
	queries, err := workload.MotifQueries(db, nil, workload.DefaultQueryConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := oasis.NewScheme(oasis.MatrixByName("PAM30"), -10)
	if err != nil {
		t.Fatal(err)
	}
	single, err := oasis.NewMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := oasis.OpenEngine(dir, oasis.EngineOptions{BatchWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.DB() != nil {
		t.Fatal("disk-backed engine must not hold a database")
	}
	if eng.NumSequences() != db.NumSequences() {
		t.Fatalf("engine serves %d sequences, db has %d", eng.NumSequences(), db.NumSequences())
	}

	batch := make([]oasis.BatchQuery, len(queries))
	wantCounts := make(map[string]int)
	for i, q := range queries {
		opts, err := oasis.NewSearchOptionsSized(scheme, eng.TotalResidues(), q.Residues, oasis.WithEValue(20000))
		if err != nil {
			t.Fatal(err)
		}
		batch[i] = oasis.BatchQuery{ID: q.ID, Residues: q.Residues, Options: opts}
		want, err := oasis.SearchAll(single, q.Residues, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantCounts[q.ID] = len(want)
	}
	gotCounts := make(map[string]int)
	lastScore := make(map[string]int)
	for r := range eng.SubmitBatch(context.Background(), batch) {
		if r.Done {
			if r.Err != nil {
				t.Fatalf("query %s failed: %v", r.QueryID, r.Err)
			}
			continue
		}
		if prev, ok := lastScore[r.QueryID]; ok && r.Hit.Score > prev {
			t.Fatalf("query %s: score %d after %d", r.QueryID, r.Hit.Score, prev)
		}
		lastScore[r.QueryID] = r.Hit.Score
		gotCounts[r.QueryID]++
	}
	for id, want := range wantCounts {
		if gotCounts[id] != want {
			t.Fatalf("query %s: disk batch reported %d hits, single-index %d", id, gotCounts[id], want)
		}
	}
	// Disk-backed metrics must expose per-shard buffer-pool statistics.
	m := eng.Metrics()
	if len(m.Pools) == 0 {
		t.Fatal("disk-backed engine metrics have no buffer-pool stats")
	}
	var requests int64
	for _, ps := range m.Pools {
		requests += ps.Requests
	}
	if requests == 0 {
		t.Fatal("buffer pools saw no requests while serving batches")
	}
}
