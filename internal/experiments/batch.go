package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// BatchRow is one mode of the batch-engine experiment: the query workload
// served cold (full engine setup per query), warm sequentially (one engine,
// one query at a time) and warm batched (one engine, SubmitBatch
// multiplexing), so the amortisation win and the batching win are separable.
type BatchRow struct {
	// Mode is "cold-setup", "warm-sequential" or "warm-batch".
	Mode string
	// Queries is how many queries this mode actually ran (cold mode samples
	// the workload: rebuilding the index per query is the expensive thing
	// being measured).
	Queries int
	// QueryTime is the mean wall-clock time per query, including each
	// query's share of engine setup.
	QueryTime time.Duration
	// QueriesPerSec is the serving throughput of the mode.
	QueriesPerSec float64
	// Hits is the total number of sequences reported.
	Hits int64
	// BuildTime is the one-off engine construction cost (cold mode: mean
	// per-query construction cost, which its QueryTime includes).
	BuildTime time.Duration
	// Speedup is this mode's QueriesPerSec over the cold-setup row's.
	Speedup float64
}

// Batch measures what the warm engine buys: the same workload served with
// full per-query setup versus over one long-lived engine.  shardWorkers and
// batchWorkers <= 0 select the engine defaults.
func Batch(lab *Lab, shards, shardWorkers, batchWorkers int) ([]BatchRow, error) {
	if shards < 1 {
		shards = 1
	}
	engOpts := engine.Options{Shards: shards, ShardWorkers: shardWorkers, BatchWorkers: batchWorkers}
	queries := make([]engine.Query, len(lab.Queries))
	for i, q := range lab.Queries {
		queries[i] = engine.Query{
			ID:       q.ID,
			Residues: q.Residues,
			Options: core.Options{
				Scheme:   lab.Scheme,
				MinScore: lab.minScoreFor(lab.Config.EValue, len(q.Residues)),
			},
		}
	}
	ctx := context.Background()
	var rows []BatchRow

	// Cold: a fresh engine per query, the pre-batch serving pattern.  The
	// workload is sampled; per-query cost is what matters.
	sample := queries
	if len(sample) > 8 {
		sample = sample[:8]
	}
	var coldHits int64
	var coldBuild time.Duration
	coldStart := time.Now()
	for _, q := range sample {
		buildStart := time.Now()
		eng, err := engine.New(lab.DB, engOpts)
		if err != nil {
			return nil, err
		}
		coldBuild += time.Since(buildStart)
		if _, err := eng.Search(ctx, q, func(core.Hit) bool { coldHits++; return true }); err != nil {
			return nil, err
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
	}
	coldElapsed := time.Since(coldStart)
	cold := BatchRow{
		Mode:          "cold-setup",
		Queries:       len(sample),
		QueryTime:     coldElapsed / time.Duration(len(sample)),
		QueriesPerSec: float64(len(sample)) / coldElapsed.Seconds(),
		Hits:          coldHits,
		BuildTime:     coldBuild / time.Duration(len(sample)),
		Speedup:       1,
	}
	rows = append(rows, cold)

	// Warm: one engine for the whole stream.
	buildStart := time.Now()
	eng, err := engine.New(lab.DB, engOpts)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	warmBuild := time.Since(buildStart)

	var seqHits int64
	seqStart := time.Now()
	for _, q := range queries {
		if _, err := eng.Search(ctx, q, func(core.Hit) bool { seqHits++; return true }); err != nil {
			return nil, err
		}
	}
	seqElapsed := time.Since(seqStart)
	rows = append(rows, BatchRow{
		Mode:          "warm-sequential",
		Queries:       len(queries),
		QueryTime:     seqElapsed / time.Duration(len(queries)),
		QueriesPerSec: float64(len(queries)) / seqElapsed.Seconds(),
		Hits:          seqHits,
		BuildTime:     warmBuild,
		Speedup:       (float64(len(queries)) / seqElapsed.Seconds()) / cold.QueriesPerSec,
	})

	var batchHits int64
	batchStart := time.Now()
	for r := range eng.SubmitBatch(ctx, queries) {
		if r.Done {
			if r.Err != nil {
				return nil, fmt.Errorf("experiments: batch query %s: %w", r.QueryID, r.Err)
			}
			continue
		}
		batchHits++
	}
	batchElapsed := time.Since(batchStart)
	if batchHits != seqHits {
		return nil, fmt.Errorf("experiments: batch reported %d hits, sequential %d", batchHits, seqHits)
	}
	rows = append(rows, BatchRow{
		Mode:          "warm-batch",
		Queries:       len(queries),
		QueryTime:     batchElapsed / time.Duration(len(queries)),
		QueriesPerSec: float64(len(queries)) / batchElapsed.Seconds(),
		Hits:          batchHits,
		BuildTime:     warmBuild,
		Speedup:       (float64(len(queries)) / batchElapsed.Seconds()) / cold.QueriesPerSec,
	})
	return rows, nil
}

// RenderBatch writes the batch-engine experiment as a text table.
func RenderBatch(w io.Writer, rows []BatchRow) {
	fmt.Fprintln(w, "Batch query engine — per-query setup vs one warm engine (same hits per query)")
	fmt.Fprintf(w, "%-16s %-9s %-14s %-12s %-10s %-12s %-8s\n",
		"mode", "queries", "time/query", "queries/s", "hits", "build", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-9d %-14s %-12.2f %-10d %-12s %-8.2f\n",
			r.Mode, r.Queries, fmtDur(r.QueryTime), r.QueriesPerSec, r.Hits, fmtDur(r.BuildTime), r.Speedup)
	}
	fmt.Fprintln(w)
}
