package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestDistributedExperiment runs the fan-out experiment end to end on a tiny
// lab: real loopback shard servers, a replica killed mid-run, and the
// experiment's own built-in gates (query-0 equivalence, failovers observed,
// no degraded queries despite the kill).
func TestDistributedExperiment(t *testing.T) {
	lab := newTinyLab(t)
	res, err := Distributed(lab, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumQueries != len(lab.Queries) || res.TotalHits == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.QueriesPerSec <= 0 {
		t.Fatalf("queries/sec not measured: %+v", res)
	}
	if res.Remote.Failovers == 0 {
		t.Fatalf("replica kill produced no failovers: %+v", res.Remote)
	}
	if res.DegradedQueries != 0 {
		t.Fatalf("%d degraded queries despite a surviving replica", res.DegradedQueries)
	}
	if res.Remote.Streams == 0 || res.Remote.Attempts < res.Remote.Streams {
		t.Fatalf("implausible counters: %+v", res.Remote)
	}
	var buf bytes.Buffer
	RenderDistributed(&buf, res)
	for _, want := range []string{"failovers", "queries/sec", "hedges"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render output missing %q:\n%s", want, buf.String())
		}
	}
}
