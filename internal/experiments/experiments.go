// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4) on the synthetic SWISS-PROT/ProClass stand-in
// workload: performance versus query length for OASIS, Smith-Waterman and
// the BLAST-style heuristic (Figure 3), filtering efficiency (Figure 4),
// accuracy relative to the heuristic (Figure 5), the effect of selectivity
// (Figure 6), buffer-pool size and per-component hit ratios (Figures 7-8),
// online behaviour (Figure 9), and index space utilisation (the table in
// Section 4.2).
//
// Each experiment returns structured rows so callers (cmd/oasis-bench, the
// repository benchmarks, EXPERIMENTS.md) can render or assert on them.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/align"
	"repro/internal/blast"
	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/workload"
)

// Config scales the experiment workload.  The defaults reproduce the shape
// of the paper's results at laptop scale; raise TotalResidues towards 4e7 to
// approach the paper's SWISS-PROT-sized runs.
type Config struct {
	// TotalResidues is the approximate synthetic database size in residues
	// (the paper's SWISS-PROT has ~4e7).
	TotalResidues int64
	// NumQueries is the number of motif queries (the paper uses 100).
	NumQueries int
	// EValue is the selectivity for the headline experiments (the paper
	// uses the blastp short-query recommendation E=20000).
	EValue float64
	// MatrixName selects the substitution matrix (default PAM30, as in the
	// paper's protein experiments).
	MatrixName string
	// GapPenalty is the linear gap penalty (negative).
	GapPenalty int
	// BlockSize is the index block size (default 2048).
	BlockSize int
	// BufferPoolBytes is the pool size used by the non-buffer-pool
	// experiments (default: large enough to hold the index, as in the
	// paper's 256 MB default).
	BufferPoolBytes int64
	// Dir is where index files are written (default: a temp directory).
	Dir string
	// Seed drives the synthetic workload.
	Seed int64
}

// DefaultConfig returns a configuration sized for quick local runs.
func DefaultConfig() Config {
	return Config{
		TotalResidues:   400_000,
		NumQueries:      60,
		EValue:          20000,
		MatrixName:      "PAM30",
		GapPenalty:      -10,
		BlockSize:       2048,
		BufferPoolBytes: 64 << 20,
		Seed:            1309,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.TotalResidues <= 0 {
		c.TotalResidues = d.TotalResidues
	}
	if c.NumQueries <= 0 {
		c.NumQueries = d.NumQueries
	}
	if c.EValue <= 0 {
		c.EValue = d.EValue
	}
	if c.MatrixName == "" {
		c.MatrixName = d.MatrixName
	}
	if c.GapPenalty >= 0 {
		c.GapPenalty = d.GapPenalty
	}
	if c.BlockSize <= 0 {
		c.BlockSize = d.BlockSize
	}
	if c.BufferPoolBytes <= 0 {
		c.BufferPoolBytes = d.BufferPoolBytes
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
}

// Lab holds the shared experiment state: the synthetic database, the query
// workload, the disk and in-memory indexes, and the scoring configuration.
//
// The timing experiments report OASIS over the memory-resident index (the
// paper's 512 MB configuration, where the whole structure is cached) and,
// where relevant, over the disk index read through the buffer pool; the
// buffer-pool experiments (Figures 7-8) always use the disk index.
type Lab struct {
	Config    Config
	DB        *seq.Database
	Motifs    []workload.Motif
	Queries   []workload.Query
	Scheme    score.Scheme
	KA        score.KarlinAltschul
	IndexPath string
	// Mem is the memory-resident index over the same suffix tree.
	Mem *core.MemoryIndex
	// BuildStats describes the written index (space table).
	BuildStats *diskst.BuildStats

	cleanup func()
}

// NewLab generates the workload and builds the disk index.
func NewLab(cfg Config) (*Lab, error) {
	cfg.fillDefaults()
	matrix := score.ByName(cfg.MatrixName)
	if matrix == nil {
		return nil, fmt.Errorf("experiments: unknown matrix %q", cfg.MatrixName)
	}
	scheme, err := score.NewScheme(matrix, cfg.GapPenalty)
	if err != nil {
		return nil, err
	}
	pcfg := workload.DefaultProteinConfig(cfg.TotalResidues)
	pcfg.Seed = cfg.Seed
	db, motifs, err := workload.ProteinDatabase(pcfg)
	if err != nil {
		return nil, err
	}
	qcfg := workload.DefaultQueryConfig(cfg.NumQueries)
	qcfg.Seed = cfg.Seed + 1
	queries, err := workload.MotifQueries(db, motifs, qcfg)
	if err != nil {
		return nil, err
	}
	stats := db.ComputeStats()
	ka, err := score.Params(matrix, stats.Frequencies)
	if err != nil {
		ka, err = score.Params(matrix, nil)
		if err != nil {
			return nil, err
		}
	}
	lab := &Lab{
		Config:  cfg,
		DB:      db,
		Motifs:  motifs,
		Queries: queries,
		Scheme:  scheme,
		KA:      ka,
	}
	dir := cfg.Dir
	cleanup := func() {}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "oasis-exp-")
		if err != nil {
			return nil, err
		}
		dir = tmp
		cleanup = func() { os.RemoveAll(tmp) }
	}
	lab.cleanup = cleanup
	lab.IndexPath = filepath.Join(dir, "experiment.oasis")
	st, err := diskst.Build(lab.IndexPath, db, diskst.BuildOptions{
		WriteOptions: diskst.WriteOptions{BlockSize: cfg.BlockSize},
	})
	if err != nil {
		cleanup()
		return nil, err
	}
	lab.BuildStats = st
	lab.Mem, err = core.BuildMemoryIndex(db)
	if err != nil {
		cleanup()
		return nil, err
	}
	return lab, nil
}

// Close removes temporary files created by the lab.
func (l *Lab) Close() {
	if l.cleanup != nil {
		l.cleanup()
	}
}

// openIndex opens the lab's index through a pool of the given size.
func (l *Lab) openIndex(poolBytes int64) (*diskst.Index, *bufferpool.Pool, error) {
	pool := bufferpool.New(poolBytes, l.Config.BlockSize)
	idx, err := diskst.Open(l.IndexPath, pool)
	if err != nil {
		return nil, nil, err
	}
	return idx, pool, nil
}

// minScoreFor converts the configured E-value into the OASIS minScore for a
// query length (paper Equation 3).
func (l *Lab) minScoreFor(eValue float64, queryLen int) int {
	return l.KA.MinScore(eValue, queryLen, l.DB.TotalResidues())
}

// lengthBucket groups measurements by query length.
type lengthBucket struct {
	sum   map[string]float64
	count int
}

type byLength struct {
	buckets map[int]*lengthBucket
}

func newByLength() *byLength { return &byLength{buckets: map[int]*lengthBucket{}} }

func (b *byLength) add(length int, metric string, value float64) {
	bk := b.buckets[length]
	if bk == nil {
		bk = &lengthBucket{sum: map[string]float64{}}
		b.buckets[length] = bk
	}
	bk.sum[metric] += value
}

func (b *byLength) bump(length int) {
	bk := b.buckets[length]
	if bk == nil {
		bk = &lengthBucket{sum: map[string]float64{}}
		b.buckets[length] = bk
	}
	bk.count++
}

func (b *byLength) lengths() []int {
	var out []int
	for l := range b.buckets {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

func (b *byLength) mean(length int, metric string) float64 {
	bk := b.buckets[length]
	if bk == nil || bk.count == 0 {
		return 0
	}
	return bk.sum[metric] / float64(bk.count)
}

// Figure3Row is one point of Figure 3: mean query time versus query length
// for the three searchers at E = 20,000.  OASIS is measured both with the
// index memory-resident (the paper's 512 MB setting, where the structure is
// fully cached) and with the disk index read through the buffer pool.
type Figure3Row struct {
	QueryLength   int
	NumQueries    int
	OASISTime     time.Duration // memory-resident index
	OASISDiskTime time.Duration // disk index through the buffer pool
	BLASTTime     time.Duration
	SWTime        time.Duration
}

// Figure3 measures mean query time by query length for OASIS, BLAST
// (heuristic) and Smith-Waterman.
func Figure3(lab *Lab) ([]Figure3Row, error) {
	idx, _, err := lab.openIndex(lab.Config.BufferPoolBytes)
	if err != nil {
		return nil, err
	}
	defer idx.Close()
	bl, err := blast.NewSearcher(lab.DB, lab.Scheme, blast.Options{TwoHit: true, EValue: lab.Config.EValue})
	if err != nil {
		return nil, err
	}
	agg := newByLength()
	for _, q := range lab.Queries {
		m := len(q.Residues)
		minScore := lab.minScoreFor(lab.Config.EValue, m)

		start := time.Now()
		if _, err := core.SearchAll(lab.Mem, q.Residues, core.Options{Scheme: lab.Scheme, MinScore: minScore}); err != nil {
			return nil, err
		}
		agg.add(m, "oasis", float64(time.Since(start)))

		start = time.Now()
		if _, err := core.SearchAll(idx, q.Residues, core.Options{Scheme: lab.Scheme, MinScore: minScore}); err != nil {
			return nil, err
		}
		agg.add(m, "oasisdisk", float64(time.Since(start)))

		start = time.Now()
		if _, err := bl.Search(q.Residues, nil); err != nil {
			return nil, err
		}
		agg.add(m, "blast", float64(time.Since(start)))

		start = time.Now()
		if _, err := align.SearchDatabase(lab.DB, q.Residues, lab.Scheme, align.Options{MinScore: minScore}); err != nil {
			return nil, err
		}
		agg.add(m, "sw", float64(time.Since(start)))
		agg.bump(m)
	}
	var rows []Figure3Row
	for _, l := range agg.lengths() {
		rows = append(rows, Figure3Row{
			QueryLength:   l,
			NumQueries:    agg.buckets[l].count,
			OASISTime:     time.Duration(agg.mean(l, "oasis")),
			OASISDiskTime: time.Duration(agg.mean(l, "oasisdisk")),
			BLASTTime:     time.Duration(agg.mean(l, "blast")),
			SWTime:        time.Duration(agg.mean(l, "sw")),
		})
	}
	return rows, nil
}

// Figure4Row is one point of Figure 4: mean number of dynamic-programming
// columns expanded per query, by query length.
type Figure4Row struct {
	QueryLength  int
	NumQueries   int
	OASISColumns float64
	SWColumns    float64
	// Fraction is OASISColumns / SWColumns.
	Fraction float64
}

// Figure4 measures the filtering efficiency of OASIS relative to S-W.
func Figure4(lab *Lab) ([]Figure4Row, error) {
	agg := newByLength()
	for _, q := range lab.Queries {
		m := len(q.Residues)
		minScore := lab.minScoreFor(lab.Config.EValue, m)
		var ost core.Stats
		if _, err := core.SearchAll(lab.Mem, q.Residues, core.Options{Scheme: lab.Scheme, MinScore: minScore, Stats: &ost}); err != nil {
			return nil, err
		}
		var sst align.Stats
		if _, err := align.SearchDatabase(lab.DB, q.Residues, lab.Scheme, align.Options{MinScore: minScore, Stats: &sst}); err != nil {
			return nil, err
		}
		agg.add(m, "oasis", float64(ost.ColumnsExpanded))
		agg.add(m, "sw", float64(sst.ColumnsExpanded))
		agg.bump(m)
	}
	var rows []Figure4Row
	for _, l := range agg.lengths() {
		row := Figure4Row{
			QueryLength:  l,
			NumQueries:   agg.buckets[l].count,
			OASISColumns: agg.mean(l, "oasis"),
			SWColumns:    agg.mean(l, "sw"),
		}
		if row.SWColumns > 0 {
			row.Fraction = row.OASISColumns / row.SWColumns
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure5Row is one point of Figure 5: how many more matching sequences
// OASIS returns than the heuristic, by query length.
type Figure5Row struct {
	QueryLength   int
	NumQueries    int
	OASISMatches  float64
	BLASTMatches  float64
	AdditionalPct float64
}

// Figure5 compares the number of matches returned by OASIS and BLAST at the
// same E-value threshold.
func Figure5(lab *Lab) ([]Figure5Row, error) {
	bl, err := blast.NewSearcher(lab.DB, lab.Scheme, blast.Options{TwoHit: true, EValue: lab.Config.EValue})
	if err != nil {
		return nil, err
	}
	agg := newByLength()
	for _, q := range lab.Queries {
		m := len(q.Residues)
		minScore := lab.minScoreFor(lab.Config.EValue, m)
		oasisHits, err := core.SearchAll(lab.Mem, q.Residues, core.Options{Scheme: lab.Scheme, MinScore: minScore})
		if err != nil {
			return nil, err
		}
		blastHits, err := bl.Search(q.Residues, nil)
		if err != nil {
			return nil, err
		}
		agg.add(m, "oasis", float64(len(oasisHits)))
		agg.add(m, "blast", float64(len(blastHits)))
		agg.bump(m)
	}
	var rows []Figure5Row
	for _, l := range agg.lengths() {
		row := Figure5Row{
			QueryLength:  l,
			NumQueries:   agg.buckets[l].count,
			OASISMatches: agg.mean(l, "oasis"),
			BLASTMatches: agg.mean(l, "blast"),
		}
		if row.BLASTMatches > 0 {
			row.AdditionalPct = 100 * (row.OASISMatches - row.BLASTMatches) / row.BLASTMatches
		} else if row.OASISMatches > 0 {
			row.AdditionalPct = 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure6Row is one point of Figure 6: the effect of selectivity (E-value)
// on OASIS query time.
type Figure6Row struct {
	QueryLength int
	NumQueries  int
	TimeE1      time.Duration
	TimeELarge  time.Duration
	// HitsE1 / HitsELarge are the mean result counts at the two settings.
	HitsE1     float64
	HitsELarge float64
}

// Figure6 runs OASIS at the two selectivity extremes used in the paper
// (E=1 and E=20,000).
func Figure6(lab *Lab) ([]Figure6Row, error) {
	agg := newByLength()
	for _, q := range lab.Queries {
		m := len(q.Residues)
		for _, e := range []float64{1, lab.Config.EValue} {
			minScore := lab.minScoreFor(e, m)
			start := time.Now()
			hits, err := core.SearchAll(lab.Mem, q.Residues, core.Options{Scheme: lab.Scheme, MinScore: minScore})
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if e == 1 {
				agg.add(m, "t1", float64(elapsed))
				agg.add(m, "h1", float64(len(hits)))
			} else {
				agg.add(m, "tL", float64(elapsed))
				agg.add(m, "hL", float64(len(hits)))
			}
		}
		agg.bump(m)
	}
	var rows []Figure6Row
	for _, l := range agg.lengths() {
		rows = append(rows, Figure6Row{
			QueryLength: l,
			NumQueries:  agg.buckets[l].count,
			TimeE1:      time.Duration(agg.mean(l, "t1")),
			TimeELarge:  time.Duration(agg.mean(l, "tL")),
			HitsE1:      agg.mean(l, "h1"),
			HitsELarge:  agg.mean(l, "hL"),
		})
	}
	return rows, nil
}

// Figure7Row is one point of Figure 7: mean query time versus buffer pool
// size.
type Figure7Row struct {
	PoolBytes     int64
	PoolFraction  float64 // pool size / index size
	MeanQueryTime time.Duration
}

// Figure7 sweeps the buffer pool size.  Fractions are relative to the index
// file size, mirroring the paper's 32 MB - 512 MB sweep against its ~500 MB
// index.
func Figure7(lab *Lab, fractions []float64) ([]Figure7Row, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.05, 0.125, 0.25, 0.5, 1.0}
	}
	info, err := os.Stat(lab.IndexPath)
	if err != nil {
		return nil, err
	}
	var rows []Figure7Row
	for _, f := range fractions {
		poolBytes := int64(float64(info.Size()) * f)
		if poolBytes < int64(lab.Config.BlockSize)*8 {
			poolBytes = int64(lab.Config.BlockSize) * 8
		}
		idx, pool, err := lab.openIndex(poolBytes)
		if err != nil {
			return nil, err
		}
		var total time.Duration
		n := 0
		for _, q := range lab.Queries {
			minScore := lab.minScoreFor(lab.Config.EValue, len(q.Residues))
			start := time.Now()
			if _, err := core.SearchAll(idx, q.Residues, core.Options{Scheme: lab.Scheme, MinScore: minScore}); err != nil {
				idx.Close()
				return nil, err
			}
			total += time.Since(start)
			n++
		}
		_ = pool
		idx.Close()
		rows = append(rows, Figure7Row{
			PoolBytes:     poolBytes,
			PoolFraction:  f,
			MeanQueryTime: total / time.Duration(n),
		})
	}
	return rows, nil
}

// Figure8Row is one point of Figure 8: buffer hit ratio per index component
// versus buffer pool size.
type Figure8Row struct {
	PoolBytes        int64
	PoolFraction     float64
	SymbolsHitRatio  float64
	InternalHitRatio float64
	LeafHitRatio     float64
}

// Figure8 sweeps the buffer pool size and reports hit ratios for the symbol,
// internal-node and leaf regions separately.
func Figure8(lab *Lab, fractions []float64) ([]Figure8Row, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.05, 0.125, 0.25, 0.5, 1.0}
	}
	info, err := os.Stat(lab.IndexPath)
	if err != nil {
		return nil, err
	}
	var rows []Figure8Row
	for _, f := range fractions {
		poolBytes := int64(float64(info.Size()) * f)
		if poolBytes < int64(lab.Config.BlockSize)*8 {
			poolBytes = int64(lab.Config.BlockSize) * 8
		}
		idx, pool, err := lab.openIndex(poolBytes)
		if err != nil {
			return nil, err
		}
		for _, q := range lab.Queries {
			minScore := lab.minScoreFor(lab.Config.EValue, len(q.Residues))
			if _, err := core.SearchAll(idx, q.Residues, core.Options{Scheme: lab.Scheme, MinScore: minScore}); err != nil {
				idx.Close()
				return nil, err
			}
		}
		rows = append(rows, Figure8Row{
			PoolBytes:        poolBytes,
			PoolFraction:     f,
			SymbolsHitRatio:  pool.Stats(idx.SymbolsFile()).HitRatio(),
			InternalHitRatio: pool.Stats(idx.InternalFile()).HitRatio(),
			LeafHitRatio:     pool.Stats(idx.LeavesFile()).HitRatio(),
		})
		idx.Close()
	}
	return rows, nil
}

// Figure9Row is one point of Figure 9: the time at which the i-th result of
// a single query is returned.
type Figure9Row struct {
	Rank    int
	Elapsed time.Duration
	Score   int
}

// Figure9 measures the online behaviour of OASIS for one query (the paper
// uses the 13-residue motif DKDGDGCITTKEL at E=20,000): the elapsed time at
// which each successive result is delivered.
func Figure9(lab *Lab, query []byte) ([]Figure9Row, error) {
	if len(query) == 0 {
		// Pick the workload query closest to 13 residues, mirroring the
		// paper's example.
		best := lab.Queries[0].Residues
		for _, q := range lab.Queries {
			if abs(len(q.Residues)-13) < abs(len(best)-13) {
				best = q.Residues
			}
		}
		query = best
	}
	minScore := lab.minScoreFor(lab.Config.EValue, len(query))
	var rows []Figure9Row
	start := time.Now()
	err := core.Search(lab.Mem, query, core.Options{Scheme: lab.Scheme, MinScore: minScore}, func(h core.Hit) bool {
		rows = append(rows, Figure9Row{Rank: h.Rank, Elapsed: time.Since(start), Score: h.Score})
		return true
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// SpaceRow reproduces the space-utilisation table of Section 4.2.
type SpaceRow struct {
	DataSetSymbols int64
	IndexBytes     int64
	SymbolsBytes   int64
	InternalBytes  int64
	LeafBytes      int64
	BytesPerSymbol float64
}

// TableSpace reports the index space utilisation.
func TableSpace(lab *Lab) SpaceRow {
	st := lab.BuildStats
	return SpaceRow{
		DataSetSymbols: st.TotalResidues,
		IndexBytes:     st.FileBytes,
		SymbolsBytes:   st.SymbolsBytes,
		InternalBytes:  st.InternalBytes,
		LeafBytes:      st.LeafBytes,
		BytesPerSymbol: st.BytesPerSymbol,
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
