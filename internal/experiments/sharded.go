package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// ShardedRow is one point of the sharded scale-out experiment: the whole
// query workload run through the sharded engine at one shard count in one
// partition mode.
type ShardedRow struct {
	// Mode is "sequence" (independent per-shard indexes) or "prefix"
	// (shared index, disjoint subtrees per shard).
	Mode    string
	Shards  int
	Workers int
	// QueryTime is the mean wall-clock time per query.
	QueryTime time.Duration
	// Hits is the total number of sequences reported across the workload.
	Hits int64
	// ColumnsExpanded / CellsComputed are summed across shards and queries.
	ColumnsExpanded int64
	CellsComputed   int64
	// Steals counts seeds migrated between prefix shards by the work
	// stealer across the workload (always 0 in sequence mode or with
	// stealing disabled).
	Steals int64
	// Speedup is the 1-shard QueryTime divided by this row's.
	Speedup float64
}

// shardedModes maps row labels to engine partition modes.
var shardedModes = []struct {
	name string
	mode shard.PartitionMode
}{
	{"sequence", shard.PartitionBySequence},
	{"prefix", shard.PartitionByPrefix},
}

// Sharded runs the workload through the sharded engine at each shard count
// in both partition modes and reports throughput and work counters.  The
// first row (sequence mode at the first shard count — run with 1 first for a
// meaningful baseline) anchors the speedup column.  workers <= 0 means one
// worker per shard.  noSteal disables work stealing between prefix shards
// (the scheduling ablation; sequence mode never steals).  Every row must
// report the same hit total; a mismatch is an error because sharding must
// never change results.
func Sharded(lab *Lab, shardCounts []int, workers int, noSteal bool) ([]ShardedRow, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	var rows []ShardedRow
	for _, pm := range shardedModes {
		for _, n := range shardCounts {
			if pm.mode == shard.PartitionByPrefix && n == 1 {
				// One prefix shard is the shared-index single search —
				// identical to sequence mode at 1 shard; skip the duplicate.
				continue
			}
			engine, err := shard.NewEngine(lab.DB, shard.Options{Shards: n, Workers: workers, Partition: pm.mode, NoSteal: noSteal})
			if err != nil {
				return nil, err
			}
			var st core.Stats
			var hits int64
			start := time.Now()
			for _, q := range lab.Queries {
				minScore := lab.minScoreFor(lab.Config.EValue, len(q.Residues))
				err := engine.Search(q.Residues, core.Options{
					Scheme: lab.Scheme, MinScore: minScore, Stats: &st,
				}, func(core.Hit) bool {
					hits++
					return true
				})
				if err != nil {
					return nil, err
				}
			}
			elapsed := time.Since(start)
			row := ShardedRow{
				Mode:            pm.name,
				Shards:          engine.NumShards(),
				Workers:         engine.Workers(),
				QueryTime:       elapsed / time.Duration(len(lab.Queries)),
				Hits:            hits,
				ColumnsExpanded: st.ColumnsExpanded,
				CellsComputed:   st.CellsComputed,
				Steals:          engine.Steals(),
			}
			if len(rows) > 0 {
				if row.Hits != rows[0].Hits {
					return nil, fmt.Errorf("experiments: %s sharding at %d shards reported %d hits, baseline %d",
						row.Mode, row.Shards, row.Hits, rows[0].Hits)
				}
				if row.QueryTime > 0 {
					row.Speedup = float64(rows[0].QueryTime) / float64(row.QueryTime)
				}
			} else {
				row.Speedup = 1
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// CheckPrefixColumns enforces the subtree-sharding work bound: every
// prefix-mode row's ColumnsExpanded must stay within budget (a ratio, e.g.
// 1.05) of the single-shard baseline row.  It returns an error naming the
// first violating row, and an error when the rows contain no baseline or no
// prefix rows (a misconfigured run must not pass vacuously).
func CheckPrefixColumns(rows []ShardedRow, budget float64) error {
	var base *ShardedRow
	for i := range rows {
		if rows[i].Shards == 1 {
			base = &rows[i]
			break
		}
	}
	if base == nil {
		return fmt.Errorf("experiments: no 1-shard baseline row to check prefix columns against")
	}
	checked := 0
	for _, r := range rows {
		if r.Mode != "prefix" {
			continue
		}
		checked++
		if float64(r.ColumnsExpanded) > budget*float64(base.ColumnsExpanded) {
			return fmt.Errorf("experiments: prefix sharding at %d shards expanded %d columns, over %.2fx the 1-shard baseline %d",
				r.Shards, r.ColumnsExpanded, budget, base.ColumnsExpanded)
		}
	}
	if checked == 0 {
		return fmt.Errorf("experiments: no prefix-mode rows to check (run shard counts > 1)")
	}
	return nil
}

// RenderSharded writes the scale-out experiment as a text table.
func RenderSharded(w io.Writer, rows []ShardedRow) {
	fmt.Fprintln(w, "Sharded scale-out — mean query time vs shard count and partition mode (order-preserving merge)")
	fmt.Fprintf(w, "%-10s %-8s %-8s %-14s %-10s %-16s %-16s %-8s %-8s\n",
		"mode", "shards", "workers", "time/query", "hits", "columns", "cells", "steals", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8d %-8d %-14s %-10d %-16d %-16d %-8d %-8.2f\n",
			r.Mode, r.Shards, r.Workers, fmtDur(r.QueryTime), r.Hits, r.ColumnsExpanded, r.CellsComputed, r.Steals, r.Speedup)
	}
	fmt.Fprintln(w)
}

// LiveBandRow summarises the live-band kernel ablation on the Figure-4
// filtering workload: identical hits, fewer cells.
type LiveBandRow struct {
	// BandTime / FullTime are mean per-query times with the band on/off.
	BandTime, FullTime time.Duration
	// RefTime is the mean per-query time of the scalar reference kernel
	// (core.Options.ReferenceKernel): the banded sweep without the SoA
	// branch-free inner loop, so RefTime/BandTime isolates the kernel
	// speedup from the band's cell savings.
	RefTime time.Duration
	// BandCells / FullCells are total cells computed across the workload.
	BandCells, FullCells int64
	// Columns is the total columns expanded (identical in both modes: the
	// band changes which cells of a column are touched, not which columns
	// are expanded).
	Columns int64
	// Hits is the total hit count (identical in both modes by construction;
	// LiveBand returns an error otherwise).
	Hits int64
	// CellFraction is BandCells / FullCells.
	CellFraction float64
}

// LiveBand measures the live-band kernel against the exhaustive column
// sweep on the workload and verifies the hit streams are identical.
func LiveBand(lab *Lab) (LiveBandRow, error) {
	var row LiveBandRow
	for _, q := range lab.Queries {
		minScore := lab.minScoreFor(lab.Config.EValue, len(q.Residues))

		var bandStats core.Stats
		start := time.Now()
		band, err := core.SearchAll(lab.Mem, q.Residues, core.Options{
			Scheme: lab.Scheme, MinScore: minScore, Stats: &bandStats,
		})
		if err != nil {
			return row, err
		}
		row.BandTime += time.Since(start)

		var fullStats core.Stats
		start = time.Now()
		fullSweep, err := core.SearchAll(lab.Mem, q.Residues, core.Options{
			Scheme: lab.Scheme, MinScore: minScore, Stats: &fullStats,
			DisableLiveBand: true,
		})
		if err != nil {
			return row, err
		}
		row.FullTime += time.Since(start)

		var refStats core.Stats
		start = time.Now()
		ref, err := core.SearchAll(lab.Mem, q.Residues, core.Options{
			Scheme: lab.Scheme, MinScore: minScore, Stats: &refStats,
			ReferenceKernel: true,
		})
		if err != nil {
			return row, err
		}
		row.RefTime += time.Since(start)

		if len(band) != len(fullSweep) {
			return row, fmt.Errorf("experiments: live band changed the hit count for %s: %d vs %d",
				q.ID, len(band), len(fullSweep))
		}
		for i := range band {
			if band[i] != fullSweep[i] {
				return row, fmt.Errorf("experiments: live band changed hit %d for %s", i, q.ID)
			}
		}
		if len(ref) != len(band) {
			return row, fmt.Errorf("experiments: reference kernel changed the hit count for %s: %d vs %d",
				q.ID, len(ref), len(band))
		}
		for i := range ref {
			if ref[i] != band[i] {
				return row, fmt.Errorf("experiments: reference kernel changed hit %d for %s", i, q.ID)
			}
		}
		if refStats.CellsComputed != bandStats.CellsComputed || refStats.ColumnsExpanded != bandStats.ColumnsExpanded {
			return row, fmt.Errorf("experiments: reference kernel work diverged for %s: %d cells/%d columns vs %d/%d",
				q.ID, refStats.CellsComputed, refStats.ColumnsExpanded, bandStats.CellsComputed, bandStats.ColumnsExpanded)
		}
		row.Hits += int64(len(band))
		row.BandCells += bandStats.CellsComputed
		row.FullCells += fullStats.CellsComputed
		row.Columns += bandStats.ColumnsExpanded
	}
	n := time.Duration(len(lab.Queries))
	if n > 0 {
		row.BandTime /= n
		row.FullTime /= n
		row.RefTime /= n
	}
	if row.FullCells > 0 {
		row.CellFraction = float64(row.BandCells) / float64(row.FullCells)
	}
	return row, nil
}

// RenderLiveBand writes the live-band ablation as a text table.
func RenderLiveBand(w io.Writer, row LiveBandRow) {
	fmt.Fprintln(w, "Live-band DP kernel — cells computed vs the exhaustive sweep (identical hits)")
	fmt.Fprintf(w, "%-14s %-14s %-14s %-16s %-16s %-10s %-8s\n",
		"band t/query", "ref t/query", "full t/query", "band cells", "full cells", "fraction", "hits")
	fmt.Fprintf(w, "%-14s %-14s %-14s %-16d %-16d %-10.4f %-8d\n",
		fmtDur(row.BandTime), fmtDur(row.RefTime), fmtDur(row.FullTime),
		row.BandCells, row.FullCells, row.CellFraction, row.Hits)
	fmt.Fprintln(w)
}

// ReadBenchJSON loads a benchmark report previously written by
// WriteBenchJSON (the checked-in BENCH_oasis.json trajectory file).
func ReadBenchJSON(path string) (BenchReport, error) {
	var report BenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return report, err
	}
	if err := json.Unmarshal(data, &report); err != nil {
		return report, fmt.Errorf("experiments: parsing %s: %w", path, err)
	}
	return report, nil
}

// CheckBandGate is the kernel regression gate: it compares the measured
// live-band time per query against the liveband/band record in the baseline
// report and fails when the current time exceeds budget (a ratio, e.g. 1.10
// for CI's 10% tolerance) times the recorded ns/op.  The measurement is
// single-threaded (one query at a time, no worker pool), so the comparison
// is meaningful across GOMAXPROCS values; the baseline's stamp is reported
// in the error for context anyway.
func CheckBandGate(row LiveBandRow, baselinePath string, budget float64) error {
	report, err := ReadBenchJSON(baselinePath)
	if err != nil {
		return err
	}
	for _, rec := range report.Records {
		if rec.Name != "liveband/band" {
			continue
		}
		if got := float64(row.BandTime); got > budget*rec.NsPerOp {
			return fmt.Errorf("experiments: live-band kernel regressed: %.0f ns/op, over %.2fx the recorded %.0f ns/op (%s, gomaxprocs %d)",
				got, budget, rec.NsPerOp, baselinePath, rec.GoMaxProcs)
		}
		return nil
	}
	return fmt.Errorf("experiments: no liveband/band record in %s to gate against", baselinePath)
}

// BenchRecord is one entry of the machine-readable benchmark trajectory file
// (BENCH_oasis.json): a named measurement with its primary latency and the
// paper's work counters, so the perf history can be tracked across PRs.
type BenchRecord struct {
	// Name identifies the measurement.  Current record families:
	//
	//	fig3/oasis-mem             mean OASIS query time, memory index
	//	sharded/shards=N           sequence-partitioned engine at N shards
	//	sharded/prefix/shards=N    prefix-partitioned subtree sharding at N
	//	                           shards (shared index; columns should stay
	//	                           ~flat vs the 1-shard baseline)
	//	liveband/band              banded DP kernel on the Figure-4 workload
	//	liveband/ref-kernel        scalar reference kernel ablation (same
	//	                           band, per-cell guarded sweep)
	//	liveband/full-sweep        exhaustive-sweep ablation of the same
	//	batch/...                  warm batch engine vs per-query setup
	Name string `json:"name"`
	// NsPerOp is the mean wall-clock nanoseconds per query.
	NsPerOp float64 `json:"ns_per_op"`
	// ColumnsExpanded / CellsComputed are the summed work counters for the
	// measured run (0 when the measurement does not track them).
	ColumnsExpanded int64 `json:"columns_expanded"`
	CellsComputed   int64 `json:"cells_computed"`
	// Extra carries measurement-specific values (speedups, fractions).
	Extra map[string]float64 `json:"extra,omitempty"`
	// GoMaxProcs records the parallelism the measurement ran under (stamped
	// by WriteBenchJSON), so trajectory tooling can tell a perf regression
	// from a CI runner with fewer cores — wall-clock comparisons are only
	// meaningful between records with matching values.
	GoMaxProcs int `json:"gomaxprocs"`
}

// BenchReport is the top-level BENCH_oasis.json document.
type BenchReport struct {
	// Generated records the configuration the numbers came from.
	Residues   int64         `json:"residues"`
	NumQueries int           `json:"num_queries"`
	EValue     float64       `json:"evalue"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Records    []BenchRecord `json:"records"`
}

// WriteBenchJSON writes the report to path (pretty-printed, trailing
// newline, suitable for checking in).  Every record is stamped with the
// report's GoMaxProcs so individual measurements stay comparable even when
// extracted from the document.
func WriteBenchJSON(path string, report BenchReport) error {
	for i := range report.Records {
		if report.Records[i].GoMaxProcs == 0 {
			report.Records[i].GoMaxProcs = report.GoMaxProcs
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
