package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestShardedExperiment(t *testing.T) {
	lab := newTinyLab(t)
	rows, err := Sharded(lab, []int{1, 2, 4}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Sequence mode at 1, 2, 4 shards plus prefix mode at 2 and 4 (the
	// 1-shard prefix run is skipped as identical to the baseline).
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	nPrefix := 0
	for i, r := range rows {
		if r.Hits != rows[0].Hits {
			t.Fatalf("row %d: %d hits, baseline reported %d (sharding changed results)", i, r.Hits, rows[0].Hits)
		}
		if r.QueryTime <= 0 || r.ColumnsExpanded <= 0 || r.CellsComputed <= 0 {
			t.Fatalf("row %d has empty measurements: %+v", i, r)
		}
		if r.Mode == "sequence" && r.Steals != 0 {
			t.Fatalf("row %d: sequence mode counted %d steals", i, r.Steals)
		}
		if r.Mode == "prefix" {
			nPrefix++
			// Queries that report every database sequence let the baseline
			// stop mid-queue, so exact column equality only holds on
			// non-saturated workloads (pinned in internal/shard's tests);
			// here the acceptance budget applies.
			if float64(r.ColumnsExpanded) > 1.05*float64(rows[0].ColumnsExpanded) {
				t.Fatalf("prefix row at %d shards expanded %d columns, over 1.05x baseline %d",
					r.Shards, r.ColumnsExpanded, rows[0].ColumnsExpanded)
			}
		}
	}
	if nPrefix != 2 {
		t.Fatalf("got %d prefix rows, want 2", nPrefix)
	}
	if rows[0].Mode != "sequence" || rows[0].Shards != 1 || rows[0].Speedup != 1 {
		t.Fatalf("baseline row malformed: %+v", rows[0])
	}
	if err := CheckPrefixColumns(rows, 1.05); err != nil {
		t.Fatalf("prefix column budget: %v", err)
	}
	if err := CheckPrefixColumns(rows[:3], 1.05); err == nil {
		t.Fatal("CheckPrefixColumns passed vacuously without prefix rows")
	}
	var buf bytes.Buffer
	RenderSharded(&buf, rows)
	if !strings.Contains(buf.String(), "prefix") {
		t.Fatal("render output missing prefix rows")
	}
}

func TestLiveBandExperiment(t *testing.T) {
	lab := newTinyLab(t)
	row, err := LiveBand(lab)
	if err != nil {
		t.Fatal(err)
	}
	if row.FullCells <= 0 || row.BandCells <= 0 {
		t.Fatalf("empty cell counters: %+v", row)
	}
	if row.BandCells > row.FullCells {
		t.Fatalf("band computed more cells (%d) than the full sweep (%d)", row.BandCells, row.FullCells)
	}
	if row.CellFraction <= 0 || row.CellFraction > 1 {
		t.Fatalf("cell fraction out of range: %v", row.CellFraction)
	}
	if row.RefTime <= 0 {
		t.Fatalf("reference-kernel ablation not measured: %+v", row)
	}
	var buf bytes.Buffer
	RenderLiveBand(&buf, row)
	if !strings.Contains(buf.String(), "fraction") {
		t.Fatal("render output missing header")
	}
}

func TestCheckBandGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	report := BenchReport{
		Residues: 1000, NumQueries: 3, GoMaxProcs: 1,
		Records: []BenchRecord{{Name: "liveband/band", NsPerOp: 1e6}},
	}
	if err := WriteBenchJSON(path, report); err != nil {
		t.Fatal(err)
	}
	within := LiveBandRow{BandTime: 1_050_000} // 1.05x the baseline
	if err := CheckBandGate(within, path, 1.10); err != nil {
		t.Fatalf("gate failed inside the budget: %v", err)
	}
	over := LiveBandRow{BandTime: 1_200_000} // 1.20x
	if err := CheckBandGate(over, path, 1.10); err == nil {
		t.Fatal("gate passed a 20% regression at a 1.10 budget")
	}
	empty := BenchReport{Records: []BenchRecord{{Name: "fig3/oasis-mem", NsPerOp: 1}}}
	if err := WriteBenchJSON(path, empty); err != nil {
		t.Fatal(err)
	}
	if err := CheckBandGate(within, path, 1.10); err == nil {
		t.Fatal("gate passed vacuously without a liveband/band record")
	}
	if err := CheckBandGate(within, filepath.Join(t.TempDir(), "missing.json"), 1.10); err == nil {
		t.Fatal("gate passed with a missing baseline file")
	}
}

func TestWriteBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	report := BenchReport{
		Residues: 1000, NumQueries: 3, EValue: 20000, GoMaxProcs: 1,
		Records: []BenchRecord{{
			Name: "sharded/shards=4", NsPerOp: 1.5e6,
			ColumnsExpanded: 10, CellsComputed: 100,
			Extra: map[string]float64{"speedup": 2.0},
		}},
	}
	if err := WriteBenchJSON(path, report); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got BenchReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 1 || got.Records[0].Name != "sharded/shards=4" ||
		got.Records[0].CellsComputed != 100 || got.Records[0].Extra["speedup"] != 2.0 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}
