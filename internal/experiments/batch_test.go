package experiments

import (
	"runtime"
	"testing"
)

// TestBatchExperiment runs the batch-engine experiment on a tiny workload and
// checks its structural invariants: three modes, identical warm hit counts,
// and a warm speedup over per-query engine setup.
func TestBatchExperiment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalResidues = 20_000
	cfg.NumQueries = 6
	lab, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()

	rows, err := Batch(lab, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0].Mode != "cold-setup" || rows[1].Mode != "warm-sequential" || rows[2].Mode != "warm-batch" {
		t.Fatalf("unexpected modes: %v, %v, %v", rows[0].Mode, rows[1].Mode, rows[2].Mode)
	}
	if rows[1].Hits != rows[2].Hits {
		t.Fatalf("warm modes disagree on hits: %d vs %d", rows[1].Hits, rows[2].Hits)
	}
	for _, r := range rows {
		if r.Queries <= 0 || r.QueriesPerSec <= 0 {
			t.Fatalf("row %q has no throughput: %+v", r.Mode, r)
		}
	}
	// The warm engine must beat per-query setup (the tentpole's reason to
	// exist); on any real workload the margin is far larger than 1x.  The
	// wall-clock assertion is meaningless on a single-CPU runner, where
	// scheduling noise dominates the margin.
	if runtime.GOMAXPROCS(0) == 1 {
		t.Skip("skipping wall-clock speedup gate at GOMAXPROCS=1")
	}
	if rows[1].Speedup <= 1 {
		t.Fatalf("warm-sequential speedup %.2f, want > 1", rows[1].Speedup)
	}
}
