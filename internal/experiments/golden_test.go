package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenHit is one hit of the golden record, trimmed to the fields the
// search contract guarantees deterministically.
type goldenHit struct {
	SeqID     string `json:"seq_id"`
	SeqIndex  int    `json:"seq_index"`
	Score     int    `json:"score"`
	QueryEnd  int    `json:"query_end"`
	TargetEnd int    `json:"target_end"`
}

// goldenQuery freezes one Figure-4 workload query: its hits and the paper's
// work counters, so any kernel change that silently alters results or
// filtering behaviour fails this test.
type goldenQuery struct {
	ID              string      `json:"id"`
	Length          int         `json:"length"`
	MinScore        int         `json:"min_score"`
	TotalHits       int         `json:"total_hits"`
	TopHits         []goldenHit `json:"top_hits"` // first (strongest) 25
	ColumnsExpanded int64       `json:"columns_expanded"`
	CellsComputed   int64       `json:"cells_computed"`
	NodesExpanded   int64       `json:"nodes_expanded"`
}

type goldenFile struct {
	Residues int64         `json:"residues"`
	EValue   float64       `json:"evalue"`
	Seed     int64         `json:"seed"`
	Queries  []goldenQuery `json:"queries"`
}

// goldenConfig is a scaled-down Figure-4 workload: small enough to run in CI,
// large enough that every query has real hit structure.  Changing it
// invalidates the golden (regenerate with -update).
func goldenConfig() Config {
	cfg := DefaultConfig()
	cfg.TotalResidues = 30_000
	cfg.NumQueries = 6
	return cfg
}

// TestFigure4Golden runs the Figure-4 filtering workload against the
// committed golden record: per-query hits (identity, score, alignment
// endpoints, order) and the CellsComputed/ColumnsExpanded work counters.
// Regenerate with:
//
//	go test ./internal/experiments -run TestFigure4Golden -update
func TestFigure4Golden(t *testing.T) {
	lab, err := NewLab(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()

	got := goldenFile{
		Residues: lab.DB.TotalResidues(),
		EValue:   lab.Config.EValue,
		Seed:     lab.Config.Seed,
	}
	for _, q := range lab.Queries {
		minScore := lab.minScoreFor(lab.Config.EValue, len(q.Residues))
		var st core.Stats
		hits, err := core.SearchAll(lab.Mem, q.Residues, core.Options{
			Scheme: lab.Scheme, MinScore: minScore, Stats: &st,
		})
		if err != nil {
			t.Fatal(err)
		}
		gq := goldenQuery{
			ID:              q.ID,
			Length:          len(q.Residues),
			MinScore:        minScore,
			TotalHits:       len(hits),
			ColumnsExpanded: st.ColumnsExpanded,
			CellsComputed:   st.CellsComputed,
			NodesExpanded:   st.NodesExpanded,
		}
		for i, h := range hits {
			if i >= 25 {
				break
			}
			gq.TopHits = append(gq.TopHits, goldenHit{
				SeqID: h.SeqID, SeqIndex: h.SeqIndex, Score: h.Score,
				QueryEnd: h.QueryEnd, TargetEnd: h.TargetEnd,
			})
		}
		got.Queries = append(got.Queries, gq)
	}

	path := filepath.Join("testdata", "figure4_golden.json")
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d queries)", path, len(got.Queries))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", path, err)
	}
	if got.Residues != want.Residues || got.EValue != want.EValue || got.Seed != want.Seed {
		t.Fatalf("workload shape changed: got %d residues E=%v seed=%d, golden has %d/%v/%d — regenerate with -update",
			got.Residues, got.EValue, got.Seed, want.Residues, want.EValue, want.Seed)
	}
	if len(got.Queries) != len(want.Queries) {
		t.Fatalf("%d queries, golden has %d", len(got.Queries), len(want.Queries))
	}
	for i, gq := range got.Queries {
		wq := want.Queries[i]
		if gq.ID != wq.ID || gq.Length != wq.Length || gq.MinScore != wq.MinScore {
			t.Errorf("query %d identity changed: got %s/%d/%d, want %s/%d/%d",
				i, gq.ID, gq.Length, gq.MinScore, wq.ID, wq.Length, wq.MinScore)
			continue
		}
		if gq.TotalHits != wq.TotalHits {
			t.Errorf("query %s: %d hits, golden has %d", gq.ID, gq.TotalHits, wq.TotalHits)
		}
		if gq.ColumnsExpanded != wq.ColumnsExpanded {
			t.Errorf("query %s: ColumnsExpanded %d, golden has %d (filtering behaviour changed)",
				gq.ID, gq.ColumnsExpanded, wq.ColumnsExpanded)
		}
		if gq.CellsComputed != wq.CellsComputed {
			t.Errorf("query %s: CellsComputed %d, golden has %d (kernel behaviour changed)",
				gq.ID, gq.CellsComputed, wq.CellsComputed)
		}
		if gq.NodesExpanded != wq.NodesExpanded {
			t.Errorf("query %s: NodesExpanded %d, golden has %d", gq.ID, gq.NodesExpanded, wq.NodesExpanded)
		}
		if len(gq.TopHits) != len(wq.TopHits) {
			t.Errorf("query %s: %d top hits, golden has %d", gq.ID, len(gq.TopHits), len(wq.TopHits))
			continue
		}
		for j := range gq.TopHits {
			if gq.TopHits[j] != wq.TopHits[j] {
				t.Errorf("query %s hit %d: got %+v, golden has %+v", gq.ID, j, gq.TopHits[j], wq.TopHits[j])
			}
		}
	}
}

// TestFigure4GoldenEngineAgreement cross-checks the committed golden against
// the warm batch engine: per-query hit counts and the strongest hit must
// match what the golden records for the single-index search (the engine path
// must not drift from the core path).
func TestFigure4GoldenEngineAgreement(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "figure4_golden.json"))
	if err != nil {
		t.Skipf("no golden file: %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	lab, err := NewLab(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	rows, err := Batch(lab, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	var goldenTotal int64
	for _, q := range want.Queries {
		goldenTotal += int64(q.TotalHits)
	}
	// rows[1] and rows[2] are the warm modes over the full workload.
	for _, r := range rows[1:] {
		if r.Hits != goldenTotal {
			t.Errorf("%s reported %d hits, golden records %d", r.Mode, r.Hits, goldenTotal)
		}
	}
}
