package experiments

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/shard"
)

// DiskRow is one point of the disk-vs-memory sharded serving experiment: the
// whole query workload run through a sharded engine at one shard count, with
// the shards either in-memory suffix trees or per-shard disk indexes read
// through per-shard buffer pools (the paper's Section 3.4 storage story
// meeting the repo's sharded engine).
type DiskRow struct {
	// Mode is "memory" (in-memory per-shard indexes) or "disk" (per-shard
	// diskst indexes, one buffer pool each).
	Mode    string
	Shards  int
	Workers int
	// Setup is the one-off cost of making the engine servable: index
	// construction for memory mode, writing the sharded index files for
	// disk mode.
	Setup time.Duration
	// ColdOpen is the cost of bringing a prepared engine to its first
	// result: for disk mode, opening the manifest and shard files plus the
	// first query through entirely cold buffer pools (warm-up disabled); for
	// memory mode, the first query on the freshly built engine.
	ColdOpen time.Duration
	// WarmOpen is the disk-mode open-to-first-result cost with the default
	// open-time buffer-pool warm-up: the shard headers' hottest pages are
	// prefetched before the engine is handed out, so the first query starts
	// against a primed pool (disk mode only; zero for memory mode).
	WarmOpen time.Duration
	// QueryTime is the mean warm per-query time over the full workload.
	QueryTime time.Duration
	// QueriesPerSec is the warm serving throughput.
	QueriesPerSec float64
	// Hits is the total number of sequences reported (must match across
	// modes and shard counts).
	Hits int64
	// HitRatio is the aggregate buffer-pool hit ratio across shards after
	// the workload (disk mode only).
	HitRatio float64
}

// Disk measures serving the workload from per-shard disk indexes against
// in-memory shards at matched shard counts.  Every row must report the same
// hit total; a mismatch is an error because the storage layer must never
// change results.  poolBytes is the per-shard buffer-pool capacity
// (<= 0 selects the diskst default).
func Disk(lab *Lab, shardCounts []int, workers int, poolBytes int64) ([]DiskRow, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	var rows []DiskRow
	runWorkload := func(eng *shard.Engine) (time.Duration, int64, error) {
		var hits int64
		start := time.Now()
		for _, q := range lab.Queries {
			minScore := lab.minScoreFor(lab.Config.EValue, len(q.Residues))
			err := eng.Search(q.Residues, core.Options{Scheme: lab.Scheme, MinScore: minScore},
				func(core.Hit) bool { hits++; return true })
			if err != nil {
				return 0, 0, err
			}
		}
		return time.Since(start), hits, nil
	}
	firstQuery := func(eng *shard.Engine) error {
		q := lab.Queries[0]
		minScore := lab.minScoreFor(lab.Config.EValue, len(q.Residues))
		return eng.Search(q.Residues, core.Options{Scheme: lab.Scheme, MinScore: minScore},
			func(core.Hit) bool { return true })
	}
	check := func(row DiskRow) error {
		if len(rows) > 0 && row.Hits != rows[0].Hits {
			return fmt.Errorf("experiments: %s mode at %d shards reported %d hits, baseline %d",
				row.Mode, row.Shards, row.Hits, rows[0].Hits)
		}
		rows = append(rows, row)
		return nil
	}

	for _, n := range shardCounts {
		// Memory: the engine the batch server uses today.
		setupStart := time.Now()
		mem, err := shard.NewEngine(lab.DB, shard.Options{Shards: n, Workers: workers})
		if err != nil {
			return nil, err
		}
		setup := time.Since(setupStart)
		coldStart := time.Now()
		if err := firstQuery(mem); err != nil {
			return nil, err
		}
		cold := time.Since(coldStart)
		elapsed, hits, err := runWorkload(mem)
		if err != nil {
			return nil, err
		}
		if err := check(DiskRow{
			Mode: "memory", Shards: mem.NumShards(), Workers: mem.Workers(),
			Setup: setup, ColdOpen: cold,
			QueryTime:     elapsed / time.Duration(len(lab.Queries)),
			QueriesPerSec: float64(len(lab.Queries)) / elapsed.Seconds(),
			Hits:          hits,
		}); err != nil {
			return nil, err
		}

		// Disk: the same shard count served from per-shard index files, one
		// buffer pool per shard.
		dir := filepath.Join(filepath.Dir(lab.IndexPath), fmt.Sprintf("sharded-%d", n))
		setupStart = time.Now()
		if _, _, err := diskst.BuildSharded(dir, lab.DB, diskst.ShardedBuildOptions{
			WriteOptions: diskst.WriteOptions{BlockSize: lab.Config.BlockSize},
			Shards:       n,
		}); err != nil {
			return nil, err
		}
		setup = time.Since(setupStart)
		// Cold open: warm-up disabled, so the first query pays every page
		// fault itself.  The engine is closed again — it exists only to
		// measure the baseline the warm-up is supposed to beat.
		coldStart = time.Now()
		coldEng, err := shard.OpenDiskEngine(dir, shard.DiskOptions{
			Workers: workers, PoolBytesPerShard: poolBytes, WarmupPages: -1,
		})
		if err != nil {
			return nil, err
		}
		if err := firstQuery(coldEng); err != nil {
			coldEng.Close()
			return nil, err
		}
		cold = time.Since(coldStart)
		if err := coldEng.Close(); err != nil {
			return nil, err
		}
		// Warm open: the default open-time warm-up prefetches each shard's
		// leading internal pages before the engine is handed out.
		warmStart := time.Now()
		disk, err := shard.OpenDiskEngine(dir, shard.DiskOptions{Workers: workers, PoolBytesPerShard: poolBytes})
		if err != nil {
			return nil, err
		}
		if err := firstQuery(disk); err != nil {
			disk.Close()
			return nil, err
		}
		warm := time.Since(warmStart)
		elapsed, hits, err = runWorkload(disk)
		if err != nil {
			disk.Close()
			return nil, err
		}
		var requests, poolHits int64
		for _, ps := range disk.Disk().PoolStats() {
			requests += ps.Requests
			poolHits += ps.Hits
		}
		row := DiskRow{
			Mode: "disk", Shards: disk.NumShards(), Workers: disk.Workers(),
			Setup: setup, ColdOpen: cold, WarmOpen: warm,
			QueryTime:     elapsed / time.Duration(len(lab.Queries)),
			QueriesPerSec: float64(len(lab.Queries)) / elapsed.Seconds(),
			Hits:          hits,
		}
		if requests > 0 {
			row.HitRatio = float64(poolHits) / float64(requests)
		}
		if err := disk.Close(); err != nil {
			return nil, err
		}
		if err := check(row); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RenderDisk writes the disk-vs-memory experiment as a text table.
func RenderDisk(w io.Writer, rows []DiskRow) {
	fmt.Fprintln(w, "Disk-backed shards — per-shard buffer pools vs in-memory shards (same hits)")
	fmt.Fprintf(w, "%-8s %-8s %-8s %-12s %-12s %-12s %-14s %-12s %-10s %-10s\n",
		"mode", "shards", "workers", "setup", "cold-open", "warm-open", "time/query", "queries/s", "hits", "pool-hit%")
	for _, r := range rows {
		hitRatio, warmOpen := "-", "-"
		if r.Mode == "disk" {
			hitRatio = fmt.Sprintf("%.1f", r.HitRatio*100)
			warmOpen = fmtDur(r.WarmOpen)
		}
		fmt.Fprintf(w, "%-8s %-8d %-8d %-12s %-12s %-12s %-14s %-12.2f %-10d %-10s\n",
			r.Mode, r.Shards, r.Workers, fmtDur(r.Setup), fmtDur(r.ColdOpen), warmOpen,
			fmtDur(r.QueryTime), r.QueriesPerSec, r.Hits, hitRatio)
	}
	fmt.Fprintln(w)
}
