package experiments

import "testing"

// TestCacheExperiment runs the result-cache experiment on a tiny workload
// and checks its structural invariants: off/on row pairs per duplicate
// fraction, identical hit counts between modes (the cache's equivalence
// guarantee), hits on duplicate-bearing streams, and hit rate tracking the
// duplicate fraction.
func TestCacheExperiment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalResidues = 20_000
	cfg.NumQueries = 6
	lab, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()

	dups := []int{0, 50, 90}
	rows, err := Cache(lab, 2, 0, 2, 8<<20, dups)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(dups) {
		t.Fatalf("got %d rows, want %d", len(rows), 2*len(dups))
	}
	for i, dup := range dups {
		off, on := rows[2*i], rows[2*i+1]
		if off.Mode != "cache-off" || on.Mode != "cache-on" || off.DupPercent != dup || on.DupPercent != dup {
			t.Fatalf("row pair %d: %+v / %+v", i, off, on)
		}
		if off.Hits != on.Hits {
			t.Fatalf("dup=%d: cache changed the hit count (%d vs %d)", dup, off.Hits, on.Hits)
		}
		if on.Queries != off.Queries || on.Queries <= 0 {
			t.Fatalf("dup=%d: stream sizes differ: %+v / %+v", dup, off, on)
		}
		wantDup := on.Queries - on.Unique
		if dup == 0 && wantDup != 0 {
			t.Fatalf("dup=0 stream has %d duplicates", wantDup)
		}
		if dup > 0 {
			if on.CacheHits == 0 {
				t.Fatalf("dup=%d: no cache hits", dup)
			}
			// Every duplicate must have hit (sequential workers may vary
			// single-flight accounting, but hits >= duplicates holds).
			if on.CacheHits < int64(wantDup) {
				t.Fatalf("dup=%d: %d cache hits for %d duplicates", dup, on.CacheHits, wantDup)
			}
		}
	}
	if err := CheckCacheHits(rows, 0.3); err != nil {
		t.Fatalf("CheckCacheHits on a healthy run: %v", err)
	}
	if err := CheckCacheHits(rows, 1.5); err == nil {
		t.Fatal("CheckCacheHits accepted an impossible floor")
	}
	if err := CheckCacheHits(rows[:2], 0.1); err == nil {
		t.Fatal("CheckCacheHits passed with only the dup=0 rows")
	}
}
