package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/seq"
)

// IncrementalRow summarises the incremental-indexing experiment: a warm
// engine serving the Figure-4 query mix while a writer grows the corpus one
// sequence at a time through the LSM delta layer.
type IncrementalRow struct {
	// BaseSequences / InsertedSequences describe the corpus split: the engine
	// starts from the base and absorbs the rest online.
	BaseSequences     int
	InsertedSequences int
	// InsertsPerSec is the sustained write throughput under concurrent query
	// load; InsertTime is the mean wall-clock per Insert call.
	InsertsPerSec float64
	InsertTime    time.Duration
	// Staleness is the write-to-searchable latency, measured for sampled
	// inserts as the time from the Insert call until a fresh search reports
	// the new sequence (mean and max over the samples).
	StalenessMean time.Duration
	StalenessMax  time.Duration
	Samples       int
	// QueriesServed / QueriesPerSec describe the concurrent read side: the
	// Figure-4 query mix replayed in a loop for the duration of the writes.
	QueriesServed int64
	QueriesPerSec float64
	Hits          int64
	// Generation is the engine generation after the final insert;
	// CompactTime is the wall clock of the closing Compact call that folds
	// the memtable into the base.
	Generation  uint64
	CompactTime time.Duration
}

// Incremental measures the LSM-style mutable layer: an engine is built over
// all but holdout sequences of the workload database, the Figure-4 query mix
// is served in a loop, and the held-out sequences are inserted concurrently.
// Every sampleEvery-th insert is probed with a search drawn from the inserted
// sequence itself to measure staleness-to-searchable (the delta layer is
// published synchronously, so this bounds the reader-visible lag end to end).
func Incremental(lab *Lab, shards, shardWorkers, holdout int) (IncrementalRow, error) {
	if shards < 1 {
		shards = 1
	}
	all := lab.DB.Sequences()
	if holdout <= 0 {
		holdout = len(all) / 5
	}
	if holdout < 1 || holdout >= len(all) {
		return IncrementalRow{}, fmt.Errorf("experiments: holdout %d outside 1..%d", holdout, len(all)-1)
	}
	base := all[:len(all)-holdout]
	inserts := all[len(all)-holdout:]
	baseDB, err := seq.NewDatabase(lab.DB.Alphabet(), base)
	if err != nil {
		return IncrementalRow{}, err
	}
	eng, err := engine.New(baseDB, engine.Options{Shards: shards, ShardWorkers: shardWorkers})
	if err != nil {
		return IncrementalRow{}, err
	}
	defer eng.Close()

	// Reader side: replay the Figure-4 query mix until the writer finishes.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		served, hits atomic.Int64
		wg           sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ctx.Err() == nil; i++ {
			q := lab.Queries[i%len(lab.Queries)]
			query := engine.Query{
				ID:       q.ID,
				Residues: q.Residues,
				Options: core.Options{
					Scheme:   lab.Scheme,
					MinScore: lab.minScoreFor(lab.Config.EValue, len(q.Residues)),
				},
			}
			if _, err := eng.Search(ctx, query, func(core.Hit) bool {
				hits.Add(1)
				return true
			}); err != nil {
				return
			}
			served.Add(1)
		}
	}()

	// Writer side: insert the holdout one sequence at a time, sampling the
	// write-to-searchable latency with a self-probe every few inserts.
	const sampleEvery = 8
	var (
		stalenessSum time.Duration
		stalenessMax time.Duration
		samples      int
	)
	writeStart := time.Now()
	for i, s := range inserts {
		insertStart := time.Now()
		if _, err := eng.Insert(s.ID, s.Residues); err != nil {
			cancel()
			wg.Wait()
			return IncrementalRow{}, fmt.Errorf("experiments: insert %s: %w", s.ID, err)
		}
		if i%sampleEvery != 0 {
			continue
		}
		// Probe with a window of the inserted sequence: an exact self-match
		// scores far above the threshold, so the probe finding the new ID
		// proves the sequence is searchable.
		probe := s.Residues
		if len(probe) > 16 {
			probe = probe[len(probe)/2 : len(probe)/2+16]
		}
		found := false
		_, err := eng.Search(context.Background(), engine.Query{
			ID:       "probe",
			Residues: probe,
			Options: core.Options{
				Scheme:   lab.Scheme,
				MinScore: lab.minScoreFor(lab.Config.EValue, len(probe)),
			},
		}, func(h core.Hit) bool {
			if h.SeqID == s.ID {
				found = true
				return false
			}
			return true
		})
		if err != nil {
			cancel()
			wg.Wait()
			return IncrementalRow{}, fmt.Errorf("experiments: staleness probe for %s: %w", s.ID, err)
		}
		if !found {
			cancel()
			wg.Wait()
			return IncrementalRow{}, fmt.Errorf("experiments: inserted sequence %s not searchable", s.ID)
		}
		lag := time.Since(insertStart)
		stalenessSum += lag
		if lag > stalenessMax {
			stalenessMax = lag
		}
		samples++
	}
	writeElapsed := time.Since(writeStart)
	cancel()
	wg.Wait()

	compactStart := time.Now()
	gen, err := eng.Compact()
	if err != nil {
		return IncrementalRow{}, fmt.Errorf("experiments: closing compact: %w", err)
	}
	row := IncrementalRow{
		BaseSequences:     len(base),
		InsertedSequences: len(inserts),
		InsertsPerSec:     float64(len(inserts)) / writeElapsed.Seconds(),
		InsertTime:        writeElapsed / time.Duration(len(inserts)),
		StalenessMean:     stalenessSum / time.Duration(samples),
		StalenessMax:      stalenessMax,
		Samples:           samples,
		QueriesServed:     served.Load(),
		QueriesPerSec:     float64(served.Load()) / writeElapsed.Seconds(),
		Hits:              hits.Load(),
		Generation:        gen,
		CompactTime:       time.Since(compactStart),
	}
	return row, nil
}

// RenderIncremental writes the incremental-indexing experiment as text.
func RenderIncremental(w io.Writer, row IncrementalRow) {
	fmt.Fprintln(w, "Incremental indexing — insert throughput and staleness under concurrent query load")
	fmt.Fprintf(w, "%-9s %-9s %-11s %-12s %-12s %-12s %-12s %-10s\n",
		"base", "inserted", "inserts/s", "t/insert", "staleness", "stale-max", "queries/s", "compact")
	fmt.Fprintf(w, "%-9d %-9d %-11.1f %-12s %-12s %-12s %-12.1f %-10s\n",
		row.BaseSequences, row.InsertedSequences, row.InsertsPerSec, fmtDur(row.InsertTime),
		fmtDur(row.StalenessMean), fmtDur(row.StalenessMax), row.QueriesPerSec, fmtDur(row.CompactTime))
	fmt.Fprintf(w, "served %d queries (%d hits) during the write phase; final generation %d\n\n",
		row.QueriesServed, row.Hits, row.Generation)
}
