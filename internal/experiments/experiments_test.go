package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/seq"
)

// tinyConfig keeps experiment tests fast while still exercising every code
// path.
func tinyConfig() Config {
	return Config{
		TotalResidues:   25_000,
		NumQueries:      10,
		EValue:          20000,
		MatrixName:      "PAM30",
		GapPenalty:      -10,
		BlockSize:       512,
		BufferPoolBytes: 8 << 20,
		Seed:            99,
	}
}

func newTinyLab(t *testing.T) *Lab {
	t.Helper()
	cfg := tinyConfig()
	cfg.Dir = t.TempDir()
	lab, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lab.Close)
	return lab
}

func TestLabSetup(t *testing.T) {
	lab := newTinyLab(t)
	if lab.DB.NumSequences() == 0 || len(lab.Queries) != 10 {
		t.Fatalf("lab setup wrong: %d sequences, %d queries", lab.DB.NumSequences(), len(lab.Queries))
	}
	if lab.BuildStats.BytesPerSymbol <= 0 {
		t.Fatal("missing build stats")
	}
	if !strings.Contains(lab.Summary(), "queries") {
		t.Fatal("summary missing content")
	}
	if _, err := NewLab(Config{MatrixName: "NOSUCH"}); err == nil {
		t.Fatal("unknown matrix should be rejected")
	}
}

func TestFigure3And4And5(t *testing.T) {
	lab := newTinyLab(t)

	f3, err := Figure3(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3) == 0 {
		t.Fatal("Figure 3 produced no rows")
	}
	var oasisTotal, swTotal float64
	for _, r := range f3 {
		if r.NumQueries <= 0 {
			t.Fatalf("row without queries: %+v", r)
		}
		oasisTotal += float64(r.OASISTime) * float64(r.NumQueries)
		swTotal += float64(r.SWTime) * float64(r.NumQueries)
	}
	// The headline claim: OASIS is faster than S-W overall on the short
	// query workload (the paper reports an order of magnitude; at this tiny
	// scale we only assert the direction).
	if oasisTotal >= swTotal {
		t.Logf("warning: OASIS total %.0f not below S-W total %.0f at tiny scale", oasisTotal, swTotal)
	}

	f4, err := Figure4(lab)
	if err != nil {
		t.Fatal(err)
	}
	totO, totS := 0.0, 0.0
	for _, r := range f4 {
		if r.OASISColumns < 0 || r.SWColumns <= 0 {
			t.Fatalf("bad figure 4 row: %+v", r)
		}
		totO += r.OASISColumns * float64(r.NumQueries)
		totS += r.SWColumns * float64(r.NumQueries)
	}
	// Filtering: OASIS must expand fewer columns than S-W overall (the
	// paper reports 3.9% on average, 18.5% worst case).
	if totO >= totS {
		t.Fatalf("OASIS expanded %.0f columns, S-W %.0f — no filtering", totO, totS)
	}

	f5, err := Figure5(lab)
	if err != nil {
		t.Fatal(err)
	}
	sumOASIS, sumBLAST := 0.0, 0.0
	for _, r := range f5 {
		sumOASIS += r.OASISMatches * float64(r.NumQueries)
		sumBLAST += r.BLASTMatches * float64(r.NumQueries)
	}
	if sumOASIS < sumBLAST {
		t.Fatalf("OASIS found fewer matches (%.0f) than the heuristic (%.0f)", sumOASIS, sumBLAST)
	}

	var buf bytes.Buffer
	RenderFigure3(&buf, f3)
	RenderFigure4(&buf, f4)
	RenderFigure5(&buf, f5)
	for _, want := range []string{"Figure 3", "Figure 4", "Figure 5", "fraction"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("rendered output missing %q", want)
		}
	}
}

func TestFigure6(t *testing.T) {
	lab := newTinyLab(t)
	rows, err := Figure6(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		// E=1 is more selective: it can never return more hits than
		// E=20000.
		if r.HitsE1 > r.HitsELarge {
			t.Fatalf("E=1 returned more hits than E=20000: %+v", r)
		}
	}
	var buf bytes.Buffer
	RenderFigure6(&buf, rows, lab.Config.EValue)
	if !strings.Contains(buf.String(), "selectivity") {
		t.Fatal("render missing header")
	}
}

func TestFigure7And8(t *testing.T) {
	lab := newTinyLab(t)
	fractions := []float64{0.05, 0.5, 1.0}
	f7, err := Figure7(lab, fractions)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7) != len(fractions) {
		t.Fatalf("expected %d rows, got %d", len(fractions), len(f7))
	}
	f8, err := Figure8(lab, fractions)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8) != len(fractions) {
		t.Fatalf("expected %d rows, got %d", len(fractions), len(f8))
	}
	// Hit ratios must be valid probabilities, and a pool that holds the
	// whole index must not have a lower internal-node hit ratio than the
	// smallest pool.
	for _, r := range f8 {
		for _, v := range []float64{r.SymbolsHitRatio, r.InternalHitRatio, r.LeafHitRatio} {
			if v < 0 || v > 1 {
				t.Fatalf("hit ratio out of range: %+v", r)
			}
		}
	}
	if f8[len(f8)-1].InternalHitRatio < f8[0].InternalHitRatio-0.05 {
		t.Fatalf("bigger pool produced a materially worse internal hit ratio: %+v", f8)
	}
	var buf bytes.Buffer
	RenderFigure7(&buf, f7)
	RenderFigure8(&buf, f8)
	if !strings.Contains(buf.String(), "buffer pool") {
		t.Fatal("render missing header")
	}
}

func TestFigure9(t *testing.T) {
	lab := newTinyLab(t)
	// Use a query taken from a planted motif so there are many results.
	rows, err := Figure9(lab, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Skip("selected query produced no hits at this scale")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Elapsed < rows[i-1].Elapsed {
			t.Fatalf("elapsed times not monotonic: %+v", rows)
		}
		if rows[i].Score > rows[i-1].Score {
			t.Fatalf("scores not descending: %+v", rows)
		}
		if rows[i].Rank != rows[i-1].Rank+1 {
			t.Fatalf("ranks not consecutive: %+v", rows)
		}
	}
	var buf bytes.Buffer
	RenderFigure9(&buf, rows)
	if !strings.Contains(buf.String(), "online") {
		t.Fatal("render missing header")
	}
	// An explicit query (the paper's example motif) must also work.
	explicit := seq.Protein.MustEncode("DKDGDGCITTKEL")
	if _, err := Figure9(lab, explicit); err != nil {
		t.Fatal(err)
	}
}

func TestTableSpace(t *testing.T) {
	lab := newTinyLab(t)
	row := TableSpace(lab)
	if row.BytesPerSymbol <= 0 || row.IndexBytes <= 0 {
		t.Fatalf("bad space row: %+v", row)
	}
	if row.SymbolsBytes+row.InternalBytes+row.LeafBytes > row.IndexBytes {
		t.Fatalf("region sizes exceed file size: %+v", row)
	}
	var buf bytes.Buffer
	RenderSpace(&buf, row)
	if !strings.Contains(buf.String(), "bytes per symbol") {
		t.Fatal("render missing header")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	d := DefaultConfig()
	if c.TotalResidues != d.TotalResidues || c.MatrixName != d.MatrixName || c.EValue != d.EValue {
		t.Fatalf("defaults not applied: %+v", c)
	}
}
