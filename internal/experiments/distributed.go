package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/retry"
	"repro/internal/seq"
	"repro/internal/shard"
)

// DistributedResult summarises a coordinator fan-out run over real loopback
// shard servers: throughput plus the robustness counters that show the
// replica sets absorbing faults (a replica is killed mid-run, so the
// failover count must be non-zero for the run to be meaningful).
type DistributedResult struct {
	Slices     int
	Replicas   int
	NumQueries int
	TotalHits  int
	// DegradedQueries counts queries that completed without a whole slice;
	// zero here means every mid-run failure was absorbed by failover.
	DegradedQueries int
	Elapsed         time.Duration
	QueriesPerSec   float64
	// HedgeWinRate is HedgeWins/Hedges (0 when no hedge fired).
	HedgeWinRate float64
	Remote       remote.MetricsSnapshot
}

// Distributed measures the coordinator serving path end to end: the lab
// corpus is split into contiguous slices, each slice is served by `replicas`
// loopback HTTP shard servers, and the whole query workload streams through
// a coordinator fan-out.  Halfway through, one replica of slice 0 is killed
// (listener and live connections closed) to force mid-stream failovers, and
// an aggressive hedge trigger exercises the tail-latency path.  The first
// query is verified hit-for-hit against the local in-memory index before the
// clock starts.
func Distributed(lab *Lab, slices, replicas int) (DistributedResult, error) {
	if slices < 2 {
		slices = 2
	}
	if replicas < 2 {
		// One replica per slice cannot demonstrate failover: killing it
		// would just degrade the slice.
		replicas = 2
	}
	n := lab.DB.NumSequences()
	if slices > n {
		return DistributedResult{}, fmt.Errorf("experiments: %d slices over %d sequences", slices, n)
	}

	var (
		topo    [][]string
		servers []*http.Server
		engines []*shard.Engine
	)
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for s := 0; s < slices; s++ {
		lo, hi := s*n/slices, (s+1)*n/slices
		seqs := make([]seq.Sequence, 0, hi-lo)
		for i := lo; i < hi; i++ {
			seqs = append(seqs, lab.DB.Sequence(i))
		}
		sliceDB, err := seq.NewDatabase(lab.DB.Alphabet(), seqs)
		if err != nil {
			return DistributedResult{}, err
		}
		eng, err := shard.NewEngine(sliceDB, shard.Options{Shards: 2})
		if err != nil {
			return DistributedResult{}, err
		}
		engines = append(engines, eng)
		// Replicas of one slice share the engine: what matters for the
		// robustness path is that they are distinct processes as far as the
		// client can tell (distinct listeners, distinct connections).
		rs := remote.NewServer(eng)
		addrs := make([]string, 0, replicas)
		for r := 0; r < replicas; r++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return DistributedResult{}, err
			}
			srv := &http.Server{Handler: rs}
			go func() { _ = srv.Serve(ln) }()
			servers = append(servers, srv)
			addrs = append(addrs, ln.Addr().String())
		}
		topo = append(topo, addrs)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	co, err := remote.Open(ctx, remote.Config{
		Slices:      topo,
		MaxAttempts: 2 * replicas,
		Retry:       retry.Default(2*replicas, time.Millisecond, 20*time.Millisecond),
		// Aggressive fixed trigger so the run actually exercises hedging on
		// a fast loopback; production uses the adaptive p95 default.
		HedgeAfter: 2 * time.Millisecond,
	})
	if err != nil {
		return DistributedResult{}, err
	}
	defer co.Close()
	eng := co.Engine()

	search := func(q []byte, st *core.Stats) (int, error) {
		hits := 0
		opts := core.Options{Scheme: lab.Scheme, MinScore: lab.minScoreFor(lab.Config.EValue, len(q)), Stats: st}
		err := eng.Search(q, opts, func(core.Hit) bool {
			hits++
			return true
		})
		return hits, err
	}

	// Correctness gate before timing: the fan-out agrees with the local
	// index on the first query.
	q0 := lab.Queries[0]
	localHits, err := core.SearchAll(lab.Mem, q0.Residues, core.Options{
		Scheme: lab.Scheme, MinScore: lab.minScoreFor(lab.Config.EValue, len(q0.Residues)),
	})
	if err != nil {
		return DistributedResult{}, err
	}
	if got, err := search(q0.Residues, nil); err != nil {
		return DistributedResult{}, err
	} else if got != len(localHits) {
		return DistributedResult{}, fmt.Errorf("experiments: fan-out reported %d hits for query 0, local index %d", got, len(localHits))
	}

	kill := len(lab.Queries) / 2
	res := DistributedResult{Slices: slices, Replicas: replicas, NumQueries: len(lab.Queries)}
	start := time.Now()
	for i, q := range lab.Queries {
		if i == kill {
			// Kill slice 0's first replica: Close drops the listener AND the
			// connections it is mid-stream on, so in-flight and subsequent
			// queries must fail over to the surviving replica.
			_ = servers[0].Close()
		}
		var st core.Stats
		hits, err := search(q.Residues, &st)
		if err != nil {
			return DistributedResult{}, fmt.Errorf("experiments: query %d: %w", i, err)
		}
		res.TotalHits += hits
		if st.Degraded {
			res.DegradedQueries++
		}
	}
	res.Elapsed = time.Since(start)
	res.QueriesPerSec = float64(res.NumQueries) / res.Elapsed.Seconds()
	res.Remote = co.Metrics()
	if res.Remote.Hedges > 0 {
		res.HedgeWinRate = float64(res.Remote.HedgeWins) / float64(res.Remote.Hedges)
	}
	if res.Remote.Failovers == 0 {
		// The run proved nothing about robustness; refuse to report it as if
		// it had.
		return DistributedResult{}, fmt.Errorf("experiments: replica kill produced no failovers (remote=%+v)", res.Remote)
	}
	if res.DegradedQueries > 0 {
		return DistributedResult{}, fmt.Errorf("experiments: %d queries degraded despite a surviving replica", res.DegradedQueries)
	}
	return res, nil
}

// RenderDistributed writes the fan-out summary table.
func RenderDistributed(w io.Writer, r DistributedResult) {
	fmt.Fprintf(w, "Distributed serving: coordinator over %d slices x %d replicas (1 replica killed mid-run)\n", r.Slices, r.Replicas)
	fmt.Fprintf(w, "  %-28s %d\n", "queries", r.NumQueries)
	fmt.Fprintf(w, "  %-28s %d\n", "hits", r.TotalHits)
	fmt.Fprintf(w, "  %-28s %.1f\n", "queries/sec", r.QueriesPerSec)
	fmt.Fprintf(w, "  %-28s %d\n", "stream attempts", r.Remote.Attempts)
	fmt.Fprintf(w, "  %-28s %d\n", "retries", r.Remote.Retries)
	fmt.Fprintf(w, "  %-28s %d\n", "failovers", r.Remote.Failovers)
	fmt.Fprintf(w, "  %-28s %d (%.0f%% won)\n", "hedges", r.Remote.Hedges, 100*r.HedgeWinRate)
	fmt.Fprintf(w, "  %-28s %d\n", "degraded queries", r.DegradedQueries)
}
