package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// CacheRow is one (duplicate-fraction, mode) cell of the cross-query result
// cache experiment: the same repeated-query stream served by a warm engine
// with the cache disabled versus enabled.
type CacheRow struct {
	// DupPercent is the share of the stream that repeats an earlier query
	// (0 = every query unique).
	DupPercent int
	// Mode is "cache-off" or "cache-on".
	Mode string
	// Queries is the stream length; Unique how many distinct queries it holds.
	Queries int
	Unique  int
	// QueryTime is mean wall-clock per query; QueriesPerSec the throughput.
	QueryTime     time.Duration
	QueriesPerSec float64
	// Hits counts reported sequences across the stream (identical between
	// modes by the cache's equivalence guarantee).
	Hits int64
	// CacheHits/CacheMisses/HitRate are the cache counters (cache-on only).
	CacheHits   int64
	CacheMisses int64
	HitRate     float64
	// Speedup is this row's QueriesPerSec over the cache-off row at the
	// same duplicate fraction.
	Speedup float64
}

// cacheStream builds a deterministic repeated-query stream: nUnique distinct
// queries (each appearing at least once) padded with duplicates drawn
// uniformly from the pool, shuffled.  The duplicate fraction of the result
// is (len-nUnique)/len.
func cacheStream(lab *Lab, length, nUnique int, rng *rand.Rand) []engine.Query {
	pool := make([]engine.Query, nUnique)
	for i := 0; i < nUnique; i++ {
		q := lab.Queries[i%len(lab.Queries)]
		pool[i] = engine.Query{
			ID:       q.ID,
			Residues: q.Residues,
			Options: core.Options{
				Scheme:   lab.Scheme,
				MinScore: lab.minScoreFor(lab.Config.EValue, len(q.Residues)),
			},
		}
	}
	stream := make([]engine.Query, 0, length)
	stream = append(stream, pool...)
	for len(stream) < length {
		stream = append(stream, pool[rng.Intn(nUnique)])
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	return stream
}

// Cache measures what the cross-query result cache buys as a function of the
// stream's duplicate fraction: for each dupPercent it serves one shuffled
// repeated-query stream through SubmitBatch on a warm engine, cache off then
// on (fresh engines, so both start cold).  The achievable speedup is bounded
// by 1/(unique fraction) — at 50% duplicates a perfect cache tops out at 2x
// — so high-duplicate rows are where replay dominates.  cacheBytes <= 0
// selects 32 MB.
func Cache(lab *Lab, shards, shardWorkers, batchWorkers int, cacheBytes int64, dupPercents []int) ([]CacheRow, error) {
	if shards < 1 {
		shards = 1
	}
	if cacheBytes <= 0 {
		cacheBytes = 32 << 20
	}
	if len(dupPercents) == 0 {
		dupPercents = []int{0, 50, 80, 95}
	}
	ctx := context.Background()
	var rows []CacheRow
	for _, dup := range dupPercents {
		if dup < 0 || dup > 99 {
			return nil, fmt.Errorf("experiments: duplicate percent %d outside 0..99", dup)
		}
		// Size the stream so the unique pool fits the workload's distinct
		// queries: length = unique * 100/(100-dup), capped at 10x the
		// workload.
		nUnique := len(lab.Queries)
		length := nUnique * 100 / (100 - dup)
		if maxLen := 10 * len(lab.Queries); length > maxLen {
			length = maxLen
			nUnique = length * (100 - dup) / 100
			if nUnique < 1 {
				nUnique = 1
			}
		}
		rng := rand.New(rand.NewSource(lab.Config.Seed + int64(dup)))
		stream := cacheStream(lab, length, nUnique, rng)

		var offRow CacheRow
		for _, mode := range []string{"cache-off", "cache-on"} {
			opts := engine.Options{Shards: shards, ShardWorkers: shardWorkers, BatchWorkers: batchWorkers}
			if mode == "cache-on" {
				opts.CacheBytes = cacheBytes
			}
			eng, err := engine.New(lab.DB, opts)
			if err != nil {
				return nil, err
			}
			var hits int64
			start := time.Now()
			for r := range eng.SubmitBatch(ctx, stream) {
				if r.Done {
					if r.Err != nil {
						eng.Close()
						return nil, fmt.Errorf("experiments: cache %s dup=%d query %s: %w", mode, dup, r.QueryID, r.Err)
					}
					continue
				}
				hits++
			}
			elapsed := time.Since(start)
			row := CacheRow{
				DupPercent:    dup,
				Mode:          mode,
				Queries:       len(stream),
				Unique:        nUnique,
				QueryTime:     elapsed / time.Duration(len(stream)),
				QueriesPerSec: float64(len(stream)) / elapsed.Seconds(),
				Hits:          hits,
			}
			if cs := eng.Metrics().Cache; cs != nil {
				row.CacheHits = cs.Hits
				row.CacheMisses = cs.Misses
				row.HitRate = cs.HitRate
			}
			if err := eng.Close(); err != nil {
				return nil, err
			}
			if mode == "cache-off" {
				offRow = row
				row.Speedup = 1
			} else {
				row.Speedup = row.QueriesPerSec / offRow.QueriesPerSec
				if row.Hits != offRow.Hits {
					return nil, fmt.Errorf("experiments: cache-on reported %d hits at dup=%d, cache-off %d",
						row.Hits, dup, offRow.Hits)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// CheckCacheHits fails when the cache-on rows of a duplicate-bearing stream
// show a hit rate under floor (the CI smoke: repeated queries MUST hit).
func CheckCacheHits(rows []CacheRow, floor float64) error {
	checked := false
	for _, r := range rows {
		if r.Mode != "cache-on" || r.DupPercent == 0 {
			continue
		}
		checked = true
		if r.CacheHits == 0 {
			return fmt.Errorf("experiments: dup=%d%% stream produced no cache hits", r.DupPercent)
		}
		if r.HitRate < floor {
			return fmt.Errorf("experiments: dup=%d%% hit rate %.3f below floor %.3f", r.DupPercent, r.HitRate, floor)
		}
	}
	if !checked {
		return fmt.Errorf("experiments: no duplicate-bearing cache-on rows to check")
	}
	return nil
}

// RenderCache writes the cache experiment as a text table.
func RenderCache(w io.Writer, rows []CacheRow) {
	fmt.Fprintln(w, "Cross-query result cache — repeated-query stream, cache off vs on (same hits)")
	fmt.Fprintf(w, "%-6s %-11s %-9s %-8s %-12s %-12s %-10s %-9s %-9s\n",
		"dup%", "mode", "queries", "unique", "time/query", "queries/s", "hit-rate", "hits", "speedup")
	for _, r := range rows {
		hitRate := "-"
		if r.Mode == "cache-on" {
			hitRate = fmt.Sprintf("%.3f", r.HitRate)
		}
		fmt.Fprintf(w, "%-6d %-11s %-9d %-8d %-12s %-12.2f %-10s %-9d %-9.2f\n",
			r.DupPercent, r.Mode, r.Queries, r.Unique, fmtDur(r.QueryTime), r.QueriesPerSec, hitRate, r.Hits, r.Speedup)
	}
	fmt.Fprintln(w)
}
