package experiments

import "testing"

// TestIncrementalExperiment runs the incremental-indexing experiment on a
// tiny workload and checks its structural invariants: the holdout is
// absorbed, every staleness probe found its sequence (Incremental errors
// otherwise), and the closing compact folded the memtable.
func TestIncrementalExperiment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalResidues = 20_000
	cfg.NumQueries = 6
	lab, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()

	row, err := Incremental(lab, 2, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if row.InsertedSequences != 5 || row.BaseSequences == 0 {
		t.Fatalf("corpus split %d/%d, want 5 inserted", row.BaseSequences, row.InsertedSequences)
	}
	if row.InsertsPerSec <= 0 || row.InsertTime <= 0 {
		t.Fatalf("no insert throughput: %+v", row)
	}
	if row.Samples == 0 || row.StalenessMean <= 0 || row.StalenessMax < row.StalenessMean {
		t.Fatalf("staleness not measured: %+v", row)
	}
	// Every insert bumps the generation once, and the closing compact bumps
	// it once more.
	if row.Generation != uint64(row.InsertedSequences)+1 {
		t.Fatalf("generation %d after %d inserts + compact", row.Generation, row.InsertedSequences)
	}
}
