package experiments

import (
	"testing"

	"repro/internal/align"
	"repro/internal/core"
)

// BenchmarkOASISDiskVsMemVsSW is a development aid for profiling the relative
// cost of the three searchers on the experiment workload; run with
// -cpuprofile to see where OASIS spends its time.
func BenchmarkOASISDiskVsMemVsSW(b *testing.B) {
	cfg := DefaultConfig()
	cfg.TotalResidues = 300_000
	cfg.NumQueries = 12
	cfg.Dir = b.TempDir()
	lab, err := NewLab(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer lab.Close()
	disk, _, err := lab.openIndex(lab.Config.BufferPoolBytes)
	if err != nil {
		b.Fatal(err)
	}
	defer disk.Close()
	mem, err := core.BuildMemoryIndex(lab.DB)
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, f func(q []byte, minScore int)) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := lab.Queries[i%len(lab.Queries)]
			f(q.Residues, lab.minScoreFor(lab.Config.EValue, len(q.Residues)))
		}
	}
	b.Run("oasis-disk", func(b *testing.B) {
		run(b, func(q []byte, minScore int) {
			if _, err := core.SearchAll(disk, q, core.Options{Scheme: lab.Scheme, MinScore: minScore}); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("oasis-mem", func(b *testing.B) {
		run(b, func(q []byte, minScore int) {
			if _, err := core.SearchAll(mem, q, core.Options{Scheme: lab.Scheme, MinScore: minScore}); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("sw", func(b *testing.B) {
		run(b, func(q []byte, minScore int) {
			if _, err := align.SearchDatabase(lab.DB, q, lab.Scheme, align.Options{MinScore: minScore}); err != nil {
				b.Fatal(err)
			}
		})
	})
}
