package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/workload"
)

// RenderFigure3 writes Figure 3 as a text table.
func RenderFigure3(w io.Writer, rows []Figure3Row) {
	fmt.Fprintln(w, "Figure 3 — mean query time vs query length (OASIS / BLAST / S-W)")
	fmt.Fprintf(w, "%-6s %-8s %-14s %-14s %-14s %-14s %-12s\n",
		"qlen", "queries", "OASIS", "OASIS(disk)", "BLAST", "S-W", "S-W/OASIS")
	for _, r := range rows {
		ratio := 0.0
		if r.OASISTime > 0 {
			ratio = float64(r.SWTime) / float64(r.OASISTime)
		}
		fmt.Fprintf(w, "%-6d %-8d %-14s %-14s %-14s %-14s %-12.1f\n",
			r.QueryLength, r.NumQueries, fmtDur(r.OASISTime), fmtDur(r.OASISDiskTime),
			fmtDur(r.BLASTTime), fmtDur(r.SWTime), ratio)
	}
	fmt.Fprintln(w)
}

// RenderFigure4 writes Figure 4 as a text table.
func RenderFigure4(w io.Writer, rows []Figure4Row) {
	fmt.Fprintln(w, "Figure 4 — columns expanded vs query length (OASIS / S-W)")
	fmt.Fprintf(w, "%-10s %-8s %-16s %-16s %-10s\n", "qlen", "queries", "OASIS cols", "S-W cols", "fraction")
	var sumO, sumS float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-8d %-16.0f %-16.0f %-10.4f\n",
			r.QueryLength, r.NumQueries, r.OASISColumns, r.SWColumns, r.Fraction)
		sumO += r.OASISColumns * float64(r.NumQueries)
		sumS += r.SWColumns * float64(r.NumQueries)
	}
	if sumS > 0 {
		fmt.Fprintf(w, "overall fraction of S-W columns expanded by OASIS: %.4f\n", sumO/sumS)
	}
	fmt.Fprintln(w)
}

// RenderFigure5 writes Figure 5 as a text table.
func RenderFigure5(w io.Writer, rows []Figure5Row) {
	fmt.Fprintln(w, "Figure 5 — additional matches returned by OASIS relative to BLAST")
	fmt.Fprintf(w, "%-10s %-8s %-14s %-14s %-12s\n", "qlen", "queries", "OASIS hits", "BLAST hits", "additional%")
	var sumO, sumB float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-8d %-14.1f %-14.1f %-12.1f\n",
			r.QueryLength, r.NumQueries, r.OASISMatches, r.BLASTMatches, r.AdditionalPct)
		sumO += r.OASISMatches * float64(r.NumQueries)
		sumB += r.BLASTMatches * float64(r.NumQueries)
	}
	if sumB > 0 {
		fmt.Fprintf(w, "overall additional matches: %.1f%%\n", 100*(sumO-sumB)/sumB)
	}
	fmt.Fprintln(w)
}

// RenderFigure6 writes Figure 6 as a text table.
func RenderFigure6(w io.Writer, rows []Figure6Row, eLarge float64) {
	fmt.Fprintf(w, "Figure 6 — effect of selectivity (E=1 vs E=%g)\n", eLarge)
	fmt.Fprintf(w, "%-10s %-8s %-14s %-14s %-12s %-12s\n", "qlen", "queries", "time E=1", "time E=large", "hits E=1", "hits E=large")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-8d %-14s %-14s %-12.1f %-12.1f\n",
			r.QueryLength, r.NumQueries, fmtDur(r.TimeE1), fmtDur(r.TimeELarge), r.HitsE1, r.HitsELarge)
	}
	fmt.Fprintln(w)
}

// RenderFigure7 writes Figure 7 as a text table.
func RenderFigure7(w io.Writer, rows []Figure7Row) {
	fmt.Fprintln(w, "Figure 7 — mean query time vs buffer pool size")
	fmt.Fprintf(w, "%-14s %-14s %-14s\n", "pool bytes", "pool/index", "mean time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14d %-14.3f %-14s\n", r.PoolBytes, r.PoolFraction, fmtDur(r.MeanQueryTime))
	}
	fmt.Fprintln(w)
}

// RenderFigure8 writes Figure 8 as a text table.
func RenderFigure8(w io.Writer, rows []Figure8Row) {
	fmt.Fprintln(w, "Figure 8 — buffer hit ratio per index component vs buffer pool size")
	fmt.Fprintf(w, "%-14s %-14s %-10s %-10s %-10s\n", "pool bytes", "pool/index", "symbols", "internal", "leaves")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14d %-14.3f %-10.3f %-10.3f %-10.3f\n",
			r.PoolBytes, r.PoolFraction, r.SymbolsHitRatio, r.InternalHitRatio, r.LeafHitRatio)
	}
	fmt.Fprintln(w)
}

// RenderFigure9 writes Figure 9 as a text table (subsampled for long result
// streams).
func RenderFigure9(w io.Writer, rows []Figure9Row) {
	fmt.Fprintln(w, "Figure 9 — online behaviour: time at which each result is returned")
	fmt.Fprintf(w, "%-10s %-14s %-8s\n", "rank", "elapsed", "score")
	step := 1
	if len(rows) > 40 {
		step = len(rows) / 40
	}
	for i := 0; i < len(rows); i += step {
		r := rows[i]
		fmt.Fprintf(w, "%-10d %-14s %-8d\n", r.Rank, fmtDur(r.Elapsed), r.Score)
	}
	if len(rows) > 0 {
		last := rows[len(rows)-1]
		fmt.Fprintf(w, "total results: %d, last at %s\n", last.Rank, fmtDur(last.Elapsed))
	}
	fmt.Fprintln(w)
}

// RenderSpace writes the space-utilisation table.
func RenderSpace(w io.Writer, row SpaceRow) {
	fmt.Fprintln(w, "Space utilisation (Section 4.2 table)")
	fmt.Fprintf(w, "%-18s %-14s %-18s\n", "data set size", "index size", "bytes per symbol")
	fmt.Fprintf(w, "%-18d %-14d %-18.2f\n", row.DataSetSymbols, row.IndexBytes, row.BytesPerSymbol)
	fmt.Fprintf(w, "  symbols region:  %d bytes\n", row.SymbolsBytes)
	fmt.Fprintf(w, "  internal region: %d bytes\n", row.InternalBytes)
	fmt.Fprintf(w, "  leaf region:     %d bytes\n", row.LeafBytes)
	fmt.Fprintln(w)
}

// fmtDur renders durations with a stable precision suitable for tables.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

// Summary renders a one-paragraph description of the lab configuration.
func (l *Lab) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload: %d sequences, %d residues, %d queries (lengths %d-%d), matrix %s gap %d, E=%g, index %s (%.2f bytes/symbol)",
		l.DB.NumSequences(), l.DB.TotalResidues(), len(l.Queries),
		minQueryLen(l.Queries), maxQueryLen(l.Queries),
		l.Scheme.Matrix.Name(), l.Scheme.Gap, l.Config.EValue,
		l.IndexPath, l.BuildStats.BytesPerSymbol)
	return sb.String()
}

func minQueryLen(qs []workload.Query) int {
	if len(qs) == 0 {
		return 0
	}
	m := len(qs[0].Residues)
	for _, q := range qs {
		if len(q.Residues) < m {
			m = len(q.Residues)
		}
	}
	return m
}

func maxQueryLen(qs []workload.Query) int {
	m := 0
	for _, q := range qs {
		if len(q.Residues) > m {
			m = len(q.Residues)
		}
	}
	return m
}
