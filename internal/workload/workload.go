// Package workload generates the synthetic data sets that stand in for the
// paper's evaluation data (SWISS-PROT proteins, ProClass motif queries and
// the Drosophila nucleotide collection), as documented in DESIGN.md.
//
// Databases are generated from background residue frequencies with planted,
// mutated motif homologies so that query workloads have a realistic hit
// structure: a few strong matches per query, a long tail of weak ones, and
// many sequences with no meaningful alignment at all.  All generation is
// deterministic given the configured seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/score"
	"repro/internal/seq"
)

// ProteinConfig configures the synthetic protein database generator.
type ProteinConfig struct {
	// NumSequences is the number of protein sequences (SWISS-PROT has
	// ~100K; benchmarks use a scaled-down default).
	NumSequences int
	// MinLen/MaxLen bound sequence lengths (SWISS-PROT: 7..2048).
	MinLen, MaxLen int
	// MeanLen is the target mean sequence length (SWISS-PROT: ~400;
	// the scaled default is smaller to keep benchmarks fast).
	MeanLen int
	// NumFamilies is the number of motif families planted into the
	// database.
	NumFamilies int
	// FamilySize is the number of sequences that receive a (mutated) copy
	// of each family motif.
	FamilySize int
	// MotifMinLen/MotifMaxLen bound motif lengths (ProClass: 3..80).
	MotifMinLen, MotifMaxLen int
	// MutationRate is the per-residue probability that a planted motif
	// copy differs from the family motif.
	MutationRate float64
	// IndelRate is the per-residue probability of an insertion or deletion
	// in a planted motif copy.
	IndelRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultProteinConfig returns a laptop-scale stand-in for SWISS-PROT with
// roughly the requested total number of residues.
func DefaultProteinConfig(totalResidues int64) ProteinConfig {
	meanLen := 256
	n := int(totalResidues / int64(meanLen))
	if n < 10 {
		n = 10
	}
	return ProteinConfig{
		NumSequences: n,
		MinLen:       7,
		MaxLen:       2048,
		MeanLen:      meanLen,
		NumFamilies:  n/20 + 5,
		FamilySize:   6,
		MotifMinLen:  8,
		MotifMaxLen:  40,
		MutationRate: 0.15,
		IndelRate:    0.02,
		Seed:         1309,
	}
}

// Motif is a planted family motif and the database sequences that contain a
// mutated copy of it.
type Motif struct {
	// ID names the motif family.
	ID string
	// Residues is the encoded canonical motif.
	Residues []byte
	// Members lists the indexes of the sequences containing a copy.
	Members []int
}

// ProteinDatabase generates a SWISS-PROT-like database plus the list of
// planted motifs.
func ProteinDatabase(cfg ProteinConfig) (*seq.Database, []Motif, error) {
	if err := validateProteinConfig(&cfg); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	freqs := proteinBackground()
	sampler := newResidueSampler(seq.Protein, freqs)

	// Base sequences.
	seqs := make([]seq.Sequence, cfg.NumSequences)
	for i := range seqs {
		n := sampleLength(rng, cfg.MeanLen, cfg.MinLen, cfg.MaxLen)
		seqs[i] = seq.Sequence{
			ID:          fmt.Sprintf("SYN|P%05d", i),
			Description: "synthetic protein",
			Residues:    sampler.sample(rng, n),
		}
	}

	// Plant motif families.
	motifs := make([]Motif, 0, cfg.NumFamilies)
	for f := 0; f < cfg.NumFamilies; f++ {
		mLen := cfg.MotifMinLen + rng.Intn(cfg.MotifMaxLen-cfg.MotifMinLen+1)
		motif := Motif{
			ID:       fmt.Sprintf("MOTIF%04d", f),
			Residues: sampler.sample(rng, mLen),
		}
		for k := 0; k < cfg.FamilySize; k++ {
			target := rng.Intn(len(seqs))
			copyRes := mutate(rng, sampler, motif.Residues, cfg.MutationRate, cfg.IndelRate)
			seqs[target].Residues = insertAt(rng, seqs[target].Residues, copyRes)
			motif.Members = append(motif.Members, target)
		}
		motifs = append(motifs, motif)
	}

	db, err := seq.NewDatabase(seq.Protein, seqs)
	if err != nil {
		return nil, nil, err
	}
	return db, motifs, nil
}

func validateProteinConfig(cfg *ProteinConfig) error {
	if cfg.NumSequences <= 0 {
		return fmt.Errorf("workload: NumSequences must be positive")
	}
	if cfg.MinLen < 1 || cfg.MaxLen < cfg.MinLen {
		return fmt.Errorf("workload: invalid length bounds [%d,%d]", cfg.MinLen, cfg.MaxLen)
	}
	if cfg.MeanLen < cfg.MinLen {
		cfg.MeanLen = cfg.MinLen
	}
	if cfg.MotifMinLen < 3 || cfg.MotifMaxLen < cfg.MotifMinLen {
		return fmt.Errorf("workload: invalid motif length bounds [%d,%d]", cfg.MotifMinLen, cfg.MotifMaxLen)
	}
	if cfg.MutationRate < 0 || cfg.MutationRate > 1 || cfg.IndelRate < 0 || cfg.IndelRate > 1 {
		return fmt.Errorf("workload: rates must be in [0,1]")
	}
	return nil
}

// DNAConfig configures the synthetic nucleotide database generator (the
// Drosophila stand-in).
type DNAConfig struct {
	// NumSequences is the number of nucleotide sequences (the Drosophila
	// set has ~1K).
	NumSequences int
	// MeanLen is the target mean sequence length.
	MeanLen int
	// MinLen/MaxLen bound sequence lengths.
	MinLen, MaxLen int
	// RepeatFraction is the fraction of each sequence built from repeated
	// segments (genomes are repeat-rich, which stresses the suffix tree).
	RepeatFraction float64
	// GCContent is the G+C fraction (Drosophila ~0.42).
	GCContent float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultDNAConfig returns a laptop-scale stand-in for the Drosophila set.
func DefaultDNAConfig(totalResidues int64) DNAConfig {
	meanLen := 4096
	n := int(totalResidues / int64(meanLen))
	if n < 4 {
		n = 4
	}
	return DNAConfig{
		NumSequences:   n,
		MeanLen:        meanLen,
		MinLen:         512,
		MaxLen:         meanLen * 4,
		RepeatFraction: 0.2,
		GCContent:      0.42,
		Seed:           7411,
	}
}

// DNADatabase generates a nucleotide database with repeat structure.
func DNADatabase(cfg DNAConfig) (*seq.Database, error) {
	if cfg.NumSequences <= 0 || cfg.MinLen < 1 || cfg.MaxLen < cfg.MinLen {
		return nil, fmt.Errorf("workload: invalid DNA config %+v", cfg)
	}
	if cfg.GCContent <= 0 || cfg.GCContent >= 1 {
		cfg.GCContent = 0.42
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	freqs := make([]float64, seq.DNA.Size())
	codeA, _ := seq.DNA.Code('A')
	codeC, _ := seq.DNA.Code('C')
	codeG, _ := seq.DNA.Code('G')
	codeT, _ := seq.DNA.Code('T')
	freqs[codeA] = (1 - cfg.GCContent) / 2
	freqs[codeT] = (1 - cfg.GCContent) / 2
	freqs[codeC] = cfg.GCContent / 2
	freqs[codeG] = cfg.GCContent / 2
	sampler := newResidueSampler(seq.DNA, freqs)

	// A small library of repeat elements shared across sequences.
	var repeats [][]byte
	for i := 0; i < 8; i++ {
		repeats = append(repeats, sampler.sample(rng, 50+rng.Intn(200)))
	}
	seqs := make([]seq.Sequence, cfg.NumSequences)
	for i := range seqs {
		n := sampleLength(rng, cfg.MeanLen, cfg.MinLen, cfg.MaxLen)
		var res []byte
		for len(res) < n {
			if rng.Float64() < cfg.RepeatFraction {
				res = append(res, repeats[rng.Intn(len(repeats))]...)
			} else {
				res = append(res, sampler.sample(rng, 100+rng.Intn(400))...)
			}
		}
		seqs[i] = seq.Sequence{
			ID:          fmt.Sprintf("SYN|CHR%03d", i),
			Description: "synthetic nucleotide scaffold",
			Residues:    res[:n],
		}
	}
	return seq.NewDatabase(seq.DNA, seqs)
}

// Query is one workload query.
type Query struct {
	// ID names the query.
	ID string
	// Residues is the encoded query.
	Residues []byte
	// SourceMotif is the index of the motif family the query was drawn
	// from, or -1 for background (random) queries.
	SourceMotif int
}

// QueryConfig configures motif-derived query generation (the ProClass
// stand-in: short peptide queries, lengths 6-56, mean ~16).
type QueryConfig struct {
	// Num is the number of queries.
	Num int
	// MinLen/MaxLen bound query lengths.
	MinLen, MaxLen int
	// MeanLen is the target mean query length.
	MeanLen int
	// MutationRate is the per-residue probability of mutating the query
	// away from its source motif.
	MutationRate float64
	// BackgroundFraction is the fraction of queries drawn from the
	// background distribution instead of a planted motif (these behave
	// like queries with no strong homolog).
	BackgroundFraction float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultQueryConfig mirrors the paper's protein query workload: 100 motif
// queries with lengths 6-56 and an average length of 16.
func DefaultQueryConfig(num int) QueryConfig {
	if num <= 0 {
		num = 100
	}
	return QueryConfig{
		Num:                num,
		MinLen:             6,
		MaxLen:             56,
		MeanLen:            16,
		MutationRate:       0.10,
		BackgroundFraction: 0.15,
		Seed:               271,
	}
}

// MotifQueries draws queries from the planted motifs of a database (plus a
// configurable fraction of background queries).
func MotifQueries(db *seq.Database, motifs []Motif, cfg QueryConfig) ([]Query, error) {
	if db == nil {
		return nil, fmt.Errorf("workload: nil database")
	}
	if cfg.Num <= 0 || cfg.MinLen < 1 || cfg.MaxLen < cfg.MinLen {
		return nil, fmt.Errorf("workload: invalid query config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	stats := db.ComputeStats()
	sampler := newResidueSampler(db.Alphabet(), stats.Frequencies)
	queries := make([]Query, 0, cfg.Num)
	for i := 0; i < cfg.Num; i++ {
		n := sampleLength(rng, cfg.MeanLen, cfg.MinLen, cfg.MaxLen)
		q := Query{ID: fmt.Sprintf("Q%04d", i), SourceMotif: -1}
		if len(motifs) > 0 && rng.Float64() >= cfg.BackgroundFraction {
			mi := rng.Intn(len(motifs))
			motif := motifs[mi].Residues
			q.SourceMotif = mi
			if n > len(motif) {
				n = len(motif)
			}
			start := 0
			if len(motif) > n {
				start = rng.Intn(len(motif) - n + 1)
			}
			q.Residues = mutate(rng, sampler, motif[start:start+n], cfg.MutationRate, 0)
		} else {
			q.Residues = sampler.sample(rng, n)
		}
		if len(q.Residues) < cfg.MinLen {
			q.Residues = append(q.Residues, sampler.sample(rng, cfg.MinLen-len(q.Residues))...)
		}
		queries = append(queries, q)
	}
	return queries, nil
}

// residueSampler draws residues from a background distribution.
type residueSampler struct {
	alphabet *seq.Alphabet
	cdf      []float64
}

func newResidueSampler(a *seq.Alphabet, freqs []float64) *residueSampler {
	n := a.Size()
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		f := 0.0
		if i < len(freqs) {
			f = freqs[i]
		}
		if f < 0 {
			f = 0
		}
		sum += f
	}
	if sum <= 0 {
		// Uniform fallback.
		for i := 0; i < n; i++ {
			cdf[i] = float64(i+1) / float64(n)
		}
		return &residueSampler{alphabet: a, cdf: cdf}
	}
	acc := 0.0
	for i := 0; i < n; i++ {
		f := 0.0
		if i < len(freqs) {
			f = freqs[i]
		}
		if f < 0 {
			f = 0
		}
		acc += f / sum
		cdf[i] = acc
	}
	return &residueSampler{alphabet: a, cdf: cdf}
}

func (s *residueSampler) one(rng *rand.Rand) byte {
	u := rng.Float64()
	for i, c := range s.cdf {
		if u <= c {
			return byte(i)
		}
	}
	return byte(len(s.cdf) - 1)
}

func (s *residueSampler) sample(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = s.one(rng)
	}
	return out
}

// proteinBackground returns the Robinson & Robinson amino-acid frequencies
// indexed by seq.Protein codes (B, Z, X get negligible mass).
func proteinBackground() []float64 {
	return score.DefaultFrequencies(score.BLOSUM62())
}

// sampleLength draws a length from a log-normal-like distribution with the
// given mean, clamped to [min, max].
func sampleLength(rng *rand.Rand, mean, min, max int) int {
	if mean < min {
		mean = min
	}
	sigma := 0.6
	mu := math.Log(float64(mean)) - sigma*sigma/2
	n := int(math.Round(math.Exp(rng.NormFloat64()*sigma + mu)))
	if n < min {
		n = min
	}
	if n > max {
		n = max
	}
	return n
}

// mutate returns a copy of residues with per-position substitutions and
// (optionally) indels applied.
func mutate(rng *rand.Rand, sampler *residueSampler, residues []byte, subRate, indelRate float64) []byte {
	out := make([]byte, 0, len(residues)+4)
	for _, c := range residues {
		r := rng.Float64()
		switch {
		case r < indelRate/2:
			// Deletion: skip the residue.
		case r < indelRate:
			// Insertion: keep the residue and add a random one.
			out = append(out, c, sampler.one(rng))
		case r < indelRate+subRate:
			out = append(out, sampler.one(rng))
		default:
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = append(out, residues[0])
	}
	return out
}

// insertAt splices insert into residues at a random position.
func insertAt(rng *rand.Rand, residues, insert []byte) []byte {
	pos := 0
	if len(residues) > 0 {
		pos = rng.Intn(len(residues) + 1)
	}
	out := make([]byte, 0, len(residues)+len(insert))
	out = append(out, residues[:pos]...)
	out = append(out, insert...)
	out = append(out, residues[pos:]...)
	return out
}
