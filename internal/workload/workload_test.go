package workload

import (
	"testing"

	"repro/internal/align"
	"repro/internal/score"
	"repro/internal/seq"
)

func TestProteinDatabaseGeneration(t *testing.T) {
	cfg := DefaultProteinConfig(50_000)
	db, motifs, err := ProteinDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != cfg.NumSequences {
		t.Fatalf("NumSequences = %d, want %d", db.NumSequences(), cfg.NumSequences)
	}
	if len(motifs) != cfg.NumFamilies {
		t.Fatalf("motifs = %d, want %d", len(motifs), cfg.NumFamilies)
	}
	st := db.ComputeStats()
	if st.MinLength < cfg.MinLen {
		t.Fatalf("MinLength %d below configured %d", st.MinLength, cfg.MinLen)
	}
	// Total residues should be in the right ballpark (within 4x).
	if st.TotalResidues < 50_000/4 || st.TotalResidues > 50_000*4 {
		t.Fatalf("TotalResidues = %d, expected ~50000", st.TotalResidues)
	}
	// Frequencies roughly match the Robinson-Robinson background: leucine
	// (L) should be the most common standard residue and tryptophan (W)
	// among the rarest.
	codeL, _ := seq.Protein.Code('L')
	codeW, _ := seq.Protein.Code('W')
	if st.Frequencies[codeL] < st.Frequencies[codeW] {
		t.Fatalf("L (%v) should be more frequent than W (%v)", st.Frequencies[codeL], st.Frequencies[codeW])
	}
	for _, m := range motifs {
		if len(m.Members) != cfg.FamilySize {
			t.Fatalf("motif %s has %d members, want %d", m.ID, len(m.Members), cfg.FamilySize)
		}
		if len(m.Residues) < cfg.MotifMinLen || len(m.Residues) > cfg.MotifMaxLen {
			t.Fatalf("motif %s length %d out of bounds", m.ID, len(m.Residues))
		}
	}
}

func TestProteinDatabaseDeterministic(t *testing.T) {
	cfg := DefaultProteinConfig(20_000)
	a, _, err := ProteinDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ProteinDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalResidues() != b.TotalResidues() {
		t.Fatal("generation is not deterministic")
	}
	for i := 0; i < a.NumSequences(); i++ {
		if string(a.Sequence(i).Residues) != string(b.Sequence(i).Residues) {
			t.Fatalf("sequence %d differs between runs", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed++
	c, _, err := ProteinDatabase(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.NumSequences() && i < c.NumSequences(); i++ {
		if string(a.Sequence(i).Residues) != string(c.Sequence(i).Residues) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical databases")
	}
}

func TestPlantedMotifsAreFindable(t *testing.T) {
	cfg := DefaultProteinConfig(30_000)
	cfg.MutationRate = 0.05
	cfg.IndelRate = 0
	db, motifs, err := ProteinDatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sch := score.MustScheme(score.BLOSUM62(), -8)
	// A member sequence must align to its family motif far better than a
	// random non-member does on average.
	m := motifs[0]
	if len(m.Members) == 0 {
		t.Fatal("motif has no members")
	}
	member := db.Sequence(m.Members[0]).Residues
	memberScore := align.Score(m.Residues, member, sch, nil)
	// Perfect self alignment score.
	self := align.Score(m.Residues, m.Residues, sch, nil)
	if memberScore < self/2 {
		t.Fatalf("planted copy aligns poorly: member %d vs self %d", memberScore, self)
	}
}

func TestProteinConfigValidation(t *testing.T) {
	bad := []ProteinConfig{
		{},
		{NumSequences: 5, MinLen: 0, MaxLen: 10, MotifMinLen: 5, MotifMaxLen: 10},
		{NumSequences: 5, MinLen: 10, MaxLen: 5, MotifMinLen: 5, MotifMaxLen: 10},
		{NumSequences: 5, MinLen: 5, MaxLen: 10, MotifMinLen: 1, MotifMaxLen: 2},
		{NumSequences: 5, MinLen: 5, MaxLen: 10, MotifMinLen: 5, MotifMaxLen: 10, MutationRate: 2},
	}
	for i, cfg := range bad {
		if _, _, err := ProteinDatabase(cfg); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestDNADatabaseGeneration(t *testing.T) {
	cfg := DefaultDNAConfig(100_000)
	db, err := DNADatabase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := db.ComputeStats()
	if st.TotalResidues < 100_000/4 || st.TotalResidues > 100_000*4 {
		t.Fatalf("TotalResidues = %d", st.TotalResidues)
	}
	// GC content near the configured value.
	codeC, _ := seq.DNA.Code('C')
	codeG, _ := seq.DNA.Code('G')
	gc := st.Frequencies[codeC] + st.Frequencies[codeG]
	if gc < 0.3 || gc > 0.55 {
		t.Fatalf("GC content %v far from configured 0.42", gc)
	}
	if _, err := DNADatabase(DNAConfig{}); err == nil {
		t.Fatal("invalid DNA config should be rejected")
	}
}

func TestMotifQueries(t *testing.T) {
	db, motifs, err := ProteinDatabase(DefaultProteinConfig(30_000))
	if err != nil {
		t.Fatal(err)
	}
	qcfg := DefaultQueryConfig(100)
	queries, err := MotifQueries(db, motifs, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 100 {
		t.Fatalf("got %d queries", len(queries))
	}
	var totalLen, fromMotif int
	for _, q := range queries {
		if len(q.Residues) < qcfg.MinLen || len(q.Residues) > qcfg.MaxLen+2 {
			t.Fatalf("query %s length %d out of bounds", q.ID, len(q.Residues))
		}
		totalLen += len(q.Residues)
		if q.SourceMotif >= 0 {
			fromMotif++
		}
		if !seq.Protein.ValidCodes(q.Residues) {
			t.Fatalf("query %s has invalid codes", q.ID)
		}
	}
	mean := float64(totalLen) / float64(len(queries))
	if mean < 10 || mean > 25 {
		t.Fatalf("mean query length %v, want ~16 (paper's ProClass workload)", mean)
	}
	if fromMotif < 60 {
		t.Fatalf("only %d/100 queries drawn from motifs", fromMotif)
	}
	// Determinism.
	again, err := MotifQueries(db, motifs, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if string(queries[i].Residues) != string(again[i].Residues) {
			t.Fatal("query generation not deterministic")
		}
	}
}

func TestMotifQueriesValidation(t *testing.T) {
	db, motifs, _ := ProteinDatabase(DefaultProteinConfig(10_000))
	if _, err := MotifQueries(nil, motifs, DefaultQueryConfig(10)); err == nil {
		t.Fatal("nil database should be rejected")
	}
	if _, err := MotifQueries(db, motifs, QueryConfig{Num: 0}); err == nil {
		t.Fatal("zero queries should be rejected")
	}
	if _, err := MotifQueries(db, motifs, QueryConfig{Num: 5, MinLen: 10, MaxLen: 5}); err == nil {
		t.Fatal("bad bounds should be rejected")
	}
	// No motifs: all queries are background.
	qs, err := MotifQueries(db, nil, DefaultQueryConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.SourceMotif != -1 {
			t.Fatal("background query tagged with a motif")
		}
	}
}

func TestSampleLengthBounds(t *testing.T) {
	rngDB, _, _ := ProteinDatabase(ProteinConfig{
		NumSequences: 200, MinLen: 7, MaxLen: 50, MeanLen: 20,
		NumFamilies: 1, FamilySize: 1, MotifMinLen: 5, MotifMaxLen: 10,
		MutationRate: 0.1, Seed: 7,
	})
	st := rngDB.ComputeStats()
	// Lengths can exceed MaxLen only through motif insertion (one motif of
	// at most 10 residues here).
	if st.MaxLength > 50+10 {
		t.Fatalf("MaxLength %d exceeds bound", st.MaxLength)
	}
	if st.MinLength < 7 {
		t.Fatalf("MinLength %d below bound", st.MinLength)
	}
}

func TestDefaultConfigsScale(t *testing.T) {
	small := DefaultProteinConfig(10_000)
	large := DefaultProteinConfig(1_000_000)
	if large.NumSequences <= small.NumSequences {
		t.Fatal("larger residue budget should mean more sequences")
	}
	d := DefaultDNAConfig(1_000_000)
	if d.NumSequences < 4 {
		t.Fatal("DNA config too small")
	}
}
