package bufferpool

import "sync"

// FreeList is a bounded, concurrency-safe free list of reusable values — the
// in-memory sibling of the page pool: where Pool amortises disk reads across
// queries, FreeList amortises scratch allocations (DP columns, searcher
// state) across the query stream of a warm engine.
//
// Get returns a recycled value when one is available and otherwise builds a
// fresh one with the constructor; Put returns a value for reuse, dropping it
// when the list is full so an idle engine does not pin an unbounded amount of
// scratch memory.
type FreeList[T any] struct {
	mu     sync.Mutex
	free   []T
	max    int
	newFn  func() T
	gets   int64
	reuses int64
}

// NewFreeList builds a free list holding at most max idle values (max <= 0
// selects 64).  newFn must not be nil.
func NewFreeList[T any](max int, newFn func() T) *FreeList[T] {
	if max <= 0 {
		max = 64
	}
	return &FreeList[T]{max: max, newFn: newFn}
}

// Get returns a recycled value, or a newly constructed one when the list is
// empty.
func (l *FreeList[T]) Get() T {
	l.mu.Lock()
	l.gets++
	if n := len(l.free); n > 0 {
		l.reuses++
		v := l.free[n-1]
		var zero T
		l.free[n-1] = zero
		l.free = l.free[:n-1]
		l.mu.Unlock()
		return v
	}
	l.mu.Unlock()
	return l.newFn()
}

// Put returns a value to the list for reuse; values beyond the capacity are
// dropped.
func (l *FreeList[T]) Put(v T) {
	l.mu.Lock()
	if len(l.free) < l.max {
		l.free = append(l.free, v)
	}
	l.mu.Unlock()
}

// FreeListStats reports reuse counters for a FreeList.
type FreeListStats struct {
	// Gets is the number of Get calls; Reuses how many were served from the
	// list rather than the constructor.
	Gets, Reuses int64
	// Idle is the current number of values waiting for reuse.
	Idle int
}

// Stats returns a snapshot of the reuse counters.
func (l *FreeList[T]) Stats() FreeListStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return FreeListStats{Gets: l.gets, Reuses: l.reuses, Idle: len(l.free)}
}
