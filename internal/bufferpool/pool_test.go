package bufferpool

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// memFile builds an in-memory ReaderAt with deterministic contents.
func memFile(size int) *bytes.Reader {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i % 251)
	}
	return bytes.NewReader(data)
}

func TestGetReturnsCorrectPageContents(t *testing.T) {
	p := New(16*64, 64)
	f := p.Register("data", memFile(1000), 1000)
	h, err := p.Get(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if len(h.Data) != 64 {
		t.Fatalf("page size = %d", len(h.Data))
	}
	for i, b := range h.Data {
		if b != byte((3*64+i)%251) {
			t.Fatalf("byte %d wrong", i)
		}
	}
}

func TestGetLastPartialPage(t *testing.T) {
	p := New(16*64, 64)
	f := p.Register("data", memFile(100), 100)
	h, err := p.Get(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if len(h.Data) != 36 {
		t.Fatalf("partial page size = %d, want 36", len(h.Data))
	}
}

func TestGetOutOfRange(t *testing.T) {
	p := New(16*64, 64)
	f := p.Register("data", memFile(100), 100)
	if _, err := p.Get(f, 5); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := p.Get(f, -1); err == nil {
		t.Fatal("expected negative-page error")
	}
	if _, err := p.Get(FileID(99), 0); err == nil {
		t.Fatal("expected unknown-file error")
	}
}

func TestHitAndMissAccounting(t *testing.T) {
	p := New(8*64, 64)
	f := p.Register("data", memFile(1000), 1000)
	for i := 0; i < 3; i++ {
		h, err := p.Get(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	st := p.Stats(f)
	if st.Requests != 3 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 3 requests 2 hits", st)
	}
	if r := st.HitRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit ratio = %v", r)
	}
	p.ResetStats()
	if st := p.Stats(f); st.Requests != 0 || st.Hits != 0 {
		t.Fatalf("ResetStats failed: %+v", st)
	}
	if (FileStats{}).HitRatio() != 0 {
		t.Fatal("empty hit ratio should be 0")
	}
}

func TestEvictionKeepsWorkingSetSmall(t *testing.T) {
	// 4 frames, 10 pages: cycling through all pages must evict, and every
	// read must still return correct data.
	p := New(4*64, 64)
	f := p.Register("data", memFile(640), 640)
	for round := 0; round < 3; round++ {
		for pg := int64(0); pg < 10; pg++ {
			h, err := p.Get(f, pg)
			if err != nil {
				t.Fatal(err)
			}
			if h.Data[0] != byte((int(pg)*64)%251) {
				t.Fatalf("wrong data after eviction on page %d", pg)
			}
			h.Release()
		}
	}
	if p.PinnedPages() != 0 {
		t.Fatal("pages left pinned")
	}
}

func TestClockPrefersUnreferencedFrames(t *testing.T) {
	p := New(4*64, 64)
	f := p.Register("data", memFile(64*8), 64*8)
	// Fill the pool with pages 0..3, then load page 4: the first sweep
	// clears every reference bit and evicts page 0.
	for pg := int64(0); pg < 5; pg++ {
		h, err := p.Get(f, pg)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	// Re-touch page 3 so its reference bit is set again, then load a new
	// page: CLOCK must give page 3 a second chance and evict one of the
	// unreferenced pages instead.
	h, _ := p.Get(f, 3)
	h.Release()
	h, err := p.Get(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	before := p.Stats(f).Hits
	h, _ = p.Get(f, 3)
	h.Release()
	if p.Stats(f).Hits != before+1 {
		t.Fatal("page 3 was evicted despite its reference bit")
	}
}

func TestAllFramesPinned(t *testing.T) {
	p := New(4*64, 64)
	f := p.Register("data", memFile(64*8), 64*8)
	var handles []*Handle
	for pg := int64(0); pg < 4; pg++ {
		h, err := p.Get(f, pg)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if _, err := p.Get(f, 5); err == nil {
		t.Fatal("expected all-pinned error")
	}
	if err := p.Clear(); err == nil {
		t.Fatal("Clear should fail while pages are pinned")
	}
	for _, h := range handles {
		h.Release()
	}
	if _, err := p.Get(f, 5); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestPinningSamePageTwice(t *testing.T) {
	p := New(4*64, 64)
	f := p.Register("data", memFile(64*4), 64*4)
	h1, _ := p.Get(f, 1)
	h2, _ := p.Get(f, 1)
	if p.PinnedPages() != 1 {
		t.Fatalf("PinnedPages = %d, want 1 (one frame, two pins)", p.PinnedPages())
	}
	h1.Release()
	h1.Release() // double release is a no-op
	if p.PinnedPages() != 1 {
		t.Fatal("double release corrupted pin count")
	}
	h2.Release()
	if p.PinnedPages() != 0 {
		t.Fatal("pin count should be zero")
	}
}

func TestReadAtSpanningPages(t *testing.T) {
	p := New(8*64, 64)
	data := make([]byte, 500)
	for i := range data {
		data[i] = byte(i % 256)
	}
	f := p.Register("data", bytes.NewReader(data), int64(len(data)))
	buf := make([]byte, 200)
	if err := p.ReadAt(f, buf, 30); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[30:230]) {
		t.Fatal("ReadAt returned wrong data")
	}
	if err := p.ReadAt(f, make([]byte, 10), 600); err == nil {
		t.Fatal("expected error past EOF")
	}
	if p.PinnedPages() != 0 {
		t.Fatal("ReadAt leaked pins")
	}
}

func TestClearDropsCachedPages(t *testing.T) {
	p := New(8*64, 64)
	f := p.Register("data", memFile(640), 640)
	h, _ := p.Get(f, 0)
	h.Release()
	if err := p.Clear(); err != nil {
		t.Fatal(err)
	}
	h, _ = p.Get(f, 0)
	h.Release()
	st := p.Stats(f)
	if st.Hits != 0 {
		t.Fatalf("expected a miss after Clear, stats = %+v", st)
	}
}

func TestMultipleFiles(t *testing.T) {
	p := New(8*64, 64)
	fa := p.Register("a", memFile(640), 640)
	fb := p.Register("b", bytes.NewReader(bytes.Repeat([]byte{7}, 640)), 640)
	ha, _ := p.Get(fa, 0)
	hb, _ := p.Get(fb, 0)
	if ha.Data[1] == hb.Data[1] {
		t.Fatal("files should have different contents")
	}
	ha.Release()
	hb.Release()
	if p.Stats(fa).Requests != 1 || p.Stats(fb).Requests != 1 {
		t.Fatal("per-file stats not separated")
	}
}

func TestDefaultsAndMinimumFrames(t *testing.T) {
	p := New(0, 0)
	if p.PageSize() != DefaultPageSize {
		t.Fatalf("PageSize = %d", p.PageSize())
	}
	if p.NumFrames() < 4 {
		t.Fatalf("NumFrames = %d", p.NumFrames())
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := New(16*256, 256)
	f := p.Register("data", memFile(256*64), 256*64)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pg := int64((g*31 + i*7) % 64)
				h, err := p.Get(f, pg)
				if err != nil {
					errs <- err
					return
				}
				if h.Data[0] != byte((int(pg)*256)%251) {
					errs <- fmt.Errorf("bad data on page %d", pg)
					h.Release()
					return
				}
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.PinnedPages() != 0 {
		t.Fatal("leaked pins under concurrency")
	}
}

// Property: reading arbitrary in-range (offset, length) windows through the
// pool returns exactly the underlying bytes.
func TestReadAtProperty(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte((i * 37) % 256)
	}
	p := New(6*128, 128) // small pool forces evictions
	f := p.Register("data", bytes.NewReader(data), int64(len(data)))
	check := func(off uint16, ln uint8) bool {
		o := int64(off) % int64(len(data))
		l := int(ln)
		if o+int64(l) > int64(len(data)) {
			l = int(int64(len(data)) - o)
		}
		buf := make([]byte, l)
		if err := p.ReadAt(f, buf, o); err != nil {
			return false
		}
		return bytes.Equal(buf, data[o:int(o)+l])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
