package bufferpool

import (
	"sync"
	"testing"
)

func TestFreeListReuse(t *testing.T) {
	made := 0
	l := NewFreeList(2, func() *[]int {
		made++
		s := make([]int, 4)
		return &s
	})
	a := l.Get()
	b := l.Get()
	if made != 2 {
		t.Fatalf("expected 2 constructions, got %d", made)
	}
	l.Put(a)
	l.Put(b)
	_ = l.Get()
	_ = l.Get()
	if made != 2 {
		t.Fatalf("Get after Put should reuse, constructed %d", made)
	}
	st := l.Stats()
	if st.Gets != 4 || st.Reuses != 2 {
		t.Fatalf("stats = %+v, want Gets=4 Reuses=2", st)
	}
}

func TestFreeListBounded(t *testing.T) {
	l := NewFreeList(1, func() int { return 0 })
	l.Put(1)
	l.Put(2) // dropped: list is full
	if st := l.Stats(); st.Idle != 1 {
		t.Fatalf("idle = %d, want 1", st.Idle)
	}
}

func TestFreeListConcurrent(t *testing.T) {
	l := NewFreeList(8, func() *int { v := 0; return &v })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := l.Get()
				*v++
				l.Put(v)
			}
		}()
	}
	wg.Wait()
	if st := l.Stats(); st.Gets != 1600 {
		t.Fatalf("gets = %d, want 1600", st.Gets)
	}
}
