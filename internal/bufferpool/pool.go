// Package bufferpool implements the fixed-size page cache through which the
// on-disk suffix tree is read (paper Sections 3.4 and 4.5): pages are loaded
// on demand from their backing files, cached in a bounded set of frames, and
// evicted with a simple CLOCK (second-chance) replacement policy.
//
// The pool tracks per-file hit statistics so the Figure 8 experiment can
// report buffer hit ratios separately for the symbol, internal-node and leaf
// components of the index.
package bufferpool

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/faultpoint"
)

// FileID identifies a file registered with the pool.
type FileID int32

// DefaultPageSize is the disk block size used by the paper's implementation.
const DefaultPageSize = 2048

// pageKey identifies one page of one registered file.
type pageKey struct {
	file FileID
	page int64
}

// frame is a single buffer slot.
type frame struct {
	key        pageKey
	data       []byte
	size       int // valid bytes in data
	valid      bool
	pinCount   int
	referenced bool
}

// FileStats accumulates access statistics for one registered file.
type FileStats struct {
	// Requests is the number of page requests issued.
	Requests int64
	// Hits is the number of requests served from the pool.
	Hits int64
}

// HitRatio returns Hits/Requests, or 0 when no requests were made.
func (s FileStats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// Pool is a page cache over a set of registered files.  All methods are safe
// for concurrent use.
type Pool struct {
	mu       sync.Mutex
	pageSize int
	frames   []frame
	table    map[pageKey]int
	hand     int
	files    map[FileID]backing
	stats    map[FileID]*FileStats
	nextFile FileID
}

type backing struct {
	r    io.ReaderAt
	name string
	size int64
}

// New creates a pool with the given total capacity in bytes and page size.
// A pageSize of 0 selects DefaultPageSize; the capacity is rounded up to at
// least four pages.
func New(capacityBytes int64, pageSize int) *Pool {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	n := int(capacityBytes / int64(pageSize))
	if n < 4 {
		n = 4
	}
	p := &Pool{
		pageSize: pageSize,
		frames:   make([]frame, n),
		table:    make(map[pageKey]int, n),
		files:    map[FileID]backing{},
		stats:    map[FileID]*FileStats{},
	}
	for i := range p.frames {
		p.frames[i].data = make([]byte, pageSize)
	}
	return p
}

// PageSize returns the page size in bytes.
func (p *Pool) PageSize() int { return p.pageSize }

// NumFrames returns the number of buffer frames.
func (p *Pool) NumFrames() int { return len(p.frames) }

// Register adds a backing reader for a logical file and returns its ID.
// size is the file length in bytes; name is used in statistics reporting.
func (p *Pool) Register(name string, r io.ReaderAt, size int64) FileID {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextFile
	p.nextFile++
	p.files[id] = backing{r: r, name: name, size: size}
	p.stats[id] = &FileStats{}
	return id
}

// Handle is a pinned page.  The data slice is valid until Release is called;
// callers must not modify it.
type Handle struct {
	pool  *Pool
	frame int
	// Data holds the page contents (may be shorter than a full page for the
	// final page of a file).
	Data []byte
	// PageNo is the page number within the file.
	PageNo int64
}

// Release unpins the page.  It is safe to call exactly once per Get.
func (h *Handle) Release() {
	if h.pool == nil {
		return
	}
	h.pool.mu.Lock()
	defer h.pool.mu.Unlock()
	fr := &h.pool.frames[h.frame]
	if fr.pinCount > 0 {
		fr.pinCount--
	}
	h.pool = nil
}

// Get pins and returns the pageNo-th page of the file.
func (p *Pool) Get(file FileID, pageNo int64) (*Handle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, err := p.frameForPageLocked(file, pageNo, true)
	if err != nil {
		return nil, err
	}
	fr := &p.frames[idx]
	fr.pinCount++
	return &Handle{pool: p, frame: idx, Data: fr.data[:fr.size], PageNo: pageNo}, nil
}

// Prefetch loads pages [fromPage, fromPage+nPages) of the file into the pool
// without pinning them and without counting toward hit-ratio statistics
// (warm-up must not inflate the ratios experiments report).  It stops at the
// end of the file or on the first read error and returns the number of pages
// made resident; warm-up failures are deliberately non-fatal.
func (p *Pool) Prefetch(file FileID, fromPage int64, nPages int) int {
	loaded := 0
	for i := 0; i < nPages; i++ {
		p.mu.Lock()
		b, ok := p.files[file]
		if !ok || (fromPage+int64(i))*int64(p.pageSize) >= b.size {
			p.mu.Unlock()
			break
		}
		_, err := p.frameForPageLocked(file, fromPage+int64(i), false)
		p.mu.Unlock()
		if err != nil {
			break
		}
		loaded++
	}
	return loaded
}

// frameForPageLocked returns the frame index holding the requested page,
// loading it from the backing file if necessary.  The caller must hold the
// mutex; the returned frame is not pinned.  countStats is false for warm-up
// prefetch, which must not distort the per-file hit-ratio statistics.
func (p *Pool) frameForPageLocked(file FileID, pageNo int64, countStats bool) (int, error) {
	b, ok := p.files[file]
	if !ok {
		return 0, fmt.Errorf("bufferpool: unknown file %d", file)
	}
	st := p.stats[file]
	if countStats {
		st.Requests++
	}
	key := pageKey{file: file, page: pageNo}
	if idx, ok := p.table[key]; ok {
		if countStats {
			st.Hits++
		}
		p.frames[idx].referenced = true
		return idx, nil
	}
	if err := faultpoint.Hit(faultpoint.SitePoolFill, b.name); err != nil {
		return 0, fmt.Errorf("bufferpool: reading page %d of %q: %w", pageNo, b.name, err)
	}
	// Miss: pick a victim frame with CLOCK and load the page.
	idx, err := p.evictLocked()
	if err != nil {
		return 0, err
	}
	fr := &p.frames[idx]
	if fr.valid {
		delete(p.table, fr.key)
		fr.valid = false
	}
	off := pageNo * int64(p.pageSize)
	if off >= b.size || pageNo < 0 {
		return 0, fmt.Errorf("bufferpool: page %d out of range for file %q (%d bytes)", pageNo, b.name, b.size)
	}
	want := p.pageSize
	if off+int64(want) > b.size {
		want = int(b.size - off)
	}
	n, err := b.r.ReadAt(fr.data[:want], off)
	if err != nil && err != io.EOF {
		return 0, fmt.Errorf("bufferpool: reading page %d of %q: %w", pageNo, b.name, err)
	}
	if n < want {
		return 0, fmt.Errorf("bufferpool: short read on page %d of %q: %d < %d", pageNo, b.name, n, want)
	}
	fr.key = key
	fr.size = want
	fr.valid = true
	fr.pinCount = 0
	fr.referenced = true
	p.table[key] = idx
	return idx, nil
}

// evictLocked selects a frame to reuse using the CLOCK policy.  The caller
// must hold the mutex.
func (p *Pool) evictLocked() (int, error) {
	// Two full sweeps: the first clears reference bits, the second evicts.
	for sweep := 0; sweep < 2*len(p.frames); sweep++ {
		idx := p.hand
		p.hand = (p.hand + 1) % len(p.frames)
		fr := &p.frames[idx]
		if fr.pinCount > 0 {
			continue
		}
		if fr.referenced {
			fr.referenced = false
			continue
		}
		return idx, nil
	}
	return 0, fmt.Errorf("bufferpool: all %d frames are pinned", len(p.frames))
}

// ReadAt reads len(buf) bytes from the file starting at off, going through
// the page cache (possibly touching several pages).  It is the hot path of
// the disk-resident suffix tree: each page is served under a single lock
// acquisition with no per-call allocation.
func (p *Pool) ReadAt(file FileID, buf []byte, off int64) error {
	remaining := buf
	for len(remaining) > 0 {
		pageNo := off / int64(p.pageSize)
		inPage := int(off % int64(p.pageSize))
		n, err := p.readFromPage(file, pageNo, inPage, remaining)
		if err != nil {
			return err
		}
		remaining = remaining[n:]
		off += int64(n)
	}
	return nil
}

// readFromPage copies as much of dst as the given page can serve, starting
// at inPage, and returns the number of bytes copied.
func (p *Pool) readFromPage(file FileID, pageNo int64, inPage int, dst []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, err := p.frameForPageLocked(file, pageNo, true)
	if err != nil {
		return 0, err
	}
	fr := &p.frames[idx]
	if inPage >= fr.size {
		return 0, fmt.Errorf("bufferpool: offset beyond end of page %d of file %d", pageNo, file)
	}
	return copy(dst, fr.data[inPage:fr.size]), nil
}

// Stats returns a snapshot of the statistics for a file.
func (p *Pool) Stats(file FileID) FileStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.stats[file]; ok {
		return *st
	}
	return FileStats{}
}

// ResetStats zeroes the statistics of every registered file (used between
// experiment phases).
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, st := range p.stats {
		*st = FileStats{}
	}
}

// Clear drops every unpinned cached page, forcing subsequent reads to go to
// the backing files (used to cold-start experiments).
func (p *Pool) Clear() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		fr := &p.frames[i]
		if fr.pinCount > 0 {
			return fmt.Errorf("bufferpool: cannot clear, frame %d is pinned", i)
		}
		if fr.valid {
			delete(p.table, fr.key)
			fr.valid = false
			fr.referenced = false
		}
	}
	return nil
}

// PinnedPages returns the number of currently pinned pages (used by tests to
// detect pin leaks).
func (p *Pool) PinnedPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.frames {
		if p.frames[i].pinCount > 0 {
			n++
		}
	}
	return n
}
