package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewFaultSite builds the faultsite analyzer: failpoint hygiene across the
// whole module.  Three invariants keep the fault-injection story from
// rotting:
//
//  1. Every faultpoint.Hit/HitBuf call names its site through a Site*
//     constant declared in the faultpoint package — the one registry — never
//     a raw string or a variable;
//  2. every registered Site* constant has at least one live call site (a
//     registered-but-unwired site gives false confidence that a failure mode
//     is injectable);
//  3. every registered site is referenced by at least one test or CI file, so
//     each failpoint is actually exercised somewhere.
//
// ciRefs supplies non-Go reference text (CI workflow and script contents,
// keyed by file name) that counts toward invariant 3; cmd/oasis-vet feeds it
// .github/workflows/* and ci/*.
func NewFaultSite(ciRefs map[string]string) *Analyzer {
	type siteDecl struct {
		name  string
		value string
		pos   token.Position
	}
	var (
		registry  []siteDecl
		callSites = map[string]int{} // site value -> non-test call-site count
		testText  []string           // raw test-file contents, module-wide
	)

	a := &Analyzer{
		Name: "faultsite",
		Doc:  "failpoint sites: registry-declared names, live call sites, test/CI coverage",
	}
	a.Collect = func(pass *Pass) error {
		if pass.Pkg.Name() == "faultpoint" {
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					gd, ok := decl.(*ast.GenDecl)
					if !ok || gd.Tok != token.CONST {
						continue
					}
					for _, spec := range gd.Specs {
						vs := spec.(*ast.ValueSpec)
						for _, name := range vs.Names {
							if !strings.HasPrefix(name.Name, "Site") {
								continue
							}
							c, ok := pass.Info.Defs[name].(*types.Const)
							if !ok || c.Val().Kind() != constant.String {
								continue
							}
							registry = append(registry, siteDecl{
								name:  name.Name,
								value: constant.StringVal(c.Val()),
								pos:   pass.Fset.Position(name.Pos()),
							})
						}
					}
				}
			}
		}
		for _, src := range pass.TestSrc {
			testText = append(testText, string(src))
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
				if !ok || pkgName.Imported().Name() != "faultpoint" {
					return true
				}
				if sel.Sel.Name != "Hit" && sel.Sel.Name != "HitBuf" {
					return true
				}
				arg := call.Args[0]
				tv := pass.Info.Types[arg]
				if tv.Value == nil || tv.Value.Kind() != constant.String {
					pass.Reportf(arg.Pos(), "site name must be a Site* constant from the faultpoint registry, not a computed value")
					return true
				}
				if !isRegistryConstRef(pass, arg) {
					pass.Reportf(arg.Pos(), "site %q must be named through its Site* constant in the faultpoint registry, not a raw string", constant.StringVal(tv.Value))
				}
				callSites[constant.StringVal(tv.Value)]++
				return true
			})
		}
		return nil
	}
	a.Run = func(pass *Pass) error { return nil }
	a.Finish = func(report func(Diagnostic)) error {
		sort.Slice(registry, func(i, j int) bool { return registry[i].name < registry[j].name })
		for _, s := range registry {
			if callSites[s.value] == 0 {
				report(Diagnostic{Pos: s.pos, Message: "registered site " + s.name + " (" + s.value + ") has no faultpoint.Hit/HitBuf call site; a failpoint nothing fires is dead"})
			}
			if !referenced(s.name, s.value, testText, ciRefs) {
				report(Diagnostic{Pos: s.pos, Message: "registered site " + s.name + " (" + s.value + ") is not referenced by any test or CI file; an unexercised failpoint rots"})
			}
		}
		return nil
	}
	return a
}

// isRegistryConstRef reports whether expr is a direct reference to a constant
// declared in the faultpoint package (faultpoint.SiteX from outside, SiteX
// from inside).
func isRegistryConstRef(pass *Pass, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := pass.Info.Uses[id].(*types.Const)
	return ok && c.Pkg() != nil && c.Pkg().Name() == "faultpoint" && strings.HasPrefix(c.Name(), "Site")
}

// referenced reports whether the site's constant name or literal value occurs
// in any test file or CI reference text.
func referenced(name, value string, testText []string, ciRefs map[string]string) bool {
	for _, t := range testText {
		if strings.Contains(t, name) || strings.Contains(t, value) {
			return true
		}
	}
	for _, t := range ciRefs {
		if strings.Contains(t, name) || strings.Contains(t, value) {
			return true
		}
	}
	return false
}
