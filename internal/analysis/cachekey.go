package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CacheKeyConfig parameterizes the cachekey analyzer so analysistest fixtures
// can exercise it against miniature core/qcache packages.
type CacheKeyConfig struct {
	// OptionsPkgSuffix matches the import path of the package defining the
	// search options struct ("internal/core"; a bare "core" fixture matches
	// too because matching is by path suffix).
	OptionsPkgSuffix string
	// OptionsType is the options struct's type name.
	OptionsType string
	// KeyFuncPkgName and KeyFunc name the cache-key normalizer: the function
	// whose body must consume every result-affecting options field.
	KeyFuncPkgName string
	KeyFunc        string
	// Exempt lists options fields that provably do not change which hits a
	// completed stream contains, with the justification recorded next to the
	// exemption.  Every other field missing from the key is a finding.
	Exempt map[string]string
}

// DefaultCacheKeyConfig is the repository's real wiring: qcache.NewKey must
// consume every result-affecting field of core.Options.
func DefaultCacheKeyConfig() CacheKeyConfig {
	return CacheKeyConfig{
		OptionsPkgSuffix: "internal/core",
		OptionsType:      "Options",
		KeyFuncPkgName:   "qcache",
		KeyFunc:          "NewKey",
		Exempt: map[string]string{
			"MaxResults":        "entries remember Complete vs truncated; any top-k request is served by truncating the stored stream",
			"Stats":             "output-only work counters; never change which hits are produced",
			"Scratch":           "reusable buffers; results are identical with or without one",
			"Context":           "cancellation handle; a cancelled search is never cached",
			"CancelPollColumns": "poll cadence for cancellation; does not change results",
			"StrictShards":      "degraded streams are never cached, and strict mode only turns degradation into an error",
		},
	}
}

// NewCacheKey builds the cachekey analyzer: it diffs the fields of the
// options struct against the fields the cache-key normalizer consumes and
// fails on any non-exempt field missing from the key.  A missed field means
// two searches with different options can share one cache entry — silently
// wrong cached answers, the bug class PR 9 had to remember to fix by hand for
// ReferenceKernel.
func NewCacheKey(cfg CacheKeyConfig) *Analyzer {
	a := &Analyzer{
		Name: "cachekey",
		Doc:  "every result-affecting options field must be consumed by the cache-key normalizer",
	}
	a.Run = func(pass *Pass) error {
		if pass.Pkg.Name() != cfg.KeyFuncPkgName {
			return nil
		}
		var keyFn *ast.FuncDecl
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Name.Name == cfg.KeyFunc {
					keyFn = fn
				}
			}
		}
		if keyFn == nil {
			return fmt.Errorf("package %s has no %s function to check", pass.Pkg.Path(), cfg.KeyFunc)
		}

		optStruct, optNamed := findOptionsType(pass.Pkg, cfg)
		if optStruct == nil {
			return fmt.Errorf("%s: no imported package matching %q defines type %s",
				pass.Pkg.Path(), cfg.OptionsPkgSuffix, cfg.OptionsType)
		}

		// Fields of the options struct the key function's body reads.
		used := map[string]bool{}
		ast.Inspect(keyFn.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.Info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			if v, ok := s.Obj().(*types.Var); ok && fieldOf(v, optNamed) {
				used[v.Name()] = true
			}
			return true
		})

		for i := 0; i < optStruct.NumFields(); i++ {
			f := optStruct.Field(i)
			if used[f.Name()] {
				continue
			}
			if _, ok := cfg.Exempt[f.Name()]; ok {
				continue
			}
			pass.Reportf(keyFn.Pos(),
				"%s.%s.%s is not consumed by %s and not allowlisted: two searches differing only in it would share a cache entry",
				optNamed.Obj().Pkg().Name(), cfg.OptionsType, f.Name(), cfg.KeyFunc)
		}
		// Exemptions that no longer name a real field have rotted.
		for name := range cfg.Exempt {
			if fieldByName(optStruct, name) == nil {
				pass.Reportf(keyFn.Pos(), "exempt field %s.%s no longer exists", cfg.OptionsType, name)
			}
		}
		return nil
	}
	return a
}

// findOptionsType locates the options struct among the key package's imports.
func findOptionsType(pkg *types.Package, cfg CacheKeyConfig) (*types.Struct, *types.Named) {
	for _, imp := range pkg.Imports() {
		if imp.Path() != cfg.OptionsPkgSuffix && !strings.HasSuffix(imp.Path(), "/"+cfg.OptionsPkgSuffix) {
			continue
		}
		obj := imp.Scope().Lookup(cfg.OptionsType)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			return st, named
		}
	}
	return nil, nil
}

// fieldOf reports whether v is a field of the named struct type.
func fieldOf(v *types.Var, named *types.Named) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	return fieldByName(st, v.Name()) == v
}

func fieldByName(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}
