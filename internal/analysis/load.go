package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path    string
	Dir     string
	Files   []*ast.File
	TestSrc map[string][]byte
	Pkg     *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepOnly      bool
	Error        *struct{ Err string }
}

// LoadModule loads and type-checks the packages matched by patterns inside
// the module rooted at moduleDir, without golang.org/x/tools: package
// discovery and dependency export data come from `go list -export -deps`,
// and the standard go/importer consumes that export data directly.  Returned
// packages are sorted by import path.
func LoadModule(moduleDir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, err
			}
			files = append(files, f)
		}
		testSrc := map[string][]byte{}
		for _, name := range append(append([]string{}, t.TestGoFiles...), t.XTestGoFiles...) {
			src, err := os.ReadFile(filepath.Join(t.Dir, name))
			if err != nil {
				return nil, nil, err
			}
			testSrc[name] = src
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("type-check %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:    t.ImportPath,
			Dir:     t.Dir,
			Files:   files,
			TestSrc: testSrc,
			Pkg:     tpkg,
			Info:    info,
		})
	}
	return pkgs, fset, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// RunSuite executes analyzers over the loaded packages: every Collect phase
// first, then every Run, then every Finish, returning the findings sorted by
// position.
func RunSuite(analyzers []*Analyzer, pkgs []*Package, fset *token.FileSet) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		for _, p := range pkgs {
			if err := a.Collect(newPass(a, p, fset, report)); err != nil {
				return nil, fmt.Errorf("%s: collect %s: %v", a.Name, p.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		for _, p := range pkgs {
			if err := a.Run(newPass(a, p, fset, report)); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, p.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		if err := a.Finish(func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}); err != nil {
			return nil, fmt.Errorf("%s: finish: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags, nil
}

func newPass(a *Analyzer, p *Package, fset *token.FileSet, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    p.Files,
		TestSrc:  p.TestSrc,
		Pkg:      p.Pkg,
		Info:     p.Info,
		Dir:      p.Dir,
		report:   report,
	}
}
