package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The escape gate closes the loop the hotpathalloc analyzer cannot: source
// syntax says what MIGHT allocate, but only the compiler knows what DOES.
// It rebuilds a package with -gcflags='-m -d=ssa/check_bce/debug=1', keeps
// the escape-analysis and bounds-check diagnostics that land inside
// //oasis:hotpath functions, normalizes them to (file, function, message) —
// line numbers are deliberately dropped so unrelated edits above a function
// do not churn the baseline — and diffs the set against a checked-in
// allowlist.  A new escape or a new bounds check in a hot function fails CI;
// a stale allowlist entry fails too, so the baseline always matches the tree.

// EscapeDiag is one normalized compiler diagnostic inside a hotpath function.
type EscapeDiag struct {
	File    string // module-relative path as printed by the compiler
	Func    string // enclosing //oasis:hotpath function ("recv.name" for methods)
	Message string // normalized compiler message
}

// Key is the canonical allowlist form: file<TAB>func<TAB>message.
func (d EscapeDiag) Key() string {
	return d.File + "\t" + d.Func + "\t" + d.Message
}

func (d EscapeDiag) String() string {
	return fmt.Sprintf("%s: %s: %s", d.File, d.Func, d.Message)
}

// escapeMsgRE matches the diagnostic classes the gate tracks.  "escapes to
// heap" and "moved to heap" are escape-analysis verdicts; "Found IsInBounds"
// and "Found IsSliceInBounds" are bounds checks the compiler could not
// eliminate (-d=ssa/check_bce/debug=1).
var escapeMsgRE = regexp.MustCompile(`escapes to heap|moved to heap|Found Is(Slice)?InBounds`)

// diagLineRE parses the compiler's "path:line:col: message" output lines.
var diagLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// normalizeEscapeMsg strips the expression text from escape verdicts so the
// allowlist key survives cosmetic refactors of the allocating expression:
// "make([]int32, width, 1<<class) escapes to heap" -> "escapes to heap".
func normalizeEscapeMsg(msg string) string {
	if i := strings.Index(msg, "escapes to heap"); i >= 0 {
		return "escapes to heap"
	}
	if strings.HasPrefix(msg, "moved to heap:") {
		return strings.TrimSpace(msg) // keep the variable name; it is the identity
	}
	return strings.TrimSpace(msg)
}

// FuncRange is the source span of one //oasis:hotpath function.
type FuncRange struct {
	File       string // path relative to the module directory, slash-separated
	Name       string // "recv.name" for methods
	Start, End int
}

// HotPathRanges parses every .go file of the package directories (relative to
// moduleDir) and returns the line ranges of //oasis:hotpath functions.
func HotPathRanges(moduleDir string, pkgDirs ...string) ([]FuncRange, error) {
	var out []FuncRange
	fset := token.NewFileSet()
	for _, dir := range pkgDirs {
		abs := filepath.Join(moduleDir, dir)
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(abs, name)
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			rel := filepath.ToSlash(filepath.Join(dir, name))
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !isHotPath(fn) {
					continue
				}
				out = append(out, FuncRange{
					File:  rel,
					Name:  funcDisplayName(fn),
					Start: fset.Position(fn.Pos()).Line,
					End:   fset.Position(fn.End()).Line,
				})
			}
		}
	}
	return out, nil
}

// funcDisplayName renders "name" for functions and "Recv.name" for methods.
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// CollectEscapeDiags compiles the packages with escape-analysis and
// bounds-check diagnostics enabled and returns the normalized diagnostics
// that fall inside //oasis:hotpath functions.  importPath is the package's
// import path (the -gcflags pattern); pkgDir its directory relative to
// moduleDir.
func CollectEscapeDiags(moduleDir, importPath, pkgDir string) ([]EscapeDiag, error) {
	ranges, err := HotPathRanges(moduleDir, pkgDir)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "build",
		"-gcflags="+importPath+"=-m=1 -d=ssa/check_bce/debug=1",
		"./"+filepath.ToSlash(pkgDir))
	cmd.Dir = moduleDir
	out, err := cmd.CombinedOutput()
	// The compiler prints diagnostics to stderr and go build exits 0 on
	// success; a non-zero exit means the package does not compile.
	if err != nil {
		return nil, fmt.Errorf("go build %s: %v\n%s", importPath, err, out)
	}
	seen := map[string]bool{}
	var diags []EscapeDiag
	for _, line := range strings.Split(string(out), "\n") {
		m := diagLineRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil || !escapeMsgRE.MatchString(m[4]) {
			continue
		}
		file := filepath.ToSlash(m[1])
		lineNo, _ := strconv.Atoi(m[2])
		fn, ok := enclosingHotPath(ranges, file, lineNo)
		if !ok {
			continue
		}
		d := EscapeDiag{File: file, Func: fn, Message: normalizeEscapeMsg(m[4])}
		if !seen[d.Key()] {
			seen[d.Key()] = true
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Key() < diags[j].Key() })
	return diags, nil
}

// enclosingHotPath finds the hotpath function containing file:line, if any.
// Compiler paths may be module-relative or absolute depending on invocation;
// match by path suffix.
func enclosingHotPath(ranges []FuncRange, file string, line int) (string, bool) {
	for _, r := range ranges {
		if line >= r.Start && line <= r.End && strings.HasSuffix(file, r.File) {
			return r.Name, true
		}
	}
	return "", false
}

// ParseAllowlist reads an escape allowlist: one EscapeDiag key per line
// (file<TAB>func<TAB>message), '#' comments and blank lines ignored.
func ParseAllowlist(path string) ([]EscapeDiag, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []EscapeDiag
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(sc.Text(), "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("%s:%d: want file<TAB>func<TAB>message, got %q", path, lineNo, line)
		}
		out = append(out, EscapeDiag{File: parts[0], Func: parts[1], Message: parts[2]})
	}
	return out, sc.Err()
}

// FormatAllowlist renders diagnostics in the ParseAllowlist file format.
func FormatAllowlist(diags []EscapeDiag) string {
	var b strings.Builder
	b.WriteString("# Escape-gate baseline: compiler escape/bounds-check diagnostics inside\n")
	b.WriteString("# //oasis:hotpath functions that are known and accepted.  Regenerate with\n")
	b.WriteString("#   go run ./cmd/oasis-bench -exp none -escape-gate -escape-write\n")
	b.WriteString("# One entry per line: file<TAB>function<TAB>message.\n")
	for _, d := range diags {
		b.WriteString(d.Key())
		b.WriteByte('\n')
	}
	return b.String()
}

// EscapeGateResult is the diff between the tree's current hotpath compiler
// diagnostics and the checked-in allowlist.
type EscapeGateResult struct {
	Current []EscapeDiag
	New     []EscapeDiag // in the tree, not in the allowlist: new escapes — fail
	Stale   []EscapeDiag // in the allowlist, no longer in the tree — fail (regenerate)
}

// OK reports whether the gate passes.
func (r EscapeGateResult) OK() bool { return len(r.New) == 0 && len(r.Stale) == 0 }

// RunEscapeGate diffs the package's current hotpath diagnostics against the
// allowlist file.
func RunEscapeGate(moduleDir, importPath, pkgDir, allowlistPath string) (EscapeGateResult, error) {
	var res EscapeGateResult
	current, err := CollectEscapeDiags(moduleDir, importPath, pkgDir)
	if err != nil {
		return res, err
	}
	res.Current = current
	allowed, err := ParseAllowlist(allowlistPath)
	if err != nil {
		return res, err
	}
	allowedSet := map[string]bool{}
	for _, d := range allowed {
		allowedSet[d.Key()] = true
	}
	currentSet := map[string]bool{}
	for _, d := range current {
		currentSet[d.Key()] = true
		if !allowedSet[d.Key()] {
			res.New = append(res.New, d)
		}
	}
	for _, d := range allowed {
		if !currentSet[d.Key()] {
			res.Stale = append(res.Stale, d)
		}
	}
	return res, nil
}
