// Package analysis is the project's static-invariant suite: a set of
// go/analysis-style analyzers, written against the standard library only (the
// container deliberately carries no golang.org/x/tools), that turn the
// invariants this codebase's performance and correctness rest on — stated
// until now only in comments — into machine-checked CI failures.
//
// The analyzers (run by cmd/oasis-vet over ./...):
//
//   - hotpathalloc: functions annotated //oasis:hotpath (the DP kernel sweep,
//     the scratch/free-list operations, the merger release loop) must contain
//     no heap-allocating constructs: make/new/append, composite literals
//     behind &, slice/map/function literals, string<->[]byte conversions,
//     implicit interface conversions at call sites or assignments, and any
//     fmt call.  //oasis:allow-alloc <reason> on (or immediately above) the
//     offending line accepts a justified exception, e.g. amortized arena
//     growth into buffers reused across queries.
//
//   - ctxflow: a function that takes a context.Context must not manufacture
//     context.Background() or context.TODO() inside its body — that silently
//     detaches the callee from cancellation and deadlines the caller set.
//     //oasis:allow-ctx <reason> accepts deliberate detachment.
//
//   - cachekey: every result-affecting field of core.Options must be consumed
//     by qcache.NewKey.  A field missing from both the key and the
//     analyzer's allowlist (fields that provably do not change which hits a
//     completed stream contains) means two different searches can share one
//     cache entry: silently wrong answers.
//
//   - faultsite: every faultpoint.Hit/HitBuf site name must be one of the
//     Site* constants registered in internal/faultpoint, every registered
//     site must have at least one live call site, and every registered site
//     must be exercised by a test or CI reference — so failpoints cannot rot
//     into untested names.
//
//   - atomicstate: a struct field accessed through sync/atomic anywhere must
//     never be read or written plainly elsewhere; mixed access is a data race
//     the race detector only finds when both sides happen to run.
//     //oasis:allow-atomic <reason> accepts provably pre-publication access.
//
// The package also hosts the escape gate (escape.go): a compiler-output
// regression check that rebuilds internal/core with -gcflags='-m
// -d=ssa/check_bce/debug=1' and fails when a heap escape or bounds check
// appears inside an //oasis:hotpath function that the checked-in allowlist
// (testdata/escape_allowlist.txt) does not accept.
//
// Annotation reference:
//
//	//oasis:hotpath                  mark a function for hotpathalloc + the escape gate
//	//oasis:allow-alloc <reason>     accept one allocating construct in a hotpath
//	//oasis:allow-ctx <reason>       accept a deliberate context detach
//	//oasis:allow-atomic <reason>    accept a plain access to atomic state
//
// Every allow directive requires a reason; a bare directive is itself a
// finding.  Run the suite locally with:
//
//	go run ./cmd/oasis-vet ./...
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one analyzer finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed, type-checked non-test files.
	Files []*ast.File
	// TestSrc maps the package's test file names (internal and external) to
	// their raw contents.  Test files are not type-checked; analyzers that
	// need "is this name referenced by a test" (faultsite) scan them
	// textually.
	TestSrc map[string][]byte
	Pkg     *types.Package
	Info    *types.Info
	// Dir is the package directory on disk.
	Dir string

	report func(Diagnostic)
	dirs   *directiveIndex
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker.  Run is required; Collect (a gathering
// phase executed over every package before any Run) and Finish (a global
// reconciliation executed after every Run) are optional and let an analyzer
// check whole-program invariants (faultsite, atomicstate) while still
// reporting per-file positions.
//
// Analyzers with cross-package state are constructed fresh per suite run (see
// Analyzers); Run/Collect/Finish closures own that state, so two concurrent
// suites never share it.
type Analyzer struct {
	Name string
	Doc  string
	// Collect gathers facts from one package.  Optional.
	Collect func(*Pass) error
	// Run checks one package, reporting findings via Pass.Reportf.
	Run func(*Pass) error
	// Finish runs once after every package's Run, for whole-program checks.
	// Optional.
	Finish func(report func(Diagnostic)) error
}

// Analyzers returns a fresh instance of the full suite, in the order
// cmd/oasis-vet runs them.  Fresh instances matter: faultsite and atomicstate
// accumulate cross-package facts inside their closures.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewHotPathAlloc(),
		NewCtxFlow(),
		NewCacheKey(DefaultCacheKeyConfig()),
		NewFaultSite(nil),
		NewAtomicState(),
	}
}

// isPkg reports whether obj belongs to the package with the given import
// path (nil-safe; universe objects have a nil package).
func isPkg(obj types.Object, path string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path
}
