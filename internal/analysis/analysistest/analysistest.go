// Package analysistest runs internal/analysis analyzers over small fixture
// packages under testdata/src, checking reported findings against // want
// comments — the same contract as golang.org/x/tools' analysistest, rebuilt
// on the standard library because this container carries no x/tools.
//
// A fixture package lives in <testdata>/src/<name>/ as plain .go files.
// Files named *_test.go are NOT type-checked; their raw text is exposed to
// analyzers through Pass.TestSrc (the faultsite analyzer's test-reference
// check reads it).  Fixture imports resolve first against sibling fixture
// directories (so a fixture qcache can import a fixture core), then against
// the standard library, type-checked from source.
//
// Expectations are trailing comments of the form
//
//	code() // want "substring or regexp" "another"
//
// Each quoted pattern is a regexp that must match exactly one diagnostic
// reported on that line; unmatched diagnostics and unsatisfied wants both
// fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the named fixture packages from dir/src, runs the analyzers'
// Collect/Run/Finish phases over all of them, and checks every finding
// against the fixtures' // want comments.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		root: filepath.Join(dir, "src"),
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
	var pkgs []*analysis.Package
	for _, name := range pkgNames {
		p, err := ld.load(name)
		if err != nil {
			t.Fatalf("fixture %s: %v", name, err)
		}
		pkgs = append(pkgs, p)
	}
	diags, err := analysis.RunSuite(analyzers, pkgs, fset)
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	checkWants(t, fset, pkgs, diags)
}

type fixtureLoader struct {
	root   string
	fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*types.Package
	loaded map[string]*analysis.Package
}

// Import implements types.Importer over the fixture tree with a std
// fallback, so fixture packages can import each other by directory name.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if _, err := os.Stat(filepath.Join(l.root, path)); err == nil {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

func (l *fixtureLoader) load(name string) (*analysis.Package, error) {
	if l.loaded == nil {
		l.loaded = map[string]*analysis.Package{}
	}
	if p, ok := l.loaded[name]; ok {
		return p, nil
	}
	pkgDir := filepath.Join(l.root, name)
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	testSrc := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(pkgDir, e.Name())
		if strings.HasSuffix(e.Name(), "_test.go") {
			src, err := os.ReadFile(full)
			if err != nil {
				return nil, err
			}
			testSrc[e.Name()] = src
			continue
		}
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no non-test .go files", name)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(name, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check: %v", err)
	}
	l.pkgs[name] = tpkg
	p := &analysis.Package{
		Path:    name,
		Dir:     pkgDir,
		Files:   files,
		TestSrc: testSrc,
		Pkg:     tpkg,
		Info:    info,
	}
	l.loaded[name] = p
	return p, nil
}

// want is one expectation: a pattern attached to file:line.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// patternRE accepts Go-style quoted or backquoted patterns, like x/tools'
// analysistest: // want "re" `re`.
var patternRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func checkWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, pm := range patternRE.FindAllStringSubmatch(m[1], -1) {
						text := pm[2] // backquoted form, taken verbatim
						if pm[2] == "" {
							text = strings.ReplaceAll(pm[1], `\"`, `"`)
						}
						re, err := regexp.Compile(text)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, text, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q was not reported", w.file, w.line, w.pattern)
		}
	}
}
