package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestAllowlistRoundTrip(t *testing.T) {
	diags := []EscapeDiag{
		{File: "internal/core/kernel.go", Func: "sweepColumnRef", Message: "Found IsInBounds"},
		{File: "internal/core/search.go", Func: "searcher.allocBand", Message: "escapes to heap"},
		{File: "internal/core/store.go", Func: "nodeHeap.push", Message: "moved to heap: e"},
	}
	path := filepath.Join(t.TempDir(), "allow.txt")
	if err := os.WriteFile(path, []byte(FormatAllowlist(diags)), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, diags) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, diags)
	}
}

func TestParseAllowlistRejectsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "allow.txt")
	if err := os.WriteFile(path, []byte("# comment\nno tabs here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAllowlist(path); err == nil {
		t.Fatal("malformed line parsed without error")
	}
}

// TestEscapeGateSyntheticEscape demonstrates the gate end to end on a
// throwaway module: a //oasis:hotpath function that leaks a pointer fails
// against an empty allowlist, and passes once the diagnostic is baselined.
func TestEscapeGateSyntheticEscape(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpesc\n\ngo 1.24\n")
	write("hot.go", `package hot

// Leak forces a heap escape inside a hotpath function.
//
//oasis:hotpath
func Leak() *int {
	x := 42
	return &x
}

// Clean allocates nothing.
//
//oasis:hotpath
func Clean(a, b int) int { return a + b }
`)
	write("allow.txt", "# empty baseline\n")

	res, err := RunEscapeGate(dir, "tmpesc", ".", filepath.Join(dir, "allow.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatalf("gate passed with an unbaselined escape; current=%v", res.Current)
	}
	found := false
	for _, d := range res.New {
		if d.Func == "Leak" && strings.Contains(d.Message, "moved to heap") {
			found = true
		}
		if d.Func == "Clean" {
			t.Errorf("alloc-free hotpath function flagged: %v", d)
		}
	}
	if !found {
		t.Fatalf("synthetic escape in Leak not reported; new=%v", res.New)
	}

	// Baseline the current diagnostics; the gate must then pass.
	write("allow.txt", FormatAllowlist(res.Current))
	res, err = RunEscapeGate(dir, "tmpesc", ".", filepath.Join(dir, "allow.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("gate failed against its own baseline: new=%v stale=%v", res.New, res.Stale)
	}

	// A baseline entry for a diagnostic the compiler no longer emits is stale.
	write("hot.go", `package hot

// Clean allocates nothing.
//
//oasis:hotpath
func Clean(a, b int) int { return a + b }
`)
	res, err = RunEscapeGate(dir, "tmpesc", ".", filepath.Join(dir, "allow.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stale) == 0 {
		t.Fatal("removing the escape did not mark the baseline entry stale")
	}
}

// TestEscapeGateRealTree enforces the checked-in baseline over internal/core,
// the same check CI runs via oasis-bench -escape-gate.
func TestEscapeGateRealTree(t *testing.T) {
	res, err := RunEscapeGate("../..", "repro/internal/core", "internal/core",
		"testdata/escape_allowlist.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.New {
		t.Errorf("new hotpath compiler diagnostic not in baseline: %v", d)
	}
	for _, d := range res.Stale {
		t.Errorf("stale baseline entry (regenerate with oasis-bench -escape-gate -escape-write): %v", d)
	}
	if len(res.Current) == 0 {
		t.Fatal("no hotpath diagnostics collected; is internal/core still annotated?")
	}
}
