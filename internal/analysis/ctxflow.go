package analysis

import (
	"go/ast"
	"go/types"
)

// NewCtxFlow builds the ctxflow analyzer: a function that takes a
// context.Context must not manufacture context.Background() or context.TODO()
// inside its body.  Doing so silently detaches the work from the caller's
// cancellation and deadline — exactly the bug class the serving path's
// end-to-end ctx plumbing (query timeouts, client disconnects, hedged-request
// cancellation) exists to prevent.  //oasis:allow-ctx <reason> accepts a
// deliberate detach (e.g. a background lifecycle task whose lifetime is the
// process, not the request).
func NewCtxFlow() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "forbid context.Background/TODO inside functions that already take a ctx",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if !takesContext(pass, fn) {
					continue
				}
				checkCtxBody(pass, fn)
			}
		}
		return nil
	}
	return a
}

// takesContext reports whether fn declares a parameter of type
// context.Context.
func takesContext(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if isContextType(pass.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && isPkg(obj, "context")
}

func checkCtxBody(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		if !isPkg(obj, "context") {
			return true
		}
		if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
			return true
		}
		if pass.allowed(call.Pos(), DirAllowCtx) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s: context.%s() inside a function that takes a ctx detaches the callee from the caller's cancellation; thread the ctx parameter through (or annotate %s <reason>)",
			name, sel.Sel.Name, DirAllowCtx)
		return true
	})
}
