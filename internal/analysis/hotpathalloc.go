package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewHotPathAlloc builds the hotpathalloc analyzer: functions annotated
// //oasis:hotpath must not contain heap-allocating constructs.  The DP column
// sweep, the scratch/free-list operations and the merger release loop run
// millions of times per query; a single heap escape sneaking into one of them
// silently undoes the allocation-free kernel the SoA refactor bought.
//
// Flagged constructs: make, new, append, &CompositeLit, slice/map/function
// literals, string<->[]byte conversions, implicit concrete-to-interface
// conversions at call arguments and assignments, and calls into fmt.
// //oasis:allow-alloc <reason> on or immediately above the line accepts a
// justified exception (typically amortized growth of an arena reused across
// queries).
func NewHotPathAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "forbid heap-allocating constructs in //oasis:hotpath functions",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !isHotPath(fn) || fn.Body == nil {
					continue
				}
				(&hotPathCheck{pass: pass, fn: fn}).check()
			}
		}
		return nil
	}
	return a
}

type hotPathCheck struct {
	pass *Pass
	fn   *ast.FuncDecl
}

func (c *hotPathCheck) flag(pos token.Pos, format string, args ...any) {
	if c.pass.allowed(pos, DirAllowAlloc) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *hotPathCheck) check() {
	name := c.fn.Name.Name
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n, name)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.flag(n.Pos(), "%s: &composite literal escapes to the heap", name)
				}
			}
		case *ast.CompositeLit:
			switch c.typeOf(n).(type) {
			case *types.Slice:
				c.flag(n.Pos(), "%s: slice literal allocates", name)
			case *types.Map:
				c.flag(n.Pos(), "%s: map literal allocates", name)
			}
		case *ast.FuncLit:
			c.flag(n.Pos(), "%s: function literal allocates a closure (and captures escape)", name)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					c.checkIfaceConv(c.typeOf(n.Lhs[i]), rhs, name)
				}
			}
		case *ast.GoStmt:
			c.flag(n.Pos(), "%s: go statement allocates a goroutine", name)
		case *ast.DeferStmt:
			c.flag(n.Pos(), "%s: defer allocates a deferred frame on some paths", name)
		}
		return true
	})
}

// typeOf returns the underlying type of e (nil-safe).
func (c *hotPathCheck) typeOf(e ast.Expr) types.Type {
	t := c.pass.Info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func (c *hotPathCheck) checkCall(call *ast.CallExpr, name string) {
	// Conversions in any spelling: string(b), []byte(s), pkg.T(x), (T)(x).
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, name)
		return
	}
	// Builtins and fmt calls.
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := c.pass.Info.Uses[fun].(*types.Builtin); ok {
			switch fun.Name {
			case "make":
				c.flag(call.Pos(), "%s: make allocates", name)
				return
			case "new":
				c.flag(call.Pos(), "%s: new allocates", name)
				return
			case "append":
				c.flag(call.Pos(), "%s: append may grow (allocate) its backing array", name)
				return
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := c.pass.Info.Uses[id].(*types.PkgName); ok {
				if pkg.Imported().Path() == "fmt" {
					c.flag(call.Pos(), "%s: fmt.%s allocates (variadic any boxing and formatting)", name, fun.Sel.Name)
					return
				}
			}
		}
	}
	// Interface conversions at call arguments.
	sig, ok := c.typeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis != token.NoPos {
				continue // f(xs...): the slice is passed through, not boxed per element
			}
			pt = params.At(params.Len() - 1).Type().Underlying().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		c.checkIfaceConv(pt, arg, name)
	}
}

// checkConversion flags string<->[]byte conversions, which copy.
func (c *hotPathCheck) checkConversion(call *ast.CallExpr, name string) {
	if len(call.Args) != 1 {
		return
	}
	to := c.typeOf(call)
	from := c.typeOf(call.Args[0])
	if isString(to) && isByteSlice(from) {
		c.flag(call.Pos(), "%s: string([]byte) conversion copies and allocates", name)
	}
	if isByteSlice(to) && isString(from) {
		c.flag(call.Pos(), "%s: []byte(string) conversion copies and allocates", name)
	}
}

// checkIfaceConv flags an implicit concrete-to-interface conversion of expr
// into target type dst: boxing a non-pointer concrete value allocates.
func (c *hotPathCheck) checkIfaceConv(dst types.Type, expr ast.Expr, name string) {
	if dst == nil {
		return
	}
	if !types.IsInterface(dst.Underlying()) {
		return
	}
	src := c.pass.Info.TypeOf(expr)
	if src == nil || types.IsInterface(src.Underlying()) {
		return
	}
	if _, isPtr := src.Underlying().(*types.Pointer); isPtr {
		return // boxing a pointer stores the pointer word; no new allocation
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	c.flag(expr.Pos(), "%s: implicit conversion of %s to interface %s allocates", name, src, dst)
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
