package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.NewHotPathAlloc()}, "hotalloc")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.NewCtxFlow()}, "ctxflow")
}

func TestCacheKey(t *testing.T) {
	cfg := analysis.CacheKeyConfig{
		OptionsPkgSuffix: "core",
		OptionsType:      "Options",
		KeyFuncPkgName:   "qcache",
		KeyFunc:          "NewKey",
		Exempt: map[string]string{
			"Stats":    "output-only counters",
			"Vanished": "a field that no longer exists: the exemption itself must be flagged",
		},
	}
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.NewCacheKey(cfg)}, "core", "qcache")
}

func TestFaultSite(t *testing.T) {
	ciRefs := map[string]string{
		"ci.yml": "go test ./... # exercises pkg.ci in the smoke step",
	}
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.NewFaultSite(ciRefs)}, "faultpoint", "faultuser")
}

func TestAtomicState(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.NewAtomicState()}, "atomicstate")
}
