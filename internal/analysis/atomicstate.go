package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// atomicFuncs are the sync/atomic package-level functions whose first
// argument is a *T pointer to the word being accessed atomically.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// NewAtomicState builds the atomicstate analyzer: a struct field accessed
// through a sync/atomic function anywhere in the module must never be read or
// written plainly elsewhere.  Mixed access is a data race that the race
// detector only catches when both sides happen to execute in one test run —
// precisely the kind of latent serving bug that surfaces under production
// load.  (Fields of the typed atomic.Int64/Pointer/... wrappers cannot be
// accessed plainly at all, which is why new code should prefer them; this
// analyzer polices the raw-function escape hatch.)  //oasis:allow-atomic
// <reason> accepts provably pre-publication access, e.g. in a constructor
// before the value is shared.
func NewAtomicState() *Analyzer {
	// fieldKey is "pkgpath.RecvType.Field"; positions are kept so Finish can
	// report plain accesses recorded before the atomic use was discovered.
	type plainUse struct {
		key string
		pos token.Position
	}
	atomicFields := map[string]token.Position{}
	var plains []plainUse

	a := &Analyzer{
		Name: "atomicstate",
		Doc:  "fields accessed via sync/atomic must never be accessed plainly",
	}
	a.Collect = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, ok := atomicCall(pass, call); ok && len(call.Args) > 0 {
					if key, ok := addrOfFieldKey(pass, call.Args[0]); ok {
						if _, seen := atomicFields[key]; !seen {
							atomicFields[key] = pass.Fset.Position(call.Args[0].Pos())
						}
					}
				}
				return true
			})
		}
		return nil
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			// Selector nodes that ARE the atomic access (&x.f inside an atomic
			// call's first argument) are sanctioned; every other mention of an
			// atomic field is plain.
			sanctioned := map[*ast.SelectorExpr]bool{}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, ok := atomicCall(pass, call); ok && len(call.Args) > 0 {
					if sel, ok := fieldSelUnderAddr(call.Args[0]); ok {
						sanctioned[sel] = true
					}
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				key, ok := selFieldKey(pass, sel)
				if !ok {
					return true
				}
				if pass.allowed(sel.Pos(), DirAllowAtomic) {
					return true
				}
				plains = append(plains, plainUse{key: key, pos: pass.Fset.Position(sel.Pos())})
				return true
			})
		}
		return nil
	}
	a.Finish = func(report func(Diagnostic)) error {
		for _, p := range plains {
			if _, ok := atomicFields[p.key]; ok {
				report(Diagnostic{Pos: p.pos, Message: p.key + " is accessed via sync/atomic elsewhere; this plain access races with it (use the atomic op, or annotate " + DirAllowAtomic + " <reason> if provably pre-publication)"})
			}
		}
		return nil
	}
	return a
}

// atomicCall reports whether call invokes a sync/atomic package function with
// a pointer-to-word first argument, returning the function name.
func atomicCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "sync/atomic" {
		return "", false
	}
	if !atomicFuncs[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// fieldSelUnderAddr unwraps &x.f (with any parenthesization) to the field
// selector.
func fieldSelUnderAddr(arg ast.Expr) (*ast.SelectorExpr, bool) {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, false
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	return sel, ok
}

// addrOfFieldKey resolves &x.f to its field key.
func addrOfFieldKey(pass *Pass, arg ast.Expr) (string, bool) {
	sel, ok := fieldSelUnderAddr(arg)
	if !ok {
		return "", false
	}
	return selFieldKey(pass, sel)
}

// selFieldKey resolves a field-selector expression to "pkgpath.Type.Field".
func selFieldKey(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	s := pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return "", false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	var b strings.Builder
	b.WriteString(v.Pkg().Path())
	b.WriteByte('.')
	b.WriteString(named.Obj().Name())
	b.WriteByte('.')
	b.WriteString(v.Name())
	return b.String(), true
}
