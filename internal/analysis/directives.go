package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive prefixes.  A directive comment is a //-comment whose text starts
// with one of these (no space between // and oasis:, like //go: directives).
const (
	// DirHotPath marks a function for hotpathalloc and the escape gate.
	DirHotPath = "//oasis:hotpath"
	// DirAllowAlloc accepts one allocating construct inside a hotpath
	// function; a reason is required.
	DirAllowAlloc = "//oasis:allow-alloc"
	// DirAllowCtx accepts a deliberate context.Background/TODO inside a
	// ctx-taking function; a reason is required.
	DirAllowCtx = "//oasis:allow-ctx"
	// DirAllowAtomic accepts a plain access to a field otherwise accessed
	// through sync/atomic; a reason is required.
	DirAllowAtomic = "//oasis:allow-atomic"
)

// directiveIndex locates //oasis: directives by file line, so analyzers can
// ask "is the line of this finding (or the line above it) annotated".
type directiveIndex struct {
	// byLine maps file name -> line -> full directive text of every //oasis:
	// comment ON that line (directives above a statement land on their own
	// line; trailing directives share the statement's line).
	byLine map[string]map[int]string
}

func buildDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	ix := &directiveIndex{byLine: map[string]map[int]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//oasis:") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := ix.byLine[pos.Filename]
				if m == nil {
					m = map[int]string{}
					ix.byLine[pos.Filename] = m
				}
				m[pos.Line] = c.Text
			}
		}
	}
	return ix
}

// directives returns the pass's lazily built directive index.
func (p *Pass) directives() *directiveIndex {
	if p.dirs == nil {
		p.dirs = buildDirectiveIndex(p.Fset, p.Files)
	}
	return p.dirs
}

// lookup returns the directive text covering pos: a directive on the same
// line, or on the line immediately above.
func (ix *directiveIndex) lookup(fset *token.FileSet, pos token.Pos, dir string) (string, bool) {
	p := fset.Position(pos)
	m := ix.byLine[p.Filename]
	if m == nil {
		return "", false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if text, ok := m[line]; ok && strings.HasPrefix(text, dir) {
			return text, true
		}
	}
	return "", false
}

// allowed reports whether the finding at pos is suppressed by the given allow
// directive.  A directive without a reason does not suppress: it is reported
// itself, so escape hatches always document why.
func (p *Pass) allowed(pos token.Pos, dir string) bool {
	text, ok := p.directives().lookup(p.Fset, pos, dir)
	if !ok {
		return false
	}
	if directiveReason(text, dir) == "" {
		p.Reportf(pos, "%s needs a reason: %s <why this is safe>", dir, dir)
		return true // suppress the original finding; the bare directive is the finding
	}
	return true
}

// directiveReason extracts the free-text reason following a directive.
func directiveReason(text, dir string) string {
	return strings.TrimSpace(strings.TrimPrefix(text, dir))
}

// isHotPath reports whether the function declaration carries //oasis:hotpath
// in its doc comment.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, DirHotPath) {
			return true
		}
	}
	return false
}
