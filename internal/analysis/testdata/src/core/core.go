// Package core is a miniature of the real internal/core for the cachekey
// fixture: an Options struct whose result-affecting fields the qcache fixture
// must consume.
package core

// Options mirrors the shape of the real search options.
type Options struct {
	// Scheme and MinScore are consumed by the fixture qcache.NewKey.
	Scheme   string
	MinScore int
	// Extra is result-affecting but NOT consumed and NOT exempt: a finding.
	Extra bool
	// Stats is exempted by the test's CacheKeyConfig.
	Stats *int
}
