// Package qcache is a miniature of the real internal/qcache for the cachekey
// fixture: its NewKey misses core.Options.Extra, and the test config carries
// a rotted exemption for a field that no longer exists.
package qcache

import "core"

func NewKey(o core.Options) string { // want `core.Options.Extra is not consumed by NewKey` `exempt field Options.Vanished no longer exists`
	if o.MinScore > 0 {
		return o.Scheme + "+min"
	}
	return o.Scheme
}
