// Package faultuser calls the fixture failpoint registry in every legal and
// illegal way the faultsite analyzer distinguishes.
package faultuser

import "faultpoint"

func work(name string) {
	_ = faultpoint.Hit(faultpoint.SiteUsed)
	_ = faultpoint.Hit(faultpoint.SiteCI)
	_ = faultpoint.Hit(faultpoint.SiteUntested)
	_ = faultpoint.Hit("pkg.raw") // want `must be named through its Site\* constant`
	_ = faultpoint.Hit(name)      // want `not a computed value`
}
