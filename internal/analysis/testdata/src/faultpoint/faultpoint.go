// Package faultpoint is a miniature failpoint registry for the faultsite
// fixture.
package faultpoint

const (
	// SiteUsed has a call site and a test reference: clean.
	SiteUsed = "pkg.used"
	// SiteCI has a call site and is referenced only by CI text: clean.
	SiteCI = "pkg.ci"
	// SiteUnwired is registered and test-referenced but never hit.
	SiteUnwired = "pkg.unwired" // want `has no faultpoint.Hit/HitBuf call site`
	// SiteUntested is hit but never referenced by a test or CI file.
	SiteUntested = "pkg.untested" // want `not referenced by any test or CI file`
)

// Hit mimics the real registry's injection probe.
func Hit(site string) error { _ = site; return nil }
