package faultpoint

// This fixture test file is never compiled; its raw text is what the
// faultsite analyzer scans for site references.  It exercises SiteUsed and
// SiteUnwired ("pkg.used", "pkg.unwired") and deliberately omits the fourth
// registered site, whose name must not appear anywhere in this file.
