// Package hotalloc exercises the hotpathalloc analyzer: every allocating
// construct inside a //oasis:hotpath function is flagged; unannotated
// functions and justified //oasis:allow-alloc lines are not.
package hotalloc

import "fmt"

type sink interface{ m() }

type val struct{ x int }

func (v val) m() {}

func take(s sink) {}

var global []int

// grow is hot: every allocating construct below must be flagged.
//
//oasis:hotpath
func grow(xs []int, v val) {
	_ = make([]int, 4)         // want `make allocates`
	_ = new(int)               // want `new allocates`
	global = append(global, 1) // want `append may grow`
	p := &val{}                // want `&composite literal escapes`
	_ = p
	_ = []int{1, 2}      // want `slice literal allocates`
	_ = map[string]int{} // want `map literal allocates`
	f := func() {}       // want `function literal allocates`
	f()
	go f()         // want `go statement allocates`
	defer f()      // want `defer allocates`
	fmt.Println(1) // want `fmt.Println allocates`
	var s sink
	s = v // want `implicit conversion`
	s.m()
	take(v)           // want `implicit conversion`
	b := []byte("hi") // want `conversion copies and allocates`
	_ = string(b)     // want `conversion copies and allocates`
}

// cold is not annotated: identical constructs are fine here.
func cold() []int {
	out := make([]int, 8)
	return append(out, 1)
}

// allowed demonstrates the escape hatch: a justified directive suppresses the
// finding.
//
//oasis:hotpath
func allowed(xs []int) []int {
	//oasis:allow-alloc amortized growth of an arena reused across queries
	xs = append(xs, 1)
	return append(xs, 2) //oasis:allow-alloc trailing form works too
}

// bare shows that an allow directive without a reason is itself reported.
//
//oasis:hotpath
func bare(xs []int) []int {
	//oasis:allow-alloc
	return append(xs, 1) // want `needs a reason`
}
