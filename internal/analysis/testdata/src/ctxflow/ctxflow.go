// Package ctxflow exercises the ctxflow analyzer: a function that takes a
// context must not manufacture a fresh root context inside its body.
package ctxflow

import "context"

func handle(ctx context.Context) error {
	c := context.Background() // want `detaches the callee`
	_ = c
	_ = context.TODO() // want `detaches the callee`
	return ctx.Err()
}

// free takes no ctx; manufacturing a root context is its job.
func free() context.Context {
	return context.Background()
}

// allowed detaches deliberately, with a reason.
func allowed(ctx context.Context) context.Context {
	//oasis:allow-ctx lifecycle task whose lifetime is the process, not the request
	return context.Background()
}

// bare shows that an allow directive without a reason is itself reported.
func bare(ctx context.Context) context.Context {
	//oasis:allow-ctx
	return context.Background() // want `needs a reason`
}
