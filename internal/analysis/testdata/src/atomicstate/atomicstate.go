// Package atomicstate exercises the atomicstate analyzer: a field touched by
// sync/atomic anywhere must never be accessed plainly elsewhere.
package atomicstate

import "sync/atomic"

type counter struct {
	n    int64 // accessed atomically in inc: plain access elsewhere races
	cold int64 // never accessed atomically: plain access is fine
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) load() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) bad() int64 {
	return c.n // want `races with it`
}

func (c *counter) reset() {
	//oasis:allow-atomic constructor path; the counter is not yet shared
	c.n = 0
}

func (c *counter) fine() int64 {
	c.cold++
	return c.cold
}
