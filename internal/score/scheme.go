package score

import "fmt"

// Scheme bundles a substitution matrix with the fixed (linear) gap penalty
// model used throughout the paper: a run of k insertions or deletions
// contributes k*Gap to the alignment score, with Gap < 0.
//
// The paper notes that its OASIS and S-W implementations do not support
// affine gaps; AffineScheme models the parameters so the extension is
// additive, but the aligners in this repository accept only Scheme.
type Scheme struct {
	Matrix *Matrix
	// Gap is the per-symbol insertion/deletion penalty (must be negative).
	Gap int
}

// NewScheme validates and returns a scoring scheme.
func NewScheme(m *Matrix, gap int) (Scheme, error) {
	s := Scheme{Matrix: m, Gap: gap}
	return s, s.Validate()
}

// MustScheme is NewScheme that panics on error; intended for tests and
// examples.
func MustScheme(m *Matrix, gap int) Scheme {
	s, err := NewScheme(m, gap)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks that the scheme is usable for local alignment: a matrix
// must be present, the gap penalty must be negative, and the matrix must
// contain at least one positive score (otherwise no local alignment can ever
// score above zero).
func (s Scheme) Validate() error {
	if s.Matrix == nil {
		return fmt.Errorf("score: scheme has no matrix")
	}
	if s.Gap >= 0 {
		return fmt.Errorf("score: gap penalty %d must be negative", s.Gap)
	}
	if s.Matrix.MaxScore() <= 0 {
		return fmt.Errorf("score: matrix %q has no positive scores", s.Matrix.Name())
	}
	return nil
}

// GapCost returns the penalty of a gap of length k (k >= 0).
func (s Scheme) GapCost(k int) int { return k * s.Gap }

// AffineScheme describes an affine gap model (open + extend); provided for
// API completeness and future work, as discussed in the paper's Section 6.
type AffineScheme struct {
	Matrix *Matrix
	// Open is the penalty charged when a gap is opened (negative).
	Open int
	// Extend is the penalty charged per gap symbol (negative).
	Extend int
}

// GapCost returns the penalty of a gap of length k under the affine model.
func (s AffineScheme) GapCost(k int) int {
	if k <= 0 {
		return 0
	}
	return s.Open + k*s.Extend
}

// Linear converts the affine scheme into the nearest linear scheme (the one
// the paper's implementation supports), by folding the open cost into the
// per-symbol cost for gaps of length one.
func (s AffineScheme) Linear() Scheme {
	return Scheme{Matrix: s.Matrix, Gap: s.Open + s.Extend}
}
