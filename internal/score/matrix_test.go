package score

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func TestBLOSUM62WellKnownValues(t *testing.T) {
	m := BLOSUM62()
	cases := []struct {
		a, b byte
		want int
	}{
		{'A', 'A', 4}, {'W', 'W', 11}, {'C', 'C', 9},
		{'A', 'R', -1}, {'R', 'A', -1},
		{'W', 'G', -2}, {'I', 'L', 2}, {'E', 'Q', 2},
		{'D', 'E', 2}, {'K', 'R', 2}, {'F', 'Y', 3},
		{'P', 'W', -4}, {'X', 'X', -1},
	}
	for _, c := range cases {
		if got := m.ScoreLetters(c.a, c.b); got != c.want {
			t.Errorf("BLOSUM62(%c,%c) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBuiltinMatricesSymmetric(t *testing.T) {
	for _, m := range []*Matrix{BLOSUM62(), PAM30(), PAM70(), PAM250(), UnitDNA(), UnitProtein(), BLASTDNA()} {
		if !m.IsSymmetric() {
			t.Errorf("matrix %s is not symmetric", m.Name())
		}
		if m.MaxScore() <= 0 {
			t.Errorf("matrix %s has no positive score", m.Name())
		}
		if m.MinScore() >= 0 {
			t.Errorf("matrix %s has no negative score", m.Name())
		}
	}
}

func TestBuiltinMatricesNegativeExpectation(t *testing.T) {
	for _, m := range []*Matrix{BLOSUM62(), PAM30(), PAM70(), PAM250()} {
		p := DefaultFrequencies(m)
		if e := m.ExpectedScore(p); e >= 0 {
			t.Errorf("matrix %s expected score %v >= 0", m.Name(), e)
		}
	}
	if e := UnitDNA().ExpectedScore(DefaultFrequencies(UnitDNA())); e >= 0 {
		t.Errorf("unit DNA expected score %v >= 0", e)
	}
}

func TestUnitDNAMatchesPaperTable1(t *testing.T) {
	m := UnitDNA()
	for _, a := range []byte{'A', 'C', 'G', 'T'} {
		for _, b := range []byte{'A', 'C', 'G', 'T'} {
			want := -1
			if a == b {
				want = 1
			}
			if got := m.ScoreLetters(a, b); got != want {
				t.Errorf("unit(%c,%c) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMatrixTerminatorScoring(t *testing.T) {
	m := BLOSUM62()
	if m.Score(seq.Terminator, 0) != NegInf || m.Score(0, seq.Terminator) != NegInf {
		t.Fatal("terminator must score NegInf")
	}
	if m.RowMax(seq.Terminator) != NegInf {
		t.Fatal("terminator row max must be NegInf")
	}
}

func TestMatrixRowMax(t *testing.T) {
	m := BLOSUM62()
	codeW, _ := seq.Protein.Code('W')
	if m.RowMax(codeW) != 11 {
		t.Fatalf("RowMax(W) = %d, want 11", m.RowMax(codeW))
	}
	codeA, _ := seq.Protein.Code('A')
	if m.RowMax(codeA) != 4 {
		t.Fatalf("RowMax(A) = %d, want 4", m.RowMax(codeA))
	}
}

func TestMatrixRowMaxProperty(t *testing.T) {
	m := PAM30()
	f := func(code uint8) bool {
		c := byte(code) % byte(m.Size())
		best := NegInf
		for j := 0; j < m.Size(); j++ {
			if s := m.Score(c, byte(j)); s > best {
				best = s
			}
		}
		return m.RowMax(c) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	if ByName("blosum62") != BLOSUM62() {
		t.Fatal("ByName(blosum62) failed")
	}
	if ByName("PAM30") != PAM30() {
		t.Fatal("ByName(PAM30) failed")
	}
	if ByName("nosuch") != nil {
		t.Fatal("ByName(nosuch) should be nil")
	}
}

func TestParseMatrixRoundTrip(t *testing.T) {
	text := BLOSUM62().String()
	m, err := ParseMatrix(strings.NewReader(text), "BLOSUM62-copy", seq.Protein, -4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Size(); i++ {
		for j := 0; j < m.Size(); j++ {
			if m.Score(byte(i), byte(j)) != BLOSUM62().Score(byte(i), byte(j)) {
				t.Fatalf("parse round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestParseMatrixErrors(t *testing.T) {
	if _, err := ParseMatrix(strings.NewReader(""), "x", seq.DNA, 0); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := ParseMatrix(strings.NewReader("A C\nA 1\n"), "x", seq.DNA, 0); err == nil {
		t.Fatal("expected error for short row")
	}
	if _, err := ParseMatrix(strings.NewReader("A C\nA 1 z\n"), "x", seq.DNA, 0); err == nil {
		t.Fatal("expected error for non-numeric value")
	}
	if _, err := ParseMatrix(strings.NewReader("AB C\nA 1 2\n"), "x", seq.DNA, 0); err == nil {
		t.Fatal("expected error for multi-char header")
	}
}

func TestNewMatrixFromTable(t *testing.T) {
	table := map[byte]map[byte]int{
		'A': {'A': 5, 'C': -2},
		'C': {'C': 5},
	}
	m, err := NewMatrix("mini", seq.DNA, table, -3)
	if err != nil {
		t.Fatal(err)
	}
	if m.ScoreLetters('A', 'A') != 5 || m.ScoreLetters('C', 'A') != -2 {
		t.Fatal("table lookup (with symmetry) failed")
	}
	if m.ScoreLetters('G', 'T') != -3 {
		t.Fatal("default score not applied")
	}
	if _, err := NewMatrix("nil", nil, table, 0); err == nil {
		t.Fatal("expected error for nil alphabet")
	}
}

func TestNewMatrixFromValuesSizeCheck(t *testing.T) {
	if _, err := NewMatrixFromValues("bad", seq.DNA, []int{1, 2, 3}); err == nil {
		t.Fatal("expected size error")
	}
}

func TestMatchMismatchUnknownNeverMatches(t *testing.T) {
	m := MatchMismatch("test", seq.DNA, 3, -2)
	if m.ScoreLetters('N', 'N') != -2 {
		t.Fatalf("N-N should score mismatch, got %d", m.ScoreLetters('N', 'N'))
	}
	if m.ScoreLetters('A', 'A') != 3 {
		t.Fatal("A-A should score match")
	}
}
