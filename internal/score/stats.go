package score

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/seq"
)

// KarlinAltschul holds the statistical parameters relating local-alignment
// scores to expectation values (E-values).  The paper's Equation 2 is
//
//	E = K * m * n * exp(-lambda * S)
//
// where m is the query length, n the database size, and S the alignment
// score; Equation 3 inverts it to obtain the minScore threshold OASIS uses.
type KarlinAltschul struct {
	Lambda float64
	K      float64
	// H is the relative entropy of the scoring system (bits of information
	// per aligned pair); reported for diagnostics.
	H float64
}

// DefaultFrequencies returns the background residue frequencies used when a
// caller does not supply database-specific frequencies: the Robinson &
// Robinson amino-acid frequencies for protein alphabets and uniform
// frequencies for nucleotide alphabets.  The slice is indexed by symbol code
// and sums to 1.
func DefaultFrequencies(m *Matrix) []float64 {
	n := m.Size()
	p := make([]float64, n)
	if m.Alphabet().Kind() == seq.KindProtein {
		// Robinson & Robinson 1991 frequencies in ARNDCQEGHILKMFPSTWYV
		// order; B, Z, X receive a tiny residual mass.
		rr := []float64{
			0.07805, 0.05129, 0.04487, 0.05364, 0.01925,
			0.04264, 0.06295, 0.07377, 0.02199, 0.05142,
			0.09019, 0.05744, 0.02243, 0.03856, 0.05203,
			0.07120, 0.05841, 0.01330, 0.03216, 0.06441,
		}
		var sum float64
		for i := 0; i < n; i++ {
			if i < len(rr) {
				p[i] = rr[i]
			} else {
				p[i] = 1e-4
			}
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		return p
	}
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}

// NormalizeFrequencies rescales freqs so they sum to one, substituting the
// default distribution when the input is empty or degenerate.
func NormalizeFrequencies(m *Matrix, freqs []float64) []float64 {
	if len(freqs) < m.Size() {
		return DefaultFrequencies(m)
	}
	out := make([]float64, m.Size())
	var sum float64
	for i := range out {
		f := freqs[i]
		if f < 0 {
			f = 0
		}
		out[i] = f
		sum += f
	}
	if sum <= 0 {
		return DefaultFrequencies(m)
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Lambda solves sum_ij p_i p_j exp(lambda*s_ij) = 1 for lambda > 0 by
// bisection.  It returns an error when the scoring system is invalid for
// local alignment (non-negative expected score or no positive score).
func Lambda(m *Matrix, freqs []float64) (float64, error) {
	p := NormalizeFrequencies(m, freqs)
	if m.ExpectedScore(p) >= 0 {
		return 0, fmt.Errorf("score: matrix %q has non-negative expected score; Karlin-Altschul statistics undefined", m.Name())
	}
	if m.MaxScore() <= 0 {
		return 0, fmt.Errorf("score: matrix %q has no positive score", m.Name())
	}
	f := func(lambda float64) float64 {
		var s float64
		for i := 0; i < m.Size(); i++ {
			if p[i] == 0 {
				continue
			}
			for j := 0; j < m.Size(); j++ {
				if p[j] == 0 {
					continue
				}
				s += p[i] * p[j] * math.Exp(lambda*float64(m.Score(byte(i), byte(j))))
			}
		}
		return s - 1
	}
	// f(0) = 0; f'(0) = expected score < 0, so f dips below zero and rises
	// back through zero at the unique positive root.  Find an upper bracket.
	hi := 0.5
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e3 {
			return 0, fmt.Errorf("score: failed to bracket lambda for matrix %q", m.Name())
		}
	}
	lo := 1e-9
	for f(lo) > 0 {
		lo /= 2
		if lo < 1e-300 {
			return 0, fmt.Errorf("score: failed to bracket lambda (lower) for matrix %q", m.Name())
		}
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Entropy returns the relative entropy H of the scoring system in nats per
// aligned pair, given lambda.
func Entropy(m *Matrix, freqs []float64, lambda float64) float64 {
	p := NormalizeFrequencies(m, freqs)
	var h float64
	for i := 0; i < m.Size(); i++ {
		for j := 0; j < m.Size(); j++ {
			s := float64(m.Score(byte(i), byte(j)))
			h += lambda * s * p[i] * p[j] * math.Exp(lambda*s)
		}
	}
	return h
}

// Params computes the Karlin-Altschul parameters for a matrix and background
// frequencies.  Lambda and H are computed exactly; K uses the standard
// high-scoring-segment approximation K ~= C * exp(-2*sigma) where the
// correction is estimated from the score distribution — adequate for
// converting between E-values and score thresholds, which is all the paper
// (and this reproduction) needs.  CalibrateGumbel provides an empirical
// alternative.
func Params(m *Matrix, freqs []float64) (KarlinAltschul, error) {
	lambda, err := Lambda(m, freqs)
	if err != nil {
		return KarlinAltschul{}, err
	}
	h := Entropy(m, freqs, lambda)
	// Approximation for K (Karlin & Altschul 1990, eq. 5 simplified):
	// K ≈ H / lambda * exp(-lambda * delta) where delta is the mean step of
	// the associated random walk conditioned on positive excursions.  We
	// use the widely quoted practical approximation K ≈ 0.7 * H / lambda *
	// exp(-lambda), clamped into the empirically observed [0.01, 0.5] range
	// for standard matrices.
	k := 0.7 * h / lambda * math.Exp(-lambda)
	if k < 0.01 {
		k = 0.01
	}
	if k > 0.5 {
		k = 0.5
	}
	return KarlinAltschul{Lambda: lambda, K: k, H: h}, nil
}

// EValue converts an alignment score into the expected number of chance
// alignments with an equal or better score (paper Equation 2).
func (ka KarlinAltschul) EValue(s int, queryLen int, dbLen int64) float64 {
	return ka.K * float64(queryLen) * float64(dbLen) * math.Exp(-ka.Lambda*float64(s))
}

// BitScore converts a raw score into a bit score.
func (ka KarlinAltschul) BitScore(s int) float64 {
	return (ka.Lambda*float64(s) - math.Log(ka.K)) / math.Ln2
}

// MinScore converts an E-value threshold into the minimum raw alignment
// score, rounding up (paper Equation 3).  The result is never below 1.
func (ka KarlinAltschul) MinScore(eValue float64, queryLen int, dbLen int64) int {
	if eValue <= 0 {
		eValue = math.SmallestNonzeroFloat64
	}
	s := math.Log(ka.K*float64(queryLen)*float64(dbLen)/eValue) / ka.Lambda
	ms := int(math.Ceil(s))
	if ms < 1 {
		ms = 1
	}
	return ms
}

// CalibrateGumbel estimates lambda and K empirically by aligning random
// sequence pairs and fitting the extreme-value (Gumbel) distribution of
// maximal segment scores by the method of moments.  It provides an
// independent check of Params; scoreFn must return the optimal local
// alignment score of two random sequences of the given lengths.
func CalibrateGumbel(m *Matrix, freqs []float64, seqLen, trials int, rng *rand.Rand,
	scoreFn func(a, b []byte) int) (KarlinAltschul, error) {
	if trials < 8 {
		return KarlinAltschul{}, fmt.Errorf("score: need at least 8 calibration trials, got %d", trials)
	}
	p := NormalizeFrequencies(m, freqs)
	cdf := make([]float64, len(p))
	var acc float64
	for i, f := range p {
		acc += f
		cdf[i] = acc
	}
	sample := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			u := rng.Float64()
			j := sort.SearchFloat64s(cdf, u)
			if j >= len(cdf) {
				j = len(cdf) - 1
			}
			out[i] = byte(j)
		}
		return out
	}
	scores := make([]float64, trials)
	for t := 0; t < trials; t++ {
		a := sample(seqLen)
		b := sample(seqLen)
		scores[t] = float64(scoreFn(a, b))
	}
	var mean, sd float64
	for _, s := range scores {
		mean += s
	}
	mean /= float64(trials)
	for _, s := range scores {
		sd += (s - mean) * (s - mean)
	}
	sd = math.Sqrt(sd / float64(trials))
	if sd <= 0 {
		return KarlinAltschul{}, fmt.Errorf("score: degenerate calibration sample (all scores equal)")
	}
	// Gumbel method of moments: sd = pi/(lambda*sqrt(6)),
	// mean = mu + gamma/lambda, P(S>x) ~ K*m*n*exp(-lambda x) gives
	// mu = ln(K*m*n)/lambda.
	const gamma = 0.5772156649015329
	lambda := math.Pi / (sd * math.Sqrt(6))
	mu := mean - gamma/lambda
	k := math.Exp(lambda*mu) / (float64(seqLen) * float64(seqLen))
	h := Entropy(m, p, lambda)
	return KarlinAltschul{Lambda: lambda, K: k, H: h}, nil
}
