// Package score provides substitution matrices, gap models and the
// alignment-score statistics (Karlin–Altschul) needed to convert between
// BLAST-style E-values and the minScore threshold that drives OASIS
// (Equations 2 and 3 of the paper).
package score

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/seq"
)

// NegInf is the sentinel used for "pruned / impossible" alignment scores.
// It is large enough in magnitude to dominate any real score but far from
// the int32/int overflow boundary so that adding matrix scores to it cannot
// wrap around.
const NegInf = -(1 << 29)

// Matrix is a substitution matrix over a fixed alphabet.  Scores are indexed
// by encoded symbol codes.  Matrices are immutable after construction and
// safe for concurrent use.
type Matrix struct {
	name     string
	alphabet *seq.Alphabet
	n        int
	values   []int // n*n, row-major
	rowMax   []int // max over each row
	maxScore int   // max over the whole matrix
	minScore int   // min over the whole matrix
}

// NewMatrix builds a matrix from a letter-keyed score table.  Every pair of
// letters present in the alphabet must be covered either by table[a][b] or by
// table[b][a] (symmetry is assumed when only one direction is present);
// missing pairs default to the provided defaultScore.
func NewMatrix(name string, a *seq.Alphabet, table map[byte]map[byte]int, defaultScore int) (*Matrix, error) {
	if a == nil {
		return nil, fmt.Errorf("score: nil alphabet")
	}
	n := a.Size()
	m := &Matrix{
		name:     name,
		alphabet: a,
		n:        n,
		values:   make([]int, n*n),
		rowMax:   make([]int, n),
	}
	letters := a.Letters()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v, ok := lookupPair(table, letters[i], letters[j])
			if !ok {
				v = defaultScore
			}
			m.values[i*n+j] = v
		}
	}
	m.finish()
	return m, nil
}

// NewMatrixFromValues builds a matrix directly from a code-indexed score
// slice of length Size*Size (row-major).
func NewMatrixFromValues(name string, a *seq.Alphabet, values []int) (*Matrix, error) {
	n := a.Size()
	if len(values) != n*n {
		return nil, fmt.Errorf("score: matrix %q has %d values, want %d", name, len(values), n*n)
	}
	m := &Matrix{name: name, alphabet: a, n: n, values: append([]int(nil), values...), rowMax: make([]int, n)}
	m.finish()
	return m, nil
}

func (m *Matrix) finish() {
	m.maxScore = m.values[0]
	m.minScore = m.values[0]
	for i := 0; i < m.n; i++ {
		best := m.values[i*m.n]
		for j := 0; j < m.n; j++ {
			v := m.values[i*m.n+j]
			if v > best {
				best = v
			}
			if v > m.maxScore {
				m.maxScore = v
			}
			if v < m.minScore {
				m.minScore = v
			}
		}
		m.rowMax[i] = best
	}
}

func lookupPair(table map[byte]map[byte]int, a, b byte) (int, bool) {
	if row, ok := table[a]; ok {
		if v, ok := row[b]; ok {
			return v, true
		}
	}
	if row, ok := table[b]; ok {
		if v, ok := row[a]; ok {
			return v, true
		}
	}
	return 0, false
}

// Name returns the matrix name (e.g. "BLOSUM62").
func (m *Matrix) Name() string { return m.name }

// Alphabet returns the alphabet the matrix is defined over.
func (m *Matrix) Alphabet() *seq.Alphabet { return m.alphabet }

// Score returns the substitution score for two encoded symbols.  Scoring
// against a terminator returns NegInf (alignments never cross sequence
// boundaries).
func (m *Matrix) Score(a, b byte) int {
	if int(a) >= m.n || int(b) >= m.n {
		return NegInf
	}
	return m.values[int(a)*m.n+int(b)]
}

// ScoreLetters returns the substitution score for two residue characters.
func (m *Matrix) ScoreLetters(a, b byte) int {
	ca, _ := m.alphabet.Code(a)
	cb, _ := m.alphabet.Code(b)
	return m.Score(ca, cb)
}

// RowMax returns the maximum score achievable by substituting symbol a with
// any symbol; used to build the OASIS heuristic vector.
func (m *Matrix) RowMax(a byte) int {
	if int(a) >= m.n {
		return NegInf
	}
	return m.rowMax[a]
}

// MaxScore returns the largest entry of the matrix.
func (m *Matrix) MaxScore() int { return m.maxScore }

// MinScore returns the smallest entry of the matrix.
func (m *Matrix) MinScore() int { return m.minScore }

// Size returns the alphabet size n; the matrix is n x n.
func (m *Matrix) Size() int { return m.n }

// IsSymmetric reports whether the matrix is symmetric; all built-in matrices
// are.
func (m *Matrix) IsSymmetric() bool {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.values[i*m.n+j] != m.values[j*m.n+i] {
				return false
			}
		}
	}
	return true
}

// ExpectedScore returns the expected pairwise score under the residue
// frequency vector p (indexed by symbol code).  A usable local-alignment
// matrix must have a negative expected score.
func (m *Matrix) ExpectedScore(p []float64) float64 {
	var e float64
	for i := 0; i < m.n && i < len(p); i++ {
		for j := 0; j < m.n && j < len(p); j++ {
			e += p[i] * p[j] * float64(m.values[i*m.n+j])
		}
	}
	return e
}

// String renders the matrix in NCBI text format.
func (m *Matrix) String() string {
	var sb strings.Builder
	letters := m.alphabet.Letters()
	fmt.Fprintf(&sb, "# %s\n ", m.name)
	for _, c := range letters {
		fmt.Fprintf(&sb, " %3c", c)
	}
	sb.WriteByte('\n')
	for i, c := range letters {
		fmt.Fprintf(&sb, "%c", c)
		for j := range letters {
			fmt.Fprintf(&sb, " %3d", m.values[i*m.n+j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ParseMatrix reads a matrix in the NCBI text format (a header row of
// letters followed by one row per letter).  Letters absent from the
// alphabet are ignored; alphabet letters absent from the file default to
// defaultScore.
func ParseMatrix(r io.Reader, name string, a *seq.Alphabet, defaultScore int) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var cols []byte
	table := map[byte]map[byte]int{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if cols == nil {
			for _, f := range fields {
				if len(f) != 1 {
					return nil, fmt.Errorf("score: bad matrix header field %q", f)
				}
				cols = append(cols, f[0])
			}
			continue
		}
		if len(fields) != len(cols)+1 || len(fields[0]) != 1 {
			return nil, fmt.Errorf("score: bad matrix row %q", line)
		}
		rowLetter := fields[0][0]
		row := map[byte]int{}
		for i, f := range fields[1:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("score: bad matrix value %q: %w", f, err)
			}
			row[cols[i]] = v
		}
		table[rowLetter] = row
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cols == nil {
		return nil, fmt.Errorf("score: empty matrix input")
	}
	return NewMatrix(name, a, table, defaultScore)
}
