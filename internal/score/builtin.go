package score

import (
	"sync"

	"repro/internal/seq"
)

// blosum62Rows is the standard NCBI BLOSUM62 table over the letter ordering
// ARNDCQEGHILKMFPSTWYVBZX (the same ordering used by seq.Protein).
var blosum62Rows = [23][23]int{
	/* A */ {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0, -2, -1, 0},
	/* R */ {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3, -1, 0, -1},
	/* N */ {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3, 3, 0, -1},
	/* D */ {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3, 4, 1, -1},
	/* C */ {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2},
	/* Q */ {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2, 0, 3, -1},
	/* E */ {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1},
	/* G */ {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3, -1, -2, -1},
	/* H */ {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3, 0, 0, -1},
	/* I */ {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3, -3, -3, -1},
	/* L */ {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1, -4, -3, -1},
	/* K */ {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2, 0, 1, -1},
	/* M */ {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1, -3, -1, -1},
	/* F */ {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1, -3, -3, -1},
	/* P */ {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2, -2, -1, -2},
	/* S */ {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2, 0, 0, 0},
	/* T */ {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0, -1, -1, 0},
	/* W */ {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3, -4, -3, -2},
	/* Y */ {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1, -3, -2, -1},
	/* V */ {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4, -3, -2, -1},
	/* B */ {-2, -1, 3, 4, -3, 0, 1, -1, 0, -3, -4, 0, -3, -3, -2, 0, -1, -4, -3, -3, 4, 1, -1},
	/* Z */ {-1, 0, 0, 1, -3, 3, 4, -2, 0, -3, -3, 1, -1, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1},
	/* X */ {0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2, 0, 0, -2, -1, -1, -1, -1, -1},
}

// pam30Diagonal is the published NCBI PAM30 diagonal (self-substitution
// scores) in ARNDCQEGHILKMFPSTWYV order.
var pam30Diagonal = [20]int{6, 8, 8, 8, 10, 8, 8, 6, 9, 8, 7, 7, 11, 9, 8, 6, 7, 13, 10, 7}

var (
	buildOnce sync.Once
	blosum62  *Matrix
	pam30     *Matrix
	pam70     *Matrix
	pam250    *Matrix
	unitDNA   *Matrix
	blastDNA  *Matrix
	unitProt  *Matrix
)

func buildBuiltins() {
	n := seq.Protein.Size()
	vals := make([]int, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			vals[i*n+j] = blosum62Rows[i][j]
		}
	}
	blosum62 = mustValues("BLOSUM62", seq.Protein, vals)

	// PAM30 / PAM70: stringent short-query matrices.  The diagonal matches
	// the published NCBI PAM30 diagonal; off-diagonal entries are derived
	// from BLOSUM62 by an affine rescaling that reproduces the PAM
	// matrices' stringency (strongly negative mismatch scores, negative
	// expected score, positive diagonal).  Exact NCBI tables can be loaded
	// with ParseMatrix when byte-for-byte score parity with NCBI tools is
	// required; every algorithm in this repository is matrix-agnostic.
	pam30 = derivePAM("PAM30", 2, -3, -17, pam30Diagonal[:])
	pam70 = derivePAM("PAM70", 2, -2, -11, scaleDiag(pam30Diagonal[:], -1))
	pam250 = derivePAM("PAM250", 1, 0, -8, scaleDiag(pam30Diagonal[:], -3))

	unitDNA = unitMatrix("UNIT-DNA", seq.DNA)
	unitProt = unitMatrix("UNIT-PROTEIN", seq.Protein)
	blastDNA = matchMismatch("BLASTN-2-3", seq.DNA, 2, -3)
}

func mustValues(name string, a *seq.Alphabet, vals []int) *Matrix {
	m, err := NewMatrixFromValues(name, a, vals)
	if err != nil {
		panic(err)
	}
	return m
}

func scaleDiag(d []int, delta int) []int {
	out := make([]int, len(d))
	for i, v := range d {
		out[i] = v + delta
		if out[i] < 2 {
			out[i] = 2
		}
	}
	return out
}

// derivePAM builds a PAM-style matrix: diagonal from diag (B, Z, X handled
// specially), off-diagonal = clamp(scale*blosum62 + shift, floor, -1).
func derivePAM(name string, scale, shift, floor int, diag []int) *Matrix {
	n := seq.Protein.Size()
	vals := make([]int, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j && i < len(diag):
				vals[i*n+j] = diag[i]
			case i == j:
				// B, Z, X self scores.
				vals[i*n+j] = 1
			default:
				v := scale*blosum62Rows[i][j] + shift
				if v > -1 {
					v = -1
				}
				if v < floor {
					v = floor
				}
				vals[i*n+j] = v
			}
		}
	}
	return mustValues(name, seq.Protein, vals)
}

func unitMatrix(name string, a *seq.Alphabet) *Matrix {
	return matchMismatch(name, a, 1, -1)
}

func matchMismatch(name string, a *seq.Alphabet, match, mismatch int) *Matrix {
	n := a.Size()
	vals := make([]int, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				vals[i*n+j] = match
			} else {
				vals[i*n+j] = mismatch
			}
		}
	}
	// The unknown residue never matches positively: aligning N/X with
	// anything (including itself) scores the mismatch value so that runs of
	// unknowns cannot produce spurious high-scoring alignments.
	u := int(a.UnknownCode())
	for i := 0; i < n; i++ {
		vals[u*n+i] = mismatch
		vals[i*n+u] = mismatch
	}
	return mustValues(name, a, vals)
}

// BLOSUM62 returns the standard BLOSUM62 protein matrix.
func BLOSUM62() *Matrix { buildOnce.Do(buildBuiltins); return blosum62 }

// PAM30 returns the stringent short-query protein matrix used by the paper's
// protein experiments (see derivePAM for the derivation notes).
func PAM30() *Matrix { buildOnce.Do(buildBuiltins); return pam30 }

// PAM70 returns a medium-stringency protein matrix.
func PAM70() *Matrix { buildOnce.Do(buildBuiltins); return pam70 }

// PAM250 returns a permissive protein matrix for distant homology.
func PAM250() *Matrix { buildOnce.Do(buildBuiltins); return pam250 }

// UnitDNA returns the unit edit-distance matrix of the paper's Table 1
// (match +1, mismatch -1) over the DNA alphabet.
func UnitDNA() *Matrix { buildOnce.Do(buildBuiltins); return unitDNA }

// UnitProtein returns a unit edit-distance matrix over the protein alphabet.
func UnitProtein() *Matrix { buildOnce.Do(buildBuiltins); return unitProt }

// BLASTDNA returns the blastn-style +2/-3 nucleotide matrix.
func BLASTDNA() *Matrix { buildOnce.Do(buildBuiltins); return blastDNA }

// MatchMismatch builds an arbitrary match/mismatch matrix over an alphabet.
func MatchMismatch(name string, a *seq.Alphabet, match, mismatch int) *Matrix {
	return matchMismatch(name, a, match, mismatch)
}

// ByName returns a built-in matrix by its conventional name, or nil when the
// name is unknown.  Lookup is case-insensitive.
func ByName(name string) *Matrix {
	buildOnce.Do(buildBuiltins)
	switch normalize(name) {
	case "BLOSUM62":
		return blosum62
	case "PAM30":
		return pam30
	case "PAM70":
		return pam70
	case "PAM250":
		return pam250
	case "UNIT", "UNIT-DNA":
		return unitDNA
	case "UNIT-PROTEIN":
		return unitProt
	case "BLASTN", "BLASTN-2-3":
		return blastDNA
	default:
		return nil
	}
}

func normalize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}
