package score

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestLambdaBLOSUM62(t *testing.T) {
	lambda, err := Lambda(BLOSUM62(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The published ungapped lambda for BLOSUM62 with standard background
	// frequencies is ~0.318 (in units of 1/score); allow a generous band
	// since our B/Z/X handling differs slightly from NCBI's.
	if lambda < 0.25 || lambda > 0.40 {
		t.Fatalf("lambda(BLOSUM62) = %v, want ~0.32", lambda)
	}
}

func TestLambdaSatisfiesDefiningEquation(t *testing.T) {
	for _, m := range []*Matrix{BLOSUM62(), PAM30(), UnitDNA()} {
		p := DefaultFrequencies(m)
		lambda, err := Lambda(m, p)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		var sum float64
		for i := 0; i < m.Size(); i++ {
			for j := 0; j < m.Size(); j++ {
				sum += p[i] * p[j] * math.Exp(lambda*float64(m.Score(byte(i), byte(j))))
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("%s: defining equation residual %v", m.Name(), sum-1)
		}
	}
}

func TestLambdaUnitDNAClosedForm(t *testing.T) {
	// For the +1/-1 unit matrix with uniform frequencies over k effective
	// letters, lambda solves q*e^l + (1-q)*e^-l = 1 with q = match prob.
	m := UnitDNA()
	p := DefaultFrequencies(m)
	lambda, err := Lambda(m, p)
	if err != nil {
		t.Fatal(err)
	}
	var q float64
	for i := 0; i < m.Size(); i++ {
		for j := 0; j < m.Size(); j++ {
			if m.Score(byte(i), byte(j)) == 1 {
				q += p[i] * p[j]
			}
		}
	}
	want := math.Log((1 - q) / q)
	if math.Abs(lambda-want) > 1e-6 {
		t.Fatalf("lambda = %v, closed form = %v", lambda, want)
	}
}

func TestLambdaErrorsOnInvalidScoring(t *testing.T) {
	// All-positive matrix: expected score >= 0, lambda undefined.
	m := MatchMismatch("allpos", seq.DNA, 2, 1)
	if _, err := Lambda(m, nil); err == nil {
		t.Fatal("expected error for non-negative expected score")
	}
}

func TestParamsAndEValueRoundTrip(t *testing.T) {
	ka, err := Params(PAM30(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ka.Lambda <= 0 || ka.K <= 0 || ka.H <= 0 {
		t.Fatalf("invalid params: %+v", ka)
	}
	const (
		qLen  = 16
		dbLen = int64(40_000_000)
	)
	for _, e := range []float64{1, 10, 1000, 20000} {
		s := ka.MinScore(e, qLen, dbLen)
		if s < 1 {
			t.Fatalf("MinScore(%v) = %d", e, s)
		}
		// The E-value of the returned score must be at most the requested
		// E-value (MinScore rounds up), and the score one lower must exceed it.
		if got := ka.EValue(s, qLen, dbLen); got > e*1.0000001 {
			t.Errorf("EValue(MinScore(%v)) = %v > %v", e, got, e)
		}
		if s > 1 {
			if got := ka.EValue(s-1, qLen, dbLen); got < e {
				t.Errorf("EValue(MinScore(%v)-1) = %v < %v; MinScore not tight", e, got, e)
			}
		}
	}
}

func TestMinScoreMonotonicInE(t *testing.T) {
	ka, err := Params(BLOSUM62(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.MaxInt32
	for _, e := range []float64{0.001, 0.1, 1, 10, 100, 10000} {
		s := ka.MinScore(e, 20, 1_000_000)
		if s > prev {
			t.Fatalf("MinScore not monotonically non-increasing in E: %d after %d", s, prev)
		}
		prev = s
	}
	// Zero and negative E-values are clamped rather than exploding.
	if s := ka.MinScore(0, 20, 1_000_000); s <= 0 {
		t.Fatal("MinScore(0) must be positive")
	}
}

func TestBitScoreIncreasing(t *testing.T) {
	ka, err := Params(BLOSUM62(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ka.BitScore(50) <= ka.BitScore(40) {
		t.Fatal("bit score must increase with raw score")
	}
}

func TestNormalizeFrequencies(t *testing.T) {
	m := UnitDNA()
	got := NormalizeFrequencies(m, []float64{2, 2, 2, 2, 0})
	var sum float64
	for _, f := range got {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("normalized frequencies sum to %v", sum)
	}
	if got[0] != 0.25 {
		t.Fatalf("freq[0] = %v", got[0])
	}
	// Degenerate input falls back to defaults.
	fall := NormalizeFrequencies(m, []float64{0, 0, 0, 0, 0})
	if fall[0] <= 0 {
		t.Fatal("fallback frequencies must be positive")
	}
	short := NormalizeFrequencies(m, []float64{1})
	if len(short) != m.Size() {
		t.Fatal("short input must fall back to defaults")
	}
}

func TestDefaultFrequenciesSumToOne(t *testing.T) {
	for _, m := range []*Matrix{BLOSUM62(), UnitDNA()} {
		p := DefaultFrequencies(m)
		var sum float64
		for _, f := range p {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s default frequencies sum to %v", m.Name(), sum)
		}
	}
}

func TestCalibrateGumbel(t *testing.T) {
	// Use a trivial quadratic-time S-W on small random sequences; the
	// calibrated lambda should be positive and within a factor ~2 of the
	// analytic value.
	m := UnitDNA()
	gap := -2
	swScore := func(a, b []byte) int {
		prev := make([]int, len(b)+1)
		cur := make([]int, len(b)+1)
		best := 0
		for i := 1; i <= len(a); i++ {
			for j := 1; j <= len(b); j++ {
				s := prev[j-1] + m.Score(a[i-1], b[j-1])
				if v := prev[j] + gap; v > s {
					s = v
				}
				if v := cur[j-1] + gap; v > s {
					s = v
				}
				if s < 0 {
					s = 0
				}
				cur[j] = s
				if s > best {
					best = s
				}
			}
			prev, cur = cur, prev
		}
		return best
	}
	rng := rand.New(rand.NewSource(42))
	ka, err := CalibrateGumbel(m, nil, 120, 40, rng, swScore)
	if err != nil {
		t.Fatal(err)
	}
	if ka.Lambda <= 0 || ka.K <= 0 {
		t.Fatalf("calibration produced invalid params: %+v", ka)
	}
	analytic, _ := Lambda(m, nil)
	if ka.Lambda < analytic/4 || ka.Lambda > analytic*4 {
		t.Fatalf("calibrated lambda %v too far from analytic %v", ka.Lambda, analytic)
	}
	if _, err := CalibrateGumbel(m, nil, 10, 2, rng, swScore); err == nil {
		t.Fatal("expected error for too few trials")
	}
}

func TestSchemeValidation(t *testing.T) {
	if _, err := NewScheme(BLOSUM62(), -8); err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheme(nil, -8); err == nil {
		t.Fatal("expected error for nil matrix")
	}
	if _, err := NewScheme(BLOSUM62(), 0); err == nil {
		t.Fatal("expected error for non-negative gap")
	}
	if _, err := NewScheme(BLOSUM62(), 3); err == nil {
		t.Fatal("expected error for positive gap")
	}
	s := MustScheme(UnitDNA(), -1)
	if s.GapCost(4) != -4 {
		t.Fatalf("GapCost(4) = %d", s.GapCost(4))
	}
}

func TestAffineScheme(t *testing.T) {
	a := AffineScheme{Matrix: BLOSUM62(), Open: -10, Extend: -1}
	if a.GapCost(0) != 0 {
		t.Fatal("zero-length gap must cost nothing")
	}
	if a.GapCost(3) != -13 {
		t.Fatalf("GapCost(3) = %d", a.GapCost(3))
	}
	lin := a.Linear()
	if lin.Gap != -11 {
		t.Fatalf("Linear().Gap = %d", lin.Gap)
	}
}
