package retry

import (
	"context"
	"testing"
	"time"
)

func TestBackoffShape(t *testing.T) {
	p := Default(3, time.Millisecond, 10*time.Millisecond)
	want := []time.Duration{time.Millisecond, 4 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffUncapped(t *testing.T) {
	p := Policy{Base: time.Millisecond, Growth: 2}
	if got := p.Backoff(3); got != 8*time.Millisecond {
		t.Errorf("Backoff(3) = %v, want 8ms", got)
	}
}

func TestDelayJitterBounds(t *testing.T) {
	p := Default(3, time.Millisecond, 10*time.Millisecond)
	for attempt := 0; attempt < 4; attempt++ {
		d := p.Backoff(attempt)
		lo := time.Duration(float64(d) * 0.5)
		for i := 0; i < 200; i++ {
			got := p.Delay(attempt)
			if got < lo || got > d {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", attempt, got, lo, d)
			}
		}
	}
}

func TestDelayDeterministicWithoutJitter(t *testing.T) {
	p := Policy{Retries: 2, Base: time.Millisecond, Cap: 10 * time.Millisecond}
	if got := p.Delay(1); got != 4*time.Millisecond {
		t.Errorf("Delay(1) without jitter = %v, want 4ms", got)
	}
}

func TestDelayInjectedRand(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Jitter: 0.5, Rand: func() float64 { return 0 }}
	if got := p.Delay(0); got != 5*time.Millisecond {
		t.Errorf("Delay with rand=0 = %v, want 5ms (the jitter floor)", got)
	}
	p.Rand = func() float64 { return 0.999999 }
	if got := p.Delay(0); got < 9*time.Millisecond || got > 10*time.Millisecond {
		t.Errorf("Delay with rand~1 = %v, want ~10ms", got)
	}
}

func TestSleepHonoursContext(t *testing.T) {
	p := Policy{Base: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := p.Sleep(ctx, 0); err != context.Canceled {
		t.Fatalf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Sleep did not return promptly on cancellation")
	}
}

func TestSleepNilContext(t *testing.T) {
	p := Policy{Base: time.Millisecond}
	if err := p.Sleep(nil, 0); err != nil {
		t.Fatalf("Sleep(nil ctx) = %v", err)
	}
}
