// Package retry is the shared capped-exponential-backoff-with-jitter policy
// used by every transient-failure retry loop in the stack: the checksummed
// disk read path (internal/diskst) and the remote shard client
// (internal/remote).
//
// The jitter is the point.  A deterministic 1ms -> 4ms -> 10ms ladder makes
// every concurrent retrier hammer a struggling resource in lockstep — eight
// shard workers that failed together retry together, and a coordinator whose
// replicas all hiccup re-dials them on the same beat.  Each delay is instead
// drawn uniformly from [(1-Jitter)·d, d], which keeps the exponential shape
// (there is still a floor, so backoff still backs off) while de-correlating
// the retriers.
package retry

import (
	"context"
	"math/rand"
	"time"
)

// Policy describes one retry loop: up to Retries retries after the first
// attempt, sleeping a jittered exponential delay between attempts.
//
// The zero value retries nothing; use Default for the standard shape.
type Policy struct {
	// Retries is how many times to retry after the first attempt (total
	// tries = Retries+1).
	Retries int
	// Base is the pre-jitter delay before the first retry.
	Base time.Duration
	// Cap bounds the pre-jitter delay (0 = uncapped).
	Cap time.Duration
	// Growth multiplies the delay between consecutive retries (default 4).
	Growth int
	// Jitter is the fraction of each delay randomized away: the actual sleep
	// is uniform in [(1-Jitter)·d, d].  <= 0 disables jitter (deterministic
	// delays, for tests); values above 1 are clamped.
	Jitter float64
	// Rand overrides the uniform [0,1) source (tests inject determinism);
	// nil uses math/rand's shared, lock-protected source.
	Rand func() float64
}

// Default is the standard policy shape: capped exponential with x4 growth and
// 50% jitter.
func Default(retries int, base, cap time.Duration) Policy {
	return Policy{Retries: retries, Base: base, Cap: cap, Growth: 4, Jitter: 0.5}
}

// Backoff returns the pre-jitter delay before retry attempt (0-based): Base
// grown Growth-fold per attempt, bounded by Cap.
func (p Policy) Backoff(attempt int) time.Duration {
	d := p.Base
	growth := p.Growth
	if growth < 2 {
		growth = 4
	}
	for i := 0; i < attempt; i++ {
		d *= time.Duration(growth)
		if p.Cap > 0 && d >= p.Cap {
			return p.Cap
		}
	}
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	return d
}

// Delay returns the jittered sleep before retry attempt (0-based).
func (p Policy) Delay(attempt int) time.Duration {
	d := p.Backoff(attempt)
	j := p.Jitter
	if j <= 0 || d <= 0 {
		return d
	}
	if j > 1 {
		j = 1
	}
	r := p.Rand
	if r == nil {
		r = rand.Float64
	}
	lo := float64(d) * (1 - j)
	return time.Duration(lo + r()*(float64(d)-lo))
}

// Sleep blocks for the jittered delay before retry attempt, honouring ctx:
// it returns ctx.Err() when the context ends first, nil after a full sleep.
// A nil ctx sleeps unconditionally.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	d := p.Delay(attempt)
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
