package suffixtree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

// Every snapshot of the online builder must be canonically identical to the
// batch Ukkonen construction over the same prefix of sequences — this is the
// property the engine's delta shard rides on.
func TestOnlineBuilderSnapshotsMatchBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cases := [][]string{
		{"AGTACGCCTAG"},
		{"A"},
		{"ACGT", "ACGT", "ACGT"},
		{"AG", "AGA", "GAG", "A", "TTTTT"},
	}
	for i := 0; i < 5; i++ {
		var c []string
		for j := 0; j < 2+rng.Intn(5); j++ {
			c = append(c, randomDNAString(rng, 1+rng.Intn(50)))
		}
		cases = append(cases, c)
	}
	for ci, strs := range cases {
		ob, err := NewOnlineBuilder(seq.DNA)
		if err != nil {
			t.Fatal(err)
		}
		for k, s := range strs {
			sq, err := seq.NewSequence(seq.DNA, fmt.Sprintf("seq%d", k), "", s)
			if err != nil {
				t.Fatal(err)
			}
			if err := ob.Append(sq); err != nil {
				t.Fatalf("case %d append %d: %v", ci, k, err)
			}
			// Snapshot after EVERY append, and compare against a from-scratch
			// build over the same prefix.
			tree, db, err := ob.Snapshot()
			if err != nil {
				t.Fatalf("case %d snapshot %d: %v", ci, k, err)
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("case %d snapshot %d: %v", ci, k, err)
			}
			want, err := seq.DatabaseFromStrings(seq.DNA, strs[:k+1]...)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := BuildUkkonen(want)
			if err != nil {
				t.Fatal(err)
			}
			if canonicalize(tree) != canonicalize(ref) {
				t.Fatalf("case %d: snapshot after %d appends differs from batch build", ci, k+1)
			}
			if db.NumSequences() != k+1 || db.TotalResidues() != want.TotalResidues() {
				t.Fatalf("case %d: snapshot database mismatch", ci)
			}
		}
	}
}

// Snapshots must be immune to later appends: take one, keep appending, and
// verify the old snapshot still validates and answers FindAll identically to
// a batch build of its own prefix.
func TestOnlineBuilderSnapshotImmutability(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	ob, err := NewOnlineBuilder(seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	var strs []string
	type snap struct {
		tree *Tree
		n    int
	}
	var snaps []snap
	for k := 0; k < 12; k++ {
		s := randomDNAString(rng, 1+rng.Intn(40))
		strs = append(strs, s)
		sq, err := seq.NewSequence(seq.DNA, fmt.Sprintf("seq%d", k), "", s)
		if err != nil {
			t.Fatal(err)
		}
		if err := ob.Append(sq); err != nil {
			t.Fatal(err)
		}
		if k%3 == 0 {
			tree, _, err := ob.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, snap{tree: tree, n: k + 1})
		}
	}
	for _, sn := range snaps {
		if err := sn.tree.Validate(); err != nil {
			t.Fatalf("snapshot at %d sequences no longer valid: %v", sn.n, err)
		}
		db, err := seq.DatabaseFromStrings(seq.DNA, strs[:sn.n]...)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := BuildUkkonen(db)
		if err != nil {
			t.Fatal(err)
		}
		if canonicalize(sn.tree) != canonicalize(ref) {
			t.Fatalf("snapshot at %d sequences drifted after later appends", sn.n)
		}
	}
}

func TestOnlineBuilderEmptyAndErrors(t *testing.T) {
	if _, err := NewOnlineBuilder(nil); err == nil {
		t.Fatal("nil alphabet accepted")
	}
	ob, err := NewOnlineBuilder(seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	tree, db, err := ob.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 0 || tree.NumLeaves() != 0 {
		t.Fatal("empty snapshot not empty")
	}
	if err := ob.Append(seq.Sequence{ID: "bad", Residues: []byte{200}}); err == nil {
		t.Fatal("out-of-alphabet residues accepted")
	}
	if ob.NumSequences() != 0 {
		t.Fatal("failed append mutated the builder")
	}
}
