package suffixtree

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// BuildUkkonen constructs the generalized suffix tree of the database using
// Ukkonen's online algorithm in O(n) expected time.
//
// To obtain a *generalized* tree (no suffix crosses a sequence boundary),
// construction runs over a virtual symbol sequence in which every
// terminator is given a distinct symbol; the resulting leaf edges are then
// truncated at the first terminator so the frozen tree stores only the
// shared terminator byte.
func BuildUkkonen(db *seq.Database) (*Tree, error) {
	if db == nil {
		return nil, fmt.Errorf("suffixtree: nil database")
	}
	text := db.Concat()
	if len(text) == 0 {
		t := &Tree{db: db, text: text, nodes: []node{{parent: NoNode, firstChild: NoNode, nextSibling: NoNode, suffixStart: -1}}}
		t.numInternal = 1
		return t, nil
	}
	virtual := virtualSymbols(db)
	b := newUkkonenBuilder(virtual)
	for i := range virtual {
		b.extend(i)
	}
	return b.freeze(db, text)
}

// virtualSymbols returns the concatenated view with each terminator mapped
// to a distinct code above the alphabet, so that Ukkonen produces a proper
// generalized tree.
func virtualSymbols(db *seq.Database) []int32 {
	text := db.Concat()
	out := make([]int32, len(text))
	base := int32(db.Alphabet().Size())
	seqIdx := int32(0)
	for i, c := range text {
		if c == seq.Terminator {
			out[i] = base + seqIdx
			seqIdx++
		} else {
			out[i] = int32(c)
		}
	}
	return out
}

const openEnd = int(^uint(0) >> 1) // "grows with the current phase"

// uNode is the mutable node used during Ukkonen construction.
type uNode struct {
	start    int
	end      int // openEnd for still-growing leaf edges
	link     int
	children map[int32]int
}

type ukkonenBuilder struct {
	text  []int32
	nodes []uNode

	activeNode   int
	activeEdge   int // index into text of the active edge's first symbol
	activeLength int
	remainder    int
}

func newUkkonenBuilder(text []int32) *ukkonenBuilder {
	b := &ukkonenBuilder{text: text}
	b.nodes = append(b.nodes, uNode{start: -1, end: -1, link: 0, children: map[int32]int{}})
	b.activeNode = 0
	return b
}

func (b *ukkonenBuilder) newNode(start, end int) int {
	b.nodes = append(b.nodes, uNode{start: start, end: end, link: 0})
	return len(b.nodes) - 1
}

func (b *ukkonenBuilder) edgeLength(n, pos int) int {
	end := b.nodes[n].end
	if end == openEnd {
		end = pos + 1
	}
	return end - b.nodes[n].start
}

// extend performs phase pos of Ukkonen's algorithm.
func (b *ukkonenBuilder) extend(pos int) {
	b.remainder++
	lastNewNode := -1
	for b.remainder > 0 {
		if b.activeLength == 0 {
			b.activeEdge = pos
		}
		edgeSym := b.text[b.activeEdge]
		next, ok := b.childOf(b.activeNode, edgeSym)
		if !ok {
			// Rule 2: no edge starts with the current symbol; add a leaf.
			leaf := b.newNode(pos, openEnd)
			b.setChild(b.activeNode, edgeSym, leaf)
			if lastNewNode != -1 {
				b.nodes[lastNewNode].link = b.activeNode
				lastNewNode = -1
			}
		} else {
			edgeLen := b.edgeLength(next, pos)
			if b.activeLength >= edgeLen {
				// Walk down.
				b.activeEdge += edgeLen
				b.activeLength -= edgeLen
				b.activeNode = next
				continue
			}
			if b.text[b.nodes[next].start+b.activeLength] == b.text[pos] {
				// Rule 3: already present; stop this phase.
				if lastNewNode != -1 && b.activeNode != 0 {
					b.nodes[lastNewNode].link = b.activeNode
					lastNewNode = -1
				}
				b.activeLength++
				break
			}
			// Rule 2 with split.
			splitEnd := b.nodes[next].start + b.activeLength
			split := b.newNode(b.nodes[next].start, splitEnd)
			b.setChild(b.activeNode, edgeSym, split)
			leaf := b.newNode(pos, openEnd)
			b.setChild(split, b.text[pos], leaf)
			b.nodes[next].start += b.activeLength
			b.setChild(split, b.text[b.nodes[next].start], next)
			if lastNewNode != -1 {
				b.nodes[lastNewNode].link = split
			}
			lastNewNode = split
		}
		b.remainder--
		if b.activeNode == 0 && b.activeLength > 0 {
			b.activeLength--
			b.activeEdge = pos - b.remainder + 1
		} else if b.activeNode != 0 {
			b.activeNode = b.nodes[b.activeNode].link
		}
	}
}

func (b *ukkonenBuilder) childOf(n int, sym int32) (int, bool) {
	if b.nodes[n].children == nil {
		return 0, false
	}
	c, ok := b.nodes[n].children[sym]
	return c, ok
}

func (b *ukkonenBuilder) setChild(n int, sym int32, child int) {
	if b.nodes[n].children == nil {
		b.nodes[n].children = map[int32]int{}
	}
	b.nodes[n].children[sym] = child
}

// freeze converts the construction nodes into the immutable Tree
// representation: computes depths and suffix starts, truncates leaf edges at
// the first terminator, drops the virtual terminator distinction, and sorts
// child lists deterministically.
func (b *ukkonenBuilder) freeze(db *seq.Database, text []byte) (*Tree, error) {
	n := len(b.text)
	t := &Tree{db: db, text: text}
	t.nodes = make([]node, 0, len(b.nodes))

	// Map from builder node index to frozen NodeID.
	idMap := make([]NodeID, len(b.nodes))
	for i := range idMap {
		idMap[i] = NoNode
	}

	type frame struct {
		uIdx        int
		parent      NodeID
		parentDepth int64
	}
	// Root first.
	t.nodes = append(t.nodes, node{parent: NoNode, firstChild: NoNode, nextSibling: NoNode, suffixStart: -1})
	idMap[0] = 0

	stack := []frame{}
	pushChildren := func(uIdx int, parent NodeID, parentDepth int64) {
		// Deterministic order not required here; sortChildren runs at the end.
		kids := make([]int, 0, len(b.nodes[uIdx].children))
		for _, c := range b.nodes[uIdx].children {
			kids = append(kids, c)
		}
		sort.Ints(kids)
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, frame{uIdx: kids[i], parent: parent, parentDepth: parentDepth})
		}
	}
	pushChildren(0, 0, 0)

	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		un := b.nodes[f.uIdx]
		start := int64(un.start)
		end := int64(un.end)
		isLeaf := un.children == nil || len(un.children) == 0
		if un.end == openEnd {
			end = int64(n)
		}
		suffixStart := int64(-1)
		if isLeaf {
			// The leaf's suffix starts at (edge start - parent depth); its
			// path must stop at (and include) its sequence's terminator.
			suffixStart = start - f.parentDepth
			end = db.SuffixEnd(suffixStart) + 1
			if end <= start {
				// The whole remaining label is beyond the terminator; this
				// can only happen for the trivial suffix consisting of the
				// terminator alone, whose edge is exactly one symbol.
				end = start + 1
			}
		}
		id := NodeID(len(t.nodes))
		t.nodes = append(t.nodes, node{
			start:       start,
			end:         end,
			parent:      f.parent,
			firstChild:  NoNode,
			nextSibling: NoNode,
			depth:       int32(f.parentDepth + (end - start)),
			suffixStart: suffixStart,
		})
		idMap[f.uIdx] = id
		// Prepend to the parent's child list (order fixed later).
		t.nodes[id].nextSibling = t.nodes[f.parent].firstChild
		t.nodes[f.parent].firstChild = id
		if !isLeaf {
			pushChildren(f.uIdx, id, f.parentDepth+(end-start))
		}
	}

	t.sortChildren()
	for _, nd := range t.nodes {
		if nd.firstChild == NoNode && nd.suffixStart >= 0 {
			t.numLeaves++
		} else {
			t.numInternal++
		}
	}
	return t, nil
}
