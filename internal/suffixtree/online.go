package suffixtree

import (
	"fmt"

	"repro/internal/seq"
)

// OnlineBuilder grows a generalized suffix tree one whole sequence at a time
// using Ukkonen's online construction — the same algorithm BuildUkkonen runs
// in one shot, kept resident between appends.  It backs the engine's mutable
// delta shard: inserts extend the builder in O(len) amortised, and Snapshot
// freezes the current state into an immutable Tree + Database pair that can
// be searched while further appends continue.
//
// Snapshot is cheap relative to a rebuild: freeze only walks the builder's
// node table (it never mutates it), so repeated snapshots are safe.  The
// builder itself is not goroutine-safe; callers serialise Append/Snapshot
// (the engine does so under its writer lock) and treat each snapshot as
// immutable.
type OnlineBuilder struct {
	alphabet *seq.Alphabet
	b        *ukkonenBuilder
	seqs     []seq.Sequence
	total    int64
}

// NewOnlineBuilder returns an empty builder over the alphabet.
func NewOnlineBuilder(a *seq.Alphabet) (*OnlineBuilder, error) {
	if a == nil {
		return nil, fmt.Errorf("suffixtree: nil alphabet")
	}
	return &OnlineBuilder{alphabet: a, b: newUkkonenBuilder(nil)}, nil
}

// NumSequences returns how many sequences have been appended.
func (o *OnlineBuilder) NumSequences() int { return len(o.seqs) }

// TotalResidues returns the residues appended so far (excluding terminators).
func (o *OnlineBuilder) TotalResidues() int64 { return o.total }

// Sequences returns the appended sequences in order (not a copy).
func (o *OnlineBuilder) Sequences() []seq.Sequence { return o.seqs }

// Append extends the tree with one whole sequence.  The terminator is given a
// distinct virtual symbol (alphabet size + sequence index), exactly as
// virtualSymbols does for the batch construction, so the tree stays properly
// generalized: Ukkonen's remainder drains to zero at every sequence boundary
// because the fresh terminator matches no existing edge.
func (o *OnlineBuilder) Append(s seq.Sequence) error {
	if !o.alphabet.ValidCodes(s.Residues) {
		return fmt.Errorf("suffixtree: sequence %q contains codes outside alphabet %q", s.ID, o.alphabet.Name())
	}
	start := len(o.b.text)
	for _, c := range s.Residues {
		o.b.text = append(o.b.text, int32(c))
	}
	o.b.text = append(o.b.text, int32(o.alphabet.Size())+int32(len(o.seqs)))
	for pos := start; pos < len(o.b.text); pos++ {
		o.b.extend(pos)
	}
	if o.b.remainder != 0 {
		return fmt.Errorf("suffixtree: internal error: remainder %d after sequence boundary", o.b.remainder)
	}
	o.seqs = append(o.seqs, s)
	o.total += int64(len(s.Residues))
	return nil
}

// Snapshot freezes the current builder state into an immutable Tree over a
// fresh Database of the appended sequences.  The returned pair is
// independent of subsequent Appends.
func (o *OnlineBuilder) Snapshot() (*Tree, *seq.Database, error) {
	db, err := seq.NewDatabase(o.alphabet, append([]seq.Sequence(nil), o.seqs...))
	if err != nil {
		return nil, nil, err
	}
	if len(o.seqs) == 0 {
		t := &Tree{db: db, text: db.Concat(), nodes: []node{{parent: NoNode, firstChild: NoNode, nextSibling: NoNode, suffixStart: -1}}}
		t.numInternal = 1
		return t, db, nil
	}
	tree, err := o.b.freeze(db, db.Concat())
	if err != nil {
		return nil, nil, err
	}
	return tree, db, nil
}
