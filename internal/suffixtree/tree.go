// Package suffixtree implements the generalized suffix tree that drives the
// OASIS search (paper Section 2.3): a compact PATRICIA trie over every
// suffix of every sequence in a database, with multi-symbol edges and one
// leaf per suffix.
//
// Two construction algorithms are provided: Ukkonen's online linear-time
// algorithm (BuildUkkonen) and a sorted-suffix construction (BuildSorted)
// that doubles as the reference implementation and as the per-partition
// builder used by the disk-based index (internal/diskst).  Both produce
// byte-identical trees, which the tests verify.
package suffixtree

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// NodeID identifies a node within a Tree.  The root is always node 0.
// NoNode marks the absence of a node (e.g. NextSibling of the last child).
type NodeID int32

// NoNode is the nil NodeID.
const NoNode NodeID = -1

// node is the frozen representation of a suffix-tree node.
type node struct {
	// start/end delimit the incoming edge label within the database's
	// concatenated symbol view; the root has start == end == 0.
	start, end int64
	// parent is the parent node (NoNode for the root).
	parent NodeID
	// firstChild is the head of the child list (NoNode for leaves).
	firstChild NodeID
	// nextSibling links the children of a node (NoNode for the last).
	nextSibling NodeID
	// depth is the number of symbols on the path from the root to this
	// node (including the incoming edge).
	depth int32
	// suffixStart is the starting position of the suffix for leaves, or
	// -1 for internal nodes.
	suffixStart int64
}

// Tree is an immutable generalized suffix tree over a sequence database.
type Tree struct {
	db    *seq.Database
	text  []byte // db.Concat()
	nodes []node
	// numLeaves and numInternal are cached counts.
	numLeaves   int
	numInternal int
}

// DB returns the database the tree indexes.
func (t *Tree) DB() *seq.Database { return t.db }

// Text returns the concatenated symbol view the edge labels refer to.
func (t *Tree) Text() []byte { return t.text }

// Root returns the root node (always 0).
func (t *Tree) Root() NodeID { return 0 }

// NumNodes returns the total number of nodes including the root.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumLeaves returns the number of leaf nodes (one per indexed suffix).
func (t *Tree) NumLeaves() int { return t.numLeaves }

// NumInternal returns the number of internal nodes including the root.
func (t *Tree) NumInternal() int { return t.numInternal }

// IsLeaf reports whether n is a leaf.
func (t *Tree) IsLeaf(n NodeID) bool { return t.nodes[n].firstChild == NoNode && n != 0 }

// Parent returns the parent of n (NoNode for the root).
func (t *Tree) Parent(n NodeID) NodeID { return t.nodes[n].parent }

// FirstChild returns the first child of n, or NoNode.
func (t *Tree) FirstChild(n NodeID) NodeID { return t.nodes[n].firstChild }

// NextSibling returns the next sibling of n, or NoNode.
func (t *Tree) NextSibling(n NodeID) NodeID { return t.nodes[n].nextSibling }

// Children returns the children of n in deterministic order (by first edge
// symbol, terminator edges last, ties by suffix start).
func (t *Tree) Children(n NodeID) []NodeID {
	var out []NodeID
	for c := t.nodes[n].firstChild; c != NoNode; c = t.nodes[c].nextSibling {
		out = append(out, c)
	}
	return out
}

// EdgeLabel returns the symbols labelling the incoming edge of n (empty for
// the root).  The returned slice aliases the database's concatenated view.
func (t *Tree) EdgeLabel(n NodeID) []byte {
	nd := t.nodes[n]
	return t.text[nd.start:nd.end]
}

// EdgeStart returns the position in the concatenated view at which the
// incoming edge label of n begins.
func (t *Tree) EdgeStart(n NodeID) int64 { return t.nodes[n].start }

// Depth returns the number of symbols on the root path of n.
func (t *Tree) Depth(n NodeID) int { return int(t.nodes[n].depth) }

// SuffixStart returns the global position of the suffix represented by leaf
// n.  It panics if n is not a leaf.
func (t *Tree) SuffixStart(n NodeID) int64 {
	if !t.IsLeaf(n) {
		panic(fmt.Sprintf("suffixtree: SuffixStart on non-leaf node %d", n))
	}
	return t.nodes[n].suffixStart
}

// PathLabel returns the concatenation of edge labels from the root to n.
func (t *Tree) PathLabel(n NodeID) []byte {
	depth := int(t.nodes[n].depth)
	out := make([]byte, 0, depth)
	// Collect the chain root -> n.
	var chain []NodeID
	for c := n; c != NoNode; c = t.nodes[c].parent {
		chain = append(chain, c)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, t.EdgeLabel(chain[i])...)
	}
	return out
}

// VisitEdges iterates the children of n in sibling order, calling fn with
// each child's id, incoming edge label and suffix start (-1 for internal
// children, >= 0 exactly for leaves).  Unlike chaining the FirstChild /
// NextSibling / IsLeaf / EdgeLabel / SuffixStart accessors it fetches each
// child's node record once, which matters to traversals that touch millions
// of (randomly laid out) children.  Iteration stops when fn returns false.
func (t *Tree) VisitEdges(n NodeID, fn func(child NodeID, label []byte, suffixStart int64) bool) {
	c := t.nodes[n].firstChild
	for c != NoNode {
		nd := &t.nodes[c]
		if !fn(c, t.text[nd.start:nd.end], nd.suffixStart) {
			return
		}
		c = nd.nextSibling
	}
}

// LeafPositions calls fn with the suffix start position of every leaf in the
// subtree rooted at n, in depth-first order.  Iteration stops early when fn
// returns false.  The traversal follows the first-child/next-sibling links
// directly and performs no allocation (reporting an accepted OASIS node may
// visit very large subtrees).
func (t *Tree) LeafPositions(n NodeID, fn func(pos int64) bool) {
	if t.IsLeaf(n) {
		fn(t.nodes[n].suffixStart)
		return
	}
	cur := t.nodes[n].firstChild
	if cur == NoNode {
		return
	}
	for {
		if t.nodes[cur].firstChild == NoNode && t.nodes[cur].suffixStart >= 0 {
			if !fn(t.nodes[cur].suffixStart) {
				return
			}
		} else if t.nodes[cur].firstChild != NoNode {
			cur = t.nodes[cur].firstChild
			continue
		}
		// Advance: next sibling, or climb until one exists (stopping at n).
		for {
			if cur == n {
				return
			}
			if sib := t.nodes[cur].nextSibling; sib != NoNode {
				cur = sib
				break
			}
			cur = t.nodes[cur].parent
			if cur == n || cur == NoNode {
				return
			}
		}
	}
}

// Walk performs a pre-order depth-first traversal starting at n, calling fn
// for every node; returning false from fn prunes the node's subtree.
func (t *Tree) Walk(n NodeID, fn func(NodeID) bool) {
	if !fn(n) {
		return
	}
	for c := t.nodes[n].firstChild; c != NoNode; c = t.nodes[c].nextSibling {
		t.Walk(c, fn)
	}
}

// Contains reports whether the pattern (encoded residues, no terminators)
// occurs in the database.
func (t *Tree) Contains(pattern []byte) bool {
	_, _, ok := t.descend(pattern)
	return ok
}

// FindAll returns the global positions of every occurrence of the pattern in
// the database, in no particular order.
func (t *Tree) FindAll(pattern []byte) []int64 {
	n, _, ok := t.descend(pattern)
	if !ok {
		return nil
	}
	var out []int64
	t.LeafPositions(n, func(pos int64) bool {
		out = append(out, pos)
		return true
	})
	return out
}

// descend follows the pattern from the root, returning the node at or below
// which the match ends, the number of symbols consumed on the node's
// incoming edge, and whether the whole pattern was matched.
func (t *Tree) descend(pattern []byte) (NodeID, int, bool) {
	cur := t.Root()
	i := 0
	for i < len(pattern) {
		next := t.childWithSymbol(cur, pattern[i])
		if next == NoNode {
			return cur, 0, false
		}
		label := t.EdgeLabel(next)
		j := 0
		for j < len(label) && i < len(pattern) {
			if label[j] != pattern[i] {
				return next, j, false
			}
			i++
			j++
		}
		cur = next
		if i == len(pattern) {
			return next, j, true
		}
		if j < len(label) {
			return next, j, false
		}
	}
	return cur, 0, true
}

// childWithSymbol returns the child of n whose edge label begins with sym,
// or NoNode.  Terminator-labelled edges are never returned for residue
// symbols.
func (t *Tree) childWithSymbol(n NodeID, sym byte) NodeID {
	for c := t.nodes[n].firstChild; c != NoNode; c = t.nodes[c].nextSibling {
		if t.text[t.nodes[c].start] == sym {
			return c
		}
	}
	return NoNode
}

// Validate checks the structural invariants of the tree and returns the
// first violation found.  It is used by tests and by the disk-serialisation
// round-trip checks.
func (t *Tree) Validate() error {
	if len(t.nodes) == 0 {
		return fmt.Errorf("suffixtree: empty node array")
	}
	if t.nodes[0].parent != NoNode || t.nodes[0].depth != 0 {
		return fmt.Errorf("suffixtree: malformed root")
	}
	leaves := 0
	for id := 1; id < len(t.nodes); id++ {
		nd := t.nodes[id]
		if nd.parent == NoNode {
			return fmt.Errorf("suffixtree: node %d has no parent", id)
		}
		p := t.nodes[nd.parent]
		edgeLen := nd.end - nd.start
		if edgeLen <= 0 {
			return fmt.Errorf("suffixtree: node %d has empty edge", id)
		}
		if int64(nd.depth) != int64(p.depth)+edgeLen {
			return fmt.Errorf("suffixtree: node %d depth %d != parent depth %d + edge %d",
				id, nd.depth, p.depth, edgeLen)
		}
		if nd.firstChild == NoNode {
			leaves++
			if nd.suffixStart < 0 {
				return fmt.Errorf("suffixtree: leaf %d has no suffix start", id)
			}
			// The leaf path must equal the suffix it represents.
			end := t.db.SuffixEnd(nd.suffixStart) + 1 // include terminator
			want := t.text[nd.suffixStart:end]
			got := t.PathLabel(NodeID(id))
			if string(want) != string(got) {
				return fmt.Errorf("suffixtree: leaf %d path %q != suffix %q", id, got, want)
			}
		} else {
			// Internal nodes (other than the root) must branch.
			count := 0
			for c := nd.firstChild; c != NoNode; c = t.nodes[c].nextSibling {
				if t.nodes[c].parent != NodeID(id) {
					return fmt.Errorf("suffixtree: child %d of %d has wrong parent", c, id)
				}
				count++
			}
			if count < 2 {
				return fmt.Errorf("suffixtree: internal node %d has %d children", id, count)
			}
		}
	}
	// One leaf per position of the concatenated view.
	if leaves != len(t.text) {
		return fmt.Errorf("suffixtree: %d leaves for %d text positions", leaves, len(t.text))
	}
	return nil
}

// sortChildren orders sibling lists deterministically: by the first byte of
// the edge label (terminator sorts last because it is 0xFF), ties broken by
// suffix start (leaves) and then edge start.
func (t *Tree) sortChildren() {
	for id := range t.nodes {
		children := t.Children(NodeID(id))
		if len(children) < 2 {
			continue
		}
		sort.Slice(children, func(a, b int) bool {
			na, nb := t.nodes[children[a]], t.nodes[children[b]]
			ca, cb := t.text[na.start], t.text[nb.start]
			if ca != cb {
				return ca < cb
			}
			sa, sb := na.suffixStart, nb.suffixStart
			if sa != sb {
				return sa < sb
			}
			return na.start < nb.start
		})
		t.nodes[id].firstChild = children[0]
		for i := 0; i < len(children); i++ {
			if i+1 < len(children) {
				t.nodes[children[i]].nextSibling = children[i+1]
			} else {
				t.nodes[children[i]].nextSibling = NoNode
			}
		}
	}
	t.relayout()
}

// relayout renumbers the nodes so every sibling family occupies consecutive
// ids, in depth-first family order.  Construction order (Ukkonen's in
// particular) scatters siblings across the node array, which turns every
// child-list walk into a chain of random fetches; after relayout VisitEdges
// and the child scans of the OASIS search walk sequential memory.  The
// renumbering is fully determined by the (already sorted) tree structure, so
// the two builders still produce identical trees.
func (t *Tree) relayout() {
	n := len(t.nodes)
	newID := make([]NodeID, n)    // old id -> new id
	order := make([]NodeID, 1, n) // new id -> old id; root keeps id 0
	stack := make([]NodeID, 0, 64)
	stack = append(stack, 0)
	for len(stack) > 0 {
		old := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		firstNew := len(order)
		for c := t.nodes[old].firstChild; c != NoNode; c = t.nodes[c].nextSibling {
			newID[c] = NodeID(len(order))
			order = append(order, c)
		}
		// Visit the first child's family next: push internal children in
		// reverse sibling order.
		for i := len(order) - 1; i >= firstNew; i-- {
			if t.nodes[order[i]].firstChild != NoNode {
				stack = append(stack, order[i])
			}
		}
	}
	nodes := make([]node, n)
	for newI, oldI := range order {
		nd := t.nodes[oldI]
		if nd.parent != NoNode {
			nd.parent = newID[nd.parent]
		}
		if nd.firstChild != NoNode {
			nd.firstChild = newID[nd.firstChild]
		}
		if nd.nextSibling != NoNode {
			nd.nextSibling = newID[nd.nextSibling]
		}
		nodes[newI] = nd
	}
	t.nodes = nodes
}

// Stats describes the size and shape of a tree.
type Stats struct {
	NumNodes    int
	NumLeaves   int
	NumInternal int
	MaxDepth    int
	TextLength  int64
}

// ComputeStats returns size statistics for the tree.
func (t *Tree) ComputeStats() Stats {
	st := Stats{
		NumNodes:    len(t.nodes),
		NumLeaves:   t.numLeaves,
		NumInternal: t.numInternal,
		TextLength:  int64(len(t.text)),
	}
	for _, nd := range t.nodes {
		if int(nd.depth) > st.MaxDepth {
			st.MaxDepth = int(nd.depth)
		}
	}
	return st
}
