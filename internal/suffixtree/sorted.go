package suffixtree

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// BuildSorted constructs the generalized suffix tree by sorting every suffix
// lexicographically and inserting them in order while maintaining the
// rightmost path (the classic suffix-array-to-suffix-tree construction).
//
// It is O(n log n * avgLCP) — slower than Ukkonen on large inputs — but
// simple, and it is the per-partition builder used by BuildPartitioned and
// by the disk index.  Tests verify it produces exactly the same tree as
// BuildUkkonen.
func BuildSorted(db *seq.Database) (*Tree, error) {
	if db == nil {
		return nil, fmt.Errorf("suffixtree: nil database")
	}
	positions := make([]int64, db.ConcatLen())
	for i := range positions {
		positions[i] = int64(i)
	}
	return buildFromPositions(db, positions)
}

// BuildPartitioned constructs the tree following the partitioned approach of
// Hunt et al. (the paper's reference [16]): suffixes are grouped by their
// leading symbol(s), each partition's subtree is built independently with
// the sorted-suffix construction, and the partitions are stitched together
// under a single root.  prefixLen controls the partitioning depth (1 or 2
// symbols; 0 defaults to 1).
func BuildPartitioned(db *seq.Database, prefixLen int) (*Tree, error) {
	if db == nil {
		return nil, fmt.Errorf("suffixtree: nil database")
	}
	if prefixLen <= 0 {
		prefixLen = 1
	}
	if prefixLen > 2 {
		return nil, fmt.Errorf("suffixtree: prefixLen %d too large (max 2)", prefixLen)
	}
	text := db.Concat()
	// Partition key: the first prefixLen bytes of the suffix (terminators
	// cut a key short).  Keys are processed in lexicographic order so the
	// overall insertion order equals the fully sorted order, which lets us
	// reuse the same rightmost-path builder across partitions.
	keyOf := func(pos int64) string {
		end := pos + int64(prefixLen)
		if end > int64(len(text)) {
			end = int64(len(text))
		}
		for i := pos; i < end; i++ {
			if text[i] == seq.Terminator {
				end = i + 1
				break
			}
		}
		return string(text[pos:end])
	}
	partitions := map[string][]int64{}
	for pos := int64(0); pos < int64(len(text)); pos++ {
		k := keyOf(pos)
		partitions[k] = append(partitions[k], pos)
	}
	keys := make([]string, 0, len(partitions))
	for k := range partitions {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	b := newRightmostBuilder(db)
	for _, k := range keys {
		// Each partition is sorted and inserted independently; one "pass
		// over the data" per partition, as in the paper's construction.
		positions := partitions[k]
		sort.Slice(positions, func(i, j int) bool {
			return compareSuffixesFast(b.text, b.ends, positions[i], positions[j]) < 0
		})
		for _, p := range positions {
			b.insert(p)
		}
	}
	return b.finish()
}

// buildFromPositions sorts the given suffix start positions and builds the
// tree containing exactly those suffixes.
func buildFromPositions(db *seq.Database, positions []int64) (*Tree, error) {
	sortSuffixPositions(db, positions)
	b := newRightmostBuilder(db)
	for _, p := range positions {
		b.insert(p)
	}
	return b.finish()
}

// suffixEnds precomputes, for every position of the concatenated view, the
// exclusive end of the suffix starting there (one past its terminator).
// Using this table avoids a binary search per suffix comparison.
func suffixEnds(db *seq.Database) []int64 {
	ends := make([]int64, db.ConcatLen())
	for i := 0; i < db.NumSequences(); i++ {
		start := db.SequenceStart(i)
		term := db.SequenceEnd(i) // position of the terminator
		for p := start; p <= term; p++ {
			ends[p] = term + 1
		}
	}
	return ends
}

// compareSuffixesFast is CompareSuffixes using a precomputed end table.
func compareSuffixesFast(text []byte, ends []int64, a, b int64) int {
	if a == b {
		return 0
	}
	endA, endB := ends[a], ends[b]
	i, j := a, b
	for i < endA && j < endB {
		ca, cb := text[i], text[j]
		if ca == seq.Terminator && cb == seq.Terminator {
			if a < b {
				return -1
			}
			return 1
		}
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
		i++
		j++
	}
	la, lb := endA-a, endB-b
	switch {
	case la < lb:
		return -1
	case la > lb:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func suffixLCPFast(text []byte, ends []int64, a, b int64) int64 {
	endA, endB := ends[a], ends[b]
	var l int64
	for a+l < endA && b+l < endB {
		ca, cb := text[a+l], text[b+l]
		if ca != cb || ca == seq.Terminator {
			break
		}
		l++
	}
	return l
}

// CompareSuffixes lexicographically compares the suffixes starting at
// positions a and b, treating terminators as distinct symbols that never
// match each other (ties are broken by position so the order is total).
func CompareSuffixes(db *seq.Database, a, b int64) int {
	if a == b {
		return 0
	}
	text := db.Concat()
	endA := db.SuffixEnd(a) + 1
	endB := db.SuffixEnd(b) + 1
	i, j := a, b
	for i < endA && j < endB {
		ca, cb := text[i], text[j]
		if ca == seq.Terminator && cb == seq.Terminator {
			// Distinct virtual terminators: order by position.
			if a < b {
				return -1
			}
			return 1
		}
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
		i++
		j++
	}
	// One suffix exhausted; only possible when both hit their terminator at
	// the same offset (handled above) or lengths differ.
	la, lb := endA-a, endB-b
	switch {
	case la < lb:
		return -1
	case la > lb:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// suffixLCP returns the number of leading symbols the suffixes at positions
// a and b share, never matching one terminator with another.
func suffixLCP(db *seq.Database, a, b int64) int64 {
	text := db.Concat()
	endA := db.SuffixEnd(a) + 1
	endB := db.SuffixEnd(b) + 1
	var l int64
	for a+l < endA && b+l < endB {
		ca, cb := text[a+l], text[b+l]
		if ca != cb || ca == seq.Terminator {
			break
		}
		l++
	}
	return l
}

func sortSuffixPositions(db *seq.Database, positions []int64) {
	text := db.Concat()
	ends := suffixEnds(db)
	sort.Slice(positions, func(i, j int) bool {
		return compareSuffixesFast(text, ends, positions[i], positions[j]) < 0
	})
}

// rightmostBuilder incrementally constructs a tree from suffixes supplied in
// lexicographic order, maintaining the rightmost root-to-leaf path.
type rightmostBuilder struct {
	db   *seq.Database
	text []byte
	ends []int64

	nodes    []node
	children [][]NodeID // per-node child list, converted to links at the end
	stack    []NodeID   // rightmost path, root first
	prev     int64      // previous suffix position, -1 before the first
}

func newRightmostBuilder(db *seq.Database) *rightmostBuilder {
	b := &rightmostBuilder{db: db, text: db.Concat(), ends: suffixEnds(db), prev: -1}
	b.nodes = append(b.nodes, node{parent: NoNode, firstChild: NoNode, nextSibling: NoNode, suffixStart: -1})
	b.children = append(b.children, nil)
	b.stack = append(b.stack, 0)
	return b
}

func (b *rightmostBuilder) newNode(n node) NodeID {
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, n)
	b.children = append(b.children, nil)
	return id
}

func (b *rightmostBuilder) depth(id NodeID) int64 { return int64(b.nodes[id].depth) }

// insert adds the suffix starting at position p.  Suffixes must arrive in
// lexicographic order.
func (b *rightmostBuilder) insert(p int64) {
	suffixEnd := b.ends[p] // one past the terminator
	var l int64
	if b.prev >= 0 {
		l = suffixLCPFast(b.text, b.ends, b.prev, p)
	}
	// Pop the rightmost path until the top node's depth is <= l.
	var lastPopped = NoNode
	for b.depth(b.stack[len(b.stack)-1]) > l {
		lastPopped = b.stack[len(b.stack)-1]
		b.stack = b.stack[:len(b.stack)-1]
	}
	top := b.stack[len(b.stack)-1]
	attach := top
	if b.depth(top) < l {
		// Split lastPopped's incoming edge at depth l.
		lp := lastPopped
		mid := b.newNode(node{
			start:       b.nodes[lp].start,
			end:         b.nodes[lp].start + (l - b.depth(top)),
			parent:      top,
			firstChild:  NoNode,
			nextSibling: NoNode,
			depth:       int32(l),
			suffixStart: -1,
		})
		// Replace lp with mid in top's child list.
		kids := b.children[top]
		for i, c := range kids {
			if c == lp {
				kids[i] = mid
				break
			}
		}
		b.nodes[lp].start += l - b.depth(top)
		b.nodes[lp].parent = mid
		b.children[mid] = append(b.children[mid], lp)
		b.stack = append(b.stack, mid)
		attach = mid
	}
	leaf := b.newNode(node{
		start:       p + l,
		end:         suffixEnd,
		parent:      attach,
		firstChild:  NoNode,
		nextSibling: NoNode,
		depth:       int32(suffixEnd - p),
		suffixStart: p,
	})
	b.children[attach] = append(b.children[attach], leaf)
	b.stack = append(b.stack, leaf)
	b.prev = p
}

// finish converts the child lists into sibling links and returns the tree.
func (b *rightmostBuilder) finish() (*Tree, error) {
	t := &Tree{db: b.db, text: b.text, nodes: b.nodes}
	for id, kids := range b.children {
		if len(kids) == 0 {
			t.nodes[id].firstChild = NoNode
			continue
		}
		t.nodes[id].firstChild = kids[0]
		for i := range kids {
			if i+1 < len(kids) {
				t.nodes[kids[i]].nextSibling = kids[i+1]
			} else {
				t.nodes[kids[i]].nextSibling = NoNode
			}
		}
	}
	t.sortChildren()
	for _, nd := range t.nodes {
		if nd.firstChild == NoNode && nd.suffixStart >= 0 {
			t.numLeaves++
		} else {
			t.numInternal++
		}
	}
	return t, nil
}
