package suffixtree

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/seq"
)

// paperDB returns the single-sequence database of the paper's running
// example (Figure 2): AGTACGCCTAG.
func paperDB(t *testing.T) *seq.Database {
	t.Helper()
	db, err := seq.DatabaseFromStrings(seq.DNA, "AGTACGCCTAG")
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// builders lists every construction algorithm under test.
var builders = map[string]func(*seq.Database) (*Tree, error){
	"ukkonen":      BuildUkkonen,
	"sorted":       BuildSorted,
	"partitioned1": func(db *seq.Database) (*Tree, error) { return BuildPartitioned(db, 1) },
	"partitioned2": func(db *seq.Database) (*Tree, error) { return BuildPartitioned(db, 2) },
}

func TestPaperExampleTreeStructure(t *testing.T) {
	db := paperDB(t)
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			tree, err := build(db)
			if err != nil {
				t.Fatal(err)
			}
			if err := tree.Validate(); err != nil {
				t.Fatal(err)
			}
			// One leaf per position (11 residues + 1 terminator).
			if tree.NumLeaves() != 12 {
				t.Fatalf("NumLeaves = %d, want 12", tree.NumLeaves())
			}
			// Figure 2 paths: path(8L) = TAG$, path(5N) = AG.
			if !tree.Contains(seq.DNA.MustEncode("TAG")) {
				t.Fatal("TAG should be present")
			}
			if !tree.Contains(seq.DNA.MustEncode("AG")) {
				t.Fatal("AG should be present")
			}
			// TACG occurs at position 2 (paper Section 2.3.1).
			pos := tree.FindAll(seq.DNA.MustEncode("TACG"))
			if len(pos) != 1 || pos[0] != 2 {
				t.Fatalf("FindAll(TACG) = %v, want [2]", pos)
			}
			if tree.Contains(seq.DNA.MustEncode("TACGA")) {
				t.Fatal("TACGA should not be present")
			}
		})
	}
}

// canonicalize produces a structural fingerprint of the tree that is
// independent of node numbering: a pre-order listing of edge labels, depths
// and leaf positions.
func canonicalize(t *Tree) string {
	var sb strings.Builder
	var walk func(n NodeID)
	walk = func(n NodeID) {
		label := t.EdgeLabel(n)
		if t.IsLeaf(n) {
			fmt.Fprintf(&sb, "L(%q,%d,%d)", label, t.Depth(n), t.SuffixStart(n))
		} else {
			fmt.Fprintf(&sb, "N(%q,%d)[", label, t.Depth(n))
		}
		for _, c := range t.Children(n) {
			walk(c)
		}
		if !t.IsLeaf(n) {
			sb.WriteString("]")
		}
	}
	walk(t.Root())
	return sb.String()
}

func TestBuildersProduceIdenticalTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := [][]string{
		{"AGTACGCCTAG"},
		{"A"},
		{"AAAAAAAA"},
		{"ACGT", "ACGT"},           // identical sequences
		{"ACGTACGT", "TTTT", "AG"}, // mixed lengths
		{"AG", "AGA", "GAG", "A"},
	}
	// Add random cases.
	for i := 0; i < 6; i++ {
		var strsCase []string
		for j := 0; j < 1+rng.Intn(4); j++ {
			strsCase = append(strsCase, randomDNAString(rng, 1+rng.Intn(60)))
		}
		cases = append(cases, strsCase)
	}
	for ci, strsCase := range cases {
		db, err := seq.DatabaseFromStrings(seq.DNA, strsCase...)
		if err != nil {
			t.Fatal(err)
		}
		var ref string
		for name, build := range builders {
			tree, err := build(db)
			if err != nil {
				t.Fatalf("case %d %s: %v", ci, name, err)
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("case %d %s: %v", ci, name, err)
			}
			c := canonicalize(tree)
			if ref == "" {
				ref = c
			} else if c != ref {
				t.Fatalf("case %d: %s produced a different tree", ci, name)
			}
		}
	}
}

func TestFindAllMatchesNaiveSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		var strsCase []string
		for j := 0; j < 1+rng.Intn(3); j++ {
			strsCase = append(strsCase, randomDNAString(rng, 5+rng.Intn(80)))
		}
		db, err := seq.DatabaseFromStrings(seq.DNA, strsCase...)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := BuildUkkonen(db)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 10; q++ {
			pattern := seq.DNA.MustEncode(randomDNAString(rng, 1+rng.Intn(6)))
			got := append([]int64(nil), tree.FindAll(pattern)...)
			want := naiveFindAll(db, pattern)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != len(want) {
				t.Fatalf("trial %d: FindAll(%v) = %v, naive = %v", trial, pattern, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: FindAll(%v) = %v, naive = %v", trial, pattern, got, want)
				}
			}
			if tree.Contains(pattern) != (len(want) > 0) {
				t.Fatalf("Contains disagrees with FindAll for %v", pattern)
			}
		}
	}
}

// naiveFindAll scans every sequence for exact occurrences of the pattern and
// returns global positions.
func naiveFindAll(db *seq.Database, pattern []byte) []int64 {
	var out []int64
	for i := 0; i < db.NumSequences(); i++ {
		res := db.Sequence(i).Residues
		for j := 0; j+len(pattern) <= len(res); j++ {
			match := true
			for k := range pattern {
				if res[j+k] != pattern[k] {
					match = false
					break
				}
			}
			if match {
				out = append(out, db.SequenceStart(i)+int64(j))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestLeafPositionsCoverEverySuffix(t *testing.T) {
	db, err := seq.DatabaseFromStrings(seq.DNA, "ACGTACG", "GGTT", "A")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildUkkonen(db)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	tree.LeafPositions(tree.Root(), func(pos int64) bool {
		if seen[pos] {
			t.Fatalf("position %d reported twice", pos)
		}
		seen[pos] = true
		return true
	})
	if int64(len(seen)) != db.ConcatLen() {
		t.Fatalf("saw %d leaf positions, want %d", len(seen), db.ConcatLen())
	}
	// Early termination.
	count := 0
	tree.LeafPositions(tree.Root(), func(pos int64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early termination failed, count = %d", count)
	}
}

func TestPathLabelMatchesSuffix(t *testing.T) {
	db, err := seq.DatabaseFromStrings(seq.DNA, "ACGTACGA", "TTGCA")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildSorted(db)
	if err != nil {
		t.Fatal(err)
	}
	text := db.Concat()
	tree.Walk(tree.Root(), func(n NodeID) bool {
		if tree.IsLeaf(n) {
			p := tree.SuffixStart(n)
			end := db.SuffixEnd(p) + 1
			if string(tree.PathLabel(n)) != string(text[p:end]) {
				t.Fatalf("leaf %d path label mismatch", n)
			}
		}
		return true
	})
}

func TestWalkPruning(t *testing.T) {
	db := paperDB(t)
	tree, err := BuildUkkonen(db)
	if err != nil {
		t.Fatal(err)
	}
	full, pruned := 0, 0
	tree.Walk(tree.Root(), func(n NodeID) bool { full++; return true })
	tree.Walk(tree.Root(), func(n NodeID) bool { pruned++; return n == tree.Root() })
	if pruned >= full {
		t.Fatalf("pruned walk (%d) should visit fewer nodes than full walk (%d)", pruned, full)
	}
	if pruned != 1+len(tree.Children(tree.Root())) {
		t.Fatalf("pruned walk visited %d nodes", pruned)
	}
}

func TestEmptyAndTinyDatabases(t *testing.T) {
	empty, err := seq.NewDatabase(seq.DNA, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildUkkonen(empty)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 0 || tree.NumNodes() != 1 {
		t.Fatalf("empty tree has %d leaves %d nodes", tree.NumLeaves(), tree.NumNodes())
	}
	if tree.Contains(seq.DNA.MustEncode("A")) {
		t.Fatal("empty tree should contain nothing")
	}

	single, err := seq.DatabaseFromStrings(seq.DNA, "G")
	if err != nil {
		t.Fatal(err)
	}
	for name, build := range builders {
		tr, err := build(single)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !tr.Contains(seq.DNA.MustEncode("G")) || tr.Contains(seq.DNA.MustEncode("A")) {
			t.Fatalf("%s: single-symbol containment wrong", name)
		}
	}
}

func TestNilDatabaseRejected(t *testing.T) {
	if _, err := BuildUkkonen(nil); err == nil {
		t.Fatal("expected error")
	}
	if _, err := BuildSorted(nil); err == nil {
		t.Fatal("expected error")
	}
	if _, err := BuildPartitioned(nil, 1); err == nil {
		t.Fatal("expected error")
	}
	db, _ := seq.DatabaseFromStrings(seq.DNA, "ACGT")
	if _, err := BuildPartitioned(db, 9); err == nil {
		t.Fatal("expected error for oversized prefix length")
	}
}

func TestCompareSuffixesTotalOrder(t *testing.T) {
	db, err := seq.DatabaseFromStrings(seq.DNA, "ACGTAC", "AC")
	if err != nil {
		t.Fatal(err)
	}
	n := db.ConcatLen()
	for a := int64(0); a < n; a++ {
		if CompareSuffixes(db, a, a) != 0 {
			t.Fatalf("suffix %d not equal to itself", a)
		}
		for b := int64(0); b < n; b++ {
			if a == b {
				continue
			}
			ab := CompareSuffixes(db, a, b)
			ba := CompareSuffixes(db, b, a)
			if ab == 0 || ba == 0 || ab == ba {
				t.Fatalf("comparison not antisymmetric for %d,%d: %d %d", a, b, ab, ba)
			}
		}
	}
}

func TestTreeStats(t *testing.T) {
	db := paperDB(t)
	tree, err := BuildUkkonen(db)
	if err != nil {
		t.Fatal(err)
	}
	st := tree.ComputeStats()
	if st.NumLeaves != 12 || st.NumNodes != tree.NumNodes() {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.MaxDepth != 12 { // the longest suffix (whole sequence + terminator)
		t.Fatalf("MaxDepth = %d, want 12", st.MaxDepth)
	}
	if st.TextLength != db.ConcatLen() {
		t.Fatalf("TextLength = %d", st.TextLength)
	}
}

func TestDepthAndParentConsistency(t *testing.T) {
	db, err := seq.DatabaseFromStrings(seq.DNA, "GATTACAGATTACA", "CCGG")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildUkkonen(db)
	if err != nil {
		t.Fatal(err)
	}
	tree.Walk(tree.Root(), func(n NodeID) bool {
		if n == tree.Root() {
			if tree.Depth(n) != 0 || tree.Parent(n) != NoNode {
				t.Fatal("root depth/parent wrong")
			}
			return true
		}
		p := tree.Parent(n)
		if tree.Depth(n) != tree.Depth(p)+len(tree.EdgeLabel(n)) {
			t.Fatalf("depth inconsistency at node %d", n)
		}
		// n must appear in its parent's child list.
		found := false
		for _, c := range tree.Children(p) {
			if c == n {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d missing from parent's child list", n)
		}
		return true
	})
}

func TestSuffixStartPanicsOnInternalNode(t *testing.T) {
	db := paperDB(t)
	tree, _ := BuildUkkonen(db)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tree.SuffixStart(tree.Root())
}

func randomDNAString(rng *rand.Rand, n int) string {
	letters := "ACGT"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(4)]
	}
	return string(b)
}
