package seq

import (
	"fmt"
	"sort"
)

// Database is an immutable collection of sequences over a single alphabet.
// It maintains a concatenated symbol view in which each sequence is followed
// by a Terminator byte; this view is what the suffix tree indexes and what
// the on-disk symbol array stores.
//
// Global positions refer to offsets into the concatenated view.  A position
// holding a terminator belongs to the sequence that precedes it.
type Database struct {
	alphabet *Alphabet
	seqs     []Sequence
	concat   []byte  // seq0 $ seq1 $ ... seqN-1 $
	starts   []int64 // start offset of each sequence in concat
	total    int64   // total residues (excluding terminators)
}

// NewDatabase builds a database from sequences.  The sequence residues are
// referenced, not copied.
func NewDatabase(a *Alphabet, seqs []Sequence) (*Database, error) {
	if a == nil {
		return nil, fmt.Errorf("seq: nil alphabet")
	}
	db := &Database{alphabet: a, seqs: seqs}
	var n int64
	for _, s := range seqs {
		n += int64(len(s.Residues)) + 1
		db.total += int64(len(s.Residues))
	}
	db.concat = make([]byte, 0, n)
	db.starts = make([]int64, 0, len(seqs))
	for i, s := range seqs {
		if !a.ValidCodes(s.Residues) {
			return nil, fmt.Errorf("seq: sequence %d (%q) contains codes outside alphabet %q", i, s.ID, a.Name())
		}
		db.starts = append(db.starts, int64(len(db.concat)))
		db.concat = append(db.concat, s.Residues...)
		db.concat = append(db.concat, Terminator)
	}
	return db, nil
}

// MustDatabase is NewDatabase that panics on error; intended for tests.
func MustDatabase(a *Alphabet, seqs []Sequence) *Database {
	db, err := NewDatabase(a, seqs)
	if err != nil {
		panic(err)
	}
	return db
}

// DatabaseFromStrings is a convenience constructor used heavily in tests: it
// encodes each string with the alphabet and names them "seq0", "seq1", ....
func DatabaseFromStrings(a *Alphabet, residues ...string) (*Database, error) {
	seqs := make([]Sequence, 0, len(residues))
	for i, r := range residues {
		s, err := NewSequence(a, fmt.Sprintf("seq%d", i), "", r)
		if err != nil {
			return nil, err
		}
		seqs = append(seqs, s)
	}
	return NewDatabase(a, seqs)
}

// Alphabet returns the database alphabet.
func (db *Database) Alphabet() *Alphabet { return db.alphabet }

// NumSequences returns the number of sequences.
func (db *Database) NumSequences() int { return len(db.seqs) }

// Sequence returns the i-th sequence.
func (db *Database) Sequence(i int) Sequence { return db.seqs[i] }

// Sequences returns the underlying sequence slice (not a copy).
func (db *Database) Sequences() []Sequence { return db.seqs }

// TotalResidues returns the number of residues across all sequences,
// excluding terminators.
func (db *Database) TotalResidues() int64 { return db.total }

// Concat returns the concatenated symbol view (sequences separated by
// Terminator bytes).  The returned slice must not be modified.
func (db *Database) Concat() []byte { return db.concat }

// ConcatLen returns the length of the concatenated view including
// terminators.
func (db *Database) ConcatLen() int64 { return int64(len(db.concat)) }

// SequenceStart returns the global offset at which sequence i begins.
func (db *Database) SequenceStart(i int) int64 { return db.starts[i] }

// SequenceEnd returns the global offset one past the last residue of
// sequence i (i.e. the offset of its terminator).
func (db *Database) SequenceEnd(i int) int64 {
	return db.starts[i] + int64(len(db.seqs[i].Residues))
}

// Locate maps a global position in the concatenated view to a sequence index
// and a local offset within that sequence.  Positions holding a terminator
// map to (i, len(seq_i)).
func (db *Database) Locate(pos int64) (seqIndex int, local int64, err error) {
	if pos < 0 || pos >= int64(len(db.concat)) {
		return 0, 0, fmt.Errorf("seq: position %d out of range [0,%d)", pos, len(db.concat))
	}
	// starts is sorted; find the last start <= pos.
	i := sort.Search(len(db.starts), func(i int) bool { return db.starts[i] > pos }) - 1
	return i, pos - db.starts[i], nil
}

// SymbolAt returns the encoded symbol at a global position (may be
// Terminator).
func (db *Database) SymbolAt(pos int64) byte { return db.concat[pos] }

// SuffixEnd returns the global offset of the terminator that ends the
// sequence containing pos; the suffix starting at pos spans [pos, SuffixEnd).
func (db *Database) SuffixEnd(pos int64) int64 {
	i, _, err := db.Locate(pos)
	if err != nil {
		return pos
	}
	return db.SequenceEnd(i)
}

// Lookup returns the index of the sequence with the given ID, or -1.
func (db *Database) Lookup(id string) int {
	for i, s := range db.seqs {
		if s.ID == id {
			return i
		}
	}
	return -1
}

// Stats summarizes the database composition; useful for reporting and for
// deriving background residue frequencies.
type Stats struct {
	NumSequences  int
	TotalResidues int64
	MinLength     int
	MaxLength     int
	MeanLength    float64
	Frequencies   []float64 // indexed by symbol code
}

// ComputeStats scans the database and returns composition statistics.
func (db *Database) ComputeStats() Stats {
	st := Stats{
		NumSequences:  len(db.seqs),
		TotalResidues: db.total,
		Frequencies:   make([]float64, db.alphabet.Size()),
	}
	if len(db.seqs) == 0 {
		return st
	}
	st.MinLength = db.seqs[0].Len()
	counts := make([]int64, db.alphabet.Size())
	for _, s := range db.seqs {
		if s.Len() < st.MinLength {
			st.MinLength = s.Len()
		}
		if s.Len() > st.MaxLength {
			st.MaxLength = s.Len()
		}
		for _, c := range s.Residues {
			counts[c]++
		}
	}
	st.MeanLength = float64(db.total) / float64(len(db.seqs))
	if db.total > 0 {
		for i, c := range counts {
			st.Frequencies[i] = float64(c) / float64(db.total)
		}
	}
	return st
}
