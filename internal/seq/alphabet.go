// Package seq provides the sequence substrate used throughout the OASIS
// reproduction: residue alphabets, encoded sequences, multi-sequence
// databases with a concatenated symbol view, and FASTA input/output.
//
// All algorithms in this repository (Smith-Waterman, BLAST, the suffix tree
// and OASIS itself) operate on encoded symbols: small integer codes in the
// range [0, alphabet.Size()).  The special code Terminator marks the end of
// a sequence inside the concatenated database view.
package seq

import (
	"fmt"
	"strings"
)

// Terminator is the encoded symbol code used to mark the end of a sequence
// in the concatenated database view.  It is outside every alphabet.
const Terminator byte = 0xFF

// TerminatorChar is the character used to render the terminator symbol.
const TerminatorChar byte = '$'

// Alphabet maps between residue characters (e.g. 'A', 'R', 'N' ...) and the
// compact codes used internally.  Alphabets are immutable after creation and
// safe for concurrent use.
type Alphabet struct {
	name    string
	letters []byte       // code -> character
	codes   [256]int16   // character -> code, -1 when invalid
	unknown byte         // code substituted for unknown characters
	caseIns bool         // accept lower-case input characters
	kind    AlphabetKind // protein or nucleotide
}

// AlphabetKind discriminates the two biological alphabets used by the paper.
type AlphabetKind int

const (
	// KindProtein is the amino-acid alphabet (SWISS-PROT experiments).
	KindProtein AlphabetKind = iota
	// KindDNA is the nucleotide alphabet (Drosophila experiments).
	KindDNA
)

// NewAlphabet builds an alphabet from the ordered set of letters.  The
// unknown letter must be part of letters; characters outside the set are
// encoded as the unknown code when Encode is called in lenient mode.
func NewAlphabet(name string, letters string, unknown byte, kind AlphabetKind) (*Alphabet, error) {
	if len(letters) == 0 {
		return nil, fmt.Errorf("seq: alphabet %q has no letters", name)
	}
	if len(letters) >= int(Terminator) {
		return nil, fmt.Errorf("seq: alphabet %q too large (%d letters)", name, len(letters))
	}
	a := &Alphabet{
		name:    name,
		letters: []byte(letters),
		caseIns: true,
		kind:    kind,
	}
	for i := range a.codes {
		a.codes[i] = -1
	}
	for i := 0; i < len(letters); i++ {
		c := letters[i]
		if a.codes[c] != -1 {
			return nil, fmt.Errorf("seq: alphabet %q repeats letter %q", name, c)
		}
		a.codes[c] = int16(i)
		lower := c | 0x20
		if lower != c && lower >= 'a' && lower <= 'z' {
			a.codes[lower] = int16(i)
		}
	}
	u := a.codes[unknown]
	if u < 0 {
		return nil, fmt.Errorf("seq: unknown letter %q not in alphabet %q", unknown, name)
	}
	a.unknown = byte(u)
	return a, nil
}

// mustAlphabet panics on error; used only for the package-level constants.
func mustAlphabet(name, letters string, unknown byte, kind AlphabetKind) *Alphabet {
	a, err := NewAlphabet(name, letters, unknown, kind)
	if err != nil {
		panic(err)
	}
	return a
}

var (
	// Protein is the 20 standard amino acids plus B, Z and the unknown
	// residue X, in the conventional NCBI ordering.
	Protein = mustAlphabet("protein", "ARNDCQEGHILKMFPSTWYVBZX", 'X', KindProtein)

	// DNA is the nucleotide alphabet with the ambiguity code N.
	DNA = mustAlphabet("dna", "ACGTN", 'N', KindDNA)
)

// Name returns the alphabet's name ("protein" or "dna" for the built-ins).
func (a *Alphabet) Name() string { return a.name }

// Kind reports whether the alphabet is a protein or nucleotide alphabet.
func (a *Alphabet) Kind() AlphabetKind { return a.kind }

// Size returns the number of letters in the alphabet.
func (a *Alphabet) Size() int { return len(a.letters) }

// UnknownCode returns the code substituted for characters outside the
// alphabet when encoding leniently.
func (a *Alphabet) UnknownCode() byte { return a.unknown }

// Letter returns the character for an encoded symbol.  The terminator code
// renders as '$'.
func (a *Alphabet) Letter(code byte) byte {
	if code == Terminator {
		return TerminatorChar
	}
	if int(code) >= len(a.letters) {
		return '?'
	}
	return a.letters[code]
}

// Code returns the encoded symbol for a character and whether the character
// belongs to the alphabet.
func (a *Alphabet) Code(c byte) (byte, bool) {
	v := a.codes[c]
	if v < 0 {
		return a.unknown, false
	}
	return byte(v), true
}

// Encode converts a residue string into encoded symbols.  Characters outside
// the alphabet are mapped to the unknown code; whitespace is skipped.  An
// error is returned only for characters that are neither residues,
// whitespace nor digits (digits appear in some FASTA dialects and are
// ignored).
func (a *Alphabet) Encode(s string) ([]byte, error) {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			continue
		case c >= '0' && c <= '9':
			continue
		case c == '*' || c == '-' || c == '.':
			// Stop codons and gap characters are treated as unknown
			// residues so that downstream scoring remains defined.
			out = append(out, a.unknown)
		default:
			code, ok := a.Code(c)
			if !ok && !isLetter(c) {
				return nil, fmt.Errorf("seq: invalid character %q at position %d", c, i)
			}
			out = append(out, code)
		}
	}
	return out, nil
}

// MustEncode is Encode that panics on invalid input.  Intended for tests and
// literals.
func (a *Alphabet) MustEncode(s string) []byte {
	b, err := a.Encode(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Decode converts encoded symbols back into a residue string.
func (a *Alphabet) Decode(codes []byte) string {
	var sb strings.Builder
	sb.Grow(len(codes))
	for _, c := range codes {
		sb.WriteByte(a.Letter(c))
	}
	return sb.String()
}

// ValidCodes reports whether every symbol in codes is a valid residue code
// for this alphabet (terminators are not valid residues).
func (a *Alphabet) ValidCodes(codes []byte) bool {
	for _, c := range codes {
		if int(c) >= len(a.letters) {
			return false
		}
	}
	return true
}

// Letters returns a copy of the alphabet letters in code order.
func (a *Alphabet) Letters() []byte {
	out := make([]byte, len(a.letters))
	copy(out, a.letters)
	return out
}

func isLetter(c byte) bool {
	return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
}
