package seq

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// FASTAReader reads sequences from FASTA-formatted input and encodes them
// with a fixed alphabet.
type FASTAReader struct {
	r        *bufio.Reader
	alphabet *Alphabet
	pending  string // header of the next record, already consumed
	done     bool
	line     int
}

// NewFASTAReader returns a reader that decodes FASTA records from r using
// the alphabet.
func NewFASTAReader(r io.Reader, a *Alphabet) *FASTAReader {
	return &FASTAReader{r: bufio.NewReaderSize(r, 1<<16), alphabet: a}
}

// Read returns the next sequence, or io.EOF when the input is exhausted.
func (fr *FASTAReader) Read() (Sequence, error) {
	if fr.done {
		return Sequence{}, io.EOF
	}
	header := fr.pending
	fr.pending = ""
	var body strings.Builder
	for {
		line, err := fr.r.ReadString('\n')
		fr.line++
		line = strings.TrimRight(line, "\r\n")
		if len(line) > 0 {
			if line[0] == '>' {
				if header == "" {
					header = line[1:]
					if err == io.EOF {
						fr.done = true
						return fr.finish(header, body.String())
					}
					continue
				}
				fr.pending = line[1:]
				return fr.finish(header, body.String())
			}
			if line[0] == ';' {
				// Comment line (legacy FASTA); skip.
			} else if header == "" {
				return Sequence{}, fmt.Errorf("seq: fasta line %d: residue data before any header", fr.line)
			} else {
				body.WriteString(line)
			}
		}
		if err != nil {
			if err != io.EOF {
				return Sequence{}, err
			}
			fr.done = true
			if header == "" {
				return Sequence{}, io.EOF
			}
			return fr.finish(header, body.String())
		}
	}
}

func (fr *FASTAReader) finish(header, body string) (Sequence, error) {
	id, desc := splitHeader(header)
	return NewSequence(fr.alphabet, id, desc, body)
}

// ReadAll reads every remaining record.
func (fr *FASTAReader) ReadAll() ([]Sequence, error) {
	var out []Sequence
	for {
		s, err := fr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func splitHeader(h string) (id, desc string) {
	h = strings.TrimSpace(h)
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}

// ReadFASTAFile loads an entire FASTA file into a Database.
func ReadFASTAFile(path string, a *Alphabet) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	seqs, err := NewFASTAReader(f, a).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("seq: reading %s: %w", path, err)
	}
	return NewDatabase(a, seqs)
}

// WriteFASTA writes sequences in FASTA format with the given line width
// (0 means a single line per sequence).
func WriteFASTA(w io.Writer, a *Alphabet, seqs []Sequence, width int) error {
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if s.Description != "" {
			fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Description)
		} else {
			fmt.Fprintf(bw, ">%s\n", s.ID)
		}
		text := s.String(a)
		if width <= 0 {
			bw.WriteString(text)
			bw.WriteByte('\n')
			continue
		}
		for len(text) > 0 {
			n := width
			if n > len(text) {
				n = len(text)
			}
			bw.WriteString(text[:n])
			bw.WriteByte('\n')
			text = text[n:]
		}
	}
	return bw.Flush()
}

// WriteFASTAFile writes a database to a FASTA file.
func WriteFASTAFile(path string, db *Database, width int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFASTA(f, db.Alphabet(), db.Sequences(), width); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
