package seq

import (
	"fmt"
)

// Sequence is a single biological sequence: an identifier, an optional
// description and the encoded residues.
type Sequence struct {
	// ID is the accession or identifier of the sequence (FASTA header up
	// to the first whitespace).
	ID string
	// Description is the remainder of the FASTA header, if any.
	Description string
	// Residues holds the encoded symbols (alphabet codes, no terminator).
	Residues []byte
}

// NewSequence encodes residues with the alphabet and returns the sequence.
func NewSequence(a *Alphabet, id, description, residues string) (Sequence, error) {
	enc, err := a.Encode(residues)
	if err != nil {
		return Sequence{}, fmt.Errorf("seq: sequence %q: %w", id, err)
	}
	return Sequence{ID: id, Description: description, Residues: enc}, nil
}

// Len returns the number of residues in the sequence.
func (s Sequence) Len() int { return len(s.Residues) }

// String renders the sequence residues using the given alphabet.
func (s Sequence) String(a *Alphabet) string { return a.Decode(s.Residues) }

// Slice returns the residues in [from, to) without copying.  It panics if
// the bounds are invalid, mirroring Go slice semantics.
func (s Sequence) Slice(from, to int) []byte { return s.Residues[from:to] }

// Clone returns a deep copy of the sequence.
func (s Sequence) Clone() Sequence {
	r := make([]byte, len(s.Residues))
	copy(r, s.Residues)
	return Sequence{ID: s.ID, Description: s.Description, Residues: r}
}
