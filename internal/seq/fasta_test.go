package seq

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleFASTA = `>sp|P1|PROT1 first protein
ARNDCQEG
HILKMFPS
>sp|P2|PROT2 second protein
TWYV
; a legacy comment line
ACDE
>sp|P3|PROT3
GG
`

func TestFASTAReaderBasic(t *testing.T) {
	r := NewFASTAReader(strings.NewReader(sampleFASTA), Protein)
	seqs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("got %d sequences, want 3", len(seqs))
	}
	if seqs[0].ID != "sp|P1|PROT1" || seqs[0].Description != "first protein" {
		t.Fatalf("header parse wrong: %+v", seqs[0])
	}
	if got := seqs[0].String(Protein); got != "ARNDCQEGHILKMFPS" {
		t.Fatalf("seq0 = %q", got)
	}
	if got := seqs[1].String(Protein); got != "TWYVACDE" {
		t.Fatalf("seq1 = %q (comment line not skipped?)", got)
	}
	if got := seqs[2].String(Protein); got != "GG" {
		t.Fatalf("seq2 = %q", got)
	}
	if seqs[2].Description != "" {
		t.Fatalf("seq2 description = %q, want empty", seqs[2].Description)
	}
}

func TestFASTAReaderEOFAfterRead(t *testing.T) {
	r := NewFASTAReader(strings.NewReader(">a\nACGT\n"), DNA)
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestFASTAReaderNoTrailingNewline(t *testing.T) {
	r := NewFASTAReader(strings.NewReader(">a\nACGT"), DNA)
	s, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if s.String(DNA) != "ACGT" {
		t.Fatalf("got %q", s.String(DNA))
	}
}

func TestFASTAReaderCRLF(t *testing.T) {
	r := NewFASTAReader(strings.NewReader(">a desc here\r\nAC\r\nGT\r\n"), DNA)
	s, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if s.String(DNA) != "ACGT" || s.Description != "desc here" {
		t.Fatalf("got %q %q", s.String(DNA), s.Description)
	}
}

func TestFASTAReaderDataBeforeHeader(t *testing.T) {
	r := NewFASTAReader(strings.NewReader("ACGT\n>a\nACGT\n"), DNA)
	if _, err := r.Read(); err == nil {
		t.Fatal("expected error for residue data before header")
	}
}

func TestFASTAReaderEmpty(t *testing.T) {
	r := NewFASTAReader(strings.NewReader(""), DNA)
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestFASTAWriteReadRoundTrip(t *testing.T) {
	db := MustDatabase(Protein, []Sequence{
		{ID: "p1", Description: "alpha", Residues: Protein.MustEncode("ARNDCQEGHILKMFPSTWYV")},
		{ID: "p2", Residues: Protein.MustEncode("MKT")},
	})
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, Protein, db.Sequences(), 8); err != nil {
		t.Fatal(err)
	}
	back, err := NewFASTAReader(bytes.NewReader(buf.Bytes()), Protein).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d sequences", len(back))
	}
	for i := range back {
		if back[i].ID != db.Sequence(i).ID {
			t.Fatalf("id mismatch %q vs %q", back[i].ID, db.Sequence(i).ID)
		}
		if back[i].String(Protein) != db.Sequence(i).String(Protein) {
			t.Fatalf("residue mismatch for %s", back[i].ID)
		}
	}
}

func TestFASTAFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.fasta")
	db := MustDatabase(DNA, []Sequence{
		{ID: "chr1", Residues: DNA.MustEncode("ACGTACGTACGT")},
		{ID: "chr2", Residues: DNA.MustEncode("GGGGCCCC")},
	})
	if err := WriteFASTAFile(path, db, 5); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTAFile(path, DNA)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSequences() != 2 || back.TotalResidues() != db.TotalResidues() {
		t.Fatalf("round trip mismatch: %d seqs %d residues", back.NumSequences(), back.TotalResidues())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestReadFASTAFileMissing(t *testing.T) {
	if _, err := ReadFASTAFile("/nonexistent/no.fasta", DNA); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestSequenceCloneIndependent(t *testing.T) {
	s := Sequence{ID: "a", Residues: DNA.MustEncode("ACGT")}
	c := s.Clone()
	c.Residues[0] = 3
	if s.Residues[0] == 3 {
		t.Fatal("clone shares storage")
	}
	if s.Len() != 4 {
		t.Fatal("len wrong")
	}
	if string(s.Slice(1, 3)) != string(DNA.MustEncode("CG")) {
		t.Fatal("slice wrong")
	}
}
