package seq

import (
	"fmt"
	"sort"
)

// Partition is a split of one database into independently indexable shards.
// Every sequence of the source database appears in exactly one shard;
// sequence residues are shared with the source (not copied), so a partition
// costs one concatenated view per shard but no residue duplication.
type Partition struct {
	// Shards are the per-shard databases, each over the source alphabet.
	Shards []*Database
	// GlobalIndex[s][i] is the index in the source database of shard s's
	// i-th sequence; it maps shard-local hit indexes back to global ones.
	GlobalIndex [][]int
}

// NumShards returns the number of shards.
func (p *Partition) NumShards() int { return len(p.Shards) }

// PartitionDatabase splits db into at most nShards shards balanced by
// residue count, using the greedy longest-processing-time heuristic:
// sequences are assigned longest-first to the currently lightest shard.
// The split is deterministic; within each shard, sequences keep their
// source order so shard-local searches see the same neighbourhoods.
//
// Fewer than nShards shards are returned when the database has fewer
// sequences than requested (a shard is never empty).
func PartitionDatabase(db *Database, nShards int) (*Partition, error) {
	if db == nil {
		return nil, fmt.Errorf("seq: nil database")
	}
	if nShards < 1 {
		return nil, fmt.Errorf("seq: shard count must be >= 1, got %d", nShards)
	}
	n := db.NumSequences()
	if n == 0 {
		return nil, fmt.Errorf("seq: cannot partition an empty database")
	}
	if nShards > n {
		nShards = n
	}

	// Longest-first assignment to the lightest shard (ties: lowest shard).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := db.Sequence(order[a]).Len(), db.Sequence(order[b]).Len()
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	load := make([]int64, nShards)
	members := make([][]int, nShards)
	for _, si := range order {
		best := 0
		for s := 1; s < nShards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		members[best] = append(members[best], si)
		load[best] += int64(db.Sequence(si).Len())
	}

	p := &Partition{
		Shards:      make([]*Database, nShards),
		GlobalIndex: make([][]int, nShards),
	}
	for s := range members {
		sort.Ints(members[s]) // restore source order within the shard
		seqs := make([]Sequence, len(members[s]))
		for i, gi := range members[s] {
			seqs[i] = db.Sequence(gi)
		}
		shardDB, err := NewDatabase(db.Alphabet(), seqs)
		if err != nil {
			return nil, err
		}
		p.Shards[s] = shardDB
		p.GlobalIndex[s] = members[s]
	}
	return p, nil
}
