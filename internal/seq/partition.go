package seq

import (
	"fmt"
	"sort"
)

// Partition is a split of one database into independently indexable shards.
// Every sequence of the source database appears in exactly one shard;
// sequence residues are shared with the source (not copied), so a partition
// costs one concatenated view per shard but no residue duplication.
type Partition struct {
	// Shards are the per-shard databases, each over the source alphabet.
	Shards []*Database
	// GlobalIndex[s][i] is the index in the source database of shard s's
	// i-th sequence; it maps shard-local hit indexes back to global ones.
	GlobalIndex [][]int
}

// NumShards returns the number of shards.
func (p *Partition) NumShards() int { return len(p.Shards) }

// PartitionDatabase splits db into at most nShards shards balanced by
// residue count, using the greedy longest-processing-time heuristic:
// sequences are assigned longest-first to the currently lightest shard.
// The split is deterministic; within each shard, sequences keep their
// source order so shard-local searches see the same neighbourhoods.
//
// Fewer than nShards shards are returned when the database has fewer
// sequences than requested (a shard is never empty).
func PartitionDatabase(db *Database, nShards int) (*Partition, error) {
	if db == nil {
		return nil, fmt.Errorf("seq: nil database")
	}
	if nShards < 1 {
		return nil, fmt.Errorf("seq: shard count must be >= 1, got %d", nShards)
	}
	n := db.NumSequences()
	if n == 0 {
		return nil, fmt.Errorf("seq: cannot partition an empty database")
	}
	if nShards > n {
		nShards = n
	}

	// Longest-first assignment to the lightest shard (ties: lowest shard).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := db.Sequence(order[a]).Len(), db.Sequence(order[b]).Len()
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	load := make([]int64, nShards)
	members := make([][]int, nShards)
	for _, si := range order {
		best := 0
		for s := 1; s < nShards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		members[best] = append(members[best], si)
		load[best] += int64(db.Sequence(si).Len())
	}

	p := &Partition{
		Shards:      make([]*Database, nShards),
		GlobalIndex: make([][]int, nShards),
	}
	for s := range members {
		sort.Ints(members[s]) // restore source order within the shard
		seqs := make([]Sequence, len(members[s]))
		for i, gi := range members[s] {
			seqs[i] = db.Sequence(gi)
		}
		shardDB, err := NewDatabase(db.Alphabet(), seqs)
		if err != nil {
			return nil, err
		}
		p.Shards[s] = shardDB
		p.GlobalIndex[s] = members[s]
	}
	return p, nil
}

// PrefixPartition assigns every suffix of a database to exactly one shard by
// the suffix's one- or two-symbol prefix, so workers searching a shared
// suffix tree explore disjoint subtrees (the subtree rooted below prefix p
// holds exactly the suffixes starting with p).  Heavy single-symbol groups
// are split by their second symbol — including the terminator, for suffixes
// of length one — mirroring the disk index's Hunt-style prefix partitions
// (PrefixLen 1 or 2); prefixes never exceed two symbols, which keeps the
// shared near-root expansion shallow.
//
// PrefixPartition implements core.SubtreeAssigner.
type PrefixPartition struct {
	nShards int
	width   int // alphabet size; second-symbol buckets add one for the terminator
	// ownerL1[first] is the shard owning all suffixes starting with first,
	// or -1 when the group is split by second symbol.
	ownerL1 []int
	// ownerL2[first*(width+1)+bucket(second)] is the owning shard of a split
	// group's two-symbol prefix.
	ownerL2 []int
	// Load[s] counts the suffixes assigned to shard s (diagnostics, tests).
	Load []int64
	// NumGroups is the number of non-empty prefix groups assigned.
	NumGroups int
	// counts1[first] / counts2[first*(width+1)+bucket(second)] are the exact
	// per-prefix-group suffix counts the partition was balanced with; they
	// back PrefixCost.  Partitions rebuilt from a serialized assignment have
	// no counts (PrefixCost then reports 0 = unknown).
	counts1 []int64
	counts2 []int64
}

// PrefixCost implements core.PrefixCoster: the exact number of indexed
// suffixes in a prefix group — every suffix starting with first when
// second < 0, or with the two-symbol prefix (first, second) otherwise
// (second may be the terminator).  Returns 0 (unknown) for partitions
// rebuilt from a serialized assignment, which carry no counts.
func (p *PrefixPartition) PrefixCost(first byte, second int) int64 {
	if len(p.counts1) == 0 || int(first) >= p.width {
		return 0
	}
	if second < 0 {
		return p.counts1[first]
	}
	return p.counts2[int(first)*(p.width+1)+p.bucket(byte(second))]
}

// bucket folds a second symbol into its counter index (terminator last).
func (p *PrefixPartition) bucket(second byte) int {
	if int(second) >= p.width {
		return p.width
	}
	return int(second)
}

// NumShards implements core.SubtreeAssigner.
func (p *PrefixPartition) NumShards() int { return p.nShards }

// Split implements core.SubtreeAssigner: whether suffixes starting with
// first are partitioned among shards by their second symbol.
func (p *PrefixPartition) Split(first byte) bool {
	return int(first) < p.width && p.ownerL1[first] < 0
}

// Owner implements core.SubtreeAssigner: the shard owning the prefix (first)
// when !Split(first) — second is ignored — or (first, second) otherwise.
// Prefixes that cannot start an alignment (terminator first symbols) and
// prefixes absent from the database map to shard 0.
func (p *PrefixPartition) Owner(first, second byte) int {
	if int(first) >= p.width {
		return 0
	}
	if o := p.ownerL1[first]; o >= 0 {
		return o
	}
	return p.ownerL2[int(first)*(p.width+1)+p.bucket(second)]
}

// PrefixAssignment is the serializable form of a PrefixPartition: the
// flattened owner tables plus the dimensions needed to rebuild them.  It is
// what the sharded disk-index manifest stores so a search process can
// recreate the exact build-time partition without re-counting suffixes (see
// internal/diskst's manifest).
type PrefixAssignment struct {
	// Shards is the partition's shard count.
	Shards int `json:"shards"`
	// Width is the alphabet size the owner tables were sized for.
	Width int `json:"width"`
	// OwnerL1[first] is the shard owning all suffixes starting with first,
	// or -1 when that group is split by second symbol.
	OwnerL1 []int `json:"owner_l1"`
	// OwnerL2[first*(Width+1)+bucket(second)] owns a split group's
	// two-symbol prefix (the terminator bucket is last).
	OwnerL2 []int `json:"owner_l2"`
}

// Assignment returns the partition's serializable owner tables.
func (p *PrefixPartition) Assignment() PrefixAssignment {
	return PrefixAssignment{
		Shards:  p.nShards,
		Width:   p.width,
		OwnerL1: append([]int(nil), p.ownerL1...),
		OwnerL2: append([]int(nil), p.ownerL2...),
	}
}

// PrefixPartitionFromAssignment rebuilds a PrefixPartition from its
// serialized owner tables.  The per-shard Load counters and NumGroups are not
// part of the assignment (they are build-time diagnostics) and are left zero.
func PrefixPartitionFromAssignment(a PrefixAssignment) (*PrefixPartition, error) {
	if a.Shards < 1 {
		return nil, fmt.Errorf("seq: prefix assignment has %d shards", a.Shards)
	}
	if a.Width < 1 {
		return nil, fmt.Errorf("seq: prefix assignment has alphabet width %d", a.Width)
	}
	if len(a.OwnerL1) != a.Width || len(a.OwnerL2) != a.Width*(a.Width+1) {
		return nil, fmt.Errorf("seq: prefix assignment owner tables sized %d/%d, want %d/%d",
			len(a.OwnerL1), len(a.OwnerL2), a.Width, a.Width*(a.Width+1))
	}
	for _, o := range a.OwnerL1 {
		if o < -1 || o >= a.Shards {
			return nil, fmt.Errorf("seq: prefix assignment L1 owner %d out of range [-1,%d)", o, a.Shards)
		}
	}
	for _, o := range a.OwnerL2 {
		if o < 0 || o >= a.Shards {
			return nil, fmt.Errorf("seq: prefix assignment L2 owner %d out of range [0,%d)", o, a.Shards)
		}
	}
	return &PrefixPartition{
		nShards: a.Shards,
		width:   a.Width,
		ownerL1: append([]int(nil), a.OwnerL1...),
		ownerL2: append([]int(nil), a.OwnerL2...),
		Load:    make([]int64, a.Shards),
	}, nil
}

// PartitionByPrefix builds a prefix partition of db's suffixes into nShards
// groups balanced by suffix count: single-symbol groups heavier than
// total/(2*nShards) are split into their two-symbol subgroups, and all
// groups are then assigned longest-processing-time-first to the lightest
// shard.  The partition is deterministic for a given database and shard
// count.
func PartitionByPrefix(db *Database, nShards int) (*PrefixPartition, error) {
	if db == nil {
		return nil, fmt.Errorf("seq: nil database")
	}
	if nShards < 1 {
		return nil, fmt.Errorf("seq: shard count must be >= 1, got %d", nShards)
	}
	if db.NumSequences() == 0 {
		return nil, fmt.Errorf("seq: cannot partition an empty database")
	}
	width := db.Alphabet().Size()
	p := &PrefixPartition{
		nShards: nShards,
		width:   width,
		ownerL1: make([]int, width),
		ownerL2: make([]int, width*(width+1)),
		Load:    make([]int64, nShards),
	}
	counts1 := make([]int64, width)
	counts2 := make([]int64, width*(width+1))
	concat := db.Concat()
	for pos := 0; pos < len(concat); pos++ {
		first := concat[pos]
		if int(first) >= width {
			continue // a terminator suffix can never start an alignment
		}
		counts1[first]++
		// first is a residue, so pos+1 exists (every sequence ends with a
		// terminator).
		counts2[int(first)*(width+1)+p.bucket(concat[pos+1])]++
	}

	// group is one assignable prefix: a whole first-symbol subtree or, for
	// split groups, a (first, second) subgroup.
	type group struct {
		first  int
		second int // -1 for a whole single-symbol group
		count  int64
	}
	var groups []group
	splitAbove := db.TotalResidues() / int64(2*nShards)
	for f := 0; f < width; f++ {
		switch {
		case counts1[f] == 0:
			p.ownerL1[f] = 0 // absent from the database; any owner works
		case nShards > 1 && counts1[f] > splitAbove:
			p.ownerL1[f] = -1
			for s := 0; s <= width; s++ {
				if c := counts2[f*(width+1)+s]; c > 0 {
					groups = append(groups, group{first: f, second: s, count: c})
				}
			}
		default:
			p.ownerL1[f] = 0 // reassigned below
			groups = append(groups, group{first: f, second: -1, count: counts1[f]})
		}
	}
	p.NumGroups = len(groups)

	// LPT: heaviest group to the lightest shard (ties: lowest shard; group
	// order ties broken by prefix for determinism).
	sort.SliceStable(groups, func(a, b int) bool {
		if groups[a].count != groups[b].count {
			return groups[a].count > groups[b].count
		}
		if groups[a].first != groups[b].first {
			return groups[a].first < groups[b].first
		}
		return groups[a].second < groups[b].second
	})
	for _, g := range groups {
		best := 0
		for s := 1; s < nShards; s++ {
			if p.Load[s] < p.Load[best] {
				best = s
			}
		}
		if g.second < 0 {
			p.ownerL1[g.first] = best
		} else {
			p.ownerL2[g.first*(width+1)+g.second] = best
		}
		p.Load[best] += g.count
	}
	p.counts1 = counts1
	p.counts2 = counts2
	return p, nil
}
