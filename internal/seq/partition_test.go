package seq

import (
	"math/rand"
	"strings"
	"testing"
)

func randomPartitionDB(t *testing.T, rng *rand.Rand, n, maxLen int) *Database {
	t.Helper()
	letters := DNA.Letters()
	strs := make([]string, n)
	for i := range strs {
		var b strings.Builder
		l := 1 + rng.Intn(maxLen)
		for j := 0; j < l; j++ {
			b.WriteByte(letters[rng.Intn(len(letters))])
		}
		strs[i] = b.String()
	}
	db, err := DatabaseFromStrings(DNA, strs...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPartitionCoversEverySequenceOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		db := randomPartitionDB(t, rng, 1+rng.Intn(40), 120)
		nShards := 1 + rng.Intn(8)
		p, err := PartitionDatabase(db, nShards)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, db.NumSequences())
		for s, shardDB := range p.Shards {
			if shardDB.NumSequences() == 0 {
				t.Fatalf("shard %d is empty", s)
			}
			if len(p.GlobalIndex[s]) != shardDB.NumSequences() {
				t.Fatalf("shard %d: index map has %d entries for %d sequences",
					s, len(p.GlobalIndex[s]), shardDB.NumSequences())
			}
			for i, gi := range p.GlobalIndex[s] {
				if seen[gi] {
					t.Fatalf("sequence %d assigned to more than one shard", gi)
				}
				seen[gi] = true
				want := db.Sequence(gi)
				got := shardDB.Sequence(i)
				if got.ID != want.ID || got.Len() != want.Len() {
					t.Fatalf("shard %d seq %d: got %s/%d, want %s/%d",
						s, i, got.ID, got.Len(), want.ID, want.Len())
				}
			}
		}
		for gi, ok := range seen {
			if !ok {
				t.Fatalf("sequence %d missing from every shard", gi)
			}
		}
	}
}

func TestPartitionBalancesResidues(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := randomPartitionDB(t, rng, 200, 300)
	p, err := PartitionDatabase(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	var min, max int64
	for s, shardDB := range p.Shards {
		r := shardDB.TotalResidues()
		if s == 0 || r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	// LPT keeps the spread tight on a workload of 200 sequences; allow a
	// generous margin so the test checks balance, not the exact heuristic.
	if min == 0 || float64(max)/float64(min) > 1.25 {
		t.Fatalf("unbalanced shards: min=%d max=%d residues", min, max)
	}
}

func TestPartitionCapsShardCount(t *testing.T) {
	db := MustDatabase(DNA, []Sequence{mustSeq(t, "a", "ACGT"), mustSeq(t, "b", "GGCC")})
	p, err := PartitionDatabase(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 2 {
		t.Fatalf("got %d shards for a 2-sequence database, want 2", p.NumShards())
	}
	if _, err := PartitionDatabase(db, 0); err == nil {
		t.Fatal("expected an error for shard count 0")
	}
}

func TestPartitionIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomPartitionDB(t, rng, 60, 100)
	a, err := PartitionDatabase(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionDatabase(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	for s := range a.GlobalIndex {
		if len(a.GlobalIndex[s]) != len(b.GlobalIndex[s]) {
			t.Fatalf("shard %d sizes differ between runs", s)
		}
		for i := range a.GlobalIndex[s] {
			if a.GlobalIndex[s][i] != b.GlobalIndex[s][i] {
				t.Fatalf("shard %d entry %d differs between runs", s, i)
			}
		}
	}
}

func mustSeq(t *testing.T, id, residues string) Sequence {
	t.Helper()
	s, err := NewSequence(DNA, id, "", residues)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
