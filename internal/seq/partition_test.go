package seq

import (
	"math/rand"
	"strings"
	"testing"
)

func randomPartitionDB(t *testing.T, rng *rand.Rand, n, maxLen int) *Database {
	t.Helper()
	letters := DNA.Letters()
	strs := make([]string, n)
	for i := range strs {
		var b strings.Builder
		l := 1 + rng.Intn(maxLen)
		for j := 0; j < l; j++ {
			b.WriteByte(letters[rng.Intn(len(letters))])
		}
		strs[i] = b.String()
	}
	db, err := DatabaseFromStrings(DNA, strs...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPartitionCoversEverySequenceOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		db := randomPartitionDB(t, rng, 1+rng.Intn(40), 120)
		nShards := 1 + rng.Intn(8)
		p, err := PartitionDatabase(db, nShards)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, db.NumSequences())
		for s, shardDB := range p.Shards {
			if shardDB.NumSequences() == 0 {
				t.Fatalf("shard %d is empty", s)
			}
			if len(p.GlobalIndex[s]) != shardDB.NumSequences() {
				t.Fatalf("shard %d: index map has %d entries for %d sequences",
					s, len(p.GlobalIndex[s]), shardDB.NumSequences())
			}
			for i, gi := range p.GlobalIndex[s] {
				if seen[gi] {
					t.Fatalf("sequence %d assigned to more than one shard", gi)
				}
				seen[gi] = true
				want := db.Sequence(gi)
				got := shardDB.Sequence(i)
				if got.ID != want.ID || got.Len() != want.Len() {
					t.Fatalf("shard %d seq %d: got %s/%d, want %s/%d",
						s, i, got.ID, got.Len(), want.ID, want.Len())
				}
			}
		}
		for gi, ok := range seen {
			if !ok {
				t.Fatalf("sequence %d missing from every shard", gi)
			}
		}
	}
}

func TestPartitionBalancesResidues(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := randomPartitionDB(t, rng, 200, 300)
	p, err := PartitionDatabase(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	var min, max int64
	for s, shardDB := range p.Shards {
		r := shardDB.TotalResidues()
		if s == 0 || r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	// LPT keeps the spread tight on a workload of 200 sequences; allow a
	// generous margin so the test checks balance, not the exact heuristic.
	if min == 0 || float64(max)/float64(min) > 1.25 {
		t.Fatalf("unbalanced shards: min=%d max=%d residues", min, max)
	}
}

func TestPartitionCapsShardCount(t *testing.T) {
	db := MustDatabase(DNA, []Sequence{mustSeq(t, "a", "ACGT"), mustSeq(t, "b", "GGCC")})
	p, err := PartitionDatabase(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 2 {
		t.Fatalf("got %d shards for a 2-sequence database, want 2", p.NumShards())
	}
	if _, err := PartitionDatabase(db, 0); err == nil {
		t.Fatal("expected an error for shard count 0")
	}
}

func TestPartitionIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomPartitionDB(t, rng, 60, 100)
	a, err := PartitionDatabase(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionDatabase(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	for s := range a.GlobalIndex {
		if len(a.GlobalIndex[s]) != len(b.GlobalIndex[s]) {
			t.Fatalf("shard %d sizes differ between runs", s)
		}
		for i := range a.GlobalIndex[s] {
			if a.GlobalIndex[s][i] != b.GlobalIndex[s][i] {
				t.Fatalf("shard %d entry %d differs between runs", s, i)
			}
		}
	}
}

// TestPrefixPartitionCoversSuffixesDisjointly is the prefix partitioner's
// core property: every residue-starting suffix of the database maps to
// exactly one shard through Owner (coverage and disjointness both follow
// from Owner being a total function over the suffixes), and the per-shard
// loads account for every suffix exactly once.
func TestPrefixPartitionCoversSuffixesDisjointly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabets := []*Alphabet{DNA, Protein}
	for trial := 0; trial < 30; trial++ {
		a := alphabets[trial%len(alphabets)]
		letters := a.Letters()
		strs := make([]string, 1+rng.Intn(30))
		for i := range strs {
			var b strings.Builder
			l := 1 + rng.Intn(100)
			for j := 0; j < l; j++ {
				b.WriteByte(letters[rng.Intn(len(letters))])
			}
			strs[i] = b.String()
		}
		db, err := DatabaseFromStrings(a, strs...)
		if err != nil {
			t.Fatal(err)
		}
		nShards := 1 + rng.Intn(8)
		p, err := PartitionByPrefix(db, nShards)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumShards() != nShards {
			t.Fatalf("trial %d: %d shards, want %d", trial, p.NumShards(), nShards)
		}
		tally := make([]int64, nShards)
		concat := db.Concat()
		var covered int64
		for pos := 0; pos < len(concat); pos++ {
			if concat[pos] == Terminator {
				continue
			}
			s := p.Owner(concat[pos], concat[pos+1])
			if s < 0 || s >= nShards {
				t.Fatalf("trial %d: suffix at %d assigned to invalid shard %d", trial, pos, s)
			}
			tally[s]++
			covered++
		}
		if covered != db.TotalResidues() {
			t.Fatalf("trial %d: covered %d suffixes, database has %d", trial, covered, db.TotalResidues())
		}
		var loadSum int64
		for s := range tally {
			if tally[s] != p.Load[s] {
				t.Fatalf("trial %d shard %d: Owner routes %d suffixes, Load records %d",
					trial, s, tally[s], p.Load[s])
			}
			loadSum += p.Load[s]
		}
		if loadSum != db.TotalResidues() {
			t.Fatalf("trial %d: loads sum to %d, want %d", trial, loadSum, db.TotalResidues())
		}
		// Split groups must route consistently: Split(first) implies every
		// second symbol (including the terminator) has a valid owner.
		for _, f := range letters {
			code, _ := a.Code(f)
			if !p.Split(code) {
				continue
			}
			for _, g := range append(letters, Terminator) {
				second := g
				if g != Terminator {
					second, _ = a.Code(g)
				}
				if s := p.Owner(code, second); s < 0 || s >= nShards {
					t.Fatalf("trial %d: split prefix (%c,%v) has invalid owner %d", trial, f, g, s)
				}
			}
		}
	}
}

// TestPrefixPartitionBalance checks the LPT assignment spreads a large DNA
// database evenly: with only a handful of first symbols the heavy groups
// must be split for 8 shards to get comparable loads.
func TestPrefixPartitionBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	db := randomPartitionDB(t, rng, 150, 400)
	p, err := PartitionByPrefix(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumGroups <= 8 {
		t.Fatalf("expected heavy DNA first-symbol groups to split, got %d groups", p.NumGroups)
	}
	var min, max int64
	for s, l := range p.Load {
		if s == 0 || l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min == 0 || float64(max)/float64(min) > 2.0 {
		t.Fatalf("unbalanced prefix shards: min=%d max=%d", min, max)
	}
}

// TestPrefixPartitionDeterministicAndDegenerate pins determinism and the
// error cases.
func TestPrefixPartitionDeterministicAndDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db := randomPartitionDB(t, rng, 40, 80)
	a, err := PartitionByPrefix(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionByPrefix(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	concat := db.Concat()
	for pos := 0; pos < len(concat); pos++ {
		if concat[pos] == Terminator {
			continue
		}
		if a.Owner(concat[pos], concat[pos+1]) != b.Owner(concat[pos], concat[pos+1]) {
			t.Fatalf("assignment differs between identical runs at position %d", pos)
		}
	}
	if _, err := PartitionByPrefix(db, 0); err == nil {
		t.Fatal("expected an error for shard count 0")
	}
	if _, err := PartitionByPrefix(nil, 2); err == nil {
		t.Fatal("expected an error for a nil database")
	}
	empty := &Database{alphabet: DNA}
	if _, err := PartitionByPrefix(empty, 2); err == nil {
		t.Fatal("expected an error for an empty database")
	}
	// Terminator-first prefixes route to shard 0 (they can never start an
	// alignment, so the owner is arbitrary but must be valid).
	if s := a.Owner(Terminator, 0); s != 0 {
		t.Fatalf("terminator prefix routed to shard %d, want 0", s)
	}
}

// TestPrefixCostMatchesSuffixCounts is the PrefixCost contract: every
// exported cost equals a brute-force count of the suffixes in its prefix
// group, the single-symbol costs sum to the exact suffix count of the
// database, and each split group's two-symbol costs sum back to its
// single-symbol cost.
func TestPrefixCostMatchesSuffixCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	alphabets := []*Alphabet{DNA, Protein}
	for trial := 0; trial < 20; trial++ {
		a := alphabets[trial%len(alphabets)]
		letters := a.Letters()
		strs := make([]string, 1+rng.Intn(25))
		for i := range strs {
			var b strings.Builder
			l := 1 + rng.Intn(90)
			for j := 0; j < l; j++ {
				b.WriteByte(letters[rng.Intn(len(letters))])
			}
			strs[i] = b.String()
		}
		db, err := DatabaseFromStrings(a, strs...)
		if err != nil {
			t.Fatal(err)
		}
		p, err := PartitionByPrefix(db, 1+rng.Intn(8))
		if err != nil {
			t.Fatal(err)
		}
		width := a.Size()
		// Brute-force counts straight off the concatenation.
		brute1 := make([]int64, width)
		brute2 := make([]int64, width*(width+1))
		concat := db.Concat()
		for pos := 0; pos < len(concat); pos++ {
			first := concat[pos]
			if int(first) >= width {
				continue
			}
			brute1[first]++
			second := int(concat[pos+1])
			if second >= width {
				second = width
			}
			brute2[int(first)*(width+1)+second]++
		}
		var total int64
		for f := 0; f < width; f++ {
			got := p.PrefixCost(byte(f), -1)
			if got != brute1[f] {
				t.Fatalf("trial %d: PrefixCost(%d,-1)=%d, brute count %d", trial, f, got, brute1[f])
			}
			total += got
			var sub int64
			for s := 0; s <= width; s++ {
				got2 := p.PrefixCost(byte(f), s)
				if got2 != brute2[f*(width+1)+s] {
					t.Fatalf("trial %d: PrefixCost(%d,%d)=%d, brute count %d",
						trial, f, s, got2, brute2[f*(width+1)+s])
				}
				sub += got2
			}
			if sub != got {
				t.Fatalf("trial %d: two-symbol costs of first=%d sum to %d, single-symbol cost is %d",
					trial, f, sub, got)
			}
		}
		if total != db.TotalResidues() {
			t.Fatalf("trial %d: costs sum to %d, database has %d suffixes", trial, total, db.TotalResidues())
		}
		// Out-of-alphabet first symbols (the terminator) cost nothing.
		if c := p.PrefixCost(Terminator, -1); c != 0 {
			t.Fatalf("trial %d: terminator prefix cost %d, want 0", trial, c)
		}
	}
}

// TestPrefixCostDeterministicAndUnavailable pins that costs are identical
// across runs, and that a partition rebuilt from a serialized assignment —
// which carries no counts — reports 0 (= unknown) for every prefix.
func TestPrefixCostDeterministicAndUnavailable(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	db := randomPartitionDB(t, rng, 50, 120)
	a, err := PartitionByPrefix(db, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionByPrefix(db, 6)
	if err != nil {
		t.Fatal(err)
	}
	width := db.Alphabet().Size()
	for f := 0; f < width; f++ {
		if a.PrefixCost(byte(f), -1) != b.PrefixCost(byte(f), -1) {
			t.Fatalf("PrefixCost(%d,-1) differs between identical runs", f)
		}
		for s := 0; s <= width; s++ {
			if a.PrefixCost(byte(f), s) != b.PrefixCost(byte(f), s) {
				t.Fatalf("PrefixCost(%d,%d) differs between identical runs", f, s)
			}
		}
	}
	rebuilt, err := PrefixPartitionFromAssignment(a.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < width; f++ {
		if c := rebuilt.PrefixCost(byte(f), -1); c != 0 {
			t.Fatalf("rebuilt partition PrefixCost(%d,-1)=%d, want 0 (counts unavailable)", f, c)
		}
	}
	// Rebuilt owner tables must still match the original exactly.
	for f := 0; f < width; f++ {
		for s := 0; s <= width; s++ {
			if a.Owner(byte(f), byte(s)) != rebuilt.Owner(byte(f), byte(s)) {
				t.Fatalf("rebuilt Owner(%d,%d) differs from original", f, s)
			}
		}
	}
}

func mustSeq(t *testing.T, id, residues string) Sequence {
	t.Helper()
	s, err := NewSequence(DNA, id, "", residues)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
