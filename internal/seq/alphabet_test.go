package seq

import (
	"testing"
	"testing/quick"
)

func TestProteinAlphabetRoundTrip(t *testing.T) {
	in := "ARNDCQEGHILKMFPSTWYV"
	enc, err := Protein.Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := Protein.Decode(enc); got != in {
		t.Fatalf("round trip = %q, want %q", got, in)
	}
}

func TestDNAAlphabetRoundTrip(t *testing.T) {
	in := "ACGTACGTNN"
	enc, err := DNA.Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := DNA.Decode(enc); got != in {
		t.Fatalf("round trip = %q, want %q", got, in)
	}
}

func TestAlphabetLowercase(t *testing.T) {
	enc, err := Protein.Encode("acde")
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := Protein.Decode(enc); got != "ACDE" {
		t.Fatalf("lowercase decode = %q, want ACDE", got)
	}
}

func TestAlphabetWhitespaceAndDigits(t *testing.T) {
	enc, err := Protein.Encode("AC GT\n12\tDE")
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := Protein.Decode(enc); got != "ACGTDE" {
		t.Fatalf("decode = %q, want ACGTDE", got)
	}
}

func TestAlphabetUnknownMapping(t *testing.T) {
	// 'J' and 'O' are not standard residues; they should map to X, not fail.
	enc, err := Protein.Encode("AJO")
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := Protein.Decode(enc); got != "AXX" {
		t.Fatalf("decode = %q, want AXX", got)
	}
	// Stop codon and gap characters map to unknown too.
	enc, err = Protein.Encode("A*-.")
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := Protein.Decode(enc); got != "AXXX" {
		t.Fatalf("decode = %q, want AXXX", got)
	}
}

func TestAlphabetInvalidCharacter(t *testing.T) {
	if _, err := Protein.Encode("AC#DE"); err == nil {
		t.Fatal("expected error for '#'")
	}
	if _, err := DNA.Encode("ACG!T"); err == nil {
		t.Fatal("expected error for '!'")
	}
}

func TestAlphabetSizes(t *testing.T) {
	if Protein.Size() != 23 {
		t.Fatalf("protein size = %d, want 23", Protein.Size())
	}
	if DNA.Size() != 5 {
		t.Fatalf("dna size = %d, want 5", DNA.Size())
	}
	if Protein.Kind() != KindProtein || DNA.Kind() != KindDNA {
		t.Fatal("alphabet kinds wrong")
	}
}

func TestAlphabetTerminatorLetter(t *testing.T) {
	if Protein.Letter(Terminator) != TerminatorChar {
		t.Fatalf("terminator letter = %q", Protein.Letter(Terminator))
	}
	if !Protein.ValidCodes(Protein.MustEncode("ACD")) {
		t.Fatal("valid codes reported invalid")
	}
	if Protein.ValidCodes([]byte{Terminator}) {
		t.Fatal("terminator should not be a valid residue code")
	}
}

func TestAlphabetDuplicateLetterRejected(t *testing.T) {
	if _, err := NewAlphabet("bad", "AAC", 'A', KindDNA); err == nil {
		t.Fatal("expected duplicate-letter error")
	}
	if _, err := NewAlphabet("bad", "", 'A', KindDNA); err == nil {
		t.Fatal("expected empty-alphabet error")
	}
	if _, err := NewAlphabet("bad", "ACGT", 'Z', KindDNA); err == nil {
		t.Fatal("expected unknown-not-in-alphabet error")
	}
}

func TestAlphabetLettersCopy(t *testing.T) {
	l := DNA.Letters()
	l[0] = 'Z'
	if DNA.Letters()[0] != 'A' {
		t.Fatal("Letters() must return a copy")
	}
}

// Property: decoding any encoded valid-letter string returns the upper-cased
// original with non-alphabet letters replaced by the unknown residue.
func TestEncodeDecodeProperty(t *testing.T) {
	letters := Protein.Letters()
	f := func(idxs []uint8) bool {
		raw := make([]byte, len(idxs))
		for i, v := range idxs {
			raw[i] = letters[int(v)%len(letters)]
		}
		enc, err := Protein.Encode(string(raw))
		if err != nil {
			return false
		}
		return Protein.Decode(enc) == string(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
