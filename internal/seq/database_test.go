package seq

import (
	"testing"
	"testing/quick"
)

func TestDatabaseConcatLayout(t *testing.T) {
	db, err := DatabaseFromStrings(DNA, "ACGT", "GG", "T")
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 3 {
		t.Fatalf("NumSequences = %d", db.NumSequences())
	}
	if db.TotalResidues() != 7 {
		t.Fatalf("TotalResidues = %d", db.TotalResidues())
	}
	if db.ConcatLen() != 10 { // 7 residues + 3 terminators
		t.Fatalf("ConcatLen = %d", db.ConcatLen())
	}
	wantStarts := []int64{0, 5, 8}
	for i, w := range wantStarts {
		if db.SequenceStart(i) != w {
			t.Fatalf("SequenceStart(%d) = %d, want %d", i, db.SequenceStart(i), w)
		}
	}
	if db.SequenceEnd(0) != 4 || db.SequenceEnd(1) != 7 || db.SequenceEnd(2) != 9 {
		t.Fatalf("sequence ends wrong: %d %d %d", db.SequenceEnd(0), db.SequenceEnd(1), db.SequenceEnd(2))
	}
	// Terminators in the right places.
	for _, i := range []int{0, 1, 2} {
		if db.SymbolAt(db.SequenceEnd(i)) != Terminator {
			t.Fatalf("expected terminator at end of sequence %d", i)
		}
	}
}

func TestDatabaseLocate(t *testing.T) {
	db := MustDatabase(DNA, []Sequence{
		{ID: "a", Residues: DNA.MustEncode("ACGT")},
		{ID: "b", Residues: DNA.MustEncode("GG")},
	})
	cases := []struct {
		pos   int64
		seq   int
		local int64
	}{
		{0, 0, 0}, {3, 0, 3}, {4, 0, 4}, // 4 is sequence 0's terminator
		{5, 1, 0}, {6, 1, 1}, {7, 1, 2},
	}
	for _, c := range cases {
		si, loc, err := db.Locate(c.pos)
		if err != nil {
			t.Fatalf("Locate(%d): %v", c.pos, err)
		}
		if si != c.seq || loc != c.local {
			t.Fatalf("Locate(%d) = (%d,%d), want (%d,%d)", c.pos, si, loc, c.seq, c.local)
		}
	}
	if _, _, err := db.Locate(-1); err == nil {
		t.Fatal("expected error for negative position")
	}
	if _, _, err := db.Locate(db.ConcatLen()); err == nil {
		t.Fatal("expected error for out-of-range position")
	}
}

func TestDatabaseSuffixEnd(t *testing.T) {
	db := MustDatabase(DNA, []Sequence{
		{ID: "a", Residues: DNA.MustEncode("ACGT")},
		{ID: "b", Residues: DNA.MustEncode("GGC")},
	})
	if got := db.SuffixEnd(2); got != 4 {
		t.Fatalf("SuffixEnd(2) = %d, want 4", got)
	}
	if got := db.SuffixEnd(6); got != 8 {
		t.Fatalf("SuffixEnd(6) = %d, want 8", got)
	}
}

func TestDatabaseLookup(t *testing.T) {
	db := MustDatabase(DNA, []Sequence{
		{ID: "alpha", Residues: DNA.MustEncode("A")},
		{ID: "beta", Residues: DNA.MustEncode("C")},
	})
	if db.Lookup("beta") != 1 {
		t.Fatal("Lookup(beta) failed")
	}
	if db.Lookup("missing") != -1 {
		t.Fatal("Lookup(missing) should be -1")
	}
}

func TestDatabaseStats(t *testing.T) {
	db := MustDatabase(DNA, []Sequence{
		{ID: "a", Residues: DNA.MustEncode("AACG")},
		{ID: "b", Residues: DNA.MustEncode("TT")},
	})
	st := db.ComputeStats()
	if st.NumSequences != 2 || st.TotalResidues != 6 {
		t.Fatalf("stats basic fields wrong: %+v", st)
	}
	if st.MinLength != 2 || st.MaxLength != 4 {
		t.Fatalf("stats lengths wrong: %+v", st)
	}
	if st.MeanLength != 3 {
		t.Fatalf("mean length = %v", st.MeanLength)
	}
	codeA, _ := DNA.Code('A')
	if st.Frequencies[codeA] != 2.0/6.0 {
		t.Fatalf("freq(A) = %v", st.Frequencies[codeA])
	}
	var sum float64
	for _, f := range st.Frequencies {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("frequencies do not sum to 1: %v", sum)
	}
}

func TestDatabaseRejectsInvalidCodes(t *testing.T) {
	bad := Sequence{ID: "x", Residues: []byte{0, 1, 200}}
	if _, err := NewDatabase(DNA, []Sequence{bad}); err == nil {
		t.Fatal("expected error for out-of-alphabet code")
	}
	if _, err := NewDatabase(nil, nil); err == nil {
		t.Fatal("expected error for nil alphabet")
	}
}

func TestEmptyDatabase(t *testing.T) {
	db, err := NewDatabase(DNA, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.ConcatLen() != 0 || db.NumSequences() != 0 {
		t.Fatal("empty database should have no content")
	}
	st := db.ComputeStats()
	if st.TotalResidues != 0 {
		t.Fatal("empty stats wrong")
	}
}

// Property: Locate is the inverse of (SequenceStart + local) for every
// residue position of every sequence.
func TestDatabaseLocateProperty(t *testing.T) {
	f := func(lens []uint8) bool {
		var seqs []Sequence
		for i, l := range lens {
			n := int(l%17) + 1
			res := make([]byte, n)
			for j := range res {
				res[j] = byte((i + j) % DNA.Size())
			}
			seqs = append(seqs, Sequence{ID: "s", Residues: res})
		}
		db, err := NewDatabase(DNA, seqs)
		if err != nil {
			return false
		}
		for i := range seqs {
			for j := 0; j < seqs[i].Len(); j++ {
				pos := db.SequenceStart(i) + int64(j)
				si, loc, err := db.Locate(pos)
				if err != nil || si != i || loc != int64(j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
