package engine

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/seq"
)

// TestStressConcurrentBatchesWithCancellation hammers one warm engine from
// many goroutines — overlapping batches, mid-stream cancellation at random
// points, single-query searches racing them — to exercise the scratch-reuse
// paths under the race detector (CI runs this package with -race).  Every
// surviving stream must still be per-query decreasing-score.
func TestStressConcurrentBatchesWithCancellation(t *testing.T) {
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	setup := rand.New(rand.NewSource(1309))
	db := randomEngineDB(t, setup, seq.Protein, 40, 120)
	eng, err := New(db, Options{Shards: 4, ShardWorkers: 2, BatchWorkers: 4, ResultBuffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := randomQueries(setup, seq.Protein, 10, scheme)

	iters := 12
	if testing.Short() {
		iters = 3
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			for it := 0; it < iters; it++ {
				switch g % 3 {
				case 0: // full drain: verify per-query score order end to end
					last := make(map[int]int)
					for r := range eng.SubmitBatch(context.Background(), queries) {
						if r.Done {
							if r.Err != nil {
								t.Errorf("goroutine %d: query %d failed: %v", g, r.Index, r.Err)
							}
							continue
						}
						if prev, ok := last[r.Index]; ok && r.Hit.Score > prev {
							t.Errorf("goroutine %d: query %d score order violated: %d after %d",
								g, r.Index, r.Hit.Score, prev)
						}
						last[r.Index] = r.Hit.Score
					}
				case 1: // cancel mid-stream at a random point, keep draining
					ctx, cancel := context.WithCancel(context.Background())
					stopAfter := 1 + rng.Intn(20)
					n := 0
					for r := range eng.SubmitBatch(ctx, queries) {
						n++
						if n == stopAfter {
							cancel()
						}
						_ = r
					}
					cancel()
				case 2: // single-query searches racing the batches
					q := queries[rng.Intn(len(queries))]
					prev := int(^uint(0) >> 1)
					if _, err := eng.Search(context.Background(), q, func(h core.Hit) bool {
						if h.Score > prev {
							t.Errorf("goroutine %d: single-query score order violated", g)
						}
						prev = h.Score
						return rng.Intn(8) != 0 // occasionally stop early
					}); err != nil {
						t.Errorf("goroutine %d: search failed: %v", g, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The engine must still answer correctly after the storm.
	single, err := core.BuildMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[:3] {
		want, err := core.SearchAll(single, q.Residues, q.Options)
		if err != nil {
			t.Fatal(err)
		}
		var got []core.Hit
		if _, err := eng.Search(context.Background(), q, func(h core.Hit) bool {
			got = append(got, h)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("post-stress: %d hits, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Score != want[i].Score {
				t.Fatalf("post-stress: score %d at %d, want %d", got[i].Score, i, want[i].Score)
			}
		}
	}
}

// TestStressSingleFlightConcurrentDuplicates hammers a CACHED engine with a
// tiny query set from many goroutines — concurrent identical queries racing
// through the single-flight path, batches of pure duplicates, mid-stream
// cancellation, early stops — to exercise the leader/waiter handoff and
// entry replay under the race detector (CI runs this package with -race).
func TestStressSingleFlightConcurrentDuplicates(t *testing.T) {
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	setup := rand.New(rand.NewSource(97))
	db := randomEngineDB(t, setup, seq.Protein, 40, 120)
	eng, err := New(db, Options{Shards: 4, BatchWorkers: 4, ResultBuffer: 4, CacheBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Three queries only: nearly every concurrent operation collides on a
	// key, so the flight table and the replay path stay saturated.
	queries := randomQueries(setup, seq.Protein, 3, scheme)

	iters := 10
	if testing.Short() {
		iters = 3
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*104729 + 7))
			for it := 0; it < iters; it++ {
				switch g % 3 {
				case 0: // duplicate-only batch, fully drained
					batch := make([]Query, 6)
					for i := range batch {
						batch[i] = queries[rng.Intn(len(queries))]
					}
					last := make(map[int]int)
					for r := range eng.SubmitBatch(context.Background(), batch) {
						if r.Done {
							if r.Err != nil {
								t.Errorf("goroutine %d: %v", g, r.Err)
							}
							continue
						}
						if prev, ok := last[r.Index]; ok && r.Hit.Score > prev {
							t.Errorf("goroutine %d: score order violated", g)
						}
						last[r.Index] = r.Hit.Score
					}
				case 1: // concurrent identical single queries, occasional early stop
					q := queries[rng.Intn(len(queries))]
					prev := int(^uint(0) >> 1)
					if _, err := eng.Search(context.Background(), q, func(h core.Hit) bool {
						if h.Score > prev {
							t.Errorf("goroutine %d: score order violated", g)
						}
						prev = h.Score
						return rng.Intn(6) != 0
					}); err != nil {
						t.Errorf("goroutine %d: %v", g, err)
					}
				case 2: // cancellation racing the flight table
					ctx, cancel := context.WithCancel(context.Background())
					n := 0
					stopAfter := 1 + rng.Intn(10)
					for r := range eng.SubmitBatch(ctx, []Query{queries[rng.Intn(len(queries))]}) {
						n++
						if n == stopAfter {
							cancel()
						}
						_ = r
					}
					cancel()
				}
			}
		}(g)
	}
	wg.Wait()

	cs := eng.Metrics().Cache
	if cs == nil || cs.Hits == 0 {
		t.Fatalf("duplicate stress produced no cache hits: %+v", cs)
	}
	// The cache must still serve correct streams after the storm.
	single, err := core.BuildMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, err := core.SearchAll(single, q.Residues, q.Options)
		if err != nil {
			t.Fatal(err)
		}
		var got []core.Hit
		if _, err := eng.Search(context.Background(), q, func(h core.Hit) bool {
			got = append(got, h)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("post-stress cached stream has %d hits, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Score != want[i].Score {
				t.Fatalf("post-stress: score %d at %d, want %d", got[i].Score, i, want[i].Score)
			}
		}
	}
}
