package engine

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine: a warm engine's
// worker pools, compaction loops, and watchers must all stop with Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
