package engine

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/seq"
)

func randomEngineDB(t testing.TB, rng *rand.Rand, a *seq.Alphabet, nSeqs, maxLen int) *seq.Database {
	t.Helper()
	letters := a.Letters()
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	motif := randStr(6 + rng.Intn(10))
	strs := make([]string, nSeqs)
	for i := range strs {
		s := randStr(1 + rng.Intn(maxLen))
		if rng.Intn(2) == 0 {
			pos := rng.Intn(len(s) + 1)
			s = s[:pos] + motif + s[pos:]
		}
		strs[i] = s
	}
	db, err := seq.DatabaseFromStrings(a, strs...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func randomQueries(rng *rand.Rand, a *seq.Alphabet, n int, scheme score.Scheme) []Query {
	letters := a.Letters()
	out := make([]Query, n)
	for i := range out {
		qb := make([]byte, 4+rng.Intn(14))
		for j := range qb {
			qb[j] = letters[rng.Intn(len(letters))]
		}
		out[i] = Query{
			ID:       string(rune('a' + i%26)),
			Residues: a.MustEncode(string(qb)),
			Options:  core.Options{Scheme: scheme, MinScore: 1 + rng.Intn(10)},
		}
	}
	return out
}

// collectBatch drains a batch stream into per-query hit slices and Done
// results, asserting every query produces exactly one Done event.
func collectBatch(t testing.TB, n int, results <-chan Result) ([][]core.Hit, []Result) {
	t.Helper()
	hits := make([][]core.Hit, n)
	dones := make([]Result, n)
	seen := make([]bool, n)
	for r := range results {
		if r.Index < 0 || r.Index >= n {
			t.Fatalf("result index %d out of range", r.Index)
		}
		if r.Done {
			if seen[r.Index] {
				t.Fatalf("query %d produced two Done events", r.Index)
			}
			seen[r.Index] = true
			dones[r.Index] = r
			continue
		}
		if seen[r.Index] {
			t.Fatalf("query %d produced a hit after Done", r.Index)
		}
		hits[r.Index] = append(hits[r.Index], r.Hit)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("query %d produced no Done event", i)
		}
	}
	return hits, dones
}

// TestSubmitBatchMatchesSequential is the batch-vs-sequential equivalence
// property: a batch multiplexed over the warm engine must deliver, for every
// query, exactly the hits the single-index search reports, in decreasing
// score order.
func TestSubmitBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1309))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	for trial := 0; trial < 10; trial++ {
		db := randomEngineDB(t, rng, seq.Protein, 4+rng.Intn(24), 80)
		queries := randomQueries(rng, seq.Protein, 3+rng.Intn(8), scheme)

		single, err := core.BuildMemoryIndex(db)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(db, Options{Shards: 1 + rng.Intn(4), BatchWorkers: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}

		hits, dones := collectBatch(t, len(queries), eng.SubmitBatch(context.Background(), queries))
		for qi, q := range queries {
			want, err := core.SearchAll(single, q.Residues, q.Options)
			if err != nil {
				t.Fatal(err)
			}
			got := hits[qi]
			if dones[qi].Err != nil {
				t.Fatalf("trial %d query %d: unexpected error %v", trial, qi, dones[qi].Err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d query %d: %d hits, want %d", trial, qi, len(got), len(want))
			}
			seen := map[int]bool{}
			for i, h := range got {
				if i > 0 && h.Score > got[i-1].Score {
					t.Fatalf("trial %d query %d: score order violated at %d", trial, qi, i)
				}
				if h.Score != want[i].Score {
					t.Fatalf("trial %d query %d: score %d at %d, want %d", trial, qi, h.Score, i, want[i].Score)
				}
				if seen[h.SeqIndex] {
					t.Fatalf("trial %d query %d: sequence %d reported twice", trial, qi, h.SeqIndex)
				}
				seen[h.SeqIndex] = true
			}
			if dones[qi].Stats.SequencesReported != int64(len(got)) {
				t.Fatalf("trial %d query %d: Done stats report %d sequences, stream had %d",
					trial, qi, dones[qi].Stats.SequencesReported, len(got))
			}
		}
		st, served, reported := eng.Stats()
		if served != int64(len(queries)) {
			t.Fatalf("trial %d: engine served %d queries, want %d", trial, served, len(queries))
		}
		var total int64
		for _, h := range hits {
			total += int64(len(h))
		}
		if reported != total {
			t.Fatalf("trial %d: engine counted %d hits, stream had %d", trial, reported, total)
		}
		if total > 0 && st.NodesExpanded == 0 {
			t.Fatalf("trial %d: engine stats lost work counters", trial)
		}
	}
}

// TestSubmitBatchCancellation cancels the context mid-stream and verifies the
// stream terminates (channel closes) with every Done event accounted for.
func TestSubmitBatchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	db := randomEngineDB(t, rng, seq.Protein, 30, 120)
	queries := randomQueries(rng, seq.Protein, 12, scheme)
	eng, err := New(db, Options{Shards: 4, BatchWorkers: 4, ResultBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	results := eng.SubmitBatch(ctx, queries)
	n := 0
	for r := range results {
		n++
		if n == 3 {
			cancel()
		}
		_ = r
	}
	cancel()
	// The engine must be reusable after a cancelled batch.
	hits, dones := collectBatch(t, len(queries), eng.SubmitBatch(context.Background(), queries))
	for i := range dones {
		if dones[i].Err != nil {
			t.Fatalf("post-cancel query %d failed: %v", i, dones[i].Err)
		}
	}
	_ = hits
}

// TestEngineSearchTopKAndStop exercises the single-query path: MaxResults
// truncation and report-callback cancellation on a warm engine.
func TestEngineSearchTopKAndStop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	db := randomEngineDB(t, rng, seq.Protein, 20, 100)
	eng, err := New(db, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Residues: seq.Protein.MustEncode("DKDGDGTITTKE"), Options: core.Options{Scheme: scheme, MinScore: 5}}

	var all []core.Hit
	if _, err := eng.Search(context.Background(), q, func(h core.Hit) bool {
		all = append(all, h)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(all) > 1 {
		topQ := q
		topQ.Options.MaxResults = 1
		var top []core.Hit
		if _, err := eng.Search(context.Background(), topQ, func(h core.Hit) bool {
			top = append(top, h)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(top) != 1 || top[0].Score != all[0].Score {
			t.Fatalf("top-1 = %+v, want score %d", top, all[0].Score)
		}
		var stopped []core.Hit
		if _, err := eng.Search(context.Background(), q, func(h core.Hit) bool {
			stopped = append(stopped, h)
			return false
		}); err != nil {
			t.Fatal(err)
		}
		if len(stopped) != 1 {
			t.Fatalf("stop-after-first streamed %d hits", len(stopped))
		}
	}
}

// TestCloseConcurrentWithSearch races Close against starting searches: every
// search must either run to completion before Close returns or fail with
// ErrClosed — never start after Close has returned.
func TestCloseConcurrentWithSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	db := randomEngineDB(t, rng, seq.Protein, 10, 60)
	q := Query{Residues: seq.Protein.MustEncode("ACDEFG"), Options: core.Options{Scheme: scheme, MinScore: 3}}
	for trial := 0; trial < 50; trial++ {
		eng, err := New(db, Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var closed atomic.Bool
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := eng.Search(context.Background(), q, func(core.Hit) bool {
					if closed.Load() {
						t.Error("search running after Close returned")
					}
					return true
				})
				if err != nil && err != ErrClosed {
					t.Errorf("search error: %v", err)
				}
			}()
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		closed.Store(true)
		wg.Wait()
	}
}

// TestEngineClose verifies submissions after Close fail with ErrClosed, as a
// Done event on the batch path.
func TestEngineClose(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	db := randomEngineDB(t, rng, seq.Protein, 6, 40)
	eng, err := New(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	q := Query{Residues: seq.Protein.MustEncode("ACDE"), Options: core.Options{Scheme: scheme, MinScore: 1}}
	if _, err := eng.Search(context.Background(), q, func(core.Hit) bool { return true }); err != ErrClosed {
		t.Fatalf("Search after Close = %v, want ErrClosed", err)
	}
	_, dones := collectBatch(t, 1, eng.SubmitBatch(context.Background(), []Query{q}))
	if dones[0].Err != ErrClosed {
		t.Fatalf("batch after Close = %v, want ErrClosed", dones[0].Err)
	}
}

// TestPrefixEngineBatchAndMetrics drives a prefix-partitioned warm engine
// through SubmitBatch and checks the metrics snapshot: per-query hit streams
// must match the sequential search (as (sequence, score) sets), and Metrics
// must report one queue-depth entry per shard, all idle after the batch
// drains, with scratch reuse on the second batch.
func TestPrefixEngineBatchAndMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	db := randomEngineDB(t, rng, seq.DNA, 24, 80)
	scheme := score.MustScheme(score.UnitDNA(), -1)
	eng, err := New(db, Options{Shards: 4, PartitionByPrefix: true, BatchWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.NumShards() != 4 {
		t.Fatalf("got %d shards, want 4", eng.NumShards())
	}

	single, err := core.BuildMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	queries := randomQueries(rng, seq.DNA, 8, scheme)
	for round := 0; round < 2; round++ {
		hits, dones := collectBatch(t, len(queries), eng.SubmitBatch(context.Background(), queries))
		for i, q := range queries {
			want, err := core.SearchAll(single, q.Residues, q.Options)
			if err != nil {
				t.Fatal(err)
			}
			if len(hits[i]) != len(want) {
				t.Fatalf("round %d query %d: %d hits, sequential %d", round, i, len(hits[i]), len(want))
			}
			wantSet := map[[2]int]int{}
			for _, h := range want {
				wantSet[[2]int{h.SeqIndex, h.Score}]++
			}
			for j, h := range hits[i] {
				if j > 0 && h.Score > hits[i][j-1].Score {
					t.Fatalf("round %d query %d: score order violated", round, i)
				}
				k := [2]int{h.SeqIndex, h.Score}
				if wantSet[k] == 0 {
					t.Fatalf("round %d query %d: hit %+v not in sequential results", round, i, h)
				}
				wantSet[k]--
			}
			if dones[i].Err != nil {
				t.Fatalf("round %d query %d: %v", round, i, dones[i].Err)
			}
		}
	}

	m := eng.Metrics()
	if len(m.Shards) != 4 {
		t.Fatalf("metrics list %d shards, want 4", len(m.Shards))
	}
	for _, sh := range m.Shards {
		if sh.Queued != 0 || sh.Active != 0 {
			t.Fatalf("idle engine reports busy shard: %+v", sh)
		}
	}
	if m.Scratch.Gets == 0 || m.Scratch.Reuses == 0 {
		t.Fatalf("warm engine shows no scratch reuse: %+v", m.Scratch)
	}
}
