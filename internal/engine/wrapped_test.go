package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/shard"
)

// TestWrappedShardEngine: an engine wrapped around a pre-assembled shard
// engine must serve batches and cache hits exactly like a normally built one,
// and must refuse writes — a coordinator cannot mutate a corpus that lives in
// the slices' serving processes.
func TestWrappedShardEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := seq.Protein
	db := randomEngineDB(t, rng, a, 30, 60)
	scheme := score.MustScheme(score.ByName("PAM30"), -10)

	base, err := shard.NewEngine(db, shard.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewFromShardEngine(base, Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	plain, err := New(db, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	queries := randomQueries(rng, a, 6, scheme)
	gotHits, gotDones := collectBatch(t, len(queries), eng.SubmitBatch(context.Background(), queries))
	wantHits, _ := collectBatch(t, len(queries), plain.SubmitBatch(context.Background(), queries))
	for i := range queries {
		if gotDones[i].Err != nil {
			t.Fatalf("query %d: %v", i, gotDones[i].Err)
		}
		if len(gotHits[i]) != len(wantHits[i]) {
			t.Fatalf("query %d: wrapped engine reported %d hits, plain %d", i, len(gotHits[i]), len(wantHits[i]))
		}
		for j := range gotHits[i] {
			if gotHits[i][j] != wantHits[i][j] {
				t.Fatalf("query %d hit %d: got %+v, want %+v", i, j, gotHits[i][j], wantHits[i][j])
			}
		}
	}

	// Repeating one query must come out of the result cache.
	q := queries[0]
	if _, err := eng.Search(context.Background(), q, func(core.Hit) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if m := eng.Metrics(); m.Cache == nil || m.Cache.Hits == 0 {
		t.Fatalf("repeated query did not hit the result cache: %+v", m.Cache)
	}

	// Writes must refuse: the corpus is owned elsewhere.
	if _, err := eng.Insert("NEW1", a.MustEncode("DKDGDGCITTKEL")); !errors.Is(err, ErrImmutable) {
		t.Fatalf("Insert on a wrapped engine returned %v, want ErrImmutable", err)
	}
	if _, err := eng.Delete("seq0"); !errors.Is(err, ErrImmutable) {
		t.Fatalf("Delete on a wrapped engine returned %v, want ErrImmutable", err)
	}
	if _, err := eng.Compact(); !errors.Is(err, ErrImmutable) {
		t.Fatalf("Compact on a wrapped engine returned %v, want ErrImmutable", err)
	}

	// Construction options that imply building an index must be rejected.
	if _, err := NewFromShardEngine(nil, Options{}); err == nil {
		t.Fatal("nil shard engine accepted")
	}
	base2, err := shard.NewEngine(db, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer base2.Close()
	if _, err := NewFromShardEngine(base2, Options{Shards: 4}); err == nil {
		t.Fatal("index-construction options accepted by NewFromShardEngine")
	}
}
