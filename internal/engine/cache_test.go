package engine

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/score"
	"repro/internal/seq"
)

// collectStream runs one query through Search and returns its hit stream.
func collectStream(t testing.TB, eng *Engine, q Query) []core.Hit {
	t.Helper()
	var hits []core.Hit
	if _, err := eng.Search(context.Background(), q, func(h core.Hit) bool {
		hits = append(hits, h)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return hits
}

// requireSameHitSet asserts two streams report the same (sequence, score)
// multiset in decreasing score order.  Multi-shard engines may interleave
// equal-score hits differently between runs, so this is the strongest
// cross-engine guarantee; see requireIdenticalStream for the replay case.
func requireSameHitSet(t testing.TB, label string, got, want []core.Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
	}
	wantSet := map[[2]int]int{}
	for _, h := range want {
		wantSet[[2]int{h.SeqIndex, h.Score}]++
	}
	for i, h := range got {
		if i > 0 && h.Score > got[i-1].Score {
			t.Fatalf("%s: score order violated at %d", label, i)
		}
		k := [2]int{h.SeqIndex, h.Score}
		if wantSet[k] == 0 {
			t.Fatalf("%s: unexpected hit %+v", label, h)
		}
		wantSet[k]--
	}
}

// requireIdenticalStream asserts byte-identical hit streams (every Hit field,
// including Rank, EValue and alignment ends).
func requireIdenticalStream(t testing.TB, label string, got, want []core.Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: hit %d differs:\n got %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

// cacheTestQueries builds a query mix with duplicates and varied options
// (top-k truncation, E-values) so the cache's truncation and key rules all
// get exercised.
func cacheTestQueries(t testing.TB, rng *rand.Rand, scheme score.Scheme, n int) []Query {
	t.Helper()
	ka, err := score.Params(scheme.Matrix, nil)
	if err != nil {
		t.Fatal(err)
	}
	letters := seq.Protein.Letters()
	uniq := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		qb := make([]byte, 6+rng.Intn(10))
		for j := range qb {
			qb[j] = letters[rng.Intn(len(letters))]
		}
		opts := core.Options{Scheme: scheme, MinScore: 1 + rng.Intn(6)}
		if rng.Intn(2) == 0 {
			opts.KA = &ka
		}
		if rng.Intn(3) == 0 {
			opts.MaxResults = 1 + rng.Intn(4)
		}
		uniq = append(uniq, Query{ID: fmt.Sprintf("q%d", i), Residues: seq.Protein.MustEncode(string(qb)), Options: opts})
	}
	// Interleave duplicates so roughly half the stream repeats.
	out := make([]Query, 0, 2*n)
	for i, q := range uniq {
		out = append(out, q)
		out = append(out, uniq[rng.Intn(i+1)])
	}
	return out
}

// TestCacheOnOffEquivalence is the headline correctness property of the
// result cache: over random workloads with ~50% duplicate queries, an engine
// with the cache enabled must produce, query for query, the same hit streams
// as an identically configured engine without it — across both partition
// modes and both in-memory and disk-backed (IndexDir) engines — and repeats
// of a query on the cached engine must replay byte-identically.
func TestCacheOnOffEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1309))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	configs := []struct {
		name   string
		shards int
		prefix bool
		disk   bool
	}{
		{"memory/seq/1", 1, false, false},
		{"memory/seq/3", 3, false, false},
		{"memory/prefix/3", 3, true, false},
		{"disk/seq/2", 2, false, true},
		{"disk/prefix/2", 2, true, true},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			db := randomEngineDB(t, rng, seq.Protein, 12+rng.Intn(12), 70)
			queries := cacheTestQueries(t, rng, scheme, 8)

			newEng := func(cacheBytes int64) *Engine {
				opts := Options{CacheBytes: cacheBytes}
				var dbArg *seq.Database = db
				if cfg.disk {
					dir := filepath.Join(t.TempDir(), "idx")
					if _, _, err := diskst.BuildSharded(dir, db, diskst.ShardedBuildOptions{
						Shards:            cfg.shards,
						PartitionByPrefix: cfg.prefix,
					}); err != nil {
						t.Fatal(err)
					}
					opts.IndexDir = dir
					dbArg = nil
				} else {
					opts.Shards = cfg.shards
					opts.PartitionByPrefix = cfg.prefix
				}
				eng, err := New(dbArg, opts)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = eng.Close() })
				return eng
			}
			engOff := newEng(0)
			engOn := newEng(8 << 20)

			for qi, q := range queries {
				want := collectStream(t, engOff, q)
				got := collectStream(t, engOn, q)
				label := fmt.Sprintf("%s query %d (%s)", cfg.name, qi, q.ID)
				if cfg.shards == 1 {
					// Single-shard streams are fully deterministic, so
					// cache-on must be byte-identical to cache-off.
					requireIdenticalStream(t, label, got, want)
				} else {
					requireSameHitSet(t, label, got, want)
				}
				// Replays of the same query on the cached engine must be
				// byte-identical to what it served the first time.
				requireIdenticalStream(t, label+" replay", collectStream(t, engOn, q), got)
			}
			m := engOn.Metrics()
			if m.Cache == nil {
				t.Fatal("cache-enabled engine reports no cache metrics")
			}
			if m.Cache.Hits == 0 {
				t.Fatalf("duplicate-heavy workload produced no cache hits: %+v", *m.Cache)
			}
			if off := engOff.Metrics(); off.Cache != nil {
				t.Fatal("cache-disabled engine reports cache metrics")
			}
		})
	}
}

// TestCacheMaxResultsTruncation checks the completeness rules end to end: a
// top-k query must never be served a stream the cache cannot prove covers k,
// and replays must truncate exactly like live searches.
func TestCacheMaxResultsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	db := randomEngineDB(t, rng, seq.Protein, 24, 80)
	eng, err := New(db, Options{Shards: 1, CacheBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	base := Query{Residues: seq.Protein.MustEncode("DKDGDGTITTKE"), Options: core.Options{Scheme: scheme, MinScore: 3}}
	all := collectStream(t, eng, base) // populates a complete entry
	if len(all) < 3 {
		t.Skipf("workload yields only %d hits; need >= 3", len(all))
	}
	for k := 1; k <= len(all); k++ {
		topQ := base
		topQ.Options.MaxResults = k
		requireIdenticalStream(t, fmt.Sprintf("top-%d from complete entry", k), collectStream(t, eng, topQ), all[:k])
	}

	// A fresh engine whose first sighting is truncated must serve smaller k
	// from the incomplete entry but re-run for larger k.
	eng2, err := New(db, Options{Shards: 1, CacheBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	top2 := base
	top2.Options.MaxResults = 2
	first := collectStream(t, eng2, top2)
	requireIdenticalStream(t, "truncated first sighting", first, all[:2])
	top1 := base
	top1.Options.MaxResults = 1
	requireIdenticalStream(t, "smaller k from incomplete entry", collectStream(t, eng2, top1), all[:1])
	hitsBefore := eng2.Metrics().Cache.Hits
	if hitsBefore == 0 {
		t.Fatal("smaller-k request did not hit the incomplete entry")
	}
	requireIdenticalStream(t, "larger k re-runs", collectStream(t, eng2, base), all)
	if got := collectStream(t, eng2, top2); len(got) != 2 {
		t.Fatalf("top-2 after upgrade returned %d hits", len(got))
	}
}

// TestCacheOversizedStreamNotBuffered pins the oversized-stream guard: a hit
// stream bigger than the largest entry the cache can hold is never inserted
// (and the leader stops buffering it mid-flight), while the stream itself
// still reaches the client complete and correct.
func TestCacheOversizedStreamNotBuffered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	db := randomEngineDB(t, rng, seq.Protein, 40, 80)
	// A cache this small cannot hold any multi-hit stream (per-stripe
	// budget is CacheBytes/16, under a single Hit's footprint).
	eng, err := New(db, Options{Shards: 1, CacheBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := Query{Residues: seq.Protein.MustEncode("DKDGDGTITTKE"), Options: core.Options{Scheme: scheme, MinScore: 1}}
	first := collectStream(t, eng, q)
	if len(first) < 2 {
		t.Skipf("workload yields only %d hits", len(first))
	}
	second := collectStream(t, eng, q)
	requireIdenticalStream(t, "uncacheable stream re-run", second, first)
	cs := eng.Metrics().Cache
	if cs.Insertions != 0 || cs.Hits != 0 {
		t.Fatalf("oversized streams were cached: %+v", *cs)
	}
}

// TestSingleFlightConcurrentIdenticalQueries launches many goroutines on the
// same query at once: every stream must be byte-identical, and the flight
// table must have collapsed the duplicates (at most a few DP sweeps, the
// rest replays or waits).  CI runs this package under -race.
func TestSingleFlightConcurrentIdenticalQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	db := randomEngineDB(t, rng, seq.Protein, 30, 100)
	eng, err := New(db, Options{Shards: 2, CacheBytes: 8 << 20, BatchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := Query{Residues: seq.Protein.MustEncode("DKDGDGTITTKELGTV"), Options: core.Options{Scheme: scheme, MinScore: 5}}

	const goroutines = 16
	streams := make([][]core.Hit, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			var hits []core.Hit
			if _, err := eng.Search(context.Background(), q, func(h core.Hit) bool {
				hits = append(hits, h)
				return true
			}); err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			streams[g] = hits
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		requireIdenticalStream(t, fmt.Sprintf("goroutine %d vs 0", g), streams[g], streams[0])
	}
	cs := eng.Metrics().Cache
	if cs == nil {
		t.Fatal("no cache metrics")
	}
	if cs.Hits+cs.FlightWaits < goroutines-1 {
		t.Fatalf("duplicates were not collapsed: %+v", *cs)
	}
	if cs.Insertions == 0 {
		t.Fatalf("leader inserted nothing: %+v", *cs)
	}
}
