// Package engine turns the per-query OASIS machinery into a long-running
// batch query engine: one warm sharded index (internal/shard) built once,
// per-worker scratch reuse (internal/core.Scratch pooled through
// internal/bufferpool.FreeList), an optional cross-query result cache
// (internal/qcache, Options.CacheBytes) that replays completed hit streams
// for repeated queries and single-flights concurrent duplicates, and a
// SubmitBatch API that multiplexes many concurrent queries over the shared
// index — on a bounded worker pool — while preserving each query's online
// decreasing-score hit stream.
//
// The paper's value proposition is online search — hits stream out strongest
// first so clients can stop early — but a cold start per query (index
// construction, scratch allocation, shard pool spin-up) caps throughput far
// below what the algorithm allows.  The engine amortises all of that across
// the query stream: build once, serve many.
//
//	eng, _ := engine.New(db, engine.Options{Shards: 8})
//	results := eng.SubmitBatch(ctx, queries)
//	for r := range results {
//	    if r.Done { ... } else { use r.Hit (per-query decreasing score) }
//	}
package engine

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/qcache"
	"repro/internal/seq"
	"repro/internal/shard"
	"repro/internal/suffixtree"
)

// Options configures a warm engine.
type Options struct {
	// IndexDir, when set, serves prebuilt per-shard disk indexes from this
	// directory (written by diskst.BuildSharded / oasis-build -shards)
	// instead of building in-memory indexes from a database: each shard
	// searches its own diskst.Index through its own buffer pool, so one
	// warm engine can serve databases bigger than RAM.  The shard count and
	// partition mode come from the directory's manifest; Shards and
	// PartitionByPrefix must be left zero/false.
	IndexDir string
	// PoolBytes is the per-shard buffer-pool capacity in bytes for IndexDir
	// engines (default diskst.DefaultPoolBytesPerShard).
	PoolBytes int64
	// Shards is the number of database partitions (default 1; capped at the
	// number of sequences) — see shard.Options.
	Shards int
	// PartitionByPrefix selects prefix-partitioned subtree sharding: one
	// shared suffix tree with disjoint top-level subtrees per shard, so
	// near-root column work is done once per query instead of once per
	// shard (see shard.PartitionByPrefix).
	PartitionByPrefix bool
	// ShardWorkers bounds how many shard searches run concurrently within
	// one query (default: one per shard).
	ShardWorkers int
	// BatchWorkers bounds how many queries of a batch are in flight at once
	// (default GOMAXPROCS).
	BatchWorkers int
	// ResultBuffer is the capacity of the channel returned by SubmitBatch
	// (default 64).  A larger buffer decouples slow consumers from the
	// search workers.
	ResultBuffer int
	// AllowDegraded admits an IndexDir whose shard file(s) fail to open:
	// the failed shards are quarantined at open time and every query reports
	// Degraded with the per-shard errors instead of the engine refusing to
	// start (sequence-partitioned directories only).
	AllowDegraded bool
	// WarmupPages controls open-time buffer-pool warm-up per disk shard:
	// 0 pre-faults diskst.DefaultWarmupPages near-root pages, negative
	// disables warm-up.
	WarmupPages int
	// CacheBytes bounds the cross-query result cache (internal/qcache): a
	// positive budget makes the engine store every completed decreasing-score
	// hit stream and replay it — without touching the index — when an
	// identical query (same residues, scheme, MinScore, E-value statistics)
	// arrives again.  Concurrent identical queries are single-flighted: one
	// runs the DP sweep, the rest wait and replay.  Cache keys carry the
	// index generation, so a write (Insert/Delete/Compact) retargets the
	// cache instead of serving stale streams; superseded entries age out of
	// the LRU, which evicts by recency when the budget fills.  Zero disables
	// caching.
	CacheBytes int64
}

// Query is one unit of work for the engine.
type Query struct {
	// ID identifies the query in the multiplexed result stream (batch
	// results carry both the ID and the batch index, so IDs need not be
	// unique).
	ID string
	// Residues is the encoded query sequence.
	Residues []byte
	// Options configures this query's search (MinScore, MaxResults, KA,
	// DisableLiveBand).  Stats may be nil; the engine accumulates per-query
	// and engine-wide counters regardless.  Scratch is managed by the
	// engine and must be nil.
	Options core.Options
}

// Result is one event of a batch result stream.  Every query produces zero
// or more hit events normally followed by exactly one Done event; hit events
// for one query arrive in decreasing score order (events of different
// queries interleave arbitrarily).  After the context is cancelled, Done
// events may be dropped when the consumer has stopped draining — the channel
// still closes once every query has unwound.
type Result struct {
	// QueryID and Index identify the query (Index is its position in the
	// submitted batch).
	QueryID string
	Index   int
	// Hit is valid when Done is false.
	Hit core.Hit
	// Done marks the query's final event; Stats then holds its merged work
	// counters, Elapsed its wall-clock duration, and Err its terminal error
	// (context.Canceled after cancellation, nil on normal completion).
	Done    bool
	Stats   core.Stats
	Elapsed time.Duration
	Err     error
}

// Engine is a warm, concurrency-safe OASIS query engine: the sharded index
// is built once and every subsequent query reuses it, along with pooled
// searcher scratch.  All methods are safe for concurrent use.
type Engine struct {
	batchWorkers int
	resultBuffer int
	// cache is the cross-query result cache (nil when Options.CacheBytes is
	// zero); it also owns the single-flight table for concurrent duplicates.
	cache *qcache.Cache

	// state is the published generation snapshot (see mutable.go): the base
	// sharded index plus any delta layers and tombstones.  Searches pin one
	// snapshot for their whole run; writers build a new snapshot under wmu
	// and swap it in atomically.
	state atomic.Pointer[genState]

	// Writer-side mutable-layer fields, all guarded by wmu.  wBase/wDB track
	// the current base (memory-mode compaction replaces them); retired bases
	// and opened delta indexes accumulate in closers and are released only at
	// Close, so pinned snapshots stay valid without per-generation
	// refcounting.
	wmu         sync.Mutex
	wBase       *shard.Engine
	wDB         *seq.Database
	wGen        uint64
	mem         *suffixtree.OnlineBuilder
	layers      []shard.ExtraShard
	layerSeqs   int
	layerRes    int64
	tombs       map[int]bool // immutable once published; copy-on-write
	idIndex     map[string]int
	closers     []io.Closer
	indexDir    string
	manifest    *diskst.Manifest
	poolBytes   int64
	warmupPages int
	memOpts     shard.Options

	// immutable marks engines whose base index is not writable from this
	// process (provider-backed coordinator engines: the corpus lives in the
	// remote slices' serving processes).  Insert/Delete/Compact refuse.
	immutable bool

	inserts     atomic.Int64
	deletes     atomic.Int64
	compactions atomic.Int64

	mu              sync.Mutex
	stats           core.Stats
	queriesServed   int64
	hitsReported    int64
	degradedQueries int64
	closed          bool
	// active tracks in-flight work; begin() only Adds under mu while the
	// engine is open, so Close's Wait cannot race a starting submission.
	active sync.WaitGroup
}

// cur returns the engine's current published generation snapshot.
func (e *Engine) cur() *genState { return e.state.Load() }

// New builds a warm engine ready to serve queries: with Options.IndexDir it
// opens the directory's prebuilt per-shard disk indexes (db must be nil);
// otherwise it partitions db and builds one in-memory suffix-tree index per
// shard.
func New(db *seq.Database, opts Options) (*Engine, error) {
	var sharded *shard.Engine
	var err error
	if opts.IndexDir != "" {
		if db != nil {
			return nil, fmt.Errorf("engine: IndexDir and a database are mutually exclusive")
		}
		if opts.Shards != 0 || opts.PartitionByPrefix {
			return nil, fmt.Errorf("engine: Shards/PartitionByPrefix come from the IndexDir manifest; do not set them")
		}
		sharded, err = shard.OpenDiskEngine(opts.IndexDir, shard.DiskOptions{
			Workers:           opts.ShardWorkers,
			PoolBytesPerShard: opts.PoolBytes,
			AllowDegraded:     opts.AllowDegraded,
			WarmupPages:       opts.WarmupPages,
			// The mutable layer below reopens the manifest's deltas and
			// tombstones itself (writes must be able to continue); a standing
			// set on the base engine would search every delta twice.
			BaseOnly: true,
		})
	} else {
		if db == nil {
			return nil, fmt.Errorf("engine: either a database or IndexDir is required")
		}
		mode := shard.PartitionBySequence
		if opts.PartitionByPrefix {
			mode = shard.PartitionByPrefix
		}
		sharded, err = shard.NewEngine(db, shard.Options{
			Shards:    opts.Shards,
			Workers:   opts.ShardWorkers,
			Partition: mode,
		})
	}
	if err != nil {
		return nil, err
	}
	bw := opts.BatchWorkers
	if bw < 1 {
		bw = runtime.GOMAXPROCS(0)
	}
	rb := opts.ResultBuffer
	if rb < 1 {
		rb = 64
	}
	e := &Engine{
		batchWorkers: bw,
		resultBuffer: rb,
	}
	if err := e.initMutable(sharded, db, opts); err != nil {
		sharded.Close()
		return nil, err
	}
	if opts.CacheBytes > 0 {
		e.cache = qcache.New(opts.CacheBytes)
	}
	return e, nil
}

// NewFromShardEngine wraps a pre-assembled shard engine — typically a
// provider-backed one (shard.NewEngineFromProviders), whose shards are remote
// slice streams — as a warm batch engine, so the whole serving stack
// (SubmitBatch multiplexing, result cache, admission in front) runs unchanged
// over a distributed corpus.  Only the batch/cache options apply
// (BatchWorkers, ResultBuffer, CacheBytes); index-construction options must be
// zero.  The engine is IMMUTABLE: the corpus lives in the remote slices'
// serving processes, so Insert, Delete and Compact return ErrImmutable.
// Close closes base.
func NewFromShardEngine(base *shard.Engine, opts Options) (*Engine, error) {
	if base == nil {
		return nil, fmt.Errorf("engine: nil shard engine")
	}
	if opts.IndexDir != "" || opts.Shards != 0 || opts.PartitionByPrefix {
		return nil, fmt.Errorf("engine: NewFromShardEngine wraps an existing engine; index-construction options must be zero")
	}
	bw := opts.BatchWorkers
	if bw < 1 {
		bw = runtime.GOMAXPROCS(0)
	}
	rb := opts.ResultBuffer
	if rb < 1 {
		rb = 64
	}
	e := &Engine{
		batchWorkers: bw,
		resultBuffer: rb,
		immutable:    true,
	}
	if err := e.initMutable(base, nil, Options{}); err != nil {
		return nil, err
	}
	if opts.CacheBytes > 0 {
		e.cache = qcache.New(opts.CacheBytes)
	}
	return e, nil
}

// DB returns the database the engine's base index was built over, or nil for
// disk-backed engines (Options.IndexDir) — use Catalog for metadata that must
// work in both modes.  Inserted sequences live in delta layers, not here.
func (e *Engine) DB() *seq.Database { return e.cur().db }

// Catalog returns the global sequence catalog the engine serves: sequence
// identifiers, lengths, residues for alignment recovery.  It is valid in
// both in-memory and disk-backed modes and covers the base corpus plus every
// inserted sequence; deleted (tombstoned) sequences stay addressable so hits
// streamed before the delete can still recover alignments.
func (e *Engine) Catalog() core.Catalog { return e.cur().cat }

// Alphabet returns the residue alphabet of the served database.
func (e *Engine) Alphabet() *seq.Alphabet { return e.cur().cat.Alphabet() }

// NumSequences returns the number of sequences the engine physically holds
// (base corpus plus inserted sequences, including tombstoned ones); see
// Metrics().Mutable.LiveSequences for the searchable count.
func (e *Engine) NumSequences() int { return e.cur().cat.NumSequences() }

// TotalResidues returns the total residue count the engine physically holds.
func (e *Engine) TotalResidues() int64 { return e.cur().cat.TotalResidues() }

// NumShards returns the number of partitions actually built.
func (e *Engine) NumShards() int { return e.cur().base.NumShards() }

// Partition returns the engine's work-partitioning mode.
func (e *Engine) Partition() shard.PartitionMode { return e.cur().base.Partition() }

// ShardWorkers returns the per-query shard concurrency bound.
func (e *Engine) ShardWorkers() int { return e.cur().base.Workers() }

// BatchWorkers returns the batch concurrency bound.
func (e *Engine) BatchWorkers() int { return e.batchWorkers }

// ResultBuffer returns the capacity used for batch result channels.
func (e *Engine) ResultBuffer() int { return e.resultBuffer }

// Stats returns the engine-wide merged work counters and the number of
// queries served and hits reported since construction.
func (e *Engine) Stats() (st core.Stats, queries, hits int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats, e.queriesServed, e.hitsReported
}

// Metrics is a snapshot of the engine's resource counters for capacity
// planning: scratch free-list reuse and per-shard worker-pool queue depths.
type Metrics struct {
	// Scratch reports pooled searcher-scratch reuse.
	Scratch bufferpool.FreeListStats `json:"scratch"`
	// Shards holds each shard's queued and active search counts.
	Shards []shard.QueueDepth `json:"shards"`
	// Pools holds per-shard buffer-pool hit statistics for disk-backed
	// engines (nil for in-memory engines; shard -1 is the prefix-mode
	// frontier view).
	Pools []diskst.PoolStats `json:"pools,omitempty"`
	// Cache holds the cross-query result cache counters (nil when the
	// engine was built without Options.CacheBytes).
	Cache *qcache.Stats `json:"cache,omitempty"`
	// Faults holds the engine's fault-tolerance counters.
	Faults FaultMetrics `json:"faults"`
	// Mutable holds the incremental-indexing counters: current generation,
	// memtable occupancy, delta layers, tombstones and live totals.
	Mutable MutableStats `json:"mutable"`
}

// FaultMetrics counts failures survived (or surfaced) since process start.
type FaultMetrics struct {
	// DegradedQueries is how many queries completed with Stats.Degraded set
	// (partial results from surviving shards).
	DegradedQueries int64 `json:"degraded_queries"`
	// ShardsQuarantined is how many shards are currently quarantined: shards
	// dropped mid-query over the engine's lifetime plus shards quarantined at
	// open time.
	ShardsQuarantined int64 `json:"shards_quarantined"`
	// ChecksumFailures and ReadRetries are process-wide diskst fault
	// counters: blocks that failed CRC32C verification (after the one
	// re-read) and transient read errors retried with backoff.
	ChecksumFailures int64 `json:"checksum_failures"`
	ReadRetries      int64 `json:"read_retries"`
}

// Metrics returns a point-in-time snapshot of the engine's resource usage.
func (e *Engine) Metrics() Metrics {
	st := e.cur()
	m := Metrics{Scratch: st.base.ScratchStats(), Shards: st.base.QueueDepths()}
	if disk := st.base.Disk(); disk != nil {
		m.Pools = disk.PoolStats()
	}
	if e.cache != nil {
		cs := e.cache.Stats()
		m.Cache = &cs
	}
	fc := diskst.Counters()
	e.mu.Lock()
	m.Faults.DegradedQueries = e.degradedQueries
	e.mu.Unlock()
	m.Faults.ShardsQuarantined = st.base.Quarantines() + int64(len(st.base.Standing()))
	m.Faults.ChecksumFailures = fc.ChecksumFailures
	m.Faults.ReadRetries = fc.ReadRetries
	m.Mutable = MutableStats{
		Generation:        st.gen,
		Inserts:           e.inserts.Load(),
		Deletes:           e.deletes.Load(),
		Compactions:       e.compactions.Load(),
		MemtableSequences: st.memSeqs,
		MemtableResidues:  st.memRes,
		DeltaLayers:       st.deltaLayers,
		Tombstones:        st.tombstones,
		LiveSequences:     st.liveSeqs,
		LiveResidues:      st.liveRes,
	}
	return m
}

// Standing returns the shards quarantined when the engine opened (nil for a
// healthy engine).
func (e *Engine) Standing() []core.ShardError { return e.cur().base.Standing() }

// begin registers one unit of in-flight work, failing when the engine is
// closed.  The counter increment happens under the same lock that Close uses
// to flip closed, so a successful begin strictly precedes Close's Wait.
func (e *Engine) begin() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.active.Add(1)
	return true
}

// Close marks the engine closed; subsequent submissions and writes fail.  It
// does not interrupt in-flight queries (cancel their contexts for that) but
// waits for them to drain, then releases every resource any generation ever
// owned: the current base engine, retired bases from memory-mode compactions,
// and opened delta index files.
func (e *Engine) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.active.Wait()
	e.wmu.Lock()
	defer e.wmu.Unlock()
	first := e.wBase.Close()
	for _, c := range e.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.closers = nil
	return first
}

// ErrClosed is returned for submissions after Close.
var ErrClosed = fmt.Errorf("engine: closed")

// Search runs one query on the warm index, streaming hits to report in
// decreasing score order until report returns false, the context is
// cancelled, or the search completes.  It returns the query's merged work
// counters.
func (e *Engine) Search(ctx context.Context, q Query, report func(core.Hit) bool) (core.Stats, error) {
	if !e.begin() {
		return core.Stats{}, ErrClosed
	}
	defer e.active.Done()
	return e.searchOne(ctx, q, report)
}

// searchOne serves one query: through the cross-query cache when the engine
// has one (replay on hit, single-flighted DP sweep on miss), directly off
// the index otherwise.
func (e *Engine) searchOne(ctx context.Context, q Query, report func(core.Hit) bool) (core.Stats, error) {
	// Pin one generation for the life of the query: the snapshot's index
	// layers stay valid (resources are only released at Close) and the cache
	// key carries the generation, so a write published mid-query can neither
	// change this query's view nor let its result stream be replayed for
	// queries against the newer index state.
	st := e.state.Load()
	if e.cache == nil {
		return e.searchIndex(ctx, st, q, report)
	}
	key := qcache.NewKey(q.Residues, q.Options, st.gen)
	for {
		if entry, ok := e.cache.Get(key, q.Options.MaxResults); ok {
			return e.replay(ctx, q, entry, report)
		}
		leader, done := e.cache.Begin(key)
		if leader {
			break
		}
		// A concurrent identical query is already sweeping; wait for its
		// completion and re-check the cache.  A leader that completed
		// without inserting (cancelled, or its client stopped early) leaves
		// a miss, and the next Begin elects us leader.
		select {
		case <-done:
		case <-ctxDone(ctx):
			return core.Stats{}, ctx.Err()
		}
	}
	defer e.cache.End(key)
	stopped := false
	var hits []core.Hit
	// Stop buffering (and release what was buffered) the moment the stream
	// outgrows the largest entry the cache can hold: an uncacheable stream
	// must not cost a full in-memory copy on every execution.
	sizeLeft := e.cache.MaxEntryBytes()
	stats, err := e.searchIndex(ctx, st, q, func(h core.Hit) bool {
		if sizeLeft >= 0 {
			if sizeLeft -= qcache.HitSize(&h); sizeLeft < 0 {
				hits = nil
			} else {
				hits = append(hits, h)
			}
		}
		if !report(h) {
			stopped = true
			return false
		}
		return true
	})
	// Cache only streams that completed on their own terms: a search the
	// client stopped (or the context cancelled) is a prefix of unknown
	// coverage.  A stream cut by MaxResults is cached as incomplete — it
	// still answers any request for at most len(hits) results.  A degraded
	// stream is never cached: replaying it would keep serving partial
	// results after the fault has cleared.
	if err == nil && !stopped && sizeLeft >= 0 && !stats.Degraded {
		complete := q.Options.MaxResults == 0 || len(hits) < q.Options.MaxResults
		e.cache.Put(key, &qcache.Entry{Hits: hits, Complete: complete})
	}
	return stats, err
}

// replay streams a cached entry to report, honouring the query's MaxResults
// and context exactly as a live search would.  No index work happens; the
// per-query stats show only the replayed hit count.
func (e *Engine) replay(ctx context.Context, q Query, entry *qcache.Entry, report func(core.Hit) bool) (core.Stats, error) {
	var st core.Stats
	n := 0
	for i := range entry.Hits {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		if q.Options.MaxResults > 0 && n >= q.Options.MaxResults {
			break
		}
		if !report(entry.Hits[i]) {
			n++
			break
		}
		n++
	}
	st.SequencesReported = int64(n)
	var err error
	if ctx != nil {
		err = ctx.Err()
	}
	e.mu.Lock()
	e.stats.Add(st)
	e.queriesServed++
	e.hitsReported += int64(n)
	e.mu.Unlock()
	if q.Options.Stats != nil {
		q.Options.Stats.Add(st)
	}
	return st, err
}

// searchIndex runs the query on the pinned generation's sharded index (the
// cache-miss path; the only path when the engine has no cache).  The context
// is observed both at every hit callback and — via core's periodic poll —
// inside hit-less DP stretches.
func (e *Engine) searchIndex(ctx context.Context, s *genState, q Query, report func(core.Hit) bool) (core.Stats, error) {
	var st core.Stats
	opts := q.Options
	opts.Stats = &st
	opts.Scratch = nil // scratch is pooled inside the shard engine
	opts.Context = ctx
	var hits int64
	counted := func(h core.Hit) bool {
		if ctx != nil && ctx.Err() != nil {
			return false
		}
		hits++
		return report(h)
	}
	var err error
	if s.ext == nil {
		err = s.base.Search(q.Residues, opts, counted)
	} else {
		err = s.base.SearchExtra(q.Residues, opts, s.ext, counted)
	}
	if err == nil && ctx != nil {
		err = ctx.Err()
	}
	e.mu.Lock()
	e.stats.Add(st)
	e.queriesServed++
	e.hitsReported += hits
	if st.Degraded {
		e.degradedQueries++
	}
	e.mu.Unlock()
	if q.Options.Stats != nil {
		q.Options.Stats.Add(st)
	}
	return st, err
}

// SubmitBatch runs every query of the batch over the warm index, at most
// BatchWorkers concurrently, and multiplexes their hit streams onto the
// returned channel.  Each query's hits arrive in decreasing score order and
// end with one Done event; the channel closes when every query has finished.
// Cancelling the context stops all in-flight searches; the channel still
// closes (consumers should drain it).
func (e *Engine) SubmitBatch(ctx context.Context, queries []Query) <-chan Result {
	out := make(chan Result, e.resultBuffer)
	if !e.begin() {
		go func() {
			defer close(out)
			for i, q := range queries {
				select {
				case out <- Result{QueryID: q.ID, Index: i, Done: true, Err: ErrClosed}:
				case <-ctxDone(ctx):
					return
				}
			}
		}()
		return out
	}
	go func() {
		defer e.active.Done()
		defer close(out)
		// A fixed pool of batchWorkers range workers drains an index
		// channel.  (A previous version spawned one goroutine per query
		// BEFORE acquiring a semaphore slot, so a 100k-query batch burst
		// 100k goroutines before the first search even started; the pool
		// bounds in-flight goroutines at batchWorkers regardless of batch
		// size.)
		workers := e.batchWorkers
		if workers > len(queries) {
			workers = len(queries)
		}
		if workers < 1 {
			workers = 1
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					e.runQuery(ctx, i, queries[i], out)
				}
			}()
		}
		for i := range queries {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}()
	return out
}

// runQuery executes one query of a batch, forwarding hits and the final Done
// event to out.  Sends race the context so a cancelled consumer never blocks
// a worker.
func (e *Engine) runQuery(ctx context.Context, index int, q Query, out chan<- Result) {
	// After cancellation, skip searcher setup entirely: emit the
	// best-effort Done and let the batch drain fast (a cancelled 100k-query
	// batch must not pay 100k searcher spin-ups just to unwind).
	if ctx != nil && ctx.Err() != nil {
		done := Result{QueryID: q.ID, Index: index, Done: true, Err: ctx.Err()}
		select {
		case out <- done:
		default:
		}
		return
	}
	start := time.Now()
	st, err := e.searchOne(ctx, q, func(h core.Hit) bool {
		select {
		case out <- Result{QueryID: q.ID, Index: index, Hit: h}:
			return true
		case <-ctxDone(ctx):
			return false
		}
	})
	done := Result{QueryID: q.ID, Index: index, Done: true, Stats: st, Elapsed: time.Since(start), Err: err}
	select {
	case out <- done:
	case <-ctxDone(ctx):
		// Cancelled: the consumer may be gone, so only a non-blocking
		// delivery is safe (see the Result contract — post-cancellation
		// Done events are best-effort).  The channel still closes once
		// every worker returns.
		select {
		case out <- done:
		default:
		}
	}
}

// ctxDone tolerates a nil context (SubmitBatch with no cancellation).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}
