// Mutable layer: LSM-style incremental indexing over the immutable base
// index.
//
// Inserts land in an in-memory delta built with the online Ukkonen
// construction (internal/suffixtree.OnlineBuilder); every write publishes a
// new immutable generation snapshot (genState) that searches pin for their
// whole run.  The delta is searched as one more core.Index provider through
// shard.ExtraSet, merged into the same score-ordered stream as the base
// shards.  Deletes write per-sequence tombstones the merger filters (which
// also shrinks the all-sequences early-stop count).  Compaction folds the
// frozen memtable into an ordinary single-file disk index and swaps a
// generation-numbered manifest atomically (disk engines), or rebuilds the
// base in-memory engine over the live corpus (memory engines).
//
// Durability contract (disk engines): inserts and deletes are memory-only
// until Compact persists them — the engine is an LSM without a WAL.  A crash
// between a write and the next Compact loses the uncompacted writes but never
// the on-disk index: the manifest swap is write-temp + fsync + rename, so the
// directory always opens at its last durable generation.
package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/faultpoint"
	"repro/internal/seq"
	"repro/internal/shard"
	"repro/internal/suffixtree"
)

// genState is one immutable generation of the engine's index view.  A search
// loads the pointer once and uses only the snapshot from then on; writers
// build a fresh genState under wmu and publish it with one atomic store.
type genState struct {
	gen  uint64
	base *shard.Engine
	db   *seq.Database // base database (nil for disk engines)
	// ext carries the delta layers and tombstone filter for SearchExtra; nil
	// while the index is pristine, keeping the zero-cost plain-Search path.
	ext *shard.ExtraSet
	// cat is the global catalog over base + delta layers (the base catalog
	// itself when there are no layers).
	cat core.Catalog

	numSeqs     int
	totalRes    int64
	liveSeqs    int
	liveRes     int64
	memSeqs     int
	memRes      int64
	deltaLayers int
	tombstones  int
}

// MutableStats snapshots the incremental-indexing state for Metrics.
type MutableStats struct {
	// Generation is the current index generation; every successful Insert,
	// Delete and state-changing Compact bumps it, which retargets the result
	// cache (entries are keyed by generation, so stale streams simply stop
	// being reachable).
	Generation uint64 `json:"generation"`
	// Inserts / Deletes / Compactions count successful mutations since the
	// engine was built.
	Inserts     int64 `json:"inserts"`
	Deletes     int64 `json:"deletes"`
	Compactions int64 `json:"compactions"`
	// MemtableSequences / MemtableResidues describe the uncompacted
	// in-memory delta.
	MemtableSequences int   `json:"memtable_sequences"`
	MemtableResidues  int64 `json:"memtable_residues"`
	// DeltaLayers counts searchable delta layers (compacted disk deltas plus
	// the memtable snapshot, when non-empty).
	DeltaLayers int `json:"delta_layers"`
	// Tombstones counts deleted sequences still physically present.
	Tombstones int `json:"tombstones"`
	// LiveSequences / LiveResidues describe the searchable corpus after
	// tombstone filtering.
	LiveSequences int   `json:"live_sequences"`
	LiveResidues  int64 `json:"live_residues"`
}

// Generation returns the engine's current index generation.
func (e *Engine) Generation() uint64 { return e.cur().gen }

// ErrImmutable is returned by Insert, Delete and Compact on engines whose
// base index is not writable from this process (NewFromShardEngine: the
// corpus lives in the remote slices' serving processes — write to those).
var ErrImmutable = fmt.Errorf("engine: index is immutable here; write to the shard servers that own the corpus")

// initMutable wires the mutable layer under a freshly built base engine and
// publishes the initial generation.  For disk engines it reopens any delta
// layers and tombstones recorded in the directory's manifest (generation
// continues from the manifest's).  On error the layers it opened are closed;
// the caller closes the base.
func (e *Engine) initMutable(base *shard.Engine, db *seq.Database, opts Options) error {
	e.wBase = base
	e.wDB = db
	e.indexDir = opts.IndexDir
	e.poolBytes = opts.PoolBytes
	e.warmupPages = opts.WarmupPages
	if opts.IndexDir == "" {
		mode := shard.PartitionBySequence
		if opts.PartitionByPrefix {
			mode = shard.PartitionByPrefix
		}
		e.memOpts = shard.Options{Shards: opts.Shards, Workers: opts.ShardWorkers, Partition: mode}
		return e.publishLocked()
	}
	m := base.Disk().Manifest
	e.manifest = m
	e.wGen = m.Generation
	fail := func(err error) error {
		for _, c := range e.closers {
			c.Close()
		}
		e.closers = nil
		return err
	}
	for _, d := range m.Deltas {
		idx, err := m.OpenFile(opts.IndexDir, d.File, opts.PoolBytes, opts.WarmupPages)
		if err != nil {
			return fail(fmt.Errorf("engine: opening delta layer %s: %w", d.File, err))
		}
		e.closers = append(e.closers, idx)
		e.layers = append(e.layers, shard.ExtraShard{
			Index:   idx,
			Globals: append([]int(nil), d.GlobalIndex...),
		})
		e.layerSeqs += len(d.GlobalIndex)
		e.layerRes += d.Residues
	}
	if len(m.Tombstones) > 0 {
		e.tombs = make(map[int]bool, len(m.Tombstones))
		for _, t := range m.Tombstones {
			e.tombs[t] = true
		}
	}
	if err := e.publishLocked(); err != nil {
		return fail(err)
	}
	return nil
}

// baseCountsLocked returns the base corpus's sequence/residue totals.  Disk
// engines use the manifest's base-only totals (a degraded engine's union
// catalog can cover less, but the global numbering — and therefore delta
// global indexes — is defined by the manifest).
func (e *Engine) baseCountsLocked() (int, int64) {
	if e.manifest != nil {
		return e.manifest.NumSequences, e.manifest.TotalResidues
	}
	cat := e.wBase.Catalog()
	return cat.NumSequences(), cat.TotalResidues()
}

// publishLocked builds and publishes the genState for the writer's current
// fields.  Caller holds wmu (or is in single-threaded construction).
func (e *Engine) publishLocked() error {
	baseSeqs, baseRes := e.baseCountsLocked()
	extras := append([]shard.ExtraShard(nil), e.layers...)
	var memSeqs int
	var memRes int64
	if e.mem != nil && e.mem.NumSequences() > 0 {
		tree, mdb, err := e.mem.Snapshot()
		if err != nil {
			return err
		}
		idx, err := core.NewMemoryIndex(tree, mdb)
		if err != nil {
			return err
		}
		memSeqs, memRes = e.mem.NumSequences(), e.mem.TotalResidues()
		globals := make([]int, memSeqs)
		for i := range globals {
			globals[i] = baseSeqs + e.layerSeqs + i
		}
		extras = append(extras, shard.ExtraShard{Index: idx, Globals: globals})
	}
	st := &genState{
		gen:         e.wGen,
		base:        e.wBase,
		db:          e.wDB,
		numSeqs:     baseSeqs + e.layerSeqs + memSeqs,
		totalRes:    baseRes + e.layerRes + memRes,
		memSeqs:     memSeqs,
		memRes:      memRes,
		deltaLayers: len(extras),
		tombstones:  len(e.tombs),
	}
	st.cat = e.wBase.Catalog()
	if len(extras) > 0 {
		st.cat = shard.NewLayeredCatalog(e.wBase.Catalog(), baseSeqs, baseRes, extras)
	}
	st.liveSeqs = st.numSeqs - len(e.tombs)
	st.liveRes = st.totalRes
	for g := range e.tombs {
		st.liveRes -= int64(st.cat.SequenceLength(g))
	}
	if len(extras) > 0 || len(e.tombs) > 0 {
		ext := &shard.ExtraSet{
			Shards:        extras,
			LiveSeqs:      st.liveSeqs,
			TotalResidues: st.liveRes,
			NumSeqs:       st.numSeqs,
		}
		if len(e.tombs) > 0 {
			tombs := e.tombs // published maps are never mutated (copy-on-write)
			ext.Drop = func(i int) bool { return tombs[i] }
		}
		st.ext = ext
	}
	e.state.Store(st)
	return nil
}

// ensureIDIndexLocked lazily builds the live SeqID -> global index map writes
// use for duplicate detection and delete targeting.  Caller holds wmu.
func (e *Engine) ensureIDIndexLocked() {
	if e.idIndex != nil {
		return
	}
	st := e.cur() // under wmu this is always the latest published state
	idx := make(map[string]int, st.liveSeqs)
	for g := 0; g < st.numSeqs; g++ {
		if e.tombs[g] {
			continue
		}
		id := st.cat.SequenceID(g)
		if id == "" { // hole left by a quarantined shard
			continue
		}
		idx[id] = g
	}
	e.idIndex = idx
}

// Insert adds one sequence to the index.  The sequence becomes searchable
// before Insert returns: it is appended to the in-memory delta (online
// Ukkonen construction, O(len) amortised), a fresh snapshot is published, and
// the generation bump retargets the result cache so subsequent identical
// queries re-run against the new corpus.  The residues are copied; IDs must
// be unique among live sequences (re-inserting a deleted ID is allowed and
// assigns a fresh global index).  Disk engines hold inserts in memory until
// Compact persists them.
func (e *Engine) Insert(id string, residues []byte) (uint64, error) {
	if !e.begin() {
		return 0, ErrClosed
	}
	defer e.active.Done()
	if e.immutable {
		return 0, ErrImmutable
	}
	if id == "" {
		return 0, fmt.Errorf("engine: insert needs a sequence ID")
	}
	if len(residues) == 0 {
		return 0, fmt.Errorf("engine: insert of %q has no residues", id)
	}
	e.wmu.Lock()
	defer e.wmu.Unlock()
	e.ensureIDIndexLocked()
	if _, ok := e.idIndex[id]; ok {
		return 0, fmt.Errorf("engine: sequence %q already exists", id)
	}
	if e.mem == nil {
		mem, err := suffixtree.NewOnlineBuilder(e.cur().cat.Alphabet())
		if err != nil {
			return 0, err
		}
		e.mem = mem
	}
	res := append([]byte(nil), residues...)
	if err := e.mem.Append(seq.Sequence{ID: id, Residues: res}); err != nil {
		return 0, err
	}
	baseSeqs, _ := e.baseCountsLocked()
	e.idIndex[id] = baseSeqs + e.layerSeqs + e.mem.NumSequences() - 1
	e.wGen++
	if err := e.publishLocked(); err != nil {
		return 0, err
	}
	e.inserts.Add(1)
	return e.wGen, nil
}

// Delete removes the live sequence with the given ID from search results by
// writing a tombstone: the sequence stays physically present (and remains
// addressable through Catalog for alignment recovery of older streams) but
// every subsequent search filters it during the merge, and the all-sequences
// early stop shrinks accordingly.  The generation bump retargets the result
// cache.  Disk engines persist tombstones at the next Compact.
func (e *Engine) Delete(id string) (uint64, error) {
	if !e.begin() {
		return 0, ErrClosed
	}
	defer e.active.Done()
	if e.immutable {
		return 0, ErrImmutable
	}
	e.wmu.Lock()
	defer e.wmu.Unlock()
	e.ensureIDIndexLocked()
	g, ok := e.idIndex[id]
	if !ok {
		return 0, fmt.Errorf("engine: sequence %q is unknown or already deleted", id)
	}
	// Copy-on-write: the published Drop closure captures the old map, which
	// in-flight searches may still be reading.
	tombs := make(map[int]bool, len(e.tombs)+1)
	for k := range e.tombs {
		tombs[k] = true
	}
	tombs[g] = true
	e.tombs = tombs
	delete(e.idIndex, id)
	e.wGen++
	if err := e.publishLocked(); err != nil {
		return 0, err
	}
	e.deletes.Add(1)
	return e.wGen, nil
}

// Compact folds the mutable state down a level and returns the resulting
// generation (unchanged when there was nothing to do).
//
// Disk engines write the frozen memtable as an ordinary single-file delta
// index next to the base shards — build to a temporary name, fsync, rename —
// then swap in a manifest with a bumped generation (also atomically), reopen
// the delta through its own buffer pool and reset the memtable.  A crash (or
// injected fault at faultpoint.SiteCompactSwap) at any point leaves the
// previous manifest and files intact.
//
// Memory engines rebuild the base engine over the live corpus (dropping
// tombstoned sequences and folding in the delta, renumbering globals) and
// reset the mutable state entirely.
func (e *Engine) Compact() (uint64, error) {
	if !e.begin() {
		return 0, ErrClosed
	}
	defer e.active.Done()
	if e.immutable {
		return 0, ErrImmutable
	}
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if e.indexDir != "" {
		return e.compactDiskLocked()
	}
	return e.compactMemoryLocked()
}

func (e *Engine) compactDiskLocked() (uint64, error) {
	memN := 0
	if e.mem != nil {
		memN = e.mem.NumSequences()
	}
	if memN == 0 && len(e.tombs) == len(e.manifest.Tombstones) {
		return e.wGen, nil // nothing new to fold or persist
	}
	gen := e.wGen + 1
	m := *e.manifest
	m.Generation = gen
	m.Deltas = append([]diskst.DeltaRecord(nil), e.manifest.Deltas...)
	m.Tombstones = make([]int, 0, len(e.tombs))
	for g := range e.tombs {
		m.Tombstones = append(m.Tombstones, g)
	}
	sort.Ints(m.Tombstones)

	var newLayer *shard.ExtraShard
	var memRes int64
	if memN > 0 {
		name := fmt.Sprintf("delta-%06d.oasis", gen)
		mdb, err := seq.NewDatabase(e.cur().cat.Alphabet(), append([]seq.Sequence(nil), e.mem.Sequences()...))
		if err != nil {
			return e.wGen, err
		}
		memRes = mdb.TotalResidues()
		tmp := filepath.Join(e.indexDir, name+".tmp")
		if _, err := diskst.Build(tmp, mdb, diskst.BuildOptions{
			WriteOptions: diskst.WriteOptions{BlockSize: m.BlockSize},
		}); err != nil {
			os.Remove(tmp)
			return e.wGen, fmt.Errorf("engine: building delta %s: %w", name, err)
		}
		// The swap site models a crash after the delta is written but before
		// it becomes reachable: the old manifest stays authoritative.
		if err := faultpoint.Hit(faultpoint.SiteCompactSwap, name); err != nil {
			os.Remove(tmp)
			return e.wGen, fmt.Errorf("engine: compaction swap: %w", err)
		}
		if err := os.Rename(tmp, filepath.Join(e.indexDir, name)); err != nil {
			os.Remove(tmp)
			return e.wGen, err
		}
		baseSeqs, _ := e.baseCountsLocked()
		globals := make([]int, memN)
		for i := range globals {
			globals[i] = baseSeqs + e.layerSeqs + i
		}
		m.Deltas = append(m.Deltas, diskst.DeltaRecord{File: name, GlobalIndex: globals, Residues: memRes})
		idx, err := e.manifest.OpenFile(e.indexDir, name, e.poolBytes, e.warmupPages)
		if err != nil {
			// Manifest not yet written: the directory is still consistent at
			// the old generation; the new file is an unreachable orphan.
			return e.wGen, fmt.Errorf("engine: reopening delta %s: %w", name, err)
		}
		newLayer = &shard.ExtraShard{Index: idx, Globals: globals}
	}
	if err := diskst.WriteManifest(e.indexDir, &m); err != nil {
		if newLayer != nil {
			newLayer.Index.(*diskst.Index).Close()
		}
		return e.wGen, err
	}
	// The new manifest is durable; swap the in-memory view to match.
	e.manifest = &m
	if newLayer != nil {
		e.layers = append(e.layers, *newLayer)
		e.layerSeqs += memN
		e.layerRes += memRes
		e.closers = append(e.closers, newLayer.Index.(*diskst.Index))
		e.mem = nil
	}
	e.wGen = gen
	if err := e.publishLocked(); err != nil {
		return e.wGen, err
	}
	e.compactions.Add(1)
	return e.wGen, nil
}

func (e *Engine) compactMemoryLocked() (uint64, error) {
	memN := 0
	if e.mem != nil {
		memN = e.mem.NumSequences()
	}
	if memN == 0 && len(e.tombs) == 0 {
		return e.wGen, nil // pristine: nothing to fold
	}
	baseSeqs, _ := e.baseCountsLocked()
	var live []seq.Sequence
	for g, s := range e.wDB.Sequences() {
		if !e.tombs[g] {
			live = append(live, s)
		}
	}
	if e.mem != nil {
		for i, s := range e.mem.Sequences() {
			if !e.tombs[baseSeqs+i] {
				live = append(live, s)
			}
		}
	}
	if len(live) == 0 {
		return e.wGen, fmt.Errorf("engine: refusing to compact away the last live sequence; the corpus would be empty")
	}
	newDB, err := seq.NewDatabase(e.cur().cat.Alphabet(), live)
	if err != nil {
		return e.wGen, err
	}
	newBase, err := shard.NewEngine(newDB, e.memOpts)
	if err != nil {
		return e.wGen, err
	}
	// Retire the old base: in-flight searches pinned it, so it is closed
	// only when the engine closes.
	e.closers = append(e.closers, e.wBase)
	e.wBase = newBase
	e.wDB = newDB
	e.mem = nil
	e.tombs = nil
	e.idIndex = nil // renumbered: rebuild lazily
	e.wGen++
	if err := e.publishLocked(); err != nil {
		return e.wGen, err
	}
	e.compactions.Add(1)
	return e.wGen, nil
}
