package engine

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/seq"
)

// TestSubmitBatchBoundedGoroutines pins the goroutine-burst fix: SubmitBatch
// used to spawn one goroutine per query BEFORE acquiring a worker slot, so a
// large batch burst len(queries) goroutines at once.  The worker-pool
// implementation must keep in-flight goroutine growth near BatchWorkers no
// matter the batch size.
func TestSubmitBatchBoundedGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	db := randomEngineDB(t, rng, seq.Protein, 4, 30)
	eng, err := New(db, Options{Shards: 1, BatchWorkers: 4, ResultBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := Query{Residues: seq.Protein.MustEncode("ACDEFGHIK"), Options: core.Options{Scheme: scheme, MinScore: 1}}
	queries := make([]Query, 5000)
	for i := range queries {
		queries[i] = q
	}

	before := runtime.NumGoroutine()
	results := eng.SubmitBatch(context.Background(), queries)
	// Nobody drains yet and ResultBuffer is 1, so the batch is pinned
	// in-flight while we sample; give any (buggy) per-query spawning ample
	// time to happen.
	time.Sleep(100 * time.Millisecond)
	during := runtime.NumGoroutine()
	for range results {
	}
	if grown := during - before; grown > 50 {
		t.Fatalf("SubmitBatch grew goroutines by %d during a %d-query batch, want <= 50 (BatchWorkers=4)",
			grown, len(queries))
	}
}

// TestShardedTopKDeterministic pins the merger's strict release rule: with a
// >= release the interleaving of equal-score ties — and, under MaxResults
// truncation, WHICH tie made the cut — depended on shard goroutine timing,
// so the same top-k query could return different sequences run to run (and
// the result cache would then freeze one arbitrary outcome).  The (sequence,
// score) multiset must now be identical across repeats, in both partition
// modes.
func TestShardedTopKDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1309))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	for _, prefix := range []bool{false, true} {
		for trial := 0; trial < 3; trial++ {
			db := randomEngineDB(t, rng, seq.Protein, 12+rng.Intn(12), 70)
			queries := cacheTestQueries(t, rng, scheme, 6)
			eng, err := New(db, Options{Shards: 3, PartitionByPrefix: prefix})
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				base := hitMultiset(t, eng, q)
				for rep := 0; rep < 8; rep++ {
					got := hitMultiset(t, eng, q)
					if len(got) != len(base) {
						t.Fatalf("prefix=%v trial %d query %d rep %d: %d distinct hits, want %d",
							prefix, trial, qi, rep, len(got), len(base))
					}
					for k, n := range base {
						if got[k] != n {
							t.Fatalf("prefix=%v trial %d query %d rep %d: hit multiset changed at seq=%d score=%d (%d vs %d)",
								prefix, trial, qi, rep, k[0], k[1], got[k], n)
						}
					}
				}
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func hitMultiset(t *testing.T, eng *Engine, q Query) map[[2]int]int {
	t.Helper()
	m := map[[2]int]int{}
	if _, err := eng.Search(context.Background(), q, func(h core.Hit) bool {
		m[[2]int{h.SeqIndex, h.Score}]++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSearchObservesCancelWithoutHits pins the hit-less cancellation fix at
// the engine level: a pre-cancelled context must abort the search from
// inside the DP sweep (core's periodic poll) rather than running the whole
// query and only noticing at the end.
func TestSearchObservesCancelWithoutHits(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	db := randomEngineDB(t, rng, seq.Protein, 60, 200)
	for _, prefix := range []bool{false, true} {
		eng, err := New(db, Options{Shards: 2, PartitionByPrefix: prefix})
		if err != nil {
			t.Fatal(err)
		}
		q := Query{
			Residues: seq.Protein.MustEncode("DKDGDGTITTKELGTVMRSL"),
			Options:  core.Options{Scheme: scheme, MinScore: 5, CancelPollColumns: 8},
		}
		var baseline core.Stats
		if _, err := eng.Search(context.Background(), q, func(core.Hit) bool { return true }); err != nil {
			t.Fatal(err)
		}
		baseline, _, _ = eng.Stats()
		if baseline.CellsComputed == 0 {
			t.Fatal("baseline search did no work; workload broken")
		}

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		hits := 0
		_, err = eng.Search(ctx, q, func(core.Hit) bool { hits++; return true })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("prefix=%v: cancelled search returned %v, want context.Canceled", prefix, err)
		}
		if hits != 0 {
			t.Fatalf("prefix=%v: cancelled search still delivered %d hits", prefix, hits)
		}
		after, _, _ := eng.Stats()
		if cancelledCells := after.CellsComputed - baseline.CellsComputed; cancelledCells*10 > baseline.CellsComputed {
			t.Fatalf("prefix=%v: cancelled search computed %d cells, over 10%% of the %d-cell baseline",
				prefix, cancelledCells, baseline.CellsComputed)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
