package engine

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fuzzutil"
	"repro/internal/score"
	"repro/internal/seq"
)

// FuzzIncrementalEquivalence asserts the mutable layer's rebuild equivalence
// on arbitrary inputs: a base database, a stream of inserted sequences and a
// script byte string driving deletes and compactions must leave the engine
// reporting exactly the hits of an engine built from scratch over the
// surviving sequences.  The script byte for step i selects the operation
// after insert i: bit 0 deletes a pseudo-random live sequence, bit 1
// compacts.
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add([]byte("ACGTACGTTTACGGACGT\x00GGGTTTACGT\x00ACACACAC"), []byte("TTGGAACC\x00ACGTACGT"), []byte("ACGTAC"), []byte{1, 2}, uint8(2))
	f.Add([]byte("TTTTTTTTTT\x00TTTTT"), []byte("TTTT\x00GGGG\x00CCCC"), []byte("TTTT"), []byte{3, 0, 1}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0, 11, 12, 13, 14}, []byte{5, 6, 7, 0, 9, 9, 9}, []byte{5, 6, 7}, []byte{2, 1}, uint8(1))
	scheme := score.MustScheme(score.UnitDNA(), -1)
	f.Fuzz(func(t *testing.T, baseData, insertData, queryData, script []byte, shardByte uint8) {
		base := fuzzutil.DatabaseFromBytes(seq.DNA, baseData)
		insertDB := fuzzutil.DatabaseFromBytes(seq.DNA, insertData)
		query := fuzzutil.QueryFromBytes(seq.DNA, queryData, 32)
		if base == nil || insertDB == nil || query == nil {
			t.Skip()
		}
		eng, err := New(base, Options{Shards: 1 + int(shardByte%4), PartitionByPrefix: shardByte%2 == 1})
		if err != nil {
			t.Fatalf("engine build: %v", err)
		}
		defer eng.Close()

		// Apply the script: insert every sequence (IDs disambiguated from the
		// base's seqN names), with script-driven deletes and compactions.
		order := append([]seq.Sequence(nil), base.Sequences()...)
		dead := map[string]bool{}
		liveIDs := func() []string {
			var ids []string
			for _, s := range order {
				if !dead[s.ID] {
					ids = append(ids, s.ID)
				}
			}
			return ids
		}
		for i, s := range insertDB.Sequences() {
			id := fmt.Sprintf("ins-%d-%s", i, s.ID)
			if _, err := eng.Insert(id, s.Residues); err != nil {
				t.Fatalf("insert %s: %v", id, err)
			}
			order = append(order, seq.Sequence{ID: id, Residues: s.Residues})
			var op byte
			if i < len(script) {
				op = script[i]
			}
			if op&1 != 0 {
				if ids := liveIDs(); len(ids) > 1 {
					victim := ids[int(op/2)%len(ids)]
					if _, err := eng.Delete(victim); err != nil {
						t.Fatalf("delete %s: %v", victim, err)
					}
					dead[victim] = true
				}
			}
			if op&2 != 0 {
				if _, err := eng.Compact(); err != nil {
					t.Fatalf("compact: %v", err)
				}
			}
		}

		var live []seq.Sequence
		for _, s := range order {
			if !dead[s.ID] {
				live = append(live, s)
			}
		}
		refDB, err := seq.NewDatabase(seq.DNA, live)
		if err != nil {
			t.Fatalf("reference database: %v", err)
		}
		refIdx, err := core.BuildMemoryIndex(refDB)
		if err != nil {
			t.Fatalf("reference index: %v", err)
		}
		opts := core.Options{Scheme: scheme, MinScore: 2}
		want, err := core.SearchAll(refIdx, query, opts)
		if err != nil {
			t.Fatalf("reference search: %v", err)
		}
		got := collectStream(t, eng, Query{Residues: query, Options: opts})
		requireSameIDScores(t, "fuzz", got, want)
	})
}
