package engine

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/faultpoint"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/shard"
)

// hitIDScores projects a hit stream to a (SeqID, Score) multiset.  Incremental
// engines and from-scratch rebuilds number sequences differently (tombstoned
// slots keep their global index until compaction), so SeqIndex-keyed
// comparison helpers from cache_test do not apply across them.
func hitIDScores(hits []core.Hit) map[string]int {
	out := map[string]int{}
	for _, h := range hits {
		out[fmt.Sprintf("%s/%d", h.SeqID, h.Score)]++
	}
	return out
}

func requireSameIDScores(t *testing.T, label string, got, want []core.Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d\n got %v\nwant %v", label, len(got), len(want), hitIDScores(got), hitIDScores(want))
	}
	g, w := hitIDScores(got), hitIDScores(want)
	for k, n := range w {
		if g[k] != n {
			t.Fatalf("%s: hit %s count %d, want %d", label, k, g[k], n)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("%s: score order violated at %d", label, i)
		}
	}
}

// mutation is one step of a randomized write script.
type mutation struct {
	op string // "insert", "delete", "compact"
	id string
	// residues for inserts.
	residues []byte
}

// randomScript builds a write script over a base database: every extra
// sequence is inserted, interleaved with deletes of random live sequences
// (base or freshly inserted) and occasional compactions.  At least one
// sequence always stays live.
func randomScript(rng *rand.Rand, base *seq.Database, extras []seq.Sequence) []mutation {
	live := map[string][]byte{}
	for _, s := range base.Sequences() {
		live[s.ID] = s.Residues
	}
	var script []mutation
	for _, s := range extras {
		script = append(script, mutation{op: "insert", id: s.ID, residues: s.Residues})
		live[s.ID] = s.Residues
		if rng.Intn(3) == 0 && len(live) > 1 {
			ids := make([]string, 0, len(live))
			for id := range live {
				ids = append(ids, id)
			}
			victim := ids[rng.Intn(len(ids))]
			script = append(script, mutation{op: "delete", id: victim})
			delete(live, victim)
		}
		if rng.Intn(4) == 0 {
			script = append(script, mutation{op: "compact"})
		}
	}
	return script
}

// applyScript drives the script through the engine and returns the live
// sequences in global-numbering order (base order, then insertion order,
// minus deletions) for the reference rebuild.
func applyScript(t *testing.T, eng *Engine, base *seq.Database, script []mutation) []seq.Sequence {
	t.Helper()
	order := append([]seq.Sequence(nil), base.Sequences()...)
	dead := map[string]bool{}
	for _, m := range script {
		switch m.op {
		case "insert":
			if _, err := eng.Insert(m.id, m.residues); err != nil {
				t.Fatalf("insert %s: %v", m.id, err)
			}
			order = append(order, seq.Sequence{ID: m.id, Residues: m.residues})
		case "delete":
			if _, err := eng.Delete(m.id); err != nil {
				t.Fatalf("delete %s: %v", m.id, err)
			}
			dead[m.id] = true
		case "compact":
			if _, err := eng.Compact(); err != nil {
				t.Fatalf("compact: %v", err)
			}
		}
	}
	var liveSeqs []seq.Sequence
	for _, s := range order {
		if !dead[s.ID] {
			liveSeqs = append(liveSeqs, s)
		}
	}
	return liveSeqs
}

func extraSequences(rng *rand.Rand, a *seq.Alphabet, n, maxLen int) []seq.Sequence {
	letters := a.Letters()
	out := make([]seq.Sequence, n)
	for i := range out {
		b := make([]byte, 1+rng.Intn(maxLen))
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		out[i] = seq.Sequence{ID: fmt.Sprintf("new%d", i), Residues: a.MustEncode(string(b))}
	}
	return out
}

// TestIncrementalEquivalence is the headline correctness property of the
// mutable layer: after a random script of inserts, deletes and compactions,
// an incremental engine must report exactly the hit streams of an engine
// rebuilt from scratch over the surviving sequences — across both partition
// modes and both in-memory and disk-backed (IndexDir) bases.
func TestIncrementalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	configs := []struct {
		name   string
		shards int
		prefix bool
		disk   bool
	}{
		{"memory/seq/1", 1, false, false},
		{"memory/seq/3", 3, false, false},
		{"memory/prefix/3", 3, true, false},
		{"disk/seq/2", 2, false, true},
		{"disk/prefix/2", 2, true, true},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				db := randomEngineDB(t, rng, seq.Protein, 8+rng.Intn(10), 60)
				extras := extraSequences(rng, seq.Protein, 4+rng.Intn(5), 60)
				script := randomScript(rng, db, extras)

				opts := Options{}
				var dbArg *seq.Database = db
				if cfg.disk {
					dir := filepath.Join(t.TempDir(), "idx")
					if _, _, err := diskst.BuildSharded(dir, db, diskst.ShardedBuildOptions{
						Shards:            cfg.shards,
						PartitionByPrefix: cfg.prefix,
					}); err != nil {
						t.Fatal(err)
					}
					opts.IndexDir = dir
					dbArg = nil
				} else {
					opts.Shards = cfg.shards
					opts.PartitionByPrefix = cfg.prefix
				}
				eng, err := New(dbArg, opts)
				if err != nil {
					t.Fatal(err)
				}
				liveSeqs := applyScript(t, eng, db, script)

				refDB, err := seq.NewDatabase(seq.Protein, liveSeqs)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := New(refDB, Options{Shards: 1})
				if err != nil {
					t.Fatal(err)
				}
				for qi, q := range randomQueries(rng, seq.Protein, 6, scheme) {
					label := fmt.Sprintf("%s trial %d query %d", cfg.name, trial, qi)
					requireSameIDScores(t, label, collectStream(t, eng, q), collectStream(t, ref, q))
				}
				if err := eng.Close(); err != nil {
					t.Fatal(err)
				}
				if err := ref.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestIncrementalDiskReopen verifies compaction durability: deltas and
// tombstones written by one engine are served by a fresh engine opening the
// same directory, and the directory passes a full scrub.
func TestIncrementalDiskReopen(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	db := randomEngineDB(t, rng, seq.Protein, 10, 60)
	dir := filepath.Join(t.TempDir(), "idx")
	if _, _, err := diskst.BuildSharded(dir, db, diskst.ShardedBuildOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	eng, err := New(nil, Options{IndexDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	extras := extraSequences(rng, seq.Protein, 5, 60)
	script := randomScript(rng, db, extras)
	script = append(script, mutation{op: "compact"})
	liveSeqs := applyScript(t, eng, db, script)
	genBefore := eng.Generation()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := diskst.VerifyIndexDir(dir); err != nil {
		t.Fatalf("scrub after compaction: %v", err)
	}
	reopened, err := New(nil, Options{IndexDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.Generation(); got != genBefore {
		t.Fatalf("reopened generation %d, want %d", got, genBefore)
	}
	refDB, err := seq.NewDatabase(seq.Protein, liveSeqs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(refDB, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for qi, q := range randomQueries(rng, seq.Protein, 6, scheme) {
		label := fmt.Sprintf("reopen query %d", qi)
		requireSameIDScores(t, label, collectStream(t, reopened, q), collectStream(t, ref, q))
	}
}

// TestDiskReopenShardEngineServesDeltas pins the read-only reopen path: a
// directory that accumulated compacted delta layers and tombstones must serve
// the live corpus through plain shard.OpenDiskEngine (the oasis-search
// -index-dir / oasis.NewShardedIndex route, which never constructs the warm
// engine's mutable layer), while DiskOptions.BaseOnly — the warm engine's
// mode — must keep serving only the base generation.
func TestDiskReopenShardEngineServesDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	db := randomEngineDB(t, rng, seq.Protein, 10, 60)
	dir := filepath.Join(t.TempDir(), "idx")
	if _, _, err := diskst.BuildSharded(dir, db, diskst.ShardedBuildOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	eng, err := New(nil, Options{IndexDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	extras := extraSequences(rng, seq.Protein, 5, 60)
	script := randomScript(rng, db, extras)
	script = append(script, mutation{op: "compact"})
	liveSeqs := applyScript(t, eng, db, script)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := shard.OpenDiskEngine(dir, shard.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.Catalog().NumSequences(); got != len(db.Sequences())+len(extras) {
		t.Fatalf("reopened catalog covers %d sequences, want base %d + deltas %d",
			got, len(db.Sequences()), len(extras))
	}
	baseOnly, err := shard.OpenDiskEngine(dir, shard.DiskOptions{BaseOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer baseOnly.Close()
	if got := baseOnly.Catalog().NumSequences(); got != len(db.Sequences()) {
		t.Fatalf("BaseOnly catalog covers %d sequences, want base %d", got, len(db.Sequences()))
	}

	refDB, err := seq.NewDatabase(seq.Protein, liveSeqs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(refDB, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for qi, q := range randomQueries(rng, seq.Protein, 6, scheme) {
		want := collectStream(t, ref, q)
		got, err := reopened.SearchAll(q.Residues, q.Options)
		if err != nil {
			t.Fatalf("query %d over reopened shard engine: %v", qi, err)
		}
		requireSameIDScores(t, fmt.Sprintf("shard reopen query %d", qi), got, want)
	}
}

// TestInsertInvalidatesCache asserts the generation-keyed cache contract: a
// cached stream must not be replayed across a write that changes the result.
func TestInsertInvalidatesCache(t *testing.T) {
	db, err := seq.DatabaseFromStrings(seq.Protein,
		"ACDEFGHIKLMNPQRSTVWY", "MKVLITTTAGGGS", "PPPPGGGGSSSS")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(db, Options{Shards: 2, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	q := Query{
		ID:       "q",
		Residues: seq.Protein.MustEncode("WWWWHHHHWWWW"),
		Options:  core.Options{Scheme: scheme, MinScore: 40},
	}
	if hits := collectStream(t, eng, q); len(hits) != 0 {
		t.Fatalf("unexpected pre-insert hits: %v", hits)
	}
	// Repeat so the (residues, options, generation) entry is cached and hit.
	collectStream(t, eng, q)
	m := eng.Metrics()
	if m.Cache == nil || m.Cache.Hits == 0 {
		t.Fatalf("repeat query did not hit the cache: %+v", m.Cache)
	}

	if _, err := eng.Insert("match", seq.Protein.MustEncode("AAWWWWHHHHWWWWAA")); err != nil {
		t.Fatal(err)
	}
	hits := collectStream(t, eng, q)
	if len(hits) == 0 || hits[0].SeqID != "match" {
		t.Fatalf("post-insert stream %v does not surface the new sequence: the old generation's cache entry leaked", hits)
	}

	// And the new generation's stream is itself cacheable: a repeat must hit.
	before := eng.Metrics().Cache.Hits
	requireIdenticalStream(t, "post-insert replay", collectStream(t, eng, q), hits)
	if eng.Metrics().Cache.Hits == before {
		t.Fatal("post-insert repeat did not hit the cache")
	}
}

// TestCompactionCrashSafety kills a disk compaction between the delta
// temp-write and the manifest swap (the SiteCompactSwap failpoint) and
// asserts the crash contract: the failed compaction leaves the engine
// serving the memtable at the old generation, a retry succeeds, and a
// directory that "crashed" mid-compaction reopens cleanly at the old
// generation.
func TestCompactionCrashSafety(t *testing.T) {
	defer faultpoint.Reset()
	rng := rand.New(rand.NewSource(47))
	db := randomEngineDB(t, rng, seq.Protein, 8, 50)
	dir := filepath.Join(t.TempDir(), "idx")
	if _, _, err := diskst.BuildSharded(dir, db, diskst.ShardedBuildOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	eng, err := New(nil, Options{IndexDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	inserted := seq.Protein.MustEncode("AAWWWWHHHHWWWWAA")
	if _, err := eng.Insert("fresh", inserted); err != nil {
		t.Fatal(err)
	}
	genAfterInsert := eng.Generation()

	faultpoint.Enable(faultpoint.SiteCompactSwap, faultpoint.Spec{Mode: faultpoint.ModeError, Times: 1})
	if _, err := eng.Compact(); err == nil {
		t.Fatal("compaction swallowed the injected swap failure")
	}
	if got := eng.Generation(); got != genAfterInsert {
		t.Fatalf("failed compaction moved the generation: %d, want %d", got, genAfterInsert)
	}
	// The memtable must still serve the insert.
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	q := Query{Residues: seq.Protein.MustEncode("WWWWHHHHWWWW"), Options: core.Options{Scheme: scheme, MinScore: 40}}
	if hits := collectStream(t, eng, q); len(hits) == 0 || hits[0].SeqID != "fresh" {
		t.Fatalf("insert lost after failed compaction: %v", hits)
	}
	// The spec was Times=1, so the retry must succeed and fold the memtable.
	gen, err := eng.Compact()
	if err != nil {
		t.Fatalf("retry compaction: %v", err)
	}
	if gen <= genAfterInsert {
		t.Fatalf("retry compaction did not advance the generation: %d", gen)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := diskst.VerifyIndexDir(dir); err != nil {
		t.Fatalf("scrub after crash + retry: %v", err)
	}

	// Crash WITHOUT a successful retry: the directory must reopen at the old
	// generation with the un-compacted insert lost (the documented
	// LSM-without-WAL contract) and pass a scrub.
	eng2, err := New(nil, Options{IndexDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	genStable := eng2.Generation()
	if _, err := eng2.Insert("doomed", inserted); err != nil {
		t.Fatal(err)
	}
	faultpoint.Enable(faultpoint.SiteCompactSwap, faultpoint.Spec{Mode: faultpoint.ModeError, Times: 1})
	if _, err := eng2.Compact(); err == nil {
		t.Fatal("compaction swallowed the injected swap failure")
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := diskst.VerifyIndexDir(dir); err != nil {
		t.Fatalf("scrub after crash: %v", err)
	}
	eng3, err := New(nil, Options{IndexDir: dir})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer eng3.Close()
	if got := eng3.Generation(); got != genStable {
		t.Fatalf("crashed directory reopened at generation %d, want %d", got, genStable)
	}
	for _, h := range collectStream(t, eng3, q) {
		if h.SeqID == "doomed" {
			t.Fatal("un-compacted insert survived the crash; the manifest swap leaked")
		}
	}
}

// TestIncrementalConcurrentStress races inserts, deletes, compactions and
// searches (run under -race in CI): searches pin a generation for their whole
// run, so every stream must be internally consistent even while writers
// publish new states.
func TestIncrementalConcurrentStress(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	db := randomEngineDB(t, rng, seq.Protein, 12, 60)
	eng, err := New(db, Options{Shards: 2, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	queries := randomQueries(rng, seq.Protein, 4, scheme)
	extras := extraSequences(rng, seq.Protein, 24, 50)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(g+i)%len(queries)]
				last := int(^uint(0) >> 1)
				if _, err := eng.Search(context.Background(), q, func(h core.Hit) bool {
					if h.Score > last {
						t.Errorf("stream not decreasing: %d after %d", h.Score, last)
					}
					last = h.Score
					return true
				}); err != nil && err != ErrClosed {
					t.Errorf("search: %v", err)
					return
				}
			}
		}(g)
	}
	for i, s := range extras {
		if _, err := eng.Insert(s.ID, s.Residues); err != nil {
			t.Fatalf("insert %s: %v", s.ID, err)
		}
		if i%5 == 4 {
			if _, err := eng.Delete(s.ID); err != nil {
				t.Fatalf("delete %s: %v", s.ID, err)
			}
		}
		if i%7 == 6 {
			if _, err := eng.Compact(); err != nil {
				t.Fatalf("compact: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
