// Package diskst implements the disk-based suffix-tree representation of
// paper Section 3.4 and the machinery to build it, write it, and search it
// through a buffer pool.
//
// The index file contains four regions, each aligned to the block size:
//
//	symbols   — the encoded concatenated database (1 byte per symbol, a
//	            Terminator byte after each sequence)
//	internal  — fixed 16-byte internal-node records in level (BFS) order so
//	            sibling internal nodes are physically adjacent
//	leaves    — fixed 4-byte leaf records indexed by suffix start position
//	            (the array index IS the symbol-array offset, as in the paper)
//	catalog   — sequence identifiers and lengths
//
// Children of a node are enumerated as: the node's leaf children first,
// chained through each leaf's tagged next-sibling pointer, followed by its
// internal children, which are contiguous in the internal region and
// delimited by a last-sibling flag.  This reproduces the paper's design
// ("siblings are adjacent ... we must maintain an explicit pointer to
// siblings" for leaves) without any extra per-node pointers.
package diskst

import (
	"encoding/binary"
	"fmt"
)

const (
	// Magic identifies an OASIS index file.
	Magic = "OASISIDX"
	// Version is the current format version.
	Version = 1
	// DefaultBlockSize matches the paper's 2 KB disk blocks.
	DefaultBlockSize = 2048
	// internalRecordSize is the size of an internal-node record in bytes.
	internalRecordSize = 16
	// leafRecordSize is the size of a leaf record in bytes.
	leafRecordSize = 4
	// headerSize is the fixed on-disk header size (always occupies the
	// first block regardless of block size).
	headerSize = 128
)

// Tagged child/sibling pointer encoding: the high bit marks leaf targets
// (addressed by suffix position), the remaining 31 bits hold the index;
// ptrNone marks the end of a chain.
const (
	ptrNone    = uint32(0xFFFFFFFF)
	ptrLeafBit = uint32(0x80000000)
	ptrMask    = uint32(0x7FFFFFFF)
)

// flag bits of internal-node records.
const (
	flagLastSibling = uint32(1 << 0)
)

// header is the decoded index-file header.
type header struct {
	version      uint32
	blockSize    uint32
	alphabetKind uint32 // 0 = protein, 1 = dna
	numSequences uint64
	concatLen    uint64
	numInternal  uint64
	symbolsOff   uint64
	internalOff  uint64
	leavesOff    uint64
	catalogOff   uint64
	catalogLen   uint64
}

func (h *header) encode() []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:8], Magic)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], h.version)
	le.PutUint32(buf[12:], h.blockSize)
	le.PutUint32(buf[16:], h.alphabetKind)
	le.PutUint64(buf[24:], h.numSequences)
	le.PutUint64(buf[32:], h.concatLen)
	le.PutUint64(buf[40:], h.numInternal)
	le.PutUint64(buf[48:], h.symbolsOff)
	le.PutUint64(buf[56:], h.internalOff)
	le.PutUint64(buf[64:], h.leavesOff)
	le.PutUint64(buf[72:], h.catalogOff)
	le.PutUint64(buf[80:], h.catalogLen)
	return buf
}

func decodeHeader(buf []byte) (*header, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("diskst: header too short (%d bytes)", len(buf))
	}
	if string(buf[0:8]) != Magic {
		return nil, fmt.Errorf("diskst: bad magic %q", buf[0:8])
	}
	le := binary.LittleEndian
	h := &header{
		version:      le.Uint32(buf[8:]),
		blockSize:    le.Uint32(buf[12:]),
		alphabetKind: le.Uint32(buf[16:]),
		numSequences: le.Uint64(buf[24:]),
		concatLen:    le.Uint64(buf[32:]),
		numInternal:  le.Uint64(buf[40:]),
		symbolsOff:   le.Uint64(buf[48:]),
		internalOff:  le.Uint64(buf[56:]),
		leavesOff:    le.Uint64(buf[64:]),
		catalogOff:   le.Uint64(buf[72:]),
		catalogLen:   le.Uint64(buf[80:]),
	}
	if h.version != Version {
		return nil, fmt.Errorf("diskst: unsupported version %d", h.version)
	}
	if h.blockSize == 0 {
		return nil, fmt.Errorf("diskst: zero block size")
	}
	return h, nil
}

// internalRecord is the decoded form of an internal-node record.
type internalRecord struct {
	depth      uint32
	edgeStart  uint32
	firstChild uint32 // tagged pointer
	flags      uint32
}

func (r internalRecord) encode(buf []byte) {
	le := binary.LittleEndian
	le.PutUint32(buf[0:], r.depth)
	le.PutUint32(buf[4:], r.edgeStart)
	le.PutUint32(buf[8:], r.firstChild)
	le.PutUint32(buf[12:], r.flags)
}

func decodeInternalRecord(buf []byte) internalRecord {
	le := binary.LittleEndian
	return internalRecord{
		depth:      le.Uint32(buf[0:]),
		edgeStart:  le.Uint32(buf[4:]),
		firstChild: le.Uint32(buf[8:]),
		flags:      le.Uint32(buf[12:]),
	}
}

// taggedLeaf returns the tagged pointer to the leaf at suffix position pos.
func taggedLeaf(pos int64) uint32 { return ptrLeafBit | uint32(pos) }

// taggedInternal returns the tagged pointer to internal node idx.
func taggedInternal(idx int64) uint32 { return uint32(idx) }

// alignUp rounds n up to the next multiple of block.
func alignUp(n, block int64) int64 {
	if block <= 0 {
		return n
	}
	rem := n % block
	if rem == 0 {
		return n
	}
	return n + block - rem
}
