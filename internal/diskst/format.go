// Package diskst implements the disk-based suffix-tree representation of
// paper Section 3.4 and the machinery to build it, write it, and search it
// through a buffer pool.
//
// # Single-file layout
//
// The index file contains four regions, each aligned to the block size:
//
//	symbols   — the encoded concatenated database (1 byte per symbol, a
//	            Terminator byte after each sequence)
//	internal  — fixed 16-byte internal-node records in level (BFS) order so
//	            sibling internal nodes are physically adjacent
//	leaves    — fixed 4-byte leaf records indexed by suffix start position
//	            (the array index IS the symbol-array offset, as in the paper)
//	catalog   — sequence identifiers and lengths
//
// Byte layout (every region starts on a BlockSize boundary; offsets and
// lengths are recorded in the header):
//
//	offset 0                                         1 block
//	┌─────────────────────────────────────────────────────┐
//	│ header (128 bytes used, rest of the block zero)     │
//	│  0  magic "OASISIDX"        8  version    u32       │
//	│ 12  blockSize   u32        16  alphabet   u32 (0=aa,│
//	│ 24  numSeqs     u64        32  concatLen  u64  1=nt)│
//	│ 40  numInternal u64        48  symbolsOff u64       │
//	│ 56  internalOff u64        64  leavesOff  u64       │
//	│ 72  catalogOff  u64        80  catalogLen u64       │
//	│ 88  checksumOff u64 (v2; 0 in v1 files)             │
//	├─────────────────────────────────────────────────────┤
//	│ symbols: concatLen bytes, one symbol code per byte, │
//	│          terminator after each sequence             │
//	├─────────────────────────────────────────────────────┤
//	│ internal: numInternal × 16-byte records (BFS order) │
//	│   0 depth u32   4 edgeStart u32                     │
//	│   8 firstChild u32 (tagged)  12 flags u32 (bit 0 =  │
//	│                                 last sibling)       │
//	├─────────────────────────────────────────────────────┤
//	│ leaves: concatLen × 4-byte tagged next-sibling      │
//	│         pointers, indexed by suffix start position  │
//	├─────────────────────────────────────────────────────┤
//	│ catalog: u32 count, then per sequence               │
//	│          u32 idLen, id bytes, u64 length            │
//	├─────────────────────────────────────────────────────┤
//	│ checksums (v2): one u32 CRC32C (Castagnoli) per     │
//	│   blockSize-byte block of [0, checksumOff), in      │
//	│   block order, followed by one u32 CRC32C of the    │
//	│   table bytes themselves                            │
//	└─────────────────────────────────────────────────────┘
//
// # Checksums (format v2)
//
// Version 2 appends a checksum region after the catalog.  checksumOff (header
// byte 88) is block-aligned, so [0, checksumOff) is a whole number of
// blockSize-byte blocks; the region holds checksumOff/blockSize little-endian
// u32 CRC32C values — one per block, covering header, symbols, internal,
// leaves and catalog including their padding — then a final u32 CRC32C of the
// table itself (so table corruption is distinguishable from data corruption
// without a circular header dependency).  The writer stamps checksums from a
// read-back of the finished file; the reader verifies every block as it is
// read, i.e. on every buffer-pool fill, retrying transient read errors with
// capped exponential backoff first (see checksum.go).  Version 1 files have
// no table (checksumOff = 0) and still open, with ChecksumsEnabled reporting
// false ("checksums unavailable").
//
// Tagged pointers pack a leaf/internal discriminator into the high bit
// (ptrLeafBit): leaf targets are addressed by suffix position, internal
// targets by BFS index; 0xFFFFFFFF (ptrNone) ends a sibling chain.
//
// Children of a node are enumerated as: the node's leaf children first,
// chained through each leaf's tagged next-sibling pointer, followed by its
// internal children, which are contiguous in the internal region and
// delimited by a last-sibling flag.  This reproduces the paper's design
// ("siblings are adjacent ... we must maintain an explicit pointer to
// siblings" for leaves) without any extra per-node pointers.
//
// # Sharded layout (manifest.json)
//
// BuildSharded writes a DIRECTORY holding one or more single-file indexes
// plus a manifest.json that describes how they compose into one logical
// database (see Manifest; OpenSharded reverses it, giving every shard its
// own buffer pool so shard parallelism also parallelises page I/O):
//
//	{
//	  "version": 3,               // v1/v2 manifests still open (new fields
//	                              // read as zero/absent)
//	  "partition": "sequence" | "prefix",
//	  "shards": 4,
//	  "alphabet": "protein" | "dna",
//	  "block_size": 2048,
//	  "num_sequences": 117,          // whole logical database
//	  "total_residues": 29076,
//	  "checksums": true,             // v2: shard files carry CRC32C tables
//	  "shard_files": ["shard-0.oasis", ...],
//	  // partition=sequence: one file per shard over a disjoint sequence
//	  // subset, with shard-local -> global index maps
//	  "global_index": [[0,3,9,...], ...],
//	  // partition=prefix: exactly one shared file (every shard opens it
//	  // through its own pool) plus the suffix-prefix -> shard owner tables
//	  "prefix_assignment": {"shards":4, "width":20,
//	                        "owner_l1":[...], "owner_l2":[...]},
//	  // v3 mutable layer (all optional; absent on a freshly built index):
//	  "generation": 7,               // bumped by every compaction; readers
//	                                 // pin the generation they opened
//	  "deltas": [                    // compacted delta indexes, oldest first
//	    {"file": "delta-000007.oasis",
//	     "global_index": [117, 118], // dense append order: global indexes
//	                                 // continue after base + earlier deltas
//	     "residues": 451}
//	  ],
//	  "tombstones": [3, 118]         // deleted global sequence indexes
//	}
//
// # Mutable layer (manifest v3)
//
// Version 3 adds LSM-style incremental indexing on top of the immutable
// base files.  Inserted sequences live in an in-memory delta until a
// compaction folds them into an ordinary single-file index
// ("delta-<generation>.oasis", same byte layout as any shard file) and
// swaps in a new manifest with a bumped "generation".  The swap is atomic
// (write manifest.json.tmp, fsync, rename), so a crash mid-compaction
// leaves the previous manifest — and every file it references — intact.
//
// Delta "global_index" entries must be DENSE: each delta's sequences
// continue the global numbering exactly where base + earlier deltas left
// off (Validate enforces this), which keeps merged result streams
// deterministic across restarts.  "num_sequences"/"total_residues" keep
// describing the BASE shard files only, so the open-time cross-check
// against those files stays exact; live-corpus totals are derived by
// adding delta "residues" and subtracting tombstoned sequences.
// "tombstones" lists deleted global indexes (base and delta alike) — the
// sequences stay physically present in their files and search filters
// them during the merge.
//
// Shard file names are bare names resolved relative to the manifest's
// directory, so an index directory can be moved or mounted anywhere.
package diskst

import (
	"encoding/binary"
	"fmt"
)

const (
	// Magic identifies an OASIS index file.
	Magic = "OASISIDX"
	// Version is the current format version: 2 adds the per-block CRC32C
	// checksum region (see the package comment).
	Version = 2
	// versionNoChecksums is the legacy format without a checksum region;
	// still readable, reported via Index.ChecksumsEnabled.
	versionNoChecksums = 1
	// DefaultBlockSize matches the paper's 2 KB disk blocks.
	DefaultBlockSize = 2048
	// internalRecordSize is the size of an internal-node record in bytes.
	internalRecordSize = 16
	// leafRecordSize is the size of a leaf record in bytes.
	leafRecordSize = 4
	// headerSize is the fixed on-disk header size (always occupies the
	// first block regardless of block size).
	headerSize = 128
)

// Tagged child/sibling pointer encoding: the high bit marks leaf targets
// (addressed by suffix position), the remaining 31 bits hold the index;
// ptrNone marks the end of a chain.
const (
	ptrNone    = uint32(0xFFFFFFFF)
	ptrLeafBit = uint32(0x80000000)
	ptrMask    = uint32(0x7FFFFFFF)
)

// flag bits of internal-node records.
const (
	flagLastSibling = uint32(1 << 0)
)

// header is the decoded index-file header.
type header struct {
	version      uint32
	blockSize    uint32
	alphabetKind uint32 // 0 = protein, 1 = dna
	numSequences uint64
	concatLen    uint64
	numInternal  uint64
	symbolsOff   uint64
	internalOff  uint64
	leavesOff    uint64
	catalogOff   uint64
	catalogLen   uint64
	checksumOff  uint64 // 0 in v1 files: no checksum region
}

func (h *header) encode() []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:8], Magic)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], h.version)
	le.PutUint32(buf[12:], h.blockSize)
	le.PutUint32(buf[16:], h.alphabetKind)
	le.PutUint64(buf[24:], h.numSequences)
	le.PutUint64(buf[32:], h.concatLen)
	le.PutUint64(buf[40:], h.numInternal)
	le.PutUint64(buf[48:], h.symbolsOff)
	le.PutUint64(buf[56:], h.internalOff)
	le.PutUint64(buf[64:], h.leavesOff)
	le.PutUint64(buf[72:], h.catalogOff)
	le.PutUint64(buf[80:], h.catalogLen)
	le.PutUint64(buf[88:], h.checksumOff)
	return buf
}

func decodeHeader(buf []byte) (*header, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("diskst: header too short (%d bytes)", len(buf))
	}
	if string(buf[0:8]) != Magic {
		return nil, fmt.Errorf("diskst: bad magic %q", buf[0:8])
	}
	le := binary.LittleEndian
	h := &header{
		version:      le.Uint32(buf[8:]),
		blockSize:    le.Uint32(buf[12:]),
		alphabetKind: le.Uint32(buf[16:]),
		numSequences: le.Uint64(buf[24:]),
		concatLen:    le.Uint64(buf[32:]),
		numInternal:  le.Uint64(buf[40:]),
		symbolsOff:   le.Uint64(buf[48:]),
		internalOff:  le.Uint64(buf[56:]),
		leavesOff:    le.Uint64(buf[64:]),
		catalogOff:   le.Uint64(buf[72:]),
		catalogLen:   le.Uint64(buf[80:]),
	}
	switch h.version {
	case Version:
		h.checksumOff = le.Uint64(buf[88:])
	case versionNoChecksums:
		// Legacy file: readable, but no checksum region to verify against.
		h.checksumOff = 0
	default:
		return nil, fmt.Errorf("diskst: unsupported version %d", h.version)
	}
	if h.blockSize == 0 {
		return nil, fmt.Errorf("diskst: zero block size")
	}
	return h, nil
}

// internalRecord is the decoded form of an internal-node record.
type internalRecord struct {
	depth      uint32
	edgeStart  uint32
	firstChild uint32 // tagged pointer
	flags      uint32
}

func (r internalRecord) encode(buf []byte) {
	le := binary.LittleEndian
	le.PutUint32(buf[0:], r.depth)
	le.PutUint32(buf[4:], r.edgeStart)
	le.PutUint32(buf[8:], r.firstChild)
	le.PutUint32(buf[12:], r.flags)
}

func decodeInternalRecord(buf []byte) internalRecord {
	le := binary.LittleEndian
	return internalRecord{
		depth:      le.Uint32(buf[0:]),
		edgeStart:  le.Uint32(buf[4:]),
		firstChild: le.Uint32(buf[8:]),
		flags:      le.Uint32(buf[12:]),
	}
}

// taggedLeaf returns the tagged pointer to the leaf at suffix position pos.
func taggedLeaf(pos int64) uint32 { return ptrLeafBit | uint32(pos) }

// taggedInternal returns the tagged pointer to internal node idx.
func taggedInternal(idx int64) uint32 { return uint32(idx) }

// alignUp rounds n up to the next multiple of block.
func alignUp(n, block int64) int64 {
	if block <= 0 {
		return n
	}
	rem := n % block
	if rem == 0 {
		return n
	}
	return n + block - rem
}
