package diskst

import "os"

// openRW opens a file for read-write; test helper.
func openRW(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0)
}
