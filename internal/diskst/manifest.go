package diskst

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/suffixtree"
)

// ManifestName is the file name of the sharded-index manifest within its
// directory.
const ManifestName = "manifest.json"

// ManifestVersion is the current manifest schema version: 3 adds the mutable
// layer's bookkeeping — a generation number, compacted delta index files and
// per-sequence tombstones.  Version 2 added per-block checksums.  Version 1
// and 2 manifests still open (their new fields read as zero/absent).
const ManifestVersion = 3

// Partition-mode names used in the manifest (string-typed so the manifest
// stays self-describing without importing the shard package).
const (
	PartitionSequence = "sequence"
	PartitionPrefix   = "prefix"
)

// Manifest describes a sharded on-disk index: which files hold which shards,
// how the logical database was partitioned, and the metadata a serving
// process needs to reassemble one logical index from the parts (see the
// package comment in format.go for the schema).
type Manifest struct {
	// Version is the manifest schema version (ManifestVersion).
	Version int `json:"version"`
	// Partition is "sequence" (independent per-shard indexes over disjoint
	// sequence subsets) or "prefix" (one shared index file, disjoint
	// top-level subtrees per shard).
	Partition string `json:"partition"`
	// Shards is the number of work partitions.
	Shards int `json:"shards"`
	// Alphabet is "protein" or "dna".
	Alphabet string `json:"alphabet"`
	// BlockSize is the block size every shard file was written with.
	BlockSize int `json:"block_size"`
	// NumSequences / TotalResidues describe the whole logical database.
	NumSequences  int   `json:"num_sequences"`
	TotalResidues int64 `json:"total_residues"`
	// ShardFiles are the index file names, relative to the manifest's
	// directory: one per shard in sequence mode, exactly one shared file in
	// prefix mode (every shard opens it through its own buffer pool).
	ShardFiles []string `json:"shard_files"`
	// GlobalIndex (sequence mode) maps shard-local sequence indexes back to
	// global ones: GlobalIndex[s][i] is the global index of shard s's i-th
	// sequence.
	GlobalIndex [][]int `json:"global_index,omitempty"`
	// PrefixAssignment (prefix mode) is the suffix-prefix -> shard owner
	// tables computed at build time.
	PrefixAssignment *seq.PrefixAssignment `json:"prefix_assignment,omitempty"`
	// Checksums records that every shard file carries a v2 per-block CRC32C
	// table (false for v1 manifests: checksums unavailable).
	Checksums bool `json:"checksums,omitempty"`
	// Generation numbers this manifest within the directory's lifetime (v3).
	// Every compaction writes a new manifest with a higher generation and
	// swaps it in atomically; readers pin the generation they opened.
	Generation uint64 `json:"generation,omitempty"`
	// Deltas lists compacted delta index files (v3), in the order they were
	// compacted.  Each is an ordinary single-shard index file over the
	// sequences inserted since the previous compaction; its global sequence
	// indexes continue AFTER the base corpus and earlier deltas.
	// NumSequences/TotalResidues above keep describing the BASE files only,
	// so the open-time cross-check against the base shard files stays exact.
	Deltas []DeltaRecord `json:"deltas,omitempty"`
	// Tombstones lists deleted global sequence indexes (v3), covering base
	// and delta sequences alike.  Tombstoned sequences stay physically
	// present in their files; search filters them in the merger.
	Tombstones []int `json:"tombstones,omitempty"`
}

// DeltaRecord names one compacted delta index file within the manifest's
// directory and maps its local sequence indexes into the global space.
type DeltaRecord struct {
	// File is the delta index file name, relative to the manifest directory.
	File string `json:"file"`
	// GlobalIndex[i] is the global sequence index of the file's i-th
	// sequence.
	GlobalIndex []int `json:"global_index"`
	// Residues is the file's residue total (excluding terminators), so live
	// corpus totals can be derived without opening every delta.
	Residues int64 `json:"residues"`
}

// Validate checks the manifest's internal consistency.
func (m *Manifest) Validate() error {
	if m.Version < 1 || m.Version > ManifestVersion {
		return fmt.Errorf("diskst: unsupported manifest version %d", m.Version)
	}
	if m.Shards < 1 {
		return fmt.Errorf("diskst: manifest has %d shards", m.Shards)
	}
	if m.Alphabet != "protein" && m.Alphabet != "dna" {
		return fmt.Errorf("diskst: unknown manifest alphabet %q", m.Alphabet)
	}
	switch m.Partition {
	case PartitionSequence:
		if len(m.ShardFiles) != m.Shards {
			return fmt.Errorf("diskst: manifest lists %d shard files for %d shards", len(m.ShardFiles), m.Shards)
		}
		if len(m.GlobalIndex) != m.Shards {
			return fmt.Errorf("diskst: manifest has %d global maps for %d shards", len(m.GlobalIndex), m.Shards)
		}
	case PartitionPrefix:
		if len(m.ShardFiles) != 1 {
			return fmt.Errorf("diskst: prefix manifest lists %d shard files, want 1 shared file", len(m.ShardFiles))
		}
		if m.PrefixAssignment == nil {
			return fmt.Errorf("diskst: prefix manifest has no prefix assignment")
		}
		if m.PrefixAssignment.Shards != m.Shards {
			return fmt.Errorf("diskst: prefix assignment covers %d shards, manifest says %d",
				m.PrefixAssignment.Shards, m.Shards)
		}
	default:
		return fmt.Errorf("diskst: unknown manifest partition %q", m.Partition)
	}
	for _, f := range m.ShardFiles {
		if f == "" || filepath.IsAbs(f) || f != filepath.Base(f) {
			return fmt.Errorf("diskst: manifest shard file %q must be a bare file name", f)
		}
	}
	total := m.NumSequences
	for i, d := range m.Deltas {
		if d.File == "" || filepath.IsAbs(d.File) || d.File != filepath.Base(d.File) {
			return fmt.Errorf("diskst: manifest delta file %q must be a bare file name", d.File)
		}
		if len(d.GlobalIndex) == 0 {
			return fmt.Errorf("diskst: delta %d (%s) has an empty global index", i, d.File)
		}
		for _, g := range d.GlobalIndex {
			if g != total {
				return fmt.Errorf("diskst: delta %d (%s) global index %d breaks the dense append order (want %d)",
					i, d.File, g, total)
			}
			total++
		}
	}
	for _, tomb := range m.Tombstones {
		if tomb < 0 || tomb >= total {
			return fmt.Errorf("diskst: tombstone %d outside the global sequence space [0,%d)", tomb, total)
		}
	}
	return nil
}

// WriteManifest validates and writes the manifest into dir atomically:
// write-temp + fsync + rename, so a crash at any point leaves either the old
// manifest or the new one, never a torn file.  The previous generation's
// delta files are still referenced by the old manifest until the rename
// lands, which is what makes compaction crash-safe.
func WriteManifest(dir string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadManifest reads and validates the manifest in dir.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("diskst: parsing %s: %w", ManifestName, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ShardedBuildOptions controls sharded index construction.
type ShardedBuildOptions struct {
	WriteOptions
	// Shards is the number of work partitions (>= 1).
	Shards int
	// PartitionByPrefix selects prefix-partitioned subtree sharding: ONE
	// shared index file plus a suffix-prefix -> shard assignment, instead of
	// one independently indexed file per sequence subset.
	PartitionByPrefix bool
}

// BuildSharded partitions db, writes the per-shard index files and the
// manifest into dir (created if needed), and returns the manifest along with
// one BuildStats per written file.
//
// Sequence mode writes shard-0.oasis .. shard-(N-1).oasis, each an ordinary
// single-shard index over its disjoint sequence subset, and records the
// local -> global sequence maps.  Prefix mode builds ONE suffix tree over
// the whole database, writes it as shard-0.oasis, and records the prefix
// assignment; at open time every shard reads that shared file through its
// own buffer pool.
func BuildSharded(dir string, db *seq.Database, opts ShardedBuildOptions) (*Manifest, []BuildStats, error) {
	if db == nil {
		return nil, nil, fmt.Errorf("diskst: nil database")
	}
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	blockSize := opts.BlockSize
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	alphabet := "protein"
	if db.Alphabet().Kind() == seq.KindDNA {
		alphabet = "dna"
	}
	m := &Manifest{
		Version:       ManifestVersion,
		Checksums:     true,
		Alphabet:      alphabet,
		BlockSize:     blockSize,
		NumSequences:  db.NumSequences(),
		TotalResidues: db.TotalResidues(),
	}
	var stats []BuildStats
	if opts.PartitionByPrefix {
		prefixes, err := seq.PartitionByPrefix(db, opts.Shards)
		if err != nil {
			return nil, nil, err
		}
		tree, err := suffixtree.BuildUkkonen(db)
		if err != nil {
			return nil, nil, err
		}
		st, err := Write(filepath.Join(dir, "shard-0.oasis"), tree, WriteOptions{BlockSize: blockSize})
		if err != nil {
			return nil, nil, err
		}
		stats = append(stats, *st)
		assign := prefixes.Assignment()
		m.Partition = PartitionPrefix
		m.Shards = prefixes.NumShards()
		m.ShardFiles = []string{"shard-0.oasis"}
		m.PrefixAssignment = &assign
	} else {
		part, err := seq.PartitionDatabase(db, opts.Shards)
		if err != nil {
			return nil, nil, err
		}
		m.Partition = PartitionSequence
		m.Shards = part.NumShards()
		m.GlobalIndex = part.GlobalIndex
		for s, shardDB := range part.Shards {
			name := fmt.Sprintf("shard-%d.oasis", s)
			st, err := Build(filepath.Join(dir, name), shardDB, BuildOptions{
				WriteOptions: WriteOptions{BlockSize: blockSize},
			})
			if err != nil {
				return nil, nil, fmt.Errorf("shard %d: %w", s, err)
			}
			stats = append(stats, *st)
			m.ShardFiles = append(m.ShardFiles, name)
		}
	}
	if err := WriteManifest(dir, m); err != nil {
		return nil, nil, err
	}
	return m, stats, nil
}

// OpenOptions controls how a sharded index directory is opened.
type OpenOptions struct {
	// PoolBytesPerShard is each shard's buffer-pool capacity in bytes
	// (default 64 MB).  Separate pools mean shard searches never thrash each
	// other's cache and page I/O parallelises across shards.
	PoolBytesPerShard int64
	// WarmupPages is how many near-root internal-node pages each shard
	// prefetches into its pool at open time, cutting the cold-open penalty
	// of the first queries (0 selects DefaultWarmupPages; negative disables
	// warm-up).  Prefetched pages do not count toward hit-ratio statistics.
	WarmupPages int
	// AllowDegraded opens a sequence-partitioned directory even when some
	// shard files fail to open (corrupt, truncated, missing): the failed
	// shards are quarantined (nil Indexes entries, detail in Quarantined)
	// and searches complete from the survivors with Degraded set.  Opening
	// still fails when every shard is unusable, or in prefix mode (all
	// shards share one file, so there are no survivors).
	AllowDegraded bool
}

// DefaultWarmupPages is the per-shard warm-up prefetch depth used when
// OpenOptions does not set one: 64 pages of BFS-ordered internal nodes cover
// the near-root levels every query traverses.
const DefaultWarmupPages = 64

// DefaultPoolBytesPerShard is the per-shard buffer-pool capacity used when
// OpenOptions does not set one.
const DefaultPoolBytesPerShard = 64 << 20

// Sharded is a sharded on-disk index opened for searching: one Index (and
// one buffer pool) per shard, plus the partition metadata from the manifest.
// In prefix mode all shard handles read the same file, each through its own
// pool, and Frontier is one more handle reserved for the shared near-root
// expansion.
type Sharded struct {
	// Dir is the index directory and Manifest its parsed manifest.
	Dir      string
	Manifest *Manifest
	// Indexes[s] is shard s's read handle; Pools[s] its buffer pool.
	Indexes []*Index
	Pools   []*bufferpool.Pool
	// Frontier / FrontierPool (prefix mode with more than one shard) serve
	// the shared near-root expansion so shard pools only ever see their own
	// subtree traffic; nil otherwise (a single shard never expands a
	// shared frontier).
	Frontier     *Index
	FrontierPool *bufferpool.Pool
	// Prefixes is the rebuilt prefix assignment (prefix mode only).
	Prefixes *seq.PrefixPartition
	// Quarantined lists shards whose files failed to open under
	// OpenOptions.AllowDegraded; their Indexes/Pools entries are nil and
	// every search over this directory is degraded from the start.
	Quarantined []core.ShardError
}

// OpenFile opens one index file named by the manifest (a base shard file or
// a compacted delta) relative to dir, through a fresh buffer pool of up to
// poolBytes (0 selects DefaultPoolBytesPerShard; small files get
// proportionally small pools), cross-checking the file's alphabet and block
// size against the manifest.  warmupPages as in OpenOptions: 0 prefetches
// DefaultWarmupPages near-root pages, negative disables warm-up.
func (m *Manifest) OpenFile(dir, name string, poolBytes int64, warmupPages int) (*Index, error) {
	if poolBytes <= 0 {
		poolBytes = DefaultPoolBytesPerShard
	}
	// The buffer pool's frames are allocated eagerly, so cap each pool
	// at what its file could ever fill — a small index must not pin
	// poolBytes of frames per file.
	bytes := poolBytes
	if fi, err := os.Stat(filepath.Join(dir, name)); err == nil && fi.Size() < bytes {
		bytes = alignUp(fi.Size(), int64(m.BlockSize))
	}
	pool := bufferpool.New(bytes, m.BlockSize)
	idx, err := Open(filepath.Join(dir, name), pool)
	if err != nil {
		return nil, err
	}
	// Cross-check the file against the manifest that named it: a file
	// built over a different alphabet or block size would silently
	// return wrong results if it were searched.
	wantAlphabet := seq.Protein
	if m.Alphabet == "dna" {
		wantAlphabet = seq.DNA
	}
	if idx.Catalog().Alphabet() != wantAlphabet {
		idx.Close()
		return nil, fmt.Errorf("file alphabet %s, manifest says %s",
			idx.Catalog().Alphabet().Name(), m.Alphabet)
	}
	if idx.BlockSize() != m.BlockSize {
		idx.Close()
		return nil, fmt.Errorf("file block size %d, manifest says %d", idx.BlockSize(), m.BlockSize)
	}
	// Warm-up: prefetch the near-root internal pages (BFS order puts the
	// root's vicinity first) so the first queries do not pay a cold pool.
	if warmupPages >= 0 {
		pages := warmupPages
		if pages == 0 {
			pages = DefaultWarmupPages
		}
		idx.WarmUp(pages)
	}
	return idx, nil
}

// OpenSharded opens every shard of the index directory written by
// BuildSharded, one buffer pool per shard.
func OpenSharded(dir string, opts OpenOptions) (*Sharded, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	poolBytes := opts.PoolBytesPerShard
	if poolBytes <= 0 {
		poolBytes = DefaultPoolBytesPerShard
	}
	s := &Sharded{Dir: dir, Manifest: m}
	openOne := func(name string) (*Index, *bufferpool.Pool, error) {
		idx, err := m.OpenFile(dir, name, poolBytes, opts.WarmupPages)
		if err != nil {
			return nil, nil, err
		}
		return idx, idx.Pool(), nil
	}
	fail := func(err error) (*Sharded, error) {
		s.Close()
		return nil, err
	}
	for i := 0; i < m.Shards; i++ {
		// Prefix mode has one shared file; sequence mode one per shard.
		name := m.ShardFiles[0]
		if m.Partition == PartitionSequence {
			name = m.ShardFiles[i]
		}
		idx, pool, err := openOne(name)
		if err != nil {
			err = fmt.Errorf("diskst: opening shard %d (%s): %w", i, name, err)
			// In sequence mode each shard's file is independent, so a bad
			// shard can be quarantined and the rest served; in prefix mode
			// every shard reads the one shared file — no survivors.
			if opts.AllowDegraded && m.Partition == PartitionSequence && m.Shards > 1 {
				s.Indexes = append(s.Indexes, nil)
				s.Pools = append(s.Pools, nil)
				s.Quarantined = append(s.Quarantined, core.ShardError{Shard: i, Err: err.Error()})
				continue
			}
			return fail(err)
		}
		s.Indexes = append(s.Indexes, idx)
		s.Pools = append(s.Pools, pool)
	}
	if len(s.Quarantined) == m.Shards {
		return fail(fmt.Errorf("diskst: every shard of %s failed to open; first: %s", dir, s.Quarantined[0].Err))
	}
	if m.Partition == PartitionPrefix {
		s.Prefixes, err = seq.PrefixPartitionFromAssignment(*m.PrefixAssignment)
		if err != nil {
			return fail(err)
		}
		// A single-shard engine routes through the single-index fast path
		// and never expands a shared frontier, so the extra view (and its
		// pool frames) would be dead weight.
		if m.Shards > 1 {
			s.Frontier, s.FrontierPool, err = openOne(m.ShardFiles[0])
			if err != nil {
				return fail(fmt.Errorf("diskst: opening frontier view: %w", err))
			}
		}
	}
	// Cross-check the manifest's totals against the shard files it names
	// (meaningless when shards are quarantined: survivors cover less).
	if len(s.Quarantined) == 0 {
		var total int64
		numSeqs := 0
		for _, idx := range s.Indexes {
			if m.Partition == PartitionPrefix {
				total = idx.Catalog().TotalResidues()
				numSeqs = idx.Catalog().NumSequences()
				break
			}
			total += idx.Catalog().TotalResidues()
			numSeqs += idx.Catalog().NumSequences()
		}
		if total != m.TotalResidues || numSeqs != m.NumSequences {
			return fail(fmt.Errorf("diskst: shard files hold %d sequences / %d residues, manifest says %d / %d",
				numSeqs, total, m.NumSequences, m.TotalResidues))
		}
	}
	return s, nil
}

// Close releases every shard's file handle.
func (s *Sharded) Close() error {
	var first error
	for _, idx := range s.Indexes {
		if idx == nil {
			continue
		}
		if err := idx.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.Frontier != nil {
		if err := s.Frontier.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PoolStats is one shard's aggregated buffer-pool counters across its three
// index regions (symbols, internal nodes, leaves).
type PoolStats struct {
	Shard    int     `json:"shard"`
	Requests int64   `json:"requests"`
	Hits     int64   `json:"hits"`
	HitRatio float64 `json:"hit_ratio"`
}

// PoolStats snapshots each shard's buffer-pool hit statistics (plus, in
// prefix mode, the frontier view's as Shard == -1).
func (s *Sharded) PoolStats() []PoolStats {
	out := make([]PoolStats, 0, len(s.Indexes)+1)
	if s.Frontier != nil {
		out = append(out, poolStatsFor(-1, s.Frontier))
	}
	for i, idx := range s.Indexes {
		if idx == nil { // quarantined shard
			continue
		}
		out = append(out, poolStatsFor(i, idx))
	}
	return out
}

func poolStatsFor(shard int, idx *Index) PoolStats {
	pool := idx.Pool()
	st := PoolStats{Shard: shard}
	for _, f := range []bufferpool.FileID{idx.SymbolsFile(), idx.InternalFile(), idx.LeavesFile()} {
		fs := pool.Stats(f)
		st.Requests += fs.Requests
		st.Hits += fs.Hits
	}
	if st.Requests > 0 {
		st.HitRatio = float64(st.Hits) / float64(st.Requests)
	}
	return st
}
