package diskst

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/seq"
)

// buildChecksumFixture writes a v2 index for a small random database and
// returns its path.
func buildChecksumFixture(t *testing.T, blockSize int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	letters := seq.DNA.Letters()
	strs := make([]string, 8)
	for i := range strs {
		b := make([]byte, 30+rng.Intn(50))
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		strs[i] = string(b)
	}
	db, err := seq.DatabaseFromStrings(seq.DNA, strs...)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.oasis")
	if _, err := Build(path, db, BuildOptions{WriteOptions: WriteOptions{BlockSize: blockSize}}); err != nil {
		t.Fatal(err)
	}
	return path
}

// readWholeTree touches every internal node, edge label and leaf-position
// list of the index, returning the first read error — a full sweep of all
// three on-disk sections through the verifying reader.
func readWholeTree(idx *Index) error {
	var walk func(ref core.NodeRef, depth int) error
	walk = func(ref core.NodeRef, depth int) error {
		return idx.VisitChildren(ref, depth, func(c core.NodeRef, l core.EdgeLabel) error {
			full, err := core.LabelBytes(l)
			if err != nil {
				return err
			}
			if c.IsLeaf() {
				return nil
			}
			if err := idx.LeafPositions(c, func(int64) bool { return true }); err != nil {
				return err
			}
			return walk(c, depth+len(full))
		})
	}
	if err := idx.LeafPositions(idx.Root(), func(int64) bool { return true }); err != nil {
		return err
	}
	return walk(idx.Root(), 0)
}

func openFixture(t *testing.T, path string) *Index {
	t.Helper()
	idx, err := Open(path, bufferpool.New(1<<20, 512))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	return idx
}

// TestChecksummedOpenAndScrub pins the happy path: a freshly written v2 file
// opens with checksums armed, scrubs clean, and reads are verified.
func TestChecksummedOpenAndScrub(t *testing.T) {
	path := buildChecksumFixture(t, 512)
	idx := openFixture(t, path)
	if !idx.ChecksumsEnabled() {
		t.Fatal("fresh v2 index opened without checksums")
	}
	rep, err := VerifyIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.ChecksumsUnavailable || rep.Blocks == 0 {
		t.Fatalf("clean file scrub: %+v", rep)
	}
}

// TestCorruptionDetectedOnRead flips one byte in a data block and requires a
// typed ChecksumError (with the file, block and offset) from reads, and a
// matching problem from the deep scrub.
func TestCorruptionDetectedOnRead(t *testing.T) {
	path := buildChecksumFixture(t, 512)
	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage a byte well past the header, inside the symbols/nodes region.
	if _, err := f.WriteAt([]byte{0xFF}, 700); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := VerifyIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("scrub missed the corrupted block")
	}
	found := false
	for _, p := range rep.Problems {
		if p.Block == 700/512 {
			found = true
		}
	}
	if !found {
		t.Fatalf("scrub reported the wrong block: %+v", rep.Problems)
	}

	// Opening still verifies lazily: the corrupt block surfaces a
	// ChecksumError once something reads it.
	idx, err := Open(path, bufferpool.New(1<<20, 512))
	if err != nil {
		var ce *ChecksumError
		if !errors.As(err, &ce) {
			t.Fatalf("open failed without a ChecksumError: %v", err)
		}
		return
	}
	defer idx.Close()
	readErr := readWholeTree(idx)
	var ce *ChecksumError
	if !errors.As(readErr, &ce) {
		t.Fatalf("reading the corrupt index: got %v, want a ChecksumError", readErr)
	}
	if ce.Path != path || ce.Block != 700/512 {
		t.Fatalf("checksum error detail wrong: %+v", ce)
	}
	if Counters().ChecksumFailures == 0 {
		t.Fatal("checksum failure counter did not move")
	}
}

// TestV1CompatibilityRead rewrites a v2 file's version field to v1 (the
// legacy format without a checksum region) and requires it to open and read
// with checksums reported unavailable rather than failing.
func TestV1CompatibilityRead(t *testing.T) {
	path := buildChecksumFixture(t, 512)
	f, err := openRW(path)
	if err != nil {
		t.Fatal(err)
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], versionNoChecksums)
	if _, err := f.WriteAt(v[:], 8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	idx := openFixture(t, path)
	if idx.ChecksumsEnabled() {
		t.Fatal("v1 file claims checksums")
	}
	// The suffix tree must still be fully readable (the v2 checksum table at
	// the tail is simply ignored dead weight for a v1 reader).
	if err := readWholeTree(idx); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ChecksumsUnavailable {
		t.Fatal("scrub of a v1 file did not flag checksums unavailable")
	}
	if !rep.OK() {
		t.Fatalf("structurally clean v1 file failed the scrub: %+v", rep.Problems)
	}
}

// TestTruncatedShardTypedError truncates one shard file of a sharded
// directory and requires OpenSharded to fail with a typed OpenError naming
// the file and byte offset.
func TestTruncatedShardTypedError(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	letters := seq.DNA.Letters()
	strs := make([]string, 9)
	for i := range strs {
		b := make([]byte, 40+rng.Intn(40))
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		strs[i] = string(b)
	}
	db, err := seq.DatabaseFromStrings(seq.DNA, strs...)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	if _, _, err := BuildSharded(dir, db, ShardedBuildOptions{
		WriteOptions: WriteOptions{BlockSize: 512},
		Shards:       3,
	}); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, "shard-2.oasis")
	if err := os.Truncate(target, 64); err != nil {
		t.Fatal(err)
	}

	_, err = OpenSharded(dir, OpenOptions{PoolBytesPerShard: 1 << 20})
	if err == nil {
		t.Fatal("OpenSharded succeeded on a truncated shard")
	}
	var oe *OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("got %v, want a typed *OpenError", err)
	}
	if !strings.Contains(oe.Path, "shard-2.oasis") {
		t.Fatalf("open error names %q, want the truncated shard file", oe.Path)
	}
	if oe.Offset != 0 {
		t.Fatalf("truncated header should fail at offset 0, got %d", oe.Offset)
	}

	// AllowDegraded turns the same failure into a quarantine.
	sh, err := OpenSharded(dir, OpenOptions{PoolBytesPerShard: 1 << 20, AllowDegraded: true})
	if err != nil {
		t.Fatalf("AllowDegraded open failed: %v", err)
	}
	defer sh.Close()
	if len(sh.Quarantined) != 1 || sh.Quarantined[0].Shard != 2 {
		t.Fatalf("quarantine list wrong: %+v", sh.Quarantined)
	}
}

// TestTransientReadErrorRetried injects a bounded run of read errors and
// requires the reader's retry loop to absorb them invisibly.
func TestTransientReadErrorRetried(t *testing.T) {
	defer faultpoint.Reset()
	path := buildChecksumFixture(t, 512)
	before := Counters().ReadRetries
	faultpoint.Enable(faultpoint.SiteDiskRead, faultpoint.Spec{Mode: faultpoint.ModeError, Times: 2})
	idx := openFixture(t, path)
	if err := readWholeTree(idx); err != nil {
		t.Fatalf("transient errors not absorbed: %v", err)
	}
	if Counters().ReadRetries <= before {
		t.Fatal("retry counter did not move")
	}
}

// TestWarmupPrefetch pins the open-time warm-up: pages prefetched at open are
// buffer-pool hits for the first query.
func TestWarmupPrefetch(t *testing.T) {
	path := buildChecksumFixture(t, 512)
	pool := bufferpool.New(1<<20, 512)
	idx, err := Open(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	n := idx.WarmUp(4)
	if n == 0 {
		t.Fatal("warm-up prefetched nothing")
	}
	st := pool.Stats(idx.InternalFile())
	if st.Hits != 0 || st.Requests != 0 {
		t.Fatalf("warm-up must be stats-silent, got %+v", st)
	}
	if err := readWholeTree(idx); err != nil {
		t.Fatal(err)
	}
	st = pool.Stats(idx.InternalFile())
	if st.Hits == 0 {
		t.Fatalf("first read after warm-up missed the pool: %+v", st)
	}
}
