package diskst

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/suffixtree"
)

func buildIndex(t *testing.T, db *seq.Database, opts BuildOptions) (*Index, *BuildStats, *bufferpool.Pool) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "index.oasis")
	st, err := Build(path, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(1<<20, 512)
	idx, err := Open(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	return idx, st, pool
}

func paperDB(t *testing.T) *seq.Database {
	t.Helper()
	db, err := seq.DatabaseFromStrings(seq.DNA, "AGTACGCCTAG")
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildAndOpenBasics(t *testing.T) {
	db := paperDB(t)
	idx, st, _ := buildIndex(t, db, BuildOptions{})
	if st.NumLeaves != db.ConcatLen() || st.NumSequences != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if idx.NumLeaves() != db.ConcatLen() {
		t.Fatalf("NumLeaves = %d", idx.NumLeaves())
	}
	if idx.BlockSize() != DefaultBlockSize {
		t.Fatalf("BlockSize = %d", idx.BlockSize())
	}
	cat := idx.Catalog()
	if cat.NumSequences() != 1 || cat.SequenceID(0) != "seq0" || cat.SequenceLength(0) != 11 {
		t.Fatalf("catalog wrong: %d %q %d", cat.NumSequences(), cat.SequenceID(0), cat.SequenceLength(0))
	}
	if cat.Alphabet() != seq.DNA {
		t.Fatal("alphabet wrong")
	}
	if cat.TotalResidues() != 11 {
		t.Fatalf("TotalResidues = %d", cat.TotalResidues())
	}
	res, err := cat.Residues(0)
	if err != nil {
		t.Fatal(err)
	}
	if seq.DNA.Decode(res) != "AGTACGCCTAG" {
		t.Fatalf("residues = %q", seq.DNA.Decode(res))
	}
	if _, err := cat.Residues(5); err == nil {
		t.Fatal("expected range error")
	}
}

// collectTree walks an index and produces a canonical fingerprint:
// (ref kind, depth, label, sorted leaf positions at leaves).
func collectTree(t *testing.T, idx core.Index) string {
	t.Helper()
	var sb strings.Builder
	var walk func(ref core.NodeRef, depth int, label string)
	walk = func(ref core.NodeRef, depth int, label string) {
		if ref.IsLeaf() {
			fmt.Fprintf(&sb, "L(%q,%d,%d)", label, depth, ref.LeafPos())
			return
		}
		fmt.Fprintf(&sb, "N(%q,%d)[", label, depth)
		type child struct {
			ref   core.NodeRef
			label string
		}
		var kids []child
		if err := idx.VisitChildren(ref, depth, func(c core.NodeRef, l core.EdgeLabel) error {
			full, err := core.LabelBytes(l)
			if err != nil {
				return err
			}
			kids = append(kids, child{ref: c, label: string(full)})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Child order differs between the memory adapter (sorted by symbol)
		// and the disk layout (leaves first); canonicalise.
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].label != kids[j].label {
				return kids[i].label < kids[j].label
			}
			return kids[i].ref < kids[j].ref
		})
		for _, k := range kids {
			walk(k.ref, depth+len(k.label), k.label)
		}
		sb.WriteString("]")
	}
	walk(idx.Root(), 0, "")
	return sb.String()
}

func TestDiskIndexMatchesMemoryIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := [][]string{
		{"AGTACGCCTAG"},
		{"ACGT", "ACGT"},
		{"A"},
		{"GATTACA", "TTTT", "AG", "CAGTCAGT"},
	}
	for i := 0; i < 4; i++ {
		var c []string
		for j := 0; j < 1+rng.Intn(4); j++ {
			c = append(c, randomDNA(rng, 1+rng.Intn(50)))
		}
		cases = append(cases, c)
	}
	for ci, c := range cases {
		db, err := seq.DatabaseFromStrings(seq.DNA, c...)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := core.BuildMemoryIndex(db)
		if err != nil {
			t.Fatal(err)
		}
		for _, partitioned := range []bool{false, true} {
			idx, _, _ := buildIndex(t, db, BuildOptions{Partitioned: partitioned, PrefixLen: 1})
			got := collectTree(t, idx)
			want := collectTree(t, mem)
			if got != want {
				t.Fatalf("case %d (partitioned=%v): disk tree differs from memory tree\n got: %s\nwant: %s",
					ci, partitioned, got, want)
			}
		}
	}
}

func TestLeafPositionsMatchMemory(t *testing.T) {
	db, err := seq.DatabaseFromStrings(seq.DNA, "GATTACAGATTACA", "CCGGAACC")
	if err != nil {
		t.Fatal(err)
	}
	idx, _, _ := buildIndex(t, db, BuildOptions{})
	mem, err := core.BuildMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}
	collect := func(x core.Index) []int64 {
		var out []int64
		if err := x.LeafPositions(x.Root(), func(pos int64) bool {
			out = append(out, pos)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	got, want := collect(idx), collect(mem)
	if len(got) != len(want) {
		t.Fatalf("leaf count %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("leaf %d: %d != %d", i, got[i], want[i])
		}
	}
	// Early stop must also work.
	n := 0
	if err := idx.LeafPositions(idx.Root(), func(pos int64) bool {
		n++
		return n < 5
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop visited %d leaves", n)
	}
}

func TestLeafPositionsOfLeafRef(t *testing.T) {
	db := paperDB(t)
	idx, _, _ := buildIndex(t, db, BuildOptions{})
	var got []int64
	if err := idx.LeafPositions(core.LeafRef(3), func(pos int64) bool {
		got = append(got, pos)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestCatalogLocate(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "ACGT", "GG")
	idx, _, _ := buildIndex(t, db, BuildOptions{})
	cat := idx.Catalog()
	si, off, err := cat.Locate(5)
	if err != nil || si != 1 || off != 0 {
		t.Fatalf("Locate(5) = %d,%d,%v", si, off, err)
	}
	if _, _, err := cat.Locate(-1); err == nil {
		t.Fatal("expected error")
	}
	if _, _, err := cat.Locate(100); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuildStatsSpaceUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var strsCase []string
	for i := 0; i < 20; i++ {
		strsCase = append(strsCase, randomDNA(rng, 100+rng.Intn(200)))
	}
	db, err := seq.DatabaseFromStrings(seq.DNA, strsCase...)
	if err != nil {
		t.Fatal(err)
	}
	idx, st, _ := buildIndex(t, db, BuildOptions{})
	if st.BytesPerSymbol <= 0 || st.BytesPerSymbol > 40 {
		t.Fatalf("implausible bytes per symbol: %v", st.BytesPerSymbol)
	}
	if st.FileBytes < st.SymbolsBytes+st.InternalBytes+st.LeafBytes {
		t.Fatalf("file smaller than its regions: %+v", st)
	}
	st2 := idx.Stats()
	if st2.NumInternal != st.NumInternal || st2.SymbolsBytes != st.SymbolsBytes {
		t.Fatalf("reader stats disagree with writer stats: %+v vs %+v", st2, st)
	}
}

func TestSmallBlockSizes(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "GATTACAGATTACA", "CCGG")
	for _, bs := range []int{128, 256, 2048, 4096} {
		dir := t.TempDir()
		path := filepath.Join(dir, "idx")
		if _, err := Build(path, db, BuildOptions{WriteOptions: WriteOptions{BlockSize: bs}}); err != nil {
			t.Fatalf("block size %d: %v", bs, err)
		}
		pool := bufferpool.New(1<<20, bs)
		idx, err := Open(path, pool)
		if err != nil {
			t.Fatalf("block size %d: %v", bs, err)
		}
		mem, _ := core.BuildMemoryIndex(db)
		if collectTree(t, idx) != collectTree(t, mem) {
			t.Fatalf("block size %d: tree mismatch", bs)
		}
		idx.Close()
	}
}

func TestInvalidBlockSizeRejected(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "ACGT")
	dir := t.TempDir()
	if _, err := Build(filepath.Join(dir, "x"), db, BuildOptions{WriteOptions: WriteOptions{BlockSize: 100}}); err == nil {
		t.Fatal("expected error for non-multiple-of-16 block size")
	}
	if _, err := Build(filepath.Join(dir, "y"), db, BuildOptions{WriteOptions: WriteOptions{BlockSize: 48}}); err == nil {
		t.Fatal("expected error for block size below header size")
	}
	if _, err := Build(filepath.Join(dir, "z"), nil, BuildOptions{}); err == nil {
		t.Fatal("expected error for nil database")
	}
	if _, err := Write(filepath.Join(dir, "w"), nil, WriteOptions{}); err == nil {
		t.Fatal("expected error for nil tree")
	}
}

func TestOpenErrors(t *testing.T) {
	pool := bufferpool.New(1<<20, 512)
	if _, err := Open("/nonexistent/index", pool); err == nil {
		t.Fatal("expected error for missing file")
	}
	db, _ := seq.DatabaseFromStrings(seq.DNA, "ACGT")
	dir := t.TempDir()
	path := filepath.Join(dir, "idx")
	if _, err := Build(path, db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, nil); err == nil {
		t.Fatal("expected error for nil pool")
	}
	// Corrupt the magic and confirm Open rejects it.
	if err := corruptFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, pool); err == nil {
		t.Fatal("expected error for corrupt header")
	}
}

func TestBufferPoolStatsAttribution(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "GATTACAGATTACAGATTACA", "CCGGAACCGGTT")
	idx, _, pool := buildIndex(t, db, BuildOptions{})
	// Fully traverse; leaf positions touch the internal and leaf regions
	// (labels are lazy, so symbols are only read when materialised).
	if err := idx.LeafPositions(idx.Root(), func(int64) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if pool.Stats(idx.InternalFile()).Requests == 0 {
		t.Fatal("no internal-node page requests recorded")
	}
	if pool.Stats(idx.LeavesFile()).Requests == 0 {
		t.Fatal("no leaf page requests recorded")
	}
	if pool.Stats(idx.SymbolsFile()).Requests != 0 {
		t.Fatal("LeafPositions should not read symbol pages (labels are lazy)")
	}
	// Materialising edge labels must hit the symbol region.
	collectTree(t, idx)
	if pool.Stats(idx.SymbolsFile()).Requests == 0 {
		t.Fatal("no symbol page requests recorded after reading labels")
	}
}

func TestVisitChildrenOnLeafIsNoop(t *testing.T) {
	db := paperDB(t)
	idx, _, _ := buildIndex(t, db, BuildOptions{})
	called := false
	if err := idx.VisitChildren(core.LeafRef(0), 0, func(core.NodeRef, core.EdgeLabel) error {
		called = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("leaf should have no children")
	}
}

func TestWriteFromSortedTreeEquivalent(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "ACGTACGTAA", "GGCC")
	tr1, err := suffixtree.BuildUkkonen(db)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := suffixtree.BuildSorted(db)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if _, err := Write(p1, tr1, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(p2, tr2, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(1<<20, 512)
	i1, err := Open(p1, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer i1.Close()
	i2, err := Open(p2, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer i2.Close()
	if collectTree(t, i1) != collectTree(t, i2) {
		t.Fatal("indexes from the two construction algorithms differ")
	}
}

func corruptFile(path string) error {
	f, err := openRW(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt([]byte("BADMAGIC"), 0)
	return err
}

func randomDNA(rng *rand.Rand, n int) string {
	letters := "ACGT"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(4)]
	}
	return string(b)
}
