package diskst

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/retry"
)

// castagnoli is the CRC32C polynomial table; crc32.MakeTable caches it, so
// taking it once at init avoids a lookup per block.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Read-retry policy for transient disk errors: maxReadRetries re-reads with
// jittered capped exponential backoff (internal/retry) — the jitter keeps
// concurrent shard workers that failed together from retrying in lockstep
// against an already struggling disk.  Truncation (EOF-class) errors are
// permanent and never retried.
const (
	maxReadRetries = 3
	retryBaseDelay = time.Millisecond
	retryMaxDelay  = 10 * time.Millisecond
)

var readRetryPolicy = retry.Default(maxReadRetries, retryBaseDelay, retryMaxDelay)

// Package-level fault counters, surfaced through engine metrics and the
// Prometheus exposition in oasis-serve.
var (
	checksumFailures atomic.Int64
	readRetries      atomic.Int64
)

// FaultCounters is a snapshot of the package's lifetime fault counters.
type FaultCounters struct {
	// ChecksumFailures counts blocks whose CRC32C did not match even after a
	// re-read (i.e. corruption surfaced to the caller as a ChecksumError).
	ChecksumFailures int64
	// ReadRetries counts transient read errors that were retried (whether or
	// not the retry ultimately succeeded).
	ReadRetries int64
}

// Counters returns the package's lifetime fault counters.
func Counters() FaultCounters {
	return FaultCounters{
		ChecksumFailures: checksumFailures.Load(),
		ReadRetries:      readRetries.Load(),
	}
}

// ChecksumError reports a block whose stored CRC32C did not match its
// contents, even after a re-read.  It names the file, the block and its byte
// offset so operators can map it to the damaged region.
type ChecksumError struct {
	Path   string
	Block  int64 // block index within the file
	Offset int64 // byte offset of the block
	Want   uint32
	Got    uint32
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("diskst: checksum mismatch in %s block %d (offset %d): stored %08x, computed %08x",
		e.Path, e.Block, e.Offset, e.Want, e.Got)
}

// OpenError reports a structural failure while opening an index file — a
// truncated or short read, bad header, or unreadable checksum table — naming
// the offending file and the byte offset where the read failed.
type OpenError struct {
	Path   string
	Offset int64
	Err    error
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("diskst: open %s: at offset %d: %v", e.Path, e.Offset, e.Err)
}

func (e *OpenError) Unwrap() error { return e.Err }

// IsChecksumError reports whether err is (or wraps) a ChecksumError.
func IsChecksumError(err error) bool {
	var ce *ChecksumError
	return errors.As(err, &ce)
}

// verifyingReader is an io.ReaderAt over a whole index file that (a) retries
// transient read errors with capped exponential backoff, and (b) for v2
// files, verifies the CRC32C of every block it touches — the section readers
// registered with the buffer pool sit on top of it, so every buffer-pool fill
// is verified regardless of the pool's page size.
//
// On a mismatch the block is re-read once (a bit flip in transit differs from
// one at rest); a persistent mismatch returns a ChecksumError.
type verifyingReader struct {
	f    io.ReaderAt
	path string

	// v2 only: per-block CRC32C table covering [0, limit), with limit a
	// multiple of blockSize.  nil sums disables verification (v1 files).
	sums      []uint32
	blockSize int64
	limit     int64
}

// readRawAt reads into p at off with transient-error retries (and the
// SiteDiskRead failpoint).  It tolerates io.EOF on an exactly-full read.
func (r *verifyingReader) readRawAt(p []byte, off int64) error {
	for attempt := 0; ; attempt++ {
		err := faultpoint.Hit(faultpoint.SiteDiskRead, r.path)
		if err == nil {
			var n int
			n, err = r.f.ReadAt(p, off)
			if n == len(p) {
				err = nil
			}
		}
		if err == nil {
			return nil
		}
		// Truncation is permanent: retrying a short file cannot help.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return err
		}
		if attempt >= maxReadRetries {
			return fmt.Errorf("diskst: read %s at offset %d failed after %d retries: %w",
				r.path, off, maxReadRetries, err)
		}
		readRetries.Add(1)
		time.Sleep(readRetryPolicy.Delay(attempt))
	}
}

// ReadAt implements io.ReaderAt.  Reads inside the checksummed range are
// served block by block, verifying each block's CRC32C after the (possibly
// fault-injected) read.
func (r *verifyingReader) ReadAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if r.sums == nil || off >= r.limit {
		// v1 file, or a read past the checksummed range (the table itself).
		if err := r.readRawAt(p, off); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	bs := r.blockSize
	end := off + int64(len(p))
	if end > r.limit {
		return 0, fmt.Errorf("diskst: read %s [%d,%d) crosses checksummed range end %d", r.path, off, end, r.limit)
	}
	var scratch []byte
	for cur := off; cur < end; {
		block := cur / bs
		blockStart := block * bs
		blockEnd := blockStart + bs
		if cur == blockStart && end >= blockEnd {
			// The request covers this whole block: read and verify in place.
			dst := p[cur-off : blockEnd-off]
			if err := r.verifyBlock(dst, block); err != nil {
				return 0, err
			}
			cur = blockEnd
			continue
		}
		// Partial block: read the full block into scratch and copy the slice.
		if scratch == nil {
			scratch = make([]byte, bs)
		}
		if err := r.verifyBlock(scratch, block); err != nil {
			return 0, err
		}
		to := blockEnd
		if to > end {
			to = end
		}
		copy(p[cur-off:to-off], scratch[cur-blockStart:to-blockStart])
		cur = to
	}
	return len(p), nil
}

// verifyBlock reads block into dst (len(dst) == blockSize) and checks its
// CRC32C, re-reading once on mismatch.
func (r *verifyingReader) verifyBlock(dst []byte, block int64) error {
	off := block * r.blockSize
	for attempt := 0; ; attempt++ {
		if err := r.readRawAt(dst, off); err != nil {
			return err
		}
		// Corruption injection point: the block as read, before verification.
		_ = faultpoint.HitBuf(faultpoint.SiteDiskBlock, r.path, dst)
		got := crc32.Checksum(dst, castagnoli)
		if got == r.sums[block] {
			return nil
		}
		if attempt == 0 {
			// One re-read distinguishes a transient in-flight flip from
			// corruption at rest.
			readRetries.Add(1)
			continue
		}
		checksumFailures.Add(1)
		return &ChecksumError{Path: r.path, Block: block, Offset: off, Want: r.sums[block], Got: got}
	}
}

// loadChecksumTable reads and validates the v2 checksum table at
// hdr.checksumOff, returning the per-block CRC32C values.  fileSize bounds
// the header-derived geometry BEFORE any allocation: the header itself is
// unverified at this point, and a corrupted checksumOff must produce an
// error, not an attempt to allocate a table for a petabyte of blocks.
func loadChecksumTable(r *verifyingReader, hdr *header, fileSize int64) ([]uint32, error) {
	bs := int64(hdr.blockSize)
	limit := int64(hdr.checksumOff)
	if limit <= 0 || limit%bs != 0 || limit >= fileSize {
		return nil, fmt.Errorf("diskst: bad checksum offset %d (block size %d, file size %d)", limit, bs, fileSize)
	}
	nBlocks := limit / bs
	if limit+nBlocks*checksumEntrySize+checksumEntrySize > fileSize {
		return nil, fmt.Errorf("diskst: checksum table for %d blocks does not fit in %d-byte file", nBlocks, fileSize)
	}
	raw := make([]byte, nBlocks*checksumEntrySize+checksumEntrySize)
	if err := r.readRawAt(raw, limit); err != nil {
		return nil, fmt.Errorf("diskst: reading checksum table: %w", err)
	}
	table := raw[:nBlocks*checksumEntrySize]
	wantTableCRC := leUint32(raw[nBlocks*checksumEntrySize:])
	if got := crc32.Checksum(table, castagnoli); got != wantTableCRC {
		checksumFailures.Add(1)
		return nil, &ChecksumError{
			Path: r.path, Block: -1, Offset: limit,
			Want: wantTableCRC, Got: got,
		}
	}
	sums := make([]uint32, nBlocks)
	for i := range sums {
		sums[i] = leUint32(table[i*checksumEntrySize:])
	}
	return sums, nil
}

// checksumFile computes the encoded checksum table for [0, limit) of r: one
// little-endian u32 CRC32C per blockSize bytes, followed by the CRC32C of the
// table itself.  The writer calls it on the finished file; VerifyIndex calls
// it to recompute expected checksums during a deep scrub.
func checksumFile(r io.ReaderAt, limit, blockSize int64) ([]byte, error) {
	if limit%blockSize != 0 {
		return nil, fmt.Errorf("diskst: checksum range %d not block-aligned (block size %d)", limit, blockSize)
	}
	nBlocks := limit / blockSize
	table := make([]byte, 0, (nBlocks+1)*checksumEntrySize)
	buf := make([]byte, blockSize)
	var scratch [checksumEntrySize]byte
	for b := int64(0); b < nBlocks; b++ {
		if n, err := r.ReadAt(buf, b*blockSize); n != len(buf) {
			return nil, fmt.Errorf("diskst: checksum read-back at block %d: %w", b, err)
		}
		putLeUint32(scratch[:], crc32.Checksum(buf, castagnoli))
		table = append(table, scratch[:]...)
	}
	putLeUint32(scratch[:], crc32.Checksum(table, castagnoli))
	return append(table, scratch[:]...), nil
}

// checksumEntrySize is the on-disk size of one checksum table entry.
const checksumEntrySize = 4

func leUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeUint32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
