package diskst

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/seq"
)

func manifestTestDB(t *testing.T) *seq.Database {
	t.Helper()
	db, err := seq.DatabaseFromStrings(seq.Protein,
		"ACDEFGHIKLMNPQRSTVWY", "MKTAYIAKQR", "GGGG", "ACDACDACD", "WYWYWYW", "KLMNP")
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestBuildShardedSequenceRoundTrip builds a sequence-partitioned directory
// and checks the manifest, the shard files, and the reopened engine's global
// maps agree with the build-time partition.
func TestBuildShardedSequenceRoundTrip(t *testing.T) {
	db := manifestTestDB(t)
	dir := t.TempDir()
	m, stats, err := BuildSharded(dir, db, ShardedBuildOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Partition != PartitionSequence || m.Shards != 3 {
		t.Fatalf("manifest partition %q shards %d, want sequence/3", m.Partition, m.Shards)
	}
	if len(stats) != 3 || len(m.ShardFiles) != 3 {
		t.Fatalf("got %d stats and %d files, want 3/3", len(stats), len(m.ShardFiles))
	}
	if m.NumSequences != db.NumSequences() || m.TotalResidues != db.TotalResidues() {
		t.Fatalf("manifest says %d seqs / %d residues, db has %d / %d",
			m.NumSequences, m.TotalResidues, db.NumSequences(), db.TotalResidues())
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partition != m.Partition || got.Shards != m.Shards || len(got.GlobalIndex) != len(m.GlobalIndex) {
		t.Fatalf("reread manifest %+v differs from written %+v", got, m)
	}
	covered := map[int]bool{}
	for s, g := range got.GlobalIndex {
		for _, gi := range g {
			if covered[gi] {
				t.Fatalf("global sequence %d assigned twice", gi)
			}
			covered[gi] = true
		}
		if len(g) == 0 {
			t.Fatalf("shard %d covers no sequences", s)
		}
	}
	if len(covered) != db.NumSequences() {
		t.Fatalf("global maps cover %d sequences, db has %d", len(covered), db.NumSequences())
	}

	sh, err := OpenSharded(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if len(sh.Indexes) != 3 || len(sh.Pools) != 3 || sh.Frontier != nil {
		t.Fatalf("sequence mode opened %d indexes / %d pools, frontier %v",
			len(sh.Indexes), len(sh.Pools), sh.Frontier)
	}
	for s, idx := range sh.Indexes {
		if idx.Catalog().NumSequences() != len(got.GlobalIndex[s]) {
			t.Fatalf("shard %d holds %d sequences, manifest map says %d",
				s, idx.Catalog().NumSequences(), len(got.GlobalIndex[s]))
		}
	}
}

// TestBuildShardedPrefixRoundTrip builds a prefix-partitioned directory and
// checks the single shared file, the restored assignment, and that every
// shard handle reads through its own pool.
func TestBuildShardedPrefixRoundTrip(t *testing.T) {
	db := manifestTestDB(t)
	dir := t.TempDir()
	m, stats, err := BuildSharded(dir, db, ShardedBuildOptions{Shards: 4, PartitionByPrefix: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Partition != PartitionPrefix || m.Shards != 4 {
		t.Fatalf("manifest partition %q shards %d, want prefix/4", m.Partition, m.Shards)
	}
	if len(stats) != 1 || len(m.ShardFiles) != 1 {
		t.Fatalf("prefix mode wrote %d stats / %d files, want one shared file", len(stats), len(m.ShardFiles))
	}
	if m.PrefixAssignment == nil {
		t.Fatal("prefix manifest has no assignment")
	}
	want, err := seq.PartitionByPrefix(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := OpenSharded(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if len(sh.Indexes) != 4 || sh.Frontier == nil || sh.Prefixes == nil {
		t.Fatalf("prefix mode opened %d indexes, frontier %v, prefixes %v",
			len(sh.Indexes), sh.Frontier, sh.Prefixes)
	}
	// The restored assignment must route every (first, second) pair to the
	// same shard as the build-time partition.
	width := db.Alphabet().Size()
	for first := 0; first <= width; first++ {
		for second := 0; second <= width; second++ {
			if got, w := sh.Prefixes.Owner(byte(first), byte(second)), want.Owner(byte(first), byte(second)); got != w {
				t.Fatalf("Owner(%d,%d) = %d after round trip, want %d", first, second, got, w)
			}
		}
		if first < width {
			if got, w := sh.Prefixes.Split(byte(first)), want.Split(byte(first)); got != w {
				t.Fatalf("Split(%d) = %v after round trip, want %v", first, got, w)
			}
		}
	}
	seen := map[*Index]bool{}
	for _, idx := range sh.Indexes {
		if seen[idx] {
			t.Fatal("two shards share one index handle; each must have its own pool")
		}
		seen[idx] = true
	}
}

// TestManifestValidation exercises the manifest's rejection paths.
func TestManifestValidation(t *testing.T) {
	base := func() *Manifest {
		return &Manifest{
			Version: ManifestVersion, Partition: PartitionSequence, Shards: 2,
			Alphabet: "protein", BlockSize: 2048, NumSequences: 2, TotalResidues: 10,
			ShardFiles:  []string{"shard-0.oasis", "shard-1.oasis"},
			GlobalIndex: [][]int{{0}, {1}},
		}
	}
	cases := map[string]func(*Manifest){
		"bad version":      func(m *Manifest) { m.Version = 99 },
		"no shards":        func(m *Manifest) { m.Shards = 0 },
		"bad alphabet":     func(m *Manifest) { m.Alphabet = "klingon" },
		"bad partition":    func(m *Manifest) { m.Partition = "hash" },
		"file count":       func(m *Manifest) { m.ShardFiles = m.ShardFiles[:1] },
		"global maps":      func(m *Manifest) { m.GlobalIndex = nil },
		"absolute file":    func(m *Manifest) { m.ShardFiles[0] = "/etc/passwd" },
		"path in file":     func(m *Manifest) { m.ShardFiles[0] = "../shard-0.oasis" },
		"prefix no assign": func(m *Manifest) { m.Partition = PartitionPrefix; m.ShardFiles = m.ShardFiles[:1] },
		"prefix file count": func(m *Manifest) {
			m.Partition = PartitionPrefix
			m.PrefixAssignment = &seq.PrefixAssignment{Shards: 2}
		},
	}
	for name, mutate := range cases {
		m := base()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, m)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

// TestManifestV3MutableFields covers the v3 delta/tombstone invariants: delta
// global indexes must continue the numbering densely after the base corpus
// and earlier deltas, tombstones must stay inside the combined sequence
// space, and a valid v3 manifest must survive the atomic write/read round
// trip losslessly.
func TestManifestV3MutableFields(t *testing.T) {
	base := func() *Manifest {
		return &Manifest{
			Version: ManifestVersion, Partition: PartitionSequence, Shards: 2,
			Alphabet: "protein", BlockSize: 2048, NumSequences: 3, TotalResidues: 30,
			ShardFiles:  []string{"shard-0.oasis", "shard-1.oasis"},
			GlobalIndex: [][]int{{0, 2}, {1}},
			Generation:  4,
			Deltas: []DeltaRecord{
				{File: "delta-000002.oasis", GlobalIndex: []int{3, 4}, Residues: 17},
				{File: "delta-000004.oasis", GlobalIndex: []int{5}, Residues: 9},
			},
			Tombstones: []int{1, 4},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid v3 manifest rejected: %v", err)
	}
	cases := map[string]func(*Manifest){
		"delta path in file":  func(m *Manifest) { m.Deltas[0].File = "sub/delta.oasis" },
		"delta empty globals": func(m *Manifest) { m.Deltas[1].GlobalIndex = nil },
		"delta gap":           func(m *Manifest) { m.Deltas[0].GlobalIndex = []int{3, 5} },
		"delta overlaps base": func(m *Manifest) { m.Deltas[0].GlobalIndex = []int{2, 3} },
		"delta out of order":  func(m *Manifest) { m.Deltas[0], m.Deltas[1] = m.Deltas[1], m.Deltas[0] },
		"tombstone negative":  func(m *Manifest) { m.Tombstones[0] = -1 },
		"tombstone past end":  func(m *Manifest) { m.Tombstones[1] = 6 },
	}
	for name, mutate := range cases {
		m := base()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, m)
		}
	}
	dir := t.TempDir()
	m := base()
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp manifest left behind after a successful write (stat err %v)", err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(m)
	raw, _ := json.Marshal(got)
	if string(raw) != string(want) {
		t.Fatalf("v3 round trip lost data:\n  wrote %s\n  read  %s", want, raw)
	}
	if got.Generation != 4 || len(got.Deltas) != 2 || len(got.Tombstones) != 2 {
		t.Fatalf("reread v3 fields %+v", got)
	}
}

// TestOpenShardedRejectsTamperedManifest covers the open-time cross-check of
// manifest totals against the shard files.
func TestOpenShardedRejectsTamperedManifest(t *testing.T) {
	db := manifestTestDB(t)
	dir := t.TempDir()
	m, _, err := BuildSharded(dir, db, ShardedBuildOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.TotalResidues++
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir, OpenOptions{}); err == nil {
		t.Fatal("OpenSharded accepted a manifest whose totals disagree with the shard files")
	}
}

// FuzzManifestRoundTrip feeds arbitrary bytes through the manifest parser
// and, for inputs that validate, asserts the write/read round trip is
// lossless.  The seed corpus includes both partition modes.
func FuzzManifestRoundTrip(f *testing.F) {
	db, err := seq.DatabaseFromStrings(seq.Protein, "ACDEFGHIKL", "MNPQRSTVWY", "ACAC")
	if err != nil {
		f.Fatal(err)
	}
	for _, prefix := range []bool{false, true} {
		dir := f.TempDir()
		if _, _, err := BuildSharded(dir, db, ShardedBuildOptions{Shards: 2, PartitionByPrefix: prefix}); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, ManifestName))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			return
		}
		dir := t.TempDir()
		if err := WriteManifest(dir, &m); err != nil {
			t.Fatalf("valid manifest failed to write: %v", err)
		}
		got, err := ReadManifest(dir)
		if err != nil {
			t.Fatalf("written manifest failed to read back: %v", err)
		}
		a, err := json.Marshal(&m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("manifest round trip changed content:\n%s\n%s", a, b)
		}
	})
}
