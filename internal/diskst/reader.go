package diskst

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/seq"
)

// Index is the disk-resident suffix tree opened for searching.  All node and
// symbol accesses go through the buffer pool, so the cost of a search is
// governed by the pool size exactly as in the paper's Figures 7 and 8.
//
// Index implements core.Index.
type Index struct {
	path string
	file *os.File
	vr   *verifyingReader
	pool *bufferpool.Pool
	hdr  *header

	symbolsFile  bufferpool.FileID
	internalFile bufferpool.FileID
	leavesFile   bufferpool.FileID

	alphabet  *seq.Alphabet
	seqIDs    []string
	seqLens   []int64
	seqStarts []int64 // start offset of each sequence in the symbol region
	total     int64   // total residues
}

// Open maps an index file through the supplied buffer pool.
func Open(path string, pool *bufferpool.Pool) (*Index, error) {
	if pool == nil {
		return nil, fmt.Errorf("diskst: nil buffer pool")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// All reads — including the header and catalog here, and every later
	// buffer-pool fill — go through the verifying reader: transient errors
	// are retried, and once the v2 checksum table is loaded every block is
	// CRC-verified.
	vr := &verifyingReader{f: f, path: path}
	hdrBuf := make([]byte, headerSize)
	if _, err := vr.ReadAt(hdrBuf, 0); err != nil {
		f.Close()
		return nil, &OpenError{Path: path, Offset: 0, Err: fmt.Errorf("reading header: %w", err)}
	}
	hdr, err := decodeHeader(hdrBuf)
	if err != nil {
		f.Close()
		return nil, &OpenError{Path: path, Offset: 0, Err: err}
	}
	if hdr.checksumOff != 0 {
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, &OpenError{Path: path, Offset: 0, Err: err}
		}
		sums, err := loadChecksumTable(vr, hdr, fi.Size())
		if err != nil {
			f.Close()
			return nil, &OpenError{Path: path, Offset: int64(hdr.checksumOff), Err: err}
		}
		vr.sums = sums
		vr.blockSize = int64(hdr.blockSize)
		vr.limit = int64(hdr.checksumOff)
		// Re-read the header block through the now-armed verifier so header
		// corruption that still decodes is caught at open time.
		if _, err := vr.ReadAt(hdrBuf, 0); err != nil {
			f.Close()
			return nil, &OpenError{Path: path, Offset: 0, Err: err}
		}
	}
	catBuf := make([]byte, hdr.catalogLen)
	if _, err := vr.ReadAt(catBuf, int64(hdr.catalogOff)); err != nil {
		f.Close()
		return nil, &OpenError{Path: path, Offset: int64(hdr.catalogOff), Err: fmt.Errorf("reading catalog: %w", err)}
	}
	ids, lens, err := decodeCatalog(catBuf)
	if err != nil {
		f.Close()
		return nil, &OpenError{Path: path, Offset: int64(hdr.catalogOff), Err: err}
	}
	if uint64(len(ids)) != hdr.numSequences {
		f.Close()
		return nil, fmt.Errorf("diskst: catalog has %d sequences, header says %d", len(ids), hdr.numSequences)
	}
	idx := &Index{
		path:     path,
		file:     f,
		vr:       vr,
		pool:     pool,
		hdr:      hdr,
		alphabet: seq.Protein,
		seqIDs:   ids,
		seqLens:  lens,
	}
	if hdr.alphabetKind == 1 {
		idx.alphabet = seq.DNA
	}
	idx.seqStarts = make([]int64, len(lens))
	var off int64
	for i, l := range lens {
		idx.seqStarts[i] = off
		off += l + 1 // terminator
		idx.total += l
	}
	if uint64(off) != hdr.concatLen {
		f.Close()
		return nil, fmt.Errorf("diskst: catalog lengths sum to %d, header concatLen is %d", off, hdr.concatLen)
	}
	symbolsLen := int64(hdr.concatLen)
	internalLen := int64(hdr.numInternal) * internalRecordSize
	leavesLen := int64(hdr.concatLen) * leafRecordSize
	idx.symbolsFile = pool.Register(path+"#symbols", io.NewSectionReader(vr, int64(hdr.symbolsOff), symbolsLen), symbolsLen)
	idx.internalFile = pool.Register(path+"#internal", io.NewSectionReader(vr, int64(hdr.internalOff), internalLen), internalLen)
	idx.leavesFile = pool.Register(path+"#leaves", io.NewSectionReader(vr, int64(hdr.leavesOff), leavesLen), leavesLen)
	return idx, nil
}

// ChecksumsEnabled reports whether the index file carries a v2 per-block
// CRC32C table the reader verifies against; false means a v1 file opened in
// compatibility mode ("checksums unavailable").
func (x *Index) ChecksumsEnabled() bool { return x.vr.sums != nil }

// WarmUp prefetches up to nPages pages of the internal-node region into the
// buffer pool.  Internal nodes are laid out in BFS order, so the first pages
// hold the near-root levels every search traverses; prefetching them removes
// the cold-open penalty of the first queries.  Returns the number of pages
// made resident (best-effort; prefetch failures surface on first real use).
func (x *Index) WarmUp(nPages int) int {
	return x.pool.Prefetch(x.internalFile, 0, nPages)
}

// Close releases the underlying file.  Pages already cached in the buffer
// pool remain until evicted.
func (x *Index) Close() error { return x.file.Close() }

// Path returns the index file path.
func (x *Index) Path() string { return x.path }

// BlockSize returns the block size the index was written with.
func (x *Index) BlockSize() int { return int(x.hdr.blockSize) }

// NumInternal returns the number of internal nodes.
func (x *Index) NumInternal() int64 { return int64(x.hdr.numInternal) }

// NumLeaves returns the number of leaves (= concatenated length).
func (x *Index) NumLeaves() int64 { return int64(x.hdr.concatLen) }

// SymbolsFile, InternalFile and LeavesFile expose the buffer-pool file IDs of
// the three index components so experiments can report per-component hit
// ratios (Figure 8).
func (x *Index) SymbolsFile() bufferpool.FileID  { return x.symbolsFile }
func (x *Index) InternalFile() bufferpool.FileID { return x.internalFile }
func (x *Index) LeavesFile() bufferpool.FileID   { return x.leavesFile }

// Pool returns the buffer pool the index reads through.
func (x *Index) Pool() *bufferpool.Pool { return x.pool }

// readInternal fetches and decodes internal-node record i.
func (x *Index) readInternal(i int64) (internalRecord, error) {
	if i < 0 || uint64(i) >= x.hdr.numInternal {
		return internalRecord{}, fmt.Errorf("diskst: internal node %d out of range", i)
	}
	var buf [internalRecordSize]byte
	if err := x.pool.ReadAt(x.internalFile, buf[:], i*internalRecordSize); err != nil {
		return internalRecord{}, err
	}
	return decodeInternalRecord(buf[:]), nil
}

// readLeafNext fetches the tagged next-sibling pointer of the leaf at suffix
// position pos.
func (x *Index) readLeafNext(pos int64) (uint32, error) {
	if pos < 0 || uint64(pos) >= x.hdr.concatLen {
		return 0, fmt.Errorf("diskst: leaf position %d out of range", pos)
	}
	var buf [leafRecordSize]byte
	if err := x.pool.ReadAt(x.leavesFile, buf[:], pos*leafRecordSize); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// readSymbols fetches length symbols starting at global position pos.
func (x *Index) readSymbols(pos, length int64) ([]byte, error) {
	if length <= 0 {
		return nil, nil
	}
	if pos < 0 || uint64(pos+length) > x.hdr.concatLen {
		return nil, fmt.Errorf("diskst: symbol range [%d,%d) out of range", pos, pos+length)
	}
	buf := make([]byte, length)
	if err := x.pool.ReadAt(x.symbolsFile, buf, pos); err != nil {
		return nil, err
	}
	return buf, nil
}

// suffixEnd returns the exclusive end (one past the terminator) of the
// suffix starting at pos.
func (x *Index) suffixEnd(pos int64) (int64, error) {
	i, _, err := x.locate(pos)
	if err != nil {
		return 0, err
	}
	return x.seqStarts[i] + x.seqLens[i] + 1, nil
}

func (x *Index) locate(pos int64) (int, int64, error) {
	if pos < 0 || uint64(pos) >= x.hdr.concatLen {
		return 0, 0, fmt.Errorf("diskst: position %d out of range", pos)
	}
	i := sort.Search(len(x.seqStarts), func(i int) bool { return x.seqStarts[i] > pos }) - 1
	return i, pos - x.seqStarts[i], nil
}

// Root implements core.Index.
func (x *Index) Root() core.NodeRef { return core.InternalRef(0) }

// labelChunk is how many symbols a lazy edge label reads per buffer fill.
// OASIS usually prunes or accepts after a handful of columns, so long leaf
// edges are rarely read in full.
const labelChunk = 64

// lazyLabel is a core.EdgeLabel that reads symbols from the symbol region on
// demand.  One instance is reused for every child visited in a single
// VisitChildren call (the interface only guarantees validity within the
// callback).
type lazyLabel struct {
	idx     *Index
	start   int64 // global symbol position of the first label symbol
	length  int
	buf     []byte
	bufFrom int
	bufTo   int
}

func (l *lazyLabel) reset(start int64, length int) {
	l.start = start
	l.length = length
	l.bufFrom = 0
	l.bufTo = 0
}

// Len implements core.EdgeLabel.
func (l *lazyLabel) Len() int { return l.length }

// Symbols implements core.EdgeLabel.
func (l *lazyLabel) Symbols(from, to int) ([]byte, error) {
	if from < 0 || to > l.length || from > to {
		return nil, fmt.Errorf("diskst: label range [%d,%d) out of bounds (len %d)", from, to, l.length)
	}
	if from == to {
		return nil, nil
	}
	if from < l.bufFrom || to > l.bufTo {
		readTo := from + labelChunk
		if readTo < to {
			readTo = to
		}
		if readTo > l.length {
			readTo = l.length
		}
		need := readTo - from
		if cap(l.buf) < need {
			l.buf = make([]byte, need)
		}
		buf := l.buf[:need]
		if err := l.idx.pool.ReadAt(l.idx.symbolsFile, buf, l.start+int64(from)); err != nil {
			return nil, err
		}
		l.bufFrom, l.bufTo = from, readTo
	}
	return l.buf[from-l.bufFrom : to-l.bufFrom], nil
}

// VisitChildren implements core.Index: it walks the child chain of an
// internal node — leaf children first (linked through the leaf array),
// then internal children (physically adjacent, ended by the last-sibling
// flag) — handing each child's edge label to fn.
func (x *Index) VisitChildren(ref core.NodeRef, parentDepth int, fn func(child core.NodeRef, label core.EdgeLabel) error) error {
	if ref.IsLeaf() {
		return nil // leaves have no children
	}
	rec, err := x.readInternal(ref.InternalIndex())
	if err != nil {
		return err
	}
	label := &lazyLabel{idx: x}
	cur := rec.firstChild
	for cur != ptrNone {
		if cur&ptrLeafBit != 0 {
			pos := int64(cur & ptrMask)
			end, err := x.suffixEnd(pos)
			if err != nil {
				return err
			}
			labelStart := pos + int64(parentDepth)
			if labelStart > end {
				return fmt.Errorf("diskst: corrupt index: leaf %d shallower than parent depth %d", pos, parentDepth)
			}
			label.reset(labelStart, int(end-labelStart))
			if err := fn(core.LeafRef(pos), label); err != nil {
				return err
			}
			next, err := x.readLeafNext(pos)
			if err != nil {
				return err
			}
			cur = next
			continue
		}
		idx := int64(cur & ptrMask)
		childRec, err := x.readInternal(idx)
		if err != nil {
			return err
		}
		edgeLen := int64(childRec.depth) - int64(parentDepth)
		if edgeLen <= 0 {
			return fmt.Errorf("diskst: corrupt index: child %d depth %d <= parent depth %d", idx, childRec.depth, parentDepth)
		}
		label.reset(int64(childRec.edgeStart), int(edgeLen))
		if err := fn(core.InternalRef(idx), label); err != nil {
			return err
		}
		if childRec.flags&flagLastSibling != 0 {
			break
		}
		cur = taggedInternal(idx + 1)
	}
	return nil
}

// LeafPositions implements core.Index.
func (x *Index) LeafPositions(ref core.NodeRef, fn func(pos int64) bool) error {
	stop := false
	var walk func(ref core.NodeRef, depth int) error
	walk = func(ref core.NodeRef, depth int) error {
		if stop {
			return nil
		}
		if ref.IsLeaf() {
			if !fn(ref.LeafPos()) {
				stop = true
			}
			return nil
		}
		return x.VisitChildren(ref, depth, func(child core.NodeRef, label core.EdgeLabel) error {
			return walk(child, depth+label.Len())
		})
	}
	if ref.IsLeaf() {
		return walk(ref, 0)
	}
	// The traversal needs the starting node's true path depth so that edge
	// lengths (derived from depth differences) are computed correctly.
	rec, err := x.readInternal(ref.InternalIndex())
	if err != nil {
		return err
	}
	return walk(ref, int(rec.depth))
}

// Catalog implements core.Index.
func (x *Index) Catalog() core.Catalog { return (*diskCatalog)(x) }

// diskCatalog exposes the catalog view of an Index.
type diskCatalog Index

func (c *diskCatalog) Alphabet() *seq.Alphabet { return c.alphabet }
func (c *diskCatalog) NumSequences() int       { return len(c.seqIDs) }
func (c *diskCatalog) SequenceID(i int) string { return c.seqIDs[i] }
func (c *diskCatalog) SequenceLength(i int) int {
	return int(c.seqLens[i])
}
func (c *diskCatalog) TotalResidues() int64 { return c.total }
func (c *diskCatalog) Locate(pos int64) (int, int64, error) {
	return (*Index)(c).locate(pos)
}
func (c *diskCatalog) Residues(i int) ([]byte, error) {
	if i < 0 || i >= len(c.seqIDs) {
		return nil, fmt.Errorf("diskst: sequence index %d out of range", i)
	}
	return (*Index)(c).readSymbols(c.seqStarts[i], c.seqLens[i])
}

// Stats summarises the index regions; used by the space-utilisation table.
func (x *Index) Stats() BuildStats {
	internalLen := int64(x.hdr.numInternal) * internalRecordSize
	leavesLen := int64(x.hdr.concatLen) * leafRecordSize
	st := BuildStats{
		NumSequences:  len(x.seqIDs),
		TotalResidues: x.total,
		ConcatLen:     int64(x.hdr.concatLen),
		NumInternal:   int64(x.hdr.numInternal),
		NumLeaves:     int64(x.hdr.concatLen),
		SymbolsBytes:  int64(x.hdr.concatLen),
		InternalBytes: internalLen,
		LeafBytes:     leavesLen,
		CatalogBytes:  int64(x.hdr.catalogLen),
	}
	if fi, err := os.Stat(x.path); err == nil {
		st.FileBytes = fi.Size()
		if x.total > 0 {
			st.BytesPerSymbol = float64(fi.Size()) / float64(x.total)
		}
	}
	return st
}

var _ core.Index = (*Index)(nil)
