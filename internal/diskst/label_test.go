package diskst

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/seq"
)

// TestLazyLabelChunkedReads exercises the chunk-refill path of the lazy edge
// labels: a leaf edge much longer than one chunk must be readable both
// sequentially (as the OASIS column sweep does) and via arbitrary windows,
// and the bytes must match the in-memory tree's label.
func TestLazyLabelChunkedReads(t *testing.T) {
	// One long sequence with a unique prefix so the root has a leaf child
	// whose edge spans several chunks.
	long := "ACGT" + strings.Repeat("GATTACAT", 40) // 324 residues
	db, err := seq.DatabaseFromStrings(seq.DNA, long)
	if err != nil {
		t.Fatal(err)
	}
	idx, _, _ := buildIndex(t, db, BuildOptions{WriteOptions: WriteOptions{BlockSize: 128}})
	mem, err := core.BuildMemoryIndex(db)
	if err != nil {
		t.Fatal(err)
	}

	collectLabels := func(x core.Index) map[string]string {
		out := map[string]string{}
		err := x.VisitChildren(x.Root(), 0, func(child core.NodeRef, label core.EdgeLabel) error {
			if !child.IsLeaf() {
				return nil
			}
			// Read the label one symbol at a time (the expand() access
			// pattern), then compare against a whole-label read.
			var sb strings.Builder
			for j := 0; j < label.Len(); j++ {
				s, err := label.Symbols(j, j+1)
				if err != nil {
					return err
				}
				sb.WriteByte(s[0])
			}
			whole, err := core.LabelBytes(label)
			if err != nil {
				return err
			}
			if sb.String() != string(whole) {
				t.Fatalf("sequential reads disagree with whole-label read for leaf %d", child.LeafPos())
			}
			out[keyOf(child)] = sb.String()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	got := collectLabels(idx)
	want := collectLabels(mem)
	if len(got) == 0 {
		t.Fatal("no leaf children under the root")
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("label mismatch for %s: disk %d bytes, memory %d bytes", k, len(got[k]), len(v))
		}
	}
}

func keyOf(ref core.NodeRef) string {
	if ref.IsLeaf() {
		return "L" + string(rune(ref.LeafPos()))
	}
	return "N" + string(rune(ref.InternalIndex()))
}

// TestLazyLabelBoundsChecking verifies the error paths of the lazy label.
func TestLazyLabelBoundsChecking(t *testing.T) {
	db, _ := seq.DatabaseFromStrings(seq.DNA, "ACGTACGTACGT")
	idx, _, _ := buildIndex(t, db, BuildOptions{})
	err := idx.VisitChildren(idx.Root(), 0, func(child core.NodeRef, label core.EdgeLabel) error {
		if _, err := label.Symbols(-1, 0); err == nil {
			t.Fatal("negative from accepted")
		}
		if _, err := label.Symbols(0, label.Len()+1); err == nil {
			t.Fatal("past-end read accepted")
		}
		if _, err := label.Symbols(2, 1); err == nil {
			t.Fatal("inverted range accepted")
		}
		if s, err := label.Symbols(0, 0); err != nil || len(s) != 0 {
			t.Fatal("empty range should succeed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
