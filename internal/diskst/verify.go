package diskst

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/bufferpool"
)

// VerifyProblem is one defect found by a deep scrub.
type VerifyProblem struct {
	// File is the index file containing the defect.
	File string
	// Block is the damaged block index, or -1 for structural problems (bad
	// header, unreadable catalog, corrupt checksum table, truncation).
	Block int64
	// Offset is the byte offset of the defect within the file.
	Offset int64
	// Detail describes the defect.
	Detail string
}

// VerifyReport summarises a deep scrub of an index file or directory.
type VerifyReport struct {
	// Files is the number of index files scanned.
	Files int
	// Blocks is the total number of checksummed blocks scanned.
	Blocks int64
	// Problems lists every defect found; an empty list means the scrub
	// passed.
	Problems []VerifyProblem
	// ChecksumsUnavailable is set when at least one file predates format v2
	// and could only be structurally checked, not CRC-verified.
	ChecksumsUnavailable bool
}

// OK reports whether the scrub found no problems.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

// VerifyIndex deep-scrubs one index file: it re-reads every block of the
// checksummed range and compares CRC32C values against the stored table, then
// structurally opens the index (header, catalog, region registration).  The
// returned error reports only the inability to scrub (e.g. a missing file);
// corruption is reported through the report's Problems list.
func VerifyIndex(path string) (*VerifyReport, error) {
	rep := &VerifyReport{Files: 1}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	hdrBuf := make([]byte, headerSize)
	if n, err := f.ReadAt(hdrBuf, 0); n != headerSize {
		rep.Problems = append(rep.Problems, VerifyProblem{
			File: path, Block: -1, Offset: int64(n), Detail: fmt.Sprintf("truncated header: %v", err),
		})
		return rep, nil
	}
	hdr, err := decodeHeader(hdrBuf)
	if err != nil {
		rep.Problems = append(rep.Problems, VerifyProblem{
			File: path, Block: -1, Offset: 0, Detail: err.Error(),
		})
		return rep, nil
	}

	if hdr.checksumOff == 0 {
		rep.ChecksumsUnavailable = true
	} else {
		bs := int64(hdr.blockSize)
		limit := int64(hdr.checksumOff)
		nBlocks := limit / bs
		rep.Blocks = nBlocks
		fi, err := f.Stat()
		if err != nil {
			return nil, err
		}
		vr := &verifyingReader{f: f, path: path}
		sums, err := loadChecksumTable(vr, hdr, fi.Size())
		if err != nil {
			rep.Problems = append(rep.Problems, VerifyProblem{
				File: path, Block: -1, Offset: limit, Detail: fmt.Sprintf("checksum table: %v", err),
			})
			return rep, nil
		}
		// Recompute every block's CRC32C; keep scanning past failures so one
		// scrub reports every damaged block.
		buf := make([]byte, bs)
		for b := int64(0); b < nBlocks; b++ {
			if n, err := f.ReadAt(buf, b*bs); n != len(buf) {
				rep.Problems = append(rep.Problems, VerifyProblem{
					File: path, Block: b, Offset: b * bs, Detail: fmt.Sprintf("short read: %v", err),
				})
				continue
			}
			if got := crc32.Checksum(buf, castagnoli); got != sums[b] {
				rep.Problems = append(rep.Problems, VerifyProblem{
					File: path, Block: b, Offset: b * bs,
					Detail: fmt.Sprintf("checksum mismatch: stored %08x, computed %08x", sums[b], got),
				})
			}
		}
		if len(rep.Problems) > 0 {
			return rep, nil
		}
	}

	// Structural pass: a full Open exercises header/catalog consistency
	// checks through the same verified read path searches use.
	pool := bufferpool.New(1<<20, int(hdr.blockSize))
	idx, err := Open(path, pool)
	if err != nil {
		off := int64(0)
		if oe, ok := err.(*OpenError); ok {
			off = oe.Offset
		}
		rep.Problems = append(rep.Problems, VerifyProblem{
			File: path, Block: -1, Offset: off, Detail: err.Error(),
		})
		return rep, nil
	}
	idx.Close()
	return rep, nil
}

// VerifyIndexDir deep-scrubs a sharded index directory: the manifest is
// validated, then every distinct shard file — base shards and compacted
// deltas alike — is scrubbed with VerifyIndex.
func VerifyIndexDir(dir string) (*VerifyReport, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	files := append([]string(nil), m.ShardFiles...)
	for _, d := range m.Deltas {
		files = append(files, d.File)
	}
	rep := &VerifyReport{}
	seen := map[string]bool{} // prefix mode shares one file across shards
	for _, name := range files {
		if seen[name] {
			continue
		}
		seen[name] = true
		one, err := VerifyIndex(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		rep.Files += one.Files
		rep.Blocks += one.Blocks
		rep.Problems = append(rep.Problems, one.Problems...)
		rep.ChecksumsUnavailable = rep.ChecksumsUnavailable || one.ChecksumsUnavailable
	}
	return rep, nil
}
