package diskst

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"repro/internal/seq"
	"repro/internal/suffixtree"
)

// WriteOptions controls index serialisation.
type WriteOptions struct {
	// BlockSize is the disk block size (default 2048, the paper's value).
	// It must be a multiple of the 16-byte internal record size.
	BlockSize int
}

// BuildOptions controls end-to-end index construction.
type BuildOptions struct {
	WriteOptions
	// Partitioned selects the Hunt-style partitioned construction instead
	// of the in-memory Ukkonen construction.
	Partitioned bool
	// PrefixLen is the partition prefix length when Partitioned is set.
	PrefixLen int
}

// BuildStats summarises a written index; it backs the paper's space
// utilisation table.
type BuildStats struct {
	NumSequences   int
	TotalResidues  int64
	ConcatLen      int64
	NumInternal    int64
	NumLeaves      int64
	SymbolsBytes   int64
	InternalBytes  int64
	LeafBytes      int64
	CatalogBytes   int64
	ChecksumBytes  int64
	FileBytes      int64
	BytesPerSymbol float64
}

// Build constructs the suffix tree for the database and writes the index to
// path, returning size statistics.
func Build(path string, db *seq.Database, opts BuildOptions) (*BuildStats, error) {
	if db == nil {
		return nil, fmt.Errorf("diskst: nil database")
	}
	var (
		tree *suffixtree.Tree
		err  error
	)
	if opts.Partitioned {
		tree, err = suffixtree.BuildPartitioned(db, opts.PrefixLen)
	} else {
		tree, err = suffixtree.BuildUkkonen(db)
	}
	if err != nil {
		return nil, err
	}
	return Write(path, tree, opts.WriteOptions)
}

// Write serialises an in-memory suffix tree into the on-disk format.
func Write(path string, tree *suffixtree.Tree, opts WriteOptions) (*BuildStats, error) {
	if tree == nil {
		return nil, fmt.Errorf("diskst: nil tree")
	}
	blockSize := opts.BlockSize
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize%internalRecordSize != 0 || blockSize < headerSize {
		return nil, fmt.Errorf("diskst: block size %d must be a multiple of %d and at least %d",
			blockSize, internalRecordSize, headerSize)
	}
	db := tree.DB()
	concat := db.Concat()
	if int64(len(concat)) > int64(ptrMask) {
		return nil, fmt.Errorf("diskst: database too large for 31-bit node pointers (%d symbols)", len(concat))
	}

	layoutNodes, err := layoutTree(tree)
	if err != nil {
		return nil, err
	}

	// Region offsets.
	symbolsOff := int64(blockSize)
	symbolsLen := int64(len(concat))
	internalOff := alignUp(symbolsOff+symbolsLen, int64(blockSize))
	internalLen := int64(len(layoutNodes.internal)) * internalRecordSize
	leavesOff := alignUp(internalOff+internalLen, int64(blockSize))
	leavesLen := int64(len(concat)) * leafRecordSize
	catalogOff := alignUp(leavesOff+leavesLen, int64(blockSize))
	catalog := encodeCatalog(db)
	// The checksum region starts on the block boundary after the catalog, so
	// [0, checksumOff) is a whole number of blocks and the offset is known
	// before any data is written (no header rewrite needed).
	checksumOff := alignUp(catalogOff+int64(len(catalog)), int64(blockSize))

	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)

	kind := uint32(0)
	if db.Alphabet().Kind() == seq.KindDNA {
		kind = 1
	}
	h := header{
		version:      Version,
		blockSize:    uint32(blockSize),
		alphabetKind: kind,
		numSequences: uint64(db.NumSequences()),
		concatLen:    uint64(len(concat)),
		numInternal:  uint64(len(layoutNodes.internal)),
		symbolsOff:   uint64(symbolsOff),
		internalOff:  uint64(internalOff),
		leavesOff:    uint64(leavesOff),
		catalogOff:   uint64(catalogOff),
		catalogLen:   uint64(len(catalog)),
		checksumOff:  uint64(checksumOff),
	}
	written := int64(0)
	writeBytes := func(b []byte) error {
		n, err := w.Write(b)
		written += int64(n)
		return err
	}
	pad := func(to int64) error {
		if written > to {
			return fmt.Errorf("diskst: internal error: wrote %d bytes past offset %d", written, to)
		}
		for written < to {
			chunk := to - written
			if chunk > int64(blockSize) {
				chunk = int64(blockSize)
			}
			if err := writeBytes(make([]byte, chunk)); err != nil {
				return err
			}
		}
		return nil
	}

	if err := writeBytes(h.encode()); err != nil {
		return nil, err
	}
	if err := pad(symbolsOff); err != nil {
		return nil, err
	}
	if err := writeBytes(concat); err != nil {
		return nil, err
	}
	if err := pad(internalOff); err != nil {
		return nil, err
	}
	recBuf := make([]byte, internalRecordSize)
	for _, rec := range layoutNodes.internal {
		rec.encode(recBuf)
		if err := writeBytes(recBuf); err != nil {
			return nil, err
		}
	}
	if err := pad(leavesOff); err != nil {
		return nil, err
	}
	leafBuf := make([]byte, leafRecordSize)
	for _, next := range layoutNodes.leafNext {
		binary.LittleEndian.PutUint32(leafBuf, next)
		if err := writeBytes(leafBuf); err != nil {
			return nil, err
		}
	}
	if err := pad(catalogOff); err != nil {
		return nil, err
	}
	if err := writeBytes(catalog); err != nil {
		return nil, err
	}
	if err := pad(checksumOff); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	// Stamp the checksum table from a read-back of the finished file, so the
	// CRCs cover exactly the bytes that reached the OS — one CRC32C per
	// block of [0, checksumOff), then a CRC32C of the table itself.
	table, err := checksumFile(f, checksumOff, int64(blockSize))
	if err != nil {
		return nil, err
	}
	if err := writeBytes(table); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		return nil, err
	}

	st := &BuildStats{
		NumSequences:  db.NumSequences(),
		TotalResidues: db.TotalResidues(),
		ConcatLen:     int64(len(concat)),
		NumInternal:   int64(len(layoutNodes.internal)),
		NumLeaves:     int64(len(concat)),
		SymbolsBytes:  symbolsLen,
		InternalBytes: internalLen,
		LeafBytes:     leavesLen,
		CatalogBytes:  int64(len(catalog)),
		ChecksumBytes: int64(len(table)),
		FileBytes:     written,
	}
	if db.TotalResidues() > 0 {
		st.BytesPerSymbol = float64(written) / float64(db.TotalResidues())
	}
	return st, nil
}

// treeLayout holds the computed on-disk node layout.
type treeLayout struct {
	internal []internalRecord
	leafNext []uint32 // indexed by suffix position
}

// layoutTree numbers internal nodes in BFS order, builds their records, and
// computes every leaf's next-sibling pointer.
func layoutTree(tree *suffixtree.Tree) (*treeLayout, error) {
	db := tree.DB()
	concatLen := db.ConcatLen()
	lo := &treeLayout{leafNext: make([]uint32, concatLen)}
	for i := range lo.leafNext {
		lo.leafNext[i] = ptrNone
	}

	// BFS numbering of internal nodes.
	type qEntry struct {
		node suffixtree.NodeID
	}
	indexOf := map[suffixtree.NodeID]int64{}
	var order []suffixtree.NodeID
	queue := []qEntry{{node: tree.Root()}}
	indexOf[tree.Root()] = 0
	order = append(order, tree.Root())
	for head := 0; head < len(queue); head++ {
		n := queue[head].node
		for _, c := range tree.Children(n) {
			if !tree.IsLeaf(c) {
				indexOf[c] = int64(len(order))
				order = append(order, c)
				queue = append(queue, qEntry{node: c})
			}
		}
	}
	if int64(len(order)) > int64(ptrMask) {
		return nil, fmt.Errorf("diskst: too many internal nodes (%d)", len(order))
	}

	lo.internal = make([]internalRecord, len(order))
	for idx, n := range order {
		var leafKids []int64
		var internalKids []int64
		for _, c := range tree.Children(n) {
			if tree.IsLeaf(c) {
				leafKids = append(leafKids, tree.SuffixStart(c))
			} else {
				internalKids = append(internalKids, indexOf[c])
			}
		}
		sort.Slice(leafKids, func(a, b int) bool { return leafKids[a] < leafKids[b] })
		sort.Slice(internalKids, func(a, b int) bool { return internalKids[a] < internalKids[b] })
		// Sanity: BFS assigns the internal children of a node consecutive
		// indexes, which the reader's adjacency walk relies on.
		for i := 1; i < len(internalKids); i++ {
			if internalKids[i] != internalKids[i-1]+1 {
				return nil, fmt.Errorf("diskst: internal children of node %d not contiguous", idx)
			}
		}

		first := ptrNone
		if len(leafKids) > 0 {
			first = taggedLeaf(leafKids[0])
			for i := range leafKids {
				next := ptrNone
				if i+1 < len(leafKids) {
					next = taggedLeaf(leafKids[i+1])
				} else if len(internalKids) > 0 {
					next = taggedInternal(internalKids[0])
				}
				lo.leafNext[leafKids[i]] = next
			}
		} else if len(internalKids) > 0 {
			first = taggedInternal(internalKids[0])
		}

		rec := internalRecord{
			depth:      uint32(tree.Depth(n)),
			edgeStart:  uint32(tree.EdgeStart(n)),
			firstChild: first,
		}
		lo.internal[idx] = rec
	}
	// Last-sibling flags: internal node i is the last sibling when it is the
	// final internal child of its parent.  We recompute from the parent's
	// child lists.
	for idx, n := range order {
		_ = idx
		var internalKids []int64
		for _, c := range tree.Children(n) {
			if !tree.IsLeaf(c) {
				internalKids = append(internalKids, indexOf[c])
			}
		}
		if len(internalKids) > 0 {
			sort.Slice(internalKids, func(a, b int) bool { return internalKids[a] < internalKids[b] })
			last := internalKids[len(internalKids)-1]
			lo.internal[last].flags |= flagLastSibling
		}
	}
	// The root has no siblings.
	lo.internal[0].flags |= flagLastSibling
	return lo, nil
}

// encodeCatalog serialises sequence identifiers and lengths.
func encodeCatalog(db *seq.Database) []byte {
	var out []byte
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(db.NumSequences()))
	out = append(out, scratch[:4]...)
	for i := 0; i < db.NumSequences(); i++ {
		s := db.Sequence(i)
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(s.ID)))
		out = append(out, scratch[:4]...)
		out = append(out, s.ID...)
		binary.LittleEndian.PutUint64(scratch[:8], uint64(s.Len()))
		out = append(out, scratch[:8]...)
	}
	return out
}

// decodeCatalog parses the catalog region.
func decodeCatalog(buf []byte) (ids []string, lengths []int64, err error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("diskst: catalog too short")
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	off := 4
	for i := 0; i < n; i++ {
		if off+4 > len(buf) {
			return nil, nil, fmt.Errorf("diskst: truncated catalog entry %d", i)
		}
		idLen := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+idLen+8 > len(buf) {
			return nil, nil, fmt.Errorf("diskst: truncated catalog entry %d", i)
		}
		ids = append(ids, string(buf[off:off+idLen]))
		off += idLen
		lengths = append(lengths, int64(binary.LittleEndian.Uint64(buf[off:])))
		off += 8
	}
	return ids, lengths, nil
}
