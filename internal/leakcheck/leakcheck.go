// Package leakcheck fails a test binary whose tests leave goroutines behind —
// a hand-rolled equivalent of go.uber.org/goleak on the standard library
// only.  Wire it in with one line:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// After the package's tests pass, the checker snapshots all goroutine stacks
// and retries for a grace period while shutdown-in-progress goroutines drain;
// anything still running that is not a known-safe runtime, testing, or
// standard-library background goroutine fails the binary with the full stack.
// Leaked goroutines in serving code are how "passing" tests hide unclosed
// engines, servers, and watchers that would pile up in a long-lived process.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Main runs the package's tests, then fails the binary if goroutines leaked.
// The leak check is skipped when the tests already failed (the leak is rarely
// the root cause) and under -short (fast edit loops).
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 && !testing.Short() {
		if leaked := settle(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) still running after all tests passed:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// settle polls for offenders until none remain or the deadline passes,
// giving goroutines that are already shutting down time to drain.
func settle(deadline time.Duration) []string {
	var leaked []string
	start := time.Now()
	for {
		leaked = offenders()
		if len(leaked) == 0 || time.Since(start) > deadline {
			return leaked
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// offenders returns the stacks of all goroutines that are neither this one
// nor known-safe background machinery.
func offenders() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g != "" && !ignorable(g) {
			out = append(out, g)
		}
	}
	return out
}

// ignorable reports whether a goroutine stack belongs to the test harness or
// standard-library background machinery that outlives tests by design.
func ignorable(stack string) bool {
	for _, safe := range []string{
		// The main goroutine running this very check.
		"repro/internal/leakcheck.Main",
		"testing.(*M).Run",
		// Runtime background workers that show up in all-goroutine dumps.
		"runtime.forcegchelper",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.runfinq",
		"runtime.gcenable",
		// signal.Notify's dispatcher lives for the process.
		"os/signal.signal_recv",
		"os/signal.loop",
	} {
		if strings.Contains(stack, safe) {
			return true
		}
	}
	return false
}
