package remote

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/shard"
)

// Server exports one shard engine's merged stream over the wire protocol:
// its slice of the corpus becomes one boundable provider stream a
// coordinator can merge.  It is an http.Handler (mount it on a mux, or serve
// it directly); the heavy lifting is shard.Engine.SearchBounded, which
// re-exports the engine's locally merged stream together with its own
// decreasing upper bound.
type Server struct {
	eng         *shard.Engine
	maxQueryLen int

	// Lifetime counters for /metrics on the serving binary.
	streams   atomic.Int64 // streams opened
	cancelled atomic.Int64 // streams ended by client cancellation
	active    atomic.Int64 // streams in flight
}

// ServerStats is a snapshot of a Server's lifetime stream counters.
type ServerStats struct {
	Streams   int64 `json:"streams"`
	Cancelled int64 `json:"cancelled"`
	Active    int64 `json:"active"`
}

// NewServer wraps eng as a shard server.
func NewServer(eng *shard.Engine) *Server {
	return &Server{eng: eng, maxQueryLen: 10_000}
}

// Stats returns the server's lifetime stream counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{Streams: s.streams.Load(), Cancelled: s.cancelled.Load(), Active: s.active.Load()}
}

// Info describes the served slice.
func (s *Server) Info() Info {
	cat := s.eng.Catalog()
	return Info{
		Sequences: cat.NumSequences(),
		Residues:  cat.TotalResidues(),
		Alphabet:  cat.Alphabet().Name(),
		Shards:    s.eng.NumShards(),
		Partition: partitionName(s.eng.Partition() == shard.PartitionByPrefix),
	}
}

// Register mounts the shard transport endpoints on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathStream, s.handleStream)
	mux.HandleFunc("GET "+PathInfo, s.handleInfo)
}

// ServeHTTP serves the two transport endpoints directly (tests, bare
// deployments).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == PathStream:
		s.handleStream(w, r)
	case r.Method == http.MethodGet && r.URL.Path == PathInfo:
		s.handleInfo(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Info())
}

// buildOptions validates the request and assembles the search options.  The
// request context is the cancellation path: when the coordinator abandons the
// stream (top-k satisfied, client gone, hedge lost), the replica's search
// unwinds with it instead of burning CPU on an abandoned query.
func (s *Server) buildOptions(r *http.Request, req *StreamRequest) ([]byte, core.Options, error) {
	matrix := score.ByName(req.Matrix)
	if matrix == nil {
		return nil, core.Options{}, fmt.Errorf("unknown matrix %q", req.Matrix)
	}
	scheme, err := score.NewScheme(matrix, req.Gap)
	if err != nil {
		return nil, core.Options{}, err
	}
	al := s.eng.Catalog().Alphabet()
	if matrix.Alphabet() != al {
		return nil, core.Options{}, fmt.Errorf("matrix %q is over %s, slice holds %s sequences",
			req.Matrix, matrix.Alphabet().Name(), al.Name())
	}
	query, err := al.Encode(req.Query)
	if err != nil {
		return nil, core.Options{}, err
	}
	if len(query) == 0 || len(query) > s.maxQueryLen {
		return nil, core.Options{}, fmt.Errorf("query length %d outside 1..%d", len(query), s.maxQueryLen)
	}
	if req.MinScore < 1 {
		return nil, core.Options{}, fmt.Errorf("min_score %d must be >= 1", req.MinScore)
	}
	return query, core.Options{
		Scheme:          scheme,
		MinScore:        req.MinScore,
		MaxResults:      req.MaxResults,
		DisableLiveBand: req.DisableLiveBand,
		StrictShards:    req.Strict,
		Context:         r.Context(),
	}, nil
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var req StreamRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	query, opts, err := s.buildOptions(r, &req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var st core.Stats
	opts.Stats = &st
	s.streams.Add(1)
	s.active.Add(1)
	defer s.active.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	clientGone := false
	emit := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			// The coordinator hung up (lost hedge, satisfied top-k, its own
			// client gone); the request context cancels the search with it.
			clientGone = true
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	err = s.eng.SearchBounded(query, opts,
		func(h core.Hit) bool {
			return emit(Event{E: "h", Seq: h.SeqIndex, ID: h.SeqID, Score: h.Score, QEnd: h.QueryEnd, TEnd: h.TargetEnd})
		},
		func(bound int) bool {
			return emit(Event{E: "b", V: bound})
		})
	if clientGone || r.Context().Err() != nil {
		s.cancelled.Add(1)
		return
	}
	done := Event{E: "d", Stats: &st}
	if err != nil {
		done = Event{E: "d", Err: err.Error()}
	}
	emit(done)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
