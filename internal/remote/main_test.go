package remote

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine: coordinator
// fan-out workers, hedged requests, and streaming decoders must all unwind
// when a search completes, degrades, or is cancelled.
func TestMain(m *testing.M) { leakcheck.Main(m) }
