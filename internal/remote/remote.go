// Package remote promotes the shard boundary to the network: a shard SERVER
// (Server) exports one engine's merged hit stream over HTTP as (hit, bound)
// events, and a coordinator-side CLIENT (Client) consumes such a stream as
// one more shard.Provider, so a Coordinator over N remote shard slices merges
// them through the exact same strict-release k-way merge as a single-process
// engine — and produces a byte-identical globally ordered stream.
//
// # Topology
//
// The served corpus is split into sequence-disjoint SLICES (seq.Partition-
// Database order): slice s owns a contiguous global sequence index range
// starting at the sum of the preceding slices' sequence counts.  Each slice
// is served by one or more REPLICA processes (oasis-serve -shard-server),
// each holding a full copy of the slice's index; a replica's engine may
// internally shard its slice in either partition mode — the exported stream
// is its merged, canonical (score desc, sequence asc) order either way
// (shard.Engine.SearchBounded).  The coordinator owns the global sequence
// index space: it adds the slice's offset to every hit and attaches E-values
// with the global residue totals, so the fan-out is invisible to clients.
//
// # Wire protocol
//
// POST /oasis/shard/stream with a StreamRequest body returns an NDJSON event
// stream, flushed per event:
//
//	{"e":"b","v":57}                        frontier bound: no future hit of
//	                                        this stream exceeds score 57
//	{"e":"h","seq":12,"id":"SYN|B0012","score":55,"qe":13,"te":118}
//	                                        hit (seq is slice-local; scores
//	                                        decrease down the stream)
//	{"e":"d","stats":{...}}                 end of stream, with work counters
//	{"e":"d","err":"..."}                   terminal failure
//
// GET /oasis/shard/info returns the slice's Info (sequence/residue counts,
// alphabet, internal shard layout) — the coordinator fetches it at startup to
// lay out the global index space.
//
// # Robustness
//
// The client retries connect/read failures with jittered capped backoff
// (internal/retry) and fails over across replicas; a mid-stream failure
// resumes the deterministic slice stream on another replica by skipping the
// hits already forwarded (the last skipped hit must match the last forwarded
// one, or the replica is treated as inconsistent and the attempt fails).
// Tail-slow replicas are hedged: if the first event has not arrived within a
// latency-percentile budget, a second request races on the next replica and
// the first responder wins, the loser's request context cancelled.  When
// every replica of a slice is down, the slice's provider errors out and the
// coordinator engine quarantines it through the standard degraded-completion
// path (bound dropped, pending hits purged, Stats.Degraded set; StrictShards
// opts out).  Early top-k termination and client disconnects propagate:
// the provider callbacks' false return cancels the in-flight HTTP request,
// which cancels the replica's server-side search context.
//
// Fault injection for all of the above lives at the faultpoint sites
// remote.dial, remote.stream and remote.hedge.
package remote

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/seq"
)

// Endpoint paths of the shard transport.
const (
	// PathStream is the boundable hit-stream endpoint (POST).
	PathStream = "/oasis/shard/stream"
	// PathInfo is the slice-description endpoint (GET).
	PathInfo = "/oasis/shard/info"
)

// StreamRequest is the JSON body of POST /oasis/shard/stream.  The scoring
// scheme travels by matrix NAME so coordinator and replicas need no shared
// configuration beyond the built-in matrix registry.
type StreamRequest struct {
	// Query is the residue string (letters over the slice's alphabet).
	Query string `json:"query"`
	// Matrix and Gap select the scoring scheme (score.ByName).
	Matrix string `json:"matrix"`
	Gap    int    `json:"gap"`
	// MinScore is the report threshold (>= 1).
	MinScore int `json:"min_score"`
	// MaxResults truncates the slice's stream to its k strongest sequences
	// when > 0 (a valid per-slice prune: the global top k is a subset of the
	// union of per-slice top k's).
	MaxResults int `json:"max_results,omitempty"`
	// DisableLiveBand forwards core.Options.DisableLiveBand.
	DisableLiveBand bool `json:"disable_live_band,omitempty"`
	// Strict forwards core.Options.StrictShards: the replica fails the
	// stream when one of its internal shards fails, instead of completing a
	// silently thinner stream the coordinator could not tell apart from a
	// healthy one (the degraded flag in the done event's stats covers the
	// non-strict case).
	Strict bool `json:"strict,omitempty"`
}

// Event is one NDJSON line of a shard stream.  E is "b" (bound), "h" (hit)
// or "d" (done).
type Event struct {
	E string `json:"e"`
	// V is the frontier bound of "b" events: no future hit of this stream
	// scores above it.
	V int `json:"v,omitempty"`
	// Hit fields ("h" events).  Seq is the slice-LOCAL sequence index; the
	// coordinator adds the slice offset.  Rank and EValue are not carried:
	// both are global properties the coordinator's merger assigns.
	Seq   int    `json:"seq"`
	ID    string `json:"id,omitempty"`
	Score int    `json:"score"`
	QEnd  int    `json:"qe,omitempty"`
	TEnd  int    `json:"te,omitempty"`
	// Done fields ("d" events): the slice search's work counters (including
	// Degraded/ShardErrors when the replica lost internal shards) or its
	// terminal error.
	Stats *core.Stats `json:"stats,omitempty"`
	Err   string      `json:"err,omitempty"`
}

// Info describes one shard slice, served at GET /oasis/shard/info.
type Info struct {
	// Sequences and Residues are the slice's corpus totals; the coordinator
	// lays slices out contiguously in slice order, so slice s's global
	// sequence offset is the sum of the preceding slices' Sequences.
	Sequences int   `json:"sequences"`
	Residues  int64 `json:"residues"`
	// Alphabet names the residue alphabet ("protein" or "dna"); all slices
	// of one deployment must agree.
	Alphabet string `json:"alphabet"`
	// Shards and Partition describe the replica's internal layout
	// (diagnostic; the exported stream is identical either way).
	Shards    int    `json:"shards"`
	Partition string `json:"partition"`
}

// alphabetByName resolves an Info.Alphabet name to the singleton alphabet
// instance (pointer identity matters: scheme/alphabet checks compare
// pointers).
func alphabetByName(name string) (*seq.Alphabet, error) {
	switch name {
	case seq.Protein.Name():
		return seq.Protein, nil
	case seq.DNA.Name():
		return seq.DNA, nil
	}
	return nil, fmt.Errorf("remote: unknown alphabet %q", name)
}

// partitionName renders a shard.PartitionMode for Info.
func partitionName(prefix bool) string {
	if prefix {
		return "prefix"
	}
	return "sequence"
}
