package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/retry"
	"repro/internal/seq"
	"repro/internal/shard"
)

// Config lays out a coordinator: the slice topology plus the robustness
// knobs shared by every slice client.
type Config struct {
	// Slices lists each slice's replica addresses; slice order defines the
	// global sequence index layout (slice s's offset is the sum of the
	// preceding slices' sequence counts).
	Slices [][]string
	// Workers bounds concurrent slice streams per query (0 = one per
	// slice).
	Workers int
	// DialTimeout and HeaderTimeout are the per-attempt transport timeouts
	// (0 picks 2s / 10s); they are deliberately distinct from any per-query
	// deadline the serving layer applies around the whole fan-out.
	DialTimeout   time.Duration
	HeaderTimeout time.Duration
	// MaxAttempts, Retry, HedgeAfter and DisableHedge configure every slice
	// client (see ClientConfig).
	MaxAttempts  int
	Retry        retry.Policy
	HedgeAfter   time.Duration
	DisableHedge bool
}

// Coordinator owns a provider-backed shard engine whose shards are remote
// slice clients: searches fan out to every slice's replica set and merge
// through the standard strict-release rule, so the output stream is
// byte-identical to a single-process engine over the same corpus.
type Coordinator struct {
	eng     *shard.Engine
	clients []*Client
	infos   []Info
	offsets []int
	metrics *Metrics
	hc      *http.Client
}

// SliceHealth is one slice's replica health snapshot.
type SliceHealth struct {
	Slice    int             `json:"slice"`
	Offset   int             `json:"offset"`
	Replicas []ReplicaHealth `json:"replicas"`
}

// Open connects to every slice, lays out the global sequence index space
// from the slices' Info, and assembles the provider-backed engine.  ctx
// bounds the startup info fetches only.
func Open(ctx context.Context, cfg Config) (*Coordinator, error) {
	if len(cfg.Slices) == 0 {
		return nil, fmt.Errorf("remote: no slices configured")
	}
	dial, header := cfg.DialTimeout, cfg.HeaderTimeout
	if dial <= 0 {
		dial = 2 * time.Second
	}
	if header <= 0 {
		header = 10 * time.Second
	}
	hc := &http.Client{Transport: NewTransport(dial, header)}

	co := &Coordinator{metrics: &Metrics{}, hc: hc}
	var total int64
	offset := 0
	var alphabet *seq.Alphabet
	for s, replicas := range cfg.Slices {
		info, err := fetchInfo(ctx, hc, s, replicas)
		if err != nil {
			return nil, err
		}
		al, err := alphabetByName(info.Alphabet)
		if err != nil {
			return nil, fmt.Errorf("remote: slice %d: %w", s, err)
		}
		if alphabet == nil {
			alphabet = al
		} else if alphabet != al {
			return nil, fmt.Errorf("remote: slice %d serves %s sequences, slice 0 serves %s",
				s, al.Name(), alphabet.Name())
		}
		client, err := NewClient(ClientConfig{
			Slice:        s,
			Offset:       offset,
			Sequences:    info.Sequences,
			Replicas:     replicas,
			HTTPClient:   hc,
			MaxAttempts:  cfg.MaxAttempts,
			Retry:        cfg.Retry,
			HedgeAfter:   cfg.HedgeAfter,
			DisableHedge: cfg.DisableHedge,
			Metrics:      co.metrics,
		})
		if err != nil {
			return nil, err
		}
		co.clients = append(co.clients, client)
		co.infos = append(co.infos, info)
		co.offsets = append(co.offsets, offset)
		offset += info.Sequences
		total += info.Residues
	}

	providers := make([]shard.Provider, len(co.clients))
	for i, c := range co.clients {
		providers[i] = c
	}
	eng, err := shard.NewEngineFromProviders(shard.ProviderSet{
		Providers: providers,
		Catalog:   &remoteCatalog{alphabet: alphabet, sequences: offset, residues: total},
	}, shard.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	co.eng = eng
	return co, nil
}

// fetchInfo asks a slice's replicas for their Info, trying each in turn with
// jittered backoff so a coordinator can start while part of a replica set is
// still coming up.
func fetchInfo(ctx context.Context, hc *http.Client, slice int, replicas []string) (Info, error) {
	if len(replicas) == 0 {
		return Info{}, fmt.Errorf("remote: slice %d has no replicas", slice)
	}
	policy := retry.Default(2, 50*time.Millisecond, 500*time.Millisecond)
	var lastErr error
	for attempt := 0; attempt <= policy.Retries; attempt++ {
		if attempt > 0 {
			if err := policy.Sleep(ctx, attempt-1); err != nil {
				return Info{}, err
			}
		}
		for _, addr := range replicas {
			info, err := getInfo(ctx, hc, addr)
			if err == nil {
				return info, nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return Info{}, ctx.Err()
			}
		}
	}
	return Info{}, fmt.Errorf("remote: slice %d: no replica answered info: %w", slice, lastErr)
}

func getInfo(ctx context.Context, hc *http.Client, addr string) (Info, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL(addr)+PathInfo, nil)
	if err != nil {
		return Info{}, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return Info{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Info{}, fmt.Errorf("remote: %s: info HTTP %d", addr, resp.StatusCode)
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return Info{}, fmt.Errorf("remote: %s: bad info: %w", addr, err)
	}
	if info.Sequences <= 0 || info.Residues <= 0 {
		return Info{}, fmt.Errorf("remote: %s serves an empty slice", addr)
	}
	return info, nil
}

// Engine returns the provider-backed shard engine; its Search output is
// byte-identical to a single-process engine over the concatenated slices.
func (co *Coordinator) Engine() *shard.Engine { return co.eng }

// Infos returns the per-slice descriptions fetched at startup.
func (co *Coordinator) Infos() []Info { return co.infos }

// Offsets returns each slice's global sequence index offset.
func (co *Coordinator) Offsets() []int { return co.offsets }

// Health snapshots every slice's replica health.
func (co *Coordinator) Health() []SliceHealth {
	out := make([]SliceHealth, len(co.clients))
	for i, c := range co.clients {
		out[i] = SliceHealth{Slice: i, Offset: co.offsets[i], Replicas: c.Health()}
	}
	return out
}

// Metrics snapshots the fan-out robustness counters aggregated across all
// slice clients.
func (co *Coordinator) Metrics() MetricsSnapshot { return co.metrics.Snapshot() }

// Close releases the engine and the shared transport's idle connections.
func (co *Coordinator) Close() error {
	err := co.eng.Close()
	if t, ok := co.hc.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
	return err
}

// remoteCatalog is the coordinator's global catalog: it knows the layout
// totals (which drive E-values, early stops and scratch sizing) but holds no
// residues — sequence identity travels on each hit's SeqID, and alignment
// recovery requires the slice's serving process.
type remoteCatalog struct {
	alphabet  *seq.Alphabet
	sequences int
	residues  int64
}

func (c *remoteCatalog) Alphabet() *seq.Alphabet { return c.alphabet }
func (c *remoteCatalog) NumSequences() int       { return c.sequences }
func (c *remoteCatalog) SequenceID(i int) string { return "" }
func (c *remoteCatalog) SequenceLength(int) int  { return 0 }
func (c *remoteCatalog) TotalResidues() int64    { return c.residues }
func (c *remoteCatalog) Locate(int64) (int, int64, error) {
	return 0, 0, fmt.Errorf("remote: coordinator catalog holds no residues")
}
func (c *remoteCatalog) Residues(int) ([]byte, error) {
	return nil, fmt.Errorf("remote: coordinator catalog holds no residues")
}

var _ core.Catalog = (*remoteCatalog)(nil)
