package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/retry"
)

// Defaults of the client's robustness knobs.
const (
	// defaultHedgeDelay is the hedge trigger before enough first-event
	// latency samples exist to compute a percentile.
	defaultHedgeDelay = 50 * time.Millisecond
	// minHedgeDelay floors the adaptive hedge trigger so a very fast corpus
	// does not hedge every single request.
	minHedgeDelay = 2 * time.Millisecond
	// ttfbWindow is how many first-event latency samples the adaptive hedge
	// trigger remembers.
	ttfbWindow = 64
	// ttfbMinSamples is how many samples the tracker wants before trusting
	// its percentile over defaultHedgeDelay.
	ttfbMinSamples = 16
	// downAfter is how many consecutive failed attempts mark a replica down
	// (de-prioritized, not banned: it is still tried when every replica of
	// the slice is down, which is how a recovered replica rejoins).
	downAfter = 3
)

// errConsumerStopped marks an attempt that ended because the merger's
// callback returned false: a clean stop, not a fault.
var errConsumerStopped = errors.New("remote: consumer stopped the stream")

// permanentError marks an attempt failure that retrying cannot fix (the
// replica rejected the request as malformed), so the client fails the slice
// immediately instead of burning the attempt budget.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Metrics aggregates the client-side robustness counters; a coordinator
// shares one instance across its slice clients so /metrics reports fan-out
// totals.
type Metrics struct {
	Streams       atomic.Int64 // provider streams served
	Attempts      atomic.Int64 // stream attempts issued (first tries + retries)
	Retries       atomic.Int64 // re-attempts after a failed attempt
	Failovers     atomic.Int64 // re-attempts that switched replica
	Hedges        atomic.Int64 // hedge requests launched
	HedgeWins     atomic.Int64 // hedges whose response won the race
	SliceFailures atomic.Int64 // streams that exhausted every attempt
}

// MetricsSnapshot is a point-in-time copy of Metrics for /metrics handlers.
type MetricsSnapshot struct {
	Streams       int64 `json:"streams"`
	Attempts      int64 `json:"attempts"`
	Retries       int64 `json:"retries"`
	Failovers     int64 `json:"failovers"`
	Hedges        int64 `json:"hedges"`
	HedgeWins     int64 `json:"hedge_wins"`
	SliceFailures int64 `json:"slice_failures"`
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Streams:       m.Streams.Load(),
		Attempts:      m.Attempts.Load(),
		Retries:       m.Retries.Load(),
		Failovers:     m.Failovers.Load(),
		Hedges:        m.Hedges.Load(),
		HedgeWins:     m.HedgeWins.Load(),
		SliceFailures: m.SliceFailures.Load(),
	}
}

// ReplicaHealth is one replica's health snapshot for readiness reporting:
// "up" (last attempt succeeded), "degraded" (recent failures, below the down
// threshold) or "down" (downAfter consecutive failures).
type ReplicaHealth struct {
	Addr                string `json:"addr"`
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	TotalFailures       int64  `json:"total_failures"`
	LastError           string `json:"last_error,omitempty"`
}

// replicaState tracks one replica's failure history.
type replicaState struct {
	addr        string
	mu          sync.Mutex
	consecFails int
	totalFails  int64
	lastErr     string
}

func (r *replicaState) fail(err error) {
	r.mu.Lock()
	r.consecFails++
	r.totalFails++
	r.lastErr = err.Error()
	r.mu.Unlock()
}

func (r *replicaState) ok() {
	r.mu.Lock()
	r.consecFails = 0
	r.mu.Unlock()
}

func (r *replicaState) down() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.consecFails >= downAfter
}

func (r *replicaState) snapshot() ReplicaHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	state := "up"
	switch {
	case r.consecFails >= downAfter:
		state = "down"
	case r.consecFails > 0:
		state = "degraded"
	}
	return ReplicaHealth{
		Addr:                r.addr,
		State:               state,
		ConsecutiveFailures: r.consecFails,
		TotalFailures:       r.totalFails,
		LastError:           r.lastErr,
	}
}

// ClientConfig configures one slice's client.
type ClientConfig struct {
	// Slice is the slice's position in the coordinator's layout (labels
	// errors and metrics).
	Slice int
	// Offset is the slice's global sequence index offset, added to every
	// hit's slice-local index.
	Offset int
	// Sequences is the slice's sequence count when known (> 0 enables the
	// out-of-range guard that catches corrupted hit indexes on the wire).
	Sequences int
	// Replicas are the slice's replica addresses (host:port, or full URLs).
	Replicas []string
	// HTTPClient issues the stream requests; per-attempt dial and
	// response-header timeouts belong on its Transport (NewTransport).
	// nil uses a private default transport.
	HTTPClient *http.Client
	// MaxAttempts bounds stream attempts across replicas (0 picks
	// max(3, 2*len(Replicas))).
	MaxAttempts int
	// Retry is the backoff between attempts (zero Base selects a jittered
	// 5ms..250ms default).
	Retry retry.Policy
	// HedgeAfter fixes the hedge trigger delay; 0 adapts it to the p95 of
	// observed first-event latencies.
	HedgeAfter time.Duration
	// DisableHedge turns tail-latency hedging off.
	DisableHedge bool
	// Metrics receives the client's counters (nil allocates a private set).
	Metrics *Metrics
}

// Client streams one shard slice from its replica set, implementing
// shard.Provider with retry, failover, hedging and health tracking.  A
// mid-stream replica failure resumes on another replica by skipping the hits
// already forwarded: slice hit streams are deterministic (the replica's own
// strict-release merge orders ties by sequence index), so the replay prefix
// must match hit for hit — the client verifies the last skipped hit against
// the last forwarded one and treats a mismatch as replica corruption.
// Bounds are timing-dependent across attempts but always conservative, so a
// monotonic filter keeps the published bound sequence decreasing.
type Client struct {
	slice     int
	offset    int
	sequences int
	replicas  []string
	health    []*replicaState
	hc        *http.Client
	policy    retry.Policy
	maxTries  int
	hedgeCfg  struct {
		fixed    time.Duration
		disabled bool
	}
	metrics *Metrics
	ttfb    ttfbTracker
	rr      atomic.Int64 // round-robin start for load spreading
}

// NewClient builds a slice client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("remote: slice %d has no replicas", cfg.Slice)
	}
	c := &Client{
		slice:     cfg.Slice,
		offset:    cfg.Offset,
		sequences: cfg.Sequences,
		replicas:  cfg.Replicas,
		hc:        cfg.HTTPClient,
		policy:    cfg.Retry,
		maxTries:  cfg.MaxAttempts,
		metrics:   cfg.Metrics,
	}
	c.hedgeCfg.fixed = cfg.HedgeAfter
	c.hedgeCfg.disabled = cfg.DisableHedge
	if c.hc == nil {
		c.hc = &http.Client{Transport: NewTransport(2*time.Second, 10*time.Second)}
	}
	if c.policy.Base == 0 {
		c.policy = retry.Default(c.maxTries, 5*time.Millisecond, 250*time.Millisecond)
	}
	if c.maxTries < 1 {
		c.maxTries = 2 * len(cfg.Replicas)
		if c.maxTries < 3 {
			c.maxTries = 3
		}
	}
	if c.metrics == nil {
		c.metrics = &Metrics{}
	}
	c.health = make([]*replicaState, len(cfg.Replicas))
	for i, addr := range cfg.Replicas {
		c.health[i] = &replicaState{addr: addr}
	}
	return c, nil
}

// NewTransport builds an http.Transport with the coordinator's per-attempt
// timeouts: dialTimeout bounds the TCP connect of one attempt and
// headerTimeout the wait for a replica's response headers.  Both are
// per-attempt knobs, deliberately distinct from the per-query deadline the
// serving layer applies around the whole fan-out — a slow replica should
// burn one attempt, not the query.
func NewTransport(dialTimeout, headerTimeout time.Duration) *http.Transport {
	return &http.Transport{
		DialContext:           (&net.Dialer{Timeout: dialTimeout}).DialContext,
		ResponseHeaderTimeout: headerTimeout,
		MaxIdleConnsPerHost:   16,
		IdleConnTimeout:       90 * time.Second,
	}
}

// Health snapshots every replica's state.
func (c *Client) Health() []ReplicaHealth {
	out := make([]ReplicaHealth, len(c.health))
	for i, h := range c.health {
		out[i] = h.snapshot()
	}
	return out
}

// Metrics returns the client's counter set (shared when the coordinator
// injected one).
func (c *Client) Metrics() *Metrics { return c.metrics }

// streamState carries forwarding progress across failover attempts.
type streamState struct {
	forwarded int // hits already delivered to the consumer
	lastScore int // tail of the forwarded prefix, for resume verification
	lastSeq   int // (slice-local index)
	lastBound int // monotonic filter over published bounds
}

// Stream implements shard.Provider: it issues the query to the slice's
// replicas, forwarding (hit, bound) events, retrying with jittered backoff,
// failing over mid-stream, and hedging a slow first response.  It returns
// nil on completion or consumer stop, the parent context's error on
// cancellation, and a terminal error — which the consuming merger translates
// into slice quarantine — when every attempt failed.
func (c *Client) Stream(query []byte, opts core.Options, hit func(core.Hit) bool, bound func(int) bool) error {
	parent := opts.Context
	if parent == nil {
		parent = context.Background()
	}
	body, err := c.encodeRequest(query, opts)
	if err != nil {
		return err
	}
	c.metrics.Streams.Add(1)
	st := &streamState{lastScore: math.MinInt, lastBound: math.MaxInt}
	cur := c.pickStart()
	var lastErr error
	for attempt := 0; attempt < c.maxTries; attempt++ {
		if attempt > 0 {
			c.metrics.Retries.Add(1)
			if err := c.policy.Sleep(parent, attempt-1); err != nil {
				return err
			}
		}
		c.metrics.Attempts.Add(1)
		used, err := c.runAttempt(parent, cur, body, st, opts, hit, bound)
		if err == nil || errors.Is(err, errConsumerStopped) {
			c.health[used].ok()
			return nil
		}
		if parent.Err() != nil {
			return parent.Err()
		}
		c.health[used].fail(err)
		lastErr = err
		var pe *permanentError
		if errors.As(err, &pe) {
			c.metrics.SliceFailures.Add(1)
			return fmt.Errorf("remote: slice %d: %w", c.slice, pe.err)
		}
		next := c.nextReplica(used)
		if next != used {
			c.metrics.Failovers.Add(1)
		}
		cur = next
	}
	c.metrics.SliceFailures.Add(1)
	return fmt.Errorf("remote: slice %d: %d attempts across %d replicas failed; last: %w",
		c.slice, c.maxTries, len(c.replicas), lastErr)
}

// encodeRequest rebuilds the wire request from the engine-level search
// arguments: the query decodes back to residue letters and the scheme
// travels by matrix name.
func (c *Client) encodeRequest(query []byte, opts core.Options) ([]byte, error) {
	matrix := opts.Scheme.Matrix
	if matrix == nil {
		return nil, fmt.Errorf("remote: slice %d: options carry no scoring matrix", c.slice)
	}
	req := StreamRequest{
		Query:           matrix.Alphabet().Decode(query),
		Matrix:          matrix.Name(),
		Gap:             opts.Scheme.Gap,
		MinScore:        opts.MinScore,
		MaxResults:      opts.MaxResults,
		DisableLiveBand: opts.DisableLiveBand,
		Strict:          opts.StrictShards,
	}
	return json.Marshal(req)
}

// pickStart chooses the first replica for a new stream: round-robin across
// streams for load spreading, skipping replicas currently marked down.
func (c *Client) pickStart() int {
	n := len(c.replicas)
	start := int(c.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		r := (start + i) % n
		if !c.health[r].down() {
			return r
		}
	}
	return start
}

// nextReplica picks the failover target after a failure on cur: the next
// replica in ring order that is not marked down, falling back to plain ring
// order when every replica is down (so recovered replicas get retried).
func (c *Client) nextReplica(cur int) int {
	n := len(c.replicas)
	if n == 1 {
		return cur
	}
	for i := 1; i < n; i++ {
		r := (cur + i) % n
		if !c.health[r].down() {
			return r
		}
	}
	return (cur + 1) % n
}

// hedgeCandidate picks the replica a hedge request races against primary
// (-1 when there is no distinct candidate).
func (c *Client) hedgeCandidate(primary int) int {
	n := len(c.replicas)
	if n == 1 {
		return -1
	}
	for i := 1; i < n; i++ {
		r := (primary + i) % n
		if !c.health[r].down() {
			return r
		}
	}
	return (primary + 1) % n
}

// hedgeDelay is how long the first attempt may go without a first event
// before a hedge launches.
func (c *Client) hedgeDelay() time.Duration {
	if c.hedgeCfg.fixed > 0 {
		return c.hedgeCfg.fixed
	}
	if d, ok := c.ttfb.p95(); ok {
		if d < minHedgeDelay {
			return minHedgeDelay
		}
		return d
	}
	return defaultHedgeDelay
}

// conn is one opened stream attempt: response body, buffered reader, the
// already-read first event line, and the cancel that aborts the replica's
// server-side search.
type conn struct {
	replica int
	cancel  context.CancelFunc
	body    io.ReadCloser
	br      *bufio.Reader
	first   []byte
}

func (cn *conn) close() {
	cn.cancel()
	cn.body.Close()
}

// runAttempt opens one (possibly hedged) stream and consumes it.  It returns
// the replica that served the attempt for health bookkeeping.
func (c *Client) runAttempt(parent context.Context, primary int, body []byte, st *streamState, opts core.Options, hit func(core.Hit) bool, bound func(int) bool) (int, error) {
	cn, err := c.openHedged(parent, primary, body)
	if err != nil {
		return primary, err
	}
	defer cn.close()
	return cn.replica, c.consume(cn, st, opts, hit, bound)
}

// openResult is one opener goroutine's outcome.
type openResult struct {
	cn      *conn
	err     error
	replica int
	ttfb    time.Duration
}

// openHedged opens a stream on primary, racing a hedge attempt on the next
// healthy replica if the first event has not arrived within hedgeDelay.  The
// first successful open wins; every other in-flight open is cancelled (the
// loser's request context aborts its replica's search) and reaped.
func (c *Client) openHedged(parent context.Context, primary int, body []byte) (*conn, error) {
	secondary := c.hedgeCandidate(primary)
	if c.hedgeCfg.disabled {
		secondary = -1
	}
	results := make(chan openResult, 2)
	type launchRec struct {
		replica int
		cancel  context.CancelFunc
	}
	var launched []launchRec
	launch := func(replica int) {
		actx, cancel := context.WithCancel(parent)
		launched = append(launched, launchRec{replica, cancel})
		go func() {
			t0 := time.Now()
			cn, err := c.open(actx, cancel, replica, body)
			results <- openResult{cn: cn, err: err, replica: replica, ttfb: time.Since(t0)}
		}()
	}
	// reap cancels every loser and drains its result so no opener goroutine
	// blocks and no winning-but-late connection leaks.
	reap := func(winner int, pending int) {
		for _, l := range launched {
			if l.replica != winner {
				l.cancel()
			}
		}
		if pending > 0 {
			go func() {
				for i := 0; i < pending; i++ {
					if r := <-results; r.cn != nil {
						r.cn.close()
					}
				}
			}()
		}
	}

	launch(primary)
	var timerC <-chan time.Time
	if secondary >= 0 {
		timer := time.NewTimer(c.hedgeDelay())
		defer timer.Stop()
		timerC = timer.C
	}
	inflight := 1
	hedged := false
	var firstErr error
	for {
		select {
		case r := <-results:
			inflight--
			if r.err == nil {
				c.ttfb.record(r.ttfb)
				if hedged && r.replica == secondary {
					c.metrics.HedgeWins.Add(1)
				}
				reap(r.replica, inflight)
				return r.cn, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight == 0 {
				// Every launched open failed (a failure before the hedge
				// timer fires is the attempt's failure — the retry loop,
				// not the hedge race, handles it).
				return nil, firstErr
			}
		case <-timerC:
			timerC = nil
			if err := faultpoint.Hit(faultpoint.SiteRemoteHedge, c.replicas[secondary]); err != nil {
				break // hedge suppressed by fault injection
			}
			c.metrics.Hedges.Add(1)
			hedged = true
			launch(secondary)
			inflight++
		case <-parent.Done():
			reap(-1, inflight)
			return nil, parent.Err()
		}
	}
}

// open issues one stream request and reads through the first event line, so
// the hedge race is decided by time-to-first-byte of payload, not by TCP
// accept alone.
func (c *Client) open(ctx context.Context, cancel context.CancelFunc, replica int, body []byte) (*conn, error) {
	addr := c.replicas[replica]
	if err := faultpoint.Hit(faultpoint.SiteRemoteDial, addr); err != nil {
		cancel()
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL(addr)+PathStream, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		cancel()
		err := fmt.Errorf("remote: %s: HTTP %d: %s", addr, resp.StatusCode, strings.TrimSpace(string(msg)))
		if resp.StatusCode == http.StatusBadRequest {
			// The replica rejected the request itself; another replica will
			// reject it identically.
			return nil, &permanentError{err}
		}
		return nil, err
	}
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadBytes('\n')
	if err != nil {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("remote: %s: no first event: %w", addr, err)
	}
	return &conn{replica: replica, cancel: cancel, body: resp.Body, br: br, first: first}, nil
}

// baseURL turns a replica address into a URL prefix.
func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// consume forwards one opened stream's events.  On a resumed attempt the
// first st.forwarded hits replay the already-delivered prefix and are
// skipped; the last skipped hit must equal the last forwarded one or the
// replica is serving a different stream (corruption, version skew) and the
// attempt fails.  Bounds pass a monotonic filter so the replayed prefix's
// high early bounds never reach the consumer.
func (c *Client) consume(cn *conn, st *streamState, opts core.Options, hit func(core.Hit) bool, bound func(int) bool) error {
	addr := c.replicas[cn.replica]
	line := cn.first
	// The replay prefix is what PREVIOUS attempts forwarded; snapshot it
	// before this attempt starts growing the count.
	replay := st.forwarded
	skipped := 0
	for {
		if err := faultpoint.HitBuf(faultpoint.SiteRemoteStream, addr, line); err != nil {
			return err
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("remote: %s sent an undecodable event: %w", addr, err)
		}
		switch ev.E {
		case "b":
			// Conservative even mid-replay: a lower bound only delays
			// releases at the consuming merger, never loses hits.
			if ev.V < st.lastBound {
				st.lastBound = ev.V
				if !bound(ev.V) {
					return errConsumerStopped
				}
			}
		case "h":
			if ev.Seq < 0 || (c.sequences > 0 && ev.Seq >= c.sequences) {
				return fmt.Errorf("remote: %s sent out-of-range sequence index %d (slice has %d)", addr, ev.Seq, c.sequences)
			}
			if skipped < replay {
				skipped++
				if skipped == replay && (ev.Score != st.lastScore || ev.Seq != st.lastSeq) {
					return fmt.Errorf("remote: %s replayed a different stream (resume hit %d is score=%d seq=%d, forwarded tail was score=%d seq=%d)",
						addr, skipped, ev.Score, ev.Seq, st.lastScore, st.lastSeq)
				}
			} else {
				// Monotonicity holds for every hit past the replayed prefix:
				// published bounds are true statements about the slice's
				// deterministic hit sequence, whichever replica made them.
				if ev.Score > st.lastBound {
					return fmt.Errorf("remote: %s broke score monotonicity (hit score %d above bound %d)", addr, ev.Score, st.lastBound)
				}
				st.forwarded++
				st.lastScore, st.lastSeq = ev.Score, ev.Seq
				if ev.Score < st.lastBound {
					st.lastBound = ev.Score // a hit caps everything after it
				}
				h := core.Hit{
					SeqIndex:  ev.Seq + c.offset,
					SeqID:     ev.ID,
					Score:     ev.Score,
					QueryEnd:  ev.QEnd,
					TargetEnd: ev.TEnd,
				}
				if !hit(h) {
					return errConsumerStopped
				}
			}
		case "d":
			if ev.Err != "" {
				return fmt.Errorf("remote: %s: %s", addr, ev.Err)
			}
			if skipped < replay {
				return fmt.Errorf("remote: %s replayed a shorter stream (%d hits, %d already forwarded)", addr, skipped, replay)
			}
			if opts.Stats != nil && ev.Stats != nil {
				opts.Stats.Add(*ev.Stats)
			}
			return nil
		default:
			return fmt.Errorf("remote: %s sent unknown event kind %q", addr, ev.E)
		}
		var err error
		line, err = cn.br.ReadBytes('\n')
		if err != nil {
			return fmt.Errorf("remote: stream from %s broke: %w", addr, err)
		}
	}
}

// ttfbTracker remembers recent time-to-first-event samples and serves their
// p95 as the adaptive hedge trigger.
type ttfbTracker struct {
	mu      sync.Mutex
	samples [ttfbWindow]time.Duration
	n       int // total recorded (ring index = n % ttfbWindow)
}

func (t *ttfbTracker) record(d time.Duration) {
	t.mu.Lock()
	t.samples[t.n%ttfbWindow] = d
	t.n++
	t.mu.Unlock()
}

// p95 returns the 95th percentile of the recorded window, or false when too
// few samples exist to trust it.
func (t *ttfbTracker) p95() (time.Duration, bool) {
	t.mu.Lock()
	n := t.n
	if n > ttfbWindow {
		n = ttfbWindow
	}
	if n < ttfbMinSamples {
		t.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, n)
	copy(buf, t.samples[:n])
	t.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (n*95+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return buf[idx], true
}
