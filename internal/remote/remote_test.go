package remote

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/retry"
	"repro/internal/score"
	"repro/internal/seq"
	"repro/internal/shard"
)

// randomSeqs builds n sequences with GLOBAL ids ("g0", "g1", ...) so a slice
// database over a sub-range reports the same SeqIDs as the full baseline —
// the byte-identity comparison includes identifiers.
func randomSeqs(t *testing.T, rng *rand.Rand, a *seq.Alphabet, n, maxLen int) []seq.Sequence {
	t.Helper()
	letters := a.Letters()
	randStr := func(k int) string {
		b := make([]byte, k)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	motif := randStr(6 + rng.Intn(8))
	out := make([]seq.Sequence, n)
	for i := range out {
		s := randStr(1 + rng.Intn(maxLen))
		if rng.Intn(2) == 0 {
			pos := rng.Intn(len(s) + 1)
			s = s[:pos] + motif + s[pos:]
		}
		sq, err := seq.NewSequence(a, "g"+itoa(i), "", s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = sq
	}
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func dbOf(t *testing.T, a *seq.Alphabet, seqs []seq.Sequence) *seq.Database {
	t.Helper()
	db, err := seq.NewDatabase(a, seqs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// sliceFixture is one slice's serving side: engine, wire server, and its
// replica HTTP endpoints.
type sliceFixture struct {
	servers []*Server
	https   []*httptest.Server
	urls    []string
}

// newSliceFixture serves one slice database from `replicas` endpoints (each
// replica gets its own wire Server over a shared engine, so per-replica
// counters stay separate).
func newSliceFixture(t *testing.T, db *seq.Database, engOpts shard.Options, replicas int) *sliceFixture {
	t.Helper()
	eng, err := shard.NewEngine(db, engOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	f := &sliceFixture{}
	for i := 0; i < replicas; i++ {
		srv := NewServer(eng)
		hs := httptest.NewServer(srv)
		t.Cleanup(hs.Close)
		f.servers = append(f.servers, srv)
		f.https = append(f.https, hs)
		f.urls = append(f.urls, hs.URL)
	}
	return f
}

// fastConfig is a coordinator config with test-friendly retry pacing.
func fastConfig(slices [][]string) Config {
	return Config{
		Slices:       slices,
		MaxAttempts:  3,
		Retry:        retry.Default(3, time.Millisecond, 5*time.Millisecond),
		DisableHedge: true,
	}
}

func openCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	co, err := Open(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	return co
}

// normalize strips alignment endpoints: a sequence can hold several
// co-optimal alignments and which endpoint gets reported depends on index
// traversal order — and, for prefix-partitioned engines, on work stealing
// (shard/steal.go) — so streams agree on (index, id, score, E-value, rank)
// but not necessarily on ends.  Sequence-partitioned engines never steal, so
// identical layouts (replicas of one slice) agree byte for byte, endpoints
// included — the fault tests, which use sequence mode, compare unnormalized.
func normalize(hits []core.Hit) []core.Hit {
	out := make([]core.Hit, len(hits))
	for i, h := range hits {
		h.QueryEnd, h.TargetEnd = 0, 0
		out[i] = h
	}
	return out
}

func collect(eng *shard.Engine, query []byte, opts core.Options) ([]core.Hit, core.Stats, error) {
	var st core.Stats
	opts.Stats = &st
	var hits []core.Hit
	err := eng.Search(query, opts, func(h core.Hit) bool {
		hits = append(hits, h)
		return true
	})
	return hits, st, err
}

// TestCoordinatorEquivalence is the tentpole property: across random
// corpora, slice layouts, replica-internal partition modes and query knobs,
// the coordinator's merged stream equals the single-process engine's stream
// hit for hit — indexes, ids, scores, ranks and E-values — and the
// distributed path itself is deterministic (a repeated query reproduces the
// same stream; endpoints are compared normalized because prefix-mode replicas
// steal work, see shard/steal.go).
func TestCoordinatorEquivalence(t *testing.T) {
	cases := map[string]struct {
		a      *seq.Alphabet
		scheme score.Scheme
	}{
		"dna":     {seq.DNA, score.MustScheme(score.UnitDNA(), -1)},
		"protein": {seq.Protein, score.MustScheme(score.ByName("PAM30"), -10)},
	}
	modes := []shard.PartitionMode{shard.PartitionBySequence, shard.PartitionByPrefix}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(4211))
			letters := cfg.a.Letters()
			for trial := 0; trial < 8; trial++ {
				seqs := randomSeqs(t, rng, cfg.a, 6+rng.Intn(24), 80)
				baseDB := dbOf(t, cfg.a, seqs)
				baseline, err := shard.NewEngine(baseDB, shard.Options{Shards: 2 + rng.Intn(3)})
				if err != nil {
					t.Fatal(err)
				}

				// Random contiguous split into 2-3 slices, each replica
				// engine internally sharded in a random partition mode.
				nSlices := 2 + rng.Intn(2)
				cuts := splitPoints(rng, len(seqs), nSlices)
				var slices [][]string
				for s := 0; s < nSlices; s++ {
					sliceDB := dbOf(t, cfg.a, seqs[cuts[s]:cuts[s+1]])
					fx := newSliceFixture(t, sliceDB, shard.Options{
						Shards:    1 + rng.Intn(3),
						Partition: modes[rng.Intn(2)],
					}, 1)
					slices = append(slices, fx.urls)
				}
				co := openCoordinator(t, fastConfig(slices))

				for q := 0; q < 3; q++ {
					qb := make([]byte, 3+rng.Intn(14))
					for i := range qb {
						qb[i] = letters[rng.Intn(len(letters))]
					}
					query := cfg.a.MustEncode(string(qb))
					opts := core.Options{
						Scheme:   cfg.scheme,
						MinScore: 1 + rng.Intn(10),
					}
					if params, err := score.Params(cfg.scheme.Matrix, nil); err == nil && rng.Intn(2) == 0 {
						ka := params
						opts.KA = &ka
					}
					want, _, err := collect(baseline, query, opts)
					if err != nil {
						t.Fatal(err)
					}
					got, st, err := collect(co.Engine(), query, opts)
					if err != nil {
						t.Fatalf("trial %d query %d: coordinator: %v", trial, q, err)
					}
					if st.Degraded {
						t.Fatalf("trial %d query %d: unexpected degraded stream", trial, q)
					}
					if !reflect.DeepEqual(normalize(got), normalize(want)) {
						t.Fatalf("trial %d query %d: coordinator stream differs\n got: %+v\nwant: %+v", trial, q, got, want)
					}
					again, _, err := collect(co.Engine(), query, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(normalize(again), normalize(got)) {
						t.Fatalf("trial %d query %d: distributed stream is not reproducible\n got: %+v\nthen: %+v", trial, q, got, again)
					}

					// Top-k truncation: the score sequence must equal the
					// full baseline's prefix and every reported hit must be
					// in the full set (per-shard truncation may cut a tie
					// set at a different member, as in the single-process
					// engine's own equivalence property).
					if len(want) > 1 {
						topOpts := opts
						topOpts.MaxResults = 1 + rng.Intn(len(want))
						topK, _, err := collect(co.Engine(), query, topOpts)
						if err != nil {
							t.Fatal(err)
						}
						checkTruncated(t, trial, topK, want, topOpts.MaxResults)
					}
				}
				baseline.Close()
			}
		})
	}
}

// checkTruncated verifies a truncated stream against the full baseline:
// same length, same score sequence, every hit present in the full set.
func checkTruncated(t *testing.T, trial int, got, baseline []core.Hit, k int) {
	t.Helper()
	if k > len(baseline) {
		k = len(baseline)
	}
	if len(got) != k {
		t.Fatalf("trial %d top-k: got %d hits, want %d", trial, len(got), k)
	}
	type key struct {
		seqIndex, score int
		seqID           string
	}
	valid := map[key]int{}
	for _, h := range baseline {
		valid[key{h.SeqIndex, h.Score, h.SeqID}]++
	}
	for i, h := range got {
		if h.Score != baseline[i].Score {
			t.Fatalf("trial %d top-k: score %d at position %d, baseline has %d", trial, h.Score, i, baseline[i].Score)
		}
		if h.Rank != i+1 {
			t.Fatalf("trial %d top-k: rank %d at position %d", trial, h.Rank, i)
		}
		if valid[key{h.SeqIndex, h.Score, h.SeqID}] == 0 {
			t.Fatalf("trial %d top-k: hit %+v not in the full result set", trial, h)
		}
	}
}

// splitPoints cuts n items into k non-empty contiguous ranges.
func splitPoints(rng *rand.Rand, n, k int) []int {
	cuts := []int{0}
	for i := 1; i < k; i++ {
		lo := cuts[i-1] + 1
		hi := n - (k - i)
		cuts = append(cuts, lo+rng.Intn(hi-lo+1))
	}
	return append(cuts, n)
}

// fixture for the fault tests: one slice, two replicas, plus a baseline
// engine over the same corpus for exact comparison.
func faultFixture(t *testing.T, seed int64) (*sliceFixture, *shard.Engine, []byte, core.Options) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := seq.DNA
	seqs := randomSeqs(t, rng, a, 40, 120)
	db := dbOf(t, a, seqs)
	// The baseline shares the slice engines' layout (same db, same shard
	// count), so the comparison below is byte-identical, alignment
	// endpoints included.
	baseline, err := shard.NewEngine(db, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { baseline.Close() })
	fx := newSliceFixture(t, db, shard.Options{Shards: 2}, 2)
	query := a.MustEncode("ACGTACGTACG")
	opts := core.Options{Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 4}
	return fx, baseline, query, opts
}

// TestFailoverMidStream kills replica A's connection mid-stream (after 3
// event lines, via the remote.stream faultpoint) and verifies the resumed
// stream from replica B is exactly the baseline stream: no duplicated and no
// missing hits, and the failover counters moved.
func TestFailoverMidStream(t *testing.T) {
	fx, baseline, query, opts := faultFixture(t, 99)
	want, _, err := collect(baseline, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 4 {
		t.Fatalf("fixture too small: %d baseline hits", len(want))
	}
	co := openCoordinator(t, fastConfig([][]string{fx.urls}))

	defer faultpoint.Reset()
	faultpoint.Enable(faultpoint.SiteRemoteStream, faultpoint.Spec{
		Mode: faultpoint.ModeError, Match: fx.urls[0], After: 3, Times: 1,
	})
	got, st, err := collect(co.Engine(), query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if faultpoint.Fired(faultpoint.SiteRemoteStream) != 1 {
		t.Fatalf("fault did not fire (stream had too few events?)")
	}
	if st.Degraded {
		t.Fatal("failover must complete the stream non-degraded")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("failover stream differs\n got: %+v\nwant: %+v", got, want)
	}
	m := co.Metrics()
	if m.Retries < 1 || m.Failovers < 1 {
		t.Fatalf("expected retry+failover counters to move, got %+v", m)
	}
	health := co.Health()[0].Replicas
	if health[0].TotalFailures < 1 {
		t.Fatalf("replica A should have a recorded failure, got %+v", health[0])
	}
}

// TestDialFaultFailsOver fails replica A's dial outright (the remote.dial
// faultpoint — a dead or unreachable replica at connect time, before any
// event flows) and verifies the query completes from replica B with the exact
// baseline stream and a recorded failure against replica A.  Regression test
// for the faultsite analyzer finding that remote.dial was a registered but
// never-exercised failpoint.
func TestDialFaultFailsOver(t *testing.T) {
	fx, baseline, query, opts := faultFixture(t, 41)
	want, _, err := collect(baseline, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	co := openCoordinator(t, fastConfig([][]string{fx.urls}))

	defer faultpoint.Reset()
	faultpoint.Enable(faultpoint.SiteRemoteDial, faultpoint.Spec{
		Mode: faultpoint.ModeError, Match: fx.urls[0],
	})
	got, st, err := collect(co.Engine(), query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if faultpoint.Fired(faultpoint.SiteRemoteDial) < 1 {
		t.Fatal("dial fault did not fire")
	}
	if st.Degraded {
		t.Fatal("a single dead replica must fail over, not degrade")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream after dial fault differs\n got: %+v\nwant: %+v", got, want)
	}
	health := co.Health()[0].Replicas
	if health[0].TotalFailures < 1 {
		t.Fatalf("replica A should have a recorded dial failure, got %+v", health[0])
	}
}

// TestCorruptWireFailsOver flips a bit in an event line (remote.stream
// corrupt mode); the decoder rejects the line, the attempt fails, and the
// stream still completes identically from the other replica.
func TestCorruptWireFailsOver(t *testing.T) {
	fx, baseline, query, opts := faultFixture(t, 77)
	want, _, err := collect(baseline, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	co := openCoordinator(t, fastConfig([][]string{fx.urls}))

	defer faultpoint.Reset()
	faultpoint.Enable(faultpoint.SiteRemoteStream, faultpoint.Spec{
		Mode: faultpoint.ModeCorrupt, Match: fx.urls[0], After: 1, Times: 1,
	})
	got, st, err := collect(co.Engine(), query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if faultpoint.Fired(faultpoint.SiteRemoteStream) != 1 {
		t.Fatal("corruption did not fire")
	}
	if st.Degraded {
		t.Fatal("corruption must not degrade the stream, only fail the attempt")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream after corruption differs\n got: %+v\nwant: %+v", got, want)
	}
}

// TestDeadSliceDegrades kills every replica of the LAST slice: the
// non-strict query completes as a degraded stream identical to the
// surviving slice's baseline (last-slice offsets don't shift the survivors),
// and a strict query fails outright.
func TestDeadSliceDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := seq.DNA
	seqs := randomSeqs(t, rng, a, 30, 100)
	cut := 18
	liveDB := dbOf(t, a, seqs[:cut])
	deadDB := dbOf(t, a, seqs[cut:])
	liveFx := newSliceFixture(t, liveDB, shard.Options{Shards: 2}, 1)
	deadFx := newSliceFixture(t, deadDB, shard.Options{Shards: 2}, 2)

	survivor, err := shard.NewEngine(liveDB, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()

	cfg := fastConfig([][]string{liveFx.urls, deadFx.urls})
	cfg.MaxAttempts = 2
	co := openCoordinator(t, cfg)
	for _, hs := range deadFx.https {
		hs.Close()
	}

	query := a.MustEncode("ACGTACGTAC")
	opts := core.Options{Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 4}
	want, _, err := collect(survivor, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := collect(co.Engine(), query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded || len(st.ShardErrors) == 0 {
		t.Fatalf("expected degraded stats, got %+v", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("degraded stream differs from survivor baseline\n got: %+v\nwant: %+v", got, want)
	}
	if co.Metrics().SliceFailures < 1 {
		t.Fatalf("expected slice failure counter to move, got %+v", co.Metrics())
	}

	strict := opts
	strict.StrictShards = true
	_, _, err = collect(co.Engine(), query, strict)
	if err == nil {
		t.Fatal("strict query over a dead slice must fail")
	}

	// Readiness surface: the dead slice's replicas must be marked down
	// after the failed attempts.
	downs := 0
	for _, r := range co.Health()[1].Replicas {
		if r.State != "up" {
			downs++
		}
	}
	if downs == 0 {
		t.Fatalf("dead slice reports no unhealthy replicas: %+v", co.Health()[1])
	}
}

// TestHedgeWinsAndCancelsLoser makes replica A's stream endpoint slow: the
// fixed hedge trigger fires, replica B answers first and wins, and A —
// the loser — observes its request context cancelled (its wire server
// counts the cancelled stream).
func TestHedgeWinsAndCancelsLoser(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := seq.DNA
	seqs := randomSeqs(t, rng, a, 25, 100)
	db := dbOf(t, a, seqs)
	eng, err := shard.NewEngine(db, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	srvA := NewServer(eng)
	srvB := NewServer(eng)
	slowA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathStream {
			// Stall the first byte long enough for the hedge to fire; the
			// loser's cancelled context then aborts this handler's search.
			select {
			case <-time.After(400 * time.Millisecond):
			case <-r.Context().Done():
			}
		}
		srvA.ServeHTTP(w, r)
	}))
	defer slowA.Close()
	fastB := httptest.NewServer(srvB)
	defer fastB.Close()

	cfg := Config{
		Slices:      [][]string{{slowA.URL, fastB.URL}},
		MaxAttempts: 3,
		Retry:       retry.Default(3, time.Millisecond, 5*time.Millisecond),
		HedgeAfter:  15 * time.Millisecond,
	}
	co := openCoordinator(t, cfg)

	baseline, err := shard.NewEngine(db, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer baseline.Close()
	query := a.MustEncode("ACGTACGTACG")
	opts := core.Options{Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 4}
	want, _, err := collect(baseline, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := collect(co.Engine(), query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hedged stream differs\n got: %+v\nwant: %+v", got, want)
	}
	m := co.Metrics()
	if m.Hedges < 1 || m.HedgeWins < 1 {
		t.Fatalf("expected a winning hedge, got %+v", m)
	}
	// The loser is cancelled asynchronously; wait for A's handler to
	// observe it.
	deadline := time.Now().Add(5 * time.Second)
	for srvA.Stats().Cancelled == 0 && srvA.Stats().Active > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := srvA.Stats(); st.Active != 0 {
		t.Fatalf("loser stream still active on A: %+v", st)
	}
}

// TestHedgeSuppressedByFaultpoint verifies the remote.hedge error spec keeps
// the hedge from launching.
func TestHedgeSuppressedByFaultpoint(t *testing.T) {
	fx, _, query, opts := faultFixture(t, 31)
	cfg := fastConfig([][]string{fx.urls})
	cfg.DisableHedge = false
	cfg.HedgeAfter = time.Nanosecond // would hedge immediately
	co := openCoordinator(t, cfg)

	defer faultpoint.Reset()
	faultpoint.Enable(faultpoint.SiteRemoteHedge, faultpoint.Spec{Mode: faultpoint.ModeError})
	if _, _, err := collect(co.Engine(), query, opts); err != nil {
		t.Fatal(err)
	}
	if m := co.Metrics(); m.Hedges != 0 {
		t.Fatalf("hedge should have been suppressed, got %+v", m)
	}
	if faultpoint.Fired(faultpoint.SiteRemoteHedge) == 0 {
		t.Fatal("hedge faultpoint never consulted")
	}
}

// TestCancellationPropagates covers both early-stop paths: MaxResults
// truncation and consumer-context cancellation must drain the replicas'
// server-side streams rather than leaving searches running.
func TestCancellationPropagates(t *testing.T) {
	fx, _, query, opts := faultFixture(t, 53)
	co := openCoordinator(t, fastConfig([][]string{fx.urls}))

	topK := opts
	topK.MaxResults = 2
	hits, _, err := collect(co.Engine(), query, topK)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("MaxResults=2 returned %d hits", len(hits))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cOpts := opts
	cOpts.Context = ctx
	n := 0
	err = co.Engine().Search(query, cOpts, func(core.Hit) bool {
		n++
		cancel()
		return true
	})
	// A tiny corpus can finish before the cancellation lands, so a nil
	// error is acceptable; anything else must be the context's error.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search returned %v after %d hits", err, n)
	}
	cancel()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		active := int64(0)
		for _, s := range fx.servers {
			active += s.Stats().Active
		}
		if active == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("replica streams still active after cancellation")
}

// TestStreamBadRequestIsPermanent verifies a replica-rejected request fails
// fast (no attempt-budget burn) with the replica's complaint.
func TestStreamBadRequestIsPermanent(t *testing.T) {
	fx, _, query, opts := faultFixture(t, 13)
	co := openCoordinator(t, fastConfig([][]string{fx.urls}))
	bad := opts
	bad.MinScore = 0 // engine-level validation happens replica-side too
	_, _, err := collect(co.Engine(), query, bad)
	if err == nil {
		t.Fatal("expected error")
	}
	if m := co.Metrics(); m.Retries != 0 {
		t.Fatalf("permanent failure should not retry, got %+v", m)
	}
	if !strings.Contains(err.Error(), "min_score") {
		t.Fatalf("error should carry the replica's complaint, got %v", err)
	}
}

// TestConcurrentFanOutStress drives concurrent queries with mid-stream
// disconnects through the coordinator; run with -race this exercises the
// hedge/failover/cancel plumbing for data races.
func TestConcurrentFanOutStress(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := seq.DNA
	seqs := randomSeqs(t, rng, a, 36, 90)
	cut := 20
	fx1 := newSliceFixture(t, dbOf(t, a, seqs[:cut]), shard.Options{Shards: 2}, 2)
	fx2 := newSliceFixture(t, dbOf(t, a, seqs[cut:]), shard.Options{Shards: 2}, 2)
	baseline, err := shard.NewEngine(dbOf(t, a, seqs), shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer baseline.Close()

	cfg := fastConfig([][]string{fx1.urls, fx2.urls})
	cfg.DisableHedge = false
	cfg.HedgeAfter = 2 * time.Millisecond // hedge aggressively under -race
	co := openCoordinator(t, cfg)

	query := a.MustEncode("ACGTACGTAC")
	opts := core.Options{Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 4}
	want, _, err := collect(baseline, query, opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for q := 0; q < 5; q++ {
				switch (g + q) % 3 {
				case 0: // full stream, must match baseline
					got, _, err := collect(co.Engine(), query, opts)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(normalize(got), normalize(want)) {
						errs <- errorsNew("concurrent stream diverged")
						return
					}
				case 1: // top-k early stop
					topK := opts
					topK.MaxResults = 1 + q
					if _, _, err := collect(co.Engine(), query, topK); err != nil {
						errs <- err
						return
					}
				default: // mid-stream disconnect
					ctx, cancel := context.WithCancel(context.Background())
					cOpts := opts
					cOpts.Context = ctx
					err := co.Engine().Search(query, cOpts, func(core.Hit) bool {
						cancel()
						return true
					})
					cancel()
					if err != nil && !errors.Is(err, context.Canceled) {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func errorsNew(s string) error { return errors.New(s) }
