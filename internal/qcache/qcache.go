// Package qcache is the cross-query result cache of the warm batch engine:
// a sharded, size-bounded LRU that maps (encoded query residues, normalized
// search options) to the completed decreasing-score hit stream the engine
// produced for them, so identical queries arriving again are replayed without
// touching the index or running a single DP column.
//
// The paper's online search amortises nothing across queries — every request
// pays the full banded best-first sweep even when the stream of a previous,
// identical request is sitting in memory.  A cached stream is valid only for
// the exact index state that produced it, so the key carries the engine's
// index generation (Key.Gen): every insert, delete or compaction bumps the
// generation, making entries for older generations unreachable — they age out
// of the LRU naturally instead of requiring a global flush.  Within one
// generation the index is immutable and there is no invalidation problem,
// only a memory budget, which the LRU enforces in bytes.
//
// The cache also owns the single-flight table used by internal/engine: when
// N identical queries are in flight concurrently, one leader runs the search
// while the other N-1 wait on its completion and then replay the freshly
// inserted entry, so a thundering herd of duplicates costs one DP sweep.
//
// Entries remember whether the stored stream ran to exhaustion (Complete) or
// was truncated by the query's MaxResults.  A complete entry serves any
// top-k request by truncation; a truncated entry with k hits serves any
// request for at most k results.  MaxResults is therefore deliberately NOT
// part of the key.
package qcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/score"
)

// numShards is the lock-striping factor of the LRU.  Sixteen shards keep
// lock contention negligible at the engine's batch-worker counts.
const numShards = 16

// Key identifies one cached result stream.  Two searches with equal keys
// report identical hit streams over the same (immutable) index, modulo
// MaxResults truncation, which the entry handles (see Entry.Complete).
//
// The matrix is keyed by pointer identity rather than name: built-in
// matrices are package-level singletons, and pointer identity is the only
// equality that cannot confuse two custom matrices sharing a name.
type Key struct {
	// Query is the encoded residue string.
	Query string
	// Gen is the index generation the stream was produced against.  Mutable
	// engines bump it on every write, so stale streams become unreachable
	// without a flush; immutable engines leave it zero.
	Gen uint64
	// Matrix and Gap pin the scoring scheme.
	Matrix *score.Matrix
	Gap    int
	// MinScore is the reporting threshold.
	MinScore int
	// KA pins the E-value statistics attached to hits (zero when HasKA is
	// false); two requests differing only here produce different Hit.EValue
	// fields, so they must not share an entry.
	KA    score.KarlinAltschul
	HasKA bool
	// DisableLiveBand and ReferenceKernel do not change results, but they
	// are kept in the key so ablation runs never serve each other's streams
	// (their Stats-shaped expectations differ).
	DisableLiveBand bool
	ReferenceKernel bool
}

// NewKey derives the cache key for a search of residues under opts against
// index generation gen.  MaxResults, Stats, Scratch and the cancellation
// fields are intentionally excluded: they do not change which hits a
// completed stream contains.
func NewKey(residues []byte, opts core.Options, gen uint64) Key {
	k := Key{
		Query:           string(residues),
		Gen:             gen,
		Matrix:          opts.Scheme.Matrix,
		Gap:             opts.Scheme.Gap,
		MinScore:        opts.MinScore,
		DisableLiveBand: opts.DisableLiveBand,
		ReferenceKernel: opts.ReferenceKernel,
	}
	if opts.KA != nil {
		k.KA = *opts.KA
		k.HasKA = true
	}
	return k
}

// shardIndex hashes the key onto a lock stripe (FNV-1a over the query bytes
// and the scalar fields; the matrix pointer is deliberately left out — query
// bytes dominate and pointers do not hash portably).
func (k *Key) shardIndex() int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.Query); i++ {
		h = (h ^ uint64(k.Query[i])) * prime64
	}
	h = (h ^ uint64(uint(k.MinScore))) * prime64
	h = (h ^ uint64(uint(k.Gap))) * prime64
	h = (h ^ k.Gen) * prime64
	return int(h % numShards)
}

// Entry is one cached result stream.  Hits is immutable after insertion and
// may be read concurrently by any number of replays; ranks are the stream
// positions 1..len(Hits), so a prefix of Hits is itself a valid stream.
type Entry struct {
	// Hits is the stored stream, in the decreasing-score order the engine
	// emitted it.
	Hits []core.Hit
	// Complete reports that the stream ran to exhaustion: the search ended
	// because the priority queue drained or every sequence was reported, not
	// because MaxResults truncated it.  A complete entry answers any top-k
	// request; an incomplete one only requests for at most len(Hits) hits.
	Complete bool

	size int64
}

const (
	// hitSize approximates one core.Hit's fixed footprint (struct rounded
	// up, excluding the SeqID string bytes — see HitSize).
	hitSize = 96
	// entryOverhead covers the map bucket, list element and entry header.
	entryOverhead = 256
)

// HitSize approximates one hit's resident bytes in a cached stream.  Leaders
// accumulating a candidate stream use it to stop buffering early once the
// stream can no longer fit the cache (see Cache.MaxEntryBytes).
func HitSize(h *core.Hit) int64 { return hitSize + int64(len(h.SeqID)) }

// entrySize approximates an entry's resident bytes: the fixed Hit struct
// footprint plus the sequence-identifier strings and the key's query copy.
func entrySize(key *Key, e *Entry) int64 {
	n := int64(entryOverhead) + int64(len(key.Query))
	for i := range e.Hits {
		n += HitSize(&e.Hits[i])
	}
	return n
}

// Serves reports whether the entry can answer a request for maxResults hits
// (0 = all qualifying hits).
func (e *Entry) Serves(maxResults int) bool {
	if e.Complete {
		return true
	}
	return maxResults > 0 && maxResults <= len(e.Hits)
}

// cacheShard is one LRU stripe: a map from key to list element, with the
// list ordered most-recently-used first.
type cacheShard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	order    *list.List // of *shardEntry, front = most recent
	byKey    map[Key]*list.Element
}

type shardEntry struct {
	key   Key
	entry *Entry
}

// Stats is a point-in-time snapshot of the cache counters (exposed through
// engine.Metrics and /metrics).
type Stats struct {
	// Entries and Bytes describe the current residency; MaxBytes the budget.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
	// Hits and Misses count Get outcomes; HitRate is Hits/(Hits+Misses).
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	// Insertions counts fresh entries; Replacements counts Puts that
	// overwrote an existing entry for the same key (previously folded into
	// Insertions, which overstated how many distinct streams were admitted);
	// Evictions counts LRU removals.
	Insertions   int64 `json:"insertions"`
	Replacements int64 `json:"replacements"`
	Evictions    int64 `json:"evictions"`
	// Oversized counts streams refused admission because they exceeded the
	// per-entry budget (MaxEntryBytes); before this counter existed they were
	// dropped silently.
	Oversized int64 `json:"oversized"`
	// InjectedFaults counts Get calls failed by an active faultpoint drill
	// (OASIS_FAILPOINTS on qcache.get).  They degrade to index searches but
	// are NOT counted as misses, so HitRate stays meaningful during drills.
	InjectedFaults int64 `json:"injected_faults"`
	// FlightWaits counts searches that waited on a concurrent identical
	// leader instead of running their own DP sweep (single-flight).
	FlightWaits int64 `json:"flight_waits"`
}

// Cache is the sharded LRU plus the single-flight table.  All methods are
// safe for concurrent use.
type Cache struct {
	shards   [numShards]cacheShard
	maxEntry int64 // per-entry admission budget (a fraction of one stripe)

	hits           atomic.Int64
	misses         atomic.Int64
	insertions     atomic.Int64
	replacements   atomic.Int64
	evictions      atomic.Int64
	oversized      atomic.Int64
	injectedFaults atomic.Int64
	flightWaits    atomic.Int64

	flightMu sync.Mutex
	flight   map[Key]chan struct{}
}

// DefaultEntryFraction is the default per-entry admission budget as a
// fraction of one lock stripe.  A single stream filling a whole stripe would
// evict every other entry on that stripe for one giant, rarely-re-asked
// query; half a stripe keeps at least two resident.
const DefaultEntryFraction = 0.5

// New builds a cache bounded at maxBytes total (split evenly across the lock
// stripes) with the default per-entry admission fraction.  maxBytes must be
// positive; engines treat a zero budget as "cache disabled" and never
// construct one.
func New(maxBytes int64) *Cache {
	return NewWithFraction(maxBytes, DefaultEntryFraction)
}

// NewWithFraction is New with an explicit per-entry admission budget:
// streams larger than entryFraction of one lock stripe are refused (counted
// in Stats.Oversized), and MaxEntryBytes reports the budget so leaders stop
// buffering a too-large stream early instead of accumulating it to the limit
// first.  Fractions outside (0, 1] fall back to the default.
func NewWithFraction(maxBytes int64, entryFraction float64) *Cache {
	if entryFraction <= 0 || entryFraction > 1 {
		entryFraction = DefaultEntryFraction
	}
	c := &Cache{flight: make(map[Key]chan struct{})}
	per := maxBytes / numShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].maxBytes = per
		c.shards[i].order = list.New()
		c.shards[i].byKey = make(map[Key]*list.Element)
	}
	c.maxEntry = int64(float64(per) * entryFraction)
	if c.maxEntry < 1 {
		c.maxEntry = 1
	}
	return c
}

// Get returns the cached entry for key when one exists that can serve a
// request for maxResults hits (see Entry.Serves), marking it most recently
// used.  The returned entry is shared and must be treated as immutable.
func (c *Cache) Get(key Key, maxResults int) (*Entry, bool) {
	// An injected cache fault degrades to a miss-shaped answer: the query
	// falls through to the index, which is always correct (just slower).  It
	// is counted separately from real misses so fault drills don't corrupt
	// the hit rate operators alert on.
	if faultpoint.Hit(faultpoint.SiteCacheGet, "get") != nil {
		c.injectedFaults.Add(1)
		return nil, false
	}
	sh := &c.shards[key.shardIndex()]
	sh.mu.Lock()
	el, ok := sh.byKey[key]
	if ok {
		se := el.Value.(*shardEntry)
		if se.entry.Serves(maxResults) {
			sh.order.MoveToFront(el)
			sh.mu.Unlock()
			c.hits.Add(1)
			return se.entry, true
		}
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// MaxEntryBytes returns the per-entry admission budget (the configured
// fraction of one lock stripe).  Callers accumulating a candidate stream
// stop buffering once its approximate size (HitSize per hit) exceeds this,
// instead of holding a stream Put would refuse anyway.
func (c *Cache) MaxEntryBytes() int64 { return c.maxEntry }

// Put inserts (or replaces) the stream for key and evicts least-recently
// used entries until the stripe fits its budget.  Streams larger than the
// per-entry budget are refused and counted in Stats.Oversized.  The caller
// transfers ownership of entry.Hits: it must not be mutated afterwards.
func (c *Cache) Put(key Key, entry *Entry) {
	entry.size = entrySize(&key, entry)
	sh := &c.shards[key.shardIndex()]
	if entry.size > c.maxEntry {
		c.oversized.Add(1)
		return
	}
	sh.mu.Lock()
	replaced := false
	if el, ok := sh.byKey[key]; ok {
		old := el.Value.(*shardEntry)
		sh.bytes -= old.entry.size
		old.entry = entry
		sh.bytes += entry.size
		sh.order.MoveToFront(el)
		replaced = true
	} else {
		sh.byKey[key] = sh.order.PushFront(&shardEntry{key: key, entry: entry})
		sh.bytes += entry.size
	}
	evicted := 0
	for sh.bytes > sh.maxBytes {
		back := sh.order.Back()
		se := back.Value.(*shardEntry)
		sh.order.Remove(back)
		delete(sh.byKey, se.key)
		sh.bytes -= se.entry.size
		evicted++
	}
	sh.mu.Unlock()
	if replaced {
		c.replacements.Add(1)
	} else {
		c.insertions.Add(1)
	}
	c.evictions.Add(int64(evicted))
}

// Begin joins the single-flight group for key.  The first caller becomes the
// leader (leader == true) and MUST call End(key) when its search finishes,
// whether or not it inserted an entry.  Every other caller gets leader ==
// false and a channel that closes at the leader's End; it should then
// re-check the cache (a failed leader inserts nothing, and the next Begin
// elects a new leader).
func (c *Cache) Begin(key Key) (leader bool, done <-chan struct{}) {
	c.flightMu.Lock()
	defer c.flightMu.Unlock()
	if ch, ok := c.flight[key]; ok {
		c.flightWaits.Add(1)
		return false, ch
	}
	ch := make(chan struct{})
	c.flight[key] = ch
	return true, ch
}

// End completes the leader's flight for key, waking every waiter.
func (c *Cache) End(key Key) {
	c.flightMu.Lock()
	ch := c.flight[key]
	delete(c.flight, key)
	c.flightMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Insertions:     c.insertions.Load(),
		Replacements:   c.replacements.Load(),
		Evictions:      c.evictions.Load(),
		Oversized:      c.oversized.Load(),
		InjectedFaults: c.injectedFaults.Load(),
		FlightWaits:    c.flightWaits.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.byKey)
		st.Bytes += sh.bytes
		st.MaxBytes += sh.maxBytes
		sh.mu.Unlock()
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}
