package qcache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/score"
)

func testKey(query string, minScore int) Key {
	return NewKey([]byte(query), core.Options{
		Scheme:   score.MustScheme(score.ByName("PAM30"), -10),
		MinScore: minScore,
	}, 0)
}

func testEntry(nHits int, complete bool) *Entry {
	e := &Entry{Complete: complete}
	for i := 0; i < nHits; i++ {
		e.Hits = append(e.Hits, core.Hit{SeqIndex: i, SeqID: fmt.Sprintf("S%d", i), Score: 100 - i, Rank: i + 1})
	}
	return e
}

func TestKeyNormalization(t *testing.T) {
	scheme := score.MustScheme(score.ByName("PAM30"), -10)
	ka, err := score.Params(scheme.Matrix, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st core.Stats
	base := core.Options{Scheme: scheme, MinScore: 7, KA: &ka}
	// MaxResults, Stats, Scratch and cancellation knobs must not split keys.
	kaCopy := ka
	same := core.Options{Scheme: scheme, MinScore: 7, KA: &kaCopy, MaxResults: 3, Stats: &st, CancelPollColumns: 8}
	if NewKey([]byte("AC"), base, 0) != NewKey([]byte("AC"), same, 0) {
		t.Fatal("result-equivalent options produced different keys")
	}
	// Everything result-affecting must split keys.
	for name, other := range map[string]core.Options{
		"min-score": {Scheme: scheme, MinScore: 8, KA: &ka},
		"no-ka":     {Scheme: scheme, MinScore: 7},
		"gap":       {Scheme: score.MustScheme(score.ByName("PAM30"), -11), MinScore: 7, KA: &ka},
		"matrix":    {Scheme: score.MustScheme(score.ByName("BLOSUM62"), -10), MinScore: 7, KA: &ka},
	} {
		if NewKey([]byte("AC"), base, 0) == NewKey([]byte("AC"), other, 0) {
			t.Fatalf("%s: result-affecting option did not change the key", name)
		}
	}
	if NewKey([]byte("AC"), base, 0) == NewKey([]byte("AD"), base, 0) {
		t.Fatal("different queries share a key")
	}
	// A generation bump must split keys: streams from an older index state
	// become unreachable instead of being served stale.
	if NewKey([]byte("AC"), base, 1) == NewKey([]byte("AC"), base, 2) {
		t.Fatal("different index generations share a key")
	}
}

func TestGetServesTruncationRules(t *testing.T) {
	c := New(1 << 20)
	complete := testKey("COMPLETE", 5)
	c.Put(complete, testEntry(4, true))
	truncated := testKey("TRUNCATED", 5)
	c.Put(truncated, testEntry(4, false))

	// A complete entry serves any k, including "all".
	for _, k := range []int{0, 1, 4, 10} {
		if _, ok := c.Get(complete, k); !ok {
			t.Fatalf("complete entry refused maxResults=%d", k)
		}
	}
	// A truncated 4-hit entry serves only 1..4.
	for k, want := range map[int]bool{0: false, 1: true, 4: true, 5: false} {
		if _, ok := c.Get(truncated, k); ok != want {
			t.Fatalf("truncated entry Get(maxResults=%d) = %v, want %v", k, ok, want)
		}
	}
	// Re-putting with a complete stream upgrades the entry.
	c.Put(truncated, testEntry(6, true))
	if e, ok := c.Get(truncated, 0); !ok || len(e.Hits) != 6 {
		t.Fatalf("upgraded entry Get = (%v, %v)", e, ok)
	}
}

func TestLRUEvictionBoundsBytes(t *testing.T) {
	budget := int64(64 << 10)
	c := New(budget)
	for i := 0; i < 4096; i++ {
		c.Put(testKey(fmt.Sprintf("Q%04d", i), 5), testEntry(8, true))
	}
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("cache holds %d bytes over its %d budget", st.Bytes, st.MaxBytes)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overfilling: %+v", st)
	}
	if st.Entries == 0 {
		t.Fatalf("eviction emptied the cache entirely: %+v", st)
	}
	// Oversized entries are refused outright rather than wiping the stripe.
	big := testEntry(10000, true)
	c.Put(testKey("HUGE", 5), big)
	if _, ok := c.Get(testKey("HUGE", 5), 0); ok {
		t.Fatal("an entry larger than the stripe budget was cached")
	}
}

func TestPutCounters(t *testing.T) {
	c := New(1 << 20)
	k := testKey("COUNT", 5)
	c.Put(k, testEntry(2, false))
	c.Put(k, testEntry(4, true)) // same key: a replacement, not an insertion
	c.Put(testKey("OTHER", 5), testEntry(2, true))
	st := c.Stats()
	if st.Insertions != 2 {
		t.Fatalf("Insertions = %d, want 2 (replacement counted as insertion?)", st.Insertions)
	}
	if st.Replacements != 1 {
		t.Fatalf("Replacements = %d, want 1", st.Replacements)
	}
	// An oversized stream is refused and counted, leaving residency alone.
	before := c.Stats().Bytes
	c.Put(testKey("HUGE", 5), testEntry(100000, true))
	st = c.Stats()
	if st.Oversized != 1 {
		t.Fatalf("Oversized = %d, want 1", st.Oversized)
	}
	if st.Bytes != before {
		t.Fatalf("oversized Put changed residency: %d -> %d", before, st.Bytes)
	}
	if st.Insertions != 2 || st.Replacements != 1 {
		t.Fatalf("oversized Put leaked into Insertions/Replacements: %+v", st)
	}
}

func TestEntryFractionBoundsAdmission(t *testing.T) {
	budget := int64(numShards * 100 << 10)
	half := NewWithFraction(budget, 0.5)
	full := NewWithFraction(budget, 1.0)
	if half.MaxEntryBytes() >= full.MaxEntryBytes() {
		t.Fatalf("fraction 0.5 budget %d not below 1.0 budget %d", half.MaxEntryBytes(), full.MaxEntryBytes())
	}
	if want := full.MaxEntryBytes() / 2; half.MaxEntryBytes() != want {
		t.Fatalf("fraction 0.5 budget = %d, want %d", half.MaxEntryBytes(), want)
	}
	// A stream between the two budgets is admitted at 1.0 but refused at 0.5.
	nHits := int(half.MaxEntryBytes()/hitSize) + 10
	k := testKey("MID", 5)
	half.Put(k, testEntry(nHits, true))
	full.Put(k, testEntry(nHits, true))
	if _, ok := half.Get(k, 0); ok {
		t.Fatal("stream above the fraction budget was admitted")
	}
	if _, ok := full.Get(k, 0); !ok {
		t.Fatal("stream within the full-stripe budget was refused")
	}
	if half.Stats().Oversized != 1 {
		t.Fatalf("Oversized = %d, want 1", half.Stats().Oversized)
	}
	// Out-of-range fractions fall back to the default rather than disabling
	// admission or overflowing a stripe.
	if got := NewWithFraction(budget, -1).MaxEntryBytes(); got != New(budget).MaxEntryBytes() {
		t.Fatalf("invalid fraction budget = %d, want default %d", got, New(budget).MaxEntryBytes())
	}
}

func TestLRUKeepsRecentlyUsed(t *testing.T) {
	c := New(numShards * 2048) // tiny: a few entries per stripe
	hot := testKey("HOT", 5)
	c.Put(hot, testEntry(2, true))
	for i := 0; i < 512; i++ {
		if _, ok := c.Get(hot, 0); !ok {
			t.Fatalf("hot entry evicted after %d inserts despite constant use", i)
		}
		c.Put(testKey(fmt.Sprintf("COLD%04d", i), 5), testEntry(2, true))
	}
}

// Injected cache faults must show up in InjectedFaults, not Misses: a fault
// drill that failed every Get used to crater the reported hit rate even
// though the cache itself was healthy.
func TestInjectedFaultsNotCountedAsMisses(t *testing.T) {
	defer faultpoint.Reset()
	c := New(1 << 20)
	k := testKey("FAULT", 5)
	c.Put(k, testEntry(2, true))
	if _, ok := c.Get(k, 0); !ok {
		t.Fatal("warm entry missed before the drill")
	}
	faultpoint.Enable(faultpoint.SiteCacheGet, faultpoint.Spec{Mode: faultpoint.ModeError})
	for i := 0; i < 10; i++ {
		if _, ok := c.Get(k, 0); ok {
			t.Fatal("Get served during an error drill")
		}
	}
	faultpoint.Reset()
	st := c.Stats()
	if st.InjectedFaults != 10 {
		t.Fatalf("InjectedFaults = %d, want 10", st.InjectedFaults)
	}
	if st.Misses != 0 {
		t.Fatalf("injected faults leaked into Misses (%d): drills corrupt the hit rate", st.Misses)
	}
	if st.HitRate != 1 {
		t.Fatalf("HitRate = %v during drill, want 1 (only the one real hit counted)", st.HitRate)
	}
}

func TestSingleFlight(t *testing.T) {
	c := New(1 << 20)
	key := testKey("FLIGHT", 5)
	leader, _ := c.Begin(key)
	if !leader {
		t.Fatal("first Begin is not the leader")
	}
	follower, done := c.Begin(key)
	if follower {
		t.Fatal("second Begin also elected leader")
	}
	select {
	case <-done:
		t.Fatal("waiter woke before the leader finished")
	default:
	}
	c.End(key)
	<-done // must be closed now
	// After End, the next Begin elects a fresh leader.
	leader2, _ := c.Begin(key)
	if !leader2 {
		t.Fatal("Begin after End did not elect a leader")
	}
	c.End(key)
	if got := c.Stats().FlightWaits; got != 1 {
		t.Fatalf("FlightWaits = %d, want 1", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(256 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				key := testKey(fmt.Sprintf("Q%d", (g*31+i)%64), 5)
				if e, ok := c.Get(key, 0); ok {
					if len(e.Hits) == 0 || e.Hits[0].Rank != 1 {
						t.Errorf("corrupt entry %+v", e.Hits)
						return
					}
					continue
				}
				if leader, done := c.Begin(key); leader {
					c.Put(key, testEntry(3, true))
					c.End(key)
				} else {
					<-done
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Insertions == 0 {
		t.Fatalf("concurrent workload saw no cache traffic: %+v", st)
	}
}
