package shard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
)

// merger performs the k-way, score-ordered online merge of per-shard hit
// streams.  A buffered hit is released as soon as its score is STRICTLY
// above the frontier bound of every shard that is still running — including
// its own, whose bound caps any hit it could still produce.  Bounds only
// decrease, so the released stream is non-increasing in score.
//
// Strictness matters for determinism: with a >= release rule, a hit could be
// released while another shard might still surface an EQUAL score, so the
// interleaving of ties — and, under MaxResults truncation, the tie that
// makes the cut — depended on goroutine timing.  Waiting until every
// unfinished shard's bound is below the score gathers the complete tie set
// in the pending heap first, and the heap then releases ties by global
// sequence index, making the emitted (sequence, score) stream reproducible
// run to run.
//
// With deduplication enabled (prefix-partitioned subtree sharding, where a
// sequence's suffixes spread across shards), a released hit whose sequence
// was already emitted is dropped.  The release rule makes the drop safe: a
// duplicate's better copy either was emitted earlier (released streams are
// non-increasing) or is still capped by its shard's bound, which would have
// blocked the duplicate's release.
type merger struct {
	bounds     []int     // latest frontier bound per shard
	done       []bool    // shard finished (bound is effectively -inf)
	dedup      *dedupSet // emitted sequences (nil when streams cannot overlap)
	pending    hitQueue
	shardStats []core.Stats
	opts       core.Options
	report     func(core.Hit) bool
	totalRes   int64 // live residue count for E-values
	queryLen   int
	// drop filters tombstoned sequences out of the merged stream (nil when
	// the engine has no deletions in flight).
	drop func(seqIndex int) bool
	// stopAt is the all-sequences early-stop count: once stopAt distinct
	// sequences have been emitted nothing the shards still hold can survive,
	// so the stream ends.  It is the LIVE (non-tombstoned) sequence count —
	// using the static global count would over-wait forever on a corpus with
	// deletions.  0 disables the stop.
	stopAt   int
	nEmitted int
	nDone    int
	err      error
	// onBound, when set, publishes the merged stream's own decreasing upper
	// bound: after each event, the strongest score any FUTURE emission can
	// carry (the max bound among unfinished shards, which also caps every
	// buffered pending hit — a pending hit above every unfinished bound would
	// have been released).  This is what lets a shard server re-export its
	// locally merged stream as one more boundable provider stream for a
	// coordinator (Engine.SearchBounded).  Returning false stops the stream
	// like report returning false.
	onBound   func(bound int) bool
	lastBound int
	// degraded lists shards quarantined mid-query: their worker failed with a
	// non-fatal error, their bound was dropped and their un-emitted pending
	// hits purged, and the stream completed from the survivors.
	degraded []core.ShardError
}

// newMerger builds a merger over len(bounds) shards, each starting at its
// given initial frontier bound.  A non-nil dedup (acquired for the global
// sequence count) enables sequence-level deduplication.
func newMerger(bounds []int, opts core.Options, totalRes int64, queryLen int, dedup *dedupSet, report func(core.Hit) bool) *merger {
	m := &merger{
		bounds:     bounds,
		done:       make([]bool, len(bounds)),
		dedup:      dedup,
		shardStats: make([]core.Stats, 0, len(bounds)),
		opts:       opts,
		report:     report,
		totalRes:   totalRes,
		queryLen:   queryLen,
		lastBound:  int(^uint(0) >> 1), // MaxInt
	}
	if dedup != nil {
		m.stopAt = dedup.n
	}
	return m
}

// dedupSet tracks emitted sequences across one merged query.  Like
// core.Scratch's reported flags, it is pooled by the engine and reset in
// O(emitted hits) via the touched list, so a warm prefix-mode engine does
// not pay an O(sequences) allocation per query.
type dedupSet struct {
	seen    []bool
	touched []int
	n       int // sequences covered by the current query
}

// acquire prepares the set for a query over n global sequences: flags left
// by the previous query are cleared and the flag array grown as needed.
func (d *dedupSet) acquire(n int) {
	for _, i := range d.touched {
		if i < len(d.seen) {
			d.seen[i] = false
		}
	}
	d.touched = d.touched[:0]
	d.n = n
	if len(d.seen) < n {
		d.seen = make([]bool, n)
	}
}

// markNew records a sequence's first emission, reporting false when the
// sequence was already emitted.
//
//oasis:hotpath
func (d *dedupSet) markNew(seqIndex int) bool {
	if d.seen[seqIndex] {
		return false
	}
	d.seen[seqIndex] = true
	d.touched = append(d.touched, seqIndex) //oasis:allow-alloc amortized touched-list growth, reset reuses capacity
	return true
}

// run consumes shard events until every shard has completed, emitting hits
// whenever the bounds allow.  When the consumer stops the stream (report
// returns false or MaxResults is reached) it flips cancelled and keeps
// draining so no shard goroutine stays blocked on a send.
func (m *merger) run(events <-chan event, cancelled *atomic.Bool) error {
	stopped := false
	for m.nDone < len(m.bounds) {
		ev := <-events
		switch ev.kind {
		case evBound:
			if ev.bound < m.bounds[ev.shard] {
				m.bounds[ev.shard] = ev.bound
			}
		case evHit:
			// The hit itself caps everything the shard still holds.
			if ev.hit.Score < m.bounds[ev.shard] {
				m.bounds[ev.shard] = ev.hit.Score
			}
			if !stopped {
				m.pending.push(shardHit{Hit: ev.hit, shard: ev.shard})
			}
		case evDone:
			m.done[ev.shard] = true
			m.nDone++
			m.shardStats = append(m.shardStats, ev.stats)
			if ev.err != nil && m.err == nil {
				if quarantinable(ev.err, m.opts) {
					// Quarantine: drop the shard's bound (done above), purge
					// its buffered hits so only survivor results flow, and
					// keep merging.  The stream stays score-ordered; the
					// caller sees Degraded with this detail.
					m.degraded = append(m.degraded, core.ShardError{
						Shard: ev.shard, Err: ev.err.Error(),
					})
					m.purgeShard(ev.shard)
				} else {
					m.err = ev.err
					stopped = true
					cancelled.Store(true)
				}
			}
		}
		if !stopped && !m.emitReady() {
			stopped = true
			cancelled.Store(true)
		}
		if !stopped && !m.publishBound() {
			stopped = true
			cancelled.Store(true)
		}
	}
	if m.err == nil && len(m.degraded) == len(m.bounds) {
		// No survivors: degradation has nothing to serve from.
		m.err = fmt.Errorf("shard: every shard failed; first: %s", m.degraded[0].Err)
	}
	return m.err
}

// quarantinable reports whether a shard failure should quarantine the shard
// (degraded completion from the survivors) rather than fail the query:
// strict mode fails everything, and context errors stay fatal because they
// mean the query itself is being cancelled, not that one shard broke.
func quarantinable(err error, opts core.Options) bool {
	if opts.StrictShards {
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// purgeShard drops the un-emitted pending hits of a quarantined shard: the
// degraded stream must contain exactly the surviving shards' results (hits
// already released to the consumer cannot be retracted and stay).
func (m *merger) purgeShard(shard int) {
	kept := m.pending.hits[:0]
	for _, h := range m.pending.hits {
		if h.shard != shard {
			kept = append(kept, h)
		}
	}
	m.pending.hits = kept
	m.pending.reInit()
}

// emitReady releases every pending hit whose score is strictly above the
// bound of every unfinished shard (so no equal-or-stronger hit can still
// arrive).  It returns false when the consumer stopped the stream.
//
//oasis:hotpath
func (m *merger) emitReady() bool {
	for len(m.pending.hits) > 0 {
		top := m.pending.hits[0]
		for s := range m.bounds {
			if !m.done[s] && m.bounds[s] >= top.Score {
				return true // an equal or stronger hit may still arrive; wait
			}
		}
		h := m.pending.pop().Hit
		if m.drop != nil && m.drop(h.SeqIndex) {
			continue // tombstoned: the sequence was deleted
		}
		if m.dedup != nil && !m.dedup.markNew(h.SeqIndex) {
			continue // a better copy of this sequence was already emitted
		}
		m.nEmitted++
		h.Rank = m.nEmitted
		if m.opts.KA != nil {
			h.EValue = m.opts.KA.EValue(h.Score, m.queryLen, m.totalRes)
		}
		if !m.report(h) {
			return false
		}
		if m.opts.MaxResults > 0 && m.nEmitted >= m.opts.MaxResults {
			return false
		}
		if m.stopAt > 0 && m.nEmitted >= m.stopAt {
			// Every live database sequence has been emitted; nothing the
			// shards still hold can survive deduplication or the tombstone
			// filter (mirrors the single searcher's all-sequences-reported
			// early stop).
			return false
		}
	}
	return true
}

// publishBound forwards the merged stream's effective upper bound to onBound
// whenever it decreases.  The bound is the max frontier bound among
// unfinished shards: per-shard bounds only decrease and finishing only
// removes terms from the max, so the published sequence is non-increasing,
// and emitReady has just released everything above it, so every future
// emission (buffered or still unreported) is capped by it.  It returns false
// when the consumer stops the stream.
func (m *merger) publishBound() bool {
	if m.onBound == nil || m.nDone == len(m.bounds) {
		return true
	}
	b := int(^uint(0)>>1) * -1 // MinInt; below any real bound
	live := false
	for s := range m.bounds {
		if !m.done[s] {
			live = true
			if m.bounds[s] > b {
				b = m.bounds[s]
			}
		}
	}
	if !live || b >= m.lastBound {
		return true
	}
	m.lastBound = b
	return m.onBound(b)
}

// shardHit tags a buffered hit with its producing shard so the hits of a
// quarantined shard can be purged from the pending heap.
type shardHit struct {
	core.Hit
	shard int
}

// hitQueue is a max-heap of hits ordered by score (ties: lower global
// sequence index first, so simultaneous buffered ties release
// deterministically; equal sequence — duplicate copies from prefix-mode
// shards — by alignment content rather than producing shard, because with
// work stealing the producing shard is a timing artifact (steal.go).  The
// survivor is then determined by the copy SET in the heap; the set itself can
// still vary with stealing — see steal.go for the exact guarantee).
//
// It is a hand-rolled binary heap rather than container/heap because the
// standard interface moves every element through `any`, boxing one shardHit
// (a ~9-word struct) per buffered hit on the serving path; the concrete
// methods keep the pending buffer allocation-free at steady state.
type hitQueue struct {
	hits []shardHit
}

func (q *hitQueue) less(i, j int) bool {
	if q.hits[i].Score != q.hits[j].Score {
		return q.hits[i].Score > q.hits[j].Score
	}
	if q.hits[i].SeqIndex != q.hits[j].SeqIndex {
		return q.hits[i].SeqIndex < q.hits[j].SeqIndex
	}
	if q.hits[i].TargetEnd != q.hits[j].TargetEnd {
		return q.hits[i].TargetEnd < q.hits[j].TargetEnd
	}
	if q.hits[i].QueryEnd != q.hits[j].QueryEnd {
		return q.hits[i].QueryEnd < q.hits[j].QueryEnd
	}
	return q.hits[i].shard < q.hits[j].shard
}

//oasis:hotpath
func (q *hitQueue) push(h shardHit) {
	q.hits = append(q.hits, h) //oasis:allow-alloc amortized pending-buffer growth
	i := len(q.hits) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.hits[i], q.hits[parent] = q.hits[parent], q.hits[i]
		i = parent
	}
}

//oasis:hotpath
func (q *hitQueue) pop() shardHit {
	top := q.hits[0]
	last := len(q.hits) - 1
	q.hits[0] = q.hits[last]
	q.hits[last] = shardHit{} // drop the SeqID reference held by the vacated slot
	q.hits = q.hits[:last]
	q.siftDown(0)
	return top
}

// siftDown restores the heap property below i.
func (q *hitQueue) siftDown(i int) {
	n := len(q.hits)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && q.less(right, left) {
			best = right
		}
		if !q.less(best, i) {
			return
		}
		q.hits[i], q.hits[best] = q.hits[best], q.hits[i]
		i = best
	}
}

// reInit re-heapifies after purgeShard rewrote the backing slice in place.
func (q *hitQueue) reInit() {
	for i := len(q.hits)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
}
