package shard

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/bufferpool"
	"repro/internal/core"
)

// Provider is one opaque boundable hit stream the k-way merger can consume in
// place of a local index shard: Stream must report hits in decreasing score
// order with GLOBAL sequence indexes, and publish decreasing upper bounds on
// every score it can still report, exactly as core.SearchStream does for a
// local shard.  Returning false from either callback cancels the stream
// (Stream then returns nil); opts.Context, when set, cancels it from outside.
// opts.Stats, when non-nil, should receive the provider's work counters
// before Stream returns.  opts.KA is nil on entry: E-values are attached by
// the consuming merger with the coordinator's global totals.
//
// The motivating implementation is internal/remote's replicated shard-server
// client, which is how the shard boundary crosses the network: a coordinator
// engine built over N remote providers merges their streams through the same
// strict-release rule as a single-process engine, so the merged output is
// identical.
type Provider interface {
	Stream(query []byte, opts core.Options, hit func(core.Hit) bool, bound func(int) bool) error
}

// ProviderSet assembles a provider-backed engine: one sequence-disjoint
// provider per shard slice over a shared global sequence index space, plus
// the global catalog describing that space.
type ProviderSet struct {
	// Providers are the per-slice streams; slice s's hits must carry global
	// sequence indexes disjoint from every other slice's.
	Providers []Provider
	// Catalog is the global sequence catalog (alphabet, totals).  Required:
	// the engine cannot derive it from opaque providers.
	Catalog core.Catalog
	// Closers are resources the engine takes ownership of; Engine.Close
	// releases them.
	Closers []io.Closer
}

// NewEngineFromProviders assembles an engine whose shards are opaque provider
// streams instead of local indexes.  Searches fan out to every provider and
// merge with the same strict-release rule as local shards, so the output
// stream is ordered, deduplicated (not needed — providers are disjoint) and
// tie-broken exactly like a local multi-shard engine's.  Provider failures
// quarantine the provider's slice through the standard degraded-completion
// path (core.Options.StrictShards opts out).  opts.Shards and opts.Partition
// are ignored; opts.Workers bounds concurrent provider streams as usual.
func NewEngineFromProviders(set ProviderSet, opts Options) (*Engine, error) {
	if len(set.Providers) == 0 {
		return nil, fmt.Errorf("shard: provider set has no providers")
	}
	if set.Catalog == nil {
		return nil, fmt.Errorf("shard: provider set needs a catalog")
	}
	e := &Engine{
		mode:      PartitionBySequence,
		providers: set.Providers,
		cat:       set.Catalog,
		closers:   set.Closers,
	}
	e.nShards = len(set.Providers)
	e.numSeqs = e.cat.NumSequences()
	e.total = e.cat.TotalResidues()
	e.queryAl = e.cat.Alphabet()
	e.workers = opts.Workers
	if e.workers < 1 || e.workers > e.nShards {
		e.workers = e.nShards
	}
	e.scratch = bufferpool.NewFreeList(4*(e.nShards+1), core.NewScratch)
	e.dedups = bufferpool.NewFreeList(8, func() *dedupSet { return &dedupSet{} })
	e.queued = make([]atomic.Int64, e.nShards)
	e.active = make([]atomic.Int64, e.nShards)
	return e, nil
}

// searchProviders fans the query out to every provider and merges the streams
// exactly like searchSequence: providers are sequence-disjoint, so no
// deduplication is needed, and every stream starts at the query's root bound.
func (e *Engine) searchProviders(query []byte, opts core.Options, report func(core.Hit) bool, bsink func(int) bool) error {
	rb := e.rootBound(query, opts)
	bounds := make([]int, e.nShards)
	for s := range bounds {
		bounds[s] = rb
	}
	return e.fanOutMerge(query, opts, bounds, nil, core.Stats{}, nil, report, nil, bsink,
		func(s int, shardOpts core.Options, hit func(core.Hit) bool, frontier func(int) bool) error {
			return e.providers[s].Stream(query, shardOpts, hit, frontier)
		})
}
