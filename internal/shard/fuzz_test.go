package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fuzzutil"
	"repro/internal/score"
	"repro/internal/seq"
)

// FuzzShardMergeOrder asserts the sharded engine's merge contract on
// arbitrary databases, queries, shard counts and worker bounds, in BOTH
// partition modes (sequence-partitioned indexes and prefix-partitioned
// subtrees over a shared index): the merged stream must be non-increasing in
// score with consecutive ranks, and must contain exactly the hits the
// single-index search reports (equal-score hits may interleave differently,
// nothing may appear, vanish or change score).
func FuzzShardMergeOrder(f *testing.F) {
	f.Add([]byte("ACGTACGTTTACGGACGT\x00GGGTTTACGT\x00ACACACAC\x00TTGGAACC"), []byte("ACGTAC"), uint8(3), uint8(2), uint8(0))
	f.Add([]byte("TTTTTTTTTT\x00TTTTT\x00TTTT"), []byte("TTTT"), uint8(8), uint8(1), uint8(2))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0, 11, 12, 13, 14, 0, 3, 3, 3}, []byte{5, 6, 7}, uint8(2), uint8(3), uint8(0))
	scheme := score.MustScheme(score.UnitDNA(), -1)
	f.Fuzz(func(t *testing.T, dbData, queryData []byte, shardByte, workerByte, maxResByte uint8) {
		db := fuzzutil.DatabaseFromBytes(seq.DNA, dbData)
		query := fuzzutil.QueryFromBytes(seq.DNA, queryData, 48)
		if db == nil || query == nil {
			t.Skip()
		}
		opts := core.Options{Scheme: scheme, MinScore: 2, MaxResults: int(maxResByte % 8)}

		single, err := core.BuildMemoryIndex(db)
		if err != nil {
			t.Fatalf("index build: %v", err)
		}
		baseOpts := opts
		baseOpts.MaxResults = 0
		baseline, err := core.SearchAll(single, query, baseOpts)
		if err != nil {
			t.Fatalf("single-index search: %v", err)
		}

		for _, mode := range []PartitionMode{PartitionBySequence, PartitionByPrefix} {
			engine, err := NewEngine(db, Options{
				Shards:    1 + int(shardByte%8),
				Workers:   1 + int(workerByte%4),
				Partition: mode,
			})
			if err != nil {
				t.Fatalf("engine build (mode %d): %v", mode, err)
			}
			merged, err := engine.SearchAll(query, opts)
			if err != nil {
				t.Fatalf("sharded search (mode %d): %v", mode, err)
			}

			// Strict merge-order contract: non-increasing scores, ranks 1..n.
			for i, h := range merged {
				if h.Rank != i+1 {
					t.Fatalf("mode %d: hit %d has rank %d, want %d", mode, i, h.Rank, i+1)
				}
				if i > 0 && h.Score > merged[i-1].Score {
					t.Fatalf("mode %d: score order violated at %d: %d after %d (shards=%d)",
						mode, i, h.Score, merged[i-1].Score, engine.NumShards())
				}
			}

			// Hit-identity contract against the single-index baseline.
			want := len(baseline)
			if opts.MaxResults > 0 && opts.MaxResults < want {
				want = opts.MaxResults
			}
			if len(merged) != want {
				t.Fatalf("mode %d: merged %d hits, want %d (MaxResults=%d, baseline=%d, shards=%d)",
					mode, len(merged), want, opts.MaxResults, len(baseline), engine.NumShards())
			}
			valid := map[[2]int]int{} // (seqIndex, score) -> multiplicity
			for _, h := range baseline {
				valid[[2]int{h.SeqIndex, h.Score}]++
			}
			for i, h := range merged {
				if h.Score != baseline[i].Score {
					t.Fatalf("mode %d: score %d at position %d, baseline has %d",
						mode, h.Score, i, baseline[i].Score)
				}
				k := [2]int{h.SeqIndex, h.Score}
				if valid[k] == 0 {
					t.Fatalf("mode %d: hit %+v not in the single-index result set", mode, h)
				}
				valid[k]--
			}
		}
	})
}
