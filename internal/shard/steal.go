package shard

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/score"
)

// stealPool serves frontier seeds to the prefix-mode shard workers on demand
// (core.SearchSeedsDynamic) instead of handing each worker its static LPT
// batch up front.  Every worker drains its OWN shard's seeds first — hottest
// (highest f) first, so its stream pops in decreasing f exactly as the static
// path did — and, once both its seed list and its priority queue are empty,
// STEALS the coldest seed from the victim shard with the most estimated work
// remaining (seq.PartitionByPrefix's exact per-prefix-group suffix counts,
// via core.Seed.Cost).  The static split balances total suffix counts, but a
// query's work per prefix group can be wildly skewed (a motif's high-scoring
// prefixes do nearly all the column work); stealing keeps every worker busy
// until the whole frontier is consumed.
//
// # Why the stolen stream stays correct
//
// The merger (merge.go) requires each shard stream to report hits in
// decreasing score order under a decreasing published bound, and the
// searcher's per-sequence dedup must never swallow a hit another shard would
// have reported at a higher or equal score.  Both follow from the claim
// rules:
//
//   - Own seeds are claimed whenever the hottest remaining one is at least
//     the worker's queue top, so the searcher never pops below a pending own
//     seed's f — its published bound always covers its own backlog.
//   - A steal is allowed only when the thief's queue is empty and the seed's
//     f is STRICTLY below limit, the lowest queue top the thief has ever
//     popped.  Its stream therefore keeps decreasing, and — because a
//     searcher that reported a sequence at score v must have popped at top v,
//     so limit <= v — any duplicate the thief's per-sequence dedup suppresses
//     in a stolen subtree scores strictly below the copy it already reported.
//     The merger would have dropped that duplicate anyway.
//
// The merged (sequence, score, rank, E-value) stream is therefore exactly the
// no-steal stream (TestStealingStreamEquivalence).  What stealing does NOT
// preserve is the merger's duplicate COPY set: a stolen subtree escapes its
// owner's per-sequence suppression, so extra equal-best copies of a sequence
// can reach the merger, and which co-optimal alignment endpoint survives
// deduplication becomes timing-dependent.  Engines that need byte-stable
// endpoints run with Options.NoSteal; everything a client ranks on is stable
// either way.  Because a stolen seed may still out-f a thief's own seeds, the
// merger's initial per-shard bounds must all start at the global maximum
// seed f.
type stealPool struct {
	mu sync.Mutex
	// lists[s] holds shard s's seeds sorted by f descending; the live window
	// is [head[s], tail[s]) — owners claim from head (hottest), thieves from
	// tail (coldest), so the owner's in-order claim scan is never disturbed.
	lists [][]core.Seed
	head  []int
	tail  []int
	// cost[s] is the estimated work remaining in shard s's window (suffix
	// counts of the unclaimed prefix groups); thieves pick the costliest
	// victim.
	cost    []int64
	pending int
	steals  int64
}

// newStealPool takes ownership of the frontier's seed lists (they are
// re-sorted in place, hottest first).
func newStealPool(seeds [][]core.Seed) *stealPool {
	p := &stealPool{
		lists: seeds,
		head:  make([]int, len(seeds)),
		tail:  make([]int, len(seeds)),
		cost:  make([]int64, len(seeds)),
	}
	for s, list := range seeds {
		sort.SliceStable(list, func(a, b int) bool { return list[a].F() > list[b].F() })
		p.tail[s] = len(list)
		for i := range list {
			p.cost[s] += list[i].Cost()
		}
		p.pending += len(list)
	}
	return p
}

// claimFor is shard s's core.SearchSeedsDynamic claim hook: topF is the
// worker's current queue top (score.NegInf when empty) and limit the lowest
// top it has ever popped (MaxInt before the first pop).  It returns the next
// seed the worker must push, or nil to proceed with its queue.
func (p *stealPool) claimFor(s, topF, limit int) *core.Seed {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.head[s] < p.tail[s] {
		seed := &p.lists[s][p.head[s]]
		if seed.F() >= topF {
			p.head[s]++
			p.take(s, seed)
			return seed
		}
		return nil // the queue outranks the backlog; pop first
	}
	if topF != score.NegInf || p.pending == 0 {
		return nil
	}
	// Idle: steal the coldest seed of the costliest victim whose coldest
	// seed is strictly below limit (see the type comment for why strictly).
	victim := -1
	var victimCost int64
	for v := range p.lists {
		if v == s || p.head[v] >= p.tail[v] {
			continue
		}
		if p.lists[v][p.tail[v]-1].F() >= limit {
			continue
		}
		if victim < 0 || p.cost[v] > victimCost {
			victim, victimCost = v, p.cost[v]
		}
	}
	if victim < 0 {
		return nil
	}
	p.tail[victim]--
	seed := &p.lists[victim][p.tail[victim]]
	p.take(victim, seed)
	p.steals++
	return seed
}

// take books a claimed seed out of shard owner's window.
func (p *stealPool) take(owner int, seed *core.Seed) {
	p.cost[owner] -= seed.Cost()
	p.pending--
}

// empty reports whether every seed has been claimed.
func (p *stealPool) empty() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending == 0
}

// stealCount returns how many seeds were claimed by a non-owner.
func (p *stealPool) stealCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.steals
}

// claimFunc builds shard s's core.SearchSeedsDynamic claim hook, tracking the
// worker's steal limit — the lowest queue top it has ever been offered —
// across calls.  The hook runs on the worker's own goroutine only.
func claimFunc(pool *stealPool, s int) func(topF int) *core.Seed {
	limit := int(^uint(0) >> 1)
	return func(topF int) *core.Seed {
		if topF != score.NegInf && topF < limit {
			limit = topF
		}
		return pool.claimFor(s, topF, limit)
	}
}

// stealBounds lifts every shard's initial merger bound to the global maximum
// seed f: with stealing, any shard may claim the hottest pending seed before
// publishing its first own bound, so no weaker initial bound is sound.
func stealBounds(own []int) []int {
	max := score.NegInf
	for _, b := range own {
		if b > max {
			max = b
		}
	}
	bounds := make([]int, len(own))
	for i := range bounds {
		bounds[i] = max
	}
	return bounds
}
