package shard

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/seq"
)

// unionCatalog presents the per-shard catalogs of a sequence-partitioned
// IndexSet as one global catalog: sequence indexes are global, lookups are
// delegated to the owning shard, and the concatenated-position view is laid
// out in global sequence order (each sequence followed by its terminator),
// matching what a single index over the whole database would expose.
type unionCatalog struct {
	alphabet *seq.Alphabet
	cats     []core.Catalog
	owner    []int   // global sequence index -> shard
	local    []int   // global sequence index -> shard-local index
	starts   []int64 // global concatenated start offset per sequence
	total    int64   // residues across all shards
	concat   int64   // concatenated length including terminators
}

// newUnionCatalog stitches the shard catalogs together under the global maps,
// verifying that no global index is covered twice.  A degraded engine (some
// shards quarantined at open time) passes only the surviving shards, so the
// global index space may have holes: those entries keep the original global
// numbering but answer metadata lookups with zero values (owner -1).
func newUnionCatalog(indexes []core.Index, globals [][]int) (*unionCatalog, error) {
	n := 0
	for _, g := range globals {
		n += len(g)
	}
	// Quarantined shards leave holes: the surviving maps keep their original
	// global numbering, so the index space extends to the largest index seen.
	for _, g := range globals {
		for _, gi := range g {
			if gi+1 > n {
				n = gi + 1
			}
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("shard: index set covers no sequences")
	}
	u := &unionCatalog{
		cats:  make([]core.Catalog, len(indexes)),
		owner: make([]int, n),
		local: make([]int, n),
	}
	for gi := range u.owner {
		u.owner[gi] = -1
	}
	for s, g := range globals {
		u.cats[s] = indexes[s].Catalog()
		if u.cats[s].NumSequences() != len(g) {
			return nil, fmt.Errorf("shard %d: catalog has %d sequences, global map %d",
				s, u.cats[s].NumSequences(), len(g))
		}
		for i, gi := range g {
			if gi < 0 {
				return nil, fmt.Errorf("shard %d: negative global index %d", s, gi)
			}
			if u.owner[gi] >= 0 {
				return nil, fmt.Errorf("shard: global sequence %d assigned to more than one shard", gi)
			}
			u.owner[gi] = s
			u.local[gi] = i
		}
	}
	u.alphabet = u.cats[0].Alphabet()
	u.starts = make([]int64, n)
	for gi := 0; gi < n; gi++ {
		u.starts[gi] = u.concat
		l := int64(0)
		if u.owner[gi] >= 0 {
			l = int64(u.cats[u.owner[gi]].SequenceLength(u.local[gi]))
		}
		u.concat += l + 1 // terminator
		u.total += l
	}
	return u, nil
}

func (u *unionCatalog) Alphabet() *seq.Alphabet { return u.alphabet }
func (u *unionCatalog) NumSequences() int       { return len(u.owner) }
func (u *unionCatalog) SequenceID(i int) string {
	if u.owner[i] < 0 {
		return "" // sequence lost with a quarantined shard
	}
	return u.cats[u.owner[i]].SequenceID(u.local[i])
}
func (u *unionCatalog) SequenceLength(i int) int {
	if u.owner[i] < 0 {
		return 0
	}
	return u.cats[u.owner[i]].SequenceLength(u.local[i])
}
func (u *unionCatalog) TotalResidues() int64 { return u.total }

func (u *unionCatalog) Locate(pos int64) (int, int64, error) {
	if pos < 0 || pos >= u.concat {
		return 0, 0, fmt.Errorf("shard: position %d out of range", pos)
	}
	i := sort.Search(len(u.starts), func(i int) bool { return u.starts[i] > pos }) - 1
	return i, pos - u.starts[i], nil
}

func (u *unionCatalog) Residues(i int) ([]byte, error) {
	if i < 0 || i >= len(u.owner) {
		return nil, fmt.Errorf("shard: sequence index %d out of range", i)
	}
	if u.owner[i] < 0 {
		return nil, fmt.Errorf("shard: sequence %d is on a quarantined shard", i)
	}
	return u.cats[u.owner[i]].Residues(u.local[i])
}

var _ core.Catalog = (*unionCatalog)(nil)
