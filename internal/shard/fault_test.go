package shard

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diskst"
	"repro/internal/faultpoint"
	"repro/internal/score"
	"repro/internal/seq"
)

// buildFaultDir writes a 3-shard sequence-partitioned disk index for a
// deterministic random database and returns the directory, database and a
// query with hits on every shard.
func buildFaultDir(t *testing.T) (dir string, query []byte, opts core.Options) {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	db := randomShardDB(t, rng, seq.DNA, 18, 90)
	dir = filepath.Join(t.TempDir(), "idx")
	if _, _, err := diskst.BuildSharded(dir, db, diskst.ShardedBuildOptions{
		WriteOptions: diskst.WriteOptions{BlockSize: 2048},
		Shards:       3,
	}); err != nil {
		t.Fatal(err)
	}
	query = seq.DNA.MustEncode("ACGTACGTAC")
	opts = core.Options{Scheme: score.MustScheme(score.UnitDNA(), -1), MinScore: 3}
	return dir, query, opts
}

// openFaultEngine opens the directory with buffer-pool warm-up disabled, so
// every search touches the disk path where faults are injected (a fully
// warmed pool could serve a tiny index without ever re-reading the fault
// site).
func openFaultEngine(t *testing.T, dir string, allowDegraded bool) *Engine {
	t.Helper()
	eng, err := OpenDiskEngine(dir, DiskOptions{
		PoolBytesPerShard: 16 * 2048,
		WarmupPages:       -1,
		AllowDegraded:     allowDegraded,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// survivorBaseline computes the ground-truth degraded stream: the directory
// is copied, the target shard's file truncated beyond recovery, and the copy
// opened with AllowDegraded — an engine over exactly the surviving shards
// with the original global sequence numbering.
func survivorBaseline(t *testing.T, dir string, shardFile string, query []byte, opts core.Options) []core.Hit {
	t.Helper()
	clone := filepath.Join(t.TempDir(), "survivors")
	if err := os.MkdirAll(clone, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == shardFile {
			data = data[:16] // unreadable: the header alone needs 128 bytes
		}
		if err := os.WriteFile(filepath.Join(clone, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	eng := openFaultEngine(t, clone, true)
	if len(eng.Standing()) != 1 {
		t.Fatalf("survivor engine: %d standing quarantines, want 1", len(eng.Standing()))
	}
	var st core.Stats
	bOpts := opts
	bOpts.Stats = &st
	hits, err := eng.SearchAll(query, bOpts)
	if err != nil {
		t.Fatalf("survivor baseline search: %v", err)
	}
	if !st.Degraded || len(st.ShardErrors) == 0 {
		t.Fatalf("survivor baseline not marked degraded: %+v", st)
	}
	return hits
}

// TestFaultMatrixDegradedEquivalence is the fault-matrix acceptance test:
// for every injection site and fault mode that kills one of three shards,
// the query must complete from the survivors with Degraded set and per-shard
// error detail, and the degraded hit stream must be identical to searching
// an engine over only the surviving shards.  Latency injection must degrade
// nothing; strict mode must fail the query instead.
func TestFaultMatrixDegradedEquivalence(t *testing.T) {
	dir, query, opts := buildFaultDir(t)

	healthy := openFaultEngine(t, dir, false)
	fullHits, err := healthy.SearchAll(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullHits) < 3 {
		t.Fatalf("query too weak for the fault matrix: only %d hits", len(fullHits))
	}
	baseline := survivorBaseline(t, dir, "shard-1.oasis", query, opts)
	if len(baseline) == 0 || len(baseline) >= len(fullHits) {
		t.Fatalf("degenerate baseline: %d survivor hits of %d total (shard 1 must own some hits)",
			len(baseline), len(fullHits))
	}

	cases := []struct {
		name string
		site string
		spec faultpoint.Spec
		// degrades: the fault kills shard 1 and the stream completes from
		// the survivors; otherwise the fault is absorbed (latency) and the
		// full stream must come back.
		degrades bool
	}{
		{"worker-error", faultpoint.SiteShardWorker,
			faultpoint.Spec{Mode: faultpoint.ModeError, Match: "shard-1"}, true},
		{"disk-read-error", faultpoint.SiteDiskRead,
			faultpoint.Spec{Mode: faultpoint.ModeError, Match: "shard-1.oasis"}, true},
		{"pool-fill-error", faultpoint.SitePoolFill,
			faultpoint.Spec{Mode: faultpoint.ModeError, Match: "shard-1.oasis"}, true},
		{"block-corruption", faultpoint.SiteDiskBlock,
			faultpoint.Spec{Mode: faultpoint.ModeCorrupt, Match: "shard-1.oasis"}, true},
		{"disk-latency", faultpoint.SiteDiskRead,
			faultpoint.Spec{Mode: faultpoint.ModeLatency, Delay: 200 * time.Microsecond}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer faultpoint.Reset()
			eng := openFaultEngine(t, dir, false)
			faultpoint.Enable(tc.site, tc.spec)

			var st core.Stats
			qOpts := opts
			qOpts.Stats = &st
			got, err := eng.SearchAll(query, qOpts)
			if err != nil {
				t.Fatalf("degraded search failed outright: %v", err)
			}
			if faultpoint.Fired(tc.site) == 0 {
				t.Fatalf("fault at %s never triggered", tc.site)
			}
			if !tc.degrades {
				if st.Degraded {
					t.Fatalf("latency injection degraded the stream: %+v", st.ShardErrors)
				}
				assertSameHits(t, got, fullHits)
				return
			}
			if !st.Degraded {
				t.Fatal("stream completed but Degraded is not set")
			}
			if len(st.ShardErrors) != 1 || st.ShardErrors[0].Shard != 1 || st.ShardErrors[0].Err == "" {
				t.Fatalf("shard error detail wrong: %+v", st.ShardErrors)
			}
			assertSameHits(t, got, baseline)
		})
	}

	t.Run("strict-mode-fails", func(t *testing.T) {
		defer faultpoint.Reset()
		eng := openFaultEngine(t, dir, false)
		faultpoint.Enable(faultpoint.SiteShardWorker,
			faultpoint.Spec{Mode: faultpoint.ModeError, Match: "shard-1"})
		qOpts := opts
		qOpts.StrictShards = true
		if _, err := eng.SearchAll(query, qOpts); err == nil {
			t.Fatal("strict mode completed despite a shard failure")
		}
	})

	t.Run("all-shards-failed", func(t *testing.T) {
		defer faultpoint.Reset()
		eng := openFaultEngine(t, dir, false)
		faultpoint.Enable(faultpoint.SiteShardWorker,
			faultpoint.Spec{Mode: faultpoint.ModeError}) // no Match: every shard dies
		if _, err := eng.SearchAll(query, opts); err == nil {
			t.Fatal("search over zero surviving shards reported success")
		}
	})

	t.Run("transient-error-retried", func(t *testing.T) {
		defer faultpoint.Reset()
		eng := openFaultEngine(t, dir, false)
		before := diskst.Counters().ReadRetries
		// One injected read error: the reader's retry loop absorbs it and
		// the query completes undegraded with the full hit stream.
		faultpoint.Enable(faultpoint.SiteDiskRead,
			faultpoint.Spec{Mode: faultpoint.ModeError, Match: "shard-1.oasis", Times: 1})
		var st core.Stats
		qOpts := opts
		qOpts.Stats = &st
		got, err := eng.SearchAll(query, qOpts)
		if err != nil {
			t.Fatalf("transient fault was not absorbed: %v", err)
		}
		if st.Degraded {
			t.Fatalf("transient fault degraded the stream: %+v", st.ShardErrors)
		}
		assertSameHits(t, got, fullHits)
		if diskst.Counters().ReadRetries <= before {
			t.Fatal("retry counter did not move")
		}
	})
}

// assertSameHits requires hit-for-hit equality (ranks, scores, sequences,
// endpoints): degraded streams are not approximately right, they are exactly
// the surviving shards' stream.
func assertSameHits(t *testing.T, got, want []core.Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d hits, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("hit %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestDegradedStreamNotCachedUpstream pins the engine-layer contract at the
// shard level: a degraded search reports different stats than a healthy one,
// so the two must never be conflated by result caching (the engine package
// refuses to cache Degraded streams; here we just assert the flag round-trips
// through Stats.Add merging).
func TestDegradedStatsMerge(t *testing.T) {
	var total core.Stats
	total.Add(core.Stats{Degraded: true, ShardErrors: []core.ShardError{{Shard: 2, Err: "boom"}}})
	total.Add(core.Stats{})
	if !total.Degraded || len(total.ShardErrors) != 1 {
		t.Fatalf("degraded stats did not merge: %+v", total)
	}
}
